// storage_comparison runs the paper's headline experiment at demo scale:
// the same SmallBank workload through MPT (Ethereum's index) and COLE,
// printing the storage and throughput gap side by side (§8.2.1) plus
// COLE's internal storage breakdown (value data vs learned index +
// Merkle files — the inverse of MPT's 97%-index pathology from §1).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"cole/internal/bench"
)

func main() {
	cfg := bench.NewConfig(bench.Params{
		Blocks:     150,
		TxPerBlock: 100,
		Accounts:   2000,
		MemCap:     4096,
		MemBytes:   2 << 20,
		SizeRatio:  4,
		Fanout:     4,
		Seed:       5,
	})

	fmt.Printf("workload: SmallBank, %d blocks × %d tx\n\n", cfg.Blocks, cfg.TxPerBlock)

	results := map[bench.System]bench.Result{}
	for _, sys := range []bench.System{bench.SysMPT, bench.SysCOLE, bench.SysCOLEAsync} {
		dir, err := os.MkdirTemp("", "cole-cmp-")
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := bench.Run(sys, bench.WorkloadSmallBank, cfg, dir)
		os.RemoveAll(dir)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		results[sys] = res
		fmt.Printf("%-6s %8.0f TPS  %10.2f MB  (ran in %s)\n",
			sys, res.TPS, float64(res.StorageBytes)/(1<<20), time.Since(start).Round(time.Millisecond))
	}

	mpt := results[bench.SysMPT]
	cole := results[bench.SysCOLE]
	fmt.Printf("\nCOLE vs MPT: %.1f%% of the storage, %.1f× the throughput\n",
		100*float64(cole.StorageBytes)/float64(mpt.StorageBytes),
		cole.TPS/mpt.TPS)
	fmt.Printf("(paper at 10^5 blocks: 6–7%% of the storage, 1.4–5.4× the throughput)\n")

	fmt.Printf("\nCOLE storage breakdown: %.2f MB values + %.2f MB index/Merkle (%d levels)\n",
		float64(cole.DataBytes)/(1<<20), float64(cole.IndexBytes)/(1<<20), cole.Levels)
	fmt.Printf("async merge (COLE*) tail latency: %s vs COLE %s\n",
		results[bench.SysCOLEAsync].Latency.Max.Round(time.Microsecond),
		cole.Latency.Max.Round(time.Microsecond))
}
