// Concurrent reads: serve lock-free point queries — and consistent
// multi-key reads from a pinned snapshot — while blocks keep committing
// and background merges run.
//
// The store's read path runs over atomically-published views: a reader
// never takes the engine lock, so queries proceed at full speed through
// commits, flushes, and merges. A Snapshot pins one committed height;
// every read through it observes exactly that state, even on a sharded
// store where blocks keep landing on all shards concurrently.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"

	"cole"
)

func main() {
	dir, err := os.MkdirTemp("", "cole-concurrent-reads-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sharded, err := cole.OpenSharded(cole.Options{
		Dir:         dir,
		Shards:      4,
		MemCapacity: 256,
		AsyncMerge:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Everything below drives the store purely through the cole.DB
	// interface: swap in cole.Open and the demo runs unchanged on a
	// single-engine store.
	var store cole.DB = sharded
	defer store.Close()

	// Every block writes the block height into a "height marker" under
	// each account, so a torn read would be easy to spot.
	accounts := make([]cole.Address, 16)
	for i := range accounts {
		accounts[i] = cole.AddressFromString(fmt.Sprintf("account-%02d", i))
	}
	writeBlock := func(h uint64) cole.Hash {
		if err := store.BeginBlock(h); err != nil {
			log.Fatal(err)
		}
		updates := make([]cole.Update, len(accounts))
		for i, a := range accounts {
			updates[i] = cole.Update{Addr: a, Value: cole.ValueFromUint64(h)}
		}
		if err := store.PutBatch(updates); err != nil {
			log.Fatal(err)
		}
		root, err := store.Commit()
		if err != nil {
			log.Fatal(err)
		}
		return root
	}

	// Seed some history, then pin a snapshot at height 40.
	for h := uint64(1); h <= 40; h++ {
		writeBlock(h)
	}
	snap := store.Snapshot()
	defer snap.Release()
	fmt.Printf("snapshot pinned at block %d, root %s\n", snap.Height(), snap.Root())

	// Writer: 60 more blocks commit while the readers run.
	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		liveReads atomic.Int64
		snapReads atomic.Int64
	)
	// Live readers: always see some committed state, never a torn one.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := store.GetBatch(accounts)
				if err != nil {
					log.Fatal(err)
				}
				h := res[0].Value.Uint64()
				for _, r := range res {
					if r.Value.Uint64() != h {
						log.Fatalf("torn live batch: %d vs %d", h, r.Value.Uint64())
					}
				}
				liveReads.Add(int64(len(res)))
			}
		}(g)
	}
	// Snapshot readers: always see exactly block 40.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := snap.GetBatch(accounts)
				if err != nil {
					log.Fatal(err)
				}
				for _, r := range res {
					if !r.Found || r.Value.Uint64() != 40 {
						log.Fatalf("snapshot drifted: saw %d, want 40", r.Value.Uint64())
					}
				}
				snapReads.Add(int64(len(res)))
			}
		}()
	}

	var lastRoot cole.Hash
	for h := uint64(41); h <= 100; h++ {
		lastRoot = writeBlock(h)
	}
	close(stop)
	wg.Wait()

	fmt.Printf("committed to block 100 (root %s) while readers ran\n", lastRoot)
	fmt.Printf("live reads:     %d (every batch height-consistent)\n", liveReads.Load())
	fmt.Printf("snapshot reads: %d (every value pinned at block 40)\n", snapReads.Load())

	// The pinned snapshot still answers from block 40; the live store is
	// at 100.
	v, _, _ := snap.Get(accounts[0])
	lv, _, _ := store.Get(accounts[0])
	fmt.Printf("account-00: snapshot=%d live=%d\n", v.Uint64(), lv.Uint64())

	st := store.Stats()
	fmt.Printf("stats: %d gets, %d bloom skips, %d merges\n", st.Gets, st.BloomSkips, st.Merges)
}
