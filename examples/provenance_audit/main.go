// provenance_audit plays the role of a light client auditing a token
// balance's history: a node answers provenance queries with Merkle
// evidence, and the auditor verifies every answer against nothing but the
// published state root digest — including detection of a dishonest node
// that tampers with a value or drops a version (§6.2).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"cole"
)

func main() {
	dir, err := os.MkdirTemp("", "cole-audit-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The "full node": a token contract whose supply account changes on
	// most blocks, plus background traffic from other accounts.
	store, err := cole.Open(cole.Options{Dir: dir, MemCapacity: 512, SizeRatio: 2, AsyncMerge: true})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	supply := cole.AddressFromString("token/total-supply")
	rng := rand.New(rand.NewSource(99))
	supplyVal := uint64(1_000_000)
	supplyAt := map[uint64]uint64{}

	const blocks = 500
	var hstate cole.Hash
	for h := uint64(1); h <= blocks; h++ {
		if err := store.BeginBlock(h); err != nil {
			log.Fatal(err)
		}
		if rng.Intn(3) > 0 { // supply moves on ~2/3 of blocks
			supplyVal += uint64(rng.Intn(1000))
			if err := store.Put(supply, cole.ValueFromUint64(supplyVal)); err != nil {
				log.Fatal(err)
			}
			supplyAt[h] = supplyVal
		}
		for i := 0; i < 5; i++ { // unrelated traffic
			a := cole.AddressFromString(fmt.Sprintf("holder-%d", rng.Intn(200)))
			if err := store.Put(a, cole.ValueFromUint64(rng.Uint64()%10000)); err != nil {
				log.Fatal(err)
			}
		}
		if hstate, err = store.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("chain at height %d, Hstate=%s…\n\n", blocks, hstate.String()[:16])

	// The auditor asks: how did the supply change in blocks [301, 400]?
	lo, hi := uint64(301), uint64(400)
	versions, proof, err := store.ProvQuery(supply, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	verified, err := cole.VerifyProv(hstate, supply, lo, hi, proof)
	if err != nil {
		log.Fatalf("audit failed: %v", err)
	}
	fmt.Printf("audit window [%d,%d]: %d supply changes, proof %d bytes\n",
		lo, hi, len(verified), proof.Size())
	for i, v := range verified {
		if i < 3 || i >= len(verified)-2 {
			fmt.Printf("  block %4d: supply = %d\n", v.Blk, v.Value.Uint64())
		} else if i == 3 {
			fmt.Printf("  … %d more …\n", len(verified)-5)
		}
		if want, okW := supplyAt[v.Blk]; !okW || want != v.Value.Uint64() {
			log.Fatalf("verified value at block %d does not match ground truth", v.Blk)
		}
	}
	if len(verified) != len(versions) {
		log.Fatal("verifier and node disagree on result count")
	}
	fmt.Println("all verified values match ground truth ✓")

	// A dishonest node inflates a historical supply figure: the Merkle
	// evidence no longer hashes to Hstate.
	_, evilProof, err := store.ProvQuery(supply, lo, hi)
	if err != nil {
		log.Fatal(err)
	}
	tampered := false
	for _, rp := range evilProof.Runs {
		if rp.Prov != nil && len(rp.Prov.Span) > 0 {
			for i := range rp.Prov.Span {
				if rp.Prov.Span[i].Key.Addr == supply {
					rp.Prov.Span[i].Value = cole.ValueFromUint64(999_999_999)
					// Keep the claimed results consistent with the lie.
					for j := range rp.Prov.Results {
						if rp.Prov.Results[j].Key == rp.Prov.Span[i].Key {
							rp.Prov.Results[j].Value = rp.Prov.Span[i].Value
						}
					}
					tampered = true
					break
				}
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		log.Fatal("audit demo expected on-disk versions to tamper with")
	}
	if _, err := cole.VerifyProv(hstate, supply, lo, hi, evilProof); err == nil {
		log.Fatal("tampered history passed verification?!")
	} else {
		fmt.Printf("\ndishonest node detected: %v ✓\n", err)
	}

	// A node hiding a version (dropping part of the span) is also caught.
	_, holeProof, _ := store.ProvQuery(supply, lo, hi)
	for _, rp := range holeProof.Runs {
		if rp.Prov != nil && len(rp.Prov.Results) > 1 {
			rp.Prov.Results = rp.Prov.Results[1:]
			break
		}
	}
	if _, err := cole.VerifyProv(hstate, supply, lo, hi, holeProof); err == nil {
		log.Fatal("hidden version passed verification?!")
	} else {
		fmt.Printf("hidden version detected: %v ✓\n", err)
	}
}
