// Quickstart: open a COLE store, write a few blocks of state updates,
// read the latest and historical values, and run a verified provenance
// query — the four functions of the blockchain storage interface (§2).
package main

import (
	"fmt"
	"log"
	"os"

	"cole"
)

func main() {
	dir, err := os.MkdirTemp("", "cole-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	store, err := cole.Open(cole.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	alice := cole.AddressFromString("alice")
	bob := cole.AddressFromString("bob")

	// Blocks update states; each commit returns the state root digest
	// Hstate that a blockchain would place in the block header.
	var lastRoot cole.Hash
	for height := uint64(1); height <= 5; height++ {
		if err := store.BeginBlock(height); err != nil {
			log.Fatal(err)
		}
		// Alice's balance changes every block; Bob's only at block 3.
		if err := store.Put(alice, cole.ValueFromUint64(100*height)); err != nil {
			log.Fatal(err)
		}
		if height == 3 {
			if err := store.Put(bob, cole.ValueFromUint64(777)); err != nil {
				log.Fatal(err)
			}
		}
		lastRoot, err = store.Commit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("block %d committed: Hstate=%s…\n", height, lastRoot.String()[:16])
	}

	// Get: the latest value (§2's Get(addr)).
	v, ok, err := store.Get(alice)
	if err != nil || !ok {
		log.Fatalf("get alice: ok=%v err=%v", ok, err)
	}
	fmt.Printf("\nalice latest balance: %d\n", v.Uint64())

	// GetAt: the value active at a historical height.
	v, at, ok, err := store.GetAt(alice, 2)
	if err != nil || !ok {
		log.Fatalf("getat alice: ok=%v err=%v", ok, err)
	}
	fmt.Printf("alice at block 2:     %d (written at block %d)\n", v.Uint64(), at)

	// ProvQuery + VerifyProv: the full version history with integrity
	// proof, checked against the published state root.
	versions, proof, err := store.ProvQuery(alice, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	verified, err := cole.VerifyProv(lastRoot, alice, 1, 5, proof)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("\nprovenance of alice over blocks [1,5] (%d versions, %d-byte proof):\n",
		len(versions), proof.Size())
	for _, ver := range verified {
		fmt.Printf("  block %d → %d\n", ver.Blk, ver.Value.Uint64())
	}

	// Tampered proofs are rejected.
	badRoot := lastRoot
	badRoot[0] ^= 0xFF
	if _, err := cole.VerifyProv(badRoot, alice, 1, 5, proof); err == nil {
		log.Fatal("tampered root verified?!")
	}
	fmt.Println("\ntampered state root correctly rejected ✓")
}
