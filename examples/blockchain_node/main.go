// blockchain_node simulates a full blockchain node on COLE: SmallBank
// transactions are packed into blocks, executed through the chain layer,
// and sealed into a hash-linked header chain carrying Htx and Hstate
// (Figure 2 of the paper). It then demonstrates crash recovery: the node
// is killed without flushing and replays blocks above the durable
// checkpoint, converging to the same state root (§4.3).
package main

import (
	"fmt"
	"log"
	"os"

	"cole/internal/chain"
	"cole/internal/core"
	"cole/internal/workload"
)

const (
	blocks     = 120
	txPerBlock = 100
	accounts   = 500
	seed       = 7
)

func main() {
	dir, err := os.MkdirTemp("", "cole-node-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := core.Options{Dir: dir, MemCapacity: 2048, SizeRatio: 4, Fanout: 4, AsyncMerge: true}
	backend, err := chain.OpenCole(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Execute the chain.
	node := chain.New(backend, 0)
	gen := workload.NewSmallBank(seed, accounts)
	var headers []chain.Header
	for i := 0; i < blocks; i++ {
		hdr, err := node.ExecuteBlock(gen.Block(txPerBlock))
		if err != nil {
			log.Fatal(err)
		}
		headers = append(headers, hdr)
		if hdr.Height%30 == 0 {
			fmt.Printf("height %4d  Hstate=%s…  Htx=%s…\n",
				hdr.Height, hdr.Hstate.String()[:12], hdr.Htx.String()[:12])
		}
	}
	if err := chain.VerifyHeaderChain(headers); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d blocks executed, header chain verified ✓\n", len(headers))

	sb := backend.Engine.Storage()
	st := backend.Engine.Stats()
	fmt.Printf("storage: %d entries, %d runs, %d levels, %.2f MB on disk\n",
		sb.Entries, sb.Runs, sb.Levels, float64(sb.DataBytes+sb.IndexBytes)/(1<<20))
	fmt.Printf("engine:  %d puts, %d flushes, %d merges (%d waits)\n",
		st.Puts, st.Flushes, st.Merges, st.MergeWaits)

	// Crash: drop the engine without flushing. The checkpoint tells us
	// which blocks to replay.
	checkpoint := backend.Engine.CheckpointHeight()
	finalRoot := headers[len(headers)-1].Hstate
	_ = backend.Close()
	fmt.Printf("\nsimulated crash at height %d; durable checkpoint is %d\n", blocks, checkpoint)

	recovered, err := chain.OpenCole(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer recovered.Close()

	// Replay: regenerate the identical workload and re-execute blocks
	// above the checkpoint (a real node replays its transaction log —
	// the consensus-agreed WAL, §4.3).
	replayGen := workload.NewSmallBank(seed, accounts)
	replayNode := chain.New(recovered, checkpoint)
	var lastRoot chain.Header
	for h := uint64(1); h <= blocks; h++ {
		txs := replayGen.Block(txPerBlock)
		if h <= checkpoint {
			continue // already durable
		}
		hdr, err := replayNode.ExecuteBlock(txs)
		if err != nil {
			log.Fatal(err)
		}
		lastRoot = hdr
	}
	if lastRoot.Hstate != finalRoot {
		log.Fatalf("recovery diverged: %s vs %s", lastRoot.Hstate, finalRoot)
	}
	fmt.Printf("replayed %d blocks; state root matches pre-crash chain ✓\n", blocks-int(checkpoint))
}
