// Sharded node: run a block workload through a 4-shard COLE store —
// hash-partitioned engines committed in parallel goroutines under one
// deterministic combined state root — then prove a provenance query
// against that root and survive a crash by replaying from the combined
// checkpoint.
package main

import (
	"fmt"
	"log"
	"os"

	"cole"
)

const (
	shards   = 4
	blocks   = 60
	accounts = 32
	writes   = 16
)

// putBlock applies block h's deterministic updates as one batch:
// PutBatch pre-buckets them per shard and applies each bucket with a
// single engine call (digests are byte-identical to looped Put). Keyed
// to the height so the crash-recovery replay below regenerates
// identical blocks.
func putBlock(store *cole.ShardedStore, h uint64) (cole.Hash, error) {
	if err := store.BeginBlock(h); err != nil {
		return cole.Hash{}, err
	}
	batch := make([]cole.Update, 0, writes)
	for w := 0; w < writes; w++ {
		batch = append(batch, cole.Update{
			Addr:  cole.AddressFromString(fmt.Sprintf("user-%02d", (int(h)*writes+w)%accounts)),
			Value: cole.ValueFromUint64(h*1000 + uint64(w)),
		})
	}
	if err := store.PutBatch(batch); err != nil {
		return cole.Hash{}, err
	}
	return store.Commit()
}

func main() {
	dir, err := os.MkdirTemp("", "cole-sharded-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Options.Shards splits the address space across independent engines,
	// each in its own subdirectory; Commit runs them in parallel and
	// combines the per-shard roots deterministically.
	opts := cole.Options{Dir: dir, Shards: shards, MemCapacity: 48}
	store, err := cole.OpenSharded(opts)
	if err != nil {
		log.Fatal(err)
	}

	var lastRoot cole.Hash
	for h := uint64(1); h <= blocks; h++ {
		if lastRoot, err = putBlock(store, h); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("committed %d blocks across %d shards\n", blocks, store.Shards())
	fmt.Printf("combined Hstate: %s\n", lastRoot)

	// Every address deterministically routes to one shard.
	alice := cole.AddressFromString("user-07")
	fmt.Printf("user-07 lives on shard %d\n", store.ShardOf(alice))

	// A provenance proof carries the owning shard's COLE proof plus an
	// O(log N) Merkle path from the shard's root to the combined digest.
	versions, proof, err := store.ProvQuery(alice, 1, blocks)
	if err != nil {
		log.Fatal(err)
	}
	verified, err := cole.VerifyShardProv(lastRoot, alice, 1, blocks, proof)
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("provenance: %d versions, %d returned by verification, proof %d bytes (shard %d)\n",
		len(versions), len(verified), proof.Size(), proof.Shard)

	// Crash: close without flushing. Unflushed per-shard memory is lost;
	// the store recovers by replaying blocks above the lowest shard
	// checkpoint (shards whose checkpoint is higher skip the blocks they
	// already cover and contribute their persisted historical roots, so
	// replayed digests reproduce the published headers). The final digest
	// — once every shard has executed — matches the pre-crash one.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	store, err = cole.OpenSharded(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ckpt := store.CheckpointHeight()
	fmt.Printf("after crash: checkpoint %d, replaying blocks %d..%d\n", ckpt, ckpt+1, blocks)
	var recovered cole.Hash
	for h := ckpt + 1; h <= blocks; h++ {
		if recovered, err = putBlock(store, h); err != nil {
			log.Fatal(err)
		}
	}
	if recovered != lastRoot {
		log.Fatalf("recovered root %s != pre-crash root %s", recovered, lastRoot)
	}
	fmt.Printf("recovered combined Hstate matches: %s\n", recovered)
}
