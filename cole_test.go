package cole_test

import (
	"os"
	"path/filepath"
	"testing"

	"cole"
)

// TestFacadeEndToEnd exercises the public API surface: the full
// write / read / provenance / verification / recovery cycle.
func TestFacadeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := cole.Open(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}

	addr := cole.AddressFromString("facade")
	var root cole.Hash
	for h := uint64(1); h <= 50; h++ {
		if err := store.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(addr, cole.ValueFromUint64(h*2)); err != nil {
			t.Fatal(err)
		}
		if root, err = store.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if store.Height() != 50 {
		t.Fatalf("height %d", store.Height())
	}
	if store.RootDigest() != root {
		t.Fatal("root digest drifted")
	}

	v, ok, err := store.Get(addr)
	if err != nil || !ok || v.Uint64() != 100 {
		t.Fatalf("get: %v %v %v", v.Uint64(), ok, err)
	}
	v, at, ok, err := store.GetAt(addr, 10)
	if err != nil || !ok || at != 10 || v.Uint64() != 20 {
		t.Fatalf("getat: %v %v %v %v", v.Uint64(), at, ok, err)
	}

	versions, proof, err := store.ProvQuery(addr, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 11 {
		t.Fatalf("%d versions", len(versions))
	}
	verified, err := cole.VerifyProv(root, addr, 20, 30, proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) != 11 || verified[0].Blk != 30 {
		t.Fatalf("verified: %v", verified)
	}
	if proof.Size() <= 0 {
		t.Fatal("proof size must be positive")
	}

	sb := store.Storage()
	if sb.Entries == 0 {
		t.Fatal("no disk entries despite cascades")
	}
	if store.Stats().Puts != 50 {
		t.Fatalf("stats: %+v", store.Stats())
	}

	// Clean shutdown and reopen.
	if err := store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := cole.Open(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Height() != 50 || store2.CheckpointHeight() != 50 {
		t.Fatalf("reopen heights: %d/%d", store2.Height(), store2.CheckpointHeight())
	}
	v, ok, err = store2.Get(addr)
	if err != nil || !ok || v.Uint64() != 100 {
		t.Fatal("state lost across reopen")
	}
}

func TestValueHelpers(t *testing.T) {
	if cole.ValueFromUint64(7).Uint64() != 7 {
		t.Fatal("uint64 round trip")
	}
	if cole.AddressFromString("a") == cole.AddressFromString("b") {
		t.Fatal("addresses must differ")
	}
	if cole.AddressFromBytes([]byte("x")) != cole.AddressFromBytes([]byte("x")) {
		t.Fatal("address derivation must be deterministic")
	}
	if cole.ValueFromBytes([]byte("short")) == (cole.Value{}) {
		t.Fatal("value must not be zero")
	}
}

// TestShardedFacade exercises the sharded public surface: parallel
// commit, verified provenance against the combined digest, and the
// guards that keep sharded and unsharded opens from crossing wires.
func TestShardedFacade(t *testing.T) {
	dir := t.TempDir()
	store, err := cole.OpenSharded(cole.Options{Dir: dir, Shards: 4, MemCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	addr := cole.AddressFromString("carol")
	var root cole.Hash
	for h := uint64(1); h <= 10; h++ {
		if err := store.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(addr, cole.ValueFromUint64(h)); err != nil {
			t.Fatal(err)
		}
		if root, err = store.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	_, proof, err := store.ProvQuery(addr, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	versions, err := cole.VerifyShardProv(root, addr, 1, 10, proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 10 {
		t.Fatalf("verified %d versions, want 10", len(versions))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Open must refuse the multi-shard directory rather than present an
	// empty single-engine view of it.
	if _, err := cole.Open(cole.Options{Dir: dir}); err == nil {
		t.Fatal("cole.Open accepted a 4-shard store directory")
	}
	// OpenSharded with Shards unset adopts the persisted count.
	reopened, err := cole.OpenSharded(cole.Options{Dir: dir, MemCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Shards() != 4 {
		t.Fatalf("reopen adopted %d shards, want 4", reopened.Shards())
	}
}

// TestOpenRejectsCorruptShardManifest: a damaged SHARDS file must fail
// both open paths rather than let Open present an empty engine view.
func TestOpenRejectsCorruptShardManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "SHARDS"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cole.Open(cole.Options{Dir: dir}); err == nil {
		t.Fatal("cole.Open accepted a corrupt SHARDS file")
	}
	if _, err := cole.OpenSharded(cole.Options{Dir: dir}); err == nil {
		t.Fatal("cole.OpenSharded accepted a corrupt SHARDS file")
	}
}

// TestOpenRejectsOrphanedShardDirs: shard subdirectories whose SHARDS
// file was lost must not open as an empty unsharded store.
func TestOpenRejectsOrphanedShardDirs(t *testing.T) {
	dir := t.TempDir()
	s, err := cole.OpenSharded(cole.Options{Dir: dir, Shards: 2, MemCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "SHARDS")); err != nil {
		t.Fatal(err)
	}
	if _, err := cole.Open(cole.Options{Dir: dir}); err == nil {
		t.Fatal("cole.Open accepted a dir with orphaned shard subdirectories")
	}
	if _, err := cole.OpenSharded(cole.Options{Dir: dir}); err == nil {
		t.Fatal("cole.OpenSharded (Shards=0) accepted a dir with orphaned shard subdirectories")
	}
}

// TestSnapshotFacade exercises the public Snapshot interface on both the
// single-engine store and the sharded store: pinned height, consistent
// batched reads, and isolation from later commits.
func TestSnapshotFacade(t *testing.T) {
	open := map[string]func(dir string) (interface {
		BeginBlock(uint64) error
		PutBatch([]cole.Update) error
		Commit() (cole.Hash, error)
		Snapshot() cole.Snapshot
		GetBatch([]cole.Address) ([]cole.ReadResult, error)
		Close() error
	}, error){
		"store": func(dir string) (interface {
			BeginBlock(uint64) error
			PutBatch([]cole.Update) error
			Commit() (cole.Hash, error)
			Snapshot() cole.Snapshot
			GetBatch([]cole.Address) ([]cole.ReadResult, error)
			Close() error
		}, error) {
			return cole.Open(cole.Options{Dir: dir, MemCapacity: 16})
		},
		"sharded": func(dir string) (interface {
			BeginBlock(uint64) error
			PutBatch([]cole.Update) error
			Commit() (cole.Hash, error)
			Snapshot() cole.Snapshot
			GetBatch([]cole.Address) ([]cole.ReadResult, error)
			Close() error
		}, error) {
			return cole.OpenSharded(cole.Options{Dir: dir, MemCapacity: 16, Shards: 4})
		},
	}
	for name, opener := range open {
		t.Run(name, func(t *testing.T) {
			s, err := opener(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			addrs := make([]cole.Address, 8)
			for i := range addrs {
				addrs[i] = cole.AddressFromString("snap-" + string(rune('a'+i)))
			}
			write := func(h uint64) cole.Hash {
				if err := s.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				upd := make([]cole.Update, len(addrs))
				for i, a := range addrs {
					upd[i] = cole.Update{Addr: a, Value: cole.ValueFromUint64(h*100 + uint64(i))}
				}
				if err := s.PutBatch(upd); err != nil {
					t.Fatal(err)
				}
				root, err := s.Commit()
				if err != nil {
					t.Fatal(err)
				}
				return root
			}
			for h := uint64(1); h <= 10; h++ {
				write(h)
			}
			root10 := write(11)

			snap := s.Snapshot()
			defer snap.Release()
			if snap.Height() != 11 || snap.Root() != root10 {
				t.Fatalf("snapshot pinned (%d, %x), want (11, %x)", snap.Height(), snap.Root(), root10)
			}
			for h := uint64(12); h <= 20; h++ {
				write(h)
			}
			res, err := snap.GetBatch(addrs)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				want := uint64(1100 + i)
				if !r.Found || r.Value.Uint64() != want || r.Blk != 11 {
					t.Fatalf("snapshot read %d: %+v, want value %d at blk 11", i, r, want)
				}
			}
			// The live store moved on.
			live, err := s.GetBatch(addrs)
			if err != nil {
				t.Fatal(err)
			}
			if live[0].Value.Uint64() != 2000 || live[0].Blk != 20 {
				t.Fatalf("live read %+v, want value 2000 at blk 20", live[0])
			}
			// Single-key snapshot reads agree with the batch.
			v, blk, ok, err := snap.GetAt(addrs[3], 5)
			if err != nil || !ok || blk != 5 || v.Uint64() != 503 {
				t.Fatalf("snapshot GetAt: %v %d %v %v", v.Uint64(), blk, ok, err)
			}
		})
	}
}

// TestDBInterfaceBothBackends drives the full unified surface through
// cole.DB for both implementations: the same code path exercises a
// single-engine Store and a ShardedStore, including a provenance query
// verified through the backend-independent ProvProof handle.
func TestDBInterfaceBothBackends(t *testing.T) {
	open := map[string]func(dir string) (cole.DB, error){
		"store": func(dir string) (cole.DB, error) {
			return cole.Open(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2})
		},
		"sharded": func(dir string) (cole.DB, error) {
			return cole.OpenSharded(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2, Shards: 2})
		},
	}
	for name, openDB := range open {
		t.Run(name, func(t *testing.T) {
			db, err := openDB(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			addrs := make([]cole.Address, 8)
			for i := range addrs {
				addrs[i] = cole.AddressFromString("db-iface-" + string(rune('a'+i)))
			}
			var root cole.Hash
			for h := uint64(1); h <= 30; h++ {
				if err := db.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				updates := make([]cole.Update, len(addrs))
				for i, a := range addrs {
					updates[i] = cole.Update{Addr: a, Value: cole.ValueFromUint64(h*10 + uint64(i))}
				}
				if err := db.PutBatch(updates); err != nil {
					t.Fatal(err)
				}
				if root, err = db.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if db.Height() != 30 || db.RootDigest() != root {
				t.Fatalf("height %d, digest drift %v", db.Height(), db.RootDigest() != root)
			}

			if v, ok, err := db.Get(addrs[3]); err != nil || !ok || v.Uint64() != 303 {
				t.Fatalf("get: %v %v %v", v.Uint64(), ok, err)
			}
			if v, at, ok, err := db.GetAt(addrs[0], 7); err != nil || !ok || at != 7 || v.Uint64() != 70 {
				t.Fatalf("getat: %v %v %v %v", v.Uint64(), at, ok, err)
			}
			res, err := db.GetBatch(addrs)
			if err != nil || len(res) != len(addrs) || !res[7].Found || res[7].Value.Uint64() != 307 {
				t.Fatalf("getbatch: %v %v", res, err)
			}
			snap := db.Snapshot()
			if snap.Height() != 30 {
				t.Fatalf("snapshot height %d", snap.Height())
			}
			snap.Release()

			versions, proof, err := db.Prov(addrs[1], 10, 20)
			if err != nil {
				t.Fatal(err)
			}
			if len(versions) != 11 {
				t.Fatalf("%d versions", len(versions))
			}
			verified, err := proof.Verify(root, addrs[1], 10, 20)
			if err != nil {
				t.Fatal(err)
			}
			if len(verified) != 11 || verified[0].Blk != 20 {
				t.Fatalf("verified: %v", verified)
			}
			if proof.Size() <= 0 {
				t.Fatal("proof size must be positive")
			}
			if _, err := proof.Verify(cole.Hash{}, addrs[1], 10, 20); err == nil {
				t.Fatal("proof verified against a wrong digest")
			}

			var exported int64
			if exported, err = db.Export(func(a cole.Address, blk uint64, v cole.Value) error { return nil }); err != nil {
				t.Fatal(err)
			}
			if exported != int64(30*len(addrs)) {
				t.Fatalf("exported %d entries", exported)
			}
			if st := db.Stats(); st.Puts != int64(30*len(addrs)) {
				t.Fatalf("stats puts %d", st.Puts)
			}
			if err := db.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if sb := db.Storage(); sb.Entries != int64(30*len(addrs)) {
				t.Fatalf("storage entries %d", sb.Entries)
			}
			if db.CheckpointHeight() > db.Height() {
				t.Fatal("checkpoint above height")
			}
		})
	}
}
