package cole_test

import (
	"testing"

	"cole"
)

// TestFacadeEndToEnd exercises the public API surface: the full
// write / read / provenance / verification / recovery cycle.
func TestFacadeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := cole.Open(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}

	addr := cole.AddressFromString("facade")
	var root cole.Hash
	for h := uint64(1); h <= 50; h++ {
		if err := store.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(addr, cole.ValueFromUint64(h*2)); err != nil {
			t.Fatal(err)
		}
		if root, err = store.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if store.Height() != 50 {
		t.Fatalf("height %d", store.Height())
	}
	if store.RootDigest() != root {
		t.Fatal("root digest drifted")
	}

	v, ok, err := store.Get(addr)
	if err != nil || !ok || v.Uint64() != 100 {
		t.Fatalf("get: %v %v %v", v.Uint64(), ok, err)
	}
	v, at, ok, err := store.GetAt(addr, 10)
	if err != nil || !ok || at != 10 || v.Uint64() != 20 {
		t.Fatalf("getat: %v %v %v %v", v.Uint64(), at, ok, err)
	}

	versions, proof, err := store.ProvQuery(addr, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 11 {
		t.Fatalf("%d versions", len(versions))
	}
	verified, err := cole.VerifyProv(root, addr, 20, 30, proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) != 11 || verified[0].Blk != 30 {
		t.Fatalf("verified: %v", verified)
	}
	if proof.Size() <= 0 {
		t.Fatal("proof size must be positive")
	}

	sb := store.Storage()
	if sb.Entries == 0 {
		t.Fatal("no disk entries despite cascades")
	}
	if store.Stats().Puts != 50 {
		t.Fatalf("stats: %+v", store.Stats())
	}

	// Clean shutdown and reopen.
	if err := store.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := cole.Open(cole.Options{Dir: dir, MemCapacity: 32, SizeRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Height() != 50 || store2.CheckpointHeight() != 50 {
		t.Fatalf("reopen heights: %d/%d", store2.Height(), store2.CheckpointHeight())
	}
	v, ok, err = store2.Get(addr)
	if err != nil || !ok || v.Uint64() != 100 {
		t.Fatal("state lost across reopen")
	}
}

func TestValueHelpers(t *testing.T) {
	if cole.ValueFromUint64(7).Uint64() != 7 {
		t.Fatal("uint64 round trip")
	}
	if cole.AddressFromString("a") == cole.AddressFromString("b") {
		t.Fatal("addresses must differ")
	}
	if cole.AddressFromBytes([]byte("x")) != cole.AddressFromBytes([]byte("x")) {
		t.Fatal("address derivation must be deterministic")
	}
	if cole.ValueFromBytes([]byte("short")) == (cole.Value{}) {
		t.Fatal("value must not be zero")
	}
}
