// Package cole is a column-based learned storage engine for blockchain
// systems — a from-scratch Go reproduction of COLE (Zhang, Xu, Hu, Xu,
// FAST 2024).
//
// COLE stores every historical version of a ledger state ("column")
// under a compound key ⟨address, block height⟩ in an LSM-organized store
// whose on-disk runs are indexed by learned models and authenticated by
// m-ary Merkle files. Compared with Ethereum's Merkle Patricia Trie it
// removes index-node persistence entirely: the paper measures up to 94%
// smaller storage and 1.4–5.4× higher throughput, with provenance
// queries answered from contiguous version runs.
//
// # Quick start
//
//	store, err := cole.Open(cole.Options{Dir: "ledger"})
//	...
//	store.BeginBlock(1)
//	store.Put(cole.AddressFromString("alice"), cole.ValueFromUint64(100))
//	hstate, _ := store.Commit()
//
//	v, ok, _ := store.Get(cole.AddressFromString("alice"))
//
//	versions, proof, _ := store.ProvQuery(addr, 1, 100)
//	verified, err := cole.VerifyProv(hstate, addr, 1, 100, proof)
//
// Two write strategies are available: the default synchronous merge
// (Algorithm 1) and the checkpoint-based asynchronous merge of §5
// (Options.AsyncMerge), which removes write stalls while keeping the
// state root digest deterministic across nodes.
//
// Block-oriented ingestion should use PutBatch, which applies a block's
// updates under one lock acquisition (and, on a sharded store, routes
// them to all shards in one pass); background merges across all levels
// and shards run on one bounded worker pool sized by
// Options.MergeWorkers.
//
// The implementation lives in internal/ packages (engine, learned index,
// Merkle files, MB-tree, and the paper's baselines); this package is the
// stable public surface.
package cole

import (
	"errors"
	"fmt"
	"net/http"

	"cole/internal/core"
	"cole/internal/obs"
	"cole/internal/reshard"
	"cole/internal/run"
	"cole/internal/shard"
	"cole/internal/types"
	"cole/internal/vfs"
)

// Address identifies a ledger state (fixed 20 bytes).
type Address = types.Address

// Value is a fixed-size (32-byte) state value.
type Value = types.Value

// Hash is a SHA-256 digest.
type Hash = types.Hash

// Options configures a Store; zero values select the paper's defaults
// (T = 4, m = 4, 4 KiB pages).
type Options = core.Options

// Update is one pending state write of a batch: Addr receives Value at
// the height of the block the batch is applied to.
type Update = types.Update

// Version is one provenance result: the value held from block Blk.
type Version = core.Version

// Proof authenticates a provenance query against a state root digest.
type Proof = core.Proof

// Stats aggregates engine counters.
type Stats = core.Stats

// OpHists is the set of always-on operation latency histograms carried
// by Stats.Hist: Commit, PutBatch, Get, GetBatch, and Prov, one HDR
// histogram each (~1.6% relative error), recorded in-engine on every
// operation and summed across shards by a sharded store's Stats.
type OpHists = core.OpHists

// Tracer is a fixed-size, lock-free ring of engine lifecycle events
// (flush/merge/commit phases, pacing sleeps, preemptions, view
// publishes). Set one on Options.Trace to record a run, then export it
// with WriteJSONL or WriteChromeTrace (the latter opens in Perfetto /
// chrome://tracing). A single tracer may be shared by every shard of a
// store; events carry the recording shard. When the ring fills, further
// events are dropped and counted (Stats.TraceDropped), never
// overwritten.
type Tracer = obs.Tracer

// TraceEvent is one recorded lifecycle event.
type TraceEvent = obs.Event

// NewTracer returns a tracer holding up to capacity events; capacity
// <= 0 selects the default (256K events, ~14 MB).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// MetricsHandler returns an http.Handler serving the Prometheus text
// exposition of every open store's counters and latency histograms
// (engines register themselves on Open and unregister on Close),
// labeled by store directory and shard.
func MetricsHandler() http.Handler { return obs.Handler() }

// MetricsMux returns a mux with the metrics exposition at /metrics and
// the standard net/http/pprof profiling endpoints at /debug/pprof/.
func MetricsMux() *http.ServeMux { return obs.Mux() }

// ServeMetrics starts an HTTP server on addr (e.g. "localhost:9090")
// serving MetricsMux. It returns the bound address (useful with a :0
// port), a shutdown function, and any listen error.
func ServeMetrics(addr string) (string, func() error, error) { return obs.Serve(addr) }

// ErrCorrupt is the typed error every read and scrub path reports when
// a store file's bytes fail an integrity invariant (checksum mismatch,
// Merkle hash mismatch, broken key ordering, learned-index miss,
// truncation): it pins the damage to a store, shard, level, file, and
// page instead of returning garbage or panicking. Match it with
// errors.As or AsCorrupt; Stats.CorruptReads counts reads that hit one.
// A store that surfaces ErrCorrupt needs an offline VerifyStore
// (`coledb fsck`) and restore/re-sync of the damaged files.
type ErrCorrupt = types.ErrCorrupt

// AsCorrupt extracts the typed corruption attribution from err (or any
// error it wraps); ok is false when err carries none.
func AsCorrupt(err error) (ec *ErrCorrupt, ok bool) {
	ok = errors.As(err, &ec)
	return ec, ok
}

// Finding is one integrity defect VerifyStore pinned to a file.
type Finding = run.Finding

// VerifyStore scrubs a closed store directory — sharded or not — and
// reports every integrity defect: layout and manifest files, and every
// run's metadata checksum, file geometry, and stored Merkle root. A full
// scrub (fast=false) additionally re-walks every entry, recomputes every
// Merkle node, and proves learned-index coverage for every key. The
// store must not be open. notes carries non-fatal observations (orphan
// files a reopen sweeps); err is operational only — corruption is
// reported through findings, never err.
func VerifyStore(dir string, fast bool) (findings []Finding, notes []string, err error) {
	return shard.VerifyStore(nil, dir, fast)
}

// ReadResult is one point-lookup outcome of a batched read: the value,
// the height it was written at, and whether the address exists.
type ReadResult = core.ReadResult

// StorageBreakdown reports on-disk bytes split into data and index.
type StorageBreakdown = core.StorageBreakdown

// AddressFromString derives an address from a string identifier.
func AddressFromString(s string) Address { return types.AddressFromString(s) }

// AddressFromBytes derives an address from raw bytes (hashing when not
// exactly 20 bytes).
func AddressFromBytes(b []byte) Address { return types.AddressFromBytes(b) }

// ValueFromUint64 encodes an integer as a state value.
func ValueFromUint64(x uint64) Value { return types.ValueFromUint64(x) }

// ValueFromBytes encodes arbitrary bytes as a state value (hashing
// oversized input).
func ValueFromBytes(b []byte) Value { return types.ValueFromBytes(b) }

// DB is the unified store surface: every operation a workload driver,
// tool, or embedder needs, implemented by both Store (one engine) and
// ShardedStore (hash-partitioned engines). Code written against DB runs
// unchanged over any backend — the benchmark harness drives every
// system × shard-count combination through this one type, and the same
// holds for CLIs and services layered on the store.
//
// Provenance goes through Prov, whose proof handle is verified via
// ProvProof.Verify; callers that need the concrete proof structure (to
// serialize it, or to inspect shard routing) keep using the typed
// ProvQuery methods on the concrete store types.
type DB interface {
	// BeginBlock starts block `height` (monotone; COLE does not fork).
	BeginBlock(height uint64) error
	// Put writes a state update into the open block.
	Put(addr Address, v Value) error
	// PutBatch applies a block's updates under one lock acquisition.
	PutBatch(updates []Update) error
	// Commit seals the open block and returns the state root digest.
	Commit() (Hash, error)
	// Get returns the latest committed value of addr (lock-free).
	Get(addr Address) (Value, bool, error)
	// GetAt returns the value of addr active at block height blk.
	GetAt(addr Address, blk uint64) (Value, uint64, bool, error)
	// GetBatch resolves many point lookups against one committed state.
	GetBatch(addrs []Address) ([]ReadResult, error)
	// Snapshot pins the current committed state for consistent reads.
	Snapshot() Snapshot
	// Prov answers a provenance query with a verifiable proof handle.
	Prov(addr Address, blkLo, blkHi uint64) ([]Version, ProvProof, error)
	// Export streams every live entry, sorted by ⟨address, height⟩.
	Export(fn func(addr Address, blk uint64, v Value) error) (int64, error)
	// RootDigest returns the current state root digest.
	RootDigest() Hash
	// Height returns the last committed block height.
	Height() uint64
	// CheckpointHeight returns the recovery point (§4.3).
	CheckpointHeight() uint64
	// Storage reports the on-disk footprint.
	Storage() StorageBreakdown
	// Stats returns engine counters.
	Stats() Stats
	// FlushAll persists the in-memory level for a clean shutdown.
	FlushAll() error
	// Close joins background work and releases resources.
	Close() error
}

// Both store types present the full unified surface.
var (
	_ DB = (*Store)(nil)
	_ DB = (*ShardedStore)(nil)
)

// ProvProof is a backend-independent provenance proof handle: the
// single-engine Merkle proof or the sharded proof (inner proof plus the
// shard-root path), checked the same way either way.
type ProvProof interface {
	// Verify checks the proof against the root digest published in a
	// block header and returns the authenticated versions, newest first.
	Verify(hstate Hash, addr Address, blkLo, blkHi uint64) ([]Version, error)
	// Size approximates the proof's wire size in bytes.
	Size() int
}

// Store is a COLE storage engine instance.
type Store struct {
	engine *core.Engine
	unlock func()
}

// Open creates or reopens a store in opts.Dir. Stores with Shards > 1 are
// served by OpenSharded (a Store wraps exactly one engine); opening a
// directory that holds a multi-shard store fails rather than presenting
// an empty view of it. The directory's advisory lock is held until
// Close, so concurrent opens and offline reshards fail loudly.
func Open(opts Options) (*Store, error) {
	if opts.Shards > 1 {
		return nil, fmt.Errorf("cole: Options.Shards = %d; use OpenSharded for a multi-shard store", opts.Shards)
	}
	// The advisory flock guards against concurrent processes; an injected
	// filesystem (Options.FS) is process-local, so there is nothing for
	// the kernel lock to arbitrate.
	unlock := func() {}
	if vfs.IsOS(vfs.OrOS(opts.FS)) {
		var err error
		unlock, err = shard.LockDir(opts.Dir)
		if err != nil {
			return nil, err
		}
	}
	if err := shard.GuardSingleEngineFS(opts.FS, opts.Dir); err != nil {
		unlock()
		return nil, fmt.Errorf("%w; use OpenSharded", err)
	}
	e, err := core.Open(opts)
	if err != nil {
		unlock()
		return nil, err
	}
	return &Store{engine: e, unlock: unlock}, nil
}

// BeginBlock starts block `height` (monotone; COLE does not fork).
func (s *Store) BeginBlock(height uint64) error { return s.engine.BeginBlock(height) }

// Put writes a state update into the open block.
func (s *Store) Put(addr Address, v Value) error { return s.engine.Put(addr, v) }

// PutBatch writes a block's updates under one lock acquisition, collapsing
// duplicate addresses to their last write. Digests are byte-identical to
// issuing the same updates through sequential Put calls.
func (s *Store) PutBatch(updates []Update) error { return s.engine.PutBatch(updates) }

// Commit seals the open block, runs any due flush/merge cascade, and
// returns the state root digest Hstate for the block header.
func (s *Store) Commit() (Hash, error) { return s.engine.Commit() }

// Get returns the latest committed value of addr. Reads are lock-free
// and snapshot-isolated: they observe the state of the last committed
// block (never the writes of a block still being built) and run
// concurrently with commits, merges, and each other.
func (s *Store) Get(addr Address) (Value, bool, error) { return s.engine.Get(addr) }

// GetAt returns the value of addr active at block height blk and the
// height at which it was written.
func (s *Store) GetAt(addr Address, blk uint64) (Value, uint64, bool, error) {
	return s.engine.GetAt(addr, blk)
}

// GetBatch resolves many point lookups against one consistent committed
// state, in input order.
func (s *Store) GetBatch(addrs []Address) ([]ReadResult, error) {
	return s.engine.GetBatch(addrs)
}

// Snapshot pins the store's current committed state for any number of
// consistent reads at one block height, concurrently with commits and
// merges. Release it when done so storage reclaimed by merges can be
// freed.
func (s *Store) Snapshot() Snapshot { return s.engine.Snapshot() }

// ProvQuery returns the versions of addr written within [blkLo, blkHi]
// (newest first) and a proof verifiable against the current root digest.
func (s *Store) ProvQuery(addr Address, blkLo, blkHi uint64) ([]Version, *Proof, error) {
	return s.engine.ProvQuery(addr, blkLo, blkHi)
}

// Prov is the backend-independent form of ProvQuery (the DB interface):
// the same versions and proof, behind the ProvProof handle.
func (s *Store) Prov(addr Address, blkLo, blkHi uint64) ([]Version, ProvProof, error) {
	versions, proof, err := s.ProvQuery(addr, blkLo, blkHi)
	if proof == nil {
		// Avoid a typed-nil inside the interface on error paths.
		return versions, nil, err
	}
	return versions, proof, err
}

// Export streams every live entry of the store — all retained versions
// of all addresses, globally sorted by ⟨address, block height⟩ —
// through fn, from one pinned snapshot: the export is consistent with a
// single committed height and runs concurrently with commits and
// merges. Returns the number of entries streamed; fn returning an error
// aborts with that error.
func (s *Store) Export(fn func(addr Address, blk uint64, v Value) error) (int64, error) {
	snap := s.engine.Snapshot()
	defer snap.Release()
	return exportEntries(snap.Entries(), fn)
}

// VerifyProv verifies a provenance proof against a state root digest from
// a block header and returns the authenticated versions.
func VerifyProv(hstate Hash, addr Address, blkLo, blkHi uint64, proof *Proof) ([]Version, error) {
	return core.VerifyProv(hstate, addr, blkLo, blkHi, proof)
}

// RootDigest returns the current Hstate.
func (s *Store) RootDigest() Hash { return s.engine.RootDigest() }

// Height returns the last committed block height.
func (s *Store) Height() uint64 { return s.engine.Height() }

// CheckpointHeight returns the recovery point: blocks above it must be
// replayed after a crash (§4.3).
func (s *Store) CheckpointHeight() uint64 { return s.engine.CheckpointHeight() }

// Storage reports the on-disk footprint.
func (s *Store) Storage() StorageBreakdown { return s.engine.Storage() }

// Stats returns engine counters.
func (s *Store) Stats() Stats { return s.engine.Stats() }

// FlushAll persists the in-memory level for a clean shutdown.
func (s *Store) FlushAll() error { return s.engine.FlushAll() }

// Close joins background merges, releases file handles, and drops the
// directory lock. Unflushed L0 data is recovered by block replay; call
// FlushAll first to avoid replay.
func (s *Store) Close() error {
	err := s.engine.Close()
	if s.unlock != nil {
		s.unlock()
		s.unlock = nil
	}
	return err
}

// Snapshot is a pinned, immutable read handle on a store's committed
// state at one block height. All reads through it are lock-free and
// mutually consistent (on a sharded store, across every shard), and run
// concurrently with commits and background merges. Snapshots pin
// resources: Release them (idempotent) so run files retired by merges can
// be reclaimed.
type Snapshot interface {
	// Height returns the committed block height the snapshot observes.
	Height() uint64
	// Root returns the state digest (Hstate, or the combined shard
	// digest) the snapshot's reads are consistent with.
	Root() Hash
	// Get returns the latest value of addr as of the snapshot.
	Get(addr Address) (Value, bool, error)
	// GetAt returns the value of addr active at block height blk.
	GetAt(addr Address, blk uint64) (Value, uint64, bool, error)
	// GetBatch resolves many point lookups, in input order.
	GetBatch(addrs []Address) ([]ReadResult, error)
	// Release unpins the snapshot (safe to call more than once).
	Release()
}

// ShardProof authenticates a provenance query against a sharded store's
// combined digest: the owning shard's inner COLE proof plus the shard
// index and the sibling shard roots.
type ShardProof = shard.Proof

// ShardedStore hash-partitions the address space across Options.Shards
// independent engines (each in its own subdirectory of Options.Dir) and
// commits them in parallel. The per-block digest deterministically
// combines the per-shard Hstate roots; with Shards = 1 it equals the
// single-engine digest, so a one-shard store is byte-compatible with a
// Store opened by Open.
type ShardedStore struct {
	store *shard.Store
}

// OpenSharded creates or reopens a sharded store in opts.Dir. Shards = 0
// adopts the count persisted in the store directory (1 for a fresh one);
// an explicit count must match the persisted one on reopen.
func OpenSharded(opts Options) (*ShardedStore, error) {
	s, err := shard.Open(opts)
	if err != nil {
		return nil, err
	}
	return &ShardedStore{store: s}, nil
}

// Shards returns the partition count.
func (s *ShardedStore) Shards() int { return s.store.Shards() }

// Generation returns the store's reshard generation: 0 until the first
// Reshard, then the number of reshards applied to the directory.
func (s *ShardedStore) Generation() uint64 { return s.store.Generation() }

// ShardOf returns the partition that owns addr.
func (s *ShardedStore) ShardOf(addr Address) int { return s.store.ShardIndex(addr) }

// BeginBlock starts block `height` on every shard (monotone; no forks).
func (s *ShardedStore) BeginBlock(height uint64) error { return s.store.BeginBlock(height) }

// Put routes a state update to the owning shard.
func (s *ShardedStore) Put(addr Address, v Value) error { return s.store.Put(addr, v) }

// PutBatch pre-buckets a block's updates per shard and applies each
// bucket concurrently with one engine call — the hot write path for
// block-oriented ingestion. All shards' background merges share one
// bounded worker pool (Options.MergeWorkers).
func (s *ShardedStore) PutBatch(updates []Update) error { return s.store.PutBatch(updates) }

// Commit seals the open block across all shards in parallel and returns
// the combined state root digest for the block header. The digest is
// deterministic regardless of shard goroutine completion order. During
// post-crash replay, a shard whose checkpoint already covers a replayed
// block contributes the exact root it originally committed at that
// height (persisted per-shard root history, Options.RootHistory deep),
// so replayed digests reproduce the originally published headers; a
// height that has aged out of the retained history falls back to the
// shard's current root, and with AsyncMerge an actively replaying
// shard's own digests converge from its first re-triggered cascade.
func (s *ShardedStore) Commit() (Hash, error) { return s.store.Commit() }

// Get returns the latest committed value of addr (lock-free, snapshot
// isolated; see Store.Get).
func (s *ShardedStore) Get(addr Address) (Value, bool, error) { return s.store.Get(addr) }

// GetAt returns the value of addr active at block height blk.
func (s *ShardedStore) GetAt(addr Address, blk uint64) (Value, uint64, bool, error) {
	return s.store.GetAt(addr, blk)
}

// GetBatch resolves many point lookups in one pass: addresses are
// bucketed per shard, buckets fan out concurrently, and all results
// observe the same committed block height, in input order.
func (s *ShardedStore) GetBatch(addrs []Address) ([]ReadResult, error) {
	return s.store.GetBatch(addrs)
}

// Snapshot pins all shard views atomically at one committed block height:
// cross-shard reads through it are mutually consistent even while blocks
// keep committing. Release it when done.
func (s *ShardedStore) Snapshot() Snapshot { return s.store.Snapshot() }

// ProvQuery returns the versions of addr written within [blkLo, blkHi]
// (newest first) and a proof verifiable against the combined digest.
func (s *ShardedStore) ProvQuery(addr Address, blkLo, blkHi uint64) ([]Version, *ShardProof, error) {
	return s.store.ProvQuery(addr, blkLo, blkHi)
}

// Prov is the backend-independent form of ProvQuery (the DB interface):
// the same versions and proof, behind the ProvProof handle.
func (s *ShardedStore) Prov(addr Address, blkLo, blkHi uint64) ([]Version, ProvProof, error) {
	versions, proof, err := s.ProvQuery(addr, blkLo, blkHi)
	if proof == nil {
		// Avoid a typed-nil inside the interface on error paths.
		return versions, nil, err
	}
	return versions, proof, err
}

// Export streams every live entry of all shards, globally sorted by
// ⟨address, block height⟩, through fn — see Store.Export. The snapshot
// pins every shard atomically, so the export is one consistent
// cross-shard state.
func (s *ShardedStore) Export(fn func(addr Address, blk uint64, v Value) error) (int64, error) {
	snap := s.store.Snapshot()
	defer snap.Release()
	return exportEntries(snap.Entries(), fn)
}

// exportEntries drains a merged snapshot iterator into fn.
func exportEntries(it *run.MergeIterator, fn func(addr Address, blk uint64, v Value) error) (int64, error) {
	var n int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if err := fn(e.Key.Addr, e.Key.Blk, e.Value); err != nil {
			return n, err
		}
		n++
	}
	return n, it.Err()
}

// VerifyShardProv verifies a sharded provenance proof against the
// combined state root digest from a block header and returns the
// authenticated versions.
func VerifyShardProv(hstate Hash, addr Address, blkLo, blkHi uint64, proof *ShardProof) ([]Version, error) {
	return shard.VerifyProv(hstate, addr, blkLo, blkHi, proof)
}

// RootDigest returns the current combined digest.
func (s *ShardedStore) RootDigest() Hash { return s.store.RootDigest() }

// Height returns the highest committed block height across shards.
func (s *ShardedStore) Height() uint64 { return s.store.Height() }

// CheckpointHeight returns the lowest shard checkpoint: blocks above it
// must be replayed after a crash.
func (s *ShardedStore) CheckpointHeight() uint64 { return s.store.CheckpointHeight() }

// Storage reports the on-disk footprint summed across shards.
func (s *ShardedStore) Storage() StorageBreakdown { return s.store.Storage() }

// Stats returns engine counters summed across shards.
func (s *ShardedStore) Stats() Stats { return s.store.Stats() }

// FlushAll persists every shard's in-memory level for a clean shutdown.
func (s *ShardedStore) FlushAll() error { return s.store.FlushAll() }

// Close joins background merges and releases file handles on every shard.
func (s *ShardedStore) Close() error { return s.store.Close() }

// ShardStat is one shard's balance snapshot: stored entries, on-disk
// bytes, routed writes, and merge back-pressure events. A persistently
// lopsided entry/byte spread is the cue that a Reshard is worth its
// rewrite cost.
type ShardStat = shard.ShardStat

// ShardStats returns each shard's balance snapshot, in shard order.
func (s *ShardedStore) ShardStats() []ShardStat { return s.store.ShardStats() }

// ReshardOptions tunes an offline Reshard; the zero value uses the store
// defaults. Structural parameters (size ratio, MHT fanout, merge mode)
// are always inherited from the source store.
type ReshardOptions = reshard.Options

// ReshardReport summarizes a completed Reshard: entry and byte volume,
// per-destination counts, imbalance, and wall-clock duration.
type ReshardReport = reshard.Report

// Reshard rewrites the store in dir from its current partition count to
// `shards` partitions offline — no replay from genesis, no per-key
// re-insertion. Every live key/version streams out of the source shards
// in one sorted pass and the destination shards' bottom-level runs,
// learned indexes, Merkle files, and Bloom filters are bulk-built
// directly; the installation commits through a single atomic SHARDS
// rename, so a reshard interrupted at any point leaves the original
// store fully intact and readable.
//
// The store must be closed (Reshard needs exclusive ownership of the
// directory) and cleanly flushed: all shards' durable checkpoints must
// agree, which FlushAll before shutdown guarantees; a store that crashed
// mid-operation must be opened and replayed first.
//
// Root epochs: the combined digest folds the per-shard roots, so it
// necessarily changes with the partition count. Reshard starts a new
// root epoch at the store's durable height — every Get/GetAt/GetBatch
// answer and every provenance version list is byte-identical before and
// after, and new proofs verify against the new epoch's digests, but
// combined digests published before the reshard can no longer be
// reproduced by the rewritten store (the per-shard root histories
// restart empty).
func Reshard(dir string, shards int, opts ReshardOptions) (*ReshardReport, error) {
	return reshard.Reshard(dir, shards, opts)
}
