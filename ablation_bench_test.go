// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - PLA construction: greedy shrinking-cone (default, O(1) state)
//     vs the paper's exact convex-hull method (fewer models, buffered);
//   - Bloom filters: read cost with and without run filters;
//   - Page size: the ε = records/page/2 trade-off between prediction
//     slack and page fan-in;
//   - Merkle fanout m: run-construction cost.
//
// Run with: go test -bench 'Ablation' -benchmem
package cole_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cole/internal/pla"
	"cole/internal/run"
	"cole/internal/types"
)

// ablationEntries builds a realistic sorted run input: many addresses
// with skewed version counts.
func ablationEntries(n int) []types.Entry {
	r := rand.New(rand.NewSource(9))
	var out []types.Entry
	for len(out) < n {
		addr := types.AddressFromUint64(r.Uint64() % uint64(n/4+1))
		blk := uint64(r.Intn(64))
		for v := 0; v < 1+r.Intn(8) && len(out) < n; v++ {
			out = append(out, types.Entry{
				Key:   types.CompoundKey{Addr: addr, Blk: blk},
				Value: types.ValueFromUint64(blk),
			})
			blk += 1 + uint64(r.Intn(16))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	// Dedup (same addr may be drawn twice).
	dedup := out[:0]
	for i, e := range out {
		if i == 0 || e.Key != out[i-1].Key {
			dedup = append(dedup, e)
		}
	}
	return dedup
}

// BenchmarkAblationPLABuilders compares segment counts and build speed of
// the two ε-bounded PLA constructions on the same stream.
func BenchmarkAblationPLABuilders(b *testing.B) {
	entries := ablationEntries(200_000)
	const eps = 34
	for _, variant := range []struct {
		name string
		mk   func(emit func(pla.Model) error) (interface {
			Add(types.CompoundKey, int64) error
			Finish() error
		}, error)
	}{
		{"greedy", func(emit func(pla.Model) error) (interface {
			Add(types.CompoundKey, int64) error
			Finish() error
		}, error) {
			return pla.NewBuilder(eps, emit)
		}},
		{"optimal", func(emit func(pla.Model) error) (interface {
			Add(types.CompoundKey, int64) error
			Finish() error
		}, error) {
			return pla.NewOptimalBuilder(eps, emit)
		}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var models int
			for i := 0; i < b.N; i++ {
				models = 0
				builder, err := variant.mk(func(pla.Model) error { models++; return nil })
				if err != nil {
					b.Fatal(err)
				}
				for j, e := range entries {
					if err := builder.Add(e.Key, int64(j)); err != nil {
						b.Fatal(err)
					}
				}
				if err := builder.Finish(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(models), "models")
			b.ReportMetric(float64(len(entries))/float64(models), "keys/model")
		})
	}
}

// BenchmarkAblationRunBuild measures end-to-end run construction (value +
// index + Merkle files) under both PLA variants and two Merkle fanouts.
func BenchmarkAblationRunBuild(b *testing.B) {
	entries := ablationEntries(50_000)
	for _, optimal := range []bool{false, true} {
		for _, m := range []int{2, 4, 16} {
			name := fmt.Sprintf("pla=%s/m=%d", map[bool]string{false: "greedy", true: "optimal"}[optimal], m)
			b.Run(name, func(b *testing.B) {
				var models int64
				for i := 0; i < b.N; i++ {
					dir := b.TempDir()
					r, err := run.Build(dir, 1, int64(len(entries)),
						run.Params{Fanout: m, OptimalPLA: optimal},
						run.NewSliceIterator(entries))
					if err != nil {
						b.Fatal(err)
					}
					models = r.Models()
					r.Close()
				}
				b.ReportMetric(float64(models), "models")
			})
		}
	}
}

// BenchmarkAblationBloom measures the value of per-run Bloom filters for
// absent-address lookups (the dominant case in multi-run level scans).
func BenchmarkAblationBloom(b *testing.B) {
	entries := ablationEntries(50_000)
	dir := b.TempDir()
	r, err := run.Build(dir, 1, int64(len(entries)), run.Params{Fanout: 4}, run.NewSliceIterator(entries))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()

	b.Run("absent-with-bloom", func(b *testing.B) {
		skipped := 0
		for i := 0; i < b.N; i++ {
			// Addresses far outside the populated id space.
			addr := types.AddressFromUint64(1<<40 + uint64(i))
			_, _, found, skip, err := r.Get(addr)
			if err != nil || found {
				b.Fatal(err, found)
			}
			if skip {
				skipped++
			}
		}
		if b.N > 0 {
			b.ReportMetric(100*float64(skipped)/float64(b.N), "%skipped")
		}
	})
	b.Run("absent-without-bloom", func(b *testing.B) {
		// Bypass the filter by probing the predecessor path via GetAt on
		// present prefixes: approximate the no-bloom cost with a full
		// learned-index descent for a present address (the filter cannot
		// skip those).
		present := entries[len(entries)/2].Key.Addr
		for i := 0; i < b.N; i++ {
			if _, _, found, _, err := r.Get(present); err != nil || !found {
				b.Fatal(err, found)
			}
		}
	})
}

// BenchmarkAblationPageSize sweeps the page size, which sets ε on both
// value and index files: bigger pages → looser models but fewer, larger
// reads.
func BenchmarkAblationPageSize(b *testing.B) {
	entries := ablationEntries(50_000)
	for _, ps := range []int{512, 2048, 4096, 16384} {
		b.Run(fmt.Sprintf("page=%d", ps), func(b *testing.B) {
			dir := b.TempDir()
			r, err := run.Build(dir, 1, int64(len(entries)), run.Params{Fanout: 4, PageSize: ps}, run.NewSliceIterator(entries))
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := entries[rng.Intn(len(entries))]
				_, _, found, _, err := r.GetAt(e.Key.Addr, e.Key.Blk)
				if err != nil || !found {
					b.Fatal(err, found)
				}
			}
			b.StopTimer()
			_, idxBytes := r.SizeOnDisk()
			b.ReportMetric(float64(idxBytes), "idx+mrk-bytes")
			b.ReportMetric(float64(r.Models()), "models")
		})
	}
}
