// Command colebench regenerates the tables and figures of the COLE paper's
// evaluation (§8). Each experiment prints the series the corresponding
// figure plots; see EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	colebench -exp fig9 [-blocks N] [-tx N] [-scale paper|lab|quick]
//	colebench -exp shardscale -shards 8
//	colebench -exp mergesched -merge-workers 8
//	colebench -exp readscale -readers 8
//	colebench -exp workloads -duration 5s -conc 8 -shards 4
//	colebench -exp stalls -duration 5s -pacing-target 8388608
//	colebench -exp all -json results.json
//
// Experiments: fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1
// mptbreakdown shardscale mergesched readscale reshard compaction
// workloads stalls all.
// -shards N
// runs the COLE systems of any experiment over an N-shard store; for
// shardscale (and the reshard target sweep) it sets the top of the
// power-of-two sweep. -merge-workers W bounds the
// shared background merge pool (for mergesched: the top of its sweep);
// -merge-partitions W fans each level merge across W key-range spans of
// the shared pool (0 auto-sizes by merge volume; output runs are
// byte-identical at any width);
// -readers R sets the top of readscale's reader-goroutine sweep; -batch
// routes each block through the batched write pipeline (off by default
// so the paper-replication figures keep the paper's per-Put methodology;
// the shardscale/mergesched sweeps always batch); -json writes every
// table (with raw measurements, including merge waits, per-shard write
// counts, and read-scaling TPS) to a machine-readable report.
//
// The workloads experiment drives the open-loop harness over the
// pluggable workload matrix (uniform, zipfian, hotaccount × read mixes ×
// COLE/COLE* × shard counts, every variant behind the cole.DB interface)
// and reports per-op latency percentiles plus write/read/space
// amplification. Its traffic knobs: -duration and -warmup set the
// measured and unrecorded window lengths, -conc the concurrent reader
// count, -keys the key population (default: the scale preset's record
// count), -rate a target ops/s arrival rate (0 = closed loop), and
// -shards adds a sharded column next to the single-store one.
//
// The stalls experiment measures commit tail latency under a sustained
// open-loop write stream across {paced, unpaced} × {preemptible,
// monolithic} for both COLE systems: preemptible cells run chunked
// merges, the pipelined commit, and the sorted L0 bulk-load; paced cells
// apply compaction-debt backpressure (-pacing-target overrides the
// auto-sized debt level, -rate the calibrated arrival rate). A
// digest-identity pass first proves every cell commits byte-identical
// per-block Hstate digests.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cole"
	"cole/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: fig9..fig15, table1, mptbreakdown, shardscale, mergesched, readscale, reshard, compaction, workloads, stalls, all")
		scale    = flag.String("scale", "quick", "preset scale: quick | lab | paper")
		blocks   = flag.Int("blocks", 0, "override block count")
		tx       = flag.Int("tx", 0, "override transactions per block (paper: 100)")
		memcap   = flag.Int("memcap", 0, "override COLE in-memory capacity B (entries)")
		ratio    = flag.Int("ratio", 0, "override size ratio T")
		fanout   = flag.Int("fanout", 0, "override MHT fanout m")
		shards   = flag.Int("shards", 0, "COLE shard count (shardscale: top of the 1,2,4,... sweep)")
		readers  = flag.Int("readers", 0, "readscale: top of the 1,2,4,... reader-goroutine sweep (default 8)")
		workers  = flag.Int("merge-workers", 0, "shared merge worker budget, 0 = GOMAXPROCS (mergesched: top of the 1,2,4,... sweep)")
		mergePar = flag.Int("merge-partitions", 0, "key-range partitions per level merge: 1 = sequential, 0 = auto-size by merge volume (byte-identical output at any width)")
		batch    = flag.Bool("batch", false, "apply each block's writes as one PutBatch (COLE systems only; shardscale/mergesched always batch)")
		jsonOut  = flag.String("json", "", "also write a machine-readable report (tables + raw measurements) to this path")
		scratch  = flag.String("scratch", "", "scratch directory (default: system temp)")
		seed     = flag.Int64("seed", 42, "workload seed")
		duration = flag.Duration("duration", 0, "workloads: measured open-loop window per cell (default 2s)")
		warmup   = flag.Duration("warmup", 0, "workloads: unrecorded warm-up before the window (default 200ms)")
		conc     = flag.Int("conc", 0, "workloads: concurrent reader goroutines (default 4)")
		keys     = flag.Int("keys", 0, "workloads: key population (default: the scale preset's record count)")
		rate     = flag.Float64("rate", 0, "workloads/stalls: target arrival rate in ops/s (0 = closed loop; stalls calibrates its own)")
		paceTgt  = flag.Int64("pacing-target", 0, "stalls: compaction-debt bytes at which ingest pacing reaches full delay (0 = auto-size from memcap)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile per experiment to <path>-<exp><ext>")
		memProf  = flag.String("memprofile", "", "write a post-experiment heap profile per experiment to <path>-<exp><ext>")
		traceOut = flag.String("trace-out", "", "attach the lifecycle tracer to every store and write per-experiment Chrome traces to <path>-<exp><ext> (+ JSONL next to each)")
		metrics  = flag.String("metrics-addr", "", "serve live Prometheus metrics and pprof on this address (e.g. localhost:9090) for the run's duration")
	)
	flag.Parse()

	if *metrics != "" {
		addr, shutdown, err := cole.ServeMetrics(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		fmt.Printf("metrics at http://%s/metrics (pprof at /debug/pprof/)\n\n", addr)
	}

	cfg, heights, prov := preset(*scale)
	if *blocks > 0 {
		cfg.Blocks = *blocks
	}
	if *tx > 0 {
		cfg.TxPerBlock = *tx
	}
	if *memcap > 0 {
		cfg.MemCap = *memcap
	}
	if *ratio > 0 {
		cfg.SizeRatio = *ratio
	}
	if *fanout > 0 {
		cfg.Fanout = *fanout
	}
	if *shards > 1 {
		cfg.Shards = *shards
	}
	cfg.MergeWorkers = *workers
	cfg.MergePartitions = *mergePar
	cfg.Batched = *batch
	cfg.Seed = *seed
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *warmup > 0 {
		cfg.WarmUp = *warmup
	}
	if *conc > 0 {
		cfg.Concurrency = *conc
	}
	if *keys > 0 {
		cfg.Keys = *keys
	}
	cfg.Rate = *rate
	cfg.PacingTarget = *paceTgt
	prov.ScratchDir = *scratch

	// The tracer must be in cfg before any experiment block runs: the
	// pipeline experiments snapshot cfg when their block executes, not
	// when the experiment starts. One ring serves every experiment —
	// exported and reset between them, so each artifact holds exactly one
	// experiment's timeline.
	var tracer *cole.Tracer
	if *traceOut != "" {
		tracer = cole.NewTracer(0)
		cfg.Trace = tracer
	}

	var tables []*bench.Table
	run := func(name string, f func() (*bench.Table, error)) {
		start := time.Now()
		var cpuFile *os.File
		if *cpuProf != "" {
			cpuFile = createArtifact(*cpuProf, name)
			if err := pprof.StartCPUProfile(cpuFile); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
				os.Exit(1)
			}
		}
		t, err := f()
		if cpuFile != nil {
			pprof.StopCPUProfile()
			closeArtifact(cpuFile)
			fmt.Printf("cpu profile: %s\n", cpuFile.Name())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		if *memProf != "" {
			heapFile := createArtifact(*memProf, name)
			runtime.GC()
			if err := pprof.WriteHeapProfile(heapFile); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			closeArtifact(heapFile)
			fmt.Printf("heap profile: %s\n", heapFile.Name())
		}
		if tracer != nil {
			// Every store the experiment opened is closed by now, so the
			// ring is quiescent and safe to export.
			path := artifactPath(*traceOut, name)
			exportTrace(tracer, path)
			fmt.Printf("trace: %s (%d events, %d dropped; JSONL at %sl)\n",
				path, tracer.Len(), tracer.Dropped(), path)
			tracer.Reset()
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s finished in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		tables = append(tables, t)
	}

	overall := bench.OverallOptions{Heights: heights, ScratchDir: *scratch,
		LIPPMax: heights[0], CMIMax: heights[len(heights)/2]}

	all := *exp == "all"
	any := false
	if all || *exp == "fig9" {
		run("fig9", func() (*bench.Table, error) { return bench.Fig9(cfg, overall) })
		any = true
	}
	if all || *exp == "fig10" {
		run("fig10", func() (*bench.Table, error) { return bench.Fig10(cfg, overall) })
		any = true
	}
	if all || *exp == "fig11" {
		run("fig11", func() (*bench.Table, error) {
			return bench.Fig11(cfg, heights[:2], *scratch)
		})
		any = true
	}
	if all || *exp == "fig12" {
		run("fig12", func() (*bench.Table, error) {
			return bench.Fig12(cfg, heights[:2], *scratch)
		})
		any = true
	}
	if all || *exp == "fig13" {
		run("fig13", func() (*bench.Table, error) { return bench.Fig13(cfg, nil, *scratch) })
		any = true
	}
	if all || *exp == "fig14" {
		run("fig14", func() (*bench.Table, error) { return bench.Fig14(cfg, prov) })
		any = true
	}
	if all || *exp == "fig15" {
		run("fig15", func() (*bench.Table, error) { return bench.Fig15(cfg, prov) })
		any = true
	}
	if all || *exp == "table1" {
		run("table1", func() (*bench.Table, error) { return bench.Table1(cfg, *scratch) })
		any = true
	}
	if all || *exp == "mptbreakdown" {
		run("mptbreakdown", func() (*bench.Table, error) { return bench.MPTBreakdown(cfg, *scratch) })
		any = true
	}
	// The write-pipeline sweeps measure block-batched ingestion, so they
	// default to the paper's 100-tx blocks (an explicit -tx still wins):
	// tiny preset blocks under-fill the batch and the per-block fixed
	// costs drown the batching signal.
	pipelineCfg := func() bench.Config {
		c := cfg
		if *tx == 0 {
			c.TxPerBlock = 100
		}
		return c
	}
	if all || *exp == "shardscale" {
		// The sweep compares shard counts itself, so the global override
		// only sets its upper bound.
		c := pipelineCfg()
		c.Shards = 0
		run("shardscale", func() (*bench.Table, error) {
			return bench.ShardScaling(c, powerSweep(*shards, 8), *scratch)
		})
		any = true
	}
	if all || *exp == "mergesched" {
		// Likewise: the sweep compares worker budgets itself, so the
		// global -merge-workers only sets its upper bound.
		c := pipelineCfg()
		c.MergeWorkers = 0
		run("mergesched", func() (*bench.Table, error) {
			return bench.MergeSched(c, powerSweep(*workers, 8), *scratch)
		})
		any = true
	}
	if all || *exp == "reshard" {
		// The sweep varies the rewrite's *target* count from a fixed
		// 2-shard source, so the global -shards only sets its upper bound.
		c := pipelineCfg()
		c.Shards = 0
		run("reshard", func() (*bench.Table, error) {
			return bench.ReshardBench(c, powerSweep(*shards, 8), *scratch)
		})
		any = true
	}
	if all || *exp == "compaction" {
		// Single-shard by design: the experiment isolates the merge data
		// path (legacy vs streaming IO) from shard parallelism.
		c := pipelineCfg()
		c.Shards = 0
		run("compaction", func() (*bench.Table, error) {
			return bench.CompactionBench(c, *scratch)
		})
		any = true
	}
	if all || *exp == "workloads" {
		// The matrix sweeps its own shard axis ({1} plus -shards when
		// set); the distribution × mix axis is the default spec set.
		run("workloads", func() (*bench.Table, error) {
			return bench.Workloads(cfg, nil, nil, *scratch)
		})
		any = true
	}
	if all || *exp == "stalls" {
		// Single-shard by design: the matrix isolates the commit path's
		// interaction with the merge pool from shard parallelism, and the
		// pool deliberately defaults to one worker.
		c := pipelineCfg()
		c.Shards = 0
		run("stalls", func() (*bench.Table, error) {
			return bench.StallBench(c, *scratch)
		})
		any = true
	}
	if all || *exp == "readscale" {
		// Single-shard by design: the sweep isolates read-path scaling
		// from shard parallelism.
		c := pipelineCfg()
		c.Shards = 0
		run("readscale", func() (*bench.Table, error) {
			return bench.ReadScaling(c, powerSweep(*readers, 8), *scratch)
		})
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut != "" {
		if err := bench.NewReport(tables).WriteJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}
}

// artifactPath inserts "-<name>" before the path's extension, so one
// flag value yields one artifact per experiment.
func artifactPath(path, name string) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "-" + name + ext
}

func createArtifact(path, name string) *os.File {
	f, err := os.Create(artifactPath(path, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "create %s: %v\n", artifactPath(path, name), err)
		os.Exit(1)
	}
	return f
}

func closeArtifact(f *os.File) {
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close %s: %v\n", f.Name(), err)
		os.Exit(1)
	}
}

// exportTrace writes the Chrome trace-event form at path and the raw
// JSONL event log at path+"l".
func exportTrace(tr *cole.Tracer, path string) {
	f, err := os.Create(path)
	if err == nil {
		err = tr.WriteChromeTrace(f)
	}
	if err == nil {
		err = f.Close()
	}
	if err == nil {
		var g *os.File
		if g, err = os.Create(path + "l"); err == nil {
			if err = tr.WriteJSONL(g); err == nil {
				err = g.Close()
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace export: %v\n", err)
		os.Exit(1)
	}
}

// powerSweep returns the counts a sweep experiment visits: powers of two
// below max, then max itself (so an explicit flag value is always
// measured; def is the top when the flag is unset).
func powerSweep(max, def int) []int {
	if max < 1 {
		max = def
	}
	var counts []int
	for n := 1; n < max; n *= 2 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// preset returns (base config, block-height sweep, provenance options)
// for a scale tier. "paper" approaches the published setup (10^5 blocks ×
// 100 tx would take many hours; we cap the sweep at 10^4).
func preset(scale string) (bench.Config, []int, bench.ProvOptions) {
	switch scale {
	case "paper":
		cfg := bench.NewConfig(bench.Params{TxPerBlock: 100, Accounts: 100_000, Records: 100_000, MemCap: 262_144, MemBytes: 64 << 20})
		return cfg, []int{100, 1000, 10_000}, bench.ProvOptions{Blocks: 10_000, Queries: 50}
	case "lab":
		cfg := bench.NewConfig(bench.Params{TxPerBlock: 100, Accounts: 10_000, Records: 10_000, MemCap: 16_384, MemBytes: 8 << 20})
		return cfg, []int{50, 200, 1000}, bench.ProvOptions{Blocks: 1000, Queries: 30}
	default: // quick
		cfg := bench.NewConfig(bench.Params{TxPerBlock: 50, Accounts: 1000, Records: 1000, MemCap: 2048, MemBytes: 1 << 20})
		return cfg, []int{25, 100, 300}, bench.ProvOptions{Blocks: 300, Queries: 15}
	}
}
