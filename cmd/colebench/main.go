// Command colebench regenerates the tables and figures of the COLE paper's
// evaluation (§8). Each experiment prints the series the corresponding
// figure plots; see EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	colebench -exp fig9 [-blocks N] [-tx N] [-scale paper|lab|quick]
//	colebench -exp shardscale -shards 8
//	colebench -exp all
//
// Experiments: fig9 fig10 fig11 fig12 fig13 fig14 fig15 table1
// mptbreakdown shardscale all. -shards N runs the COLE systems of any
// experiment over an N-shard store; for shardscale it sets the top of
// the power-of-two sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cole/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig9..fig15, table1, mptbreakdown, all")
		scale   = flag.String("scale", "quick", "preset scale: quick | lab | paper")
		blocks  = flag.Int("blocks", 0, "override block count")
		tx      = flag.Int("tx", 0, "override transactions per block (paper: 100)")
		memcap  = flag.Int("memcap", 0, "override COLE in-memory capacity B (entries)")
		ratio   = flag.Int("ratio", 0, "override size ratio T")
		fanout  = flag.Int("fanout", 0, "override MHT fanout m")
		shards  = flag.Int("shards", 0, "COLE shard count (shardscale: top of the 1,2,4,... sweep)")
		scratch = flag.String("scratch", "", "scratch directory (default: system temp)")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	cfg, heights, prov := preset(*scale)
	if *blocks > 0 {
		cfg.Blocks = *blocks
	}
	if *tx > 0 {
		cfg.TxPerBlock = *tx
	}
	if *memcap > 0 {
		cfg.MemCap = *memcap
	}
	if *ratio > 0 {
		cfg.SizeRatio = *ratio
	}
	if *fanout > 0 {
		cfg.Fanout = *fanout
	}
	if *shards > 1 {
		cfg.Shards = *shards
	}
	cfg.Seed = *seed
	prov.ScratchDir = *scratch

	run := func(name string, f func() (*bench.Table, error)) {
		start := time.Now()
		t, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		fmt.Printf("(%s finished in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	overall := bench.OverallOptions{Heights: heights, ScratchDir: *scratch,
		LIPPMax: heights[0], CMIMax: heights[len(heights)/2]}

	all := *exp == "all"
	any := false
	if all || *exp == "fig9" {
		run("fig9", func() (*bench.Table, error) { return bench.Fig9(cfg, overall) })
		any = true
	}
	if all || *exp == "fig10" {
		run("fig10", func() (*bench.Table, error) { return bench.Fig10(cfg, overall) })
		any = true
	}
	if all || *exp == "fig11" {
		run("fig11", func() (*bench.Table, error) {
			return bench.Fig11(cfg, heights[:2], *scratch)
		})
		any = true
	}
	if all || *exp == "fig12" {
		run("fig12", func() (*bench.Table, error) {
			return bench.Fig12(cfg, heights[:2], *scratch)
		})
		any = true
	}
	if all || *exp == "fig13" {
		run("fig13", func() (*bench.Table, error) { return bench.Fig13(cfg, nil, *scratch) })
		any = true
	}
	if all || *exp == "fig14" {
		run("fig14", func() (*bench.Table, error) { return bench.Fig14(cfg, prov) })
		any = true
	}
	if all || *exp == "fig15" {
		run("fig15", func() (*bench.Table, error) { return bench.Fig15(cfg, prov) })
		any = true
	}
	if all || *exp == "table1" {
		run("table1", func() (*bench.Table, error) { return bench.Table1(cfg, *scratch) })
		any = true
	}
	if all || *exp == "mptbreakdown" {
		run("mptbreakdown", func() (*bench.Table, error) { return bench.MPTBreakdown(cfg, *scratch) })
		any = true
	}
	if all || *exp == "shardscale" {
		// The sweep compares shard counts itself, so the global override
		// only sets its upper bound.
		c := cfg
		c.Shards = 0
		run("shardscale", func() (*bench.Table, error) {
			return bench.ShardScaling(c, shardSweep(*shards), *scratch)
		})
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// shardSweep returns the shard counts the scaling experiment visits:
// powers of two below max, then max itself (so an explicit -shards value
// is always measured; default top is 8).
func shardSweep(max int) []int {
	if max < 1 {
		max = 8
	}
	var counts []int
	for n := 1; n < max; n *= 2 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// preset returns (base config, block-height sweep, provenance options)
// for a scale tier. "paper" approaches the published setup (10^5 blocks ×
// 100 tx would take many hours; we cap the sweep at 10^4).
func preset(scale string) (bench.Config, []int, bench.ProvOptions) {
	switch scale {
	case "paper":
		cfg := bench.Config{TxPerBlock: 100, Accounts: 100_000, Records: 100_000, MemCap: 262_144, MemBytes: 64 << 20}
		return cfg, []int{100, 1000, 10_000}, bench.ProvOptions{Blocks: 10_000, Queries: 50}
	case "lab":
		cfg := bench.Config{TxPerBlock: 100, Accounts: 10_000, Records: 10_000, MemCap: 16_384, MemBytes: 8 << 20}
		return cfg, []int{50, 200, 1000}, bench.ProvOptions{Blocks: 1000, Queries: 30}
	default: // quick
		cfg := bench.Config{TxPerBlock: 50, Accounts: 1000, Records: 1000, MemCap: 2048, MemBytes: 1 << 20}
		return cfg, []int{25, 100, 300}, bench.ProvOptions{Blocks: 300, Queries: 15}
	}
}
