// Command coledb is a small CLI over a COLE store directory: put state
// updates block by block, read latest or historical values, and run
// verified provenance queries.
//
// Usage:
//
//	coledb -dir ledger put <height> <addr=value> [<addr=value> ...]
//	coledb -dir ledger get <addr>
//	coledb -dir ledger getbatch <addr> [<addr> ...]
//	coledb -dir ledger getat <addr> <height>
//	coledb -dir ledger prov <addr> <blkLo> <blkHi>
//	coledb -dir ledger stat
//
// Addresses and values are free-form strings (hashed/padded to their
// fixed widths). -shards N partitions a fresh store directory across N
// engines committed in parallel; the count is persisted per directory,
// reopening adopts it automatically, and existing unsharded directories
// keep working as single-shard stores.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cole"
)

func main() {
	var (
		dir     = flag.String("dir", "coledb", "store directory")
		async   = flag.Bool("async", false, "use the asynchronous merge (COLE*)")
		memB    = flag.Int("memcap", 4096, "in-memory level capacity B")
		ratio   = flag.Int("ratio", 4, "size ratio T")
		m       = flag.Int("fanout", 4, "MHT fanout m")
		shards  = flag.Int("shards", 0, "shard count for a fresh store (0 = adopt the directory's persisted count)")
		workers = flag.Int("merge-workers", 0, "background merge worker budget shared across all shards (0 = GOMAXPROCS)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fail("missing command: put | get | getbatch | getat | prov | stat")
	}

	// A 1-shard store is byte-compatible with the unsharded engine, so the
	// sharded open serves every store directory, old or new.
	store, err := cole.OpenSharded(cole.Options{
		Dir: *dir, AsyncMerge: *async, MemCapacity: *memB, SizeRatio: *ratio, Fanout: *m,
		Shards: *shards, MergeWorkers: *workers,
	})
	if err != nil {
		fail("open: %v", err)
	}
	defer store.Close()

	switch args[0] {
	case "put":
		if len(args) < 3 {
			fail("put <height> <addr=value> ...")
		}
		h := parseU64(args[1])
		// The command's pairs form one block, so they land as one batch:
		// pre-bucketed per shard, one engine call per bucket.
		batch := make([]cole.Update, 0, len(args)-2)
		for _, kv := range args[2:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fail("bad pair %q, want addr=value", kv)
			}
			batch = append(batch, cole.Update{
				Addr:  cole.AddressFromString(parts[0]),
				Value: cole.ValueFromBytes([]byte(parts[1])),
			})
		}
		if err := store.BeginBlock(h); err != nil {
			fail("begin block: %v", err)
		}
		if err := store.PutBatch(batch); err != nil {
			fail("put: %v", err)
		}
		root, err := store.Commit()
		if err != nil {
			fail("commit: %v", err)
		}
		if err := store.FlushAll(); err != nil {
			fail("flush: %v", err)
		}
		fmt.Printf("block %d committed, Hstate=%s\n", h, root)
	case "get":
		if len(args) != 2 {
			fail("get <addr>")
		}
		v, ok, err := store.Get(cole.AddressFromString(args[1]))
		if err != nil {
			fail("get: %v", err)
		}
		if !ok {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\n", renderValue(v))
	case "getbatch":
		if len(args) < 2 {
			fail("getbatch <addr> [<addr> ...]")
		}
		addrs := make([]cole.Address, len(args)-1)
		for i, a := range args[1:] {
			addrs[i] = cole.AddressFromString(a)
		}
		// A snapshot pins one committed height so every address of the
		// batch is answered from the same consistent state, even on a
		// multi-shard store.
		snap := store.Snapshot()
		defer snap.Release()
		res, err := snap.GetBatch(addrs)
		if err != nil {
			fail("getbatch: %v", err)
		}
		fmt.Printf("snapshot at block %d (Hstate %s)\n", snap.Height(), snap.Root())
		for i, r := range res {
			if !r.Found {
				fmt.Printf("  %s: (not found)\n", args[i+1])
				continue
			}
			fmt.Printf("  %s: %s (written at block %d)\n", args[i+1], renderValue(r.Value), r.Blk)
		}
	case "getat":
		if len(args) != 3 {
			fail("getat <addr> <height>")
		}
		v, blk, ok, err := store.GetAt(cole.AddressFromString(args[1]), parseU64(args[2]))
		if err != nil {
			fail("getat: %v", err)
		}
		if !ok {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s (written at block %d)\n", renderValue(v), blk)
	case "prov":
		if len(args) != 4 {
			fail("prov <addr> <blkLo> <blkHi>")
		}
		addr := cole.AddressFromString(args[1])
		lo, hi := parseU64(args[2]), parseU64(args[3])
		_, proof, err := store.ProvQuery(addr, lo, hi)
		if err != nil {
			fail("prov: %v", err)
		}
		root := store.RootDigest()
		verified, err := cole.VerifyShardProv(root, addr, lo, hi, proof)
		if err != nil {
			fail("verification FAILED: %v", err)
		}
		fmt.Printf("%d versions in [%d,%d], proof %d bytes (shard %d of %d), verified against Hstate %s\n",
			len(verified), lo, hi, proof.Size(), proof.Shard, store.Shards(), root)
		for _, v := range verified {
			fmt.Printf("  block %6d: %s\n", v.Blk, renderValue(v.Value))
		}
	case "stat":
		sb := store.Storage()
		st := store.Stats()
		fmt.Printf("height:      %d (checkpoint %d)\n", store.Height(), store.CheckpointHeight())
		fmt.Printf("shards:      %d\n", store.Shards())
		fmt.Printf("entries:     %d in %d runs across %d levels\n", sb.Entries, sb.Runs, sb.Levels)
		fmt.Printf("disk:        %d data bytes + %d index bytes\n", sb.DataBytes, sb.IndexBytes)
		fmt.Printf("ops:         %d puts, %d gets (%d bloom skips), %d prov queries\n", st.Puts, st.Gets, st.BloomSkips, st.ProvQueries)
		fmt.Printf("maintenance: %d flushes, %d merges, %d merge waits\n", st.Flushes, st.Merges, st.MergeWaits)
		fmt.Printf("Hstate:      %s\n", store.RootDigest())
	default:
		fail("unknown command %q", args[0])
	}
}

func renderValue(v cole.Value) string {
	// Print as text when the value is printable, else hex.
	end := len(v)
	for end > 0 && v[end-1] == 0 {
		end--
	}
	trimmed := v[:end]
	for _, b := range trimmed {
		if b < 0x20 || b > 0x7e {
			return v.String()
		}
	}
	if len(trimmed) == 0 {
		return v.String()
	}
	return string(trimmed)
}

func parseU64(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fail("bad number %q", s)
	}
	return v
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
