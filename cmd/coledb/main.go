// Command coledb is a small CLI over a COLE store directory: put state
// updates block by block, read latest or historical values, and run
// verified provenance queries.
//
// Usage:
//
//	coledb -dir ledger put <height> <addr=value> [<addr=value> ...]
//	coledb -dir ledger get <addr>
//	coledb -dir ledger getbatch <addr> [<addr> ...]
//	coledb -dir ledger getat <addr> <height>
//	coledb -dir ledger prov <addr> <blkLo> <blkHi>
//	coledb -dir ledger stat [-json]
//	coledb -dir ledger dump
//	coledb -dir ledger trace <out.json> [<blocks> [<tx-per-block>]]
//	coledb -dir ledger reshard <shards>
//	coledb -dir ledger fsck [-fast]
//
// Addresses and values are free-form strings (hashed/padded to their
// fixed widths). -shards N partitions a fresh store directory across N
// engines committed in parallel; the count is persisted per directory,
// reopening adopts it automatically, and existing unsharded directories
// keep working as single-shard stores.
//
// stat -json emits the machine-readable form of stat, including the
// per-operation latency histograms the engine records continuously.
//
// trace drives a synthetic write workload through the store with the
// lifecycle tracer attached and writes two artifacts: a Chrome
// trace-event file at <out.json> (open in Perfetto or chrome://tracing
// — one lane per shard commit/flush/merge worker) and a JSONL event log
// next to it at <out.json>l. -metrics-addr serves live Prometheus
// metrics for every open store at /metrics (plus pprof under
// /debug/pprof/) for the duration of any command.
//
// reshard rewrites the (closed, cleanly flushed) store to a new shard
// count offline — a partitioned sort-merge of the immutable runs, never
// a replay — and commits atomically; stat's per-shard balance table
// shows when the rewrite is worth it. Resharding starts a new root
// epoch: per-key answers are unchanged, but the combined digest changes
// with the partition count.
//
// fsck scrubs a closed store's on-disk files and reports every
// integrity defect pinned to a file (and page, where attributable). The
// full scrub re-walks every entry, recomputes every Merkle node, and
// proves learned-index coverage; -fast checks only metadata checksums,
// file geometry, and stored Merkle roots. Exit status: 0 clean, 1
// damaged, 2 operational error (not a store, store in use, usage).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cole"
)

func main() {
	var (
		dir     = flag.String("dir", "coledb", "store directory")
		async   = flag.Bool("async", false, "use the asynchronous merge (COLE*)")
		memB    = flag.Int("memcap", 4096, "in-memory level capacity B")
		ratio   = flag.Int("ratio", 4, "size ratio T")
		m       = flag.Int("fanout", 4, "MHT fanout m")
		shards  = flag.Int("shards", 0, "shard count for a fresh store (0 = adopt the directory's persisted count)")
		workers = flag.Int("merge-workers", 0, "background merge worker budget shared across all shards (0 = GOMAXPROCS)")
		metrics = flag.String("metrics-addr", "", "serve Prometheus metrics and pprof on this address (e.g. localhost:9090) while the command runs")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		failCode(2, "missing command: put | get | getbatch | getat | prov | dump | stat | trace | reshard | fsck")
	}

	if *metrics != "" {
		addr, shutdown, err := cole.ServeMetrics(*metrics)
		if err != nil {
			fail("metrics: %v", err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics at http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	}

	// fsck runs before (and instead of) the store open: the scrub reads
	// the directory's files directly, holding the store lock so a live
	// process fails the check loudly instead of producing phantom damage.
	if args[0] == "fsck" {
		fast := false
		switch {
		case len(args) == 1:
		case len(args) == 2 && args[1] == "-fast":
			fast = true
		default:
			failCode(2, "usage: fsck [-fast]")
		}
		findings, notes, err := cole.VerifyStore(*dir, fast)
		if err != nil {
			failCode(2, "fsck: %v", err)
		}
		for _, n := range notes {
			fmt.Fprintf(os.Stderr, "note: %s\n", n)
		}
		if len(findings) > 0 {
			for _, f := range findings {
				fmt.Println(f)
			}
			failCode(1, "fsck: %d finding(s); restore the files above from a backup or replica", len(findings))
		}
		mode := "full"
		if fast {
			mode = "fast"
		}
		fmt.Printf("fsck (%s): %s is clean\n", mode, *dir)
		return
	}

	// reshard runs before (and instead of) the store open: it requires
	// exclusive ownership of the closed directory.
	if args[0] == "reshard" {
		if len(args) != 2 {
			fail("reshard <shards>")
		}
		target := int(parseU64(args[1]))
		rep, err := cole.Reshard(*dir, target, cole.ReshardOptions{})
		if err != nil {
			fail("reshard: %v", err)
		}
		fmt.Printf("resharded %d -> %d shards (generation %d) at height %d\n",
			rep.FromShards, rep.ToShards, rep.Generation, rep.Height)
		fmt.Printf("rewrote %d entries (%.1f MB) in %s (%.1f MB/s)\n",
			rep.Entries, float64(rep.Bytes)/(1<<20), rep.Elapsed.Round(time.Millisecond), rep.MBPerSec())
		for j, c := range rep.PerShard {
			fmt.Printf("  shard %02d: %d entries\n", j, c)
		}
		if rep.ToShards > 1 {
			fmt.Printf("imbalance: %.2fx (hottest shard / mean)\n", rep.Imbalance)
		}
		fmt.Println("note: the combined root digest changed with the partition count (new root epoch)")
		return
	}

	opts := cole.Options{
		Dir: *dir, AsyncMerge: *async, MemCapacity: *memB, SizeRatio: *ratio, Fanout: *m,
		Shards: *shards, MergeWorkers: *workers,
	}

	// trace owns its store's whole open/run/close cycle: the tracer must
	// be attached at open time, and export requires the store closed.
	if args[0] == "trace" {
		if err := runTrace(opts, args[1:]); err != nil {
			fail("trace: %v", err)
		}
		return
	}

	// A 1-shard store is byte-compatible with the unsharded engine, so the
	// sharded open serves every store directory, old or new.
	store, err := cole.OpenSharded(opts)
	if err != nil {
		fail("open: %v", err)
	}
	defer store.Close()

	// The data commands drive the store purely through the backend-
	// agnostic cole.DB interface; only the shard-aware output (stat's
	// balance table, prov's shard column) needs the concrete handle.
	var db cole.DB = store

	switch args[0] {
	case "put":
		if len(args) < 3 {
			fail("put <height> <addr=value> ...")
		}
		h := parseU64(args[1])
		// The command's pairs form one block, so they land as one batch:
		// pre-bucketed per shard, one engine call per bucket.
		batch := make([]cole.Update, 0, len(args)-2)
		for _, kv := range args[2:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fail("bad pair %q, want addr=value", kv)
			}
			batch = append(batch, cole.Update{
				Addr:  cole.AddressFromString(parts[0]),
				Value: cole.ValueFromBytes([]byte(parts[1])),
			})
		}
		if err := db.BeginBlock(h); err != nil {
			fail("begin block: %v", err)
		}
		if err := db.PutBatch(batch); err != nil {
			fail("put: %v", err)
		}
		root, err := db.Commit()
		if err != nil {
			fail("commit: %v", err)
		}
		if err := db.FlushAll(); err != nil {
			fail("flush: %v", err)
		}
		fmt.Printf("block %d committed, Hstate=%s\n", h, root)
	case "get":
		if len(args) != 2 {
			fail("get <addr>")
		}
		v, ok, err := db.Get(cole.AddressFromString(args[1]))
		if err != nil {
			fail("get: %v", err)
		}
		if !ok {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\n", renderValue(v))
	case "getbatch":
		if len(args) < 2 {
			fail("getbatch <addr> [<addr> ...]")
		}
		addrs := make([]cole.Address, len(args)-1)
		for i, a := range args[1:] {
			addrs[i] = cole.AddressFromString(a)
		}
		// A snapshot pins one committed height so every address of the
		// batch is answered from the same consistent state, even on a
		// multi-shard store.
		snap := db.Snapshot()
		defer snap.Release()
		res, err := snap.GetBatch(addrs)
		if err != nil {
			fail("getbatch: %v", err)
		}
		fmt.Printf("snapshot at block %d (Hstate %s)\n", snap.Height(), snap.Root())
		for i, r := range res {
			if !r.Found {
				fmt.Printf("  %s: (not found)\n", args[i+1])
				continue
			}
			fmt.Printf("  %s: %s (written at block %d)\n", args[i+1], renderValue(r.Value), r.Blk)
		}
	case "getat":
		if len(args) != 3 {
			fail("getat <addr> <height>")
		}
		v, blk, ok, err := db.GetAt(cole.AddressFromString(args[1]), parseU64(args[2]))
		if err != nil {
			fail("getat: %v", err)
		}
		if !ok {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s (written at block %d)\n", renderValue(v), blk)
	case "prov":
		if len(args) != 4 {
			fail("prov <addr> <blkLo> <blkHi>")
		}
		addr := cole.AddressFromString(args[1])
		lo, hi := parseU64(args[2]), parseU64(args[3])
		_, proof, err := store.ProvQuery(addr, lo, hi)
		if err != nil {
			fail("prov: %v", err)
		}
		root := store.RootDigest()
		verified, err := cole.VerifyShardProv(root, addr, lo, hi, proof)
		if err != nil {
			fail("verification FAILED: %v", err)
		}
		fmt.Printf("%d versions in [%d,%d], proof %d bytes (shard %d of %d), verified against Hstate %s\n",
			len(verified), lo, hi, proof.Size(), proof.Shard, store.Shards(), root)
		for _, v := range verified {
			fmt.Printf("  block %6d: %s\n", v.Blk, renderValue(v.Value))
		}
	case "dump":
		if len(args) != 1 {
			fail("dump takes no arguments")
		}
		// One pinned snapshot: the dump is a consistent full export
		// (every retained version of every address, sorted by
		// ⟨address, block⟩) even while the store keeps committing.
		n, err := db.Export(func(a cole.Address, blk uint64, v cole.Value) error {
			_, werr := fmt.Printf("%s %d %s\n", a, blk, renderValue(v))
			return werr
		})
		if err != nil {
			fail("dump: %v", err)
		}
		fmt.Fprintf(os.Stderr, "%d entries\n", n)
	case "stat":
		sb := store.Storage()
		st := store.Stats()
		if len(args) > 1 && args[1] == "-json" {
			printStatJSON(store, st, sb)
			return
		}
		fmt.Printf("height:      %d (checkpoint %d)\n", store.Height(), store.CheckpointHeight())
		fmt.Printf("shards:      %d (reshard generation %d)\n", store.Shards(), store.Generation())
		fmt.Printf("entries:     %d in %d runs across %d levels\n", sb.Entries, sb.Runs, sb.Levels)
		fmt.Printf("disk:        %d data bytes + %d index bytes\n", sb.DataBytes, sb.IndexBytes)
		fmt.Printf("ops:         %d puts, %d gets (%d bloom skips), %d prov queries\n", st.Puts, st.Gets, st.BloomSkips, st.ProvQueries)
		fmt.Printf("maintenance: %d flushes (%.1f MB), %d merges (%.1f MB rewritten), %d merge waits\n",
			st.Flushes, float64(st.FlushBytes)/(1<<20), st.Merges, float64(st.MergeBytes)/(1<<20), st.MergeWaits)
		mergeMBps := 0.0
		if st.MergeNanos > 0 {
			mergeMBps = float64(st.MergeBytes) / (1 << 20) / (float64(st.MergeNanos) / 1e9)
		}
		fmt.Printf("merge rate:  %.1f MB/s inside level-merge builds, %d partition waits\n",
			mergeMBps, st.PartitionWaits)
		hitRate := 0.0
		if st.PageReads+st.CacheHits > 0 {
			hitRate = 100 * float64(st.CacheHits) / float64(st.PageReads+st.CacheHits)
		}
		fmt.Printf("page cache:  %d physical reads, %d hits (%.1f%% hit rate; merges bypass the cache)\n",
			st.PageReads, st.CacheHits, hitRate)
		// Commit-tail health: mean vs worst commit shows whether checkpoint
		// stalls ever formed, and the stall/pace split shows whether the
		// wait was eaten as a cliff (stall) or amortized by ingest pacing.
		meanCommit := time.Duration(0)
		if st.Commits > 0 {
			meanCommit = time.Duration(st.CommitNanos / st.Commits)
		}
		fmt.Printf("commit tail: %d commits, mean %s, worst %s; stalled %s, paced %s, %d merge preemptions\n",
			st.Commits, meanCommit, time.Duration(st.MaxCommitNanos),
			time.Duration(st.StallNanos), time.Duration(st.PaceNanos), st.Preemptions)
		fmt.Printf("Hstate:      %s\n", store.RootDigest())
		if shards := store.ShardStats(); len(shards) > 1 {
			var totalE, totalB, maxE, maxB int64
			for _, ss := range shards {
				totalE += ss.Entries
				totalB += ss.Bytes
				if ss.Entries > maxE {
					maxE = ss.Entries
				}
				if ss.Bytes > maxB {
					maxB = ss.Bytes
				}
			}
			fmt.Printf("balance:     per-shard entries / disk bytes / puts / merge waits / worst commit\n")
			for i, ss := range shards {
				share := 0.0
				if totalE > 0 {
					share = 100 * float64(ss.Entries) / float64(totalE)
				}
				fmt.Printf("  shard %02d:  %8d (%5.1f%%)  %10d  %8d  %d  %s\n",
					i, ss.Entries, share, ss.Bytes, ss.Puts, ss.MergeWaits, time.Duration(ss.MaxCommitNanos))
			}
			n := int64(len(shards))
			imbE, imbB := 0.0, 0.0
			if totalE > 0 {
				imbE = float64(maxE*n) / float64(totalE)
			}
			if totalB > 0 {
				imbB = float64(maxB*n) / float64(totalB)
			}
			fmt.Printf("imbalance:   %.2fx entries, %.2fx bytes (hottest shard / mean; 1.00 = even)\n", imbE, imbB)
			if imbE > 1.5 || imbB > 1.5 {
				fmt.Printf("hint:        the layout is lopsided; `coledb -dir %s reshard <n>` rewrites it offline\n", *dir)
			}
		}
	default:
		fail("unknown command %q", args[0])
	}
}

// runTrace drives a synthetic write burst through the store with the
// lifecycle tracer attached, then exports the recorded timeline. It
// owns the store's full open/run/close cycle because the tracer must be
// present at open time and the ring may only be read once the store is
// closed (export assumes recording has quiesced).
func runTrace(opts cole.Options, args []string) error {
	if len(args) < 1 || len(args) > 3 {
		return fmt.Errorf("usage: trace <out.json> [<blocks> [<tx-per-block>]]")
	}
	out := args[0]
	blocks, perBlock := uint64(64), uint64(256)
	if len(args) >= 2 {
		blocks = parseU64(args[1])
	}
	if len(args) == 3 {
		perBlock = parseU64(args[2])
	}
	tracer := cole.NewTracer(0)
	opts.Trace = tracer
	store, err := cole.OpenSharded(opts)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	// Reuse a bounded keyspace so flushed runs overlap and cascade into
	// level merges — the lifecycle transitions the trace exists to show.
	keys := blocks * perBlock / 4
	if keys < 1 {
		keys = 1
	}
	base := store.Height()
	for b := uint64(1); b <= blocks; b++ {
		if err := store.BeginBlock(base + b); err != nil {
			_ = store.Close()
			return err
		}
		ups := make([]cole.Update, perBlock)
		for i := range ups {
			k := (uint64(i)*2654435761 + b*97) % keys
			ups[i] = cole.Update{
				Addr:  cole.AddressFromString(fmt.Sprintf("trace-%d", k)),
				Value: cole.ValueFromBytes([]byte(fmt.Sprintf("b%d-%d", base+b, i))),
			}
		}
		if err := store.PutBatch(ups); err != nil {
			_ = store.Close()
			return err
		}
		if _, err := store.Commit(); err != nil {
			_ = store.Close()
			return err
		}
	}
	// Quiesce, then close: FlushAll joins every in-flight flush and
	// merge, and Close stops the goroutines that record events.
	if err := store.FlushAll(); err != nil {
		_ = store.Close()
		return err
	}
	st := store.Stats()
	if err := store.Close(); err != nil {
		return err
	}
	if err := writeTraceArtifacts(tracer, out); err != nil {
		return err
	}
	fmt.Printf("traced %d blocks x %d tx: %d events (%d dropped), %d commits, %d flushes, %d merges, %d preemptions\n",
		blocks, perBlock, tracer.Len(), tracer.Dropped(), st.Commits, st.Flushes, st.Merges, st.Preemptions)
	fmt.Printf("chrome trace: %s (open in Perfetto or chrome://tracing)\n", out)
	fmt.Printf("jsonl events: %sl\n", out)
	return nil
}

// writeTraceArtifacts writes the Chrome trace-event file at out and the
// raw JSONL event log next to it at out+"l".
func writeTraceArtifacts(tr *cole.Tracer, out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("chrome trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	g, err := os.Create(out + "l")
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(g); err != nil {
		_ = g.Close()
		return fmt.Errorf("jsonl: %w", err)
	}
	return g.Close()
}

// printStatJSON is the machine-readable form of stat. Stats.Hist is a
// live histogram handle excluded from the struct's own JSON encoding,
// so the percentile summaries are attached as an explicit section.
func printStatJSON(store *cole.ShardedStore, st cole.Stats, sb cole.StorageBreakdown) {
	lat := map[string]interface{}{}
	if st.Hist != nil {
		lat["commit"] = st.Hist.Commit.Summary()
		lat["put_batch"] = st.Hist.PutBatch.Summary()
		lat["get"] = st.Hist.Get.Summary()
		lat["get_batch"] = st.Hist.GetBatch.Summary()
		lat["prov"] = st.Hist.Prov.Summary()
	}
	outDoc := struct {
		Height     uint64                 `json:"height"`
		Checkpoint uint64                 `json:"checkpoint"`
		Shards     int                    `json:"shards"`
		Generation uint64                 `json:"generation"`
		Hstate     string                 `json:"hstate"`
		Storage    cole.StorageBreakdown  `json:"storage"`
		Stats      cole.Stats             `json:"stats"`
		Latency    map[string]interface{} `json:"latency"`
		PerShard   []cole.ShardStat       `json:"per_shard,omitempty"`
	}{
		Height:     store.Height(),
		Checkpoint: store.CheckpointHeight(),
		Shards:     store.Shards(),
		Generation: store.Generation(),
		Hstate:     fmt.Sprint(store.RootDigest()),
		Storage:    sb,
		Stats:      st,
		Latency:    lat,
	}
	if ss := store.ShardStats(); len(ss) > 1 {
		outDoc.PerShard = ss
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(outDoc); err != nil {
		fail("stat: %v", err)
	}
}

func renderValue(v cole.Value) string {
	// Print as text when the value is printable, else hex.
	end := len(v)
	for end > 0 && v[end-1] == 0 {
		end--
	}
	trimmed := v[:end]
	for _, b := range trimmed {
		if b < 0x20 || b > 0x7e {
			return v.String()
		}
	}
	if len(trimmed) == 0 {
		return v.String()
	}
	return string(trimmed)
}

func parseU64(s string) uint64 {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		fail("bad number %q", s)
	}
	return v
}

func fail(format string, args ...interface{}) { failCode(1, format, args...) }

func failCode(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
