package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/types"
)

// testAddr derives the i-th deterministic test address.
func testAddr(i int) types.Address {
	return types.AddressFromString(fmt.Sprintf("account-%04d", i))
}

// runBlocks drives `blocks` deterministic blocks of `writes` updates each
// into s, starting at height `from+1`, and returns the per-block digests.
func runBlocks(t *testing.T, s *Store, from uint64, blocks, writes, accounts int) []types.Hash {
	t.Helper()
	var roots []types.Hash
	for b := 0; b < blocks; b++ {
		h := from + uint64(b) + 1
		if err := s.BeginBlock(h); err != nil {
			t.Fatalf("begin block %d: %v", h, err)
		}
		// The schedule is keyed to the height, not the loop index, so a
		// replay starting mid-stream regenerates identical blocks.
		for w := 0; w < writes; w++ {
			addr := testAddr((int(h-1)*writes + w) % accounts)
			v := types.ValueFromUint64(h*1000 + uint64(w))
			if err := s.Put(addr, v); err != nil {
				t.Fatalf("put at block %d: %v", h, err)
			}
		}
		root, err := s.Commit()
		if err != nil {
			t.Fatalf("commit block %d: %v", h, err)
		}
		roots = append(roots, root)
	}
	return roots
}

func openTest(t *testing.T, dir string, shards int, async bool) *Store {
	t.Helper()
	s, err := Open(core.Options{
		Dir:         dir,
		Shards:      shards,
		MemCapacity: 64,
		AsyncMerge:  async,
	})
	if err != nil {
		t.Fatalf("open %d-shard store: %v", shards, err)
	}
	return s
}

// TestCombinedRootDeterminism commits the same workload into two
// independent 4-shard stores. Per-shard commits run in parallel
// goroutines whose completion order differs between runs; the combined
// digests must nevertheless agree block for block.
func TestCombinedRootDeterminism(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			a := openTest(t, t.TempDir(), 4, async)
			defer a.Close()
			b := openTest(t, t.TempDir(), 4, async)
			defer b.Close()
			rootsA := runBlocks(t, a, 0, 40, 20, 50)
			rootsB := runBlocks(t, b, 0, 40, 20, 50)
			for i := range rootsA {
				if rootsA[i] != rootsB[i] {
					t.Fatalf("block %d: digests diverge across identical runs: %s vs %s", i+1, rootsA[i], rootsB[i])
				}
			}
		})
	}
}

// TestShards1Compat checks that a one-shard store is byte-compatible with
// a bare engine: same directory layout, same digest every block, and its
// proofs verify through both the sharded and the plain path.
func TestShards1Compat(t *testing.T) {
	dirS, dirE := t.TempDir(), t.TempDir()
	s := openTest(t, dirS, 1, false)
	defer s.Close()
	e, err := core.Open(core.Options{Dir: dirE, MemCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const blocks, writes, accounts = 30, 20, 40
	for b := 0; b < blocks; b++ {
		h := uint64(b) + 1
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := e.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < writes; w++ {
			addr := testAddr((b*writes + w) % accounts)
			v := types.ValueFromUint64(h*1000 + uint64(w))
			if err := s.Put(addr, v); err != nil {
				t.Fatal(err)
			}
			if err := e.Put(addr, v); err != nil {
				t.Fatal(err)
			}
		}
		rootS, err := s.Commit()
		if err != nil {
			t.Fatal(err)
		}
		rootE, err := e.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if rootS != rootE {
			t.Fatalf("block %d: 1-shard digest %s != engine digest %s", h, rootS, rootE)
		}
	}

	// A 1-shard proof verifies against the digest through the shard path
	// and its inner proof through the plain path.
	addr := testAddr(7)
	hstate := s.RootDigest()
	_, proof, err := s.ProvQuery(addr, 1, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyProv(hstate, addr, 1, blocks, proof); err != nil {
		t.Fatalf("shard-path verification failed: %v", err)
	}
	if _, err := core.VerifyProv(hstate, addr, 1, blocks, proof.Inner); err != nil {
		t.Fatalf("inner proof does not verify against the same digest: %v", err)
	}

	// Layout compatibility: the single-engine manifest lives directly in
	// the store dir, so a plain engine can reopen it.
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	plain, err := core.Open(core.Options{Dir: dirS, MemCapacity: 64})
	if err != nil {
		t.Fatalf("plain engine cannot reopen a 1-shard store dir: %v", err)
	}
	if _, ok, err := plain.Get(testAddr(7)); err != nil || !ok {
		t.Fatalf("1-shard data unreadable through a plain engine: ok=%v err=%v", ok, err)
	}
	plain.Close()
}

// TestProvRoundTrip runs verified provenance queries through the shard
// root path on a multi-shard store, then checks tampering is caught.
func TestProvRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), 4, false)
	defer s.Close()
	const blocks, writes, accounts = 40, 20, 30
	runBlocks(t, s, 0, blocks, writes, accounts)
	hstate := s.RootDigest()

	for i := 0; i < accounts; i++ {
		addr := testAddr(i)
		versions, proof, err := s.ProvQuery(addr, 1, blocks)
		if err != nil {
			t.Fatalf("prov %d: %v", i, err)
		}
		if len(versions) == 0 {
			t.Fatalf("prov %d: no versions for a written address", i)
		}
		verified, err := VerifyProv(hstate, addr, 1, blocks, proof)
		if err != nil {
			t.Fatalf("verify %d (shard %d): %v", i, proof.Shard, err)
		}
		if len(verified) != len(versions) {
			t.Fatalf("verify %d: %d versions, query returned %d", i, len(verified), len(versions))
		}
		for j := range verified {
			if verified[j] != versions[j] {
				t.Fatalf("verify %d: version %d mismatch", i, j)
			}
		}
	}

	// Tampering with a sibling hash in the root Merkle path must break
	// verification.
	addr := testAddr(3)
	_, proof, err := s.ProvQuery(addr, 1, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if proof.Path == nil {
		t.Fatal("multi-shard proof carries no root Merkle path")
	}
	tampered := false
	for li := range proof.Path.Left {
		if len(proof.Path.Left[li]) > 0 {
			proof.Path.Left[li][0][0] ^= 0xff
			tampered = true
			break
		}
		if len(proof.Path.Right[li]) > 0 {
			proof.Path.Right[li][0][0] ^= 0xff
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("4-shard root path has no sibling hashes to tamper with")
	}
	if _, err := VerifyProv(hstate, addr, 1, blocks, proof); err == nil {
		t.Fatal("verification accepted a tampered root-path sibling")
	}

	// A proof claiming the wrong shard must be rejected before the path
	// is even checked.
	_, proof, err = s.ProvQuery(addr, 1, blocks)
	if err != nil {
		t.Fatal(err)
	}
	proof.Shard = (proof.Shard + 1) % proof.Shards
	if _, err := VerifyProv(hstate, addr, 1, blocks, proof); err == nil {
		t.Fatal("verification accepted a proof from the wrong shard")
	}

	// And the digest itself must bind: a different Hstate fails.
	proof.Shard = ShardOf(addr, proof.Shards)
	bad := hstate
	bad[0] ^= 0xff
	if _, err := VerifyProv(bad, addr, 1, blocks, proof); err == nil {
		t.Fatal("verification accepted a mismatched Hstate")
	}
}

// TestCrashRecoveryReplay crashes a multi-shard store (Close without
// FlushAll drops L0) and replays blocks above the combined checkpoint.
// Shards checkpoint at different heights, so the replay exercises the
// skip-already-covered path; the recovered digest must match the
// pre-crash digest.
func TestCrashRecoveryReplay(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			dir := t.TempDir()
			const shards, blocks, writes, accounts = 3, 60, 15, 40
			s := openTest(t, dir, shards, async)
			roots := runBlocks(t, s, 0, blocks, writes, accounts)
			preCrash := roots[len(roots)-1]
			if err := s.Close(); err != nil { // crash: no FlushAll
				t.Fatal(err)
			}

			s2 := openTest(t, dir, shards, async)
			defer s2.Close()
			ckpt := s2.CheckpointHeight()
			if ckpt >= blocks {
				t.Fatalf("checkpoint %d leaves nothing to replay; shrink MemCapacity", ckpt)
			}
			// Replay the lost blocks with the identical workload.
			replayed := runBlocks(t, s2, ckpt, blocks-int(ckpt), writes, accounts)
			// runBlocks regenerates block b's writes from its index within
			// the run, so offset into the same schedule.
			_ = replayed
			if got := s2.RootDigest(); got != preCrash {
				t.Fatalf("recovered digest %s != pre-crash digest %s", got, preCrash)
			}
			if h := s2.Height(); h != blocks {
				t.Fatalf("recovered height %d, want %d", h, blocks)
			}
			// Latest values survive.
			for i := 0; i < accounts; i++ {
				if _, ok, err := s2.Get(testAddr(i)); err != nil || !ok {
					t.Fatalf("get %d after recovery: ok=%v err=%v", i, ok, err)
				}
			}
		})
	}
}

// TestShardManifestPinsCount covers the SHARDS file: count mismatches and
// legacy unsharded directories are rejected.
func TestShardManifestPinsCount(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 2, false)
	runBlocks(t, s, 0, 3, 10, 10)
	if err := s.FlushAll(); err != nil { // persist L0 so reopens see the data
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(core.Options{Dir: dir, Shards: 3, MemCapacity: 64}); err == nil {
		t.Fatal("reopen with a different shard count succeeded")
	}
	if s2, err := Open(core.Options{Dir: dir, Shards: 2, MemCapacity: 64}); err != nil {
		t.Fatalf("reopen with the pinned count failed: %v", err)
	} else {
		s2.Close()
	}
	// Shards = 0 adopts the persisted count.
	if s2, err := Open(core.Options{Dir: dir, MemCapacity: 64}); err != nil {
		t.Fatalf("reopen with Shards=0 failed: %v", err)
	} else {
		if s2.Shards() != 2 {
			t.Fatalf("Shards=0 adopted count %d, want the persisted 2", s2.Shards())
		}
		s2.Close()
	}

	// Legacy layout: a bare engine in the directory, no SHARDS file.
	legacy := t.TempDir()
	e, err := core.Open(core.Options{Dir: legacy, MemCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(testAddr(1), types.ValueFromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(core.Options{Dir: legacy, Shards: 4, MemCapacity: 64}); err == nil {
		t.Fatal("splitting a legacy unsharded store dir succeeded")
	}

	// The mirror image: shard subdirectories whose SHARDS file was lost
	// must not open as a fresh empty single-shard store, and an explicit
	// matching count must re-pin the directory.
	if err := os.Remove(filepath.Join(dir, "SHARDS")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(core.Options{Dir: dir, MemCapacity: 64}); err == nil {
		t.Fatal("multi-shard dir without SHARDS file opened as a fresh store")
	}
	if s4, err := Open(core.Options{Dir: dir, Shards: 2, MemCapacity: 64}); err != nil {
		t.Fatalf("explicit count failed to re-pin a SHARDS-less dir: %v", err)
	} else {
		if _, ok, err := s4.Get(testAddr(0)); err != nil || !ok {
			t.Fatalf("data unreadable after re-pin: ok=%v err=%v", ok, err)
		}
		s4.Close()
	}
	if s3, err := Open(core.Options{Dir: legacy, Shards: 1, MemCapacity: 64}); err != nil {
		t.Fatalf("1-shard open of a legacy dir failed: %v", err)
	} else {
		if _, ok, err := s3.Get(testAddr(1)); err != nil || !ok {
			t.Fatalf("legacy data unreadable through 1-shard store: ok=%v err=%v", ok, err)
		}
		s3.Close()
	}
}

// TestShardOfSpreadsAddresses sanity-checks the hash partitioner: every
// shard owns a reasonable share of a uniform address population.
func TestShardOfSpreadsAddresses(t *testing.T) {
	const n, addrs = 8, 8000
	counts := make([]int, n)
	for i := 0; i < addrs; i++ {
		idx := ShardOf(testAddr(i), n)
		if idx < 0 || idx >= n {
			t.Fatalf("ShardOf returned %d for n=%d", idx, n)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c < addrs/n/2 || c > addrs/n*2 {
			t.Fatalf("shard %d owns %d of %d addresses; partitioning is badly skewed: %v", i, c, addrs, counts)
		}
	}
	// Stability: the routing must never change across calls or processes.
	if got := ShardOf(testAddr(0), 4); got != ShardOf(testAddr(0), 4) {
		t.Fatalf("ShardOf unstable: %d", got)
	}
}
