package shard

import (
	"testing"

	"cole/internal/core"
)

// TestShardStatsTailCounters drives a cascading workload through a
// sharded store and checks the new tail/stall counters aggregate the
// way their doc comments promise: Commits/CommitNanos/StallNanos/
// PaceNanos/Preemptions sum across shards, MaxCommitNanos takes the
// worst shard (a sharded commit is as slow as its slowest engine), and
// MergeWaits/PartitionWaits remain DISJOINT sums — neither counter
// absorbs the other's events.
func TestShardStatsTailCounters(t *testing.T) {
	s, err := Open(core.Options{
		Dir:         t.TempDir(),
		Shards:      4,
		MemCapacity: 16,
		AsyncMerge:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const blocks = 40
	runBlocks(t, s, 0, blocks, 24, 60)

	st := s.Stats()
	var sum core.Stats
	var worst int64
	for _, e := range s.engines {
		es := e.Stats()
		sum.Commits += es.Commits
		sum.CommitNanos += es.CommitNanos
		sum.StallNanos += es.StallNanos
		sum.PaceNanos += es.PaceNanos
		sum.Preemptions += es.Preemptions
		sum.MergeWaits += es.MergeWaits
		sum.PartitionWaits += es.PartitionWaits
		if es.MaxCommitNanos > worst {
			worst = es.MaxCommitNanos
		}
	}
	if st.Commits != sum.Commits || st.Commits != int64(blocks*len(s.engines)) {
		t.Fatalf("Commits = %d, want per-engine sum %d = blocks×shards %d",
			st.Commits, sum.Commits, blocks*len(s.engines))
	}
	if st.CommitNanos != sum.CommitNanos || st.CommitNanos <= 0 {
		t.Fatalf("CommitNanos = %d, want positive per-engine sum %d", st.CommitNanos, sum.CommitNanos)
	}
	if st.MaxCommitNanos != worst || worst <= 0 {
		t.Fatalf("MaxCommitNanos = %d, want the worst shard's %d", st.MaxCommitNanos, worst)
	}
	if st.StallNanos != sum.StallNanos || st.PaceNanos != sum.PaceNanos || st.Preemptions != sum.Preemptions {
		t.Fatalf("stall/pace/preempt sums diverge: got (%d,%d,%d), want (%d,%d,%d)",
			st.StallNanos, st.PaceNanos, st.Preemptions, sum.StallNanos, sum.PaceNanos, sum.Preemptions)
	}
	// Disjointness: the sums are independent — each store counter equals
	// its own per-engine sum, with no cross-contamination between the
	// back-pressure counter and the fan-out counter.
	if st.MergeWaits != sum.MergeWaits {
		t.Fatalf("MergeWaits = %d, want %d (PartitionWaits leaking in?)", st.MergeWaits, sum.MergeWaits)
	}
	if st.PartitionWaits != sum.PartitionWaits {
		t.Fatalf("PartitionWaits = %d, want %d (MergeWaits leaking in?)", st.PartitionWaits, sum.PartitionWaits)
	}

	// The per-shard balance snapshot carries the straggler diagnosis.
	var shardWorst int64
	for _, sh := range s.ShardStats() {
		if sh.MaxCommitNanos > shardWorst {
			shardWorst = sh.MaxCommitNanos
		}
	}
	if shardWorst != worst {
		t.Fatalf("ShardStats worst commit %d != engine worst %d", shardWorst, worst)
	}
}
