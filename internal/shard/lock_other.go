//go:build !unix

package shard

// LockDir is advisory and flock-based; on platforms without flock the
// store runs unlocked (the documented exclusive-ownership contract is
// then the operator's responsibility alone).
func LockDir(dir string) (release func(), err error) {
	return func() {}, nil
}
