package shard

import (
	"fmt"
	"sync"
	"testing"

	"cole/internal/core"
	"cole/internal/mht"
	"cole/internal/types"
)

// batchFor regenerates block h's updates from its height (replayable),
// with periodic in-batch duplicates to exercise coalescing.
func batchFor(h uint64, writes, accounts int) []types.Update {
	batch := make([]types.Update, 0, writes+writes/5)
	for w := 0; w < writes; w++ {
		addr := testAddr((int(h-1)*writes + w) % accounts)
		if w%5 == 4 {
			batch = append(batch, types.Update{Addr: addr, Value: types.ValueFromUint64(0xdead)})
		}
		batch = append(batch, types.Update{Addr: addr, Value: types.ValueFromUint64(h*1000 + uint64(w))})
	}
	return batch
}

// TestPutBatchMatchesPut drives identical update streams through a
// batched and a per-Put 4-shard store: block digests must be identical
// (the batch is pure routing, not semantics), in both merge modes.
func TestPutBatchMatchesPut(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			sb := openTest(t, t.TempDir(), 4, async)
			defer sb.Close()
			sp := openTest(t, t.TempDir(), 4, async)
			defer sp.Close()
			const blocks, writes, accounts = 50, 20, 40
			for h := uint64(1); h <= blocks; h++ {
				batch := batchFor(h, writes, accounts)
				if err := sb.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := sb.PutBatch(batch); err != nil {
					t.Fatal(err)
				}
				if err := sp.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				for _, u := range batch {
					if err := sp.Put(u.Addr, u.Value); err != nil {
						t.Fatal(err)
					}
				}
				rb, err := sb.Commit()
				if err != nil {
					t.Fatal(err)
				}
				rp, err := sp.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if rb != rp {
					t.Fatalf("block %d: batched digest %s != per-Put digest %s", h, rb, rp)
				}
			}
		})
	}
}

// TestConcurrentPutBatch has several goroutines batch-write disjoint
// address ranges into the same open block (run under -race in CI). All
// values must land, and the store must stay consistent.
func TestConcurrentPutBatch(t *testing.T) {
	s := openTest(t, t.TempDir(), 4, true)
	defer s.Close()
	const writers, perWriter, blocks = 4, 25, 10
	for h := uint64(1); h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, writers)
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				batch := make([]types.Update, 0, perWriter)
				for i := 0; i < perWriter; i++ {
					batch = append(batch, types.Update{
						Addr:  testAddr(g*perWriter + i),
						Value: types.ValueFromUint64(h*10_000 + uint64(g*perWriter+i)),
					})
				}
				errs[g] = s.PutBatch(batch)
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Fatalf("writer %d at block %d: %v", g, h, err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < writers*perWriter; i++ {
		v, ok, err := s.Get(testAddr(i))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if want := types.ValueFromUint64(blocks*10_000 + uint64(i)); v != want {
			t.Fatalf("addr %d = %d, want %d", i, v.Uint64(), want.Uint64())
		}
	}
}

// TestSharedSchedulerAcrossShards checks every engine of a sharded store
// runs its merges on the store's single pool, and that the budget knob
// reaches it.
func TestSharedSchedulerAcrossShards(t *testing.T) {
	s, err := Open(core.Options{Dir: t.TempDir(), Shards: 4, MemCapacity: 64, MergeWorkers: 2, AsyncMerge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Scheduler().Workers(); got != 2 {
		t.Fatalf("scheduler budget %d, want 2", got)
	}
	for _, e := range s.engines {
		if e.Scheduler() != s.sched {
			t.Fatal("a shard engine runs on a private scheduler, not the store's shared pool")
		}
	}
	// Drive enough batches to force flushes on every shard and check the
	// jobs actually went through the shared pool.
	for h := uint64(1); h <= 40; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch(batchFor(h, 40, 200)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Scheduler().Stats(); st.Submitted == 0 {
		t.Fatal("no merge job was ever submitted to the shared pool")
	}
}

// TestCombinedRootProofLogarithmic checks the combined-root Merkle tree:
// proofs verify for every leaf at many shard counts, reject tampering,
// and carry O(log N) siblings — not the N−1 of the old flat scheme.
func TestCombinedRootProofLogarithmic(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256} {
		roots := make([]types.Hash, n)
		for i := range roots {
			roots[i] = types.HashData([]byte{byte(i), byte(i >> 8)})
		}
		combined := CombineRoots(roots)
		for _, idx := range []int{0, 1, n / 2, n - 1} {
			p, err := mht.ProveRangeOf(roots, ShardRootFanout, int64(idx), int64(idx))
			if err != nil {
				t.Fatalf("n=%d idx=%d: %v", n, idx, err)
			}
			top, err := mht.VerifyRange(p, []types.Hash{roots[idx]})
			if err != nil {
				t.Fatalf("n=%d idx=%d verify: %v", n, idx, err)
			}
			if types.HashData(rootDomain, top[:]) != combined {
				t.Fatalf("n=%d idx=%d: path does not reproduce the combined digest", n, idx)
			}
			siblings := 0
			for li := range p.Left {
				siblings += len(p.Left[li]) + len(p.Right[li])
			}
			// ≤ (m−1) siblings per layer, ⌈log_m n⌉ layers.
			layers := 0
			for c := n; c > 1; c = (c + ShardRootFanout - 1) / ShardRootFanout {
				layers++
			}
			if max := (ShardRootFanout - 1) * layers; siblings > max {
				t.Fatalf("n=%d idx=%d: %d siblings, want ≤ %d (O(log N))", n, idx, siblings, max)
			}
			if n >= 8 && siblings >= n-1 {
				t.Fatalf("n=%d: proof carries %d siblings — no better than the flat scheme", n, siblings)
			}
		}
	}
}

// TestShardStatsCountsPuts checks per-shard write counts add up (the
// imbalance metric's raw data) whether writes arrive via Put or batch.
func TestShardStatsCountsPuts(t *testing.T) {
	s := openTest(t, t.TempDir(), 4, false)
	defer s.Close()
	const blocks, writes, accounts = 10, 20, 40
	for h := uint64(1); h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch(batchFor(h, writes, accounts)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	spread := 0
	for _, ss := range s.ShardStats() {
		total += ss.Puts
		if ss.Puts > 0 {
			spread++
		}
	}
	if want := s.Stats().Puts; total != want {
		t.Fatalf("per-shard puts sum to %d, store total is %d", total, want)
	}
	if total == 0 || spread < 2 {
		t.Fatalf("writes did not spread across shards: %+v", s.ShardStats())
	}
}
