package shard

import (
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/types"
)

func writeShardsFile(t *testing.T, dir, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPersistedCountEdgeCases covers the SHARDS-file parser directly:
// fresh directories, valid files (with and without a generation),
// corrupt JSON, and out-of-range counts.
func TestPersistedCountEdgeCases(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := PersistedCount(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want unpinned", ok, err)
	}

	writeShardsFile(t, dir, `{"shards":4}`)
	n, gen, ok, err := PersistedLayout(dir)
	if err != nil || !ok || n != 4 || gen != 0 {
		t.Fatalf("valid file: n=%d gen=%d ok=%v err=%v", n, gen, ok, err)
	}

	writeShardsFile(t, dir, `{"shards":4,"gen":3}`)
	n, gen, ok, err = PersistedLayout(dir)
	if err != nil || !ok || n != 4 || gen != 3 {
		t.Fatalf("generation file: n=%d gen=%d ok=%v err=%v", n, gen, ok, err)
	}
	if n2, ok2, err2 := PersistedCount(dir); err2 != nil || !ok2 || n2 != 4 {
		t.Fatalf("PersistedCount over a generation file: n=%d ok=%v err=%v", n2, ok2, err2)
	}

	for _, bad := range []string{
		"not json at all",
		`{"shards":"four"}`,
		`{"shards":0}`,
		`{"shards":-2}`,
		`{"shards":100000}`,
	} {
		writeShardsFile(t, dir, bad)
		if _, _, _, err := PersistedLayout(dir); err == nil {
			t.Errorf("content %q accepted", bad)
		}
	}
}

// TestOpenRejectsCorruptShardsFile: a store whose SHARDS file is corrupt
// must fail to open (with and without an explicit count) instead of
// presenting an empty store.
func TestOpenRejectsCorruptShardsFile(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 2, false)
	runBlocks(t, s, 0, 2, 8, 8)
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	writeShardsFile(t, dir, `{"shards":`)
	if _, err := Open(core.Options{Dir: dir, MemCapacity: 64}); err == nil {
		t.Fatal("corrupt SHARDS opened with Shards=0")
	}
	if _, err := Open(core.Options{Dir: dir, Shards: 2, MemCapacity: 64}); err == nil {
		t.Fatal("corrupt SHARDS opened with an explicit count")
	}
}

// TestGuardSingleEngine covers every branch of the single-engine guard:
// clean legacy dirs pass; multi-shard, resharded-generation, orphaned,
// and corrupt layouts are refused.
func TestGuardSingleEngine(t *testing.T) {
	// Fresh and legacy-unsharded directories are fine.
	if err := GuardSingleEngine(t.TempDir()); err != nil {
		t.Fatalf("fresh dir refused: %v", err)
	}
	legacy := t.TempDir()
	e, err := core.Open(core.Options{Dir: legacy, MemCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := GuardSingleEngine(legacy); err != nil {
		t.Fatalf("legacy engine dir refused: %v", err)
	}

	// Multi-shard store.
	multi := t.TempDir()
	writeShardsFile(t, multi, `{"shards":4}`)
	if err := GuardSingleEngine(multi); err == nil {
		t.Fatal("multi-shard dir accepted")
	}

	// Resharded generation: one shard, but the engine no longer lives at
	// the directory root.
	gen := t.TempDir()
	writeShardsFile(t, gen, `{"shards":1,"gen":2}`)
	if err := GuardSingleEngine(gen); err == nil {
		t.Fatal("resharded 1-shard dir accepted (its root holds no engine)")
	}

	// Orphaned shard subdirectories without a SHARDS file.
	orphan := t.TempDir()
	if err := os.MkdirAll(filepath.Join(orphan, "shard-00"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := GuardSingleEngine(orphan); err == nil {
		t.Fatal("orphaned shard dirs accepted")
	}

	// Corrupt SHARDS file.
	corrupt := t.TempDir()
	writeShardsFile(t, corrupt, "garbage")
	if err := GuardSingleEngine(corrupt); err == nil {
		t.Fatal("corrupt SHARDS accepted")
	}
}

// TestOpenSweepsStaleGenerations: garbage from interrupted or committed
// reshards (stale generation directories, a torn SHARDS.tmp) disappears
// on the next open, while the live layout is untouched.
func TestOpenSweepsStaleGenerations(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 2, false)
	runBlocks(t, s, 0, 3, 8, 8)
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	want := s.RootDigest()
	s.Close()

	// Strand a half-built generation and a torn SHARDS.tmp.
	stale := filepath.Join(dir, "r000007", "shard-00")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, 0, false)
	defer s2.Close()
	if got := s2.RootDigest(); got != want {
		t.Fatalf("sweep changed the live digest: %s != %s", got, want)
	}
	if _, err := os.Stat(filepath.Join(dir, "r000007")); !os.IsNotExist(err) {
		t.Fatal("stale generation directory survived the open")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("torn SHARDS.tmp survived the open")
	}
}

// TestDirectoryLock: a second open of a live store directory — from
// this or any process — must fail until the first store closes.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 2, false)
	if _, err := Open(core.Options{Dir: dir, MemCapacity: 64}); err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(core.Options{Dir: dir, MemCapacity: 64})
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	s2.Close()
}

// TestEngineDirLayout pins the path scheme EngineDir hands out across
// generations and shard counts.
func TestEngineDirLayout(t *testing.T) {
	cases := []struct {
		gen  uint64
		n, i int
		want string
	}{
		{0, 1, 0, "store"},
		{0, 4, 2, filepath.Join("store", "shard-02")},
		{1, 1, 0, filepath.Join("store", "r000001", "shard-00")},
		{3, 8, 7, filepath.Join("store", "r000003", "shard-07")},
	}
	for _, c := range cases {
		if got := EngineDir("store", c.gen, c.n, c.i); got != c.want {
			t.Errorf("EngineDir(gen=%d n=%d i=%d) = %q, want %q", c.gen, c.n, c.i, got, c.want)
		}
	}
}

// TestHistoricalRootFallback: a skipped shard whose replayed height has
// aged out of the retained history falls back to its current root (the
// documented residual caveat) instead of failing.
func TestHistoricalRootFallback(t *testing.T) {
	dir := t.TempDir()
	// History of 4: anything older than the last 4 commits is gone.
	s, err := Open(core.Options{Dir: dir, Shards: 2, MemCapacity: 16, RootHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	hot := addrsOwnedBy(2, 0, 6)
	cold := addrsOwnedBy(2, 1, 1)
	for h := uint64(1); h <= 30; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		for w, a := range hot {
			if err := s.Put(a, types.ValueFromUint64(h*100+uint64(w))); err != nil {
				t.Fatal(err)
			}
		}
		if h%3 == 0 {
			if err := s.Put(cold[0], types.ValueFromUint64(h)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // crash

	s2, err := Open(core.Options{Dir: dir, Shards: 2, MemCapacity: 16, RootHistory: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ckpt := s2.CheckpointHeight()
	for h := ckpt + 1; h <= 30; h++ {
		if err := s2.BeginBlock(h); err != nil {
			t.Fatalf("begin %d: %v", h, err)
		}
		for w, a := range hot {
			if err := s2.Put(a, types.ValueFromUint64(h*100+uint64(w))); err != nil {
				t.Fatal(err)
			}
		}
		if h%3 == 0 {
			if err := s2.Put(cold[0], types.ValueFromUint64(h)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s2.Commit(); err != nil {
			t.Fatalf("commit %d must not fail even when history has aged out: %v", h, err)
		}
	}
}
