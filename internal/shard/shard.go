// Package shard partitions the COLE address space across N independent
// core.Engine instances and commits them in parallel.
//
// A single engine serializes its whole write path behind one mutex, so at
// commit time the flush/merge cascade of a busy block runs alone on one
// core. Sharding hash-splits the 20-byte address space into N partitions,
// each backed by its own engine in its own subdirectory; BeginBlock/Put
// route to the owning partition and Commit runs all per-shard commits in
// parallel goroutines. The block header digest becomes a deterministic
// combination of the per-shard Hstate roots, gathered in shard-index
// order so goroutine completion order never changes the result.
//
// Provenance proofs stay per-shard: a query is answered by the owning
// engine's Proof plus the full list of shard roots, and verification
// recombines the roots, checks them against the published digest, and
// then verifies the inner proof against the owning shard's root. With
// Shards = 1 the combined digest is defined to *be* the single engine's
// Hstate, so a one-shard store is byte-compatible with an unsharded one
// (same directory layout, same digests, same proofs).
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"cole/internal/core"
	"cole/internal/types"
)

// MaxShards bounds the shard count; beyond this the per-shard memory and
// file-handle overhead dwarfs any commit parallelism.
const MaxShards = 256

// rootDomain prefixes the combined-root hash so a multi-shard digest can
// never collide with a single engine's root_hash_list hash over the same
// component hashes.
var rootDomain = []byte("COLE-SHARD-ROOTS/v1\x00")

// ShardOf routes an address to its owning partition: FNV-1a over the
// 20 address bytes, mod n. Deterministic across processes and platforms.
func ShardOf(addr types.Address, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write(addr[:])
	return int(h.Sum64() % uint64(n))
}

// CombineRoots folds per-shard Hstate roots (shard-index order) into the
// block-header digest. One shard combines to its root unchanged, which is
// what makes Shards=1 byte-compatible with an unsharded engine.
func CombineRoots(roots []types.Hash) types.Hash {
	if len(roots) == 1 {
		return roots[0]
	}
	parts := make([][]byte, 0, len(roots)+1)
	parts = append(parts, rootDomain)
	for i := range roots {
		parts = append(parts, roots[i][:])
	}
	return types.HashData(parts...)
}

// Store is a sharded COLE store: N engines behind one block interface.
type Store struct {
	opts core.Options
	n    int

	// mu serializes block lifecycle against reads: BeginBlock, Commit,
	// FlushAll and Close take the write lock; Put and queries take the
	// read lock (each engine still has its own internal mutex).
	mu      sync.RWMutex
	engines []*core.Engine
	inBlock bool
	height  uint64
	// active flags which shards participate in the open block. During
	// normal operation all do; during post-crash replay a shard whose
	// checkpoint already covers the replayed height is skipped, so blocks
	// between the minimum and maximum shard checkpoints can be re-executed
	// without double-applying writes.
	active []bool
}

// shardManifest pins the partition count of a store directory.
type shardManifest struct {
	Shards int `json:"shards"`
}

const manifestName = "SHARDS"

// Open creates or reopens a sharded store in opts.Dir. opts.Shards selects
// the partition count: 0 adopts the count persisted in the directory's
// SHARDS file (1 for a fresh or legacy directory), and an explicit count
// must match the persisted one on reopen. With one shard the engine lives
// directly in opts.Dir; with more, each shard i lives in opts.Dir/shard-NN.
func Open(opts core.Options) (*Store, error) {
	n := opts.Shards
	if n < 0 || n > MaxShards {
		return nil, fmt.Errorf("shard: Shards %d out of range [0,%d]", n, MaxShards)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("shard: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	persisted, pinned, err := PersistedCount(opts.Dir)
	if err != nil {
		return nil, err
	}
	switch {
	case n == 0 && pinned:
		n = persisted
	case n == 0:
		n = 1
	case pinned && persisted != n:
		return nil, fmt.Errorf("shard: store was created with %d shards, reopened with %d", persisted, n)
	}
	if !pinned && n > 1 {
		// No SHARDS file but an engine manifest in the root: a legacy
		// unsharded store. Splitting it would silently hide the existing
		// data under empty shard subdirectories.
		if _, serr := os.Stat(filepath.Join(opts.Dir, "MANIFEST")); serr == nil {
			return nil, fmt.Errorf("shard: %s holds an unsharded store; it cannot be reopened with Shards=%d", opts.Dir, n)
		}
	}
	if !pinned && n == 1 {
		// The mirror image: shard subdirectories without a SHARDS file
		// (lost in a partial copy, or a crash between shard creation and
		// the manifest write). Opening a fresh engine in the root would
		// hide the shard data; an explicit matching Shards count re-pins.
		if err := guardOrphanedShards(opts.Dir); err != nil {
			return nil, err
		}
	}
	s := &Store{opts: opts, n: n, active: make([]bool, n)}
	for i := 0; i < n; i++ {
		eo := opts
		eo.Shards = 1
		if n > 1 {
			eo.Dir = filepath.Join(opts.Dir, fmt.Sprintf("shard-%02d", i))
		}
		e, err := core.Open(eo)
		if err != nil {
			for _, prev := range s.engines {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.engines = append(s.engines, e)
	}
	if err := writeManifest(opts.Dir, n); err != nil {
		for _, e := range s.engines {
			e.Close()
		}
		return nil, err
	}
	return s, nil
}

// guardOrphanedShards rejects a directory that has shard subdirectories
// but no SHARDS file pinning them.
func guardOrphanedShards(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, "shard-00")); err == nil {
		return fmt.Errorf("shard: %s has shard subdirectories but no %s file; reopen with the original explicit Shards count to re-pin it", dir, manifestName)
	}
	return nil
}

// GuardSingleEngine returns an error when dir cannot be served by a bare
// single engine: its SHARDS file pins multiple shards or is corrupt, or
// it has shard subdirectories with no SHARDS file at all. Callers that
// open an engine directly in dir (bypassing Open) use this to avoid
// presenting an empty view of sharded data.
func GuardSingleEngine(dir string) error {
	n, ok, err := PersistedCount(dir)
	if err != nil {
		return err
	}
	if ok && n > 1 {
		return fmt.Errorf("shard: %s holds a %d-shard store; open it as a sharded store", dir, n)
	}
	if !ok {
		return guardOrphanedShards(dir)
	}
	return nil
}

// PersistedCount reports the shard count pinned in dir's SHARDS file;
// ok is false when the directory is fresh or holds a legacy unsharded
// store.
func PersistedCount(dir string) (count int, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	var m shardManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, false, fmt.Errorf("shard: corrupt %s file: %w", manifestName, err)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return 0, false, fmt.Errorf("shard: %s file pins count %d out of range [1,%d]", manifestName, m.Shards, MaxShards)
	}
	return m.Shards, true, nil
}

func writeManifest(dir string, n int) error {
	path := filepath.Join(dir, manifestName)
	if _, err := os.Stat(path); err == nil {
		return nil // already pinned (and checked against) by Open
	}
	raw, err := json.Marshal(shardManifest{Shards: n})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Shards returns the partition count.
func (s *Store) Shards() int { return s.n }

// ShardIndex returns the partition owning addr.
func (s *Store) ShardIndex(addr types.Address) int { return ShardOf(addr, s.n) }

// BeginBlock opens block `height` on every shard that has not yet
// committed it. During normal operation that is all of them; after a crash
// the shards' checkpoints differ, and replaying from the minimum
// checkpoint skips the shards whose durable state already covers the
// height (their writes for it would otherwise be applied twice).
func (s *Store) BeginBlock(height uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inBlock {
		return fmt.Errorf("shard: block %d still open", s.height)
	}
	if height == 0 {
		return fmt.Errorf("shard: height 0 invalid (blocks start at 1)")
	}
	any := false
	maxCommitted := uint64(0)
	for i, e := range s.engines {
		h := e.Height()
		if h > maxCommitted {
			maxCommitted = h
		}
		s.active[i] = h < height
		any = any || s.active[i]
	}
	if !any {
		return fmt.Errorf("shard: height %d not above committed %d (no fork support)", height, maxCommitted)
	}
	for i, e := range s.engines {
		if !s.active[i] {
			continue
		}
		if err := e.BeginBlock(height); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	s.height = height
	s.inBlock = true
	return nil
}

// Put routes a state update to the owning shard. Writes routed to a shard
// skipped for this block (replay of an already-covered height) are
// dropped: the shard's durable state already contains them.
func (s *Store) Put(addr types.Address, v types.Value) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.inBlock {
		return fmt.Errorf("shard: Put outside a block; call BeginBlock first")
	}
	i := ShardOf(addr, s.n)
	if !s.active[i] {
		return nil
	}
	return s.engines[i].Put(addr, v)
}

// Commit seals the open block on every participating shard in parallel
// goroutines and combines the per-shard Hstate roots — gathered in
// shard-index order, never completion order — into the deterministic
// block-header digest.
//
// During post-crash replay a skipped shard contributes its current
// (newer) root, so digests returned for blocks below the highest shard
// checkpoint do not match the originally published headers; they match
// again from the first block all shards execute (see Height). Deriving
// the historical roots of skipped shards is an open item.
func (s *Store) Commit() (types.Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inBlock {
		return types.Hash{}, fmt.Errorf("shard: Commit without BeginBlock")
	}
	s.inBlock = false

	roots := make([]types.Hash, s.n)
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for i := range s.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if s.active[i] {
				roots[i], errs[i] = s.engines[i].Commit()
			} else {
				roots[i] = s.engines[i].RootDigest()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return types.Hash{}, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return CombineRoots(roots), nil
}

// Get returns the latest value of addr from its owning shard.
func (s *Store) Get(addr types.Address) (types.Value, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engines[ShardOf(addr, s.n)].Get(addr)
}

// GetAt returns the value of addr active at block height blk.
func (s *Store) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engines[ShardOf(addr, s.n)].GetAt(addr, blk)
}

// Proof authenticates a provenance query against the combined multi-shard
// digest: the owning shard's inner COLE proof, the shard index, and the
// sibling shard roots needed to recombine the block-header digest.
type Proof struct {
	// Shard is the partition that answered the query.
	Shard int
	// Roots holds every shard's Hstate root in shard-index order; the
	// inner proof is verified against entry Shard, the rest are the
	// siblings needed to recombine the digest.
	Roots []types.Hash
	// Inner is the owning engine's provenance proof.
	Inner *core.Proof
}

// Size approximates the proof's wire size in bytes: the inner proof plus
// one root hash per shard and the shard index.
func (p *Proof) Size() int {
	s := 8 + len(p.Roots)*types.HashSize
	if p.Inner != nil {
		s += p.Inner.Size()
	}
	return s
}

// ProvQuery answers a provenance query from the owning shard and wraps
// its proof with the full shard-root list for verification against the
// combined digest.
func (s *Store) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]core.Version, *Proof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := ShardOf(addr, s.n)
	versions, inner, err := s.engines[idx].ProvQuery(addr, blkLo, blkHi)
	if err != nil {
		return nil, nil, err
	}
	roots := make([]types.Hash, s.n)
	for i, e := range s.engines {
		roots[i] = e.RootDigest()
	}
	return versions, &Proof{Shard: idx, Roots: roots, Inner: inner}, nil
}

// VerifyProv verifies a sharded provenance proof against the combined
// block-header digest: the address must route to the claimed shard, the
// shard roots must recombine to hstate, and the inner proof must verify
// against the owning shard's root. Returns the authenticated versions,
// newest first.
func VerifyProv(hstate types.Hash, addr types.Address, blkLo, blkHi uint64, p *Proof) ([]core.Version, error) {
	if p == nil {
		return nil, fmt.Errorf("shard: nil proof")
	}
	n := len(p.Roots)
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: proof carries %d shard roots", n)
	}
	if want := ShardOf(addr, n); p.Shard != want {
		return nil, fmt.Errorf("shard: proof answers from shard %d but the address routes to shard %d of %d", p.Shard, want, n)
	}
	if CombineRoots(p.Roots) != hstate {
		return nil, fmt.Errorf("shard: combined shard roots do not match Hstate")
	}
	return core.VerifyProv(p.Roots[p.Shard], addr, blkLo, blkHi, p.Inner)
}

// RootDigest returns the current combined digest without committing.
func (s *Store) RootDigest() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	roots := make([]types.Hash, s.n)
	for i, e := range s.engines {
		roots[i] = e.RootDigest()
	}
	return CombineRoots(roots)
}

// Height returns the highest committed block height across shards. During
// normal operation all shards agree; after a crash this is the height
// replay must reach before the combined digest is meaningful again.
func (s *Store) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max uint64
	for _, e := range s.engines {
		if h := e.Height(); h > max {
			max = h
		}
	}
	return max
}

// CheckpointHeight returns the lowest shard checkpoint: after a crash,
// every block above it must be replayed (shards whose own checkpoint is
// higher skip the replayed blocks they already cover).
func (s *Store) CheckpointHeight() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := s.engines[0].CheckpointHeight()
	for _, e := range s.engines[1:] {
		if c := e.CheckpointHeight(); c < min {
			min = c
		}
	}
	return min
}

// Storage sums the on-disk footprint across shards (Levels reports the
// deepest shard).
func (s *Store) Storage() core.StorageBreakdown {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb core.StorageBreakdown
	for _, e := range s.engines {
		esb := e.Storage()
		sb.DataBytes += esb.DataBytes
		sb.IndexBytes += esb.IndexBytes
		sb.Entries += esb.Entries
		sb.Runs += esb.Runs
		if esb.Levels > sb.Levels {
			sb.Levels = esb.Levels
		}
	}
	return sb
}

// Stats sums engine counters across shards.
func (s *Store) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st core.Stats
	for _, e := range s.engines {
		es := e.Stats()
		st.Puts += es.Puts
		st.Gets += es.Gets
		st.ProvQueries += es.ProvQueries
		st.Flushes += es.Flushes
		st.Merges += es.Merges
		st.MergeWaits += es.MergeWaits
	}
	return st
}

// ShardStats returns each shard's entry count (memory + disk), for
// balance introspection.
func (s *Store) ShardStats() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, s.n)
	for i, e := range s.engines {
		w, m := e.MemEntries()
		out[i] = e.Storage().Entries + int64(w) + int64(m)
	}
	return out
}

// FlushAll persists every shard's in-memory level in parallel, for a
// clean shutdown.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inBlock {
		return fmt.Errorf("shard: FlushAll inside an open block")
	}
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for i := range s.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.engines[i].FlushAll()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Close joins background merges and releases file handles on every shard.
// Unflushed L0 data is recovered by block replay above CheckpointHeight.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for i, e := range s.engines {
		if err := e.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return first
}
