// Package shard partitions the COLE address space across N independent
// core.Engine instances and commits them in parallel.
//
// A single engine serializes its whole write path behind one mutex, so at
// commit time the flush/merge cascade of a busy block runs alone on one
// core. Sharding hash-splits the 20-byte address space into N partitions,
// each backed by its own engine in its own subdirectory; BeginBlock/Put
// route to the owning partition and Commit runs all per-shard commits in
// parallel goroutines. The block header digest becomes a deterministic
// combination of the per-shard Hstate roots, gathered in shard-index
// order so goroutine completion order never changes the result.
//
// Provenance proofs stay per-shard: a query is answered by the owning
// engine's Proof plus the full list of shard roots, and verification
// recombines the roots, checks them against the published digest, and
// then verifies the inner proof against the owning shard's root. With
// Shards = 1 the combined digest is defined to *be* the single engine's
// Hstate, so a one-shard store is byte-compatible with an unsharded one
// (same directory layout, same digests, same proofs).
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"cole/internal/core"
	"cole/internal/merge"
	"cole/internal/mht"
	"cole/internal/obs"
	"cole/internal/run"
	"cole/internal/types"
	"cole/internal/vfs"
)

// MaxShards bounds the shard count; beyond this the per-shard memory and
// file-handle overhead dwarfs any commit parallelism.
const MaxShards = 256

// ShardRootFanout is the arity of the Merkle tree that folds per-shard
// roots into the combined digest. The paper's best MHT fanout (m = 4)
// works here too: proofs carry at most (m−1)·⌈log_m N⌉ sibling hashes.
const ShardRootFanout = 4

// rootDomain prefixes the combined-root hash so a multi-shard digest can
// never collide with a single engine's root_hash_list hash over the same
// component hashes. v2: the shard roots are folded through an m-ary
// Merkle tree (proofs carry O(log N) siblings) instead of hashed flat.
var rootDomain = []byte("COLE-SHARD-ROOTS/v2\x00")

// ShardOf routes an address to its owning partition: FNV-1a over the
// 20 address bytes, mod n. Deterministic across processes and platforms.
func ShardOf(addr types.Address, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write(addr[:])
	return int(h.Sum64() % uint64(n))
}

// CombineRoots folds per-shard Hstate roots (shard-index order) into the
// block-header digest: a ShardRootFanout-ary Merkle tree over the roots,
// domain-separated from every other hash in the system. Proofs against
// the combined digest therefore carry a logarithmic Merkle path (see
// Proof.Path) rather than all N−1 sibling roots. One shard combines to
// its root unchanged, which is what makes Shards=1 byte-compatible with
// an unsharded engine.
func CombineRoots(roots []types.Hash) types.Hash {
	if len(roots) == 1 {
		return roots[0]
	}
	top := mht.RootOf(roots, ShardRootFanout)
	return types.HashData(rootDomain, top[:])
}

// Store is a sharded COLE store: N engines behind one block interface.
type Store struct {
	opts core.Options
	n    int
	gen  uint64 // reshard generation the open layout was pinned at
	// sched is the single merge pool every shard's background flush and
	// merge jobs run on, so the aggregate merge concurrency is bounded by
	// Options.MergeWorkers regardless of the shard count.
	sched *merge.Scheduler

	// unlock releases the directory's advisory flock (held from Open to
	// Close so concurrent opens and offline reshards fail loudly).
	unlock func()

	// unregister removes the store's shared merge pool from the metrics
	// registry (each engine registers — and unregisters — itself).
	unregister func()

	// mu serializes block lifecycle against reads: BeginBlock, Commit,
	// FlushAll and Close take the write lock; Put and queries take the
	// read lock (each engine still has its own internal mutex).
	mu      sync.RWMutex
	engines []*core.Engine
	allIdx  []int // 0..n-1, the runShards fan-out list
	inBlock bool
	height  uint64
	// active flags which shards participate in the open block. During
	// normal operation all do; during post-crash replay a shard whose
	// checkpoint already covers the replayed height is skipped, so blocks
	// between the minimum and maximum shard checkpoints can be re-executed
	// without double-applying writes.
	active []bool
}

// shardManifest pins the partition layout of a store directory: the
// shard count and the reshard generation. Generation 0 is the layout a
// store is created with (engines at the directory root or in shard-NN
// subdirectories); every offline reshard installs its rebuilt engines
// under a fresh generation subdirectory and bumps Gen by atomically
// rewriting this file — the rename is the reshard's single commit point.
type shardManifest struct {
	Shards int    `json:"shards"`
	Gen    uint64 `json:"gen,omitempty"`
}

const manifestName = "SHARDS"

// lockName is the advisory lock file LockDir flocks (see lock_unix.go).
const lockName = "LOCK"

// genDirName is the directory one reshard generation's engines live in.
func genDirName(gen uint64) string { return fmt.Sprintf("r%06d", gen) }

var genDirPattern = regexp.MustCompile(`^r[0-9]{6}$`)

// EngineDir returns the directory of shard i in a store of n shards at
// the given reshard generation. Generation 0 keeps the original layout
// (a single engine lives directly in dir, multiple shards in
// dir/shard-NN); resharded generations always nest under the generation
// directory, even with one shard, so a reshard never collides with live
// paths and commits by rewriting the SHARDS file alone.
func EngineDir(dir string, gen uint64, n, i int) string {
	if gen == 0 {
		if n == 1 {
			return dir
		}
		return filepath.Join(dir, fmt.Sprintf("shard-%02d", i))
	}
	return filepath.Join(dir, genDirName(gen), fmt.Sprintf("shard-%02d", i))
}

// GenDir returns the root of a reshard generation's build tree (the
// directory EngineDir nests under for gen > 0); internal/reshard builds
// the next generation inside it before committing the SHARDS file.
func GenDir(dir string, gen uint64) string { return filepath.Join(dir, genDirName(gen)) }

// Open creates or reopens a sharded store in opts.Dir. opts.Shards selects
// the partition count: 0 adopts the count persisted in the directory's
// SHARDS file (1 for a fresh or legacy directory), and an explicit count
// must match the persisted one on reopen. With one shard the engine lives
// directly in opts.Dir; with more, each shard i lives in opts.Dir/shard-NN.
func Open(opts core.Options) (*Store, error) {
	n := opts.Shards
	if n < 0 || n > MaxShards {
		return nil, fmt.Errorf("shard: Shards %d out of range [0,%d]", n, MaxShards)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("shard: Options.Dir is required")
	}
	fsys := vfs.OrOS(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	// The advisory flock guards against concurrent *processes*; an
	// injected filesystem is process-local, so there is nothing for the
	// kernel lock to arbitrate (and no real directory to flock).
	unlock := func() {}
	if vfs.IsOS(fsys) {
		var lerr error
		unlock, lerr = LockDir(opts.Dir)
		if lerr != nil {
			return nil, lerr
		}
	}
	ok := false
	defer func() {
		if !ok {
			unlock()
		}
	}()
	persisted, gen, pinned, err := PersistedLayoutFS(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	switch {
	case n == 0 && pinned:
		n = persisted
	case n == 0:
		n = 1
	case pinned && persisted != n:
		return nil, fmt.Errorf("shard: store was created with %d shards, reopened with %d", persisted, n)
	}
	if !pinned && n > 1 {
		// No SHARDS file but an engine manifest in the root: a legacy
		// unsharded store. Splitting it would silently hide the existing
		// data under empty shard subdirectories.
		if _, serr := fsys.Stat(filepath.Join(opts.Dir, "MANIFEST")); serr == nil {
			return nil, fmt.Errorf("shard: %s holds an unsharded store; it cannot be reopened with Shards=%d", opts.Dir, n)
		}
	}
	if !pinned && n == 1 {
		// The mirror image: shard subdirectories without a SHARDS file
		// (lost in a partial copy, or a crash between shard creation and
		// the manifest write). Opening a fresh engine in the root would
		// hide the shard data; an explicit matching Shards count re-pins.
		if err := guardOrphanedShards(fsys, opts.Dir); err != nil {
			return nil, err
		}
	}
	if pinned {
		// The SHARDS file authoritatively names the live generation, so
		// leftovers of interrupted or committed reshards (stale generation
		// directories, superseded generation-0 engines) are swept here.
		sweepStaleGenerations(fsys, opts.Dir, gen)
	}
	s := &Store{opts: opts, n: n, gen: gen, sched: merge.New(opts.MergeWorkers), active: make([]bool, n)}
	for i := 0; i < n; i++ {
		s.allIdx = append(s.allIdx, i)
	}
	for i := 0; i < n; i++ {
		eo := opts
		eo.Shards = 1
		eo.ShardIndex = i
		eo.Dir = EngineDir(opts.Dir, gen, n, i)
		e, err := core.OpenWithScheduler(eo, s.sched)
		if err != nil {
			for _, prev := range s.engines {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, stampShard(err, i))
		}
		s.engines = append(s.engines, e)
	}
	if err := writeManifest(fsys, opts.Dir, n); err != nil {
		for _, e := range s.engines {
			_ = e.Close()
		}
		return nil, err
	}
	// The store owns the shared merge pool, so it (not the engines, which
	// only register pools they own) exposes the pool's queue counters.
	s.unregister = obs.Register("sched", func() any { return s.sched.Stats() },
		obs.Label{Key: "store", Value: opts.Dir})
	s.unlock = unlock
	ok = true
	return s, nil
}

// stampShard fills the owning shard index into a typed corruption error
// bubbling out of one engine of a multi-shard store; other errors pass
// through untouched. The innermost attribution wins, so an already
// stamped error is never re-stamped.
func stampShard(err error, i int) error {
	var ec *types.ErrCorrupt
	if errors.As(err, &ec) && ec.Shard < 0 {
		ec.Shard = i
	}
	return err
}

// guardOrphanedShards rejects a directory that has shard subdirectories
// but no SHARDS file pinning them.
func guardOrphanedShards(fsys vfs.FS, dir string) error {
	if _, err := fsys.Stat(filepath.Join(dir, "shard-00")); err == nil {
		return fmt.Errorf("shard: %s has shard subdirectories but no %s file; reopen with the original explicit Shards count to re-pin it", dir, manifestName)
	}
	return nil
}

// GuardSingleEngine returns an error when dir cannot be served by a bare
// single engine: its SHARDS file pins multiple shards, a resharded
// generation (whose engine no longer lives at the root), or is corrupt,
// or it has shard subdirectories with no SHARDS file at all. Callers
// that open an engine directly in dir (bypassing Open) use this to avoid
// presenting an empty view of sharded data.
func GuardSingleEngine(dir string) error { return GuardSingleEngineFS(vfs.OS{}, dir) }

// GuardSingleEngineFS is GuardSingleEngine on an injected filesystem.
func GuardSingleEngineFS(fsys vfs.FS, dir string) error {
	fsys = vfs.OrOS(fsys)
	n, gen, ok, err := PersistedLayoutFS(fsys, dir)
	if err != nil {
		return err
	}
	if ok && n > 1 {
		return fmt.Errorf("shard: %s holds a %d-shard store; open it as a sharded store", dir, n)
	}
	if ok && gen > 0 {
		return fmt.Errorf("shard: %s holds a resharded store (generation %d); open it as a sharded store", dir, gen)
	}
	if !ok {
		return guardOrphanedShards(fsys, dir)
	}
	return nil
}

// PersistedCount reports the shard count pinned in dir's SHARDS file;
// ok is false when the directory is fresh or holds a legacy unsharded
// store.
func PersistedCount(dir string) (count int, ok bool, err error) {
	count, _, ok, err = PersistedLayout(dir)
	return count, ok, err
}

// PersistedLayout reports the shard count and reshard generation pinned
// in dir's SHARDS file; ok is false when the directory is fresh or holds
// a legacy unsharded store (no SHARDS file).
func PersistedLayout(dir string) (count int, gen uint64, ok bool, err error) {
	return PersistedLayoutFS(vfs.OS{}, dir)
}

// PersistedLayoutFS is PersistedLayout on an injected filesystem.
func PersistedLayoutFS(fsys vfs.FS, dir string) (count int, gen uint64, ok bool, err error) {
	raw, err := vfs.OrOS(fsys).ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, iofs.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	var m shardManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return 0, 0, false, fmt.Errorf("shard: corrupt %s file: %w", manifestName, err)
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return 0, 0, false, fmt.Errorf("shard: %s file pins count %d out of range [1,%d]", manifestName, m.Shards, MaxShards)
	}
	return m.Shards, m.Gen, true, nil
}

// InstallManifest atomically (re)pins dir's partition layout: the SHARDS
// file is replaced in a single rename, with the file synced before and
// the directory after it. This is the commit point of an offline
// reshard — before the rename the store serves its old layout
// untouched, after it the new generation's engines are live — and the
// reshard deletes the old generation right behind it, so the rename
// must be durable, not just atomic.
func InstallManifest(dir string, n int, gen uint64) error {
	return InstallManifestFS(vfs.OS{}, dir, n, gen)
}

// InstallManifestFS is InstallManifest on an injected filesystem.
func InstallManifestFS(fsys vfs.FS, dir string, n int, gen uint64) error {
	if n < 1 || n > MaxShards {
		return fmt.Errorf("shard: shard count %d out of range [1,%d]", n, MaxShards)
	}
	raw, err := json.Marshal(shardManifest{Shards: n, Gen: gen})
	if err != nil {
		return err
	}
	// Durable replace: the temp file is synced before the rename and the
	// directory after it, so the new layout either is fully on disk or
	// the old SHARDS file survives intact.
	return vfs.WriteFileAtomic(vfs.OrOS(fsys), filepath.Join(dir, manifestName), raw, 0o644)
}

func writeManifest(fsys vfs.FS, dir string, n int) error {
	path := filepath.Join(dir, manifestName)
	if _, err := fsys.Stat(path); err == nil {
		return nil // already pinned (and checked against) by Open
	}
	return InstallManifestFS(fsys, dir, n, 0)
}

// sweepStaleGenerations removes the leftovers a committed or abandoned
// reshard may have stranded in a store directory: generation
// subdirectories other than the live one, a torn SHARDS.tmp, and — once
// the store lives in a reshard generation — the engine files of the
// original generation-0 layout (root-level MANIFEST and run files,
// shard-NN subdirectories). The SHARDS file is the authority on what is
// live, so everything outside the pinned layout is garbage by
// construction. Best-effort: a failure to remove garbage never blocks an
// open.
func sweepStaleGenerations(fsys vfs.FS, dir string, gen uint64) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	live := genDirName(gen)
	for _, de := range entries {
		name := de.Name()
		switch {
		case name == manifestName+".tmp":
		case genDirPattern.MatchString(name) && (gen == 0 || name != live):
		case gen > 0 && (name == "MANIFEST" || name == "MANIFEST.tmp" || strings.HasPrefix(name, "run-")):
		case gen > 0 && shardDirPattern.MatchString(name):
		default:
			continue
		}
		_ = fsys.RemoveAll(filepath.Join(dir, name))
	}
}

var shardDirPattern = regexp.MustCompile(`^shard-[0-9]{2}$`)

// RemoveGeneration deletes the engine files of a superseded layout
// generation — the cleanup counterpart of sweepStaleGenerations, kept
// next to it so the two share one notion of what a generation's files
// are. Best-effort: the SHARDS file no longer references the layout, so
// anything left behind is swept by the next Open.
func RemoveGeneration(dir string, gen uint64, n int) {
	RemoveGenerationFS(vfs.OS{}, dir, gen, n)
}

// RemoveGenerationFS is RemoveGeneration on an injected filesystem.
func RemoveGenerationFS(fsys vfs.FS, dir string, gen uint64, n int) {
	fsys = vfs.OrOS(fsys)
	if gen > 0 {
		_ = fsys.RemoveAll(GenDir(dir, gen))
		return
	}
	if n > 1 {
		for i := 0; i < n; i++ {
			_ = fsys.RemoveAll(EngineDir(dir, 0, n, i))
		}
		return
	}
	// Generation-0 single engine: its files live at the store root next
	// to SHARDS and any generation directories.
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if name == "MANIFEST" || name == "MANIFEST.tmp" || strings.HasPrefix(name, "run-") {
			_ = fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// runOn invokes fn for each listed shard index and returns the first
// error. On a multi-core process the calls run in parallel goroutines;
// with GOMAXPROCS=1 (or a single target) they run inline, because
// fanning out on a single core buys no parallelism and the spawn/join
// cost lands on every block of the hot write path. Every listed shard
// is attempted even after a failure, so an error never leaves later
// shards at divergent lifecycle states.
func (s *Store) runOn(idxs []int, fn func(i int) error) error {
	if len(idxs) == 1 || runtime.GOMAXPROCS(0) == 1 {
		var first error
		for _, i := range idxs {
			if err := fn(i); err != nil && first == nil {
				first = fmt.Errorf("shard %d: %w", i, err)
			}
		}
		return first
	}
	errs := make([]error, len(idxs))
	var wg sync.WaitGroup
	for k, i := range idxs {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			errs[k] = fn(i)
		}(k, i)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", idxs[k], err)
		}
	}
	return nil
}

// runShards invokes fn for every shard index (see runOn).
func (s *Store) runShards(fn func(i int) error) error { return s.runOn(s.allIdx, fn) }

// Shards returns the partition count.
func (s *Store) Shards() int { return s.n }

// Generation returns the reshard generation of the open layout: 0 until
// the store is first resharded, then the count of reshards applied.
func (s *Store) Generation() uint64 { return s.gen }

// ShardIndex returns the partition owning addr.
func (s *Store) ShardIndex(addr types.Address) int { return ShardOf(addr, s.n) }

// BeginBlock opens block `height` on every shard that has not yet
// committed it. During normal operation that is all of them; after a crash
// the shards' checkpoints differ, and replaying from the minimum
// checkpoint skips the shards whose durable state already covers the
// height (their writes for it would otherwise be applied twice).
func (s *Store) BeginBlock(height uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inBlock {
		return fmt.Errorf("shard: block %d still open", s.height)
	}
	if height == 0 {
		return fmt.Errorf("shard: height 0 invalid (blocks start at 1)")
	}
	any := false
	maxCommitted := uint64(0)
	for i, e := range s.engines {
		h := e.Height()
		if h > maxCommitted {
			maxCommitted = h
		}
		s.active[i] = h < height
		any = any || s.active[i]
	}
	if !any {
		return fmt.Errorf("shard: height %d not above committed %d (no fork support)", height, maxCommitted)
	}
	for i, e := range s.engines {
		if !s.active[i] {
			continue
		}
		if err := e.BeginBlock(height); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	s.height = height
	s.inBlock = true
	return nil
}

// Put routes a state update to the owning shard. Writes routed to a shard
// skipped for this block (replay of an already-covered height) are
// dropped: the shard's durable state already contains them.
func (s *Store) Put(addr types.Address, v types.Value) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.inBlock {
		return fmt.Errorf("shard: Put outside a block; call BeginBlock first")
	}
	i := ShardOf(addr, s.n)
	if !s.active[i] {
		return nil
	}
	return s.engines[i].Put(addr, v)
}

// PutBatch routes a block's updates in one pass: updates are pre-bucketed
// per shard, then every non-empty bucket is applied with a single engine
// call — one lock acquisition per shard instead of one per update — and
// the buckets run in parallel goroutines. Bucket order preserves the
// batch's first-occurrence order, so each engine sees exactly the
// sub-sequence of updates it owns and digests match a sequential Put
// loop byte for byte. Buckets of shards skipped for this block (replay
// of an already-covered height) are dropped, like Put.
func (s *Store) PutBatch(updates []types.Update) error {
	if len(updates) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.inBlock {
		return fmt.Errorf("shard: PutBatch outside a block; call BeginBlock first")
	}
	if s.n == 1 {
		if !s.active[0] {
			return nil
		}
		return s.engines[0].PutBatch(updates)
	}
	buckets := make([][]types.Update, s.n)
	var nonEmpty []int
	for _, u := range updates {
		i := ShardOf(u.Addr, s.n)
		if !s.active[i] {
			continue
		}
		if len(buckets[i]) == 0 {
			nonEmpty = append(nonEmpty, i)
		}
		buckets[i] = append(buckets[i], u)
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	// Fan out only over shards that actually received updates: a small
	// block on a wide store would otherwise spawn a goroutine per empty
	// bucket.
	return s.runOn(nonEmpty, func(i int) error {
		return s.engines[i].PutBatch(buckets[i])
	})
}

// Commit seals the open block on every participating shard in parallel
// goroutines and combines the per-shard Hstate roots — gathered in
// shard-index order, never completion order — into the deterministic
// block-header digest.
//
// During post-crash replay a skipped shard (one whose checkpoint already
// covers the block) contributes the exact root it committed at that
// height, read back from its persisted root history
// (Options.RootHistory, default 512 commits), so replayed digests
// reproduce the originally published headers. Two residual windows
// remain: a replayed height that has aged out of the retained history
// falls back to the shard's current root, and with asynchronous merge an
// *actively replaying* shard's own digests only converge from its
// re-triggered cascade onward (the reopened structure is ahead of the
// lost L0 — skipped shards are exact throughout).
func (s *Store) Commit() (types.Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.inBlock {
		return types.Hash{}, fmt.Errorf("shard: Commit without BeginBlock")
	}
	s.inBlock = false

	roots := make([]types.Hash, s.n)
	err := s.runShards(func(i int) error {
		if !s.active[i] {
			if r, ok := s.engines[i].HistoricalRoot(s.height); ok {
				roots[i] = r
			} else {
				roots[i] = s.engines[i].RootDigest()
			}
			return nil
		}
		var cerr error
		roots[i], cerr = s.engines[i].Commit()
		return cerr
	})
	if err != nil {
		return types.Hash{}, err
	}
	return CombineRoots(roots), nil
}

// Get returns the latest committed value of addr from its owning shard.
// Lock-free: routing reads only immutable fields and the engine read path
// runs against its published view.
func (s *Store) Get(addr types.Address) (types.Value, bool, error) {
	i := ShardOf(addr, s.n)
	v, ok, err := s.engines[i].Get(addr)
	return v, ok, stampShard(err, i)
}

// GetAt returns the value of addr active at block height blk.
func (s *Store) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	i := ShardOf(addr, s.n)
	v, at, ok, err := s.engines[i].GetAt(addr, blk)
	return v, at, ok, stampShard(err, i)
}

// GetBatch resolves many point lookups in one pass, all observing the
// same block height on every shard, in input order. It pins a snapshot
// and delegates to Snapshot.GetBatch: the store lock is held only for the
// pin, not across the shard lookups, so a large batch never stalls a
// concurrent Commit.
func (s *Store) GetBatch(addrs []types.Address) ([]core.ReadResult, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	snap := s.Snapshot()
	defer snap.Release()
	return snap.GetBatch(addrs)
}

// Snapshot pins every shard's published read view under the store lock
// (which excludes commits), yielding one consistent multi-shard state: a
// cross-shard read through the snapshot can never observe shard A at
// block N and shard B at block N+1. Release it when done so retired run
// files can be reclaimed.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap := &Snapshot{n: s.n, shards: make([]*core.Snapshot, s.n)}
	for i, e := range s.engines {
		snap.shards[i] = e.Snapshot()
		if h := snap.shards[i].Height(); h > snap.height {
			snap.height = h
		}
	}
	return snap
}

// Snapshot is a pinned, consistent read handle over all shards of the
// store: every read observes the same committed block height on every
// shard, lock-free, concurrently with commits and merges.
type Snapshot struct {
	shards   []*core.Snapshot
	n        int
	height   uint64
	rootOnce sync.Once
	root     types.Hash
	released atomic.Bool
}

// Height returns the committed block height the snapshot observes.
func (sn *Snapshot) Height() uint64 { return sn.height }

// Root returns the combined state digest the snapshot is consistent with.
// Computed on first use: the pinned per-shard roots are immutable, and
// reads that never verify proofs (Store.GetBatch pins a snapshot per
// call) skip the O(N) Merkle fold entirely.
func (sn *Snapshot) Root() types.Hash {
	sn.rootOnce.Do(func() {
		roots := make([]types.Hash, sn.n)
		for i, s := range sn.shards {
			roots[i] = s.Root()
		}
		sn.root = CombineRoots(roots)
	})
	return sn.root
}

// Get returns the latest value of addr as of the snapshot.
func (sn *Snapshot) Get(addr types.Address) (types.Value, bool, error) {
	i := ShardOf(addr, sn.n)
	v, ok, err := sn.shards[i].Get(addr)
	return v, ok, stampShard(err, i)
}

// GetAt returns the value of addr active at block height blk.
func (sn *Snapshot) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	i := ShardOf(addr, sn.n)
	v, at, ok, err := sn.shards[i].GetAt(addr, blk)
	return v, at, ok, stampShard(err, i)
}

// GetBatch resolves many point lookups, all consistent with the
// snapshot's height, in input order. Like Store.GetBatch, addresses are
// bucketed per owning shard and the non-empty buckets resolve
// concurrently on multi-core hosts.
func (sn *Snapshot) GetBatch(addrs []types.Address) ([]core.ReadResult, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	out := make([]core.ReadResult, len(addrs))
	if sn.n == 1 {
		res, err := sn.shards[0].GetBatch(addrs)
		if err != nil {
			return nil, err
		}
		copy(out, res)
		return out, nil
	}
	buckets := make([][]types.Address, sn.n)
	positions := make([][]int, sn.n)
	var nonEmpty []int
	for pos, addr := range addrs {
		i := ShardOf(addr, sn.n)
		if len(buckets[i]) == 0 {
			nonEmpty = append(nonEmpty, i)
		}
		buckets[i] = append(buckets[i], addr)
		positions[i] = append(positions[i], pos)
	}
	resolve := func(i int) error {
		res, err := sn.shards[i].GetBatch(buckets[i])
		if err != nil {
			return stampShard(err, i)
		}
		for k, pos := range positions[i] {
			out[pos] = res[k]
		}
		return nil
	}
	if len(nonEmpty) == 1 || runtime.GOMAXPROCS(0) == 1 {
		for _, i := range nonEmpty {
			if err := resolve(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, len(nonEmpty))
	var wg sync.WaitGroup
	for k, i := range nonEmpty {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			errs[k] = resolve(i)
		}(k, i)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", nonEmpty[k], err)
		}
	}
	return out, nil
}

// Entries streams every live entry of all shards — the pinned L0
// snapshots plus every committed run — in globally sorted compound-key
// order: shards partition the address space, so a k-way merge of their
// per-shard exports is the store's full sorted column. Valid until the
// snapshot is Released; check Err after exhaustion.
func (sn *Snapshot) Entries() *run.MergeIterator {
	its := make([]run.Iterator, len(sn.shards))
	for i, s := range sn.shards {
		its[i] = s.Entries()
	}
	return run.Merge(its...)
}

// EntryCount returns the number of entries Entries will yield.
func (sn *Snapshot) EntryCount() int64 {
	var n int64
	for _, s := range sn.shards {
		n += s.EntryCount()
	}
	return n
}

// Release unpins all shard views. Safe to call more than once.
func (sn *Snapshot) Release() {
	if sn.released.CompareAndSwap(false, true) {
		for _, s := range sn.shards {
			s.Release()
		}
	}
}

// Proof authenticates a provenance query against the combined multi-shard
// digest: the owning shard's inner COLE proof, its Hstate root, and the
// Merkle path from that root up to the combined digest. The path carries
// O(log N) sibling hashes — at 256 shards that is at most 12 hashes where
// the flat scheme shipped 255 sibling roots.
type Proof struct {
	// Shard is the partition that answered the query.
	Shard int
	// Shards is the store's partition count N (the proof must route addr
	// to Shard under exactly this N).
	Shards int
	// Root is the owning shard's Hstate root; the inner proof verifies
	// against it.
	Root types.Hash
	// Path authenticates Root as leaf `Shard` of the ShardRootFanout-ary
	// Merkle tree whose root (domain-hashed) is the combined digest.
	// Nil when Shards == 1: a single root IS the digest.
	Path *mht.RangeProof
	// Inner is the owning engine's provenance proof.
	Inner *core.Proof
}

// Verify checks the proof against a combined block-header digest and
// returns the authenticated versions — the method form of VerifyProv, so
// a proof can be checked through a backend-independent interface without
// naming its concrete type.
func (p *Proof) Verify(hstate types.Hash, addr types.Address, blkLo, blkHi uint64) ([]core.Version, error) {
	return VerifyProv(hstate, addr, blkLo, blkHi, p)
}

// Size approximates the proof's wire size in bytes: the inner proof, the
// shard root, the Merkle path, and the two index fields.
func (p *Proof) Size() int {
	s := 8 + 8 + types.HashSize
	if p.Path != nil {
		s += p.Path.Size()
	}
	if p.Inner != nil {
		s += p.Inner.Size()
	}
	return s
}

// ProvQuery answers a provenance query from the owning shard and wraps
// its proof with the Merkle path of the owning shard's root inside the
// combined digest. The proof verifies against the combined digest of the
// last committed block: the store read-lock excludes commits while the
// published per-shard view roots are gathered, and the inner query runs
// against the owning shard's pinned view — no engine mutex is taken.
func (s *Store) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]core.Version, *Proof, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := ShardOf(addr, s.n)
	snap := s.engines[idx].Snapshot()
	defer snap.Release()
	versions, inner, err := snap.ProvQuery(addr, blkLo, blkHi)
	if err != nil {
		return nil, nil, stampShard(err, idx)
	}
	p := &Proof{Shard: idx, Shards: s.n, Inner: inner, Root: snap.Root()}
	if s.n == 1 {
		return versions, p, nil
	}
	roots := make([]types.Hash, s.n)
	for i, e := range s.engines {
		if i == idx {
			roots[i] = snap.Root()
			continue
		}
		roots[i] = e.ViewRoot()
	}
	p.Path, err = mht.ProveRangeOf(roots, ShardRootFanout, int64(idx), int64(idx))
	if err != nil {
		return nil, nil, fmt.Errorf("shard: root path: %w", err)
	}
	return versions, p, nil
}

// VerifyProv verifies a sharded provenance proof against the combined
// block-header digest: the address must route to the claimed shard, the
// shard root's Merkle path must reproduce hstate, and the inner proof
// must verify against the owning shard's root. Returns the authenticated
// versions, newest first.
func VerifyProv(hstate types.Hash, addr types.Address, blkLo, blkHi uint64, p *Proof) ([]core.Version, error) {
	if p == nil {
		return nil, fmt.Errorf("shard: nil proof")
	}
	n := p.Shards
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("shard: proof claims %d shards", n)
	}
	if want := ShardOf(addr, n); p.Shard != want {
		return nil, fmt.Errorf("shard: proof answers from shard %d but the address routes to shard %d of %d", p.Shard, want, n)
	}
	combined := p.Root
	if n > 1 {
		if p.Path == nil {
			return nil, fmt.Errorf("shard: multi-shard proof is missing the root Merkle path")
		}
		// The path geometry must bind to the claimed shard layout: N
		// leaves, the canonical fanout, and exactly the owning leaf.
		if p.Path.N != int64(n) || p.Path.M != ShardRootFanout ||
			p.Path.Lo != int64(p.Shard) || p.Path.Hi != int64(p.Shard) {
			return nil, fmt.Errorf("shard: root path geometry does not match shard %d of %d", p.Shard, n)
		}
		top, err := mht.VerifyRange(p.Path, []types.Hash{p.Root})
		if err != nil {
			return nil, fmt.Errorf("shard: root path: %w", err)
		}
		combined = types.HashData(rootDomain, top[:])
	} else if p.Path != nil {
		return nil, fmt.Errorf("shard: single-shard proof carries a root Merkle path")
	}
	if combined != hstate {
		return nil, fmt.Errorf("shard: combined shard roots do not match Hstate")
	}
	return core.VerifyProv(p.Root, addr, blkLo, blkHi, p.Inner)
}

// RootDigest returns the current combined digest without committing.
func (s *Store) RootDigest() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	roots := make([]types.Hash, s.n)
	for i, e := range s.engines {
		roots[i] = e.RootDigest()
	}
	return CombineRoots(roots)
}

// Height returns the highest committed block height across shards. During
// normal operation all shards agree; after a crash this is the height
// replay must reach before the combined digest is meaningful again.
func (s *Store) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var max uint64
	for _, e := range s.engines {
		if h := e.Height(); h > max {
			max = h
		}
	}
	return max
}

// CheckpointHeight returns the lowest shard checkpoint: after a crash,
// every block above it must be replayed (shards whose own checkpoint is
// higher skip the replayed blocks they already cover).
func (s *Store) CheckpointHeight() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := s.engines[0].CheckpointHeight()
	for _, e := range s.engines[1:] {
		if c := e.CheckpointHeight(); c < min {
			min = c
		}
	}
	return min
}

// Storage sums the on-disk footprint across shards (Levels reports the
// deepest shard).
func (s *Store) Storage() core.StorageBreakdown {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sb core.StorageBreakdown
	for _, e := range s.engines {
		esb := e.Storage()
		sb.DataBytes += esb.DataBytes
		sb.IndexBytes += esb.IndexBytes
		sb.Entries += esb.Entries
		sb.Runs += esb.Runs
		if esb.Levels > sb.Levels {
			sb.Levels = esb.Levels
		}
	}
	return sb
}

// Stats sums engine counters across shards. MergeWaits and
// PartitionWaits stay DISJOINT in the sum, exactly as they are per
// engine: MergeWaits is cross-shard back-pressure (whole jobs queuing,
// commits blocking on unfinished merges), PartitionWaits is the
// intentional sibling-span queueing of fanned-out merges — adding one
// into the other would make a busy-but-healthy pool look starved. The
// tail/stall counters sum too, except MaxCommitNanos, which takes the
// worst shard: a sharded commit is as slow as its slowest engine.
func (s *Store) Stats() core.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st core.Stats
	st.Hist = &core.OpHists{}
	for _, e := range s.engines {
		es := e.Stats()
		st.Puts += es.Puts
		st.Gets += es.Gets
		st.ProvQueries += es.ProvQueries
		st.Flushes += es.Flushes
		st.Merges += es.Merges
		st.BloomSkips += es.BloomSkips
		st.MergeWaits += es.MergeWaits
		st.PartitionWaits += es.PartitionWaits
		st.Commits += es.Commits
		st.CommitNanos += es.CommitNanos
		if es.MaxCommitNanos > st.MaxCommitNanos {
			st.MaxCommitNanos = es.MaxCommitNanos
		}
		st.StallNanos += es.StallNanos
		st.PaceNanos += es.PaceNanos
		st.PaceSleeps += es.PaceSleeps
		st.Preemptions += es.Preemptions
		st.FlushBytes += es.FlushBytes
		st.MergeBytes += es.MergeBytes
		st.MergeNanos += es.MergeNanos
		st.PageReads += es.PageReads
		st.CacheHits += es.CacheHits
		st.SeqReads += es.SeqReads
		st.CorruptReads += es.CorruptReads
		// All shards share one tracer (Options.Trace is copied to every
		// engine), so each reports the same drop counter: take the max,
		// not the sum, or N shards would multiply every drop by N.
		if es.TraceDropped > st.TraceDropped {
			st.TraceDropped = es.TraceDropped
		}
		st.Hist.Merge(es.Hist)
	}
	return st
}

// ShardStat is one shard's balance snapshot.
type ShardStat struct {
	// Entries counts the shard's stored entries (memory + disk).
	Entries int64
	// Bytes is the shard's on-disk footprint (data + index files).
	Bytes int64
	// Puts counts the writes routed to the shard since open.
	Puts int64
	// MergeWaits counts the shard's merge back-pressure events.
	MergeWaits int64
	// MaxCommitNanos is the shard's single worst commit: the straggler
	// diagnosis for a sharded store's tail latency (the combined commit
	// is as slow as its slowest shard).
	MaxCommitNanos int64
}

// ShardStats returns each shard's balance snapshot, for imbalance
// introspection: a skewed address population routes unevenly, the hot
// shard becomes the commit straggler, and a persistently lopsided
// entry/byte spread is the operator's cue that an offline reshard is
// worth its rewrite cost.
func (s *Store) ShardStats() []ShardStat {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ShardStat, s.n)
	for i, e := range s.engines {
		w, m := e.MemEntries()
		st := e.Stats()
		sb := e.Storage()
		out[i] = ShardStat{
			Entries:        sb.Entries + int64(w) + int64(m),
			Bytes:          sb.DataBytes + sb.IndexBytes,
			Puts:           st.Puts,
			MergeWaits:     st.MergeWaits,
			MaxCommitNanos: st.MaxCommitNanos,
		}
	}
	return out
}

// Scheduler exposes the store's shared merge pool.
func (s *Store) Scheduler() *merge.Scheduler { return s.sched }

// FlushAll persists every shard's in-memory level in parallel, for a
// clean shutdown.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inBlock {
		return fmt.Errorf("shard: FlushAll inside an open block")
	}
	return s.runShards(func(i int) error { return s.engines[i].FlushAll() })
}

// Close joins background merges and releases file handles on every shard.
// Unflushed L0 data is recovered by block replay above CheckpointHeight.
func (s *Store) Close() error {
	if s.unregister != nil {
		s.unregister()
		s.unregister = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for i, e := range s.engines {
		if err := e.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if s.unlock != nil {
		s.unlock()
		s.unlock = nil
	}
	return first
}
