package shard

import (
	"net/http/httptest"
	"strings"
	"testing"

	"cole/internal/core"
	"cole/internal/obs"
)

// TestStoreStatsMergesHistograms checks that the sharded Stats roll-up
// sums the per-shard operation histograms: the store-level commit count
// must equal the sum of per-shard commits, and the read histograms must
// cover reads routed to any shard.
func TestStoreStatsMergesHistograms(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 4, true)
	defer s.Close()
	runBlocks(t, s, 0, 10, 32, 128)
	for i := 0; i < 16; i++ {
		if _, _, err := s.Get(testAddr(i)); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.Hist == nil {
		t.Fatal("sharded Stats.Hist is nil")
	}
	// Every shard commits every block, so the merged commit histogram
	// holds shards × blocks samples — the same total Commits counts.
	if got, want := st.Hist.Commit.Count(), st.Commits; got != want {
		t.Fatalf("merged commit histogram count %d, Stats.Commits %d", got, want)
	}
	if want := int64(4 * 10); st.Commits != want {
		t.Fatalf("Stats.Commits = %d, want %d (4 shards × 10 blocks)", st.Commits, want)
	}
	if st.Hist.Get.Count() == 0 {
		t.Fatal("merged Get histogram empty after routed reads")
	}
	// The merged extremes must bound every shard's own.
	sum := st.Hist.Commit.Summary()
	if sum == nil {
		t.Fatal("merged commit histogram has no summary")
	}
	if sum.Min <= 0 || sum.Max < sum.Min {
		t.Fatalf("merged extremes implausible: min=%v max=%v", sum.Min, sum.Max)
	}
}

// TestStoreStatsTraceCounters checks the tracer-related roll-up rules: a
// shared tracer's drop counter takes the cross-shard max (never the sum),
// and pacing sleeps sum.
func TestStoreStatsTraceCounters(t *testing.T) {
	// Capacity 1: the first event fills the ring, everything after drops,
	// and every shard reports the same shared drop counter.
	tr := obs.NewTracer(1)
	s, err := Open(core.Options{
		Dir:         t.TempDir(),
		Shards:      2,
		MemCapacity: 16,
		AsyncMerge:  true,
		Trace:       tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	runBlocks(t, s, 0, 6, 32, 64)

	dropped := tr.Dropped()
	if dropped == 0 {
		t.Fatal("expected drops from a capacity-1 tracer")
	}
	st := s.Stats()
	if st.TraceDropped != dropped {
		t.Fatalf("Stats.TraceDropped = %d, tracer dropped %d (max-across-shards, not sum)", st.TraceDropped, dropped)
	}
}

// TestMetricsExpositionPerShard scrapes the shared metrics handler and
// checks that every shard appears with its own shard label and that the
// store's shared merge pool is exported exactly once.
func TestMetricsExpositionPerShard(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, 2, false)
	runBlocks(t, s, 0, 4, 16, 64)

	rec := httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`shard="0"`,
		`shard="1"`,
		"cole_sched_submitted{store=\"" + dir + "\"}",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q\n%s", want, body)
		}
	}
	if n := strings.Count(body, "cole_sched_submitted{store=\""+dir+"\"}"); n != 1 {
		t.Fatalf("shared merge pool exported %d times, want 1", n)
	}

	s.Close()
	rec = httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), `store="`+dir) {
		t.Fatal("closed store still present in metrics exposition")
	}
}
