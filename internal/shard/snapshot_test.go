package shard

import (
	"sync"
	"testing"

	"cole/internal/types"
)

// markerAddrs returns one address owned by each shard of an n-shard
// store (probing candidates until every shard has one).
func markerAddrs(t *testing.T, s *Store) []types.Address {
	t.Helper()
	out := make([]types.Address, s.Shards())
	seen := 0
	for i := 0; seen < s.Shards(); i++ {
		a := testAddr(1_000_000 + i)
		idx := s.ShardIndex(a)
		if out[idx] == (types.Address{}) {
			out[idx] = a
			seen++
		}
		if i > 1_000_000 {
			t.Fatal("could not find a marker address per shard")
		}
	}
	return out
}

// TestSnapshotConsistentAcrossShards commits blocks that write the block
// height into a marker address on every shard, while concurrent readers
// pin snapshots and assert all shards answer from the same height — the
// cross-shard atomicity a per-shard read path cannot give.
func TestSnapshotConsistentAcrossShards(t *testing.T) {
	s := openTest(t, t.TempDir(), 4, true)
	defer s.Close()
	markers := markerAddrs(t, s)

	seed := make([]types.Update, len(markers))
	for i, a := range markers {
		seed[i] = types.Update{Addr: a, Value: types.ValueFromUint64(0)}
	}

	stop := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				res, err := snap.GetBatch(markers)
				if err != nil {
					snap.Release()
					errs <- err
					return
				}
				var h0 uint64
				for i, r := range res {
					if !r.Found {
						h0 = 0
						break
					}
					if i == 0 {
						h0 = r.Value.Uint64()
						continue
					}
					if r.Value.Uint64() != h0 {
						snap.Release()
						t.Errorf("snapshot torn across shards: shard 0 at height %d, shard %d at %d (snapshot height %d)",
							h0, i, r.Value.Uint64(), snap.Height())
						errs <- errTorn
						return
					}
				}
				snap.Release()
			}
		}()
	}

	for h := uint64(1); h <= 150; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		upd := make([]types.Update, len(markers))
		for i, a := range markers {
			upd[i] = types.Update{Addr: a, Value: types.ValueFromUint64(h)}
		}
		if err := s.PutBatch(upd); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

var errTorn = &tornError{}

type tornError struct{}

func (*tornError) Error() string { return "cross-shard snapshot reads disagree on block height" }

// TestShardGetBatchMatchesGets: the fan-out batch read returns exactly
// what per-address Gets return, in input order, and GetBatch through a
// released store still works after commits retire runs.
func TestShardGetBatchMatchesGets(t *testing.T) {
	s := openTest(t, t.TempDir(), 4, false)
	defer s.Close()
	runBlocks(t, s, 0, 20, 16, 40)

	addrs := make([]types.Address, 0, 45)
	for i := 0; i < 45; i++ {
		addrs = append(addrs, testAddr(i)) // the last few were never written
	}
	batch, err := s.GetBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		v, ok, err := s.Get(a)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Found != ok || (ok && batch[i].Value != v) {
			t.Fatalf("addr %d: batch %+v disagrees with Get (%v, %v)", i, batch[i], v, ok)
		}
	}

	// A pinned sharded snapshot keeps answering at its height after more
	// blocks commit.
	snap := s.Snapshot()
	h := snap.Height()
	before, err := snap.GetBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	runBlocks(t, s, 20, 10, 16, 40)
	after, err := snap.GetBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned sharded snapshot drifted at addr %d", i)
		}
	}
	if snap.Height() != h {
		t.Fatal("snapshot height drifted")
	}
	snap.Release()
}
