package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"

	"cole/internal/core"
	"cole/internal/run"
	"cole/internal/vfs"
)

// VerifyStore scrubs a closed store directory — sharded or not — and
// reports every integrity defect: the SHARDS layout file, then every
// shard engine's manifest and runs (see core.VerifyStore). The store
// must not be open (the scrub reads files a live merge could retire).
// notes carries non-fatal observations; err is operational only — a
// corrupt store is reported through findings, not err.
func VerifyStore(fsys vfs.FS, dir string, fast bool) (findings []run.Finding, notes []string, err error) {
	fsys = vfs.OrOS(fsys)
	if _, serr := fsys.Stat(dir); serr != nil {
		return nil, nil, fmt.Errorf("shard: %s is not a store directory", dir)
	}
	// Hold the store's advisory lock for the scrub's duration: scrubbing
	// a directory a live process is committing to would report phantom
	// damage from half-written runs. (An injected filesystem is
	// process-local; there is nothing for flock to arbitrate.)
	if vfs.IsOS(fsys) {
		unlock, lerr := LockDir(dir)
		if lerr != nil {
			return nil, nil, lerr
		}
		defer unlock()
	}
	layoutPath := filepath.Join(dir, manifestName)
	raw, rerr := fsys.ReadFile(layoutPath)
	if errors.Is(rerr, iofs.ErrNotExist) {
		// Legacy/unsharded layout: one engine at the store root. A
		// directory of shard subdirectories with no SHARDS file is the
		// torn-layout state Open refuses; the scrub reports it instead.
		if gerr := guardOrphanedShards(fsys, dir); gerr != nil {
			return []run.Finding{{File: layoutPath, Page: -1, Detail: gerr.Error()}}, nil, nil
		}
		return core.VerifyStore(fsys, dir, fast)
	}
	if rerr != nil {
		if _, serr := fsys.Stat(dir); serr != nil {
			return nil, nil, fmt.Errorf("shard: %s is not a store directory", dir)
		}
		return nil, nil, rerr
	}
	var m shardManifest
	if uerr := json.Unmarshal(raw, &m); uerr != nil {
		return []run.Finding{{File: layoutPath, Page: -1,
			Detail: fmt.Sprintf("layout file does not parse: %v", uerr)}}, nil, nil
	}
	if m.Shards < 1 || m.Shards > MaxShards {
		return []run.Finding{{File: layoutPath, Page: -1,
			Detail: fmt.Sprintf("layout pins shard count %d out of range [1,%d]", m.Shards, MaxShards)}}, nil, nil
	}
	for i := 0; i < m.Shards; i++ {
		ed := EngineDir(dir, m.Gen, m.Shards, i)
		if _, serr := fsys.Stat(ed); serr != nil && ed != dir {
			findings = append(findings, run.Finding{File: ed, Page: -1,
				Detail: fmt.Sprintf("shard %d engine directory missing", i)})
			continue
		}
		efs, ens, verr := core.VerifyStore(fsys, ed, fast)
		if verr != nil {
			return findings, notes, fmt.Errorf("shard %d: %w", i, verr)
		}
		findings = append(findings, efs...)
		for _, nt := range ens {
			notes = append(notes, fmt.Sprintf("shard %d: %s", i, nt))
		}
	}
	return findings, notes, nil
}
