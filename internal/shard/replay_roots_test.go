package shard

import (
	"fmt"
	"testing"

	"cole/internal/core"
	"cole/internal/types"
)

// addrsOwnedBy returns `count` deterministic addresses that route to the
// given shard under an n-way split.
func addrsOwnedBy(n, shardIdx, count int) []types.Address {
	var out []types.Address
	for i := 0; len(out) < count; i++ {
		a := types.AddressFromString(fmt.Sprintf("owned-%d-%d-%d", n, shardIdx, i))
		if ShardOf(a, n) == shardIdx {
			out = append(out, a)
		}
	}
	return out
}

// TestReplayReproducesHistoricalDigests is the historical-roots
// acceptance test: a 2-shard store with deliberately uneven write
// routing (so shard checkpoints diverge) crashes and replays; every
// replayed Commit must return the exact digest originally published at
// that height, because the skipped hot shard contributes its persisted
// historical root instead of its current one.
func TestReplayReproducesHistoricalDigests(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			const n, blocks = 2, 40
			hot := addrsOwnedBy(n, 0, 6)  // 6 writes/block → cascades often
			cold := addrsOwnedBy(n, 1, 4) // 1 write/block → cascades rarely
			opts := core.Options{Dir: t.TempDir(), Shards: n, MemCapacity: 16, AsyncMerge: async}

			writeBlock := func(s *Store, h uint64) types.Hash {
				t.Helper()
				if err := s.BeginBlock(h); err != nil {
					t.Fatalf("begin %d: %v", h, err)
				}
				for w, a := range hot {
					if err := s.Put(a, types.ValueFromUint64(h*100+uint64(w))); err != nil {
						t.Fatal(err)
					}
				}
				if err := s.Put(cold[int(h)%len(cold)], types.ValueFromUint64(h)); err != nil {
					t.Fatal(err)
				}
				root, err := s.Commit()
				if err != nil {
					t.Fatalf("commit %d: %v", h, err)
				}
				return root
			}

			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			headers := make([]types.Hash, blocks+1)
			for h := uint64(1); h <= blocks; h++ {
				headers[h] = writeBlock(s, h)
			}
			// Crash: close without FlushAll, losing both L0s.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Per-shard manifest geometry, read before the reopen: a shard
			// is skipped while the replayed height is ≤ its reopen height
			// (= manifest Replay) and contributes its exact historical
			// root. An *active* shard's own replayed roots are exact
			// everywhere in sync mode; with asynchronous merge they only
			// converge from its manifest Height (the re-triggered cascade)
			// onward, because the reopened structure is ahead of the data
			// horizon — an engine property independent of this test's
			// skipped-shard substitution.
			replayFrom := make([]uint64, n)
			convergedFrom := make([]uint64, n)
			for i := 0; i < n; i++ {
				st, err := core.ReadStoreState(EngineDir(opts.Dir, 0, n, i))
				if err != nil {
					t.Fatal(err)
				}
				replayFrom[i] = st.Replay
				convergedFrom[i] = st.Replay
				if async {
					convergedFrom[i] = st.Height
				}
			}
			mustMatch := func(h uint64) bool {
				for i := 0; i < n; i++ {
					skipped := h <= replayFrom[i]
					if !skipped && h < convergedFrom[i] {
						return false
					}
				}
				return true
			}

			s2, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			ckpt := s2.CheckpointHeight()
			tip := s2.Height()
			if ckpt >= tip {
				t.Fatalf("checkpoints not uneven enough (ckpt=%d tip=%d); the test needs skipped shards", ckpt, tip)
			}
			// The interesting window — a height where the hot shard is
			// skipped while the cold shard has converged — must exist, or
			// the test proves nothing about historical-root substitution.
			sawSubstituted := false
			for h := ckpt + 1; h <= blocks; h++ {
				if mustMatch(h) && (h <= replayFrom[0] || h <= replayFrom[1]) {
					sawSubstituted = true
				}
			}
			if !sawSubstituted {
				t.Fatalf("workload produced no height with a skipped shard and a converged sibling (replayFrom=%v convergedFrom=%v)", replayFrom, convergedFrom)
			}
			for h := ckpt + 1; h <= blocks; h++ {
				got := writeBlock(s2, h)
				if !mustMatch(h) {
					continue
				}
				if got != headers[h] {
					t.Fatalf("replayed digest at height %d diverges from the published header (skipped-shard root not historical?)", h)
				}
			}
			// And the store keeps operating normally past the replay.
			for h := uint64(blocks + 1); h <= blocks+5; h++ {
				writeBlock(s2, h)
			}
		})
	}
}

// TestReplayHeadersMatchFullChain is the end-to-end variant over the
// uniform workload used elsewhere: replay after a crash reproduces every
// lost header, not just the final digest.
func TestReplayHeadersMatchFullChain(t *testing.T) {
	dir := t.TempDir()
	const shards, blocks, writes, accounts = 3, 60, 15, 40
	s := openTest(t, dir, shards, false)
	roots := runBlocks(t, s, 0, blocks, writes, accounts)
	if err := s.Close(); err != nil { // crash: no FlushAll
		t.Fatal(err)
	}
	s2 := openTest(t, dir, shards, false)
	defer s2.Close()
	ckpt := s2.CheckpointHeight()
	if ckpt >= blocks {
		t.Fatalf("nothing to replay (ckpt=%d)", ckpt)
	}
	replayed := runBlocks(t, s2, ckpt, blocks-int(ckpt), writes, accounts)
	for i, got := range replayed {
		h := int(ckpt) + i + 1
		if got != roots[h-1] {
			t.Fatalf("replayed header at height %d diverges from the original", h)
		}
	}
}
