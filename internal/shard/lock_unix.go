//go:build unix

package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// LockDir acquires the store directory's advisory exclusive lock: a
// non-blocking flock on dir/LOCK. Open holds it for the store's
// lifetime and Reshard for the rewrite's, so a reshard of a directory a
// live process still serves — or two stores over one directory — fails
// loudly instead of silently committing over concurrent writes. The
// kernel releases a flock when its holder dies, so a crash never
// strands the lock.
func LockDir(dir string) (release func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("shard: %s is in use by another process (close it first): %w", dir, err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
