// Package hist provides the HDR-style log-linear latency histogram used
// across the engine and the bench harness: values (nanoseconds) land in
// buckets whose width doubles every subCount values, so the relative
// quantization error is bounded by 1/subCount (~1.6%) across the full
// range — sub-microsecond spins to multi-second stalls — in ~30 KB of
// fixed memory.
//
// Recording is O(1), allocation-free, and atomic: one bucket increment,
// one total increment, and two bounded CAS loops for the extremes. That
// makes a single Hist safe to share between every goroutine touching an
// engine (readers, the commit path, background merges), which is what
// lets the engine keep operation histograms always on without a lock on
// the hot path. Reads (Percentile, Summary, Snapshot) are best-effort
// over concurrent recording: totals and buckets may be momentarily
// skewed by in-flight increments, which is fine for telemetry.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits fixes the linear sub-bucket resolution (2^6 = 64
	// sub-buckets per power of two).
	subBits  = 6
	subCount = 1 << subBits
	// buckets covers every int64 nanosecond value: 64 linear buckets
	// plus 64 per remaining power of two.
	buckets = subCount * (65 - subBits)
)

// Hist is the histogram. The zero value is empty and ready to use.
//
// The extremes are stored as value+1 so that 0 can mean "unset" — the
// zero value needs no constructor, which lets callers embed Hists by
// value (per-worker slices, Stats snapshots). All mutation goes through
// atomic ops on plain int64 fields (not atomic.Int64, whose noCopy
// marker would poison the value-copy idiom the harness relies on);
// copies taken via Snapshot or plain assignment are inert plain data.
type Hist struct {
	counts   [buckets]int64
	total    int64
	minPlus1 int64
	maxPlus1 int64
}

// index maps a non-negative nanosecond value to its bucket.
func index(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - subBits - 1
	return exp*subCount + int(u>>uint(exp))
}

// value returns the inclusive upper bound of a bucket — the value
// reported for any sample that landed in it, guaranteeing percentiles
// never under-report.
func value(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := idx/subCount - 1
	sub := int64(idx - exp*subCount)
	return (sub+1)<<uint(exp) - 1
}

// Record adds one latency sample. Safe for concurrent use.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.counts[index(v)], 1)
	atomic.AddInt64(&h.total, 1)
	h.observe(v)
}

// observe folds v into the min/max extremes.
func (h *Hist) observe(v int64) {
	for {
		cur := atomic.LoadInt64(&h.minPlus1)
		if cur != 0 && cur <= v+1 {
			break
		}
		if atomic.CompareAndSwapInt64(&h.minPlus1, cur, v+1) {
			break
		}
	}
	for {
		cur := atomic.LoadInt64(&h.maxPlus1)
		if cur >= v+1 {
			break
		}
		if atomic.CompareAndSwapInt64(&h.maxPlus1, cur, v+1) {
			break
		}
	}
}

func (h *Hist) minVal() int64 {
	if m := atomic.LoadInt64(&h.minPlus1); m > 0 {
		return m - 1
	}
	return 0
}

func (h *Hist) maxVal() int64 {
	if m := atomic.LoadInt64(&h.maxPlus1); m > 0 {
		return m - 1
	}
	return 0
}

// Merge folds another histogram into this one (per-worker or per-shard
// histograms into a total). o may be recorded into concurrently; the
// merge picks up a consistent-enough snapshot for telemetry.
func (h *Hist) Merge(o *Hist) {
	if o == nil || atomic.LoadInt64(&o.total) == 0 {
		return
	}
	var added int64
	for i := range o.counts {
		if c := atomic.LoadInt64(&o.counts[i]); c != 0 {
			atomic.AddInt64(&h.counts[i], c)
			added += c
		}
	}
	atomic.AddInt64(&h.total, added)
	if m := atomic.LoadInt64(&o.minPlus1); m > 0 {
		h.observe(m - 1)
	}
	if m := atomic.LoadInt64(&o.maxPlus1); m > 0 {
		h.observe(m - 1)
	}
}

// Snapshot returns a point-in-time copy safe to read without further
// atomics. The copy is taken bucket by bucket, so it is only consistent
// when recording has quiesced; under live traffic it is best-effort.
func (h *Hist) Snapshot() Hist {
	var s Hist
	var total int64
	for i := range h.counts {
		c := atomic.LoadInt64(&h.counts[i])
		s.counts[i] = c
		total += c
	}
	// Re-derive total from the buckets so count and distribution agree
	// even if samples landed between the two loads.
	s.total = total
	s.minPlus1 = atomic.LoadInt64(&h.minPlus1)
	s.maxPlus1 = atomic.LoadInt64(&h.maxPlus1)
	return s
}

// Sub returns the histogram of samples recorded in h but not in base —
// the distribution attributable to the window between the two
// snapshots. The extremes cannot be differenced, so they are re-derived
// from the delta's occupied buckets (bucket upper bounds, consistent
// with the never-under-report policy). Negative bucket deltas (h not a
// superset of base, which indicates caller error) clamp to zero.
func (h *Hist) Sub(base *Hist) Hist {
	var d Hist
	if base == nil {
		return h.Snapshot()
	}
	first, last := -1, -1
	for i := range h.counts {
		c := atomic.LoadInt64(&h.counts[i]) - atomic.LoadInt64(&base.counts[i])
		if c <= 0 {
			continue
		}
		d.counts[i] = c
		d.total += c
		if first < 0 {
			first = i
		}
		last = i
	}
	if first >= 0 {
		d.minPlus1 = value(first) + 1
		d.maxPlus1 = value(last) + 1
	}
	return d
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return atomic.LoadInt64(&h.total) }

// Sum returns the approximate total of all recorded samples, derived
// from bucket upper bounds (over-estimates by at most one sub-bucket,
// ~1.6%) — what a Prometheus summary's _sum series needs.
func (h *Hist) Sum() int64 {
	var s int64
	for i := range h.counts {
		if c := atomic.LoadInt64(&h.counts[i]); c != 0 {
			s += c * value(i)
		}
	}
	return s
}

// Percentile returns the latency at quantile p in [0, 1]: the smallest
// bucket bound below which at least p of the samples fall. The exact
// tracked extremes answer p = 0 and p = 1.
func (h *Hist) Percentile(p float64) time.Duration {
	total := atomic.LoadInt64(&h.total)
	if total == 0 {
		return 0
	}
	if p <= 0 {
		return time.Duration(h.minVal())
	}
	if p >= 1 {
		return time.Duration(h.maxVal())
	}
	rank := int64(p*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	max := h.maxVal()
	var seen int64
	for i := range h.counts {
		seen += atomic.LoadInt64(&h.counts[i])
		if seen >= rank {
			v := value(i)
			if v > max {
				v = max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(max)
}

// Summary is the wire form of a histogram for benchmark reports and
// machine-readable stats: the percentile ladder the paper's
// tail-latency discussions use.
type Summary struct {
	Count               int64
	Min, P50, P95, P99  time.Duration
	P999, Max           time.Duration
	MilliP50, MilliP99  float64 // same points in ms, for plotting
	MilliP999, MilliMax float64
}

// Summary snapshots the percentile ladder; nil when empty.
func (h *Hist) Summary() *Summary {
	if h.Count() == 0 {
		return nil
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	s := &Summary{
		Count: h.Count(),
		Min:   time.Duration(h.minVal()),
		P50:   h.Percentile(0.50),
		P95:   h.Percentile(0.95),
		P99:   h.Percentile(0.99),
		P999:  h.Percentile(0.999),
		Max:   time.Duration(h.maxVal()),
	}
	s.MilliP50, s.MilliP99 = ms(s.P50), ms(s.P99)
	s.MilliP999, s.MilliMax = ms(s.P999), ms(s.Max)
	return s
}
