package hist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// refPercentile is the exact percentile the histogram approximates: the
// smallest sample with at least rank(p) samples at or below it.
func refPercentile(sorted []time.Duration, p float64) time.Duration {
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// within asserts got is within the histogram's quantization bound of
// want: one sub-bucket of relative error plus one nanosecond.
func within(t *testing.T, label string, got, want time.Duration) {
	t.Helper()
	lo := want - want/subCount - 1
	hi := want + want/subCount + 1
	if got < lo || got > hi {
		t.Fatalf("%s: got %v, reference %v (allowed [%v, %v])", label, got, want, lo, hi)
	}
}

func TestHistPercentilesVsSortedReference(t *testing.T) {
	dists := map[string]func(r *rand.Rand) time.Duration{
		// Uniform microseconds-to-milliseconds.
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(1_000 + r.Intn(10_000_000))
		},
		// Log-normal-ish long tail: most ops fast, rare multi-ms stalls.
		"tailed": func(r *rand.Rand) time.Duration {
			d := time.Duration(10_000 + r.Intn(50_000))
			if r.Intn(100) == 0 {
				d += time.Duration(r.Intn(40_000_000))
			}
			return d
		},
		// Bimodal: cache hits vs disk reads.
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Intn(2) == 0 {
				return time.Duration(500 + r.Intn(2_000))
			}
			return time.Duration(200_000 + r.Intn(400_000))
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			var h Hist
			samples := make([]time.Duration, 50_000)
			for i := range samples {
				samples[i] = draw(r)
				h.Record(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			if h.Count() != int64(len(samples)) {
				t.Fatalf("count %d", h.Count())
			}
			for _, p := range []float64{0.50, 0.95, 0.99, 0.999} {
				within(t, name, h.Percentile(p), refPercentile(samples, p))
			}
			if h.Percentile(0) != samples[0] || h.Percentile(1) != samples[len(samples)-1] {
				t.Fatalf("extremes not exact: min %v/%v max %v/%v",
					h.Percentile(0), samples[0], h.Percentile(1), samples[len(samples)-1])
			}
		})
	}
}

func TestHistMergeEquivalentToSingle(t *testing.T) {
	// Recording through per-worker histograms then merging must yield
	// exactly the same distribution as recording everything into one —
	// the property the runner's per-worker collection relies on.
	r := rand.New(rand.NewSource(11))
	var whole Hist
	workers := make([]Hist, 4)
	for i := 0; i < 40_000; i++ {
		d := time.Duration(r.Intn(5_000_000))
		whole.Record(d)
		workers[i%len(workers)].Record(d)
	}
	var merged Hist
	for i := range workers {
		merged.Merge(&workers[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d vs %d", merged.Count(), whole.Count())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%.3f: merged %v, single %v", p, merged.Percentile(p), whole.Percentile(p))
		}
	}
	if merged.counts != whole.counts {
		t.Fatal("bucket counts diverged")
	}
}

func TestHistEmptyAndEdgeValues(t *testing.T) {
	var h Hist
	if h.Percentile(0.5) != 0 || h.Count() != 0 || h.Summary() != nil {
		t.Fatal("empty histogram must report zeros and a nil summary")
	}
	h.Record(0)
	h.Record(-5) // clamped, never panics
	h.Record(time.Duration(1) << 50)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Percentile(1) != time.Duration(1)<<50 {
		t.Fatalf("max %v", h.Percentile(1))
	}
	if h.Percentile(0) != 0 {
		t.Fatalf("min %v", h.Percentile(0))
	}
	s := h.Summary()
	if s == nil || s.Count != 3 || s.Max != time.Duration(1)<<50 {
		t.Fatalf("summary %+v", s)
	}
}

func TestHistBucketScheme(t *testing.T) {
	// The first linear region is exact; beyond it every bucket's upper
	// bound maps back to its own bucket (the round-trip that makes
	// percentile reporting monotone).
	for v := int64(0); v < subCount; v++ {
		if value(index(v)) != v {
			t.Fatalf("linear region not exact at %d", v)
		}
	}
	for idx := subCount; idx < buckets; idx += 37 {
		if index(value(idx)) != idx {
			t.Fatalf("bucket %d: upper bound %d maps to %d", idx, value(idx), index(value(idx)))
		}
	}
	// Quantization error is bounded by one sub-bucket width.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		v := int64(r.Uint64() >> (1 + r.Intn(40)))
		got := value(index(v))
		if got < v || got-v > v/subCount+1 {
			t.Fatalf("value %d reported as %d", v, got)
		}
	}
}

func TestHistConcurrentRecord(t *testing.T) {
	// The always-on engine histograms are shared by every reader and the
	// commit path: concurrent Records must not lose samples (and must be
	// -race clean).
	var h Hist
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(r.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost samples: count %d, want %d", h.Count(), workers*per)
	}
	var sum int64
	for i := range h.counts {
		sum += h.counts[i]
	}
	if sum != workers*per {
		t.Fatalf("bucket sum %d, want %d", sum, workers*per)
	}
	if h.Percentile(1) >= time.Duration(1_000_000) && h.maxVal() >= 1_000_000 {
		t.Fatalf("max out of range: %v", h.Percentile(1))
	}
}

func TestHistSubDelta(t *testing.T) {
	// Sub must isolate the window between two snapshots: the delta's
	// count and percentiles describe only the samples recorded after the
	// baseline was taken.
	var h Hist
	for i := 0; i < 1_000; i++ {
		h.Record(time.Duration(1_000)) // fast ops before the window
	}
	base := h.Snapshot()
	for i := 0; i < 500; i++ {
		h.Record(time.Duration(50_000_000)) // slow ops inside the window
	}
	d := h.Sub(&base)
	if d.Count() != 500 {
		t.Fatalf("delta count %d, want 500", d.Count())
	}
	within(t, "delta p50", d.Percentile(0.5), 50*time.Millisecond)
	// Extremes are re-derived from the delta's buckets: the fast
	// pre-window samples must not leak into the delta's min.
	if d.Percentile(0) < 40*time.Millisecond {
		t.Fatalf("delta min %v leaked pre-window samples", d.Percentile(0))
	}
	// Subtracting from a nil baseline is a snapshot.
	full := h.Sub(nil)
	if full.Count() != 1_500 {
		t.Fatalf("nil-base count %d", full.Count())
	}
	// An empty window yields an empty, summary-nil histogram.
	now := h.Snapshot()
	empty := h.Sub(&now)
	if empty.Count() != 0 || empty.Summary() != nil {
		t.Fatalf("empty window: count %d", empty.Count())
	}
}

func TestHistSnapshotIsInert(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	h.Record(time.Hour)
	if s.Count() != 100 {
		t.Fatalf("snapshot count %d", s.Count())
	}
	if s.Percentile(1) >= time.Hour {
		t.Fatal("snapshot saw a sample recorded after it was taken")
	}
}
