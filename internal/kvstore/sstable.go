package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"cole/internal/types"
)

// sstable file layout:
//
//	data    : repeated records — klen u32 | flags u8 | vlen u32 | key | value
//	index   : every indexStride-th record — klen u32 | key | offset u64
//	bloom   : serialized bloom filter over keys
//	footer  : dataLen u64 | indexLen u64 | bloomLen u64 | count u64 | magic u64
const (
	indexStride   = 16
	tableMagic    = 0x434f4c454b560001 // "COLEKV" v1
	flagTombstone = 1
)

type record struct {
	key   []byte
	value []byte
	tomb  bool
}

type sparseEntry struct {
	key    []byte
	offset int64
}

type sstable struct {
	id     uint64
	path   string
	f      *os.File
	size   int64
	count  int64
	dataLn int64
	sparse []sparseEntry
	filter *tableBloom
}

func tablePath(dir string, id uint64) string {
	return filepath.Join(dir, fmt.Sprintf("sst-%016x.kv", id))
}

// tableBloom is a minimal bloom filter over raw byte keys (package bloom
// hashes fixed-width addresses; tables need arbitrary keys).
type tableBloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
}

func newTableBloom(n int, fp float64) *tableBloom {
	if n < 1 {
		n = 1
	}
	m := uint64(float64(n) * 10) // ~10 bits/key ≈ 1% fp
	_ = fp
	if m < 64 {
		m = 64
	}
	return &tableBloom{bits: make([]uint64, (m+63)/64), nbits: m, hashes: 7}
}

func (b *tableBloom) hash(key []byte) (uint64, uint64) {
	h := types.HashData(key)
	return binary.BigEndian.Uint64(h[0:8]), binary.BigEndian.Uint64(h[8:16])
}

func (b *tableBloom) add(key []byte) {
	h1, h2 := b.hash(key)
	for i := 0; i < b.hashes; i++ {
		p := (h1 + uint64(i)*h2) % b.nbits
		b.bits[p/64] |= 1 << (p % 64)
	}
}

func (b *tableBloom) mayContain(key []byte) bool {
	h1, h2 := b.hash(key)
	for i := 0; i < b.hashes; i++ {
		p := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

func (b *tableBloom) marshal() []byte {
	out := make([]byte, 16+8*len(b.bits))
	binary.BigEndian.PutUint64(out[0:8], b.nbits)
	binary.BigEndian.PutUint64(out[8:16], uint64(b.hashes))
	for i, w := range b.bits {
		binary.BigEndian.PutUint64(out[16+8*i:], w)
	}
	return out
}

func unmarshalTableBloom(raw []byte) (*tableBloom, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("kvstore: bloom truncated")
	}
	nbits := binary.BigEndian.Uint64(raw[0:8])
	hashes := int(binary.BigEndian.Uint64(raw[8:16]))
	words := int((nbits + 63) / 64)
	if len(raw) != 16+8*words || hashes < 1 || hashes > 64 {
		return nil, fmt.Errorf("kvstore: bloom corrupt")
	}
	b := &tableBloom{bits: make([]uint64, words), nbits: nbits, hashes: hashes}
	for i := range b.bits {
		b.bits[i] = binary.BigEndian.Uint64(raw[16+8*i:])
	}
	return b, nil
}

// writeTable persists sorted records as a new sstable and opens it.
func writeTable(dir string, id uint64, recs []record, fp float64) (*sstable, error) {
	path := tablePath(dir, id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	filter := newTableBloom(len(recs), fp)

	var (
		dataLen int64
		idxBuf  bytes.Buffer
		hdr     [9]byte
	)
	for i, r := range recs {
		if i%indexStride == 0 {
			var klen [4]byte
			binary.BigEndian.PutUint32(klen[:], uint32(len(r.key)))
			idxBuf.Write(klen[:])
			idxBuf.Write(r.key)
			var off [8]byte
			binary.BigEndian.PutUint64(off[:], uint64(dataLen))
			idxBuf.Write(off[:])
		}
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(r.key)))
		if r.tomb {
			hdr[4] = flagTombstone
		} else {
			hdr[4] = 0
		}
		binary.BigEndian.PutUint32(hdr[5:9], uint32(len(r.value)))
		if _, err := w.Write(hdr[:]); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := w.Write(r.key); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := w.Write(r.value); err != nil {
			_ = f.Close()
			return nil, err
		}
		dataLen += int64(9 + len(r.key) + len(r.value))
		filter.add(r.key)
	}
	bloomRaw := filter.marshal()
	if _, err := w.Write(idxBuf.Bytes()); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := w.Write(bloomRaw); err != nil {
		_ = f.Close()
		return nil, err
	}
	var footer [40]byte
	binary.BigEndian.PutUint64(footer[0:8], uint64(dataLen))
	binary.BigEndian.PutUint64(footer[8:16], uint64(idxBuf.Len()))
	binary.BigEndian.PutUint64(footer[16:24], uint64(len(bloomRaw)))
	binary.BigEndian.PutUint64(footer[24:32], uint64(len(recs)))
	binary.BigEndian.PutUint64(footer[32:40], tableMagic)
	if _, err := w.Write(footer[:]); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	return openTable(dir, id)
}

// openTable maps an existing sstable: footer, sparse index and bloom are
// loaded into memory.
func openTable(dir string, id uint64) (*sstable, error) {
	path := tablePath(dir, id)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if st.Size() < 40 {
		_ = f.Close()
		return nil, fmt.Errorf("kvstore: table %s truncated", path)
	}
	var footer [40]byte
	if _, err := f.ReadAt(footer[:], st.Size()-40); err != nil {
		_ = f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint64(footer[32:40]) != tableMagic {
		_ = f.Close()
		return nil, fmt.Errorf("kvstore: table %s bad magic", path)
	}
	dataLen := int64(binary.BigEndian.Uint64(footer[0:8]))
	idxLen := int64(binary.BigEndian.Uint64(footer[8:16]))
	bloomLen := int64(binary.BigEndian.Uint64(footer[16:24]))
	count := int64(binary.BigEndian.Uint64(footer[24:32]))
	if dataLen+idxLen+bloomLen+40 != st.Size() {
		_ = f.Close()
		return nil, fmt.Errorf("kvstore: table %s sections do not sum to file size", path)
	}
	idxRaw := make([]byte, idxLen)
	if _, err := f.ReadAt(idxRaw, dataLen); err != nil {
		_ = f.Close()
		return nil, err
	}
	bloomRaw := make([]byte, bloomLen)
	if _, err := f.ReadAt(bloomRaw, dataLen+idxLen); err != nil {
		_ = f.Close()
		return nil, err
	}
	filter, err := unmarshalTableBloom(bloomRaw)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	t := &sstable{id: id, path: path, f: f, size: st.Size(), count: count, dataLn: dataLen, filter: filter}
	for off := 0; off < len(idxRaw); {
		if off+4 > len(idxRaw) {
			_ = f.Close()
			return nil, fmt.Errorf("kvstore: table %s index corrupt", path)
		}
		klen := int(binary.BigEndian.Uint32(idxRaw[off:]))
		off += 4
		if off+klen+8 > len(idxRaw) {
			_ = f.Close()
			return nil, fmt.Errorf("kvstore: table %s index corrupt", path)
		}
		key := append([]byte(nil), idxRaw[off:off+klen]...)
		off += klen
		dataOff := int64(binary.BigEndian.Uint64(idxRaw[off:]))
		off += 8
		t.sparse = append(t.sparse, sparseEntry{key: key, offset: dataOff})
	}
	return t, nil
}

// get looks up a key: bloom check, sparse-index binary search, then a
// bounded sequential scan of at most indexStride records.
func (t *sstable) get(key []byte, stats *Stats) (value []byte, deleted, ok bool, err error) {
	if !t.filter.mayContain(key) {
		return nil, false, false, nil
	}
	// Rightmost sparse entry with key ≤ target.
	lo, hi, idx := 0, len(t.sparse)-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.sparse[mid].key, key) <= 0 {
			idx = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if idx < 0 {
		return nil, false, false, nil
	}
	stats.TableReads++
	it := &tableIterator{t: t, off: t.sparse[idx].offset}
	for i := 0; i < indexStride; i++ {
		r, more := it.next()
		if !more {
			break
		}
		c := bytes.Compare(r.key, key)
		if c == 0 {
			return r.value, r.tomb, true, it.err
		}
		if c > 0 {
			break
		}
	}
	return nil, false, false, it.err
}

// tableIterator scans records sequentially from a data offset.
type tableIterator struct {
	t   *sstable
	off int64
	err error
	buf []byte
}

func (t *sstable) iterator() *tableIterator { return &tableIterator{t: t} }

func (it *tableIterator) next() (record, bool) {
	if it.err != nil || it.off >= it.t.dataLn {
		return record{}, false
	}
	var hdr [9]byte
	if _, err := it.t.f.ReadAt(hdr[:], it.off); err != nil {
		it.err = err
		return record{}, false
	}
	klen := int(binary.BigEndian.Uint32(hdr[0:4]))
	tomb := hdr[4]&flagTombstone != 0
	vlen := int(binary.BigEndian.Uint32(hdr[5:9]))
	if klen < 0 || vlen < 0 || it.off+int64(9+klen+vlen) > it.t.dataLn {
		it.err = fmt.Errorf("kvstore: record at %d escapes data section of %s", it.off, it.t.path)
		return record{}, false
	}
	need := klen + vlen
	if cap(it.buf) < need {
		it.buf = make([]byte, need)
	}
	buf := it.buf[:need]
	if _, err := it.t.f.ReadAt(buf, it.off+9); err != nil {
		it.err = err
		return record{}, false
	}
	it.off += int64(9 + klen + vlen)
	rec := record{
		key:  append([]byte(nil), buf[:klen]...),
		tomb: tomb,
	}
	if !tomb {
		rec.value = append([]byte(nil), buf[klen:]...)
	}
	return rec, true
}

func (t *sstable) close() { _ = t.f.Close() }

func (t *sstable) remove() {
	_ = t.f.Close()
	_ = os.Remove(t.path)
}
