// Package kvstore is a from-scratch log-structured merge key-value store.
//
// It stands in for RocksDB, which the paper uses as the storage backend of
// every baseline (MPT, LIPP, CMI) — see DESIGN.md §4. The shape matches
// what those baselines exercise: an in-memory write buffer, immutable
// sorted-string tables with sparse indexes and Bloom filters, and
// size-tiered compaction with exponentially growing levels. Durability of
// unflushed writes follows the blockchain model (transaction replay), so
// there is no WAL; Flush forces the write buffer to disk.
package kvstore

import (
	"bytes"
	"fmt"
	"os"

	"sort"
	"sync"
)

// Options configures a DB.
type Options struct {
	// Dir is the storage directory.
	Dir string
	// MemBytes is the write-buffer budget before a flush (default 4 MiB;
	// the paper gives RocksDB a 64 MiB memory budget at full scale).
	MemBytes int
	// SizeRatio is the tiering factor T (default 4).
	SizeRatio int
	// BloomFP is the per-table Bloom false-positive target (default 0.01).
	BloomFP float64
}

func (o Options) withDefaults() Options {
	if o.MemBytes == 0 {
		o.MemBytes = 4 << 20
	}
	if o.SizeRatio == 0 {
		o.SizeRatio = 4
	}
	if o.BloomFP == 0 {
		o.BloomFP = 0.01
	}
	return o
}

// Stats aggregates DB counters.
type Stats struct {
	Puts         int64
	Gets         int64
	Deletes      int64
	Flushes      int64
	Compactions  int64
	BytesFlushed int64
	BytesMerged  int64 // write amplification source
	TableReads   int64 // sstable point lookups that touched disk
}

// DB is an LSM key-value store.
type DB struct {
	opts Options

	mu       sync.Mutex
	mem      map[string][]byte // nil value slice = tombstone
	memBytes int
	levels   [][]*sstable // levels[i] ordered oldest → newest
	purge    []*sstable   // superseded tables awaiting unlink
	nextID   uint64
	stats    Stats
	closed   bool
}

// tombstone marks a deleted key inside the memtable; on disk it is a
// record with the tombstone flag.
var tombstone []byte // nil

// Open creates or reopens a DB.
func Open(opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("kvstore: Options.Dir is required")
	}
	if opts.SizeRatio < 2 {
		return nil, fmt.Errorf("kvstore: SizeRatio %d < 2", opts.SizeRatio)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{opts: opts, mem: make(map[string][]byte)}
	if err := db.loadCurrent(); err != nil {
		return nil, err
	}
	return db, nil
}

// Put stores a key-value pair (value is copied).
func (db *DB) Put(key, value []byte) error {
	if value == nil {
		value = []byte{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("kvstore: put on closed DB")
	}
	db.stats.Puts++
	// make (not append) so an empty value stays non-nil: nil is the
	// in-memory tombstone sentinel.
	cp := make([]byte, len(value))
	copy(cp, value)
	db.putLocked(key, cp)
	return db.maybeFlushLocked()
}

// Delete removes a key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("kvstore: delete on closed DB")
	}
	db.stats.Deletes++
	db.putLocked(key, tombstone)
	return db.maybeFlushLocked()
}

func (db *DB) putLocked(key, value []byte) {
	k := string(key)
	if old, ok := db.mem[k]; ok {
		db.memBytes -= len(k) + len(old)
	}
	db.mem[k] = value
	db.memBytes += len(k) + len(value)
}

func (db *DB) maybeFlushLocked() error {
	if db.memBytes < db.opts.MemBytes {
		return nil
	}
	return db.flushLocked()
}

// Get returns the newest value for key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats.Gets++
	if v, ok := db.mem[string(key)]; ok {
		if v == nil {
			return nil, false, nil
		}
		return append([]byte(nil), v...), true, nil
	}
	// Newest data first: lower levels, newest table first.
	for _, lvl := range db.levels {
		for i := len(lvl) - 1; i >= 0; i-- {
			v, deleted, ok, err := lvl[i].get(key, &db.stats)
			if err != nil {
				return nil, false, err
			}
			if ok {
				if deleted {
					return nil, false, nil
				}
				return v, true, nil
			}
		}
	}
	return nil, false, nil
}

// Has reports key existence without copying the value.
func (db *DB) Has(key []byte) (bool, error) {
	_, ok, err := db.Get(key)
	return ok, err
}

// Flush forces the write buffer to disk.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.mem) == 0 {
		return nil
	}
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if len(db.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]record, len(keys))
	for i, k := range keys {
		v := db.mem[k]
		recs[i] = record{key: []byte(k), value: v, tomb: v == nil}
	}
	id := db.nextID
	db.nextID++
	t, err := writeTable(db.opts.Dir, id, recs, db.opts.BloomFP)
	if err != nil {
		return err
	}
	db.stats.Flushes++
	db.stats.BytesFlushed += t.size
	if len(db.levels) == 0 {
		db.levels = append(db.levels, nil)
	}
	db.levels[0] = append(db.levels[0], t)
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	if err := db.compactLocked(); err != nil {
		return err
	}
	return db.writeCurrentLocked()
}

// compactLocked merges any level that reached the size ratio into the
// next one (size-tiered compaction). The newest version of each key wins;
// tombstones are dropped when the output lands on the last level.
func (db *DB) compactLocked() error {
	for i := 0; i < len(db.levels); i++ {
		if len(db.levels[i]) < db.opts.SizeRatio {
			break
		}
		isLast := i == len(db.levels)-1
		merged, err := db.mergeTables(db.levels[i], isLast)
		if err != nil {
			return err
		}
		old := db.levels[i]
		db.levels[i] = nil
		if len(db.levels) == i+1 {
			db.levels = append(db.levels, nil)
		}
		db.levels[i+1] = append(db.levels[i+1], merged)
		db.stats.Compactions++
		// Old tables are unlinked after the new CURRENT is durable; keep
		// them in a purge list.
		db.purge = append(db.purge, old...)
	}
	return nil
}

// mergeTables k-way merges tables (oldest → newest order) into one new
// table, newest version of each key winning.
func (db *DB) mergeTables(tables []*sstable, dropTombs bool) (*sstable, error) {
	its := make([]*tableIterator, len(tables))
	for i, t := range tables {
		its[i] = t.iterator()
	}
	var out []record
	type cur struct {
		rec record
		src int // index in tables; higher = newer
	}
	cursors := make([]*cur, 0, len(its))
	for i, it := range its {
		if r, ok := it.next(); ok {
			cursors = append(cursors, &cur{rec: r, src: i})
		}
		if err := its[i].err; err != nil {
			return nil, err
		}
	}
	for len(cursors) > 0 {
		// Find the minimal key; among equals pick the newest source.
		best := 0
		for i := 1; i < len(cursors); i++ {
			c := bytes.Compare(cursors[i].rec.key, cursors[best].rec.key)
			if c < 0 || (c == 0 && cursors[i].src > cursors[best].src) {
				best = i
			}
		}
		chosen := cursors[best]
		if !(chosen.rec.tomb && dropTombs) {
			out = append(out, chosen.rec)
		}
		// Advance every cursor sitting on the chosen key.
		key := chosen.rec.key
		next := cursors[:0]
		for _, c := range cursors {
			for bytes.Equal(c.rec.key, key) {
				r, ok := its[c.src].next()
				if !ok {
					if err := its[c.src].err; err != nil {
						return nil, err
					}
					c = nil
					break
				}
				c.rec = r
			}
			if c != nil {
				next = append(next, c)
			}
		}
		cursors = next
	}
	id := db.nextID
	db.nextID++
	t, err := writeTable(db.opts.Dir, id, out, db.opts.BloomFP)
	if err != nil {
		return nil, err
	}
	db.stats.BytesMerged += t.size
	return t, nil
}

// purge holds tables awaiting unlink (declared on DB below via field).

// SizeOnDisk sums the bytes of all live tables.
func (db *DB) SizeOnDisk() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var s int64
	for _, lvl := range db.levels {
		for _, t := range lvl {
			s += t.size
		}
	}
	return s
}

// MemBytes returns the current write-buffer size.
func (db *DB) MemBytes() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.memBytes
}

// Stats returns a snapshot of the counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.stats
}

// Close flushes the write buffer and releases file handles.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	var err error
	if len(db.mem) > 0 {
		err = db.flushLocked()
	}
	db.closed = true
	for _, lvl := range db.levels {
		for _, t := range lvl {
			t.close()
		}
	}
	return err
}
