package kvstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// currentState is the durable table layout, written atomically after every
// flush/compaction. Tables not referenced by it are garbage from
// interrupted operations and are removed on open.
type currentState struct {
	NextID uint64     `json:"next_id"`
	Levels [][]uint64 `json:"levels"`
}

func (db *DB) currentPath() string { return filepath.Join(db.opts.Dir, "CURRENT") }

func (db *DB) writeCurrentLocked() error {
	st := currentState{NextID: db.nextID}
	for _, lvl := range db.levels {
		ids := []uint64{}
		for _, t := range lvl {
			ids = append(ids, t.id)
		}
		st.Levels = append(st.Levels, ids)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := db.currentPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, db.currentPath()); err != nil {
		return err
	}
	// Superseded tables are safe to unlink now.
	for _, t := range db.purge {
		t.remove()
	}
	db.purge = nil
	return nil
}

func (db *DB) loadCurrent() error {
	raw, err := os.ReadFile(db.currentPath())
	if os.IsNotExist(err) {
		return db.cleanStrays(map[uint64]bool{})
	}
	if err != nil {
		return err
	}
	var st currentState
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	db.nextID = st.NextID
	live := map[uint64]bool{}
	for _, ids := range st.Levels {
		var lvl []*sstable
		for _, id := range ids {
			t, err := openTable(db.opts.Dir, id)
			if err != nil {
				return err
			}
			lvl = append(lvl, t)
			live[id] = true
		}
		db.levels = append(db.levels, lvl)
	}
	return db.cleanStrays(live)
}

// cleanStrays removes sstable files not referenced by CURRENT.
func (db *DB) cleanStrays(live map[uint64]bool) error {
	entries, err := os.ReadDir(db.opts.Dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		if !strings.HasPrefix(name, "sst-") {
			continue
		}
		var id uint64
		ok := false
		if strings.HasSuffix(name, ".kv") {
			if _, err := fmtSscanHex(name[4:len(name)-3], &id); err == nil {
				ok = true
			}
		}
		if !ok || !live[id] {
			if err := os.Remove(filepath.Join(db.opts.Dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fmtSscanHex parses a 16-digit hex id.
func fmtSscanHex(s string, out *uint64) (int, error) {
	var v uint64
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, os.ErrInvalid
		}
	}
	*out = v
	return 1, nil
}
