package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func openDB(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestPutGetBasic(t *testing.T) {
	db := openDB(t, Options{})
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("nope")); ok {
		t.Fatal("absent key must miss")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	db := openDB(t, Options{})
	key := []byte("k")
	_ = db.Put(key, []byte("a"))
	_ = db.Put(key, []byte("b"))
	v, ok, _ := db.Get(key)
	if !ok || string(v) != "b" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := db.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(key); ok {
		t.Fatal("deleted key must miss")
	}
	// Deletion must survive a flush (tombstone path).
	_ = db.Put([]byte("other"), []byte("x"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get(key); ok {
		t.Fatal("tombstone lost at flush")
	}
}

func TestFlushAndReadBack(t *testing.T) {
	db := openDB(t, Options{MemBytes: 1 << 10}) // tiny buffer → many tables
	ref := map[string]string{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", r.Intn(800))
		v := fmt.Sprintf("val-%d", r.Int63())
		_ = db.Put([]byte(k), []byte(v))
		ref[k] = v
	}
	for k, want := range ref {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("key %s: got %q ok=%v err=%v", k, v, ok, err)
		}
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("tiny buffer must have flushed")
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("expected compactions with many flushes")
	}
}

func TestValuesAreCopied(t *testing.T) {
	db := openDB(t, Options{})
	v := []byte("mutable")
	_ = db.Put([]byte("k"), v)
	v[0] = 'X'
	got, _, _ := db.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatal("stored value must not alias caller memory")
	}
	got[0] = 'Y'
	again, _, _ := db.Get([]byte("k"))
	if string(again) != "mutable" {
		t.Fatal("returned value must not alias internal memory")
	}
}

func TestEmptyValue(t *testing.T) {
	db := openDB(t, Options{})
	_ = db.Put([]byte("k"), []byte{})
	v, ok, _ := db.Get([]byte("k"))
	if !ok || len(v) != 0 {
		t.Fatalf("empty value lost: %q ok=%v", v, ok)
	}
	_ = db.Put([]byte("k2"), nil)
	if _, ok, _ := db.Get([]byte("k2")); !ok {
		t.Fatal("nil value must store as empty, not tombstone")
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, MemBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%04d", i)
		v := fmt.Sprintf("v%d", i*i)
		_ = db.Put([]byte(k), []byte(v))
		ref[k] = v
	}
	_ = db.Delete([]byte("k0042"))
	delete(ref, "k0042")
	if err := db.Close(); err != nil { // Close flushes
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, MemBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for k, want := range ref {
		v, ok, err := db2.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("after reopen %s: %q ok=%v err=%v", k, v, ok, err)
		}
	}
	if _, ok, _ := db2.Get([]byte("k0042")); ok {
		t.Fatal("deletion lost across reopen")
	}
}

func TestStrayTablesCleaned(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Options{Dir: dir})
	_ = db.Put([]byte("a"), []byte("b"))
	db.Close()
	// Drop a stray table file.
	stray := tablePath(dir, 0xdeadbeef)
	if err := writeJunk(stray); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, ok, _ := db2.Get([]byte("a")); !ok || string(v) != "b" {
		t.Fatal("data lost after stray cleanup")
	}
}

func writeJunk(path string) error {
	return writeFileHelper(path, []byte("junk"))
}

func TestSizeOnDiskGrows(t *testing.T) {
	db := openDB(t, Options{MemBytes: 1 << 10})
	if db.SizeOnDisk() != 0 {
		t.Fatal("fresh DB must be empty")
	}
	for i := 0; i < 500; i++ {
		_ = db.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte{1}, 100))
	}
	_ = db.Flush()
	if db.SizeOnDisk() < 500*100 {
		t.Fatalf("disk size %d implausibly small", db.SizeOnDisk())
	}
}

func TestTieredLevelsShape(t *testing.T) {
	db := openDB(t, Options{MemBytes: 512, SizeRatio: 2})
	for i := 0; i < 4000; i++ {
		_ = db.Put([]byte(fmt.Sprintf("k%06d", i)), []byte("0123456789abcdef"))
	}
	_ = db.Flush()
	db.mu.Lock()
	nLevels := len(db.levels)
	for i, lvl := range db.levels {
		if len(lvl) > db.opts.SizeRatio {
			t.Fatalf("level %d has %d tables > T", i, len(lvl))
		}
	}
	db.mu.Unlock()
	if nLevels < 2 {
		t.Fatalf("expected tiered levels, got %d", nLevels)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir must fail")
	}
	if _, err := Open(Options{Dir: t.TempDir(), SizeRatio: 1}); err == nil {
		t.Fatal("size ratio 1 must fail")
	}
}

func TestClosedDBRejectsWrites(t *testing.T) {
	db, _ := Open(Options{Dir: t.TempDir()})
	db.Close()
	if err := db.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("put on closed DB must fail")
	}
	if err := db.Delete([]byte("k")); err == nil {
		t.Fatal("delete on closed DB must fail")
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestRandomOpsAgainstMap(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	db := openDB(t, Options{MemBytes: 2 << 10, SizeRatio: 2})
	ref := map[string][]byte{}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < iters; i++ {
		k := []byte(fmt.Sprintf("key-%04d", r.Intn(500)))
		switch r.Intn(10) {
		case 0:
			_ = db.Delete(k)
			delete(ref, string(k))
		default:
			v := []byte(fmt.Sprintf("val-%d", r.Int63()))
			_ = db.Put(k, v)
			ref[string(k)] = v
		}
		if i%2000 == 0 {
			// Periodic full validation.
			for ks, want := range ref {
				v, ok, err := db.Get([]byte(ks))
				if err != nil || !ok || !bytes.Equal(v, want) {
					t.Fatalf("iter %d key %s: %q ok=%v err=%v want %q", i, ks, v, ok, err, want)
				}
			}
		}
	}
}

func TestQuickPropertySmall(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte) bool {
		db, err := Open(Options{Dir: t.TempDir(), MemBytes: 256, SizeRatio: 2})
		if err != nil {
			return false
		}
		defer db.Close()
		ref := map[string][]byte{}
		for i, k := range keys {
			if len(k) == 0 {
				continue
			}
			v := []byte("x")
			if i < len(vals) {
				v = vals[i]
			}
			if v == nil {
				v = []byte{}
			}
			if err := db.Put(k, v); err != nil {
				return false
			}
			ref[string(k)] = v
		}
		for ks, want := range ref {
			v, ok, err := db.Get([]byte(ks))
			if err != nil || !ok || !bytes.Equal(v, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	db := openDB(t, Options{MemBytes: 1 << 10})
	for i := 0; i < 500; i++ {
		_ = db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	_, _, _ = db.Get([]byte("k1"))
	st := db.Stats()
	if st.Puts != 500 || st.Gets != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func writeFileHelper(path string, data []byte) error {
	return osWriteFile(path, data)
}
