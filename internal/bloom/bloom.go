// Package bloom implements the per-run Bloom filters of COLE (§4).
//
// Filters are built over state *addresses*, not compound keys, so a single
// membership probe answers "does this run contain any version of addr?"
// (the paper's first design consideration). False positives are tolerated:
// a hit falls through to the normal run search. The filter's digest is
// folded into the run's root hash so that non-membership can be proven
// during provenance queries (§4, Bloom-filter discussion).
package bloom

import (
	"encoding/binary"
	"fmt"
	"math"

	"cole/internal/types"
)

// Filter is a classic Bloom filter using Kirsch–Mitzenmacher double hashing
// over a SHA-256 base digest.
type Filter struct {
	bits    []uint64
	nbits   uint64
	hashes  int
	entries uint64 // number of Add calls, for stats
}

// New creates a filter sized for n expected entries at the given target
// false-positive rate. n and fpRate are clamped to sane minimums.
func New(n int, fpRate float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	// Optimal sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{bits: make([]uint64, (m+63)/64), nbits: m, hashes: k}
}

func baseHashes(addr types.Address) (uint64, uint64) {
	h := types.HashData(addr[:])
	return binary.BigEndian.Uint64(h[0:8]), binary.BigEndian.Uint64(h[8:16])
}

// Add inserts an address.
func (f *Filter) Add(addr types.Address) {
	h1, h2 := baseHashes(addr)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.entries++
}

// AddRepeat records another insertion of the address most recently passed
// to Add, without re-hashing it: the bit pattern is idempotent, so only
// the entry counter advances and the marshaled filter stays byte-for-byte
// what repeated Add calls would produce. Run builders streaming sorted
// compound keys use it for the consecutive versions of one address —
// which is most of a merge's entries under COLE's multi-version
// workloads.
func (f *Filter) AddRepeat() { f.entries++ }

// Union folds another filter into f: the bit arrays OR together and the
// entry counters add. Both filters must share the exact geometry (they
// were New'd with the same parameters). The partitioned run builder
// gives every key-range span its own filter sized for the full expected
// count and unions them afterwards; because Add's bit pattern is
// position-independent and idempotent, the union marshals byte-for-byte
// what one sequential pass over the same entry stream would produce.
func (f *Filter) Union(o *Filter) error {
	if f.nbits != o.nbits || f.hashes != o.hashes {
		return fmt.Errorf("bloom: union of mismatched filters (nbits %d vs %d, hashes %d vs %d)",
			f.nbits, o.nbits, f.hashes, o.hashes)
	}
	for i, w := range o.bits {
		f.bits[i] |= w
	}
	f.entries += o.entries
	return nil
}

// MayContain reports whether addr may be present (false means definitely
// absent).
func (f *Filter) MayContain(addr types.Address) bool {
	h1, h2 := baseHashes(addr)
	for i := 0; i < f.hashes; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the filter. The engine clones the
// live L0 filter into each published read view so lock-free readers never
// probe a bit array that Add is concurrently mutating.
func (f *Filter) Clone() *Filter {
	return &Filter{
		bits:    append([]uint64(nil), f.bits...),
		nbits:   f.nbits,
		hashes:  f.hashes,
		entries: f.entries,
	}
}

// Entries returns the number of insertions.
func (f *Filter) Entries() uint64 { return f.entries }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.nbits }

// Digest hashes the filter contents; it is combined with the run's Merkle
// root when computing the state root digest so verifiers can authenticate
// non-membership answers.
func (f *Filter) Digest() types.Hash {
	return types.HashData(f.Marshal())
}

// Marshal serializes the filter (stored in the run's metadata file).
func (f *Filter) Marshal() []byte {
	buf := make([]byte, 8+8+8+8*len(f.bits))
	binary.BigEndian.PutUint64(buf[0:8], f.nbits)
	binary.BigEndian.PutUint64(buf[8:16], uint64(f.hashes))
	binary.BigEndian.PutUint64(buf[16:24], f.entries)
	for i, w := range f.bits {
		binary.BigEndian.PutUint64(buf[24+8*i:], w)
	}
	return buf
}

// Unmarshal parses a filter serialized by Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("bloom: truncated header: %d bytes", len(b))
	}
	nbits := binary.BigEndian.Uint64(b[0:8])
	hashes := int(binary.BigEndian.Uint64(b[8:16]))
	entries := binary.BigEndian.Uint64(b[16:24])
	words := int((nbits + 63) / 64)
	if hashes < 1 || hashes > 64 || nbits == 0 {
		return nil, fmt.Errorf("bloom: corrupt header: nbits=%d hashes=%d", nbits, hashes)
	}
	if len(b) != 24+8*words {
		return nil, fmt.Errorf("bloom: body length %d, want %d", len(b)-24, 8*words)
	}
	f := &Filter{bits: make([]uint64, words), nbits: nbits, hashes: hashes, entries: entries}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(b[24+8*i:])
	}
	return f, nil
}

// EstimatedFPRate returns the expected false-positive rate given the number
// of entries inserted so far.
func (f *Filter) EstimatedFPRate() float64 {
	if f.entries == 0 {
		return 0
	}
	k := float64(f.hashes)
	return math.Pow(1-math.Exp(-k*float64(f.entries)/float64(f.nbits)), k)
}
