package bloom

import (
	"testing"
	"testing/quick"

	"cole/internal/types"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(types.AddressFromUint64(i))
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.MayContain(types.AddressFromUint64(i)) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	const n = 5000
	f := New(n, 0.01)
	for i := uint64(0); i < n; i++ {
		f.Add(types.AddressFromUint64(i))
	}
	fp := 0
	const probes = 20000
	for i := uint64(n); i < n+probes; i++ {
		if f.MayContain(types.AddressFromUint64(i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false positive rate %.4f far above 1%% target", rate)
	}
}

func TestEmptyFilterRejectsEverything(t *testing.T) {
	f := New(100, 0.01)
	for i := uint64(0); i < 100; i++ {
		if f.MayContain(types.AddressFromUint64(i)) {
			t.Fatal("empty filter must contain nothing")
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(500, 0.02)
	for i := uint64(0); i < 500; i++ {
		f.Add(types.AddressFromUint64(i * 3))
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Entries() != f.Entries() || g.Bits() != f.Bits() {
		t.Fatal("metadata lost in round trip")
	}
	for i := uint64(0); i < 500; i++ {
		if !g.MayContain(types.AddressFromUint64(i * 3)) {
			t.Fatalf("false negative after round trip at %d", i)
		}
	}
	if g.Digest() != f.Digest() {
		t.Fatal("digest changed across round trip")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil input must error")
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short input must error")
	}
	f := New(10, 0.01)
	b := f.Marshal()
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Fatal("truncated body must error")
	}
	b[0] = 0xFF // absurd nbits with mismatched body
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("corrupt header must error")
	}
}

func TestDigestChangesWithContent(t *testing.T) {
	f1 := New(100, 0.01)
	f2 := New(100, 0.01)
	f1.Add(types.AddressFromUint64(1))
	f2.Add(types.AddressFromUint64(2))
	if f1.Digest() == f2.Digest() {
		t.Fatal("different contents must yield different digests")
	}
}

func TestTinyAndDegenerateSizing(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		f := New(n, 0.001)
		a := types.AddressFromUint64(42)
		f.Add(a)
		if !f.MayContain(a) {
			t.Fatalf("false negative with n=%d", n)
		}
	}
	// Degenerate fp rates fall back to defaults rather than panicking.
	for _, p := range []float64{0, 1, -3, 2} {
		f := New(10, p)
		f.Add(types.AddressFromUint64(1))
		if !f.MayContain(types.AddressFromUint64(1)) {
			t.Fatalf("false negative with fp=%g", p)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := New(200, 0.01)
	inserted := make(map[types.Address]bool)
	check := func(raw [types.AddressSize]byte) bool {
		a := types.Address(raw)
		f.Add(a)
		inserted[a] = true
		for x := range inserted {
			if !f.MayContain(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatedFPRate(t *testing.T) {
	f := New(1000, 0.01)
	if f.EstimatedFPRate() != 0 {
		t.Fatal("empty filter estimate must be 0")
	}
	for i := uint64(0); i < 1000; i++ {
		f.Add(types.AddressFromUint64(i))
	}
	if est := f.EstimatedFPRate(); est < 0.001 || est > 0.05 {
		t.Fatalf("estimate %.4f implausible for design point 1%%", est)
	}
}
