package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"cole/internal/types"
)

// drivePartitionBlocks commits n deterministic blocks of 32 updates over
// a 200-address population and flushes. The heavier per-block volume
// (vs driveBlocks) makes level merges span multiple value pages, so
// partitioned builds actually cut the key space instead of collapsing to
// a single span.
func drivePartitionBlocks(t *testing.T, e *Engine, n int) []types.Hash {
	t.Helper()
	var roots []types.Hash
	start := int(e.Height())
	for b := start + 1; b <= start+n; b++ {
		if err := e.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			addr := types.AddressFromUint64(uint64((b*31 + i*17) % 200))
			if err := e.Put(addr, types.ValueFromUint64(uint64(b*1000+i))); err != nil {
				t.Fatal(err)
			}
		}
		root, err := e.Commit()
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return roots
}

// TestEnginePartitionedGoldenVsSequential runs identical block sequences
// through engines that differ only in MergePartitions (sequential vs
// explicit widths vs auto), across sync and async cascades: every
// per-block Hstate and every on-disk run file must be byte-identical.
// Partitioning a merge is a wall-time optimisation, never a format or
// digest change.
func TestEnginePartitionedGoldenVsSequential(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			const blocks = 96 // ~3k entries: deep cascades with multi-page merges

			seqOpts := testOpts(t, async)
			seqOpts.MemCapacity = 256
			seqOpts.MergePartitions = 1
			seq := openEngine(t, seqOpts)
			seqRoots := drivePartitionBlocks(t, seq, blocks)
			seqFiles := runFileBytes(t, seqOpts.Dir)
			if len(seqFiles) == 0 {
				t.Fatal("sequential engine wrote no run files")
			}

			for _, w := range []int{0, 2, 4, 8} {
				t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
					parOpts := testOpts(t, async)
					parOpts.MemCapacity = 256
					parOpts.MergePartitions = w
					par := openEngine(t, parOpts)
					parRoots := drivePartitionBlocks(t, par, blocks)
					for b := range seqRoots {
						if seqRoots[b] != parRoots[b] {
							t.Fatalf("block %d: Hstate differs between sequential and %d-way partitioned merges", b+1, w)
						}
					}
					parFiles := runFileBytes(t, parOpts.Dir)
					if len(parFiles) != len(seqFiles) {
						t.Fatalf("run file sets differ: %d vs %d", len(seqFiles), len(parFiles))
					}
					for name, want := range seqFiles {
						got, ok := parFiles[name]
						if !ok {
							t.Fatalf("partitioned store is missing %s", name)
						}
						if !bytes.Equal(got, want) {
							t.Fatalf("%s differs between sequential and %d-way partitioned merges", name, w)
						}
					}
				})
			}
		})
	}
}

// TestPartitionedMergeUnderConcurrentSnapshots is the race soak for
// partitioned merges: an async engine with 4-way merges runs a heavy
// block workload while reader goroutines continuously pin snapshots,
// k-way iterate them, and issue point reads. Partition workers share the
// merge pool with nothing else pinning their inputs besides the cascade
// itself, so this exercises fan-out, stitching, and retirement under
// concurrent views (run under -race in CI).
func TestPartitionedMergeUnderConcurrentSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("long concurrency soak; the CI -race job runs it without -short")
	}
	opts := testOpts(t, true)
	opts.MemCapacity = 256
	opts.MergePartitions = 4
	e := openEngine(t, opts)

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Snapshot()
				it := s.Entries()
				var n, total int64
				var prev types.CompoundKey
				for {
					ent, ok := it.Next()
					if !ok {
						break
					}
					if n > 0 && !prev.Less(ent.Key) {
						errs <- fmt.Errorf("snapshot iteration out of order at entry %d", n)
						s.Release()
						return
					}
					prev = ent.Key
					n++
				}
				if err := it.Err(); err != nil {
					errs <- fmt.Errorf("snapshot scan: %w", err)
					s.Release()
					return
				}
				if total = s.EntryCount(); n != total {
					errs <- fmt.Errorf("snapshot yielded %d entries, EntryCount says %d", n, total)
					s.Release()
					return
				}
				s.Release()
				if _, _, err := e.Get(types.AddressFromUint64(uint64((g*37 + i) % 200))); err != nil {
					errs <- fmt.Errorf("get during merge: %w", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(g)
	}

	drivePartitionBlocks(t, e, 120)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if st := e.Stats(); st.Merges == 0 {
		t.Fatal("soak drove no merges")
	}
}
