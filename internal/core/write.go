package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"cole/internal/merge"
	"cole/internal/obs"
	"cole/internal/run"
	"cole/internal/types"
)

// BeginBlock starts building a block at the given height, which must
// exceed the last committed height. COLE does not support forks/rewind
// (§4.3), so heights are monotone.
func (e *Engine) BeginBlock(height uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inBlock {
		return fmt.Errorf("core: block %d still open", e.height)
	}
	if height <= e.committed && e.committed != 0 || (e.committed == 0 && height == 0) {
		return fmt.Errorf("core: height %d not above committed %d (no fork support)", height, e.committed)
	}
	e.height = height
	e.inBlock = true
	return nil
}

// Put inserts a state update into the current block: the compound key
// ⟨addr, current height⟩ is written into the L0 writing group
// (Algorithm 1 lines 2–3 / Algorithm 5 lines 2–4).
func (e *Engine) Put(addr types.Address, value types.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inBlock {
		return fmt.Errorf("core: Put outside a block; call BeginBlock first")
	}
	g := e.mem[e.memWriting]
	g.tree.Insert(types.CompoundKey{Addr: addr, Blk: e.height}, value)
	g.filter.Add(addr)
	e.stats.Puts++
	return nil
}

// Update is one pending state write of a batch (alias of types.Update).
type Update = types.Update

// PutBatch applies a block's updates under a single lock acquisition:
// duplicates of an address collapse to the last write before touching the
// tree (within a block only the final value of an address matters — the
// compound key ⟨addr, height⟩ is the same for every one of them).
//
// Updates are applied in first-occurrence order, NOT sorted: the L0
// MB-tree's shape (and therefore its root hash) depends on insertion
// order, and Insert overwrites an existing compound key in place, so
// first-occurrence order with last-write-wins values reproduces the tree
// a sequential Put loop builds — PutBatch and looped Put yield
// byte-identical digests.
func (e *Engine) PutBatch(updates []Update) error {
	if len(updates) == 0 {
		return nil
	}
	// Ingest pacing: a batch absorbs its share of the current compaction
	// debt in proportion to how much of a block it represents, before
	// taking the lock (the sleep must never block readers or merges).
	e.pace(float64(len(updates)) / float64(e.opts.MemCapacity))
	// The histogram measures the batch's real ingest work (lock + dedup
	// + tree insert); the deliberate pacing sleep above is accounted in
	// PaceNanos, exactly as CommitNanos excludes it.
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inBlock {
		return fmt.Errorf("core: PutBatch outside a block; call BeginBlock first")
	}
	g := e.mem[e.memWriting]
	if len(updates) == 1 {
		g.tree.Insert(types.CompoundKey{Addr: updates[0].Addr, Blk: e.height}, updates[0].Value)
		g.filter.Add(updates[0].Addr)
		e.stats.Puts++
		e.hists.PutBatch.Record(time.Since(start))
		return nil
	}
	// Dedup into the engine's scratch (the caller's batch is not
	// mutated; the scratch is reused across calls to keep the hot path
	// allocation-free once warm).
	if e.batchIndex == nil {
		e.batchIndex = make(map[types.Address]int, len(updates))
	} else {
		clear(e.batchIndex)
	}
	deduped := e.batchBuf[:0]
	for _, u := range updates {
		if i, ok := e.batchIndex[u.Addr]; ok {
			deduped[i].Value = u.Value
			continue
		}
		e.batchIndex[u.Addr] = len(deduped)
		deduped = append(deduped, u)
	}
	e.batchBuf = deduped
	if e.opts.SortedBatch {
		// Format-versioned fast path: stage the deduped updates as entries,
		// sort by compound key, and bulk-load the L0 tree through its
		// sorted-insert path (one descent per leaf run instead of one per
		// key). Identical to a sequential Insert loop over the same sorted
		// slice — but NOT to first-occurrence order, which is why the
		// manifest records the setting.
		entries := e.entryBuf[:0]
		for _, u := range deduped {
			entries = append(entries, types.Entry{
				Key:   types.CompoundKey{Addr: u.Addr, Blk: e.height},
				Value: u.Value,
			})
			g.filter.Add(u.Addr)
		}
		e.entryBuf = entries
		sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
		g.tree.InsertSorted(entries)
	} else {
		for _, u := range deduped {
			g.tree.Insert(types.CompoundKey{Addr: u.Addr, Blk: e.height}, u.Value)
			g.filter.Add(u.Addr)
		}
	}
	// Puts counts submitted updates (what the workload issued), matching
	// the sequential-Put accounting.
	e.stats.Puts += int64(len(updates))
	e.hists.PutBatch.Record(time.Since(start))
	return nil
}

// Commit finalizes the current block: it runs the flush/merge cascade if
// the L0 writing group is full, persists the manifest when the structure
// changed, publishes the new read view, and returns the block's state
// root digest Hstate.
func (e *Engine) Commit() (types.Hash, error) {
	// Ingest pacing happens before the timed section: the deliberate
	// backpressure sleep is accounted in PaceNanos, not CommitNanos, so
	// MaxCommitNanos keeps measuring real commit work and stalls.
	e.pace(1)
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.inBlock {
		return types.Hash{}, fmt.Errorf("core: Commit without BeginBlock")
	}
	e.inBlock = false
	e.committed = e.height

	var err error
	cascaded := false
	if e.mem[e.memWriting].tree.Size() >= e.opts.MemCapacity {
		cascaded = true
		// This cascade will supersede the previous pipelined commit's
		// manifest: join its I/O first so writes stay ordered and a
		// deferred failure surfaces here instead of being overwritten.
		if err := e.joinCommitIOLocked(); err != nil {
			return types.Hash{}, err
		}
		if e.opts.AsyncMerge {
			err = e.cascadeAsync()
			// Blocks since the previous cascade live in the merging
			// group, whose flush is still in flight: they are the ones a
			// crash would lose.
			e.checkpoint = e.lastCascade
		} else {
			err = e.cascadeSync()
			e.checkpoint = e.committed
		}
		e.lastCascade = e.committed
		if err != nil {
			return types.Hash{}, err
		}
	}
	// The digest is computed (and recorded in the root history) before the
	// manifest write so that a cascade checkpoint persists its own height's
	// root: every height at or below the durable checkpoint has its digest
	// in the durable history.
	root := e.rootDigestLocked()
	e.recordRootLocked(e.committed, root)
	if cascaded && !e.opts.PipelinedCommit {
		if err := e.writeManifest(); err != nil {
			return types.Hash{}, err
		}
	}
	// Publish after the digest warmed every L0 hash (the frozen snapshots
	// must be clean for concurrent readers) and after the manifest write
	// (or after its bytes were captured, when pipelined), then retire the
	// runs the cascade removed: the fresh view excludes them, and views
	// still pinning them keep their files alive.
	if cascaded && e.opts.PipelinedCommit {
		// Pipelined: capture the exact manifest bytes under the lock, then
		// persist them — and unlink the retired runs' files strictly after
		// the rename — on a background goroutine, overlapping this block's
		// trailing I/O with the next block's execution and hashing.
		raw, err := e.marshalManifestLocked()
		if err != nil {
			return types.Hash{}, err
		}
		e.publishLocked()
		e.startCommitIOLocked(raw)
	} else {
		e.publishLocked()
		e.retireLocked()
	}
	d := int64(time.Since(start))
	e.stats.Commits++
	e.stats.CommitNanos += d
	if d > e.stats.MaxCommitNanos {
		e.stats.MaxCommitNanos = d
	}
	e.hists.Commit.Record(time.Duration(d))
	if e.tr != nil {
		e.trace(obs.EvCommit, -1, 0, e.committed, time.Duration(d))
	}
	return root, nil
}

// RootDigest returns the current Hstate without committing.
func (e *Engine) RootDigest() types.Hash {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rootDigestLocked()
}

// rootHashListLocked assembles root_hash_list in canonical order: the L0
// group roots (writing then merging), then per level the writing-group run
// digests newest-first followed by the merging-group run digests
// newest-first. This order equals the read search order, which is what
// lets provenance verifiers walk proof parts and digests in lockstep.
func (e *Engine) rootHashListLocked() []types.Hash {
	list := []types.Hash{e.mem[e.memWriting].tree.RootHash()}
	if e.opts.AsyncMerge {
		list = append(list, e.mem[1-e.memWriting].tree.RootHash())
	}
	e.forEachRunLocked(func(rr *runRef) bool {
		list = append(list, rr.r.Digest())
		return true
	})
	return list
}

func (e *Engine) rootDigestLocked() types.Hash {
	return types.HashConcat(e.rootHashListLocked()...)
}

// ensureLevel extends the level list so that levels[i] exists.
func (e *Engine) ensureLevel(i int) *level {
	for len(e.levels) <= i {
		e.levels = append(e.levels, &level{})
	}
	return e.levels[i]
}

// collectTree snapshots an MB-tree's entries in key order.
func collectTree(g *memGroup) []types.Entry {
	out := make([]types.Entry, 0, g.tree.Size())
	_ = g.tree.ForEach(func(e types.Entry) error {
		out = append(out, e)
		return nil
	})
	return out
}

// cascadeSync is Algorithm 1: flush L0 into L1, then merge every full
// level into the next, inline. The run builds execute on the shared merge
// pool (blocking until done): one engine sees no difference, but the
// parallel per-shard commits of a sharded store stay within the store's
// worker budget instead of each running a full cascade at once.
func (e *Engine) cascadeSync() error {
	g := e.mem[e.memWriting]
	entries := collectTree(g)
	id := e.nextRunID
	e.nextRunID++
	var r *run.Run
	var err error
	// The whole sync cascade is the commit path, so its jobs run in the
	// flush lane: a commit must never queue behind background maintenance.
	e.sched.Run(func() {
		var fs time.Time
		if e.tr != nil {
			fs = time.Now()
			e.trace(obs.EvFlushStart, 0, int64(len(entries))*types.EntrySize, id, 0)
		}
		r, err = run.Build(e.opts.Dir, id, int64(len(entries)), e.opts.runParams(), run.NewSliceIterator(entries))
		if e.tr != nil {
			e.trace(obs.EvFlushEnd, 0, int64(len(entries))*types.EntrySize, id, time.Since(fs))
		}
	}, merge.PriorityFlush, e.noteMergeWait)
	if err != nil {
		return fmt.Errorf("core: flush L0: %w", err)
	}
	fresh, err := newMemGroup(e.opts)
	if err != nil {
		return err
	}
	e.mem[e.memWriting] = fresh
	e.ensureLevel(0).groups[0] = append(e.levels[0].groups[0], newRunRef(r))
	e.stats.Flushes++
	e.stats.FlushBytes += r.Count() * types.EntrySize

	for i := 0; i < len(e.levels); i++ {
		lv := e.levels[i]
		if len(lv.groups[0]) < e.opts.SizeRatio {
			break
		}
		merged, err := e.buildMergedRun(i+1, runsOf(lv.groups[0]))
		if err != nil {
			return err
		}
		e.retiring = append(e.retiring, lv.groups[0]...)
		lv.groups[0] = nil
		e.ensureLevel(i + 1).groups[0] = append(e.levels[i+1].groups[0], newRunRef(merged))
		e.stats.Merges++
		e.stats.MergeBytes += merged.Count() * types.EntrySize
	}
	return nil
}

// cascadeAsync is Algorithm 5: per-level commit checkpoints that join the
// previous merge thread, publish its output run, swap group roles, and
// start the next merge in the background.
func (e *Engine) cascadeAsync() error {
	// Checkpoint at L0 (lines 6–20 with i = 0).
	if e.memMerge != nil {
		if err := e.commitMerge(e.memMerge, 0); err != nil {
			return err
		}
		e.memMerge = nil
	}
	// Replace the merging-slot group before promoting the slot to the
	// writing role. publishLocked shares the merging group's live tree and
	// filter into views (it is frozen), so the object sitting in the slot —
	// whether the group whose flush just committed or the empty group from
	// Open/FlushAll when no merge was pending — may still be pinned by
	// readers and must never start absorbing Puts.
	fresh, err := newMemGroup(e.opts)
	if err != nil {
		return err
	}
	e.mem[1-e.memWriting] = fresh
	// Switch roles: the full writing group becomes the merging group.
	e.memWriting = 1 - e.memWriting
	mg := e.mem[1-e.memWriting]
	// Warm the hash cache so the flush goroutine only ever reads the tree.
	mg.tree.RootHash()
	e.memMerge = e.startMemFlush(mg)
	e.stats.Flushes++

	// Level checkpoints.
	for i := 0; i < len(e.levels); i++ {
		lv := e.levels[i]
		if len(lv.groups[lv.writing]) < e.opts.SizeRatio {
			break
		}
		if lv.merge != nil {
			if err := e.commitMerge(lv.merge, i+1); err != nil {
				return err
			}
			lv.merge = nil
			e.retiring = append(e.retiring, lv.groups[lv.merging()]...)
			lv.groups[lv.merging()] = nil
		}
		lv.writing = lv.merging()
		mgRuns := lv.groups[lv.merging()]
		lv.merge = e.startLevelMerge(i, runsOf(mgRuns))
		e.stats.Merges++
	}
	return nil
}

// commitMerge joins a merge thread and publishes its run into the writing
// group of the destination level (the commit checkpoint of §5).
func (e *Engine) commitMerge(ms *mergeState, destLevel int) error {
	select {
	case <-ms.done:
	default:
		// Slow node: the interval between start and commit checkpoints was
		// not enough; block until the merge finishes (Algorithm 5 line 9).
		// The blocked time is the commit stall pacing exists to prevent —
		// measured here so `-exp stalls` and `coledb stat` can report it.
		e.mergeWaits.Add(1)
		stallStart := time.Now()
		<-ms.done
		stall := time.Since(stallStart)
		e.stats.StallNanos += int64(stall)
		if e.tr != nil {
			e.trace(obs.EvStall, int32(destLevel), 0, 0, stall)
		}
	}
	if ms.err != nil {
		return fmt.Errorf("core: background merge failed: %w", ms.err)
	}
	lv := e.ensureLevel(destLevel)
	lv.groups[lv.writing] = append(lv.groups[lv.writing], newRunRef(ms.newRun))
	// destLevel 0 receives L0 flushes; deeper levels receive sort-merges.
	// ms.elapsed was written by the job before done closed (happens-before
	// via the channel), so reading it here under mu is safe.
	if destLevel == 0 {
		e.stats.FlushBytes += ms.newRun.Count() * types.EntrySize
	} else {
		e.stats.MergeBytes += ms.newRun.Count() * types.EntrySize
		e.stats.MergeNanos += int64(ms.elapsed)
	}
	return nil
}

// startMemFlush submits the L0 flush job to the merge pool: it snapshots
// the merging group's tree and builds a new L1 run. The run id is
// assigned here, under the engine lock, so ids are deterministic.
func (e *Engine) startMemFlush(g *memGroup) *mergeState {
	id := e.nextRunID
	e.nextRunID++
	size := int64(g.tree.Size()) * types.EntrySize
	ms := &mergeState{done: make(chan struct{})}
	e.sched.Submit(func() {
		defer close(ms.done)
		var fs time.Time
		if e.tr != nil {
			fs = time.Now()
			e.trace(obs.EvFlushStart, 0, size, id, 0)
		}
		entries := collectTree(g)
		r, err := run.Build(e.opts.Dir, id, int64(len(entries)), e.opts.runParams(), run.NewSliceIterator(entries))
		if e.tr != nil {
			e.trace(obs.EvFlushEnd, 0, size, id, time.Since(fs))
		}
		if err != nil {
			ms.err = err
			return
		}
		ms.newRun = r
	}, merge.PriorityFlush, e.noteMergeWait)
	return ms
}

// levelPriority maps a level merge to its scheduler lane: the merge that
// builds L1+1 from levels[0] backs up the very next cascade, everything
// deeper is bulk maintenance a commit should never queue behind.
func levelPriority(levelIdx int) merge.Priority {
	if levelIdx == 0 {
		return merge.PriorityMerge
	}
	return merge.PriorityDeep
}

// defaultMergeChunk is the preemption quantum when Options.MergeChunk is
// 0: 16384 entries ≈ 1 MiB of merged volume between scheduler probes —
// frequent enough that a queued flush waits microseconds, rare enough
// that the probe (two atomic loads) never shows up in merge bandwidth.
const defaultMergeChunk = 16384

func (e *Engine) chunkQuantum() int {
	if e.opts.MergeChunk < 0 {
		return 0
	}
	if e.opts.MergeChunk == 0 {
		return defaultMergeChunk
	}
	return e.opts.MergeChunk
}

// chunked wraps a merge source so the job checkpoints every quantum
// entries and hands its worker slot to queued higher-priority work
// (run.Chunked + Scheduler.Preempt). Flush-lane jobs are never wrapped —
// nothing outranks them, so the probe would be dead weight on the
// commit path. lvl tags the trace events with the merge's destination
// level index.
func (e *Engine) chunked(it run.Iterator, pri merge.Priority, lvl int32) run.Iterator {
	q := e.chunkQuantum()
	if q <= 0 || pri == merge.PriorityFlush {
		return it
	}
	if e.tr == nil {
		return run.Chunked(it, q, func() {
			if e.sched.Preempt(pri, nil) {
				e.preemptions.Add(1)
			}
		})
	}
	// Traced variant: every checkpoint is an instant, and a preemption
	// records how long the merge sat re-queued — exactly one trace
	// preempt event per counted preemption, the invariant the stalls
	// benchmark cross-checks.
	return run.Chunked(it, q, func() {
		e.trace(obs.EvMergeChunk, lvl, 0, 0, 0)
		start := time.Now()
		if e.sched.Preempt(pri, nil) {
			e.preemptions.Add(1)
			e.trace(obs.EvMergePreempt, lvl, 0, 0, time.Since(start))
		}
	})
}

// startLevelMerge submits the sort-merge of a level's merging group into
// a run destined for the next level.
func (e *Engine) startLevelMerge(levelIdx int, runs []*run.Run) *mergeState {
	id := e.nextRunID
	e.nextRunID++
	var count int64
	for _, r := range runs {
		count += r.Count()
	}
	ms := &mergeState{done: make(chan struct{})}
	pri := levelPriority(levelIdx)
	lvl := int32(levelIdx + 1)
	e.sched.Submit(func() {
		defer close(ms.done)
		start := time.Now()
		defer func() { ms.elapsed = time.Since(start) }()
		if e.tr != nil {
			e.trace(obs.EvMergeStart, lvl, count*types.EntrySize, id, 0)
		}
		r, err := e.buildLevelRun(id, count, runs, pri, lvl)
		if e.tr != nil {
			e.trace(obs.EvMergeEnd, lvl, count*types.EntrySize, id, time.Since(start))
		}
		if err != nil {
			ms.err = err
			return
		}
		ms.newRun = r
	}, pri, e.noteMergeWait)
	return ms
}

// buildMergedRun sort-merges a group of runs synchronously (Algorithm 1
// lines 8–11), on the shared merge pool. lvl is the destination level
// index, used only to tag trace events.
func (e *Engine) buildMergedRun(lvl int, runs []*run.Run) (*run.Run, error) {
	id := e.nextRunID
	e.nextRunID++
	var count int64
	for _, r := range runs {
		count += r.Count()
	}
	var merged *run.Run
	var err error
	// Inline (Algorithm 1) merges block the commit, so they run — and fan
	// their partitions out — in the flush lane, unchunked.
	e.sched.Run(func() {
		start := time.Now()
		if e.tr != nil {
			e.trace(obs.EvMergeStart, int32(lvl), count*types.EntrySize, id, 0)
		}
		merged, err = e.buildLevelRun(id, count, runs, merge.PriorityFlush, int32(lvl))
		e.stats.MergeNanos += int64(time.Since(start))
		if e.tr != nil {
			e.trace(obs.EvMergeEnd, int32(lvl), count*types.EntrySize, id, time.Since(start))
		}
	}, merge.PriorityFlush, e.noteMergeWait)
	if err != nil {
		return nil, fmt.Errorf("core: level merge: %w", err)
	}
	return merged, nil
}

// autoPartitionBytes is the merged volume one key-range span should
// carry before the automatic width adds another (~8 MiB of entry bytes
// per span): below it, the planning probes and per-span setup cost more
// than the parallelism recovers.
const autoPartitionBytes = 8 << 20

// mergeWidth picks how many key-range spans a merge of count entries is
// cut into. An explicit Options.MergePartitions ≥ 1 is used as-is; 0
// sizes by merged volume and caps at the pool's worker budget.
// LegacyCompaction pins the pre-partitioning behavior.
func (e *Engine) mergeWidth(count int64) int {
	if e.opts.LegacyCompaction {
		return 1
	}
	if w := e.opts.MergePartitions; w > 0 {
		return w
	}
	w := int(count * types.EntrySize / autoPartitionBytes)
	if workers := e.sched.Workers(); w > workers {
		w = workers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// buildLevelRun builds a level merge's destination run, partitioned by
// key range when the width says so. The caller already holds a
// merge-pool slot (startLevelMerge's job, buildMergedRun's Run), so the
// spans go out via SubmitPartition and the join runs inside Yield: the
// parent's released slot is what feeds its own spans on a narrow pool.
// The partitioned output is byte-identical to the sequential build, so
// the choice never reaches digests or the manifest.
func (e *Engine) buildLevelRun(id uint64, count int64, runs []*run.Run, pri merge.Priority, lvl int32) (*run.Run, error) {
	if width := e.mergeWidth(count); width > 1 {
		spans, err := run.PlanRuns(runs, width, e.opts.PageSize)
		if err != nil {
			return nil, err
		}
		if len(spans) > 1 {
			spawn := func(fn func()) { e.sched.SubmitPartition(fn, pri, e.notePartitionWait) }
			if e.tr != nil {
				// Bracket each span on its own trace lane; the ordinal
				// is assigned in spawn order (the planner's span order).
				var seq atomic.Uint64
				spawn = func(fn func()) {
					ord := seq.Add(1) - 1
					e.sched.SubmitPartition(func() {
						start := time.Now()
						e.trace(obs.EvSpanStart, lvl, 0, ord, 0)
						fn()
						e.trace(obs.EvSpanEnd, lvl, 0, ord, time.Since(start))
					}, pri, e.notePartitionWait)
				}
			}
			par := run.Parallel{
				Spawn: spawn,
				Yield: func(wait func()) { e.sched.Yield(pri, wait, e.notePartitionWait) },
			}
			// Each span holds its own pool slot, so each preempts
			// independently: one queued flush pauses one span, not the
			// whole fan-out.
			return run.BuildPartitioned(e.opts.Dir, id, count, e.opts.runParams(), spans,
				func(sp run.Span) (run.Iterator, error) { return e.chunked(run.MergeRunsRange(runs, sp), pri, lvl), nil }, par)
		}
	}
	it := run.MergeRuns(runs)
	r, err := run.Build(e.opts.Dir, id, count, e.opts.runParams(), e.chunked(it, pri, lvl))
	if err != nil {
		return nil, err
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// FlushAll forces the L0 contents to disk and joins all merge threads,
// committing their outputs: a clean shutdown helper (the paper's crash
// model instead replays blocks above the checkpoint). The resulting run
// sizes may be smaller than B, which only affects level occupancy, never
// correctness.
func (e *Engine) FlushAll() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.inBlock {
		return fmt.Errorf("core: FlushAll inside an open block")
	}
	// Join the pipelined commit I/O before writing another manifest.
	if err := e.joinCommitIOLocked(); err != nil {
		return err
	}
	// Join and commit async threads first so groups are quiescent.
	if e.memMerge != nil {
		if err := e.commitMerge(e.memMerge, 0); err != nil {
			return err
		}
		e.memMerge = nil
		fresh, err := newMemGroup(e.opts)
		if err != nil {
			return err
		}
		e.mem[1-e.memWriting] = fresh
	}
	for i := 0; i < len(e.levels); i++ {
		lv := e.levels[i]
		if lv.merge != nil {
			if err := e.commitMerge(lv.merge, i+1); err != nil {
				return err
			}
			lv.merge = nil
			e.retiring = append(e.retiring, lv.groups[lv.merging()]...)
			lv.groups[lv.merging()] = nil
		}
	}
	// Flush any remaining L0 entries (both groups) as a final run.
	for _, gi := range []int{e.memWriting, 1 - e.memWriting} {
		g := e.mem[gi]
		if g.tree.Size() == 0 {
			continue
		}
		entries := collectTree(g)
		id := e.nextRunID
		e.nextRunID++
		var fs time.Time
		if e.tr != nil {
			fs = time.Now()
			e.trace(obs.EvFlushStart, 0, int64(len(entries))*types.EntrySize, id, 0)
		}
		r, err := run.Build(e.opts.Dir, id, int64(len(entries)), e.opts.runParams(), run.NewSliceIterator(entries))
		if e.tr != nil {
			e.trace(obs.EvFlushEnd, 0, int64(len(entries))*types.EntrySize, id, time.Since(fs))
		}
		if err != nil {
			return err
		}
		lv := e.ensureLevel(0)
		lv.groups[lv.writing] = append(lv.groups[lv.writing], newRunRef(r))
		fresh, err := newMemGroup(e.opts)
		if err != nil {
			return err
		}
		e.mem[gi] = fresh
		e.stats.Flushes++
		e.stats.FlushBytes += r.Count() * types.EntrySize
	}
	e.checkpoint = e.committed
	e.lastCascade = e.committed
	if err := e.writeManifest(); err != nil {
		return err
	}
	e.rootDigestLocked() // warm L0 hashes for the snapshot
	e.publishLocked()
	e.retireLocked()
	return nil
}
