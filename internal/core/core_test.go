package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/types"
)

func testOpts(t *testing.T, async bool) Options {
	t.Helper()
	return Options{
		Dir:         t.TempDir(),
		MemCapacity: 32,
		SizeRatio:   2,
		Fanout:      4,
		AsyncMerge:  async,
	}
}

func openEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// oracle tracks the full version history per address.
type oracle struct {
	hist map[types.Address][]Version
}

func newOracle() *oracle { return &oracle{hist: map[types.Address][]Version{}} }

func (o *oracle) put(addr types.Address, blk uint64, v types.Value) {
	h := o.hist[addr]
	if len(h) > 0 && h[len(h)-1].Blk == blk {
		h[len(h)-1].Value = v // same-block overwrite
	} else {
		h = append(h, Version{Blk: blk, Value: v})
	}
	o.hist[addr] = h
}

func (o *oracle) latest(addr types.Address) (Version, bool) {
	h := o.hist[addr]
	if len(h) == 0 {
		return Version{}, false
	}
	return h[len(h)-1], true
}

func (o *oracle) at(addr types.Address, blk uint64) (Version, bool) {
	h := o.hist[addr]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Blk <= blk {
			return h[i], true
		}
	}
	return Version{}, false
}

func (o *oracle) between(addr types.Address, lo, hi uint64) []Version {
	var out []Version
	h := o.hist[addr]
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].Blk >= lo && h[i].Blk <= hi {
			out = append(out, h[i])
		}
	}
	return out
}

// runWorkload drives nBlocks blocks of random puts through the engine and
// the oracle in lockstep, returning the final Hstate.
func runWorkload(t *testing.T, e *Engine, o *oracle, seed int64, nBlocks, putsPerBlock, addrSpace int) types.Hash {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	start := e.Height() + 1
	var root types.Hash
	for b := 0; b < nBlocks; b++ {
		h := start + uint64(b)
		if err := e.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < putsPerBlock; p++ {
			addr := types.AddressFromUint64(uint64(r.Intn(addrSpace)))
			v := types.ValueFromUint64(r.Uint64())
			if err := e.Put(addr, v); err != nil {
				t.Fatal(err)
			}
			o.put(addr, h, v)
		}
		var err error
		root, err = e.Commit()
		if err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestPutGetSingleBlock(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	addr := types.AddressFromUint64(1)
	if err := e.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(addr, types.ValueFromUint64(42)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.Get(addr)
	if err != nil || !ok || v.Uint64() != 42 {
		t.Fatalf("get: %v %v %v", v, ok, err)
	}
	if _, ok, _ := e.Get(types.AddressFromUint64(2)); ok {
		t.Fatal("absent address must miss")
	}
}

func TestBlockDiscipline(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	if err := e.Put(types.AddressFromUint64(1), types.Value{}); err == nil {
		t.Fatal("Put outside block must fail")
	}
	if _, err := e.Commit(); err == nil {
		t.Fatal("Commit without block must fail")
	}
	if err := e.BeginBlock(0); err == nil {
		t.Fatal("height 0 must be rejected on a fresh store")
	}
	if err := e.BeginBlock(5); err != nil {
		t.Fatal(err)
	}
	if err := e.BeginBlock(6); err == nil {
		t.Fatal("nested BeginBlock must fail")
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.BeginBlock(5); err == nil {
		t.Fatal("non-monotone height must fail (no forks)")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir must fail")
	}
	if _, err := Open(Options{Dir: t.TempDir(), SizeRatio: 1}); err == nil {
		t.Fatal("size ratio 1 must fail")
	}
	if _, err := Open(Options{Dir: t.TempDir(), Fanout: 1}); err == nil {
		t.Fatal("fanout 1 must fail")
	}
}

func TestMultiLevelGetMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level workload is the suite's heaviest case; run without -short")
	}
	for _, async := range []bool{false, true} {
		e := openEngine(t, testOpts(t, async))
		o := newOracle()
		runWorkload(t, e, o, 1, 300, 5, 60)
		if len(e.LevelRunCounts()) < 2 {
			t.Fatalf("async=%v: expected multiple on-disk levels, got %v", async, e.LevelRunCounts())
		}
		for a := 0; a < 60; a++ {
			addr := types.AddressFromUint64(uint64(a))
			want, wantOK := o.latest(addr)
			v, ok, err := e.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK {
				t.Fatalf("async=%v addr %d: found=%v want %v", async, a, ok, wantOK)
			}
			if ok && v != want.Value {
				t.Fatalf("async=%v addr %d: wrong latest value", async, a)
			}
		}
	}
}

func TestGetAtMatchesOracle(t *testing.T) {
	for _, async := range []bool{false, true} {
		e := openEngine(t, testOpts(t, async))
		o := newOracle()
		runWorkload(t, e, o, 2, 200, 4, 30)
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			addr := types.AddressFromUint64(uint64(r.Intn(30)))
			blk := uint64(r.Intn(220))
			want, wantOK := o.at(addr, blk)
			v, vb, ok, err := e.GetAt(addr, blk)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK {
				t.Fatalf("async=%v GetAt(%d): found=%v want %v", async, blk, ok, wantOK)
			}
			if ok && (v != want.Value || vb != want.Blk) {
				t.Fatalf("async=%v GetAt(%d): got blk %d want %d", async, blk, vb, want.Blk)
			}
		}
	}
}

func TestProvQueryVerifiesAgainstHstate(t *testing.T) {
	for _, async := range []bool{false, true} {
		e := openEngine(t, testOpts(t, async))
		o := newOracle()
		root := runWorkload(t, e, o, 4, 250, 5, 40)
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 120; i++ {
			addr := types.AddressFromUint64(uint64(r.Intn(40)))
			lo := uint64(r.Intn(250)) + 1
			hi := lo + uint64(r.Intn(64))
			want := o.between(addr, lo, hi)

			got, proof, err := e.ProvQuery(addr, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("async=%v prov(%d,[%d,%d]): %d results, want %d", async, i, lo, hi, len(got), len(want))
			}
			verified, err := VerifyProv(root, addr, lo, hi, proof)
			if err != nil {
				t.Fatalf("async=%v verification failed: %v", async, err)
			}
			if len(verified) != len(want) {
				t.Fatalf("async=%v verified %d results, want %d", async, len(verified), len(want))
			}
			for j := range want {
				if verified[j] != want[j] || got[j] != want[j] {
					t.Fatalf("async=%v result %d mismatch", async, j)
				}
			}
		}
	}
}

func TestProvProofTamperingDetected(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	o := newOracle()
	root := runWorkload(t, e, o, 6, 200, 5, 10)
	addr := types.AddressFromUint64(3)

	_, proof, err := e.ProvQuery(addr, 50, 120)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyProv(root, addr, 50, 120, proof); err != nil {
		t.Fatalf("honest proof must verify: %v", err)
	}

	// Wrong query binding.
	if _, err := VerifyProv(root, addr, 50, 121, proof); err == nil {
		t.Fatal("proof bound to different range must fail")
	}
	other := types.AddressFromUint64(4)
	if _, err := VerifyProv(root, other, 50, 120, proof); err == nil {
		t.Fatal("proof bound to different address must fail")
	}
	// Wrong root.
	bad := root
	bad[0] ^= 1
	if _, err := VerifyProv(bad, addr, 50, 120, proof); err == nil {
		t.Fatal("wrong Hstate must fail")
	}
	// Tampered run span value.
	_, proof2, _ := e.ProvQuery(addr, 50, 120)
	tampered := false
	for _, rp := range proof2.Runs {
		if rp.Prov != nil && len(rp.Prov.Span) > 0 {
			rp.Prov.Span[0].Value[0] ^= 1
			tampered = true
			break
		}
	}
	if tampered {
		if _, err := VerifyProv(root, addr, 50, 120, proof2); err == nil {
			t.Fatal("tampered span must fail")
		}
	}
	// Hiding components: drop the last run part and claim it unsearched
	// without evidence is impossible to construct coherently, but simply
	// truncating parts must break the digest chain.
	_, proof3, _ := e.ProvQuery(addr, 50, 120)
	if len(proof3.Runs) > 0 {
		proof3.Runs = proof3.Runs[:len(proof3.Runs)-1]
		if _, err := VerifyProv(root, addr, 50, 120, proof3); err == nil {
			t.Fatal("dropped run part must fail")
		}
	}
}

func TestProvEarlyStopProducesUnsearched(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	o := newOracle()
	// A hot address updated every block guarantees versions below any
	// query range, triggering early stops.
	r := rand.New(rand.NewSource(7))
	hot := types.AddressFromUint64(999)
	for b := 1; b <= 300; b++ {
		if err := e.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		if err := e.Put(hot, types.ValueFromUint64(uint64(b))); err != nil {
			t.Fatal(err)
		}
		o.put(hot, uint64(b), types.ValueFromUint64(uint64(b)))
		for p := 0; p < 4; p++ {
			a := types.AddressFromUint64(uint64(r.Intn(50)))
			v := types.ValueFromUint64(r.Uint64())
			if err := e.Put(a, v); err != nil {
				t.Fatal(err)
			}
			o.put(a, uint64(b), v)
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	root := e.RootDigest()
	got, proof, err := e.ProvQuery(hot, 290, 295)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("hot address must have 6 versions in range, got %d", len(got))
	}
	if len(proof.Unsearched) == 0 {
		t.Fatal("early stop expected: deeper levels must be skipped")
	}
	verified, err := VerifyProv(root, hot, 290, 295, proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) != 6 {
		t.Fatalf("verified %d", len(verified))
	}
	// Forged unsearched section without evidence must fail: move all run
	// parts into unsearched digests.
	_, proof2, _ := e.ProvQuery(types.AddressFromUint64(1), 2, 3)
	hasEvidence := false
	for _, rp := range proof2.Runs {
		if rp.Prov != nil {
			for _, ent := range rp.Prov.Span {
				if ent.Key.Addr == types.AddressFromUint64(1) && ent.Key.Blk < 2 {
					hasEvidence = true
				}
			}
		}
	}
	if !hasEvidence {
		// Construct a lying proof: claim everything after L0 unsearched.
		var digests []types.Hash
		for _, rp := range proof2.Runs {
			if rp.BloomMiss {
				bd := types.HashData(rp.BloomBytes)
				digests = append(digests, types.HashData(rp.MHTRoot[:], bd[:]))
			} else if rp.Prov != nil && rp.Prov.Proof != nil {
				digests = append(digests, types.Hash{}) // placeholder; digest chain will fail anyway
			}
		}
		proof2.Runs = nil
		proof2.Unsearched = append(digests, proof2.Unsearched...)
		if _, err := VerifyProv(root, types.AddressFromUint64(1), 2, 3, proof2); err == nil {
			t.Fatal("skipping components without evidence must fail")
		}
	}
}

func TestProvInvertedRange(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	if _, _, err := e.ProvQuery(types.AddressFromUint64(1), 10, 5); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestAsyncAndSyncAgreeOnResults(t *testing.T) {
	// Same workload through COLE and COLE*: query results must be
	// identical (Hstate differs by construction: different structures).
	sync := openEngine(t, testOpts(t, false))
	async := openEngine(t, testOpts(t, true))
	oS, oA := newOracle(), newOracle()
	runWorkload(t, sync, oS, 11, 260, 5, 30)
	runWorkload(t, async, oA, 11, 260, 5, 30)
	for a := 0; a < 30; a++ {
		addr := types.AddressFromUint64(uint64(a))
		v1, ok1, err1 := sync.Get(addr)
		v2, ok2, err2 := async.Get(addr)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("addr %d: sync and async disagree", a)
		}
	}
	r1, _, _ := sync.ProvQuery(types.AddressFromUint64(5), 100, 200)
	r2, _, _ := async.ProvQuery(types.AddressFromUint64(5), 100, 200)
	if len(r1) != len(r2) {
		t.Fatalf("prov results differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("prov result %d differs", i)
		}
	}
}

func TestAsyncHstateDeterministicAcrossNodes(t *testing.T) {
	// The soundness requirement of §5: two nodes running the same blocks
	// compute identical Hstate at every height regardless of merge-thread
	// timing.
	optsA := testOpts(t, true)
	optsB := testOpts(t, true)
	a := openEngine(t, optsA)
	b := openEngine(t, optsB)
	r := rand.New(rand.NewSource(13))
	type putOp struct {
		addr types.Address
		v    types.Value
	}
	for blk := uint64(1); blk <= 400; blk++ {
		var ops []putOp
		for p := 0; p < 5; p++ {
			ops = append(ops, putOp{types.AddressFromUint64(uint64(r.Intn(50))), types.ValueFromUint64(r.Uint64())})
		}
		for _, e := range []*Engine{a, b} {
			if err := e.BeginBlock(blk); err != nil {
				t.Fatal(err)
			}
			for _, op := range ops {
				if err := e.Put(op.addr, op.v); err != nil {
					t.Fatal(err)
				}
			}
		}
		ra, err := a.Commit()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("Hstate diverged at height %d", blk)
		}
	}
}

func TestReopenAndReplayRestoresState(t *testing.T) {
	for _, async := range []bool{false, true} {
		opts := testOpts(t, async)
		e, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		o := newOracle()
		finalRoot := runWorkload(t, e, o, 17, 150, 5, 25)
		finalHeight := e.Height()
		cp := e.CheckpointHeight()
		if cp == 0 {
			t.Fatalf("async=%v: no checkpoint was taken", async)
		}
		e.Close()

		// Crash model: reopen loses L0; blocks above the checkpoint must be
		// replayed, after which the state root matches.
		e2, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		if e2.Height() != cp {
			t.Fatalf("async=%v: reopened height %d, want checkpoint %d", async, e2.Height(), cp)
		}
		// Replay deterministically (same seed stream): regenerate the
		// whole workload, skipping blocks at or below the checkpoint.
		r := rand.New(rand.NewSource(17))
		for b := uint64(1); b <= finalHeight; b++ {
			type op struct {
				addr types.Address
				v    types.Value
			}
			var ops []op
			for p := 0; p < 5; p++ {
				ops = append(ops, op{types.AddressFromUint64(uint64(r.Intn(25))), types.ValueFromUint64(r.Uint64())})
			}
			if b <= cp {
				continue
			}
			if err := e2.BeginBlock(b); err != nil {
				t.Fatal(err)
			}
			for _, x := range ops {
				if err := e2.Put(x.addr, x.v); err != nil {
					t.Fatal(err)
				}
			}
			root, err := e2.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if b == finalHeight && root != finalRoot {
				t.Fatalf("async=%v: replayed root differs at height %d", async, b)
			}
		}
		// Full state agreement.
		for a := 0; a < 25; a++ {
			addr := types.AddressFromUint64(uint64(a))
			want, wantOK := o.latest(addr)
			v, ok, err := e2.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || (ok && v != want.Value) {
				t.Fatalf("async=%v: replayed state differs at addr %d", async, a)
			}
		}
	}
}

func TestOrphanCleanupOnOpen(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 19, 100, 5, 20)
	if err := e.FlushAll(); err != nil { // persist L0 so reopen needs no replay
		t.Fatal(err)
	}
	e.Close()

	// Simulate an interrupted merge: stray run files not in the manifest.
	for _, name := range []string{"run-00000000deadbeef.val", "run-00000000deadbeef.met"} {
		if err := os.WriteFile(filepath.Join(opts.Dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, err := os.Stat(filepath.Join(opts.Dir, "run-00000000deadbeef.val")); !os.IsNotExist(err) {
		t.Fatal("orphan files must be removed on open")
	}
	// Store still healthy.
	addr := types.AddressFromUint64(1)
	want, wantOK := o.latest(addr)
	v, ok, err := e2.Get(addr)
	if err != nil || ok != wantOK || (ok && v != want.Value) {
		t.Fatalf("store unhealthy after orphan cleanup: %v", err)
	}
}

func TestCorruptManifestRejected(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 23, 80, 5, 20)
	e.Close()
	if err := os.WriteFile(filepath.Join(opts.Dir, "MANIFEST"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("corrupt manifest must be rejected")
	}
}

func TestParameterMismatchRejected(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 29, 80, 5, 20)
	e.Close()
	bad := opts
	bad.SizeRatio = 8
	if _, err := Open(bad); err == nil {
		t.Fatal("size-ratio mismatch must be rejected")
	}
	bad = opts
	bad.AsyncMerge = true
	if _, err := Open(bad); err == nil {
		t.Fatal("merge-mode mismatch must be rejected")
	}
}

func TestFlushAllPersistsEverything(t *testing.T) {
	for _, async := range []bool{false, true} {
		opts := testOpts(t, async)
		e, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		o := newOracle()
		runWorkload(t, e, o, 31, 90, 5, 20)
		if err := e.FlushAll(); err != nil {
			t.Fatal(err)
		}
		if w, m := e.MemEntries(); w != 0 || m != 0 {
			t.Fatalf("async=%v: L0 not empty after FlushAll: %d/%d", async, w, m)
		}
		h := e.Height()
		e.Close()
		e2, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		if e2.Height() != h {
			t.Fatalf("async=%v: FlushAll height %d not persisted (%d)", async, h, e2.Height())
		}
		for a := 0; a < 20; a++ {
			addr := types.AddressFromUint64(uint64(a))
			want, wantOK := o.latest(addr)
			v, ok, err := e2.Get(addr)
			if err != nil || ok != wantOK || (ok && v != want.Value) {
				t.Fatalf("async=%v: state lost after FlushAll+reopen (addr %d)", async, a)
			}
		}
	}
}

func TestStorageBreakdownAndStats(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	o := newOracle()
	runWorkload(t, e, o, 37, 120, 5, 20)
	sb := e.Storage()
	if sb.Entries == 0 || sb.DataBytes == 0 || sb.IndexBytes == 0 || sb.Runs == 0 {
		t.Fatalf("implausible storage breakdown: %+v", sb)
	}
	st := e.Stats()
	if st.Puts != 600 || st.Flushes == 0 || st.Merges == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestHotColdWorkloadDeepLevels(t *testing.T) {
	// Skewed updates: one hot address plus a cold tail; versions of the
	// hot address span every level and provenance must find them all.
	e := openEngine(t, testOpts(t, true))
	hot := types.AddressFromUint64(0)
	nBlocks := 500
	for b := 1; b <= nBlocks; b++ {
		if err := e.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		if err := e.Put(hot, types.ValueFromUint64(uint64(b))); err != nil {
			t.Fatal(err)
		}
		if err := e.Put(types.AddressFromUint64(uint64(b)), types.ValueFromUint64(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	root := e.RootDigest()
	// Full history of the hot address.
	got, proof, err := e.ProvQuery(hot, 1, uint64(nBlocks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nBlocks {
		t.Fatalf("hot address has %d versions, want %d", len(got), nBlocks)
	}
	verified, err := VerifyProv(root, hot, 1, uint64(nBlocks), proof)
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) != nBlocks {
		t.Fatalf("verified %d versions", len(verified))
	}
	for i, v := range verified {
		if v.Blk != uint64(nBlocks-i) {
			t.Fatalf("version order broken at %d", i)
		}
	}
}
