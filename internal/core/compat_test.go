package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cole/internal/types"
)

// driveBlocks commits n deterministic blocks of 8 updates over a small
// address population (so addresses gather many versions) and returns the
// per-block digests.
func driveBlocks(t *testing.T, e *Engine, n int) []types.Hash {
	t.Helper()
	var roots []types.Hash
	start := int(e.Height())
	for b := start + 1; b <= start+n; b++ {
		if err := e.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			addr := types.AddressFromUint64(uint64((b*7 + i*13) % 40))
			if err := e.Put(addr, types.ValueFromUint64(uint64(b*100+i))); err != nil {
				t.Fatal(err)
			}
		}
		root, err := e.Commit()
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, root)
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return roots
}

// runFileBytes maps every run file in an engine directory to its bytes.
func runFileBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if !strings.HasPrefix(de.Name(), "run-") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[de.Name()] = raw
	}
	return out
}

// TestEngineGoldenStreamingVsLegacy runs identical block sequences
// through an engine with the streaming compaction pipeline and one with
// the legacy IO/CPU path (1-page syscalls, per-entry re-hashing), across
// sync and async cascades: every per-block Hstate and every on-disk run
// file must be byte-identical — the streaming rebuild is pure
// restructuring, never a format or digest change.
func TestEngineGoldenStreamingVsLegacy(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			const blocks = 60 // several cascades deep at MemCapacity 32, T 2

			legacyOpts := testOpts(t, async)
			legacyOpts.MergeReadahead = 1
			legacyOpts.WriteBufferPages = 1
			legacyOpts.LegacyCompaction = true
			legacy := openEngine(t, legacyOpts)
			legacyRoots := driveBlocks(t, legacy, blocks)

			streamOpts := testOpts(t, async)
			stream := openEngine(t, streamOpts)
			streamRoots := driveBlocks(t, stream, blocks)

			for b := range legacyRoots {
				if legacyRoots[b] != streamRoots[b] {
					t.Fatalf("block %d: Hstate differs between legacy and streaming pipelines", b+1)
				}
			}
			lf, sf := runFileBytes(t, legacyOpts.Dir), runFileBytes(t, streamOpts.Dir)
			if len(lf) == 0 || len(lf) != len(sf) {
				t.Fatalf("run file sets differ: %d vs %d", len(lf), len(sf))
			}
			for name, want := range lf {
				got, ok := sf[name]
				if !ok {
					t.Fatalf("streaming store is missing %s", name)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s differs between legacy and streaming pipelines", name)
				}
			}
		})
	}
}

// TestMergeStatsAccounting sanity-checks the new compaction counters:
// cascades must account flush and merge volume, and the point-read
// cache totals must survive run retirement.
func TestMergeStatsAccounting(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	driveBlocks(t, e, 60)
	st := e.Stats()
	if st.Flushes == 0 || st.FlushBytes == 0 {
		t.Fatalf("no flush volume accounted: %+v", st)
	}
	if st.Merges == 0 || st.MergeBytes == 0 || st.MergeNanos == 0 {
		t.Fatalf("no merge volume/time accounted: %+v", st)
	}

	// Point reads against merged-away runs accumulate into the totals.
	before := e.Stats()
	for i := 0; i < 40; i++ {
		if _, _, err := e.Get(types.AddressFromUint64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	mid := e.Stats()
	if mid.PageReads+mid.CacheHits <= before.PageReads+before.CacheHits {
		t.Fatalf("reads did not move cache counters: %+v -> %+v", before, mid)
	}
	driveBlocks(t, e, 60) // retire runs via further cascades
	after := e.Stats()
	if after.PageReads < mid.PageReads {
		t.Fatalf("retirement lost page-read history: %d -> %d", mid.PageReads, after.PageReads)
	}
}
