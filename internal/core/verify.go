package core

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"

	"cole/internal/run"
	"cole/internal/vfs"
)

// This file is the engine's offline integrity scrub (`coledb fsck`):
// walk a closed engine directory — manifest plus every committed run —
// and report every file whose bytes fail an integrity invariant. The
// directory must not be open in an engine (the scrub reads files that a
// live merge could be retiring).

// VerifyStore scrubs a closed engine directory and reports its
// findings. A fast scrub checks each run's metadata checksum, file
// geometry, and stored Merkle root; a full scrub additionally walks
// every entry, rebuilds every Merkle node, and proves learned-index
// coverage (see run.Verify). notes carries non-fatal observations
// (orphan files a reopen would sweep); err is operational only — a
// corrupt store is reported through findings, not err.
func VerifyStore(fsys vfs.FS, dir string, fast bool) (findings []run.Finding, notes []string, err error) {
	fsys = vfs.OrOS(fsys)
	manifestPath := filepath.Join(dir, "MANIFEST")
	raw, rerr := fsys.ReadFile(manifestPath)
	if errors.Is(rerr, iofs.ErrNotExist) {
		if _, serr := fsys.Stat(dir); serr != nil {
			return nil, nil, fmt.Errorf("core: %s is not a store directory", dir)
		}
		return nil, []string{"no manifest: fresh (never-cascaded) store"}, nil
	}
	if rerr != nil {
		return nil, nil, rerr
	}
	var m manifest
	if uerr := json.Unmarshal(raw, &m); uerr != nil {
		return []run.Finding{{File: manifestPath, Page: -1,
			Detail: fmt.Sprintf("manifest does not parse: %v", uerr)}}, nil, nil
	}
	if m.SizeRatio < 2 || m.Fanout < 2 {
		findings = append(findings, run.Finding{File: manifestPath, Page: -1,
			Detail: fmt.Sprintf("manifest parameters T=%d m=%d out of range", m.SizeRatio, m.Fanout)})
	}

	referenced := make(map[string]bool)
	var ids []uint64
	seen := make(map[uint64]bool)
	for li, ls := range m.Levels {
		for g := 0; g < 2; g++ {
			for _, id := range ls.Groups[g] {
				if seen[id] {
					findings = append(findings, run.Finding{File: manifestPath, Page: -1,
						Detail: fmt.Sprintf("run %d referenced twice (level %d)", id, li+1)})
					continue
				}
				seen[id] = true
				ids = append(ids, id)
				for _, f := range run.Files(id) {
					referenced[f] = true
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		params := run.Params{Fanout: m.Fanout, CachePages: 4, FS: fsys}
		// The page size is recorded per run, not in the manifest; a
		// metadata failure here resurfaces from run.Verify with full
		// attribution, so the probe error itself is dropped.
		if ps, perr := run.PageSizeOfFS(fsys, dir, id); perr == nil {
			params.PageSize = ps
		}
		findings = append(findings, run.Verify(dir, id, params, fast)...)
	}

	entries, rderr := fsys.ReadDir(dir)
	if rderr != nil {
		return findings, notes, rderr
	}
	for _, de := range entries {
		name := de.Name()
		if !strings.HasPrefix(name, "run-") || de.IsDir() {
			continue
		}
		if !referenced[name] {
			notes = append(notes, fmt.Sprintf("orphan file %s (a reopen sweeps it)", name))
		}
	}
	return findings, notes, nil
}
