package core

import (
	"fmt"
	"sort"
	"testing"

	"cole/internal/run"
	"cole/internal/types"
)

func installAddr(i int) types.Address {
	return types.AddressFromString(fmt.Sprintf("install-%04d", i))
}

// TestSnapshotEntriesStreamsEverything pins a snapshot of a multi-level
// engine with live L0 data and checks Entries yields exactly the stored
// entries, globally sorted, with EntryCount agreeing.
func TestSnapshotEntriesStreamsEverything(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			dir := t.TempDir()
			e, err := Open(Options{Dir: dir, MemCapacity: 16, AsyncMerge: async})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			oracle := map[types.CompoundKey]types.Value{}
			const blocks, writes, accounts = 40, 7, 13
			for b := 1; b <= blocks; b++ {
				if err := e.BeginBlock(uint64(b)); err != nil {
					t.Fatal(err)
				}
				for w := 0; w < writes; w++ {
					a := installAddr((b*writes + w) % accounts)
					v := types.ValueFromUint64(uint64(b*1000 + w))
					if err := e.Put(a, v); err != nil {
						t.Fatal(err)
					}
					oracle[types.CompoundKey{Addr: a, Blk: uint64(b)}] = v
				}
				if _, err := e.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			// No FlushAll: part of the data must still be in the L0 groups
			// so the export covers memory and disk.
			snap := e.Snapshot()
			defer snap.Release()
			if got, want := snap.EntryCount(), int64(len(oracle)); got != want {
				t.Fatalf("EntryCount = %d, want %d", got, want)
			}
			it := snap.Entries()
			var prev types.CompoundKey
			n := 0
			for {
				ent, ok := it.Next()
				if !ok {
					break
				}
				if n > 0 && !prev.Less(ent.Key) {
					t.Fatalf("export not strictly sorted: %s after %s", ent.Key, prev)
				}
				prev = ent.Key
				want, ok := oracle[ent.Key]
				if !ok {
					t.Fatalf("export yielded unknown key %s", ent.Key)
				}
				if ent.Value != want {
					t.Fatalf("export value mismatch at %s", ent.Key)
				}
				n++
			}
			if err := it.Err(); err != nil {
				t.Fatalf("export error: %v", err)
			}
			if n != len(oracle) {
				t.Fatalf("export yielded %d entries, want %d", n, len(oracle))
			}
		})
	}
}

// TestInstallBulkRoundTrip bulk-installs an engine from a sorted stream
// and reopens it as a normal engine: reads, state introspection, and
// continued commits must all work.
func TestInstallBulkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const count = 1000
	entries := make([]types.Entry, 0, count)
	for i := 0; i < count; i++ {
		entries = append(entries, types.Entry{
			Key:   types.CompoundKey{Addr: installAddr(i % 100), Blk: uint64(i/100 + 1)},
			Value: types.ValueFromUint64(uint64(i)),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
	opts := Options{Dir: dir, MemCapacity: 64}
	if err := InstallBulk(opts, 10, count, run.NewSliceIterator(entries)); err != nil {
		t.Fatalf("install: %v", err)
	}
	// A second install into the same directory must refuse.
	if err := InstallBulk(opts, 10, count, run.NewSliceIterator(entries)); err == nil {
		t.Fatal("double install succeeded")
	}

	st, err := ReadStoreState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Exists || st.Height != 10 || st.Replay != 10 || len(st.RunIDs) != 1 {
		t.Fatalf("state %+v", st)
	}

	e, err := Open(opts)
	if err != nil {
		t.Fatalf("open installed engine: %v", err)
	}
	defer e.Close()
	if e.Height() != 10 || e.CheckpointHeight() != 10 {
		t.Fatalf("height %d checkpoint %d, want 10/10", e.Height(), e.CheckpointHeight())
	}
	for i := 0; i < 100; i++ {
		v, blk, ok, err := e.GetAt(installAddr(i), types.MaxBlock)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if blk != 10 || v != types.ValueFromUint64(uint64(900+i)) {
			t.Fatalf("get %d: blk=%d v=%s", i, blk, v)
		}
	}
	// Continued operation: new blocks commit and cascade above the
	// installed bottom run.
	for b := uint64(11); b <= 40; b++ {
		if err := e.BeginBlock(b); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 10; w++ {
			if err := e.Put(installAddr(w), types.ValueFromUint64(b)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Commit(); err != nil {
			t.Fatalf("commit %d: %v", b, err)
		}
	}
	v, ok, err := e.Get(installAddr(0))
	if err != nil || !ok || v != types.ValueFromUint64(40) {
		t.Fatalf("get after continued writes: v=%s ok=%v err=%v", v, ok, err)
	}
}

// TestInstallBulkEmpty installs a zero-entry engine (a destination shard
// that owns no keys) and checks it opens and accepts writes.
func TestInstallBulkEmpty(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, MemCapacity: 64}
	if err := InstallBulk(opts, 7, 0, run.NewSliceIterator(nil)); err != nil {
		t.Fatalf("install: %v", err)
	}
	e, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer e.Close()
	if e.Height() != 7 {
		t.Fatalf("height %d, want 7", e.Height())
	}
	if _, ok, err := e.Get(installAddr(0)); err != nil || ok {
		t.Fatalf("empty engine returned a value: ok=%v err=%v", ok, err)
	}
	if err := e.BeginBlock(8); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(installAddr(0), types.ValueFromUint64(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReadStoreStateMissing reports a fresh directory as non-existent
// durable state.
func TestReadStoreStateMissing(t *testing.T) {
	st, err := ReadStoreState(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st.Exists {
		t.Fatalf("fresh dir reported as existing: %+v", st)
	}
}

// TestBulkLevelPlacement pins the level-placement rule: the smallest
// level whose natural run size (B·T^i) covers the count.
func TestBulkLevelPlacement(t *testing.T) {
	cases := []struct {
		count        int64
		memCap, rati int
		want         int
	}{
		{1, 64, 4, 0},
		{64, 64, 4, 0},
		{65, 64, 4, 1},
		{256, 64, 4, 1},
		{257, 64, 4, 2},
		{1024, 64, 4, 2},
		{100_000, 4096, 4, 3},
	}
	for _, c := range cases {
		if got := bulkLevel(c.count, c.memCap, c.rati); got != c.want {
			t.Errorf("bulkLevel(%d, %d, %d) = %d, want %d", c.count, c.memCap, c.rati, got, c.want)
		}
	}
}

// TestHistoricalRootRecordsAndPersists: every commit lands in the root
// history, the ring trims to Options.RootHistory, and the persisted tail
// survives a reopen.
func TestHistoricalRootRecordsAndPersists(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, MemCapacity: 16, RootHistory: 8}
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	roots := map[uint64]types.Hash{}
	for b := uint64(1); b <= 20; b++ {
		if err := e.BeginBlock(b); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 5; w++ {
			if err := e.Put(installAddr(w), types.ValueFromUint64(b*10+uint64(w))); err != nil {
				t.Fatal(err)
			}
		}
		root, err := e.Commit()
		if err != nil {
			t.Fatal(err)
		}
		roots[b] = root
	}
	for b := uint64(13); b <= 20; b++ {
		got, ok := e.HistoricalRoot(b)
		if !ok || got != roots[b] {
			t.Fatalf("HistoricalRoot(%d): ok=%v", b, ok)
		}
	}
	if _, ok := e.HistoricalRoot(12); ok {
		t.Fatal("height 12 should have aged out of an 8-deep history")
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for b := uint64(13); b <= 20; b++ {
		got, ok := e2.HistoricalRoot(b)
		if !ok || got != roots[b] {
			t.Fatalf("HistoricalRoot(%d) after reopen: ok=%v", b, ok)
		}
	}
}
