package core

import (
	"net/http/httptest"
	"strings"
	"testing"

	"cole/internal/obs"
	"cole/internal/types"
)

// TestOpHistogramsRecorded checks that the always-on operation histograms
// observe every public read/write path and surface through Stats.
func TestOpHistogramsRecorded(t *testing.T) {
	e := openEngine(t, testOpts(t, true))
	o := newOracle()
	runWorkload(t, e, o, 1, 30, 8, 64)

	// One batched block through PutBatch, so that histogram fills too.
	h := e.Height() + 1
	if err := e.BeginBlock(h); err != nil {
		t.Fatal(err)
	}
	batch := []Update{
		{Addr: types.AddressFromUint64(1), Value: types.ValueFromUint64(9)},
	}
	if err := e.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := e.Get(types.AddressFromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetBatch([]types.Address{types.AddressFromUint64(1), types.AddressFromUint64(2)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ProvQuery(types.AddressFromUint64(1), 1, e.Height()); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Hist == nil {
		t.Fatal("Stats.Hist is nil")
	}
	if got, want := st.Hist.Commit.Count(), st.Commits; got != want {
		t.Fatalf("commit histogram count %d, committed blocks %d", got, want)
	}
	if st.Hist.PutBatch.Count() == 0 {
		t.Fatal("PutBatch histogram empty after a batched block")
	}
	if st.Hist.Get.Count() == 0 {
		t.Fatal("Get histogram empty after point lookups")
	}
	if st.Hist.GetBatch.Count() != 1 {
		t.Fatalf("GetBatch histogram records whole batches, want 1, got %d", st.Hist.GetBatch.Count())
	}
	if st.Hist.Prov.Count() != 1 {
		t.Fatalf("Prov histogram count %d, want 1", st.Hist.Prov.Count())
	}
	// The snapshot is detached from the live engine.
	before := st.Hist.Get.Count()
	if _, _, err := e.Get(types.AddressFromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if st.Hist.Get.Count() != before {
		t.Fatal("Stats.Hist must be a snapshot, not a live reference")
	}
}

// TestTraceEventsMatchCounters drives a merge-heavy traced workload and
// checks the structural invariants the CI smoke job also relies on: paired
// start/end events, and trace event counts that equal the engine's own
// counters for commits, pacing sleeps, and preemptions.
func TestTraceEventsMatchCounters(t *testing.T) {
	tr := obs.NewTracer(obs.DefaultTraceEvents)
	opts := testOpts(t, true)
	opts.MemCapacity = 16
	opts.MergeChunk = 8
	opts.PacingTarget = 1
	opts.Trace = tr
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 2, 120, 8, 256)
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if tr.Dropped() != 0 {
		t.Fatalf("tracer dropped %d events; capacity too small for this workload", tr.Dropped())
	}
	if st.TraceDropped != 0 {
		t.Fatalf("Stats.TraceDropped = %d, tracer dropped 0", st.TraceDropped)
	}
	if got := tr.CountType(obs.EvCommit); got != st.Commits {
		t.Fatalf("commit events %d, Stats.Commits %d", got, st.Commits)
	}
	if got := tr.CountType(obs.EvPace); got != st.PaceSleeps {
		t.Fatalf("pace events %d, Stats.PaceSleeps %d", got, st.PaceSleeps)
	}
	if got := tr.CountType(obs.EvMergePreempt); got != st.Preemptions {
		t.Fatalf("preempt events %d, Stats.Preemptions %d", got, st.Preemptions)
	}
	for _, pair := range []struct {
		name       string
		start, end obs.EventType
	}{
		{"flush", obs.EvFlushStart, obs.EvFlushEnd},
		{"merge", obs.EvMergeStart, obs.EvMergeEnd},
		{"span", obs.EvSpanStart, obs.EvSpanEnd},
	} {
		s, en := tr.CountType(pair.start), tr.CountType(pair.end)
		if s != en {
			t.Fatalf("%s: %d start events vs %d end events", pair.name, s, en)
		}
	}
	if tr.CountType(obs.EvFlushEnd) == 0 {
		t.Fatal("no flush events despite MemCapacity=16 over 120 blocks")
	}
	if got := tr.CountType(obs.EvViewPublish); got < st.Commits {
		t.Fatalf("view publishes %d < commits %d", got, st.Commits)
	}
	if tr.CountType(obs.EvManifest) == 0 {
		t.Fatal("no manifest write events")
	}
}

// TestUntracedEngineRecordsNothing is the overhead guard: with Options.Trace
// nil the tracer pointer stays nil and no events exist anywhere to observe.
func TestUntracedEngineRecordsNothing(t *testing.T) {
	e := openEngine(t, testOpts(t, true))
	o := newOracle()
	runWorkload(t, e, o, 3, 20, 4, 32)
	if e.tr != nil {
		t.Fatal("engine acquired a tracer without Options.Trace")
	}
	if st := e.Stats(); st.TraceDropped != 0 {
		t.Fatalf("TraceDropped = %d on an untraced engine", st.TraceDropped)
	}
}

// TestMetricsExposition opens an engine, runs a workload, and scrapes the
// shared obs handler: every engine registers itself on Open, so the text
// exposition must cover its counters and histograms, labeled by store.
func TestMetricsExposition(t *testing.T) {
	opts := testOpts(t, true)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 4, 20, 8, 64)

	rec := httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics handler returned %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"cole_puts{",
		"cole_commits{",
		"cole_page_reads{",
		"cole_commit_latency_seconds{",
		"cole_commit_latency_seconds_count{",
		"cole_sched_submitted{",
		`store="` + opts.Dir + `"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q\n%s", want, body)
		}
	}

	// Close unregisters: the store's lines must disappear from the scrape.
	e.Close()
	rec = httptest.NewRecorder()
	obs.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), `store="`+opts.Dir+`"`) {
		t.Fatal("closed engine still present in metrics exposition")
	}
}
