package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"cole/internal/merge"
	"cole/internal/types"
)

// TestChunkedMergeMatchesMonolithic drives identical workloads through a
// chunked-preemptible engine and a monolithic one on ONE-worker pools,
// in both merge modes: with a single slot every flush the commit path
// needs contends with every deep merge, so any preemption bug surfaces
// as a deadlock or a digest divergence. Chunking must be invisible in
// the output — byte-identical digests block for block.
func TestChunkedMergeMatchesMonolithic(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			optsChunked := testOpts(t, async)
			optsChunked.MergeWorkers = 1
			optsChunked.MergeChunk = 8 // checkpoint every 8 entries: maximal interleaving
			optsMono := testOpts(t, async)
			optsMono.MergeWorkers = 1
			optsMono.MergeChunk = -1 // monolithic merges
			ec := openEngine(t, optsChunked)
			em := openEngine(t, optsMono)
			const blocks, writes, accounts = 100, 12, 60
			for h := uint64(1); h <= blocks; h++ {
				batch := batchFor(h, writes, accounts)
				for _, e := range []*Engine{ec, em} {
					if err := e.BeginBlock(h); err != nil {
						t.Fatal(err)
					}
					if err := e.PutBatch(batch); err != nil {
						t.Fatal(err)
					}
				}
				rc, err := ec.Commit()
				if err != nil {
					t.Fatal(err)
				}
				rm, err := em.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if rc != rm {
					t.Fatalf("block %d: chunked digest %s != monolithic digest %s", h, rc, rm)
				}
			}
			if got := em.Stats().Preemptions; got != 0 {
				t.Fatalf("monolithic engine recorded %d preemptions", got)
			}
		})
	}
}

// TestFlushPreemptsChunkedDeepMerge is the engine-level preemption-lane
// regression: the merge pool's ONLY slot is occupied by a chunked
// deep-lane job that spins until the engine records a preemption, and a
// commit that needs an L0 flush is issued against it. Without priority
// lanes + Preempt the flush could never run and the commit would hang;
// with them the job's first checkpoint hands the slot over. The
// commit completing at all is the assertion — plus the preemption
// showing up in Stats.
func TestFlushPreemptsChunkedDeepMerge(t *testing.T) {
	opts := testOpts(t, true)
	opts.MergeWorkers = 1
	e := openEngine(t, opts)

	// Occupy the only slot with a stand-in for a long deep merge: it
	// checkpoints (Preempt) in a loop, exactly like a chunked merge's
	// iterator does between chunks, and exits once a handoff happened.
	deepDone := make(chan struct{})
	deepStarted := make(chan struct{})
	e.Scheduler().Submit(func() {
		defer close(deepDone)
		close(deepStarted)
		// Bounded spin: the stats assertion below fails the test if the
		// valve ever runs out without a preemption.
		for i := 0; i < 200000; i++ {
			if e.Scheduler().Preempt(merge.PriorityDeep, nil) {
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}, merge.PriorityDeep, nil)
	<-deepStarted

	// Fill L0 exactly to capacity and commit: the cascade submits a
	// flush (PriorityFlush) that must overtake the running deep job.
	if err := e.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < opts.MemCapacity; i++ {
		if err := e.Put(types.AddressFromUint64(uint64(i)), types.ValueFromUint64(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	// The cascade started the flush in the background (async mode); it
	// can only finish if the deep job yielded its slot. FlushAll joins it.
	done := make(chan error, 1)
	go func() { done <- e.FlushAll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("flush never ran: the deep job did not yield the pool's only slot")
	}
	<-deepDone
	if st := e.Scheduler().Stats(); st.Preempted == 0 {
		t.Fatal("no preemption recorded although a flush was queued behind a deep job")
	}
}

// TestPaceDelayMonotone checks the pacing curve's contract: zero debt is
// free, delay never decreases as debt grows, and the cap bounds it.
func TestPaceDelayMonotone(t *testing.T) {
	const target = int64(1 << 20)
	if d := paceDelay(0, target); d != 0 {
		t.Fatalf("paceDelay(0) = %v, want 0", d)
	}
	if d := paceDelay(123, 0); d != 0 {
		t.Fatalf("paceDelay with pacing disabled = %v, want 0", d)
	}
	debts := make([]int64, 0, 1000)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		debts = append(debts, r.Int63n(64*target))
	}
	sort.Slice(debts, func(i, j int) bool { return debts[i] < debts[j] })
	prev := time.Duration(-1)
	for _, debt := range debts {
		d := paceDelay(debt, target)
		if d < prev {
			t.Fatalf("paceDelay not monotone: debt %d -> %v after %v", debt, d, prev)
		}
		if d > paceMaxDelay {
			t.Fatalf("paceDelay(%d) = %v exceeds cap %v", debt, d, paceMaxDelay)
		}
		prev = d
	}
	if d := paceDelay(target, target); d != paceFullDelay {
		t.Fatalf("paceDelay(target) = %v, want full delay %v", d, paceFullDelay)
	}
	if d := paceDelay(1<<62, target); d != paceMaxDelay {
		t.Fatalf("paceDelay(huge) = %v, want cap %v", d, paceMaxDelay)
	}
}

// TestPacingBackpressure pins the merge pool's only slot so a cascade's
// L0 flush provably stays in flight, then checks the debt is visible and
// that a paced engine charges PaceNanos on the next writes — while an
// idle (zero-debt) paced engine charges nothing.
func TestPacingBackpressure(t *testing.T) {
	opts := testOpts(t, true)
	opts.MergeWorkers = 1
	opts.PacingTarget = 1 // any debt is over target: max backpressure
	e := openEngine(t, opts)

	// Zero debt ⇒ zero delay: commits before any cascade pace nothing.
	if err := e.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	if err := e.PutBatch([]Update{{Addr: types.AddressFromUint64(1), Value: types.ValueFromUint64(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PaceNanos != 0 {
		t.Fatalf("paced %dns with zero compaction debt", st.PaceNanos)
	}

	// Hold the pool's only slot so the upcoming flush cannot start. The
	// gate must open even if an assertion below fails, or the engine's
	// Close cleanup would wait on the pinned merge forever.
	gate := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(releaseGate)
	started := make(chan struct{})
	e.Scheduler().Submit(func() { close(started); <-gate }, merge.PriorityDeep, nil)
	<-started

	// Fill L0 to capacity; the commit cascades and hands the merging
	// group to a flush that is now provably queued: debt is deterministic.
	if err := e.BeginBlock(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < opts.MemCapacity; i++ {
		if err := e.Put(types.AddressFromUint64(uint64(i)), types.ValueFromUint64(2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	// Block 1's lone entry rode along into the merging group, so the
	// in-flight flush carries MemCapacity+1 entries.
	wantDebt := int64(opts.MemCapacity+1) * types.EntrySize
	if debt := e.CompactionDebt(); debt != wantDebt {
		t.Fatalf("compaction debt = %d, want the in-flight flush volume %d", debt, wantDebt)
	}

	// The next block's writes absorb backpressure.
	if err := e.BeginBlock(3); err != nil {
		t.Fatal(err)
	}
	if err := e.PutBatch([]Update{{Addr: types.AddressFromUint64(1), Value: types.ValueFromUint64(3)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.PaceNanos == 0 {
		t.Fatal("no pacing delay charged while compaction debt was outstanding")
	}

	releaseGate()
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if debt := e.CompactionDebt(); debt != 0 {
		t.Fatalf("compaction debt %d after FlushAll, want 0", debt)
	}
}

// TestPipelinedCommitDeterminism runs ≥60 cascading blocks through a
// pipelined engine and an unpipelined one, in both merge modes: every
// block's header digest must be byte-identical (pipelining moves only
// WHEN the manifest bytes and retirements hit disk, never WHAT), commit
// tail stats must be recorded, and the pipelined store must reopen from
// its deferred manifests with the same root.
func TestPipelinedCommitDeterminism(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			optsP := testOpts(t, async)
			optsP.PipelinedCommit = true
			optsU := testOpts(t, async)
			ep, err := Open(optsP)
			if err != nil {
				t.Fatal(err)
			}
			eu := openEngine(t, optsU)
			const blocks, writes, accounts = 80, 12, 40
			for h := uint64(1); h <= blocks; h++ {
				batch := batchFor(h, writes, accounts)
				for _, e := range []*Engine{ep, eu} {
					if err := e.BeginBlock(h); err != nil {
						t.Fatal(err)
					}
					if err := e.PutBatch(batch); err != nil {
						t.Fatal(err)
					}
				}
				rp, err := ep.Commit()
				if err != nil {
					t.Fatal(err)
				}
				ru, err := eu.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if rp != ru {
					t.Fatalf("block %d: pipelined digest %s != unpipelined digest %s", h, rp, ru)
				}
			}
			st := ep.Stats()
			if st.Commits != blocks {
				t.Fatalf("Commits = %d, want %d", st.Commits, blocks)
			}
			if st.CommitNanos <= 0 || st.MaxCommitNanos <= 0 || st.MaxCommitNanos > st.CommitNanos {
				t.Fatalf("implausible commit tail stats: total=%d max=%d", st.CommitNanos, st.MaxCommitNanos)
			}
			if err := ep.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := eu.FlushAll(); err != nil {
				t.Fatal(err)
			}
			// FlushAll may regroup L0 into runs (Hstate-preserving in sync
			// mode, Hstate-shifting in async where the merging-group root
			// leaves the list), but both engines must agree on the result.
			postFlush := ep.RootDigest()
			if pu := eu.RootDigest(); postFlush != pu {
				t.Fatalf("post-flush pipelined digest %s != unpipelined %s", postFlush, pu)
			}
			if err := ep.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen: the deferred manifests must have landed coherently.
			ep2, err := Open(optsP)
			if err != nil {
				t.Fatal(err)
			}
			defer ep2.Close()
			if got := ep2.RootDigest(); got != postFlush {
				t.Fatalf("reopened pipelined digest %s != post-flush digest %s", got, postFlush)
			}
		})
	}
}

// TestPipelinedCommitCrashReplay crashes a pipelined engine (Close
// without FlushAll) mid-stream and replays from the recovered
// checkpoint: the deferred manifest writes must never leave the store
// unable to reproduce its pre-crash digest.
func TestPipelinedCommitCrashReplay(t *testing.T) {
	opts := testOpts(t, true)
	opts.PipelinedCommit = true
	e, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const blocks, writes, accounts = 61, 10, 30
	var pre types.Hash
	for h := uint64(1); h <= blocks; h++ {
		if err := e.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := e.PutBatch(batchFor(h, writes, accounts)); err != nil {
			t.Fatal(err)
		}
		if pre, err = e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil { // crash: L0 lost
		t.Fatal(err)
	}
	e2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for h := e2.CheckpointHeight() + 1; h <= blocks; h++ {
		if err := e2.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := e2.PutBatch(batchFor(h, writes, accounts)); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := e2.RootDigest(); got != pre {
		t.Fatalf("replayed digest %s != pre-crash digest %s", got, pre)
	}
}

// TestSortedBatchIdentityAndFormat checks the two sides of the sorted
// bulk-load contract: (1) a SortedBatch engine's digests equal those of
// an engine fed the same deduped updates through a sequential Put loop
// in sorted order — the bulk path is a pure speedup over sorted
// insertion; (2) the setting is a format bit — reopening the store with
// the other value must fail.
func TestSortedBatchIdentityAndFormat(t *testing.T) {
	optsS := testOpts(t, true)
	optsS.SortedBatch = true
	es, err := Open(optsS)
	if err != nil {
		t.Fatal(err)
	}
	eo := openEngine(t, testOpts(t, true)) // oracle: sequential sorted Puts
	const blocks, writes, accounts = 80, 12, 40
	for h := uint64(1); h <= blocks; h++ {
		batch := batchFor(h, writes, accounts)
		// The oracle applies the batch the way the fast path promises to:
		// last-write-wins dedup, then ascending address order.
		dedup := map[types.Address]types.Value{}
		var order []types.Address
		for _, u := range batch {
			if _, seen := dedup[u.Addr]; !seen {
				order = append(order, u.Addr)
			}
			dedup[u.Addr] = u.Value
		}
		sort.Slice(order, func(i, j int) bool {
			ki := types.CompoundKey{Addr: order[i], Blk: h}
			kj := types.CompoundKey{Addr: order[j], Blk: h}
			return ki.Less(kj)
		})
		if err := es.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := es.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := eo.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		for _, a := range order {
			if err := eo.Put(a, dedup[a]); err != nil {
				t.Fatal(err)
			}
		}
		rs, err := es.Commit()
		if err != nil {
			t.Fatal(err)
		}
		ro, err := eo.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if rs != ro {
			t.Fatalf("block %d: SortedBatch digest %s != sorted sequential-Put digest %s", h, rs, ro)
		}
	}
	if err := es.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := es.Close(); err != nil {
		t.Fatal(err)
	}
	// Format check: the manifest records sorted_batch and rejects a
	// mismatched reopen in either direction.
	optsMismatch := optsS
	optsMismatch.SortedBatch = false
	if _, err := Open(optsMismatch); err == nil {
		t.Fatal("reopening a sorted_batch store with SortedBatch=false succeeded")
	}
	es2, err := Open(optsS)
	if err != nil {
		t.Fatal(err)
	}
	es2.Close()
}
