package core

import (
	"encoding/json"
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"

	"cole/internal/run"
	"cole/internal/types"
	"cole/internal/vfs"
)

// This file is the engine's offline install surface: reading the durable
// structural state of an engine directory without opening an Engine (no
// orphan sweep, no background-merge restart, no file mutation at all),
// and bulk-building a fresh engine directory from a sorted entry stream.
// Both are the primitives behind internal/reshard, which rewrites a live
// store to a different shard count by streaming every source shard and
// installing the destination shards directly.

// StoreState is the durable structural state of an engine directory as
// recorded by its manifest.
type StoreState struct {
	// Exists reports whether the directory holds a manifest at all; a
	// fresh or never-cascaded engine has none, and every other field is
	// zero.
	Exists bool
	// Height is the block height of the cascade that wrote the manifest.
	Height uint64
	// Replay is the recovery point — and therefore the exact horizon of
	// the durable data: every committed run holds only entries with block
	// heights ≤ Replay, and blocks above it must be re-executed after
	// reopening. An offline rewrite of the directory preserves precisely
	// the state a reopen would serve by copying data at this horizon.
	Replay uint64
	// Async, SizeRatio, and Fanout are the creation parameters pinned by
	// the manifest; a reopen must match them.
	Async     bool
	SizeRatio int
	Fanout    int
	// RunIDs lists every committed run (all levels, both groups).
	RunIDs []uint64
	// NextRunID is the engine's run-id allocator watermark.
	NextRunID uint64
}

// ReadStoreState loads an engine directory's manifest without opening the
// engine. A directory with no manifest (a fresh or never-cascaded engine)
// yields a zero state with no runs, which is a valid empty source.
func ReadStoreState(dir string) (*StoreState, error) {
	return ReadStoreStateFS(vfs.OS{}, dir)
}

// ReadStoreStateFS is ReadStoreState on an explicit filesystem.
func ReadStoreStateFS(fsys vfs.FS, dir string) (*StoreState, error) {
	raw, err := vfs.OrOS(fsys).ReadFile(filepath.Join(dir, "MANIFEST"))
	if errors.Is(err, iofs.ErrNotExist) {
		return &StoreState{}, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("core: corrupt manifest in %s: %w", dir, err)
	}
	st := &StoreState{
		Exists:    true,
		Height:    m.Height,
		Replay:    m.Replay,
		Async:     m.Async,
		SizeRatio: m.SizeRatio,
		Fanout:    m.Fanout,
		NextRunID: m.NextRunID,
	}
	for _, ls := range m.Levels {
		for g := 0; g < 2; g++ {
			st.RunIDs = append(st.RunIDs, ls.Groups[g]...)
		}
	}
	return st, nil
}

// bulkLevel places a bulk-built run of `count` entries at the on-disk
// level whose natural run size covers it: L1 runs hold one flushed L0
// group (B entries) and each deeper level multiplies by the size ratio T,
// so the returned index i (0 = L1) is the smallest with B·T^i ≥ count.
// An undersized run at a deep level only affects level occupancy, never
// correctness (same argument as FlushAll's small final runs).
func bulkLevel(count int64, memCap, ratio int) int {
	c := int64(memCap)
	idx := 0
	for c < count {
		c *= int64(ratio)
		idx++
	}
	return idx
}

// InstallBulk builds a complete engine directory from a sorted entry
// stream: one bottom-level run (value + learned-index + Merkle + Bloom
// files, exactly as a level merge would write them) and a manifest
// recording it at height `height` with an empty replay window
// (Replay = Height — the installed state is fully durable). count must
// equal the number of entries src yields; a zero count installs a valid
// empty engine. The directory must not already hold an engine.
//
// The install starts a fresh root-history epoch: the manifest carries no
// historical roots, because digests recorded under a different partition
// count do not combine into the new store's headers.
func InstallBulk(opts Options, height uint64, count int64, src run.Iterator) error {
	return InstallBulkFrom(opts, height, count, func(dir string, id uint64, params run.Params) (*run.Run, error) {
		r, err := run.Build(dir, id, count, params, src)
		if err != nil {
			// A source iterator that died mid-stream surfaces as a count
			// mismatch inside Build; report the underlying I/O error.
			if ei, ok := src.(run.ErrIterator); ok && ei.Err() != nil {
				return nil, ei.Err()
			}
			return nil, err
		}
		return r, nil
	})
}

// BuildFunc builds the single bottom-level run of a bulk install at the
// given directory/id/params and returns it opened.
type BuildFunc func(dir string, id uint64, params run.Params) (*run.Run, error)

// InstallBulkFrom is InstallBulk with the run construction delegated to
// the caller: reshard uses it to build the destination run partitioned
// by key range (run.BuildPartitioned) instead of from one sequential
// iterator. The build must produce exactly count entries.
func InstallBulkFrom(opts Options, height uint64, count int64, build BuildFunc) error {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return err
	}
	if count < 0 {
		return fmt.Errorf("core: negative entry count %d", count)
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return err
	}
	if _, err := opts.FS.Stat(filepath.Join(opts.Dir, "MANIFEST")); err == nil {
		return fmt.Errorf("core: %s already holds an engine", opts.Dir)
	}
	m := manifest{
		Height:     height,
		Replay:     height,
		NextRunID:  0,
		MemWriting: 0,
		Async:      opts.AsyncMerge,
		SizeRatio:  opts.SizeRatio,
		Fanout:     opts.Fanout,
	}
	if count > 0 {
		r, err := build(opts.Dir, 0, opts.runParams())
		if err != nil {
			return fmt.Errorf("core: bulk run build: %w", err)
		}
		if r.Count() != count {
			_ = r.Close()
			return fmt.Errorf("core: bulk run holds %d entries, expected %d", r.Count(), count)
		}
		if err := r.Close(); err != nil {
			return err
		}
		m.NextRunID = 1
		li := bulkLevel(count, opts.MemCapacity, opts.SizeRatio)
		for i := 0; i <= li; i++ {
			ls := levelState{Groups: [2][]uint64{{}, {}}}
			if i == li {
				ls.Groups[0] = []uint64{0}
			}
			m.Levels = append(m.Levels, ls)
		}
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	// Durable replace: a bulk install's manifest is its commit point
	// (reshard renames the whole tree into place right after this).
	return vfs.WriteFileAtomic(opts.FS, filepath.Join(opts.Dir, "MANIFEST"), raw, 0o644)
}

// Entries streams every live entry of the pinned view — the frozen L0
// snapshots plus every committed run — in globally sorted compound-key
// order, k-way merged. The iterator is valid until the snapshot is
// Released (the pin keeps retired run files alive while the export is in
// flight), so a consistent full export can run concurrently with commits
// and merges. Check Err after exhaustion for run-file read failures.
func (s *Snapshot) Entries() *run.MergeIterator {
	var its []run.Iterator
	for _, m := range s.v.mems {
		entries := make([]types.Entry, 0, m.tree.Size())
		_ = m.tree.ForEach(func(e types.Entry) error {
			entries = append(entries, e)
			return nil
		})
		its = append(its, run.NewSliceIterator(entries))
	}
	for _, rr := range s.v.runs {
		its = append(its, rr.r.Iter())
	}
	return run.Merge(its...)
}

// EntryCount returns the number of entries Entries will yield: the sum
// of the pinned L0 snapshot sizes and the committed run counts.
func (s *Snapshot) EntryCount() int64 {
	var n int64
	for _, m := range s.v.mems {
		n += int64(m.tree.Size())
	}
	for _, rr := range s.v.runs {
		n += rr.r.Count()
	}
	return n
}
