package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"cole/internal/run"
	"cole/internal/types"
)

// runFilesOnDisk counts run-* files in a store directory.
func runFilesOnDisk(t *testing.T, dir string) map[string]bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "run-") {
			out[de.Name()] = true
		}
	}
	return out
}

func commitBlocks(t *testing.T, e *Engine, from, to uint64, addrs int) {
	t.Helper()
	for h := from; h <= to; h++ {
		if err := e.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		for a := 0; a < addrs; a++ {
			if err := e.Put(types.AddressFromUint64(uint64(a)), types.ValueFromUint64(h*1000+uint64(a))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotIsolation: reads observe the last committed block, never
// the writes of the block still being built, and a pinned Snapshot keeps
// observing its height while newer blocks commit.
func TestSnapshotIsolation(t *testing.T) {
	for _, async := range []bool{false, true} {
		opts := testOpts(t, async)
		opts.MemCapacity = 16
		e := openEngine(t, opts)
		addr := types.AddressFromUint64(1)

		commitBlocks(t, e, 1, 5, 4)
		// Open block 6: its writes must be invisible until Commit.
		if err := e.BeginBlock(6); err != nil {
			t.Fatal(err)
		}
		if err := e.Put(addr, types.ValueFromUint64(9999)); err != nil {
			t.Fatal(err)
		}
		v, ok, err := e.Get(addr)
		if err != nil || !ok {
			t.Fatalf("async=%v get: %v %v", async, ok, err)
		}
		if v.Uint64() == 9999 {
			t.Fatalf("async=%v read observed an uncommitted write", async)
		}
		if v.Uint64() != 5001 {
			t.Fatalf("async=%v read %d, want last committed 5001", async, v.Uint64())
		}

		snap := e.Snapshot()
		if snap.Height() != 5 {
			t.Fatalf("async=%v snapshot height %d, want 5", async, snap.Height())
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
		commitBlocks(t, e, 7, 12, 4)

		// The live view moved on; the pinned snapshot did not.
		if v, _, _ := e.Get(addr); v.Uint64() != 12001 {
			t.Fatalf("async=%v live read %d, want 12001", async, v.Uint64())
		}
		if v, _, _ := snap.Get(addr); v.Uint64() != 5001 {
			t.Fatalf("async=%v snapshot read %d, want 5001", async, v.Uint64())
		}
		// Provenance through the snapshot verifies against the snapshot's
		// pinned root, not the live one.
		versions, proof, err := snap.ProvQuery(addr, 1, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(versions) != 5 {
			t.Fatalf("async=%v snapshot sees %d versions, want 5", async, len(versions))
		}
		if _, err := VerifyProv(snap.Root(), addr, 1, 20, proof); err != nil {
			t.Fatalf("async=%v snapshot proof: %v", async, err)
		}
		snap.Release()
		snap.Release() // idempotent
		e.Close()
	}
}

// TestSnapshotPinnedAcrossFirstCascade: a snapshot pinned while no L0
// merge is pending (after Open, and again after FlushAll) shares the
// merging-slot group with the engine; the first cascade must not promote
// that shared object to the writing role and mutate it under the
// reader. The snapshot is read continuously from another goroutine while
// commits drive the cascade — under -race this catches any in-place
// mutation of a published group, and the value check catches a reader
// observing writes committed after the snapshot's height.
func TestSnapshotPinnedAcrossFirstCascade(t *testing.T) {
	opts := testOpts(t, true)
	opts.MemCapacity = 16
	e := openEngine(t, opts)
	addr := types.AddressFromUint64(1)

	readAcrossCascade := func(from, to uint64) {
		t.Helper()
		want := (from-1)*1000 + 1 // addr 1's value at the pinned height
		snap := e.Snapshot()
		pinned := snap.Height()
		if pinned != from-1 {
			t.Fatalf("snapshot height %d, want %d", pinned, from-1)
		}
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					done <- nil
					return
				default:
				}
				v, ok, err := snap.Get(addr)
				if err != nil || !ok || v.Uint64() != want {
					done <- fmt.Errorf("pinned snapshot read v=%v ok=%v err=%v, want %d", v, ok, err, want)
					return
				}
				// Addresses 4–7 miss the pinned writing-group snapshot
				// (the pre-pin blocks only wrote 0–3), so these lookups
				// walk into the shared merging group — the object the
				// broken promotion would hand to the writer.
				for a := uint64(4); a < 8; a++ {
					_, blk, ok, err := snap.GetAt(types.AddressFromUint64(a), types.MaxBlock)
					if err != nil {
						done <- err
						return
					}
					if ok && blk > pinned {
						done <- fmt.Errorf("snapshot observed addr %d written at block %d > pinned height %d", a, blk, pinned)
						return
					}
				}
			}
		}()
		// 8 distinct addrs per block with MemCapacity 16: the first cascade
		// fires two blocks in, and several more follow.
		commitBlocks(t, e, from, to, 8)
		close(stop)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		snap.Release()
	}

	commitBlocks(t, e, 1, 2, 4) // committed state, no cascade yet
	readAcrossCascade(3, 20)    // first cascade after Open

	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	commitBlocks(t, e, 21, 22, 4) // no cascade yet after the flush
	readAcrossCascade(23, 40)     // first cascade after FlushAll
	e.Close()
}

// TestCommitDigestMatchesViewRoot: the digest Commit returns is exactly
// the published view's root (and the root a fresh Snapshot reports).
func TestCommitDigestMatchesViewRoot(t *testing.T) {
	for _, async := range []bool{false, true} {
		opts := testOpts(t, async)
		opts.MemCapacity = 8
		e := openEngine(t, opts)
		for h := uint64(1); h <= 30; h++ {
			if err := e.BeginBlock(h); err != nil {
				t.Fatal(err)
			}
			if err := e.Put(types.AddressFromUint64(h%5), types.ValueFromUint64(h)); err != nil {
				t.Fatal(err)
			}
			root, err := e.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if vr := e.ViewRoot(); vr != root {
				t.Fatalf("async=%v h=%d: view root %x != commit digest %x", async, h, vr, root)
			}
			snap := e.Snapshot()
			if snap.Root() != root || snap.Height() != h {
				t.Fatalf("async=%v h=%d: snapshot root/height mismatch", async, h)
			}
			snap.Release()
			if rd := e.RootDigest(); rd != root {
				t.Fatalf("async=%v h=%d: live RootDigest drifted from commit digest", async, h)
			}
		}
		e.Close()
	}
}

// TestRetiredRunsReclaimedAfterRelease: a merge retires source runs; as
// long as a snapshot from before the merge is pinned, their files stay on
// disk and remain readable through the snapshot (no use-after-delete);
// the last release unlinks them.
func TestRetiredRunsReclaimedAfterRelease(t *testing.T) {
	opts := testOpts(t, false)
	opts.MemCapacity = 8
	opts.SizeRatio = 2
	e := openEngine(t, opts)
	addr := types.AddressFromUint64(1)

	commitBlocks(t, e, 1, 8, 8) // one flush: run set v1
	before := runFilesOnDisk(t, opts.Dir)
	if len(before) == 0 {
		t.Fatal("no runs on disk after first cascade")
	}
	snap := e.Snapshot()

	// Drive enough cascades to merge the v1 runs away.
	commitBlocks(t, e, 9, 40, 8)
	after := runFilesOnDisk(t, opts.Dir)
	retiredStill := 0
	for f := range before {
		if after[f] {
			retiredStill++
		}
	}
	if retiredStill == 0 {
		t.Fatal("files of runs pinned by a snapshot were removed while the snapshot was live")
	}
	// The snapshot still reads its frozen state from those files.
	if v, ok, err := snap.Get(addr); err != nil || !ok || v.Uint64() != 8001 {
		t.Fatalf("pinned snapshot read: v=%v ok=%v err=%v", v, ok, err)
	}
	snap.Release()

	final := runFilesOnDisk(t, opts.Dir)
	for f := range before {
		if final[f] && !currentlyReferenced(t, e, f) {
			t.Fatalf("retired run file %s not reclaimed after the last release", f)
		}
	}
	e.Close()
}

// currentlyReferenced reports whether a run file name belongs to a run
// still in the engine structure.
func currentlyReferenced(t *testing.T, e *Engine, name string) bool {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	found := false
	e.forEachRunLocked(func(rr *runRef) bool {
		for _, f := range run.Files(rr.r.ID) {
			if f == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// TestBloomSkipsCounted: looking up an address absent from every run
// skips each run via its Bloom filter and counts the skips.
func TestBloomSkipsCounted(t *testing.T) {
	opts := testOpts(t, false)
	opts.MemCapacity = 8
	e := openEngine(t, opts)
	commitBlocks(t, e, 1, 16, 8) // several runs on disk
	if n := len(runFilesOnDisk(t, opts.Dir)); n == 0 {
		t.Fatal("expected on-disk runs")
	}
	absent := types.AddressFromUint64(1 << 40)
	if _, ok, err := e.Get(absent); err != nil || ok {
		t.Fatalf("absent address: ok=%v err=%v", ok, err)
	}
	if st := e.Stats(); st.BloomSkips == 0 {
		t.Fatal("Stats.BloomSkips not incremented by a full-miss lookup")
	}
	e.Close()
}

// TestGetBatchMatchesGets: batched reads equal individual reads and are
// served from one consistent view.
func TestGetBatchMatchesGets(t *testing.T) {
	opts := testOpts(t, true)
	opts.MemCapacity = 16
	e := openEngine(t, opts)
	commitBlocks(t, e, 1, 20, 10)

	addrs := make([]types.Address, 12)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(i)) // two are absent (10, 11)
	}
	batch, err := e.GetBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		v, blk, ok, err := e.GetAt(a, types.MaxBlock)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Found != ok || batch[i].Value != v || batch[i].Blk != blk {
			t.Fatalf("addr %d: batch %+v != get (%v,%d,%v)", i, batch[i], v, blk, ok)
		}
	}
	if batch[10].Found || batch[11].Found {
		t.Fatal("absent addresses reported found")
	}
	e.Close()
}
