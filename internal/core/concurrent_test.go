package core

import (
	"math/rand"
	"sync"
	"testing"

	"cole/internal/types"
)

// TestConcurrentReadsDuringWrites hammers Get/GetAt/ProvQuery and pinned
// Snapshots from multiple goroutines while the write path runs blocks and
// merges fire (run under -race in CI), on both COLE (sync merge) and
// COLE* (async merge). Readers must always observe a state consistent
// with some published view: every value returned was actually written,
// every provenance proof verifies against the root of the view that
// produced it, and after the readers quiesce every retired run file has
// been reclaimed (no leaks, no use-after-delete).
func TestConcurrentReadsDuringWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("long concurrency soak; the CI -race job runs it without -short")
	}
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) { concurrentReadSoak(t, async) })
	}
}

func concurrentReadSoak(t *testing.T, async bool) {
	opts := testOpts(t, async)
	opts.MemCapacity = 64
	e := openEngine(t, opts)

	const addrSpace = 30
	var (
		mu      sync.Mutex
		written = make(map[types.Address]map[types.Value]bool)
	)
	record := func(a types.Address, v types.Value) {
		mu.Lock()
		if written[a] == nil {
			written[a] = map[types.Value]bool{}
		}
		written[a][v] = true
		mu.Unlock()
	}
	valid := func(a types.Address, v types.Value) bool {
		mu.Lock()
		defer mu.Unlock()
		return written[a][v]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				addr := types.AddressFromUint64(uint64(r.Intn(addrSpace)))
				switch r.Intn(4) {
				case 0:
					v, ok, err := e.Get(addr)
					if err != nil {
						errs <- err
						return
					}
					if ok && !valid(addr, v) {
						errs <- errPhantom
						return
					}
				case 1:
					if _, _, _, err := e.GetAt(addr, uint64(r.Intn(300)+1)); err != nil {
						errs <- err
						return
					}
				case 2:
					// Pin a snapshot and check its reads and proofs agree
					// with the one published state it froze.
					snap := e.Snapshot()
					h := snap.Height()
					v, ok, err := snap.Get(addr)
					if err != nil {
						snap.Release()
						errs <- err
						return
					}
					if ok && !valid(addr, v) {
						snap.Release()
						errs <- errPhantom
						return
					}
					if h >= 2 {
						versions, proof, err := snap.ProvQuery(addr, 1, h)
						if err != nil {
							snap.Release()
							errs <- err
							return
						}
						if _, err := VerifyProv(snap.Root(), addr, 1, h, proof); err != nil {
							snap.Release()
							errs <- err
							return
						}
						// Within one snapshot, Get must agree with the
						// newest provenance version.
						if ok && len(versions) > 0 && versions[0].Value != v {
							snap.Release()
							errs <- errPhantom
							return
						}
					}
					snap.Release()
				default:
					h := e.Height()
					if h < 2 {
						continue
					}
					lo := uint64(r.Intn(int(h))) + 1
					hi := lo + uint64(r.Intn(20))
					if hi > h {
						hi = h
					}
					if _, _, err := e.ProvQuery(addr, lo, hi); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g + 1))
	}

	// Writer: 300 blocks of 5 puts.
	r := rand.New(rand.NewSource(0))
	for b := uint64(1); b <= 300; b++ {
		if err := e.BeginBlock(b); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 5; p++ {
			a := types.AddressFromUint64(uint64(r.Intn(addrSpace)))
			v := types.ValueFromUint64(r.Uint64())
			record(a, v) // record before Put: readers may see it instantly
			if err := e.Put(a, v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// With every view released, only the files of live (manifest) runs may
	// remain: retired runs must have been reclaimed on release.
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	onDisk := runFilesOnDisk(t, opts.Dir)
	for f := range onDisk {
		if !currentlyReferenced(t, e, f) {
			t.Fatalf("leaked run file %s: on disk but not in the structure", f)
		}
	}
}

var errPhantom = &phantomError{}

type phantomError struct{}

func (*phantomError) Error() string { return "reader observed a value never written" }
