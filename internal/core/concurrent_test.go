package core

import (
	"math/rand"
	"sync"
	"testing"

	"cole/internal/types"
)

// TestConcurrentReadsDuringWrites hammers Get/GetAt/ProvQuery from
// multiple goroutines while the write path runs blocks and background
// merges fire (run under -race in CI). Readers must always see a
// consistent committed state: any value returned for an address must be
// one the workload actually wrote.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("long concurrency soak; the CI -race job runs it without -short")
	}
	opts := testOpts(t, true)
	opts.MemCapacity = 64
	e := openEngine(t, opts)

	const addrSpace = 30
	var (
		mu      sync.Mutex
		written = make(map[types.Address]map[types.Value]bool)
	)
	record := func(a types.Address, v types.Value) {
		mu.Lock()
		if written[a] == nil {
			written[a] = map[types.Value]bool{}
		}
		written[a][v] = true
		mu.Unlock()
	}
	valid := func(a types.Address, v types.Value) bool {
		mu.Lock()
		defer mu.Unlock()
		return written[a][v]
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				addr := types.AddressFromUint64(uint64(r.Intn(addrSpace)))
				switch r.Intn(3) {
				case 0:
					v, ok, err := e.Get(addr)
					if err != nil {
						errs <- err
						return
					}
					if ok && !valid(addr, v) {
						errs <- errPhantom
						return
					}
				case 1:
					if _, _, _, err := e.GetAt(addr, uint64(r.Intn(300)+1)); err != nil {
						errs <- err
						return
					}
				default:
					h := e.Height()
					if h < 2 {
						continue
					}
					lo := uint64(r.Intn(int(h))) + 1
					hi := lo + uint64(r.Intn(20))
					if hi > h {
						hi = h
					}
					if _, _, err := e.ProvQuery(addr, lo, hi); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(g + 1))
	}

	// Writer: 300 blocks of 5 puts.
	r := rand.New(rand.NewSource(0))
	for b := uint64(1); b <= 300; b++ {
		if err := e.BeginBlock(b); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 5; p++ {
			a := types.AddressFromUint64(uint64(r.Intn(addrSpace)))
			v := types.ValueFromUint64(r.Uint64())
			record(a, v) // record before Put: readers may see it instantly
			if err := e.Put(a, v); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

var errPhantom = &phantomError{}

type phantomError struct{}

func (*phantomError) Error() string { return "reader observed a value never written" }
