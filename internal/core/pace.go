package core

import (
	"time"

	"cole/internal/obs"
	"cole/internal/types"
)

// Ingest-aware pacing (Options.PacingTarget).
//
// COLE*'s checkpoint discipline makes commits fast *except* when a
// cascade checkpoint lands on a background merge that has not finished:
// the commit then blocks for the merge's whole remaining runtime
// (commitMerge's slow path, Stats.StallNanos) — a cliff that turns p99.9
// commit latency into seconds while the median stays in microseconds.
// Pacing removes the cliff by charging the wait *incrementally*: while
// the structure owes background work ("compaction debt" — the entry
// bytes of all in-flight merges), every Commit and PutBatch absorbs a
// small delay that grows smoothly with the debt. Ingest slows by a few
// percent exactly when merges are behind, merges catch up before the
// next checkpoint, and the multi-second stall never forms. Delays are
// pure sleeps taken OUTSIDE the engine lock, so paced writers never
// block readers, Stats, or the merge jobs they are yielding to.

const (
	// paceFullDelay is the per-commit delay when debt equals the target.
	paceFullDelay = 2 * time.Millisecond
	// paceMaxDelay caps the per-commit delay however deep the debt gets:
	// backpressure must stay bounded or pacing would reintroduce the very
	// spikes it removes. The cap is deliberately tight — a few times the
	// full-target delay — so a debt spike is amortized across many small
	// per-block sleeps rather than concentrated into one tail-sized one;
	// debt beyond the saturation point slows ingest via repetition, not
	// depth.
	paceMaxDelay = 8 * time.Millisecond
)

// paceDelay maps compaction debt to one commit's backpressure delay.
// Pure and monotone in debt: zero debt ⇒ zero delay, more debt never
// yields less delay, and the quadratic ramp keeps light debt nearly
// free while braking hard as debt approaches (and passes) the target.
func paceDelay(debt, target int64) time.Duration {
	if debt <= 0 || target <= 0 {
		return 0
	}
	r := float64(debt) / float64(target)
	d := time.Duration(r * r * float64(paceFullDelay))
	if d > paceMaxDelay || d < 0 {
		d = paceMaxDelay
	}
	return d
}

// compactionDebtLocked sums the entry bytes of every background merge
// still in flight: the L0 merging group whose flush has not landed, and
// each level's merging group whose sort-merge is still running. Finished
// jobs (done closed, awaiting their commit checkpoint) owe nothing — the
// checkpoint will absorb them without blocking.
func (e *Engine) compactionDebtLocked() int64 {
	var debt int64
	pending := func(ms *mergeState) bool {
		if ms == nil {
			return false
		}
		select {
		case <-ms.done:
			return false
		default:
			return true
		}
	}
	if pending(e.memMerge) {
		debt += int64(e.mem[1-e.memWriting].tree.Size()) * types.EntrySize
	}
	for _, lv := range e.levels {
		if pending(lv.merge) {
			for _, rr := range lv.groups[lv.merging()] {
				debt += rr.r.Count() * types.EntrySize
			}
		}
	}
	return debt
}

// CompactionDebt reports the current in-flight background merge volume
// in bytes (the quantity pacing is driven by), for introspection, the
// stall benchmark, and tests.
func (e *Engine) CompactionDebt() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compactionDebtLocked()
}

// pace absorbs one unit of ingest backpressure scaled by weight (1 for a
// commit, fraction-of-a-block for a partial batch). The debt probe takes
// the lock briefly; the sleep itself runs unlocked and is accounted in
// Stats.PaceNanos.
func (e *Engine) pace(weight float64) {
	if e.opts.PacingTarget <= 0 || weight <= 0 {
		return
	}
	e.mu.Lock()
	debt := e.compactionDebtLocked()
	e.mu.Unlock()
	d := paceDelay(debt, e.opts.PacingTarget)
	if weight < 1 {
		d = time.Duration(float64(d) * weight)
	}
	if d <= 0 {
		return
	}
	time.Sleep(d)
	e.paceNanos.Add(int64(d))
	e.paceSleeps.Add(1)
	if e.tr != nil {
		e.trace(obs.EvPace, -1, debt, 0, d)
	}
}
