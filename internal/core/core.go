// Package core implements the COLE storage engine — the paper's primary
// contribution (§3–§6).
//
// COLE stores each ledger state as a "column": every historical version of
// an address is a compound key ⟨addr, blk⟩ appended to an LSM-organized
// store. The in-memory level L0 is a Merkle B+-tree; each on-disk level
// holds sorted runs indexed by learned models and authenticated by m-ary
// Merkle files (package run). The root digest Hstate commits the L0 root(s)
// and every committed run digest (root_hash_list).
//
// Two write strategies are provided, selected by Options.AsyncMerge:
//
//   - COLE (synchronous, Algorithm 1): a full L0 flushes into L1; a full
//     level sort-merges into the next, recursively, inline.
//   - COLE* (asynchronous, §5, Algorithm 5): every level holds a writing
//     and a merging group; merges run in background goroutines between two
//     deterministic checkpoints (start/commit), so Hstate remains identical
//     across nodes regardless of merge timing while write stalls disappear.
//
// Deviation from Algorithm 1/5 (documented in DESIGN.md): flush cascades
// trigger at block commit rather than inside Put. This guarantees compound
// keys are globally unique (a block that updates an address twice after a
// mid-block flush would otherwise place duplicate ⟨addr, blk⟩ keys in two
// runs) and aligns recovery checkpoints with block heights.
//
// # Read path: published views
//
// Reads are snapshot-isolated and lock-free. Every Commit (and FlushAll)
// builds an immutable `view` of the whole structure — copy-on-write
// snapshots of the L0 MB-trees plus the committed run list in canonical
// search order — and publishes it through an atomic pointer.
// Get/GetAt/GetBatch/ProvQuery pin the current view with two atomic
// operations and search it without acquiring the engine mutex, concurrently
// with each other, with commits, and with background merges; Snapshot pins
// a view across many reads (consistent multi-key queries at one height).
// Reads therefore observe the state of the last *committed* block, never
// the writes of a block still being built. Runs retired by a merge are
// reference-counted: their files are unlinked only after the manifest no
// longer names them AND the last view that could see them is released, so
// an in-flight reader can never touch a deleted file (see view.go).
package core

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cole/internal/bloom"
	"cole/internal/hist"
	"cole/internal/mbtree"
	"cole/internal/merge"
	"cole/internal/obs"
	"cole/internal/pagefile"
	"cole/internal/run"
	"cole/internal/types"
	"cole/internal/vfs"
)

// Options configures an Engine.
type Options struct {
	// Dir is the storage directory (created if absent).
	Dir string
	// MemCapacity is B: the number of entries an in-memory group holds
	// before it is flushed at the next block commit. Default 4096.
	MemCapacity int
	// SizeRatio is T: runs per level group before a merge. Default 4
	// (the paper's default).
	SizeRatio int
	// Fanout is m: the Merkle file fanout. Default 4 (the paper's best).
	Fanout int
	// PageSize is the disk page size. Default 4096.
	PageSize int
	// BloomFP is the per-run Bloom filter false-positive target.
	// Default 0.01.
	BloomFP float64
	// CachePages bounds each file's page cache: the per-file LRU that
	// point reads (Get/GetAt/ProvQuery) hit. Streaming merges bypass it
	// entirely (see MergeReadahead), so it can stay small without merge
	// traffic thrashing it. Default 16.
	CachePages int
	// MergeReadahead is the window, in pages, that streaming compaction
	// readers (level merges, exports, reshard sources) fetch per syscall,
	// outside the page cache. Default 256 (~1 MiB at 4 KiB pages).
	MergeReadahead int
	// WriteBufferPages is how many pages run builders coalesce per write
	// syscall. Default 256 (~1 MiB at 4 KiB pages); the on-disk files are
	// byte-identical for any value.
	WriteBufferPages int
	// LegacyCompaction makes run builds recompute every Merkle leaf hash
	// (instead of streaming the precomputed ones from the source runs'
	// Merkle files) and re-hash the Bloom base digest for every entry —
	// the seed's per-entry CPU path, kept as an ablation knob for the
	// compaction benchmark (output bytes are identical either way).
	LegacyCompaction bool
	// AsyncMerge selects COLE* (checkpoint-based asynchronous merge).
	AsyncMerge bool
	// MBTreeFanout is the L0 Merkle B+-tree fanout. Default 16.
	MBTreeFanout int
	// OptimalPLA builds run indexes with the exact convex-hull segment
	// construction instead of the default greedy cone (ablation knob; the
	// on-disk format is identical).
	OptimalPLA bool
	// Shards is the number of independent engine partitions the address
	// space is hash-split across. Default 1 = a single engine (today's
	// behavior). Values above 1 are consumed by the shard layer
	// (internal/shard, cole.OpenSharded); a single Engine always serves
	// exactly one shard and ignores this field.
	Shards int
	// MergeWorkers bounds how many background flush/merge jobs run
	// concurrently. 0 selects GOMAXPROCS. A sharded store opens its
	// engines over one shared pool sized by this field, so the budget
	// covers every level of every shard; jobs beyond it queue, and the
	// resulting back-pressure surfaces as Stats.MergeWaits.
	MergeWorkers int
	// MergeChunk is the preemption quantum, in entries, of background
	// level merges: between chunks a merge probes the scheduler for queued
	// higher-priority work (an L0 flush a commit checkpoint is waiting on)
	// and hands its worker slot over before pulling the next chunk. 0
	// selects the default (16384 entries ≈ 1 MiB); negative disables
	// chunking entirely (monolithic merges, the pre-preemption behavior,
	// kept as an ablation knob for the stall benchmark). Chunking never
	// changes merge output — byte-identical runs at any quantum — only
	// when a commit can overtake a long merge on a narrow pool.
	MergeChunk int
	// PacingTarget is the compaction-debt level, in bytes, at which
	// ingest pacing reaches full strength. Debt is the entry volume of
	// all in-flight background merges (work the structure owes before it
	// is caught up); while debt is nonzero, Commit and PutBatch absorb a
	// delay that grows smoothly (quadratically) with debt/target, capped
	// at paceMaxDelay. This converts the rare multi-second commit stall
	// (a checkpoint landing on an unfinished cascade, Stats.StallNanos)
	// into many sub-millisecond delays (Stats.PaceNanos) — p99.9 commit
	// latency drops by orders of magnitude for a few percent of mean
	// throughput. 0 disables pacing (the default). A reasonable target is
	// a few cascades' worth of bytes: MemCapacity × EntrySize × SizeRatio.
	PacingTarget int64
	// PipelinedCommit overlaps a cascade commit's trailing file I/O — the
	// manifest write (temp + rename) and the retired runs' unlinks — with
	// the next block's execution and hashing: the commit marshals the
	// manifest bytes and publishes the new read view under the lock, then
	// returns while a background goroutine persists and reclaims. Digests,
	// manifest bytes, and the "manifest stops naming a run before its
	// files are unlinked" invariant are all unchanged; the only new crash
	// window (commit returned, manifest not yet renamed) is already
	// covered by COLE's replay-from-checkpoint model plus the orphan
	// sweep on reopen. The next cascade, FlushAll, and Close join the
	// in-flight I/O first, so manifest writes stay ordered.
	PipelinedCommit bool
	// SortedBatch makes PutBatch bulk-load the L0 MB-tree: the deduped
	// batch is sorted by address and inserted through the tree's sorted
	// fast path (one descent per leaf instead of one per key). The tree's
	// shape — and therefore Hstate — depends on insertion order, so this
	// is a FORMAT-LEVEL choice: digests differ from first-occurrence
	// order, the setting is recorded in the manifest, and reopening with
	// a different value fails. Off by default.
	SortedBatch bool
	// MergePartitions bounds how many key-range spans one level merge is
	// cut into and fanned across the merge pool. 1 keeps merges
	// sequential; 0 (the default) sizes each merge automatically — wide
	// enough to matter only when the merged volume justifies the
	// planning pass, never wider than the pool. The partitioned build is
	// byte-identical to the sequential one (stitched value/Merkle/Bloom/
	// index output), so the knob affects wall time only, never digests.
	// LegacyCompaction forces sequential merges regardless.
	MergePartitions int
	// RootHistory is how many recent (height → Hstate) pairs the engine
	// retains and persists in its manifest. The shard layer reads them
	// back during post-crash replay so a shard whose checkpoint already
	// covers a replayed block can contribute its exact historical root to
	// the combined digest instead of its current one. Default 512.
	RootHistory int
	// Trace attaches an opt-in lifecycle event tracer: every flush,
	// merge (start/chunk/preempt/end), pacing sleep, commit phase
	// (stall, manifest write, view publish/retire), and partition span
	// records a typed, timestamped event into the tracer's fixed ring
	// (internal/obs). nil (the default) disables tracing; every
	// recording site costs exactly one nil check when disabled. A
	// sharded store shares one tracer across all its engines — events
	// carry the shard that recorded them — and the ring's drop count
	// surfaces as Stats.TraceDropped.
	Trace *obs.Tracer
	// ShardIndex tags this engine's telemetry (trace events, metric
	// labels) with its position in a sharded store. The shard layer sets
	// it when opening per-shard engines; a standalone engine leaves it 0.
	// It has no effect on storage or digests.
	ShardIndex int
	// VerifyReads makes every point lookup check the returned entry
	// against its stored Merkle leaf hash before serving it: silent
	// value-page damage surfaces as an ErrCorrupt (counted in
	// Stats.CorruptReads) instead of a wrong value. Costs one extra hash
	// read and one SHA-256 per run hit; off by default.
	VerifyReads bool
	// FS is the filesystem every engine file lives on. nil (the default)
	// selects the real filesystem; tests inject fault-carrying
	// implementations (internal/vfs) to exercise crash consistency.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.MemCapacity == 0 {
		o.MemCapacity = 4096
	}
	if o.SizeRatio == 0 {
		o.SizeRatio = 4
	}
	if o.Fanout == 0 {
		o.Fanout = 4
	}
	if o.PageSize == 0 {
		o.PageSize = pagefile.DefaultPageSize
	}
	if o.BloomFP == 0 {
		o.BloomFP = 0.01
	}
	if o.CachePages == 0 {
		o.CachePages = 16
	}
	if o.MBTreeFanout == 0 {
		o.MBTreeFanout = mbtree.DefaultFanout
	}
	if o.RootHistory == 0 {
		o.RootHistory = 512
	}
	o.FS = vfs.OrOS(o.FS)
	return o
}

func (o Options) validate() error {
	if o.Dir == "" {
		return fmt.Errorf("core: Options.Dir is required")
	}
	if o.MemCapacity < 1 {
		return fmt.Errorf("core: MemCapacity %d < 1", o.MemCapacity)
	}
	if o.SizeRatio < 2 {
		return fmt.Errorf("core: SizeRatio %d < 2", o.SizeRatio)
	}
	if o.Fanout < 2 {
		return fmt.Errorf("core: Fanout %d < 2", o.Fanout)
	}
	return nil
}

func (o Options) runParams() run.Params {
	return run.Params{
		PageSize:         o.PageSize,
		Fanout:           o.Fanout,
		BloomFP:          o.BloomFP,
		CachePages:       o.CachePages,
		MergeReadahead:   o.MergeReadahead,
		WriteBufferPages: o.WriteBufferPages,
		OptimalPLA:       o.OptimalPLA,
		LegacyCompaction: o.LegacyCompaction,
		VerifyReads:      o.VerifyReads,
		FS:               o.FS,
	}
}

// memGroup is one in-memory L0 group: an MB-tree plus an address Bloom
// filter used as a read accelerator (the filter is not part of Hstate;
// L0 proofs come from the tree itself).
type memGroup struct {
	tree   *mbtree.Tree
	filter *bloom.Filter
}

func newMemGroup(o Options) (*memGroup, error) {
	t, err := mbtree.New(o.MBTreeFanout)
	if err != nil {
		return nil, err
	}
	return &memGroup{tree: t, filter: bloom.New(o.MemCapacity, o.BloomFP)}, nil
}

// mergeState tracks one level's in-flight asynchronous merge.
type mergeState struct {
	done   chan struct{}
	newRun *run.Run
	err    error
	// elapsed is the wall time the job spent building its run, written
	// before done closes (merge-bandwidth accounting).
	elapsed time.Duration
}

// level is one on-disk level: two run groups (sync mode uses only the
// writing group) and the level's merge thread.
type level struct {
	groups  [2][]*runRef // committed runs (ref-counted), oldest first
	writing int          // index of the writing group
	merge   *mergeState  // in-flight merge of the merging group (async)
}

func (l *level) merging() int { return 1 - l.writing }

// Engine is a COLE store.
type Engine struct {
	opts Options

	mu sync.Mutex
	// Block state.
	height    uint64 // height of the block currently being built
	committed uint64 // last committed height
	inBlock   bool
	// checkpoint is the replay point: every block above it must be
	// re-executed after a crash. In sync mode it equals the last cascade
	// height (the flush is inline, so everything at that height is
	// durable). In async mode it is the *previous* cascade height: the
	// newest cascade handed the L0 merging group to a background flush
	// whose output commits only at the next checkpoint, so blocks between
	// the two cascades still live exclusively in memory.
	checkpoint  uint64
	lastCascade uint64 // height of the most recent flush cascade

	// L0.
	mem        [2]*memGroup
	memWriting int
	memMerge   *mergeState // flush thread of the L0 merging group (async)

	// On-disk levels; levels[0] is L1.
	levels    []*level
	nextRunID uint64

	// Deferred retirements: runs removed from the structure by a cascade
	// are marked retired (and their files reclaimed by the last view
	// holding them) only after the manifest no longer references them.
	retiring []*runRef

	// rootHistory is the ring of the most recent (height → Hstate) pairs,
	// oldest first, capped at opts.RootHistory. Persisted with the
	// manifest so replay can reproduce the exact combined digests of
	// blocks this engine's checkpoint already covers (see HistoricalRoot).
	rootHistory []RootRecord

	// viewPtr is the currently-published read view. Readers pin it with
	// acquireView and never touch mu; Commit/FlushAll swap in a fresh
	// view after every structural or L0 change.
	viewPtr atomic.Pointer[view]

	// pendingIO is the in-flight deferred commit I/O of a pipelined
	// cascade (manifest persist + run retirement); the next cascade,
	// FlushAll, and Close join it before writing their own manifest.
	// ioWG additionally tracks the retirement unlinks, which are allowed
	// to drain past the manifest join; only Close waits them out.
	pendingIO *commitIO
	ioWG      sync.WaitGroup

	// sched runs every background flush/merge job; possibly shared with
	// other engines (one pool across all shards of a sharded store).
	sched *merge.Scheduler

	// PutBatch dedup scratch, reused across blocks so the hot batch path
	// stays allocation-free (guarded by mu). entryBuf is the sorted
	// bulk-load staging slice of the SortedBatch path.
	batchIndex map[types.Address]int
	batchBuf   []Update
	entryBuf   []types.Entry

	stats Stats // write-path counters, guarded by mu
	// Read-path counters are atomics: the lock-free read path must never
	// acquire mu. mergeWaits is also atomic because it is incremented
	// from job goroutines that may be queuing while the committing thread
	// holds mu waiting on those very jobs.
	gets           atomic.Int64
	provQueries    atomic.Int64
	bloomSkips     atomic.Int64
	mergeWaits     atomic.Int64
	partitionWaits atomic.Int64
	// paceNanos accumulates ingest-pacing sleeps (taken outside mu so a
	// paced writer never blocks Stats); paceSleeps counts them.
	// preemptions counts chunked merges that handed their slot to
	// higher-priority work, incremented from merge-job goroutines.
	paceNanos   atomic.Int64
	paceSleeps  atomic.Int64
	preemptions atomic.Int64
	// corruptReads counts typed corruption errors surfaced by the read
	// path (see Options.VerifyReads and types.ErrCorrupt).
	corruptReads atomic.Int64

	// tr is the opt-in lifecycle tracer (Options.Trace) and shardID the
	// shard tag its events carry. Both are set once at Open and never
	// change, so every recording site is guarded by a single nil check —
	// the whole cost of the disabled path.
	tr      *obs.Tracer
	shardID int32
	// hists are the always-on operation latency histograms: atomic
	// record (no lock, no allocation), snapshotted into Stats.Hist.
	hists OpHists
	// unregister removes this engine's metrics sources from the obs
	// exposition registry; called once from Close.
	unregister func()
}

// trace records one lifecycle event when tracing is enabled. The
// tr != nil check lives in the callers so the disabled path inlines to
// one branch without a call.
func (e *Engine) trace(typ obs.EventType, level int32, bytes int64, id uint64, dur time.Duration) {
	e.tr.Record(typ, e.shardID, level, bytes, id, dur)
}

// OpHists are the engine's always-on operation latency histograms, one
// HDR log-linear histogram (internal/hist) per public operation class.
// Recording is an atomic bucket increment, cheap enough to leave on
// unconditionally; Stats carries a snapshot, and the shard layer merges
// the per-shard snapshots so store-level quantiles reflect every shard.
type OpHists struct {
	// Commit is in-engine commit latency (lock to published view,
	// pacing excluded — the same quantity CommitNanos totals).
	Commit hist.Hist
	// PutBatch is the in-lock latency of batched ingest (dedup + tree
	// insert), pacing excluded.
	PutBatch hist.Hist
	// Get covers single point lookups (Get/GetAt, engine or snapshot).
	Get hist.Hist
	// GetBatch covers whole batched lookups (latency per batch, not per
	// address).
	GetBatch hist.Hist
	// Prov covers provenance range queries including proof assembly.
	Prov hist.Hist
}

// Snapshot returns a point-in-time copy of every histogram.
func (h *OpHists) Snapshot() *OpHists {
	return &OpHists{
		Commit:   h.Commit.Snapshot(),
		PutBatch: h.PutBatch.Snapshot(),
		Get:      h.Get.Snapshot(),
		GetBatch: h.GetBatch.Snapshot(),
		Prov:     h.Prov.Snapshot(),
	}
}

// Merge folds another snapshot into this one (per-shard into store
// totals: counts sum, extremes take the cross-shard min/max).
func (h *OpHists) Merge(o *OpHists) {
	if o == nil {
		return
	}
	h.Commit.Merge(&o.Commit)
	h.PutBatch.Merge(&o.PutBatch)
	h.Get.Merge(&o.Get)
	h.GetBatch.Merge(&o.GetBatch)
	h.Prov.Merge(&o.Prov)
}

// Delta returns the histograms of operations recorded since base — the
// per-window distribution the bench harness reports (see statsDelta).
func (h *OpHists) Delta(base *OpHists) *OpHists {
	if base == nil {
		return h.Snapshot()
	}
	return &OpHists{
		Commit:   h.Commit.Sub(&base.Commit),
		PutBatch: h.PutBatch.Sub(&base.PutBatch),
		Get:      h.Get.Sub(&base.Get),
		GetBatch: h.GetBatch.Sub(&base.GetBatch),
		Prov:     h.Prov.Sub(&base.Prov),
	}
}

// Stats aggregates engine counters for the benchmark harness.
type Stats struct {
	Puts        int64
	Gets        int64
	ProvQueries int64
	Flushes     int64
	Merges      int64
	// BloomSkips counts runs that a point lookup skipped entirely because
	// the run's Bloom filter excluded the address (no learned-index
	// descent, no page reads).
	BloomSkips int64
	// MergeWaits counts back-pressure events on the merge pool: commit
	// checkpoints that had to block on an unfinished merge job, plus jobs
	// that found the shared worker pool saturated and queued before
	// starting. Sibling partitions of one fanned-out merge queuing behind
	// each other are NOT counted here — that contention is intentional
	// and lands in PartitionWaits.
	MergeWaits int64
	// PartitionWaits counts queue waits by the span sub-jobs of
	// partitioned merges (including the parent job's slot re-entry after
	// its join). High values with low MergeWaits mean the pool is busy
	// fanning merges out, not that shards are starving each other.
	PartitionWaits int64
	// FlushBytes is the logical volume written by L0 flushes (entry bytes
	// of every flushed run); MergeBytes the volume written by level
	// sort-merges, where each entry is re-read, re-hashed (unless passed
	// through), and re-written. MergeNanos is the wall time spent inside
	// level-merge run builds, so MergeBytes/MergeNanos is the merge
	// bandwidth the compaction benchmark reports — the bandwidth that
	// gates sustained write TPS once levels deepen.
	FlushBytes int64
	MergeBytes int64
	MergeNanos int64
	// Commits counts committed blocks; CommitNanos their total in-engine
	// latency (lock acquisition to published view, pacing excluded) and
	// MaxCommitNanos the single worst commit — the tail the stall
	// benchmark and `coledb stat` bound.
	Commits        int64
	CommitNanos    int64
	MaxCommitNanos int64
	// StallNanos is the total time commit checkpoints spent blocked on
	// unfinished background merges (the slow-node path of Algorithm 5
	// line 9) — the cliff that pacing and preemption exist to remove.
	// PaceNanos is the total ingest-pacing delay absorbed smoothly by
	// Commit/PutBatch instead; with pacing working, StallNanos ≈ 0 while
	// PaceNanos grows by many small, bounded increments.
	StallNanos int64
	PaceNanos  int64
	// Preemptions counts chunked-merge checkpoints that handed their
	// worker slot to queued higher-priority work (Options.MergeChunk).
	Preemptions int64
	// PageReads / CacheHits aggregate the point-read page-cache counters
	// (value + index files) across the store's runs: physical 4 KiB reads
	// vs LRU hits. Streaming merges never touch these caches, so a busy
	// compaction does not depress the hit rate. SeqReads counts the
	// cache-bypassing readahead fetches of streaming merge readers —
	// the compaction read traffic the other two deliberately exclude.
	PageReads int64
	CacheHits int64
	SeqReads  int64
	// PaceSleeps counts individual ingest-pacing delays (PaceNanos
	// totals their time): with pacing working, many small sleeps replace
	// one giant stall.
	PaceSleeps int64
	// TraceDropped is how many lifecycle events did not fit in the
	// tracer's ring buffer (0 when tracing is off). A sharded store
	// shares one tracer, so its Stats reports the max across shards, not
	// the sum.
	TraceDropped int64
	// CorruptReads counts point/provenance lookups that failed with a
	// typed corruption error (types.ErrCorrupt) instead of returning
	// data: a nonzero value means a run file served by this store failed
	// an integrity check and the store needs an fsck.
	CorruptReads int64
	// Hist is a snapshot of the always-on operation latency histograms.
	// Excluded from JSON (reports carry percentile summaries instead)
	// and inlined by the metrics walker (cole_commit_latency_seconds,
	// not cole_hist_commit_latency_seconds).
	Hist *OpHists `json:"-" obs:"inline"`
}

// Open creates or reopens a COLE store in opts.Dir with its own merge
// pool of opts.MergeWorkers workers.
func Open(opts Options) (*Engine, error) {
	return OpenWithScheduler(opts, nil)
}

// OpenWithScheduler creates or reopens a COLE store whose background
// flush/merge jobs run on sched; a nil sched gets a private pool of
// opts.MergeWorkers workers. The shard layer opens all its engines over
// one shared scheduler so the merge budget covers the whole store.
func OpenWithScheduler(opts Options, sched *merge.Scheduler) (*Engine, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	ownPool := sched == nil
	if ownPool {
		sched = merge.New(opts.MergeWorkers)
	}
	e := &Engine{opts: opts, sched: sched, tr: opts.Trace, shardID: int32(opts.ShardIndex)}
	for i := range e.mem {
		g, err := newMemGroup(opts)
		if err != nil {
			return nil, err
		}
		e.mem[i] = g
	}
	if err := e.loadManifest(); err != nil {
		return nil, err
	}
	if err := e.cleanOrphans(); err != nil {
		e.closeRuns()
		return nil, err
	}
	if opts.AsyncMerge {
		// §4.3: restart the aborted level merges for merging groups that
		// were full at the checkpoint.
		e.restartMerges()
	}
	// Publish the initial read view (the reopened structure with empty L0
	// groups) so readers are lock-free from the first Get.
	e.publishLocked()
	// Register with the metrics exposition (/metrics serves every open
	// engine's counters, labeled by store and shard). An engine that owns
	// its merge pool also exposes the pool; for a shared pool the shard
	// layer registers it once for the whole store.
	labels := []obs.Label{{Key: "store", Value: opts.Dir}, {Key: "shard", Value: strconv.Itoa(opts.ShardIndex)}}
	unregStats := obs.Register("", func() any { return e.Stats() }, labels...)
	if ownPool {
		unregSched := obs.Register("sched", func() any { return sched.Stats() }, obs.Label{Key: "store", Value: opts.Dir})
		e.unregister = func() { unregStats(); unregSched() }
	} else {
		e.unregister = unregStats
	}
	return e, nil
}

// manifest is the durable structural snapshot (root_hash_list's backing
// state). It is written atomically (temp + rename) before any obsolete run
// file is deleted, which is COLE's atomicity argument (§4.3).
type manifest struct {
	// Height is the block height whose commit produced this structure.
	Height uint64 `json:"height"`
	// Replay is the recovery point: blocks above it must be re-executed
	// after reopening (see Engine.checkpoint).
	Replay     uint64 `json:"replay"`
	NextRunID  uint64 `json:"next_run_id"`
	MemWriting int    `json:"mem_writing"`
	Async      bool   `json:"async"`
	// SortedBatch records whether the store's L0 trees were built through
	// the sorted bulk-load path (Options.SortedBatch). The tree shape —
	// and so every published Hstate — depends on insertion order, which
	// makes this a format bit: reopening with the other setting would
	// replay blocks into digests that no longer match published headers.
	SortedBatch bool         `json:"sorted_batch,omitempty"`
	SizeRatio   int          `json:"size_ratio"`
	Fanout      int          `json:"fanout"`
	Levels      []levelState `json:"levels"`
	// Roots is the persisted tail of the engine's root history (oldest
	// first): the Hstate digests of recent commits, used during replay to
	// reconstruct historical combined digests for shards that skip
	// already-covered blocks.
	Roots []RootRecord `json:"roots,omitempty"`
}

// RootRecord is one retained (height → Hstate) pair of the root history.
type RootRecord struct {
	Height uint64 `json:"h"`
	// Root is the hex-encoded Hstate digest of the commit at Height.
	Root hexHash `json:"r"`
}

// hexHash JSON-encodes a digest as a hex string (the manifest would
// otherwise serialize [32]byte as an integer array).
type hexHash types.Hash

func (h hexHash) MarshalJSON() ([]byte, error) {
	return json.Marshal(types.Hash(h).String())
}

func (h *hexHash) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != types.HashSize {
		return fmt.Errorf("core: bad root digest %q", s)
	}
	copy(h[:], raw)
	return nil
}

type levelState struct {
	Writing int         `json:"writing"`
	Groups  [2][]uint64 `json:"groups"`
}

func (e *Engine) manifestPath() string { return filepath.Join(e.opts.Dir, "MANIFEST") }

func (e *Engine) loadManifest() error {
	raw, err := e.opts.FS.ReadFile(e.manifestPath())
	if os.IsNotExist(err) {
		return nil // fresh store
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("core: corrupt manifest: %w", err)
	}
	if m.Async != e.opts.AsyncMerge {
		return fmt.Errorf("core: store was created with async=%v, reopened with async=%v", m.Async, e.opts.AsyncMerge)
	}
	if m.SortedBatch != e.opts.SortedBatch {
		return fmt.Errorf("core: store was created with sorted_batch=%v, reopened with sorted_batch=%v (L0 digests depend on insertion order)", m.SortedBatch, e.opts.SortedBatch)
	}
	if m.SizeRatio != e.opts.SizeRatio || m.Fanout != e.opts.Fanout {
		return fmt.Errorf("core: store parameters T=%d m=%d do not match requested T=%d m=%d",
			m.SizeRatio, m.Fanout, e.opts.SizeRatio, e.opts.Fanout)
	}
	// Resume from the replay point: the on-disk structure is newer (it
	// reflects the cascade at m.Height), but re-executing blocks in
	// (Replay, crash] reconstructs the lost in-memory groups; the cascade
	// at m.Height re-triggers as a pure L0 switch without re-committing
	// level merges (their writing groups are all below the size ratio
	// after a completed cascade).
	e.height = m.Replay
	e.committed = m.Replay
	e.checkpoint = m.Replay
	e.lastCascade = m.Replay
	e.nextRunID = m.NextRunID
	e.memWriting = m.MemWriting
	// The persisted history may extend above Replay (async manifests are
	// written at cascade heights beyond the checkpoint); replayed blocks
	// re-record identical digests over those entries, so keep them all.
	e.rootHistory = m.Roots
	for li, ls := range m.Levels {
		lv := &level{writing: ls.Writing}
		for g := 0; g < 2; g++ {
			for _, id := range ls.Groups[g] {
				r, err := run.Open(e.opts.Dir, id, e.opts.runParams())
				if err != nil {
					return fmt.Errorf("core: open run %d of level %d: %w", id, li+1, e.decorateCorrupt(err, li+1))
				}
				lv.groups[g] = append(lv.groups[g], newRunRef(r))
			}
		}
		e.levels = append(e.levels, lv)
	}
	return nil
}

// marshalManifestLocked serializes the current structure. Split from the
// file write so a pipelined commit can capture the exact bytes under the
// lock and persist them on a background goroutine — the durable manifest
// is byte-identical whether written inline or deferred.
func (e *Engine) marshalManifestLocked() ([]byte, error) {
	m := manifest{
		Height:      e.committed,
		Replay:      e.checkpoint,
		NextRunID:   e.nextRunID,
		MemWriting:  e.memWriting,
		Async:       e.opts.AsyncMerge,
		SortedBatch: e.opts.SortedBatch,
		SizeRatio:   e.opts.SizeRatio,
		Fanout:      e.opts.Fanout,
		Roots:       e.rootHistory,
	}
	for _, lv := range e.levels {
		ls := levelState{Writing: lv.writing}
		for g := 0; g < 2; g++ {
			ids := []uint64{}
			for _, rr := range lv.groups[g] {
				ids = append(ids, rr.r.ID)
			}
			ls.Groups[g] = ids
		}
		m.Levels = append(m.Levels, ls)
	}
	return json.MarshalIndent(m, "", "  ")
}

// writeManifestBytes persists marshaled manifest bytes atomically and
// durably (temp fsync + rename + parent directory fsync — the manifest
// is the store's commit point). Touches no engine state, so it is safe
// off-lock.
func (e *Engine) writeManifestBytes(raw []byte) error {
	return vfs.WriteFileAtomic(e.opts.FS, e.manifestPath(), raw, 0o644)
}

// decorateCorrupt stamps the engine's identity onto a typed corruption
// error bubbling out of the run layer: the store directory always, and
// the LSM level when the caller knows it (level ≥ 1; 0 leaves it
// unattributed). Non-corruption errors pass through untouched.
func (e *Engine) decorateCorrupt(err error, level int) error {
	var ec *types.ErrCorrupt
	if !errors.As(err, &ec) {
		return err
	}
	if ec.Store == "" {
		ec.Store = e.opts.Dir
	}
	if ec.Level < 0 && level > 0 {
		ec.Level = level
	}
	return err
}

// noteCorrupt is decorateCorrupt for the lock-free read path: it also
// counts the event in Stats.CorruptReads (atomically — readers never
// take mu).
func (e *Engine) noteCorrupt(err error) error {
	var ec *types.ErrCorrupt
	if !errors.As(err, &ec) {
		return err
	}
	e.corruptReads.Add(1)
	if ec.Store == "" {
		ec.Store = e.opts.Dir
	}
	return err
}

func (e *Engine) writeManifest() error {
	raw, err := e.marshalManifestLocked()
	if err != nil {
		return err
	}
	start := time.Now()
	err = e.writeManifestBytes(raw)
	if e.tr != nil {
		e.trace(obs.EvManifest, -1, int64(len(raw)), 0, time.Since(start))
	}
	return err
}

// commitIO is one pipelined cascade's deferred I/O: the manifest persist
// and the retirement of the runs the cascade removed. manifested closes
// once the manifest rename has landed (or failed) — the only ordering
// the next manifest writer needs; err carries a manifest-write failure
// to that join point. The retirement unlinks continue past manifested
// and are tracked by Engine.ioWG, which only Close drains: the unlinked
// files are named by no current manifest, so later manifest writes
// cannot race them.
type commitIO struct {
	manifested chan struct{}
	err        error
}

// joinCommitIOLocked waits for the in-flight pipelined commit's manifest
// write, if any, and surfaces its error. The goroutine never takes e.mu,
// so blocking here under the lock cannot deadlock. Every path that
// writes a manifest (the next cascade, FlushAll) and Close must join
// first so manifest writes stay strictly ordered; the previous commit's
// run unlinks may still be draining afterwards (Close waits those out
// via ioWG).
func (e *Engine) joinCommitIOLocked() error {
	io := e.pendingIO
	if io == nil {
		return nil
	}
	<-io.manifested
	e.pendingIO = nil
	return io.err
}

// startCommitIOLocked hands a cascade's trailing I/O — the marshaled
// manifest bytes and the retiring run set — to a background goroutine.
// Caller holds e.mu and must already have published the post-cascade
// view (so no new reader can pick the retiring runs up). Retirement
// happens strictly after the manifest rename, preserving the invariant
// that the manifest stops naming a run before its files can be unlinked;
// the runs' page-cache counters are folded into stats here, under the
// lock, exactly as the inline path does.
func (e *Engine) startCommitIOLocked(raw []byte) {
	retiring := e.retiring
	e.retiring = nil
	for _, rr := range retiring {
		v, i := rr.r.IOStats()
		e.stats.PageReads += v.PageReads + i.PageReads
		e.stats.CacheHits += v.CacheHits + i.CacheHits
		e.stats.SeqReads += v.SeqReads + i.SeqReads
	}
	io := &commitIO{manifested: make(chan struct{})}
	e.pendingIO = io
	e.ioWG.Add(1)
	go func() {
		defer e.ioWG.Done()
		start := time.Now()
		err := e.writeManifestBytes(raw)
		if e.tr != nil {
			e.trace(obs.EvManifest, -1, int64(len(raw)), 0, time.Since(start))
		}
		if err != nil {
			io.err = err
			close(io.manifested)
			return
		}
		close(io.manifested)
		for _, rr := range retiring {
			rr.retired.Store(true)
			rr.release()
			if e.tr != nil {
				e.trace(obs.EvViewRetire, -1, rr.r.Count()*types.EntrySize, rr.r.ID, 0)
			}
		}
	}()
}

// cleanOrphans removes run files not referenced by the manifest: leftovers
// of interrupted merges, of deletions that raced a crash, or of retired
// runs whose last reader never released before the process died.
func (e *Engine) cleanOrphans() error {
	referenced := make(map[string]bool)
	for _, lv := range e.levels {
		for g := 0; g < 2; g++ {
			for _, rr := range lv.groups[g] {
				for _, f := range run.Files(rr.r.ID) {
					referenced[f] = true
				}
			}
		}
	}
	entries, err := e.opts.FS.ReadDir(e.opts.Dir)
	if err != nil {
		return err
	}
	for _, de := range entries {
		name := de.Name()
		if !strings.HasPrefix(name, "run-") {
			continue
		}
		if !referenced[name] {
			if err := e.opts.FS.Remove(filepath.Join(e.opts.Dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// restartMerges resumes interrupted background merges after reopen: any
// full merging group gets its thread back.
func (e *Engine) restartMerges() {
	for i, lv := range e.levels {
		mg := lv.groups[lv.merging()]
		if len(mg) == e.opts.SizeRatio && lv.merge == nil {
			lv.merge = e.startLevelMerge(i, runsOf(mg))
		}
	}
}

// Height returns the last committed block height.
func (e *Engine) Height() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.committed
}

// CheckpointHeight returns the height of the last durable checkpoint:
// after a crash, blocks above this height must be replayed (§4.3).
func (e *Engine) CheckpointHeight() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpoint
}

// recordRootLocked appends the committed (height, root) pair to the root
// history. Replay re-commits heights already recorded: entries at or
// above the new height are dropped first, so the history stays strictly
// increasing and the replayed digests (which are deterministic) land in
// the same slots. The ring is trimmed to opts.RootHistory.
func (e *Engine) recordRootLocked(height uint64, root types.Hash) {
	h := e.rootHistory
	for len(h) > 0 && h[len(h)-1].Height >= height {
		h = h[:len(h)-1]
	}
	h = append(h, RootRecord{Height: height, Root: hexHash(root)})
	if excess := len(h) - e.opts.RootHistory; excess > 0 {
		h = append(h[:0], h[excess:]...)
	}
	e.rootHistory = h
}

// HistoricalRoot returns the Hstate digest the engine committed at the
// given block height, if the height is still inside the retained root
// history (Options.RootHistory commits deep, persisted with the
// manifest). The shard layer uses it during post-crash replay: a shard
// whose checkpoint already covers a replayed block contributes this
// exact historical root to the combined digest, so replayed headers
// match the originally published ones.
func (e *Engine) HistoricalRoot(height uint64) (types.Hash, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.rootHistory
	i := sort.Search(len(h), func(i int) bool { return h[i].Height >= height })
	if i < len(h) && h[i].Height == height {
		return types.Hash(h[i].Root), true
	}
	return types.Hash{}, false
}

// Stats returns a snapshot of the engine counters. Read counters are
// atomics fed by the lock-free read path; write counters are gathered
// under the engine lock. PageReads/CacheHits sum the live runs' current
// page-cache counters plus the totals of runs already retired by merges
// (accumulated into e.stats at retirement).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	for _, lv := range e.levels {
		for g := 0; g < 2; g++ {
			for _, rr := range lv.groups[g] {
				v, i := rr.r.IOStats()
				st.PageReads += v.PageReads + i.PageReads
				st.CacheHits += v.CacheHits + i.CacheHits
				st.SeqReads += v.SeqReads + i.SeqReads
			}
		}
	}
	e.mu.Unlock()
	st.Gets = e.gets.Load()
	st.ProvQueries = e.provQueries.Load()
	st.BloomSkips = e.bloomSkips.Load()
	st.MergeWaits = e.mergeWaits.Load()
	st.PartitionWaits = e.partitionWaits.Load()
	st.PaceNanos = e.paceNanos.Load()
	st.PaceSleeps = e.paceSleeps.Load()
	st.Preemptions = e.preemptions.Load()
	st.CorruptReads = e.corruptReads.Load()
	st.TraceDropped = e.tr.Dropped()
	st.Hist = e.hists.Snapshot()
	return st
}

// noteMergeWait records one back-pressure event. Safe from job goroutines:
// it must not take e.mu (the committer may hold it while waiting on the
// job that is reporting the wait).
func (e *Engine) noteMergeWait() { e.mergeWaits.Add(1) }

// notePartitionWait records one queue wait by a span sub-job of a
// partitioned merge. Same locking contract as noteMergeWait.
func (e *Engine) notePartitionWait() { e.partitionWaits.Add(1) }

// Scheduler exposes the engine's merge pool (shared across shards when
// the store is sharded), for introspection and tests.
func (e *Engine) Scheduler() *merge.Scheduler { return e.sched }

// LevelRunCounts returns, per on-disk level, the number of committed runs
// (both groups), for introspection and tests.
func (e *Engine) LevelRunCounts() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int, len(e.levels))
	for i, lv := range e.levels {
		out[i] = len(lv.groups[0]) + len(lv.groups[1])
	}
	return out
}

// MemEntries returns the entry counts of the two L0 groups
// (writing, merging).
func (e *Engine) MemEntries() (int, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mem[e.memWriting].tree.Size(), e.mem[1-e.memWriting].tree.Size()
}

// StorageBreakdown reports on-disk bytes split into value-file data and
// index overhead (learned index + Merkle files + metadata), plus total
// entries, for the storage experiments.
type StorageBreakdown struct {
	DataBytes  int64
	IndexBytes int64
	Entries    int64
	Runs       int
	Levels     int
}

// Storage walks the committed runs and sums their file sizes.
func (e *Engine) Storage() StorageBreakdown {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sb StorageBreakdown
	sb.Levels = len(e.levels)
	for _, lv := range e.levels {
		for g := 0; g < 2; g++ {
			for _, rr := range lv.groups[g] {
				d, i := rr.r.SizeOnDisk()
				sb.DataBytes += d
				sb.IndexBytes += i
				sb.Entries += rr.r.Count()
				sb.Runs++
			}
		}
	}
	return sb
}

// waitMerges joins every outstanding merge thread without committing
// (used by Close and tests).
func (e *Engine) waitMergesLocked() {
	if e.memMerge != nil {
		<-e.memMerge.done
	}
	for _, lv := range e.levels {
		if lv.merge != nil {
			<-lv.merge.done
		}
	}
}

func (e *Engine) closeRuns() {
	for _, lv := range e.levels {
		for g := 0; g < 2; g++ {
			for _, rr := range lv.groups[g] {
				_ = rr.r.Close()
			}
		}
	}
}

// Close joins background merges and releases file handles. In-memory L0
// contents are *not* flushed: like the paper's crash model, they are
// recovered by replaying blocks above CheckpointHeight. Use FlushAll first
// for a clean shutdown that persists everything. Readers (and pinned
// Snapshots) must quiesce before Close: reads racing a Close fail with a
// closed-file error.
func (e *Engine) Close() error {
	// Leave the metrics registry first so new scrapes stop observing the
	// engine. A scrape already in flight may still call Stats(), which
	// stays safe after close — counters are plain fields and atomics.
	if e.unregister != nil {
		e.unregister()
		e.unregister = nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Join the pipelined commit I/O before touching run files: retirement
	// unlinks must not race the close, and a deferred manifest-write
	// failure should not vanish silently at shutdown.
	ioErr := e.joinCommitIOLocked()
	// The manifest join above only orders against the manifest rename;
	// retirement unlinks drain in the background and must finish before we
	// close run handles out from under them. The I/O goroutine never takes
	// mu, so waiting here cannot deadlock.
	e.ioWG.Wait()
	e.waitMergesLocked()
	// Discard uncommitted merge outputs; their files become orphans that
	// the next Open cleans up.
	if e.memMerge != nil && e.memMerge.newRun != nil {
		_ = e.memMerge.newRun.Close()
	}
	for _, lv := range e.levels {
		if lv.merge != nil && lv.merge.newRun != nil {
			_ = lv.merge.newRun.Close()
		}
	}
	e.closeRuns()
	return ioErr
}
