package core

import (
	"fmt"
	"sort"
	"time"

	"cole/internal/bloom"
	"cole/internal/mbtree"
	"cole/internal/run"
	"cole/internal/types"
)

// Version is one provenance result: the value addr held from block Blk.
type Version struct {
	Blk   uint64
	Value types.Value
}

// Proof authenticates a provenance query against Hstate (§6.2,
// Algorithm 8). Its parts appear in the engine's canonical component
// order — L0 groups, then run digests per level, newest first — which is
// exactly the order root_hash_list is hashed in, so a verifier walks the
// parts, reconstructs each component digest, and recomputes Hstate.
type Proof struct {
	Addr         types.Address
	BlkLo, BlkHi uint64
	// Mem holds one part per searched L0 group (1 in sync mode, 2 with
	// asynchronous merge).
	Mem []MemPart
	// Runs holds one part per searched on-disk run, canonical order.
	Runs []RunPart
	// Unsearched carries the raw digests of components skipped after an
	// early stop (Algorithm 8 lines 6–8 and 19–21: once a version older
	// than blk_lo is found, deeper levels hold only older data).
	Unsearched []types.Hash
}

// MemPart authenticates one L0 MB-tree's contribution.
type MemPart struct {
	Proof *mbtree.Proof
}

// RunPart authenticates one on-disk run's contribution: either a searched
// span, or a Bloom-filter non-membership disclosure.
type RunPart struct {
	// BloomMiss: the address is provably absent. BloomBytes is the
	// serialized filter and MHTRoot the run's Merkle root; together they
	// reconstruct the run digest while MayContain(addr) = false proves
	// absence (the paper's footnote 1).
	BloomMiss  bool
	BloomBytes []byte
	MHTRoot    types.Hash
	// Searched span: Prov carries entries + MHT range proof; BloomDigest
	// completes the run digest H(mht_root ‖ bloom_digest).
	BloomDigest types.Hash
	Prov        *run.ProvResult
}

// Verify checks the proof against a state root digest and returns the
// authenticated versions — the method form of VerifyProv, so a proof can
// be checked through a backend-independent interface without naming its
// concrete type.
func (p *Proof) Verify(hstate types.Hash, addr types.Address, blkLo, blkHi uint64) ([]Version, error) {
	return VerifyProv(hstate, addr, blkLo, blkHi, p)
}

// Size approximates the proof's wire size in bytes (for the proof-size
// experiments, Figures 14–15).
func (p *Proof) Size() int {
	s := types.AddressSize + 16
	for _, mp := range p.Mem {
		if mp.Proof != nil {
			s += mp.Proof.Size()
		}
	}
	for _, rp := range p.Runs {
		if rp.BloomMiss {
			s += len(rp.BloomBytes) + types.HashSize
			continue
		}
		s += types.HashSize // bloom digest
		if rp.Prov != nil {
			s += len(rp.Prov.Span)*types.EntrySize + 24
			if rp.Prov.Proof != nil {
				s += rp.Prov.Proof.Size()
			}
		}
	}
	s += len(p.Unsearched) * types.HashSize
	return s
}

// ProvQuery returns the versions of addr written in block heights
// [blkLo, blkHi] together with a proof verifiable against the Hstate of
// the last committed block (Algorithm 8). Versions are returned newest
// first. Lock-free: the query runs against the published read view,
// concurrently with commits and merges; use Snapshot to issue several
// queries against one pinned state.
func (e *Engine) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]Version, *Proof, error) {
	v := e.acquireView()
	defer v.release()
	return e.provInView(v, addr, blkLo, blkHi)
}

// provInView walks one immutable view in canonical component order. The
// resulting proof reconstructs exactly the view's root digest: frozen L0
// snapshots yield the MB-tree parts, and the view's run list (pinned by
// reference counts, so a concurrent merge cannot delete the files) yields
// the searched spans, Bloom non-membership disclosures, and early-stop
// digests.
func (e *Engine) provInView(v *view, addr types.Address, blkLo, blkHi uint64) ([]Version, *Proof, error) {
	if blkHi < blkLo {
		return nil, nil, fmt.Errorf("core: inverted block range [%d,%d]", blkLo, blkHi)
	}
	start := time.Now()
	defer func() { e.hists.Prov.Record(time.Since(start)) }()
	e.provQueries.Add(1)

	kl := types.ProvLowerKey(addr, blkLo)
	ku := types.ProvUpperKey(addr, blkHi)
	proof := &Proof{Addr: addr, BlkLo: blkLo, BlkHi: blkHi}
	var versions []Version
	stopped := false

	for _, m := range v.mems {
		entries, p, err := m.tree.ProveRange(kl, ku)
		if err != nil {
			return nil, nil, err
		}
		proof.Mem = append(proof.Mem, MemPart{Proof: p})
		for _, ent := range entries {
			if ent.Key.Addr != addr {
				continue
			}
			if ent.Key.Blk >= blkLo && ent.Key.Blk <= blkHi {
				versions = append(versions, Version{Blk: ent.Key.Blk, Value: ent.Value})
			}
			if ent.Key.Blk < blkLo {
				stopped = true
			}
		}
	}

	for _, rr := range v.runs {
		r := rr.r
		if stopped {
			proof.Unsearched = append(proof.Unsearched, r.Digest())
			continue
		}
		res, err := r.ProvSearch(addr, blkLo, blkHi)
		if err != nil {
			return nil, nil, e.noteCorrupt(err)
		}
		if res.BloomMiss {
			proof.Runs = append(proof.Runs, RunPart{
				BloomMiss:  true,
				BloomBytes: r.BloomBytes(),
				MHTRoot:    r.MHTRoot(),
			})
			continue
		}
		proof.Runs = append(proof.Runs, RunPart{BloomDigest: r.BloomDigest(), Prov: res})
		for _, ent := range res.Results {
			versions = append(versions, Version{Blk: ent.Key.Blk, Value: ent.Value})
		}
		if res.StopEarly {
			stopped = true
		}
	}

	sort.Slice(versions, func(i, j int) bool { return versions[i].Blk > versions[j].Blk })
	return versions, proof, nil
}

// VerifyProv checks a provenance proof against the published state root
// digest Hstate and returns the authenticated versions, newest first.
// It fails if any component digest cannot be reconstructed, if the parts
// do not hash to Hstate, if a claimed range mismatches the query, or if
// components were skipped without early-stop evidence.
func VerifyProv(hstate types.Hash, addr types.Address, blkLo, blkHi uint64, proof *Proof) ([]Version, error) {
	if proof == nil {
		return nil, fmt.Errorf("core: nil proof")
	}
	if proof.Addr != addr || proof.BlkLo != blkLo || proof.BlkHi != blkHi {
		return nil, fmt.Errorf("core: proof answers a different query")
	}
	if blkHi < blkLo {
		return nil, fmt.Errorf("core: inverted block range [%d,%d]", blkLo, blkHi)
	}
	if len(proof.Mem) < 1 || len(proof.Mem) > 2 {
		return nil, fmt.Errorf("core: proof has %d L0 parts", len(proof.Mem))
	}
	kl := types.ProvLowerKey(addr, blkLo)
	ku := types.ProvUpperKey(addr, blkHi)

	var (
		digests  []types.Hash
		versions []Version
		stopSeen bool
	)
	for _, mp := range proof.Mem {
		if mp.Proof == nil {
			return nil, fmt.Errorf("core: missing L0 proof part")
		}
		if mp.Proof.Lo != kl || mp.Proof.Hi != ku {
			return nil, fmt.Errorf("core: L0 proof covers range %v..%v, want %v..%v", mp.Proof.Lo, mp.Proof.Hi, kl, ku)
		}
		root, entries, err := mbtree.ReconstructRange(mp.Proof)
		if err != nil {
			return nil, fmt.Errorf("core: L0 part: %w", err)
		}
		digests = append(digests, root)
		for _, ent := range entries {
			if ent.Key.Addr != addr {
				continue
			}
			if ent.Key.Blk >= blkLo && ent.Key.Blk <= blkHi {
				versions = append(versions, Version{Blk: ent.Key.Blk, Value: ent.Value})
			}
			if ent.Key.Blk < blkLo {
				stopSeen = true
			}
		}
	}
	for i, rp := range proof.Runs {
		if rp.BloomMiss {
			f, err := bloom.Unmarshal(rp.BloomBytes)
			if err != nil {
				return nil, fmt.Errorf("core: run part %d: %w", i, err)
			}
			if f.MayContain(addr) {
				return nil, fmt.Errorf("core: run part %d claims a bloom miss but the filter admits the address", i)
			}
			digests = append(digests, run.Digest(rp.MHTRoot, rp.BloomBytes))
			continue
		}
		if rp.Prov == nil {
			return nil, fmt.Errorf("core: run part %d missing provenance result", i)
		}
		root, entries, err := run.ReconstructProv(addr, blkLo, blkHi, rp.Prov)
		if err != nil {
			return nil, fmt.Errorf("core: run part %d: %w", i, err)
		}
		bd := rp.BloomDigest
		digests = append(digests, types.HashData(root[:], bd[:]))
		for _, ent := range entries {
			versions = append(versions, Version{Blk: ent.Key.Blk, Value: ent.Value})
		}
		// Early-stop evidence: the span shows a version older than blkLo.
		for _, ent := range rp.Prov.Span {
			if ent.Key.Addr == addr && ent.Key.Blk < blkLo {
				stopSeen = true
			}
		}
	}
	if len(proof.Unsearched) > 0 && !stopSeen {
		return nil, fmt.Errorf("core: proof skips %d components without early-stop evidence", len(proof.Unsearched))
	}
	digests = append(digests, proof.Unsearched...)
	if types.HashConcat(digests...) != hstate {
		return nil, fmt.Errorf("core: reconstructed state digest does not match Hstate")
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i].Blk > versions[j].Blk })
	for i := 1; i < len(versions); i++ {
		if versions[i].Blk == versions[i-1].Blk {
			return nil, fmt.Errorf("core: duplicate version at block %d", versions[i].Blk)
		}
	}
	return versions, nil
}
