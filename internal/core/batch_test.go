package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cole/internal/types"
)

// batchFor deterministically generates block h's updates, with every
// fourth update duplicating an earlier address in the batch (stale value
// first, final value last) to exercise last-write-wins coalescing.
func batchFor(h uint64, writes, accounts int) []Update {
	r := rand.New(rand.NewSource(int64(h)))
	batch := make([]Update, 0, writes+writes/4)
	for w := 0; w < writes; w++ {
		addr := types.AddressFromUint64(uint64(r.Intn(accounts)))
		if w%4 == 3 {
			batch = append(batch, Update{Addr: addr, Value: types.ValueFromUint64(0xdead)})
		}
		batch = append(batch, Update{Addr: addr, Value: types.ValueFromUint64(h*1000 + uint64(w))})
	}
	return batch
}

// TestPutBatchMatchesSequentialPut drives the identical update stream
// through one engine via PutBatch and another via a sequential Put loop,
// across enough blocks to trigger flush cascades and level merges, in
// both merge modes. Every block's digest must be byte-identical — the
// acceptance bar that makes the batched pipeline a pure performance knob.
func TestPutBatchMatchesSequentialPut(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			eb := openEngine(t, testOpts(t, async))
			es := openEngine(t, testOpts(t, async))
			const blocks, writes, accounts = 80, 12, 40
			for h := uint64(1); h <= blocks; h++ {
				batch := batchFor(h, writes, accounts)
				if err := eb.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := eb.PutBatch(batch); err != nil {
					t.Fatal(err)
				}
				if err := es.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				for _, u := range batch {
					if err := es.Put(u.Addr, u.Value); err != nil {
						t.Fatal(err)
					}
				}
				rb, err := eb.Commit()
				if err != nil {
					t.Fatal(err)
				}
				rs, err := es.Commit()
				if err != nil {
					t.Fatal(err)
				}
				if rb != rs {
					t.Fatalf("block %d: PutBatch digest %s != sequential Put digest %s", h, rb, rs)
				}
			}
			// The structures must agree too, not just the digests.
			if lb, ls := fmt.Sprint(eb.LevelRunCounts()), fmt.Sprint(es.LevelRunCounts()); lb != ls {
				t.Fatalf("level run counts diverge: %s vs %s", lb, ls)
			}
		})
	}
}

// TestPutBatchDedupLastWriteWins writes one batch with duplicate
// addresses and checks the engine keeps exactly one entry per address,
// holding the batch's final value.
func TestPutBatchDedupLastWriteWins(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	a := types.AddressFromUint64(1)
	b := types.AddressFromUint64(2)
	if err := e.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	err := e.PutBatch([]Update{
		{Addr: a, Value: types.ValueFromUint64(10)},
		{Addr: b, Value: types.ValueFromUint64(20)},
		{Addr: a, Value: types.ValueFromUint64(11)},
		{Addr: a, Value: types.ValueFromUint64(12)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := e.MemEntries(); w != 2 {
		t.Fatalf("L0 holds %d entries after a 4-update batch over 2 addresses", w)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.Get(a)
	if err != nil || !ok {
		t.Fatalf("get a: ok=%v err=%v", ok, err)
	}
	if v != types.ValueFromUint64(12) {
		t.Fatalf("a = %v, want the batch's last write 12", v.Uint64())
	}
	// The provenance view must show ONE version for the block, not three.
	versions, _, err := e.ProvQuery(a, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 1 || versions[0].Value != types.ValueFromUint64(12) {
		t.Fatalf("prov versions = %+v, want exactly one with value 12", versions)
	}
}

// TestPutBatchOutsideBlock checks the lifecycle guard.
func TestPutBatchOutsideBlock(t *testing.T) {
	e := openEngine(t, testOpts(t, false))
	if err := e.PutBatch([]Update{{Addr: types.AddressFromUint64(1)}}); err == nil {
		t.Fatal("PutBatch outside a block succeeded")
	}
	// An empty batch is a no-op even outside a block.
	if err := e.PutBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestPutBatchCrashReplay commits batches past several cascades, crashes
// (Close without FlushAll), reopens, and replays the lost blocks with
// the same batches: the recovered digest must match the pre-crash one.
func TestPutBatchCrashReplay(t *testing.T) {
	for _, async := range []bool{false, true} {
		t.Run(fmt.Sprintf("async=%v", async), func(t *testing.T) {
			opts := testOpts(t, async)
			e, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			// 61 blocks of ~10 unique writes against B=32: the final
			// block leaves L0 residue in both merge modes, so the crash
			// actually loses state and replay has work to do.
			const blocks, writes, accounts = 61, 10, 30
			var pre types.Hash
			for h := uint64(1); h <= blocks; h++ {
				if err := e.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := e.PutBatch(batchFor(h, writes, accounts)); err != nil {
					t.Fatal(err)
				}
				if pre, err = e.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil { // crash: L0 lost
				t.Fatal(err)
			}

			e2, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			ckpt := e2.CheckpointHeight()
			if ckpt >= blocks {
				t.Fatalf("checkpoint %d leaves nothing to replay", ckpt)
			}
			for h := ckpt + 1; h <= blocks; h++ {
				if err := e2.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := e2.PutBatch(batchFor(h, writes, accounts)); err != nil {
					t.Fatal(err)
				}
				if _, err := e2.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if got := e2.RootDigest(); got != pre {
				t.Fatalf("replayed digest %s != pre-crash digest %s", got, pre)
			}
		})
	}
}
