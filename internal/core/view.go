package core

import (
	"sync/atomic"
	"time"

	"cole/internal/bloom"
	"cole/internal/mbtree"
	"cole/internal/obs"
	"cole/internal/run"
	"cole/internal/types"
)

// This file implements the engine's immutable, atomically-published read
// path: every commit (and FlushAll) builds a copy-on-write `view` of the
// whole structure — frozen L0 snapshots plus the committed run list in
// canonical search order — and publishes it through an atomic pointer.
// Get/GetAt/GetBatch/ProvQuery acquire the current view with two atomic
// operations, search it without ever touching the engine mutex, and
// release it. Runs retired by a merge are reference-counted: their files
// are unlinked only when the last view that can still see them is
// released, so readers never observe a use-after-delete.

// runRef wraps an immutable on-disk run with a reference count: one
// reference for the engine structure while the run is live, plus one per
// published view that includes it. When a merge retires the run, the
// structure reference is dropped and `retired` is set; the run's files
// are removed when the count reaches zero (i.e. after the last in-flight
// reader releases its view).
type runRef struct {
	r       *run.Run
	refs    atomic.Int64
	retired atomic.Bool
}

func newRunRef(r *run.Run) *runRef {
	rr := &runRef{r: r}
	rr.refs.Store(1) // the engine structure's reference
	return rr
}

func (rr *runRef) acquire() { rr.refs.Add(1) }

// release drops one reference; the zero-crossing holder reclaims the
// files of a retired run. A live (non-retired) run can never reach zero:
// the structure holds a reference until retirement.
func (rr *runRef) release() {
	if rr.refs.Add(-1) == 0 && rr.retired.Load() {
		_ = rr.r.Remove()
	}
}

// memView is one frozen L0 group as seen by a view: a copy-on-write
// snapshot of the MB-tree (hashes warmed, so every read on it — including
// ProveRange — is pure) and an immutable Bloom filter.
type memView struct {
	tree   *mbtree.Tree
	filter *bloom.Filter
	root   types.Hash
}

// view is one published, immutable snapshot of the engine: everything a
// reader needs, in canonical search order (Algorithm 6), which is also
// the root_hash_list order — so proofs built from a view verify against
// its root digest.
type view struct {
	refs      atomic.Int64
	reclaimed atomic.Bool
	// height is the committed block height this view reflects.
	height uint64
	// root is the Hstate digest of exactly this component set.
	root types.Hash
	// mems holds the L0 groups (writing, then merging in async mode).
	mems []*memView
	// runs holds every committed run, flattened across levels in search
	// order: per level the writing group newest-first, then (async) the
	// merging group newest-first.
	runs []*runRef
}

// release drops one reference to the view; the zero-crossing holder
// releases the view's run references exactly once. (A reader's
// acquire-validate-retry in acquireView can transiently re-raise the
// count from zero, hence the CAS guard.)
func (v *view) release() {
	if v.refs.Add(-1) > 0 {
		return
	}
	if v.reclaimed.CompareAndSwap(false, true) {
		for _, rr := range v.runs {
			rr.release()
		}
	}
}

// acquireView pins the currently-published view: load, increment, and
// validate that the pointer has not moved (if it has, the publisher may
// already have dropped its reference, so back off and retry). Lock-free:
// two atomic loads and one add on the happy path.
func (e *Engine) acquireView() *view {
	for {
		v := e.viewPtr.Load()
		v.refs.Add(1)
		if e.viewPtr.Load() == v {
			return v
		}
		v.release()
	}
}

// publishLocked builds the view of the current structure and swaps it in,
// releasing the publisher reference of the previous view. Caller holds
// e.mu and must have warmed the L0 root hashes (rootDigestLocked does),
// so that the frozen snapshots are clean and reader operations on them
// never write a hash cache.
func (e *Engine) publishLocked() {
	v := &view{height: e.committed}
	v.refs.Store(1) // the publisher's reference
	wg := e.mem[e.memWriting]
	wg.tree.RootHash()
	// The writing group keeps absorbing Puts after publication: snapshot
	// its tree (O(1), copy-on-write) and clone its filter. The merging
	// group is shared as-is: it stays frozen for its whole lifetime —
	// cascadeAsync installs a fresh group into the slot before promoting
	// it back to the writing role, so a group object published here never
	// absorbs Puts while views still hold it.
	v.mems = append(v.mems, &memView{tree: wg.tree.Snapshot(), filter: wg.filter.Clone()})
	if e.opts.AsyncMerge {
		mg := e.mem[1-e.memWriting]
		mg.tree.RootHash()
		v.mems = append(v.mems, &memView{tree: mg.tree, filter: mg.filter})
	}
	list := make([]types.Hash, 0, len(v.mems)+16)
	for _, m := range v.mems {
		m.root = m.tree.RootHash()
		list = append(list, m.root)
	}
	e.forEachRunLocked(func(rr *runRef) bool {
		rr.acquire()
		v.runs = append(v.runs, rr)
		list = append(list, rr.r.Digest())
		return true
	})
	v.root = types.HashConcat(list...)
	if old := e.viewPtr.Swap(v); old != nil {
		old.release()
	}
	if e.tr != nil {
		e.trace(obs.EvViewPublish, -1, 0, v.height, 0)
	}
}

// retireLocked drops the structure references of runs removed by the
// cascade that just committed (called after the manifest no longer names
// them and the freshly published view excludes them). Views still holding
// them keep the files alive; the last release unlinks them.
func (e *Engine) retireLocked() {
	for _, rr := range e.retiring {
		// Fold the run's point-read cache counters into the engine totals
		// before the files can be reclaimed, so Stats stays cumulative
		// across merges.
		v, i := rr.r.IOStats()
		e.stats.PageReads += v.PageReads + i.PageReads
		e.stats.CacheHits += v.CacheHits + i.CacheHits
		e.stats.SeqReads += v.SeqReads + i.SeqReads
		rr.retired.Store(true)
		rr.release()
		if e.tr != nil {
			e.trace(obs.EvViewRetire, -1, rr.r.Count()*types.EntrySize, rr.r.ID, 0)
		}
	}
	e.retiring = nil
}

// runsOf unwraps a ref slice for the merge iterators and builders.
func runsOf(refs []*runRef) []*run.Run {
	out := make([]*run.Run, len(refs))
	for i, rr := range refs {
		out[i] = rr.r
	}
	return out
}

// Snapshot is a pinned, immutable read handle on one published view: all
// reads through it observe the same committed block height, concurrently
// with commits, merges, and other readers, without any engine lock. A
// Snapshot must be Released (idempotent) so retired run files can be
// reclaimed.
type Snapshot struct {
	e        *Engine
	v        *view
	released atomic.Bool
}

// Snapshot pins the engine's current read view.
func (e *Engine) Snapshot() *Snapshot {
	return &Snapshot{e: e, v: e.acquireView()}
}

// ViewRoot returns the Hstate digest of the currently-published read view
// (the root of the last committed block) without taking the engine lock.
func (e *Engine) ViewRoot() types.Hash {
	v := e.acquireView()
	defer v.release()
	return v.root
}

// Height returns the committed block height the snapshot observes.
func (s *Snapshot) Height() uint64 { return s.v.height }

// Root returns the Hstate digest the snapshot's reads (and proofs) are
// consistent with.
func (s *Snapshot) Root() types.Hash { return s.v.root }

// Get returns the latest value of addr as of the snapshot's height.
func (s *Snapshot) Get(addr types.Address) (types.Value, bool, error) {
	start := time.Now()
	s.e.gets.Add(1)
	hit, ok, err := s.e.lookupInView(s.v, addr, types.MaxBlock)
	s.e.hists.Get.Record(time.Since(start))
	return hit.Value, ok, err
}

// GetAt returns the value of addr active at block height blk (≤ the
// snapshot height) and the height it was written at.
func (s *Snapshot) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	start := time.Now()
	s.e.gets.Add(1)
	hit, ok, err := s.e.lookupInView(s.v, addr, blk)
	s.e.hists.Get.Record(time.Since(start))
	return hit.Value, hit.Blk, ok, err
}

// GetBatch resolves many point lookups against the one pinned view.
func (s *Snapshot) GetBatch(addrs []types.Address) ([]ReadResult, error) {
	return s.e.getBatchInView(s.v, addrs)
}

// ProvQuery answers a provenance query against the snapshot's state; the
// proof verifies against Root().
func (s *Snapshot) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]Version, *Proof, error) {
	return s.e.provInView(s.v, addr, blkLo, blkHi)
}

// Release unpins the snapshot. Safe to call more than once.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.v.release()
	}
}
