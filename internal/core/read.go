package core

import (
	"time"

	"cole/internal/types"
)

// forEachRunLocked enumerates the committed runs in canonical search
// order (Algorithm 6): per level the writing-group runs newest-first
// followed by the merging-group runs newest-first. This is also the
// root_hash_list order. Caller holds e.mu; the read path instead walks
// the same ordering frozen inside a published view.
func (e *Engine) forEachRunLocked(fn func(*runRef) bool) {
	for _, lv := range e.levels {
		for _, g := range [2]int{lv.writing, lv.merging()} {
			runs := lv.groups[g]
			for i := len(runs) - 1; i >= 0; i-- {
				if !fn(runs[i]) {
					return
				}
			}
			if !e.opts.AsyncMerge {
				break
			}
		}
	}
}

// Get returns the latest value of addr as of the last committed block,
// searching levels newest to oldest and stopping at the first hit
// (Algorithm 6). Lock-free: it runs against the published read view,
// concurrently with commits and merges.
func (e *Engine) Get(addr types.Address) (types.Value, bool, error) {
	return e.getAt(addr, types.MaxBlock)
}

// GetAt returns the value of addr active at block height blk (the newest
// version with write height ≤ blk) along with that write height.
func (e *Engine) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	hit, ok, err := e.lookup(addr, blk)
	if err != nil || !ok {
		return types.Value{}, 0, false, err
	}
	return hit.Value, hit.Blk, true, nil
}

// ReadResult is one point-lookup outcome of a batched read.
type ReadResult struct {
	Value types.Value
	// Blk is the height the returned value was written at.
	Blk   uint64
	Found bool
}

// GetBatch resolves many point lookups against one pinned view: all
// results are consistent with the same committed state, and the view is
// acquired once instead of once per address.
func (e *Engine) GetBatch(addrs []types.Address) ([]ReadResult, error) {
	v := e.acquireView()
	defer v.release()
	return e.getBatchInView(v, addrs)
}

func (e *Engine) getBatchInView(v *view, addrs []types.Address) ([]ReadResult, error) {
	// The batch histogram records whole batches (one sample per call,
	// not per address) — the unit the open-loop harness dispatches.
	start := time.Now()
	e.gets.Add(int64(len(addrs)))
	out := make([]ReadResult, len(addrs))
	for i, addr := range addrs {
		hit, ok, err := e.lookupInView(v, addr, types.MaxBlock)
		if err != nil {
			return nil, err
		}
		out[i] = ReadResult{Value: hit.Value, Blk: hit.Blk, Found: ok}
	}
	e.hists.GetBatch.Record(time.Since(start))
	return out, nil
}

type versionHit struct {
	Value types.Value
	Blk   uint64
}

func (e *Engine) getAt(addr types.Address, blk uint64) (types.Value, bool, error) {
	hit, ok, err := e.lookup(addr, blk)
	if err != nil || !ok {
		return types.Value{}, false, err
	}
	return hit.Value, true, nil
}

func (e *Engine) lookup(addr types.Address, blk uint64) (versionHit, bool, error) {
	start := time.Now()
	v := e.acquireView()
	defer v.release()
	e.gets.Add(1)
	hit, ok, err := e.lookupInView(v, addr, blk)
	e.hists.Get.Record(time.Since(start))
	return hit, ok, err
}

// lookupInView is the zero-lock point lookup (Algorithm 6) over one
// published view: L0 snapshots first (filter-gated tree predecessor),
// then every run newest-to-oldest, probing each run's Bloom filter before
// descending its learned index — a filter miss skips the run without any
// page read and is counted in Stats.BloomSkips.
func (e *Engine) lookupInView(v *view, addr types.Address, blk uint64) (versionHit, bool, error) {
	key := types.CompoundKey{Addr: addr, Blk: blk}
	for _, m := range v.mems {
		if !m.filter.MayContain(addr) {
			continue
		}
		if ent, ok := m.tree.Predecessor(key); ok && ent.Key.Addr == addr {
			return versionHit{Value: ent.Value, Blk: ent.Key.Blk}, true, nil
		}
	}
	for _, rr := range v.runs {
		if !rr.r.MayContain(addr) {
			e.bloomSkips.Add(1)
			continue
		}
		ent, _, ok, err := rr.r.SearchAt(addr, blk)
		if err != nil {
			return versionHit{}, false, e.noteCorrupt(err)
		}
		if ok {
			return versionHit{Value: ent.Value, Blk: ent.Key.Blk}, true, nil
		}
	}
	return versionHit{}, false, nil
}
