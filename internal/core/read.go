package core

import (
	"cole/internal/run"
	"cole/internal/types"
)

// searchParts enumerates the engine's components in canonical search order
// (Algorithm 6): L0 writing group, L0 merging group, then per level the
// writing-group runs newest-first followed by the merging-group runs
// newest-first. This is also the root_hash_list order.
func (e *Engine) forEachMemLocked(fn func(*memGroup) bool) {
	if !fn(e.mem[e.memWriting]) {
		return
	}
	if e.opts.AsyncMerge {
		fn(e.mem[1-e.memWriting])
	}
}

func (e *Engine) forEachRunLocked(fn func(*run.Run) bool) {
	for _, lv := range e.levels {
		for _, g := range [2]int{lv.writing, lv.merging()} {
			runs := lv.groups[g]
			for i := len(runs) - 1; i >= 0; i-- {
				if !fn(runs[i]) {
					return
				}
			}
			if !e.opts.AsyncMerge {
				break
			}
		}
	}
}

// Get returns the latest value of addr, searching levels newest to oldest
// and stopping at the first hit (Algorithm 6).
func (e *Engine) Get(addr types.Address) (types.Value, bool, error) {
	return e.getAt(addr, types.MaxBlock)
}

// GetAt returns the value of addr active at block height blk (the newest
// version with write height ≤ blk) along with that write height.
func (e *Engine) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	hit, ok, err := e.lookup(addr, blk)
	if err != nil || !ok {
		return types.Value{}, 0, false, err
	}
	return hit.Value, hit.Blk, true, nil
}

type versionHit struct {
	Value types.Value
	Blk   uint64
}

func (e *Engine) getAt(addr types.Address, blk uint64) (types.Value, bool, error) {
	hit, ok, err := e.lookup(addr, blk)
	if err != nil || !ok {
		return types.Value{}, false, err
	}
	return hit.Value, true, nil
}

func (e *Engine) lookup(addr types.Address, blk uint64) (versionHit, bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Gets++

	key := types.CompoundKey{Addr: addr, Blk: blk}
	var (
		found bool
		hit   versionHit
	)
	e.forEachMemLocked(func(g *memGroup) bool {
		if !g.filter.MayContain(addr) {
			return true
		}
		if ent, ok := g.tree.Predecessor(key); ok && ent.Key.Addr == addr {
			hit = versionHit{Value: ent.Value, Blk: ent.Key.Blk}
			found = true
			return false
		}
		return true
	})
	if found {
		return hit, true, nil
	}
	var searchErr error
	e.forEachRunLocked(func(r *run.Run) bool {
		ent, _, ok, _, err := r.GetAt(addr, blk)
		if err != nil {
			searchErr = err
			return false
		}
		if ok {
			hit = versionHit{Value: ent.Value, Blk: ent.Key.Blk}
			found = true
			return false
		}
		return true
	})
	if searchErr != nil {
		return versionHit{}, false, searchErr
	}
	return hit, found, nil
}
