package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cole/internal/types"
)

// TestMissingRunFileDetectedOnOpen simulates a crash that lost a data file
// the manifest references: the open must fail loudly, never silently serve
// partial state.
func TestMissingRunFileDetectedOnOpen(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 41, 100, 5, 20)
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Remove one value file referenced by the manifest.
	matches, err := filepath.Glob(filepath.Join(opts.Dir, "run-*.val"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no run files found: %v", err)
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("missing run file must fail open")
	}
}

// TestTruncatedValueFileDetected corrupts a value file's length: the size
// check at open must reject it.
func TestTruncatedValueFileDetected(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 43, 100, 5, 20)
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	matches, _ := filepath.Glob(filepath.Join(opts.Dir, "run-*.val"))
	if len(matches) == 0 {
		t.Fatal("no value files")
	}
	st, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(matches[0], st.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); err == nil {
		t.Fatal("truncated value file must fail open")
	}
}

// TestTornManifestTmpIgnored simulates a crash between writing the
// manifest temp file and renaming it: the temp must be ignored and the
// previous manifest used.
func TestTornManifestTmpIgnored(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 47, 100, 5, 20)
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	h := e.Height()
	e.Close()

	if err := os.WriteFile(filepath.Join(opts.Dir, "MANIFEST.tmp"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Height() != h {
		t.Fatalf("height %d after torn tmp, want %d", e2.Height(), h)
	}
	addr := types.AddressFromUint64(1)
	want, wantOK := o.latest(addr)
	v, ok, err := e2.Get(addr)
	if err != nil || ok != wantOK || (ok && v != want.Value) {
		t.Fatalf("state wrong after torn manifest tmp: %v", err)
	}
}

// TestProofMarshalRoundTrip serializes a provenance proof across the
// "wire" and verifies the decoded copy.
func TestProofMarshalRoundTrip(t *testing.T) {
	e := openEngine(t, testOpts(t, true))
	o := newOracle()
	root := runWorkload(t, e, o, 53, 200, 5, 30)
	addr := types.AddressFromUint64(7)

	want, proof, err := e.ProvQuery(addr, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := proof.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty encoding")
	}
	decoded, err := UnmarshalProof(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyProv(root, addr, 50, 150, decoded)
	if err != nil {
		t.Fatalf("decoded proof failed verification: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded proof yields %d versions, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("version %d mismatch after round trip", i)
		}
	}
	// Corrupted wire bytes must fail to decode or to verify.
	raw[len(raw)/2] ^= 0xFF
	if p2, err := UnmarshalProof(raw); err == nil {
		if _, err := VerifyProv(root, addr, 50, 150, p2); err == nil {
			t.Fatal("corrupted encoding verified")
		}
	}
}

// TestMergeWaitBackpressure forces slow merges to verify the commit
// checkpoint blocks rather than corrupting state (Algorithm 5 line 9).
func TestMergeWaitBackpressure(t *testing.T) {
	opts := testOpts(t, true)
	opts.MemCapacity = 8 // flush every ~2 blocks: merges constantly in flight
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 59, 400, 5, 10)
	if e.Stats().MergeWaits == 0 {
		t.Skip("no merge waits observed on this machine; nothing to assert")
	}
	for a := 0; a < 10; a++ {
		addr := types.AddressFromUint64(uint64(a))
		want, wantOK := o.latest(addr)
		v, ok, err := e.Get(addr)
		if err != nil || ok != wantOK || (ok && v != want.Value) {
			t.Fatalf("state wrong under merge back-pressure: %v", err)
		}
	}
}

// TestBloomFalsePositiveFallback forces a sky-high false-positive rate:
// lookups must still be correct, just slower (the paper's design note:
// bloom hits fall through to the real search).
func TestBloomFalsePositiveFallback(t *testing.T) {
	opts := testOpts(t, false)
	opts.BloomFP = 0.9 // nearly useless filters
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 61, 150, 5, 25)
	for a := 0; a < 25; a++ {
		addr := types.AddressFromUint64(uint64(a))
		want, wantOK := o.latest(addr)
		v, ok, err := e.Get(addr)
		if err != nil || ok != wantOK || (ok && v != want.Value) {
			t.Fatalf("state wrong with degenerate blooms: %v", err)
		}
	}
	// Absent addresses must still miss.
	for a := 1000; a < 1020; a++ {
		if _, ok, _ := e.Get(types.AddressFromUint64(uint64(a))); ok {
			t.Fatal("false positive leaked a phantom value")
		}
	}
}

// TestOptimalPLAEngineEquivalence runs the same workload with both PLA
// builders: query results and Hstate must be identical except for index
// internals (Hstate covers data and Merkle roots, not models — so even
// Hstate matches).
func TestOptimalPLAEngineEquivalence(t *testing.T) {
	optsG := testOpts(t, false)
	optsO := testOpts(t, false)
	optsO.OptimalPLA = true
	g := openEngine(t, optsG)
	op := openEngine(t, optsO)
	og, oo := newOracle(), newOracle()
	rg := runWorkload(t, g, og, 67, 200, 5, 30)
	ro := runWorkload(t, op, oo, 67, 200, 5, 30)
	if rg != ro {
		t.Fatal("Hstate must not depend on the PLA builder (models are unauthenticated)")
	}
	for a := 0; a < 30; a++ {
		addr := types.AddressFromUint64(uint64(a))
		v1, ok1, err1 := g.Get(addr)
		v2, ok2, err2 := op.Get(addr)
		if err1 != nil || err2 != nil || ok1 != ok2 || v1 != v2 {
			t.Fatalf("builders disagree at addr %d: %v %v", a, err1, err2)
		}
	}
}

// TestDirIsFileFails covers a pathological environment.
func TestDirIsFileFails(t *testing.T) {
	f := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: f}); err == nil {
		t.Fatal("file-as-dir must fail")
	}
	if _, err := Open(Options{Dir: filepath.Join(f, "sub")}); err == nil {
		t.Fatal("dir under a file must fail")
	}
}

// TestManifestRejectsUnknownFieldsGracefully ensures forward-compat junk
// in the manifest directory doesn't break opens.
func TestStrayNonRunFilesIgnored(t *testing.T) {
	opts := testOpts(t, false)
	e := openEngine(t, opts)
	o := newOracle()
	runWorkload(t, e, o, 71, 60, 5, 10)
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.Close()
	for _, name := range []string{"notes.txt", "run.backup", "LOCK"} {
		if err := os.WriteFile(filepath.Join(opts.Dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	e2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	for _, name := range []string{"notes.txt", "run.backup", "LOCK"} {
		if _, err := os.Stat(filepath.Join(opts.Dir, name)); err != nil {
			t.Fatalf("unrelated file %s was deleted", name)
		}
	}
	if !strings.HasPrefix(filepath.Base(e2.manifestPath()), "MANIFEST") {
		t.Fatal("sanity")
	}
}
