package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Marshal serializes the proof for transmission to a verifying client.
// The verifier decodes with UnmarshalProof and runs VerifyProv against the
// block header's Hstate; nothing in the encoding is trusted — every field
// is re-checked during verification.
func (p *Proof) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("core: encode proof: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalProof parses a proof produced by Marshal.
func UnmarshalProof(raw []byte) (*Proof, error) {
	var p Proof
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode proof: %w", err)
	}
	return &p, nil
}
