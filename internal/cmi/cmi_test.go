package cmi

import (
	"math/rand"
	"testing"

	"cole/internal/kvstore"
	"cole/internal/types"
)

func newStore(t *testing.T) (*Store, *kvstore.DB) {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db), db
}

func TestPutGetLatest(t *testing.T) {
	s, _ := newStore(t)
	a := types.AddressFromUint64(1)
	for blk := uint64(1); blk <= 20; blk++ {
		if err := s.Put(a, blk, types.ValueFromUint64(blk*10)); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get(a)
	if err != nil || !ok || v.Uint64() != 200 {
		t.Fatalf("get: %v %v %v", v.Uint64(), ok, err)
	}
	if _, ok, _ := s.Get(types.AddressFromUint64(99)); ok {
		t.Fatal("absent address must miss")
	}
}

func TestSameBlockOverwrite(t *testing.T) {
	s, _ := newStore(t)
	a := types.AddressFromUint64(2)
	_ = s.Put(a, 5, types.ValueFromUint64(1))
	_ = s.Put(a, 5, types.ValueFromUint64(2))
	n, _ := s.versionCount(a)
	if n != 1 {
		t.Fatalf("same-block writes must collapse: %d versions", n)
	}
	v, _, _ := s.Get(a)
	if v.Uint64() != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestGetAtHistorical(t *testing.T) {
	s, _ := newStore(t)
	a := types.AddressFromUint64(3)
	for _, blk := range []uint64{10, 20, 30} {
		_ = s.Put(a, blk, types.ValueFromUint64(blk))
	}
	cases := []struct {
		q, want uint64
		ok      bool
	}{{5, 0, false}, {10, 10, true}, {15, 10, true}, {25, 20, true}, {100, 30, true}}
	for _, c := range cases {
		_, b, ok, err := s.GetAt(a, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.ok || (ok && b != c.want) {
			t.Fatalf("GetAt(%d) = (%d,%v), want (%d,%v)", c.q, b, ok, c.want, c.ok)
		}
	}
}

func TestProvQuery(t *testing.T) {
	s, _ := newStore(t)
	a := types.AddressFromUint64(4)
	for blk := uint64(2); blk <= 40; blk += 2 {
		_ = s.Put(a, blk, types.ValueFromUint64(blk))
	}
	out, err := s.ProvQuery(a, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 { // 10,12,14,16,18,20
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Key.Blk != 20 || out[5].Key.Blk != 10 {
		t.Fatal("results must be newest first")
	}
	if _, err := s.ProvQuery(a, 20, 10); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestRootTracksEveryWrite(t *testing.T) {
	s, _ := newStore(t)
	a := types.AddressFromUint64(5)
	if s.Root() != types.ZeroHash {
		t.Fatal("fresh store root must be zero")
	}
	_ = s.Put(a, 1, types.ValueFromUint64(1))
	r1 := s.Root()
	_ = s.Put(a, 2, types.ValueFromUint64(2))
	r2 := s.Root()
	if r1 == types.ZeroHash || r1 == r2 {
		t.Fatal("root must change with each version")
	}
	// Deterministic across stores.
	s2, _ := newStore(t)
	_ = s2.Put(a, 1, types.ValueFromUint64(1))
	_ = s2.Put(a, 2, types.ValueFromUint64(2))
	if s2.Root() != r2 {
		t.Fatal("identical writes must give identical roots")
	}
}

func TestManyAddressesAgainstOracle(t *testing.T) {
	s, _ := newStore(t)
	type ver struct {
		blk uint64
		v   types.Value
	}
	hist := map[types.Address][]ver{}
	r := rand.New(rand.NewSource(7))
	for blk := uint64(1); blk <= 200; blk++ {
		for i := 0; i < 3; i++ {
			a := types.AddressFromUint64(r.Uint64() % 40)
			v := types.ValueFromUint64(r.Uint64())
			if err := s.Put(a, blk, v); err != nil {
				t.Fatal(err)
			}
			h := hist[a]
			if len(h) > 0 && h[len(h)-1].blk == blk {
				h[len(h)-1].v = v
			} else {
				h = append(h, ver{blk, v})
			}
			hist[a] = h
		}
	}
	for a, h := range hist {
		v, ok, err := s.Get(a)
		if err != nil || !ok || v != h[len(h)-1].v {
			t.Fatalf("latest mismatch for %v: %v", a, err)
		}
		// Random historical probes.
		for i := 0; i < 10; i++ {
			q := uint64(r.Intn(220))
			var want *ver
			for j := len(h) - 1; j >= 0; j-- {
				if h[j].blk <= q {
					want = &h[j]
					break
				}
			}
			gv, gb, ok, err := s.GetAt(a, q)
			if err != nil {
				t.Fatal(err)
			}
			if (want == nil) == ok {
				t.Fatalf("GetAt(%v,%d): ok=%v want %v", a, q, ok, want != nil)
			}
			if want != nil && (gb != want.blk || gv != want.v) {
				t.Fatalf("GetAt(%v,%d): blk %d want %d", a, q, gb, want.blk)
			}
		}
	}
	if s.Stats().HashIO == 0 {
		t.Fatal("hash-path IO must be counted")
	}
}

func TestStorageComparableToData(t *testing.T) {
	// CMI avoids node persistence: storage should be within a small factor
	// of the raw version data (the upper trie and hash nodes dominate).
	s, db := newStore(t)
	const versions = 2000
	for i := uint64(0); i < versions; i++ {
		if err := s.Put(types.AddressFromUint64(i%50), i+1, types.ValueFromUint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	dataBytes := int64(versions * (8 + types.ValueSize))
	if db.SizeOnDisk() > dataBytes*40 {
		t.Fatalf("CMI storage %d implausibly large vs data %d", db.SizeOnDisk(), dataBytes)
	}
}
