// Package cmi implements the paper's Column-based Merkle Index baseline
// (§8.1.1): the column-based design paired with *traditional* Merkle
// indexes instead of learned ones.
//
// Two-level structure, both levels on the kvstore (RocksDB substitute):
//
//   - Upper index: a non-persistent MPT keyed by state address whose value
//     is the root hash of that address's lower index. Hstate is the upper
//     trie's root.
//   - Lower index: per address, the historical versions stored
//     contiguously (seq → ⟨blk, value⟩) under an m-ary Merkle tree whose
//     interior hashes are materialized as kvstore entries and refreshed
//     along the append path — every version write re-reads and re-writes
//     O(m·log_m n) hash nodes plus the whole upper-trie path, the
//     read+write IO churn the paper blames for CMI being 7–22× slower
//     than MPT. (The paper uses an MB-tree [29] for the lower level; an
//     append-only m-ary Merkle array is the same structure specialized to
//     COLE's append-only version streams — DESIGN.md §4.)
package cmi

import (
	"encoding/binary"
	"fmt"

	"cole/internal/kvstore"
	"cole/internal/mpt"
	"cole/internal/types"
)

// Fanout of the lower-index Merkle trees.
const lowerFanout = 4

// Store is a CMI state store.
type Store struct {
	db    *kvstore.DB
	upper *mpt.Trie
	stats Stats
}

// Stats counts store operations.
type Stats struct {
	Puts      int64
	Gets      int64
	HashIO    int64 // lower-index hash nodes read+written
	VersionIO int64
}

// New creates a CMI store over db.
func New(db *kvstore.DB) *Store {
	return &Store{db: db, upper: mpt.New(db, false)}
}

// Root returns Hstate: the upper trie's root.
func (s *Store) Root() types.Hash { return s.upper.Root() }

// ---- lower-index key space ----

func versionKey(addr types.Address, seq uint64) []byte {
	k := make([]byte, 2+types.AddressSize+8)
	copy(k, "v/")
	copy(k[2:], addr[:])
	binary.BigEndian.PutUint64(k[2+types.AddressSize:], seq)
	return k
}

func countKey(addr types.Address) []byte {
	k := make([]byte, 2+types.AddressSize)
	copy(k, "c/")
	copy(k[2:], addr[:])
	return k
}

func hashKey(addr types.Address, layer int, idx uint64) []byte {
	k := make([]byte, 2+types.AddressSize+1+8)
	copy(k, "h/")
	copy(k[2:], addr[:])
	k[2+types.AddressSize] = byte(layer)
	binary.BigEndian.PutUint64(k[3+types.AddressSize:], idx)
	return k
}

func encodeVersion(blk uint64, v types.Value) []byte {
	out := make([]byte, 8+types.ValueSize)
	binary.BigEndian.PutUint64(out, blk)
	copy(out[8:], v[:])
	return out
}

func decodeVersion(raw []byte) (uint64, types.Value, error) {
	if len(raw) != 8+types.ValueSize {
		return 0, types.Value{}, fmt.Errorf("cmi: version record %d bytes", len(raw))
	}
	var v types.Value
	copy(v[:], raw[8:])
	return binary.BigEndian.Uint64(raw), v, nil
}

func (s *Store) versionCount(addr types.Address) (uint64, error) {
	raw, ok, err := s.db.Get(countKey(addr))
	if err != nil || !ok {
		return 0, err
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("cmi: corrupt count record")
	}
	return binary.BigEndian.Uint64(raw), nil
}

// Put appends a version of addr written at block blk and refreshes the
// Merkle path up to the upper trie.
func (s *Store) Put(addr types.Address, blk uint64, value types.Value) error {
	s.stats.Puts++
	n, err := s.versionCount(addr)
	if err != nil {
		return err
	}
	seq := n
	if n > 0 {
		// Same-block rewrite updates the newest version in place.
		raw, ok, err := s.db.Get(versionKey(addr, n-1))
		if err != nil {
			return err
		}
		if ok {
			lastBlk, _, err := decodeVersion(raw)
			if err != nil {
				return err
			}
			if lastBlk == blk {
				seq = n - 1
			}
		}
	}
	if err := s.db.Put(versionKey(addr, seq), encodeVersion(blk, value)); err != nil {
		return err
	}
	s.stats.VersionIO++
	newCount := seq + 1
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], newCount)
	if err := s.db.Put(countKey(addr), cnt[:]); err != nil {
		return err
	}
	root, err := s.refreshPath(addr, seq, newCount, blk, value)
	if err != nil {
		return err
	}
	// Upper trie maps the address to the lower root (read+write IO along
	// the whole trie path, refreshing every node hash).
	return s.upper.Put(addr, types.Value(root))
}

// refreshPath recomputes the Merkle nodes covering position seq and
// returns the lower root. Layer 0 node i = h(version_i); layer ℓ node i =
// h(children i·m … i·m+m−1 of layer ℓ−1).
func (s *Store) refreshPath(addr types.Address, seq, count uint64, blk uint64, value types.Value) (types.Hash, error) {
	leaf := types.HashData(encodeVersion(blk, value))
	if err := s.db.Put(hashKey(addr, 0, seq), leaf[:]); err != nil {
		return types.Hash{}, err
	}
	s.stats.HashIO++
	layer := 0
	idx := seq
	layerCount := count
	for layerCount > 1 {
		parentIdx := idx / lowerFanout
		groupStart := parentIdx * lowerFanout
		groupEnd := groupStart + lowerFanout
		if groupEnd > layerCount {
			groupEnd = layerCount
		}
		hasher := make([]byte, 0, lowerFanout*types.HashSize)
		for i := groupStart; i < groupEnd; i++ {
			raw, ok, err := s.db.Get(hashKey(addr, layer, i))
			if err != nil {
				return types.Hash{}, err
			}
			if !ok {
				return types.Hash{}, fmt.Errorf("cmi: missing hash node (%d,%d) for %v", layer, i, addr)
			}
			s.stats.HashIO++
			hasher = append(hasher, raw...)
		}
		parent := types.HashData(hasher)
		if err := s.db.Put(hashKey(addr, layer+1, parentIdx), parent[:]); err != nil {
			return types.Hash{}, err
		}
		s.stats.HashIO++
		layer++
		idx = parentIdx
		layerCount = (layerCount + lowerFanout - 1) / lowerFanout
	}
	raw, ok, err := s.db.Get(hashKey(addr, layer, 0))
	if err != nil || !ok {
		return types.Hash{}, fmt.Errorf("cmi: missing lower root for %v: %v", addr, err)
	}
	var root types.Hash
	copy(root[:], raw)
	return root, nil
}

// Get returns the latest value of addr.
func (s *Store) Get(addr types.Address) (types.Value, bool, error) {
	s.stats.Gets++
	n, err := s.versionCount(addr)
	if err != nil || n == 0 {
		return types.Value{}, false, err
	}
	raw, ok, err := s.db.Get(versionKey(addr, n-1))
	if err != nil || !ok {
		return types.Value{}, false, err
	}
	_, v, err := decodeVersion(raw)
	if err != nil {
		return types.Value{}, false, err
	}
	return v, true, nil
}

// GetAt returns the value of addr active at block height blk.
func (s *Store) GetAt(addr types.Address, blk uint64) (types.Value, uint64, bool, error) {
	s.stats.Gets++
	n, err := s.versionCount(addr)
	if err != nil || n == 0 {
		return types.Value{}, 0, false, err
	}
	// Binary search the newest version with Blk ≤ blk.
	lo, hi := uint64(0), n-1
	found := false
	var ansBlk uint64
	var ansVal types.Value
	for lo <= hi {
		mid := lo + (hi-lo)/2
		raw, ok, err := s.db.Get(versionKey(addr, mid))
		if err != nil || !ok {
			return types.Value{}, 0, false, fmt.Errorf("cmi: missing version %d: %v", mid, err)
		}
		b, v, err := decodeVersion(raw)
		if err != nil {
			return types.Value{}, 0, false, err
		}
		if b <= blk {
			found, ansBlk, ansVal = true, b, v
			lo = mid + 1
		} else {
			if mid == 0 {
				break
			}
			hi = mid - 1
		}
	}
	return ansVal, ansBlk, found, nil
}

// ProvQuery returns the versions of addr within [blkLo, blkHi], newest
// first (CMI is dropped from the paper's provenance figures because it
// cannot scale; the query exists for completeness).
func (s *Store) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]types.Entry, error) {
	if blkHi < blkLo {
		return nil, fmt.Errorf("cmi: inverted range [%d,%d]", blkLo, blkHi)
	}
	n, err := s.versionCount(addr)
	if err != nil || n == 0 {
		return nil, err
	}
	var out []types.Entry
	for i := n; i > 0; i-- {
		raw, ok, err := s.db.Get(versionKey(addr, i-1))
		if err != nil || !ok {
			return nil, fmt.Errorf("cmi: missing version %d: %v", i-1, err)
		}
		b, v, err := decodeVersion(raw)
		if err != nil {
			return nil, err
		}
		if b < blkLo {
			break
		}
		if b <= blkHi {
			out = append(out, types.Entry{Key: types.CompoundKey{Addr: addr, Blk: b}, Value: v})
		}
	}
	return out, nil
}

// Stats returns counters.
func (s *Store) Stats() Stats { return s.stats }
