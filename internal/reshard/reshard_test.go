package reshard_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/reshard"
	"cole/internal/shard"
	"cole/internal/types"
)

// testMemCap is small enough to force ≥3 cascaded on-disk levels from a
// modest block count (B=32, T=4: an L3 run holds 512 entries).
const testMemCap = 32

func buildOpts(dir string, shards int, async bool) core.Options {
	return core.Options{
		Dir:         dir,
		Shards:      shards,
		MemCapacity: testMemCap,
		AsyncMerge:  async,
	}
}

func addr(i int) types.Address { return types.AddressFromString(fmt.Sprintf("acct-%04d", i)) }

func val(i, blk int) types.Value {
	return types.ValueFromBytes([]byte(fmt.Sprintf("v-%d-at-%d", i, blk)))
}

// buildStore writes `blocks` blocks of overwriting updates (addresses
// cycle, so every address accrues many versions), flushes, and closes.
func buildStore(t *testing.T, dir string, shards, blocks, accounts int, async bool) {
	t.Helper()
	s, err := shard.Open(buildOpts(dir, shards, async))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	for b := 1; b <= blocks; b++ {
		if err := s.BeginBlock(uint64(b)); err != nil {
			t.Fatalf("begin %d: %v", b, err)
		}
		for k := 0; k < 10; k++ {
			i := (b*10 + k) % accounts
			if err := s.Put(addr(i), val(i, b)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatalf("commit %d: %v", b, err)
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

// answers captures every externally observable read result of a store.
type answers struct {
	height uint64
	gets   map[int]string         // addr index -> value (or "!absent")
	getAts map[string]string      // "i@blk" -> "blk:value"
	provs  map[int][]core.Version // addr index -> versions in [1, tip]
	batch  []core.ReadResult
}

func openStore(t *testing.T, dir string, async bool) *shard.Store {
	t.Helper()
	s, err := shard.Open(core.Options{Dir: dir, MemCapacity: testMemCap, AsyncMerge: async})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return s
}

func snapshotAnswers(t *testing.T, dir string, accounts int, async bool) *answers {
	t.Helper()
	s := openStore(t, dir, async)
	defer s.Close()
	return collectAnswers(t, s, accounts)
}

func collectAnswers(t *testing.T, s *shard.Store, accounts int) *answers {
	t.Helper()
	a := &answers{
		height: s.Height(),
		gets:   map[int]string{},
		getAts: map[string]string{},
		provs:  map[int][]core.Version{},
	}
	root := s.RootDigest()
	addrs := make([]types.Address, accounts)
	for i := 0; i < accounts; i++ {
		addrs[i] = addr(i)
		v, ok, err := s.Get(addr(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !ok {
			a.gets[i] = "!absent"
		} else {
			a.gets[i] = v.String()
		}
		for blk := uint64(5); blk <= a.height; blk += 13 {
			v, wblk, ok, err := s.GetAt(addr(i), blk)
			if err != nil {
				t.Fatalf("getat %d@%d: %v", i, blk, err)
			}
			key := fmt.Sprintf("%d@%d", i, blk)
			if !ok {
				a.getAts[key] = "!absent"
			} else {
				a.getAts[key] = fmt.Sprintf("%d:%s", wblk, v)
			}
		}
		versions, proof, err := s.ProvQuery(addr(i), 1, a.height)
		if err != nil {
			t.Fatalf("prov %d: %v", i, err)
		}
		if _, err := shard.VerifyProv(root, addr(i), 1, a.height, proof); err != nil {
			t.Fatalf("prov proof %d does not verify: %v", i, err)
		}
		a.provs[i] = versions
	}
	batch, err := s.GetBatch(addrs)
	if err != nil {
		t.Fatalf("getbatch: %v", err)
	}
	a.batch = batch
	return a
}

func diffAnswers(t *testing.T, label string, want, got *answers) {
	t.Helper()
	if want.height != got.height {
		t.Fatalf("%s: height %d != %d", label, got.height, want.height)
	}
	for i, w := range want.gets {
		if got.gets[i] != w {
			t.Errorf("%s: Get(%d) = %q, want %q", label, i, got.gets[i], w)
		}
	}
	for k, w := range want.getAts {
		if got.getAts[k] != w {
			t.Errorf("%s: GetAt(%s) = %q, want %q", label, k, got.getAts[k], w)
		}
	}
	for i, w := range want.provs {
		g := got.provs[i]
		if len(g) != len(w) {
			t.Errorf("%s: ProvQuery(%d) returned %d versions, want %d", label, i, len(g), len(w))
			continue
		}
		for k := range w {
			if g[k].Blk != w[k].Blk || g[k].Value != w[k].Value {
				t.Errorf("%s: ProvQuery(%d)[%d] = {%d %s}, want {%d %s}",
					label, i, k, g[k].Blk, g[k].Value, w[k].Blk, w[k].Value)
			}
		}
	}
	if len(want.batch) != len(got.batch) {
		t.Fatalf("%s: batch length %d != %d", label, len(got.batch), len(want.batch))
	}
	for i := range want.batch {
		if want.batch[i] != got.batch[i] {
			t.Errorf("%s: GetBatch[%d] = %+v, want %+v", label, i, got.batch[i], want.batch[i])
		}
	}
}

// TestReshardRoundTrip is the property test: a deep store with
// overwritten keys resharded N→M→N preserves every Get/GetAt/GetBatch/
// ProvQuery answer byte for byte, with all shard proofs verifying at
// each stage.
func TestReshardRoundTrip(t *testing.T) {
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			const accounts, blocks = 37, 150
			dir := t.TempDir()
			buildStore(t, dir, 2, blocks, accounts, async)
			want := snapshotAnswers(t, dir, accounts, async)
			func() {
				s := openStore(t, dir, async)
				defer s.Close()
				if lv := s.Storage().Levels; lv < 3 {
					t.Fatalf("store too shallow for the property test: %d levels", lv)
				}
			}()

			for hop, target := range []int{5, 2} {
				rep, err := reshard.Reshard(dir, target, reshard.Options{})
				if err != nil {
					t.Fatalf("reshard hop %d to %d: %v", hop, target, err)
				}
				if rep.ToShards != target || rep.Height != want.height {
					t.Fatalf("report %+v: want to=%d height=%d", rep, target, want.height)
				}
				if rep.Entries != int64(blocks*10) {
					t.Fatalf("report entries %d, want %d", rep.Entries, blocks*10)
				}
				s := openStore(t, dir, async)
				if s.Shards() != target {
					t.Fatalf("shards = %d, want %d", s.Shards(), target)
				}
				if s.Generation() != uint64(hop+1) {
					t.Fatalf("generation = %d, want %d", s.Generation(), hop+1)
				}
				got := collectAnswers(t, s, accounts)
				s.Close()
				diffAnswers(t, fmt.Sprintf("after reshard to %d", target), want, got)
			}
		})
	}
}

// TestReshardWritableAfter checks the rewritten store keeps working as a
// normal store: new blocks commit, cascade, and survive reopen.
func TestReshardWritableAfter(t *testing.T) {
	const accounts = 11
	dir := t.TempDir()
	buildStore(t, dir, 2, 40, accounts, false)
	if _, err := reshard.Reshard(dir, 3, reshard.Options{}); err != nil {
		t.Fatalf("reshard: %v", err)
	}
	s := openStore(t, dir, false)
	h := s.Height()
	for b := h + 1; b <= h+30; b++ {
		if err := s.BeginBlock(b); err != nil {
			t.Fatalf("begin %d: %v", b, err)
		}
		for k := 0; k < 10; k++ {
			i := int(b*10+uint64(k)) % accounts
			if err := s.Put(addr(i), val(i, int(b))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatalf("commit %d: %v", b, err)
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	root := s.RootDigest()
	s.Close()
	s = openStore(t, dir, false)
	defer s.Close()
	if got := s.RootDigest(); got != root {
		t.Fatalf("digest changed across reopen: %s != %s", got, root)
	}
	v, ok, err := s.Get(addr(3))
	if err != nil || !ok {
		t.Fatalf("get after continued writes: ok=%v err=%v", ok, err)
	}
	_ = v
}

// TestReshardSparseDestinations reshards a tiny store across many
// shards so several destinations receive zero keys.
func TestReshardSparseDestinations(t *testing.T) {
	dir := t.TempDir()
	s, err := shard.Open(buildOpts(dir, 1, false))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(addr(i), val(i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := reshard.Reshard(dir, 16, reshard.Options{}); err != nil {
		t.Fatalf("reshard: %v", err)
	}
	s, err = shard.Open(core.Options{Dir: dir, MemCapacity: testMemCap})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if s.Shards() != 16 {
		t.Fatalf("shards = %d", s.Shards())
	}
	for i := 0; i < 3; i++ {
		v, ok, err := s.Get(addr(i))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if v != val(i, 1) {
			t.Fatalf("get %d: wrong value", i)
		}
	}
}

// TestReshardLegacyUnsharded reshards a legacy store (engine at the
// directory root, no SHARDS file) straight into a multi-shard layout.
func TestReshardLegacyUnsharded(t *testing.T) {
	dir := t.TempDir()
	e, err := core.Open(core.Options{Dir: dir, MemCapacity: 16})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	for b := 1; b <= 20; b++ {
		if err := e.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			if err := e.Put(addr(k), val(k, b)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	rep, err := reshard.Reshard(dir, 4, reshard.Options{})
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if rep.FromShards != 1 || rep.Entries != 100 {
		t.Fatalf("report %+v", rep)
	}
	s, err := shard.Open(core.Options{Dir: dir, MemCapacity: 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	for k := 0; k < 5; k++ {
		v, ok, err := s.Get(addr(k))
		if err != nil || !ok || v != val(k, 20) {
			t.Fatalf("get %d: v=%s ok=%v err=%v", k, v, ok, err)
		}
	}
}

// TestReshardRefusesUnevenCheckpoints advances one shard's durable
// checkpoint past its siblings' (as a crash would) and expects the
// reshard to refuse rather than silently truncate the replay window.
func TestReshardRefusesUnevenCheckpoints(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, 2, 40, 11, false)
	// Advance shard-01 alone through its engine directory.
	e, err := core.Open(core.Options{Dir: filepath.Join(dir, "shard-01"), MemCapacity: testMemCap})
	if err != nil {
		t.Fatalf("open shard-01: %v", err)
	}
	if err := e.BeginBlock(41); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(addr(1), val(1, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.FlushAll(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	if _, err := reshard.Reshard(dir, 4, reshard.Options{}); err == nil {
		t.Fatal("reshard accepted a store with uneven shard checkpoints")
	}
}

// TestReshardRefusesEmptyTargets covers parameter validation.
func TestReshardRefusesBadInput(t *testing.T) {
	dir := t.TempDir()
	if _, err := reshard.Reshard(dir, 2, reshard.Options{}); err == nil {
		t.Fatal("reshard accepted an empty directory")
	}
	buildStore(t, dir, 2, 10, 5, false)
	if _, err := reshard.Reshard(dir, 0, reshard.Options{}); err == nil {
		t.Fatal("reshard accepted shard count 0")
	}
	if _, err := reshard.Reshard(dir, shard.MaxShards+1, reshard.Options{}); err == nil {
		t.Fatal("reshard accepted an oversized shard count")
	}
}

// copyDir clones a store directory (the failure-injection runs each
// consume one).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.OpenFile(target, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s: %v", src, err)
	}
}

// TestReshardTornInstall injects a failure at every install step and
// verifies: before the commit rename the original store is fully
// readable with its original digest; after it, the new store is live
// and correct even though cleanup never ran.
func TestReshardTornInstall(t *testing.T) {
	const accounts = 13
	master := t.TempDir()
	buildStore(t, master, 2, 40, accounts, false)
	want := snapshotAnswers(t, master, accounts, false)
	origRoot := func() types.Hash {
		s := openStore(t, master, false)
		defer s.Close()
		return s.RootDigest()
	}()

	steps := []string{reshard.StepSpool, reshard.StepBuild, reshard.StepCommit, reshard.StepCleanup}
	for _, step := range steps {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			copyDir(t, master, dir)
			boom := fmt.Errorf("injected crash")
			_, err := reshard.Reshard(dir, 4, reshard.Options{
				FailPoint: func(s string) error {
					if s == step {
						return boom
					}
					return nil
				},
			})
			if err == nil {
				t.Fatalf("reshard survived an injected failure at %q", step)
			}
			s := openStore(t, dir, false)
			defer s.Close()
			committed := step == reshard.StepCleanup
			if committed {
				if s.Shards() != 4 {
					t.Fatalf("post-commit tear: shards = %d, want 4", s.Shards())
				}
			} else {
				if s.Shards() != 2 {
					t.Fatalf("pre-commit tear: shards = %d, want 2", s.Shards())
				}
				if got := s.RootDigest(); got != origRoot {
					t.Fatalf("pre-commit tear changed the digest: %s != %s", got, origRoot)
				}
			}
			got := collectAnswers(t, s, accounts)
			diffAnswers(t, "torn@"+step, want, got)
		})
	}
}

// TestReshardTornBuildThenRetry: a torn attempt leaves a half-built
// generation; a retry must succeed and the half-built garbage must be
// gone afterwards.
func TestReshardTornBuildThenRetry(t *testing.T) {
	const accounts = 13
	dir := t.TempDir()
	buildStore(t, dir, 2, 40, accounts, false)
	want := snapshotAnswers(t, dir, accounts, false)
	boom := fmt.Errorf("injected crash")
	if _, err := reshard.Reshard(dir, 4, reshard.Options{
		FailPoint: func(s string) error {
			if s == reshard.StepBuild {
				return boom
			}
			return nil
		},
	}); err == nil {
		t.Fatal("expected injected failure")
	}
	if _, err := reshard.Reshard(dir, 4, reshard.Options{}); err != nil {
		t.Fatalf("retry after torn attempt: %v", err)
	}
	s := openStore(t, dir, false)
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("shards = %d", s.Shards())
	}
	got := collectAnswers(t, s, accounts)
	diffAnswers(t, "retry", want, got)
	// No stale generation directories or gen-0 engines may remain.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		name := de.Name()
		if name == "SHARDS" || name == "LOCK" || name == "r000001" {
			continue
		}
		t.Errorf("stale entry %q left in store root", name)
	}
}

// TestReshardCompaction: resharding to the current count is a full
// compaction — same answers, one run per shard.
func TestReshardCompaction(t *testing.T) {
	const accounts = 13
	dir := t.TempDir()
	buildStore(t, dir, 2, 60, accounts, false)
	want := snapshotAnswers(t, dir, accounts, false)
	if _, err := reshard.Reshard(dir, 2, reshard.Options{}); err != nil {
		t.Fatalf("reshard: %v", err)
	}
	s := openStore(t, dir, false)
	defer s.Close()
	if runs := s.Storage().Runs; runs != 2 {
		t.Fatalf("compaction left %d runs, want 2 (one per shard)", runs)
	}
	got := collectAnswers(t, s, accounts)
	diffAnswers(t, "compaction", want, got)
}

// TestReshardRefusesLiveStore: resharding a directory a live store
// still serves must fail loudly (the advisory directory lock), and the
// live store must be unaffected.
func TestReshardRefusesLiveStore(t *testing.T) {
	dir := t.TempDir()
	buildStore(t, dir, 2, 10, 5, false)
	s := openStore(t, dir, false)
	defer s.Close()
	root := s.RootDigest()
	if _, err := reshard.Reshard(dir, 4, reshard.Options{}); err == nil {
		t.Fatal("reshard of a live store succeeded")
	}
	if got := s.RootDigest(); got != root {
		t.Fatalf("refused reshard changed the live store: %s != %s", got, root)
	}
	if s.Shards() != 2 {
		t.Fatalf("shards = %d", s.Shards())
	}
}

// TestReshardAdoptsPageSize: a store built with a non-default page size
// reshards with zero Options — the geometry is read from the run
// metadata, not recalled by the operator.
func TestReshardAdoptsPageSize(t *testing.T) {
	dir := t.TempDir()
	o := buildOpts(dir, 2, false)
	o.PageSize = 8192
	s, err := shard.Open(o)
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= 10; b++ {
		if err := s.BeginBlock(uint64(b)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			if err := s.Put(addr(k), val(k, b)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := reshard.Reshard(dir, 4, reshard.Options{}); err != nil {
		t.Fatalf("reshard of an 8 KiB-page store with zero options: %v", err)
	}
	o2 := core.Options{Dir: dir, MemCapacity: testMemCap, PageSize: 8192}
	s2, err := shard.Open(o2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	for k := 0; k < 10; k++ {
		v, ok, err := s2.Get(addr(k))
		if err != nil || !ok || v != val(k, 10) {
			t.Fatalf("get %d: v=%s ok=%v err=%v", k, v, ok, err)
		}
	}
}
