package reshard_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/reshard"
	"cole/internal/run"
	"cole/internal/shard"
	"cole/internal/types"
)

// rehashIterator strips the leaf hashes from a hashed source so Build is
// forced onto the legacy recompute path.
type rehashIterator struct{ inner run.Iterator }

func (r rehashIterator) Next() (types.Entry, bool) { return r.inner.Next() }

// TestReshardGoldenPassthrough proves the spooled leaf hashes survive
// the reshard hop intact: every destination run the rewrite bulk-built
// (through spool-carried hashes) is byte-for-byte the run a legacy
// rebuild from its own entry stream would produce — same learned index,
// Merkle file, Bloom filter, metadata, and digest.
func TestReshardGoldenPassthrough(t *testing.T) {
	dir := t.TempDir()
	const accounts, blocks = 40, 60
	buildStore(t, dir, 2, blocks, accounts, false)

	if _, err := reshard.Reshard(dir, 3, reshard.Options{MemCapacity: testMemCap}); err != nil {
		t.Fatalf("reshard: %v", err)
	}

	n, gen, pinned, err := shard.PersistedLayout(dir)
	if err != nil || !pinned || n != 3 {
		t.Fatalf("layout after reshard: n=%d pinned=%v err=%v", n, pinned, err)
	}
	for j := 0; j < n; j++ {
		engDir := shard.EngineDir(dir, gen, n, j)
		st, err := core.ReadStoreState(engDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range st.RunIDs {
			r, err := run.Open(engDir, id, run.Params{})
			if err != nil {
				t.Fatal(err)
			}
			// Legacy rebuild of the same run from its own entries, leaf
			// hashes recomputed from scratch.
			rebuildDir := t.TempDir()
			params := run.Params{
				Fanout: 4, MergeReadahead: 1, WriteBufferPages: 1, LegacyCompaction: true,
			}
			it := r.Iter()
			rebuilt, err := run.Build(rebuildDir, id, r.Count(), params, rehashIterator{it})
			if err != nil {
				t.Fatal(err)
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if rebuilt.Digest() != r.Digest() {
				t.Fatalf("shard %d run %d: digest differs from legacy rebuild", j, id)
			}
			for _, name := range run.Files(id) {
				want, err := os.ReadFile(filepath.Join(engDir, name))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(rebuildDir, name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("shard %d run %d: %s differs from legacy rebuild", j, id, name)
				}
			}
			rebuilt.Close()
			r.Close()
		}
	}
}

// TestReshardGoldenPartitionedWorkers proves worker count is purely a
// wall-time knob: resharding two identical stores with Workers=1 (fully
// sequential — one spool part per source, sequential destination builds)
// and Workers=8 (partitioned spooling and partitioned destination
// builds) must leave byte-identical destination engines, file for file.
func TestReshardGoldenPartitionedWorkers(t *testing.T) {
	const accounts, blocks, toShards = 40, 60, 3
	dirs := map[int]string{1: t.TempDir(), 8: t.TempDir()}
	for w, dir := range dirs {
		buildStore(t, dir, 2, blocks, accounts, false)
		if _, err := reshard.Reshard(dir, toShards, reshard.Options{MemCapacity: testMemCap, Workers: w}); err != nil {
			t.Fatalf("reshard with %d workers: %v", w, err)
		}
	}
	n, gen, pinned, err := shard.PersistedLayout(dirs[1])
	if err != nil || !pinned || n != toShards {
		t.Fatalf("layout after reshard: n=%d pinned=%v err=%v", n, pinned, err)
	}
	for j := 0; j < n; j++ {
		seqDir := shard.EngineDir(dirs[1], gen, n, j)
		parDir := shard.EngineDir(dirs[8], gen, n, j)
		seqEntries, err := os.ReadDir(seqDir)
		if err != nil {
			t.Fatal(err)
		}
		parEntries, err := os.ReadDir(parDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(seqEntries) != len(parEntries) {
			t.Fatalf("shard %d: file sets differ: %d vs %d", j, len(seqEntries), len(parEntries))
		}
		for _, de := range seqEntries {
			want, err := os.ReadFile(filepath.Join(seqDir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(parDir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("shard %d: %s differs between 1-worker and 8-worker reshards", j, de.Name())
			}
		}
	}
}
