package reshard_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/reshard"
	"cole/internal/run"
	"cole/internal/shard"
	"cole/internal/types"
)

// rehashIterator strips the leaf hashes from a hashed source so Build is
// forced onto the legacy recompute path.
type rehashIterator struct{ inner run.Iterator }

func (r rehashIterator) Next() (types.Entry, bool) { return r.inner.Next() }

// TestReshardGoldenPassthrough proves the spooled leaf hashes survive
// the reshard hop intact: every destination run the rewrite bulk-built
// (through spool-carried hashes) is byte-for-byte the run a legacy
// rebuild from its own entry stream would produce — same learned index,
// Merkle file, Bloom filter, metadata, and digest.
func TestReshardGoldenPassthrough(t *testing.T) {
	dir := t.TempDir()
	const accounts, blocks = 40, 60
	buildStore(t, dir, 2, blocks, accounts, false)

	if _, err := reshard.Reshard(dir, 3, reshard.Options{MemCapacity: testMemCap}); err != nil {
		t.Fatalf("reshard: %v", err)
	}

	n, gen, pinned, err := shard.PersistedLayout(dir)
	if err != nil || !pinned || n != 3 {
		t.Fatalf("layout after reshard: n=%d pinned=%v err=%v", n, pinned, err)
	}
	for j := 0; j < n; j++ {
		engDir := shard.EngineDir(dir, gen, n, j)
		st, err := core.ReadStoreState(engDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range st.RunIDs {
			r, err := run.Open(engDir, id, run.Params{})
			if err != nil {
				t.Fatal(err)
			}
			// Legacy rebuild of the same run from its own entries, leaf
			// hashes recomputed from scratch.
			rebuildDir := t.TempDir()
			params := run.Params{
				Fanout: 4, MergeReadahead: 1, WriteBufferPages: 1, LegacyCompaction: true,
			}
			it := r.Iter()
			rebuilt, err := run.Build(rebuildDir, id, r.Count(), params, rehashIterator{it})
			if err != nil {
				t.Fatal(err)
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}
			if rebuilt.Digest() != r.Digest() {
				t.Fatalf("shard %d run %d: digest differs from legacy rebuild", j, id)
			}
			for _, name := range run.Files(id) {
				want, err := os.ReadFile(filepath.Join(engDir, name))
				if err != nil {
					t.Fatal(err)
				}
				got, err := os.ReadFile(filepath.Join(rebuildDir, name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("shard %d run %d: %s differs from legacy rebuild", j, id, name)
				}
			}
			rebuilt.Close()
			r.Close()
		}
	}
}
