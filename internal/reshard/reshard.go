// Package reshard rewrites an existing COLE store from N shards to M
// shards offline, without replaying the chain from genesis.
//
// COLE's column-based design makes repartitioning cheap: all durable
// state lives in sorted immutable runs, so changing the shard count is a
// partitioned sort-merge, not a transaction replay. The rewrite streams
// every live key/version of every source shard in compound-key order
// (k-way merge over each shard's committed run list), routes each entry
// to its destination partition by the shard hash, and bulk-builds each
// destination shard's bottom-level run — value file, learned index,
// Merkle file, and Bloom filter — in one pass per destination, with no
// per-key Put descent.
//
// # Crash safety
//
// The destination shards are built inside a fresh reshard-generation
// subdirectory (r000001/shard-NN, …) that never collides with the live
// layout, and the single commit point is the atomic rename that rewrites
// the SHARDS file to pin the new shard count and generation. A reshard
// interrupted anywhere before that rename leaves the original store
// byte-for-byte untouched (the half-built generation directory is swept
// by the next open or reshard); interrupted after it, the new store is
// fully live and only garbage cleanup remains.
//
// # Root epochs
//
// The combined state digest folds the per-shard roots, so it necessarily
// changes when the partition count does: a reshard starts a new root
// epoch at the store's durable height. Every Get/GetAt/GetBatch answer
// and every provenance version list is byte-identical before and after,
// and proofs verify against the new epoch's digests, but historical
// combined digests from the old epoch can no longer be reproduced (the
// per-shard root histories restart empty).
package reshard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"cole/internal/core"
	"cole/internal/run"
	"cole/internal/shard"
	"cole/internal/types"
	"cole/internal/vfs"
)

// Install steps, in execution order, as reported to Options.FailPoint.
const (
	// StepSpool partitions the source streams into per-destination spool
	// files (nothing outside the build directory is touched yet).
	StepSpool = "spool"
	// StepBuild bulk-builds the destination shard directories from the
	// spools (still entirely inside the build directory).
	StepBuild = "build"
	// StepCommit atomically rewrites the SHARDS file — the point of no
	// return. Failing before it leaves the original store untouched.
	StepCommit = "commit"
	// StepCleanup removes the superseded generation's engine files.
	// Failing here leaves a fully functional new store plus garbage that
	// the next open sweeps.
	StepCleanup = "cleanup"
)

// Options tunes an offline reshard. The zero value is right for any
// store: structural parameters (size ratio, MHT fanout, merge mode,
// page size) are inherited from the source store's manifests and run
// metadata and cannot be changed here.
type Options struct {
	// PageSize overrides the page size adopted from the source runs'
	// metadata; leave 0 (a mismatch with the on-disk runs fails the
	// open).
	PageSize int
	// OptimalPLA rebuilds the destination learned indexes with the exact
	// convex-hull segment construction instead of the default greedy
	// cone (the on-disk format is identical; this only trades build time
	// for fewer models, like core.Options.OptimalPLA).
	OptimalPLA bool
	// MemCapacity is the source store's B, used only to pick the on-disk
	// level the bulk-built runs are installed at (0 = 4096).
	MemCapacity int
	// BloomFP is the Bloom false-positive target for the rebuilt runs
	// (0 = 0.01).
	BloomFP float64
	// CachePages bounds each rebuilt run's page cache during the build
	// (0 = 16).
	CachePages int
	// Workers bounds the rewrite's concurrency (0 = GOMAXPROCS). With
	// more workers than source (or destination) shards, the surplus goes
	// to key-range partitioning inside each shard: source streams spool
	// in parallel parts, and destination runs are built by parallel span
	// workers (run.BuildPartitioned), so the wall time keeps dropping
	// even when the shard counts are small.
	Workers int
	// FailPoint, when set, is invoked before each install step with the
	// step name; returning an error aborts the reshard at exactly that
	// point with no cleanup, simulating a crash. Tests use it to verify
	// torn reshards leave the store consistent. Nil in production. For
	// finer-grained crashes (any syscall, torn writes, dropped fsyncs)
	// inject a fault-carrying FS instead.
	FailPoint func(step string) error
	// FS is the filesystem the rewrite runs on. nil (the default) selects
	// the real filesystem; tests inject fault-carrying implementations
	// (internal/vfs) to exercise crash consistency at every syscall.
	FS vfs.FS
}

// Report summarizes a completed reshard.
type Report struct {
	// FromShards and ToShards are the partition counts before and after.
	FromShards, ToShards int
	// Generation is the new layout's reshard generation.
	Generation uint64
	// Height is the durable block height the rewrite preserved (the
	// store's replay checkpoint; also the new engines' height).
	Height uint64
	// Entries is the total number of live key/version entries rewritten.
	Entries int64
	// Bytes is the logical volume rewritten (Entries × entry size).
	Bytes int64
	// PerShard is each destination shard's entry count.
	PerShard []int64
	// Imbalance is max/mean over PerShard (1.0 = perfectly even).
	Imbalance float64
	// Elapsed is the wall-clock duration of the whole rewrite.
	Elapsed time.Duration
}

// MBPerSec is the rewrite bandwidth implied by the report.
func (r *Report) MBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / (1 << 20) / r.Elapsed.Seconds()
}

func (o Options) fail(step string) error {
	if o.FailPoint == nil {
		return nil
	}
	if err := o.FailPoint(step); err != nil {
		return fmt.Errorf("reshard: aborted at step %q: %w", step, err)
	}
	return nil
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Reshard rewrites the store in dir to the given shard count. The store
// must be closed (the rewrite requires exclusive access to the
// directory) and cleanly flushed: every shard's durable checkpoint must
// sit at the same height, which a FlushAll before shutdown guarantees. A
// store that crashed mid-operation must be opened and replayed first.
//
// The rewrite preserves the full version history: every compound key
// ⟨addr, blk⟩ with its value is carried over, so Get, GetAt, GetBatch,
// and ProvQuery answer identically before and after (proofs verify
// against the new root epoch — see the package comment). Resharding to
// the current count is allowed and acts as a full compaction into one
// bottom-level run per shard.
func Reshard(dir string, shards int, opts Options) (*Report, error) {
	start := time.Now()
	if shards < 1 || shards > shard.MaxShards {
		return nil, fmt.Errorf("reshard: target count %d out of range [1,%d]", shards, shard.MaxShards)
	}
	fsys := vfs.OrOS(opts.FS)
	// Take the store's advisory lock for the whole rewrite: a directory a
	// live process still serves (or a concurrent reshard) fails here
	// instead of silently committing over its writes. An injected
	// filesystem is process-local, so there is nothing for flock to
	// arbitrate.
	if vfs.IsOS(fsys) {
		unlock, err := shard.LockDir(dir)
		if err != nil {
			return nil, err
		}
		defer unlock()
	}
	n, gen, pinned, err := shard.PersistedLayoutFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	if !pinned {
		// A legacy unsharded store (engine at the root, no SHARDS file) is
		// a valid 1-shard source; anything else is not a store.
		if _, serr := fsys.Stat(filepath.Join(dir, "MANIFEST")); serr != nil {
			if _, derr := fsys.Stat(filepath.Join(dir, "shard-00")); derr == nil {
				return nil, fmt.Errorf("reshard: %s has shard subdirectories but no SHARDS file; reopen it with the original explicit shard count first", dir)
			}
			return nil, fmt.Errorf("reshard: %s does not hold a COLE store", dir)
		}
		n, gen = 1, 0
	}

	states := make([]*core.StoreState, n)
	srcDirs := make([]string, n)
	for i := 0; i < n; i++ {
		srcDirs[i] = shard.EngineDir(dir, gen, n, i)
		if states[i], err = core.ReadStoreStateFS(fsys, srcDirs[i]); err != nil {
			return nil, fmt.Errorf("reshard: source shard %d: %w", i, err)
		}
	}
	// Structural parameters come from the first shard that has durable
	// state; all others must agree, and every shard must share one replay
	// horizon — the exact height the rewritten store serves. A shard with
	// no manifest has horizon 0, so a store that was not cleanly flushed
	// (or crashed with uneven checkpoints) is refused rather than
	// silently losing its replay window.
	ref := -1
	for i, st := range states {
		if st.Exists {
			ref = i
			break
		}
	}
	if ref < 0 {
		return nil, fmt.Errorf("reshard: %s has no durable state; commit blocks and FlushAll before resharding", dir)
	}
	base := states[ref]
	for i, st := range states {
		if st.Exists && (st.Async != base.Async || st.SizeRatio != base.SizeRatio || st.Fanout != base.Fanout) {
			return nil, fmt.Errorf("reshard: shard %d parameters (async=%v T=%d m=%d) disagree with shard %d (async=%v T=%d m=%d)",
				i, st.Async, st.SizeRatio, st.Fanout, ref, base.Async, base.SizeRatio, base.Fanout)
		}
		if st.Replay != base.Replay {
			return nil, fmt.Errorf("reshard: shard %d durable checkpoint %d != shard %d checkpoint %d; open the store, replay, and FlushAll before resharding",
				i, st.Replay, ref, base.Replay)
		}
	}
	height := base.Replay

	newGen := gen + 1
	buildDir := shard.GenDir(dir, newGen)
	// A previous torn attempt may have stranded a half-built generation
	// at the same path; it is garbage by construction (SHARDS never
	// pointed at it).
	if err := fsys.RemoveAll(buildDir); err != nil {
		return nil, err
	}

	// Adopt the store's real page geometry from the first run's metadata
	// (the engine options are not persisted, and requiring the operator
	// to recall them would make non-default stores unreshardable from
	// the CLI).
	if opts.PageSize == 0 {
	adopt:
		for i, st := range states {
			for _, id := range st.RunIDs {
				ps, err := run.PageSizeOfFS(fsys, srcDirs[i], id)
				if err != nil {
					return nil, fmt.Errorf("reshard: read run %d of source shard %d: %w", id, i, err)
				}
				opts.PageSize = ps
				break adopt
			}
		}
	}

	// Open every committed source run directly from the manifests — the
	// engines are never opened, so the source directories are not
	// mutated (no orphan sweep, no restarted background merges).
	params := run.Params{PageSize: opts.PageSize, Fanout: base.Fanout, BloomFP: opts.BloomFP, CachePages: opts.CachePages, FS: fsys}
	srcRuns := make([][]*run.Run, n)
	defer func() {
		for _, runs := range srcRuns {
			for _, r := range runs {
				_ = r.Close()
			}
		}
	}()
	var entries int64
	for i, st := range states {
		for _, id := range st.RunIDs {
			r, err := run.Open(srcDirs[i], id, params)
			if err != nil {
				return nil, fmt.Errorf("reshard: open run %d of source shard %d: %w", id, i, err)
			}
			srcRuns[i] = append(srcRuns[i], r)
			entries += r.Count()
		}
	}

	// Phase 1 — spool: each source shard's sorted stream is demultiplexed
	// into one spool file per destination. Each spool inherits the source
	// order, so it is itself sorted, and phase 2 only needs a k-way merge
	// of N small sorted files per destination. One sequential read of the
	// source, one sequential write of the spools — no M-fold re-reading
	// and no cross-merge deadlocks.
	//
	// With more workers than source shards, each source's merged stream
	// is itself cut into key-ordered parts (run.PlanRuns — the same range
	// planner the engine's partitioned merges use) and the parts spool
	// concurrently, so a reshard of a few big shards no longer serializes
	// on per-shard streams. Every key of part p precedes every key of
	// part p+1, so reading a (source,destination) spool chain back in
	// part order is still one sorted stream.
	if err := opts.fail(StepSpool); err != nil {
		return nil, err
	}
	spoolDir := filepath.Join(buildDir, "spool")
	if err := fsys.MkdirAll(spoolDir, 0o755); err != nil {
		return nil, err
	}
	workers := opts.workers()
	parts := 1
	if workers > n {
		parts = (workers + n - 1) / n
	}
	type spoolTask struct {
		src, part int
		sp        run.Span
	}
	var tasks []spoolTask
	srcParts := make([]int, n) // how many parts source i was actually cut into
	for i := 0; i < n; i++ {
		if len(srcRuns[i]) == 0 {
			continue
		}
		spans, err := run.PlanRuns(srcRuns[i], parts, opts.PageSize)
		if err != nil {
			return nil, fmt.Errorf("reshard: plan source shard %d: %w", i, err)
		}
		srcParts[i] = len(spans)
		for p, sp := range spans {
			tasks = append(tasks, spoolTask{src: i, part: p, sp: sp})
		}
	}
	// counts[i][j][p] counts source i's entries routed to destination j by
	// part; tasks write disjoint (i,·,p) slots, so no locking.
	counts := make([][][]int64, n)
	for i := range counts {
		counts[i] = make([][]int64, shards)
		for j := range counts[i] {
			counts[i][j] = make([]int64, srcParts[i])
		}
	}
	err = forEachPar(workers, len(tasks), func(ti int) error {
		t := tasks[ti]
		writers := make([]*spoolWriter, shards)
		defer func() {
			for _, w := range writers {
				if w != nil {
					w.abort()
				}
			}
		}()
		it := run.MergeRunsRange(srcRuns[t.src], t.sp)
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			// Carry the source run's precomputed Merkle leaf hash through
			// the spool: the destination build then streams hashes back
			// instead of re-running SHA-256 over every entry.
			leaf, err := it.LeafHash()
			if err != nil {
				return fmt.Errorf("source shard %d: %w", t.src, err)
			}
			j := shard.ShardOf(e.Key.Addr, shards)
			if writers[j] == nil {
				w, err := newSpoolWriter(fsys, spoolPath(spoolDir, t.src, j, t.part))
				if err != nil {
					return err
				}
				writers[j] = w
			}
			if err := writers[j].add(e, leaf); err != nil {
				return err
			}
			counts[t.src][j][t.part]++
		}
		if err := it.Err(); err != nil {
			return fmt.Errorf("source shard %d: %w", t.src, err)
		}
		for j, w := range writers {
			if w == nil {
				continue
			}
			if err := w.finish(); err != nil {
				return err
			}
			writers[j] = nil
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("reshard: spool: %w", err)
	}

	// Phase 2 — build: per destination, merge its spools and install a
	// complete engine directory (bottom-level run + manifest) in one
	// streaming pass. Spare workers partition each destination's build by
	// key range: the spool chains are positionally addressable, so the
	// same planner cuts them into spans and run.BuildPartitioned writes
	// the run's slices concurrently — byte-identical to the sequential
	// build.
	if err := opts.fail(StepBuild); err != nil {
		return nil, err
	}
	perShard := make([]int64, shards)
	for j := 0; j < shards; j++ {
		for i := 0; i < n; i++ {
			for _, c := range counts[i][j] {
				perShard[j] += c
			}
		}
	}
	destOpts := core.Options{
		MemCapacity: opts.MemCapacity,
		SizeRatio:   base.SizeRatio,
		Fanout:      base.Fanout,
		PageSize:    opts.PageSize,
		BloomFP:     opts.BloomFP,
		CachePages:  opts.CachePages,
		AsyncMerge:  base.Async,
		OptimalPLA:  opts.OptimalPLA,
		FS:          fsys,
	}
	destWidth := 1
	if workers > shards {
		destWidth = (workers + shards - 1) / shards
	}
	err = forEachPar(workers, shards, func(j int) error {
		var chains []*spoolChain
		defer func() {
			for _, c := range chains {
				c.close()
			}
		}()
		for i := 0; i < n; i++ {
			chain, err := openSpoolChain(fsys, spoolDir, i, j, counts[i][j])
			if err != nil {
				return err
			}
			if chain != nil {
				chains = append(chains, chain)
			}
		}
		o := destOpts
		o.Dir = shard.EngineDir(dir, newGen, shards, j)
		return core.InstallBulkFrom(o, height, perShard[j], func(rdir string, id uint64, params run.Params) (*run.Run, error) {
			sources := make([]run.PlanSource, len(chains))
			for si, c := range chains {
				sources[si] = c
			}
			spans, err := run.Plan(sources, destWidth, params.PageSize)
			if err != nil {
				return nil, err
			}
			// Destination builds already run on their own bounded
			// goroutines (forEachPar holds no scheduler slots), so span
			// workers spawn plainly and the parent just blocks on the
			// join — no Yield needed.
			par := run.Parallel{Spawn: func(fn func()) { go fn() }}
			return run.BuildPartitioned(rdir, id, perShard[j], params, spans, func(sp run.Span) (run.Iterator, error) {
				var its []run.Iterator
				for si, c := range chains {
					if sp.SrcHi[si] > sp.SrcLo[si] {
						its = append(its, c.iterRange(sp.SrcLo[si], sp.SrcHi[si]))
					}
				}
				return run.Merge(its...), nil
			}, par)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("reshard: build: %w", err)
	}
	if err := fsys.RemoveAll(spoolDir); err != nil {
		return nil, err
	}
	// Durability barrier: the engine's normal unsynced-manifest window is
	// recoverable by chain replay, but the commit below is followed by
	// deleting the source engines — so the whole new generation must be
	// on stable storage first, and the SHARDS rename after it, before
	// anything is removed.
	if err := syncTree(fsys, buildDir); err != nil {
		return nil, fmt.Errorf("reshard: sync new generation: %w", err)
	}

	// Commit: one atomic (and fsynced) rename flips the live layout.
	if err := opts.fail(StepCommit); err != nil {
		return nil, err
	}
	if err := shard.InstallManifestFS(fsys, dir, shards, newGen); err != nil {
		return nil, fmt.Errorf("reshard: commit: %w", err)
	}

	// Cleanup: the superseded generation is garbage now. Best-effort —
	// the SHARDS file already names the live layout, and the next open
	// sweeps whatever remains.
	if err := opts.fail(StepCleanup); err != nil {
		return nil, err
	}
	shard.RemoveGenerationFS(fsys, dir, gen, n)

	return &Report{
		FromShards: n,
		ToShards:   shards,
		Generation: newGen,
		Height:     height,
		Entries:    entries,
		Bytes:      entries * types.EntrySize,
		PerShard:   perShard,
		Imbalance:  imbalance(perShard),
		Elapsed:    time.Since(start),
	}, nil
}

// syncTree fsyncs every file and directory under root, deepest first —
// the write barrier between building a generation and deleting the one
// it replaces.
func syncTree(fsys vfs.FS, root string) error {
	ents, err := fsys.ReadDir(root)
	if err != nil {
		return err
	}
	for _, de := range ents {
		p := filepath.Join(root, de.Name())
		if de.IsDir() {
			if err := syncTree(fsys, p); err != nil {
				return err
			}
			continue
		}
		f, err := fsys.Open(p)
		if err != nil {
			return err
		}
		serr := f.Sync()
		cerr := f.Close()
		if serr != nil {
			return serr
		}
		if cerr != nil {
			return cerr
		}
	}
	return fsys.SyncDir(root)
}

func imbalance(counts []int64) float64 {
	var total, max int64
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(counts)) / float64(total)
}

// forEachPar runs fn for every index with bounded parallelism and
// returns the first error (all indexes are attempted).
func forEachPar(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ---- spool files ----
//
// A spool is a flat sequence of fixed-size records in sorted key order —
// the slice of one source shard's stream (one key-range part of it) that
// routes to one destination shard. Each record is an encoded entry
// followed by its Merkle leaf hash as read from the source run's .mrk
// file, so the destination build's hash passthrough survives the
// demultiplexing hop. The part spools of one (source,destination) pair
// concatenated in part order form one sorted stream — a spool chain.

// spoolRecSize is one spool record: entry bytes + leaf hash.
const spoolRecSize = types.EntrySize + types.HashSize

func spoolPath(spoolDir string, src, dst, part int) string {
	return filepath.Join(spoolDir, fmt.Sprintf("s%03d-d%03d-p%03d.ent", src, dst, part))
}

type spoolWriter struct {
	f   vfs.File
	w   *bufio.Writer
	buf [spoolRecSize]byte
}

func newSpoolWriter(fsys vfs.FS, path string) (*spoolWriter, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &spoolWriter{f: f, w: bufio.NewWriterSize(f, 1<<20)}, nil
}

func (s *spoolWriter) add(e types.Entry, leaf types.Hash) error {
	types.EncodeEntry(s.buf[:types.EntrySize], e)
	copy(s.buf[types.EntrySize:], leaf[:])
	_, err := s.w.Write(s.buf[:])
	return err
}

func (s *spoolWriter) finish() error {
	if err := s.w.Flush(); err != nil {
		_ = s.f.Close()
		return err
	}
	return s.f.Close()
}

func (s *spoolWriter) abort() { _ = s.f.Close() }

// spoolChain is one (source,destination) stream reassembled from its
// part spools: a positionally addressable run.PlanSource over the
// fixed-size records spanning the chained files, plus bounded range
// iterators for the partitioned destination build.
type spoolChain struct {
	files []vfs.File
	cum   []int64 // cum[k] = records before file k; len = len(files)+1
}

// openSpoolChain opens source src's spool parts for destination dst in
// part order (parts are key-ordered, so the chain is one sorted stream).
// Returns nil when the source routed nothing to this destination.
func openSpoolChain(fsys vfs.FS, spoolDir string, src, dst int, partCounts []int64) (*spoolChain, error) {
	c := &spoolChain{cum: []int64{0}}
	for p, cnt := range partCounts {
		if cnt == 0 {
			continue
		}
		f, err := fsys.Open(spoolPath(spoolDir, src, dst, p))
		if err != nil {
			c.close()
			return nil, err
		}
		c.files = append(c.files, f)
		c.cum = append(c.cum, c.cum[len(c.cum)-1]+cnt)
	}
	if len(c.files) == 0 {
		return nil, nil
	}
	return c, nil
}

func (c *spoolChain) close() {
	for _, f := range c.files {
		_ = f.Close()
	}
}

// Count implements run.PlanSource.
func (c *spoolChain) Count() int64 { return c.cum[len(c.cum)-1] }

// fileOf locates the chained file holding record pos.
func (c *spoolChain) fileOf(pos int64) (int, error) {
	if pos < 0 || pos >= c.Count() {
		return 0, fmt.Errorf("reshard: spool position %d out of range [0,%d)", pos, c.Count())
	}
	return sort.Search(len(c.files), func(k int) bool { return c.cum[k+1] > pos }), nil
}

// KeyAt implements run.PlanSource: one uncached positional read of the
// record's key prefix.
func (c *spoolChain) KeyAt(pos int64) (types.CompoundKey, error) {
	k, err := c.fileOf(pos)
	if err != nil {
		return types.CompoundKey{}, err
	}
	var buf [types.CompoundKeySize]byte
	if _, err := c.files[k].ReadAt(buf[:], (pos-c.cum[k])*spoolRecSize); err != nil {
		return types.CompoundKey{}, err
	}
	return types.DecodeCompoundKey(buf[:])
}

// iterRange streams records [lo,hi) of the chain; like the whole-spool
// iterator it replaces, it implements run.ErrIterator so read failures
// propagate through the destination merge, and run.HashedIterator so the
// spooled leaf hashes reach the destination run builder.
func (c *spoolChain) iterRange(lo, hi int64) *spoolRangeIterator {
	return &spoolRangeIterator{c: c, pos: lo, hi: hi}
}

type spoolRangeIterator struct {
	c       *spoolChain
	pos, hi int64
	k       int           // current file index, valid while r != nil
	r       *bufio.Reader // positioned at pos within file k
	buf     [spoolRecSize]byte
	leaf    types.Hash
	err     error
}

// Next implements run.Iterator.
func (s *spoolRangeIterator) Next() (types.Entry, bool) {
	if s.err != nil || s.pos >= s.hi {
		return types.Entry{}, false
	}
	if s.r == nil {
		// (Re)position: wrap a section reader over the file holding pos,
		// from pos's offset to the file's end.
		k, err := s.c.fileOf(s.pos)
		if err != nil {
			s.err = err
			return types.Entry{}, false
		}
		s.k = k
		off := (s.pos - s.c.cum[k]) * spoolRecSize
		size := (s.c.cum[k+1]-s.c.cum[k])*spoolRecSize - off
		s.r = bufio.NewReaderSize(io.NewSectionReader(s.c.files[k], off, size), 1<<18)
	}
	if _, err := io.ReadFull(s.r, s.buf[:]); err != nil {
		// EOF is an error here too: the range promised records up to hi.
		s.err = fmt.Errorf("reshard: spool read at %d: %w", s.pos, err)
		return types.Entry{}, false
	}
	e, err := types.DecodeEntry(s.buf[:types.EntrySize])
	if err != nil {
		s.err = err
		return types.Entry{}, false
	}
	copy(s.leaf[:], s.buf[types.EntrySize:])
	s.pos++
	if s.pos < s.hi && s.pos == s.c.cum[s.k+1] {
		s.r = nil // crossed a part boundary; reposition on the next call
	}
	return e, true
}

// Hashed implements run.HashedIterator.
func (s *spoolRangeIterator) Hashed() bool { return true }

// LeafHash implements run.HashedIterator: the leaf hash spooled with the
// entry most recently returned by Next.
func (s *spoolRangeIterator) LeafHash() (types.Hash, error) { return s.leaf, nil }

// Err implements run.ErrIterator.
func (s *spoolRangeIterator) Err() error { return s.err }
