package run

import (
	"fmt"
	"sort"

	"cole/internal/pagefile"
	"cole/internal/types"
)

// This file implements the range planner of partitioned merges: given k
// sorted sources, cut the merged key space into W spans of near-equal
// output size whose boundaries fall on output page boundaries, and find
// the exact per-source positions of every boundary. Each span can then
// be k-way merged independently (bounded sub-iterators) and its output
// written at final offsets — the union of the spans IS the sequential
// merge, record for record.

// PlanSource is a sorted source the planner can probe positionally.
// *Run implements it; so do reshard's spool chains.
type PlanSource interface {
	// Count returns the number of entries.
	Count() int64
	// KeyAt returns the compound key of the entry at a position.
	KeyAt(pos int64) (types.CompoundKey, error)
}

// Span is one key-range partition of a planned merge. [Lo, Hi) are
// merged-output positions; SrcLo[i]/SrcHi[i] bound source i's
// contribution, with Hi-Lo = Σ (SrcHi[i]-SrcLo[i]).
type Span struct {
	Lo, Hi int64
	SrcLo  []int64
	SrcHi  []int64
}

// planSamples is how many boundary keys the planner samples per source.
// Samples only seed the cut search; a mini k-way advance refines each
// cut to its exact rank afterwards, so the count trades planning reads
// against refinement reads, not accuracy.
const planSamples = 512

// Plan cuts the merged output of the sources into at most width spans of
// near-equal size, every interior boundary a multiple of the value
// file's records-per-page so span outputs never share a page. Returns
// fewer spans (down to one) when the input is too small to cut.
func Plan(sources []PlanSource, width int, pageSize int) ([]Span, error) {
	if pageSize == 0 {
		pageSize = pagefile.DefaultPageSize
	}
	perPage := int64(pagefile.PerPage(pageSize, types.EntrySize))
	var total int64
	for _, s := range sources {
		total += s.Count()
	}
	if total < 1 {
		return nil, fmt.Errorf("run: planning a merge of %d entries", total)
	}
	if width < 1 {
		width = 1
	}
	numPages := (total + perPage - 1) / perPage

	// Interior cuts: page-aligned output ranks splitting the page count
	// as evenly as integers allow. Duplicate or zero cuts (tiny inputs)
	// collapse into fewer spans.
	var cuts []int64
	for c := int64(1); c < int64(width); c++ {
		cut := (c * numPages / int64(width)) * perPage
		if cut > 0 && cut < total && (len(cuts) == 0 || cut > cuts[len(cuts)-1]) {
			cuts = append(cuts, cut)
		}
	}

	n := len(sources)
	zeros := make([]int64, n)
	ends := make([]int64, n)
	for i, s := range sources {
		ends[i] = s.Count()
	}
	if len(cuts) == 0 {
		return []Span{{Lo: 0, Hi: total, SrcLo: zeros, SrcHi: ends}}, nil
	}

	samples, err := collectSamples(sources)
	if err != nil {
		return nil, err
	}

	spans := make([]Span, 0, len(cuts)+1)
	prev := Span{Lo: 0, SrcLo: zeros}
	for _, cut := range cuts {
		pos, err := positionsAtRank(sources, samples, cut)
		if err != nil {
			return nil, err
		}
		prev.Hi = cut
		prev.SrcHi = pos
		spans = append(spans, prev)
		prev = Span{Lo: cut, SrcLo: pos}
	}
	prev.Hi = total
	prev.SrcHi = ends
	return append(spans, prev), nil
}

// PlanRuns plans a partitioned merge of whole runs.
func PlanRuns(runs []*Run, width int, pageSize int) ([]Span, error) {
	srcs := make([]PlanSource, len(runs))
	for i, r := range runs {
		srcs[i] = r
	}
	return Plan(srcs, width, pageSize)
}

// MergeRunsRange merges the runs' sub-iterators over one planned span.
func MergeRunsRange(runs []*Run, sp Span) *MergeIterator {
	its := make([]Iterator, 0, len(runs))
	for i, r := range runs {
		if sp.SrcHi[i] > sp.SrcLo[i] {
			its = append(its, r.IterRange(sp.SrcLo[i], sp.SrcHi[i]))
		}
	}
	return Merge(its...)
}

// collectSamples reads up to planSamples evenly spaced keys per source
// and sorts them globally.
func collectSamples(sources []PlanSource) ([]types.CompoundKey, error) {
	var keys []types.CompoundKey
	for _, s := range sources {
		cnt := s.Count()
		take := int64(planSamples)
		if take > cnt {
			take = cnt
		}
		prev := int64(-1)
		for j := int64(0); j < take; j++ {
			pos := j * cnt / take
			if pos == prev {
				continue
			}
			prev = pos
			k, err := s.KeyAt(pos)
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys, nil
}

// lowerBound returns the first position in s whose key is ≥ k.
func lowerBound(s PlanSource, k types.CompoundKey) (int64, error) {
	lo, hi := int64(0), s.Count()
	for lo < hi {
		mid := (lo + hi) / 2
		km, err := s.KeyAt(mid)
		if err != nil {
			return 0, err
		}
		if km.Less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// rankOf returns, per source, how many entries sort strictly below k,
// plus the total.
func rankOf(sources []PlanSource, k types.CompoundKey) ([]int64, int64, error) {
	pos := make([]int64, len(sources))
	var total int64
	for i, s := range sources {
		p, err := lowerBound(s, k)
		if err != nil {
			return nil, 0, err
		}
		pos[i] = p
		total += p
	}
	return pos, total, nil
}

// positionsAtRank finds per-source positions pos with Σ pos = rank such
// that the sources' prefixes hold exactly the rank smallest merged
// entries: binary-search the sorted samples for the greatest key whose
// global rank is ≤ rank, then advance the remainder with a mini k-way
// merge. Keys are globally unique, so the rank-smallest set is unique.
func positionsAtRank(sources []PlanSource, samples []types.CompoundKey, rank int64) ([]int64, error) {
	basePos := make([]int64, len(sources))
	baseRank := int64(0)
	var searchErr error
	// First sample whose global rank exceeds the target; its predecessor
	// is the deepest cheap starting point.
	idx := sort.Search(len(samples), func(i int) bool {
		if searchErr != nil {
			return true
		}
		_, r, err := rankOf(sources, samples[i])
		if err != nil {
			searchErr = err
			return true
		}
		return r > rank
	})
	if searchErr != nil {
		return nil, searchErr
	}
	if idx > 0 {
		pos, r, err := rankOf(sources, samples[idx-1])
		if err != nil {
			return nil, err
		}
		basePos, baseRank = pos, r
	}
	// Mini k-way advance: pop the globally smallest next key until the
	// prefixes hold exactly `rank` entries. Caches one key per source so
	// each step costs one probe.
	cur := make([]types.CompoundKey, len(sources))
	have := make([]bool, len(sources))
	for baseRank < rank {
		best := -1
		for i, s := range sources {
			if basePos[i] >= s.Count() {
				continue
			}
			if !have[i] {
				k, err := s.KeyAt(basePos[i])
				if err != nil {
					return nil, err
				}
				cur[i], have[i] = k, true
			}
			if best < 0 || cur[i].Less(cur[best]) {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("run: plan rank %d exceeds source entries", rank)
		}
		basePos[best]++
		have[best] = false
		baseRank++
	}
	return basePos, nil
}
