package run

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/types"
)

// splitSorted stripes a sorted entry set round-robin into k sorted
// sub-streams (the shape of a level's run group).
func splitSorted(entries []types.Entry, k int) [][]types.Entry {
	out := make([][]types.Entry, k)
	for i, e := range entries {
		out[i%k] = append(out[i%k], e)
	}
	return out
}

// runFiles reads the four files of a run for byte comparison.
func runFiles(t *testing.T, dir string, id uint64) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range Files(id) {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Ext(name)] = raw
	}
	return out
}

// TestBuildGoldenStreamingVsLegacy is the byte-compatibility oracle for
// the streaming compaction pipeline: the same merged entry stream built
// through the legacy path (1-page IO, every leaf and Bloom hash
// recomputed) and the streaming path (readahead + coalesced writes +
// leaf-hash passthrough) must produce byte-identical .val/.idx/.mrk/.met
// files and equal run digests — for both PLA builders.
func TestBuildGoldenStreamingVsLegacy(t *testing.T) {
	entries := genEntries(7, 800, 8)
	for _, optimal := range []bool{false, true} {
		legacyParams := Params{
			Fanout: 4, OptimalPLA: optimal,
			MergeReadahead: 1, WriteBufferPages: 1, LegacyCompaction: true,
		}
		streamParams := Params{Fanout: 4, OptimalPLA: optimal}

		// Shared source runs (built once; the builders under test consume
		// their merged stream).
		srcDir := t.TempDir()
		var sources []*Run
		for i, part := range splitSorted(entries, 3) {
			r, err := Build(srcDir, uint64(i), int64(len(part)), streamParams, NewSliceIterator(part))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			sources = append(sources, r)
		}

		legacyDir, streamDir := t.TempDir(), t.TempDir()
		itL := MergeRuns(sources)
		legacyRun, err := Build(legacyDir, 9, int64(len(entries)), legacyParams, itL)
		if err != nil {
			t.Fatal(err)
		}
		defer legacyRun.Close()
		if err := itL.Err(); err != nil {
			t.Fatal(err)
		}
		itS := MergeRuns(sources)
		streamRun, err := Build(streamDir, 9, int64(len(entries)), streamParams, itS)
		if err != nil {
			t.Fatal(err)
		}
		defer streamRun.Close()
		if err := itS.Err(); err != nil {
			t.Fatal(err)
		}

		if legacyRun.Digest() != streamRun.Digest() {
			t.Fatalf("optimal=%v: run digests differ", optimal)
		}
		lf, sf := runFiles(t, legacyDir, 9), runFiles(t, streamDir, 9)
		for ext, want := range lf {
			if !bytes.Equal(sf[ext], want) {
				t.Fatalf("optimal=%v: %s files differ (%d vs %d bytes)", optimal, ext, len(sf[ext]), len(want))
			}
		}

		// The merged output also answers every read identically.
		it := streamRun.Iter()
		for i, want := range entries {
			got, ok := it.Next()
			if !ok || got != want {
				t.Fatalf("optimal=%v: merged entry %d: got %v ok=%v", optimal, i, got, ok)
			}
		}
		if _, ok := it.Next(); ok || it.Err() != nil {
			t.Fatalf("optimal=%v: iterator did not end cleanly: %v", optimal, it.Err())
		}
	}
}

// TestMergePassthroughLeafHashes checks the hashed merge yields, for
// every entry, exactly the leaf hash the destination MHT needs
// (types.HashEntry), and that mixing in a non-hashed source degrades
// Hashed() instead of corrupting anything.
func TestMergePassthroughLeafHashes(t *testing.T) {
	entries := genEntries(11, 300, 5)
	dir := t.TempDir()
	var sources []*Run
	for i, part := range splitSorted(entries, 2) {
		r, err := Build(dir, uint64(i), int64(len(part)), Params{Fanout: 4}, NewSliceIterator(part))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		sources = append(sources, r)
	}
	it := MergeRuns(sources)
	if !it.Hashed() {
		t.Fatal("merge of runs must be hashed")
	}
	for i := 0; ; i++ {
		e, ok := it.Next()
		if !ok {
			break
		}
		h, err := it.LeafHash()
		if err != nil {
			t.Fatal(err)
		}
		if h != types.HashEntry(e) {
			t.Fatalf("entry %d: passthrough leaf hash != HashEntry", i)
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}

	mixed := Merge(sources[0].Iter(), NewSliceIterator(entries[:10]))
	if mixed.Hashed() {
		t.Fatal("merge with a slice source must not claim hashes")
	}
}

// TestRunIterCacheIsolation proves a full streaming scan of a run (what
// a concurrent level merge does to its sources) evicts nothing from the
// run's point-read page cache.
func TestRunIterCacheIsolation(t *testing.T) {
	entries := genEntries(13, 3000, 4)
	r := buildRun(t, entries, Params{Fanout: 4, CachePages: 4})

	// Warm the cache with a few point lookups.
	probes := []types.Address{
		entries[0].Key.Addr, entries[len(entries)/2].Key.Addr, entries[len(entries)-1].Key.Addr,
	}
	for _, a := range probes {
		if _, _, found, _, err := r.Get(a); err != nil || !found {
			t.Fatalf("warm get: found=%v err=%v", found, err)
		}
	}
	vWarm, iWarm := r.IOStats()

	// The "merge": drain the run, hashes included.
	it := r.Iter()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		if _, err := it.LeafHash(); err != nil {
			t.Fatal(err)
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}

	// The same lookups again: zero new physical page reads on either the
	// value or the index file.
	for _, a := range probes {
		if _, _, found, _, err := r.Get(a); err != nil || !found {
			t.Fatalf("re-get: found=%v err=%v", found, err)
		}
	}
	vAfter, iAfter := r.IOStats()
	if vAfter.PageReads != vWarm.PageReads || iAfter.PageReads != iWarm.PageReads {
		t.Fatalf("streaming scan evicted cached pages: value %d->%d, index %d->%d physical reads",
			vWarm.PageReads, vAfter.PageReads, iWarm.PageReads, iAfter.PageReads)
	}
	if vAfter.SeqReads == 0 {
		t.Fatal("scan did not register sequential reads")
	}
}
