package run

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cole/internal/types"
)

// genEntries produces a sorted entry set: nAddrs addresses with up to
// maxVersions versions each.
func genEntries(seed int64, nAddrs, maxVersions int) []types.Entry {
	r := rand.New(rand.NewSource(seed))
	var out []types.Entry
	for a := 0; a < nAddrs; a++ {
		addr := types.AddressFromUint64(uint64(a))
		blk := uint64(r.Intn(5))
		for v := 0; v < 1+r.Intn(maxVersions); v++ {
			out = append(out, types.Entry{
				Key:   types.CompoundKey{Addr: addr, Blk: blk},
				Value: types.ValueFromUint64(blk*1000 + uint64(a)),
			})
			blk += 1 + uint64(r.Intn(9))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

func buildRun(t *testing.T, entries []types.Entry, params Params) *Run {
	t.Helper()
	dir := t.TempDir()
	r, err := Build(dir, 1, int64(len(entries)), params, NewSliceIterator(entries))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestBuildAndGetEveryAddress(t *testing.T) {
	entries := genEntries(1, 500, 6)
	r := buildRun(t, entries, Params{Fanout: 4})

	// Latest version per address from the reference data.
	latest := map[types.Address]types.Entry{}
	for _, e := range entries {
		latest[e.Key.Addr] = e
	}
	for addr, want := range latest {
		e, pos, found, skipped, err := r.Get(addr)
		if err != nil {
			t.Fatal(err)
		}
		if skipped || !found {
			t.Fatalf("addr %v: found=%v skipped=%v", addr, found, skipped)
		}
		if e != want {
			t.Fatalf("addr %v: got %v want %v", addr, e, want)
		}
		if got, err := r.EntryAt(pos); err != nil || got != e {
			t.Fatalf("EntryAt(%d) disagrees: %v %v", pos, got, err)
		}
	}
}

func TestGetAbsentAddress(t *testing.T) {
	entries := genEntries(2, 100, 3)
	r := buildRun(t, entries, Params{Fanout: 4})
	miss := 0
	for i := 1000; i < 1200; i++ {
		e, _, found, skipped, err := r.Get(types.AddressFromUint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("absent address reported found: %v", e)
		}
		if skipped {
			miss++
		}
	}
	if miss < 150 {
		t.Fatalf("bloom filter skipped only %d/200 absent lookups", miss)
	}
}

func TestGetAtHistoricalVersions(t *testing.T) {
	addr := types.AddressFromUint64(7)
	var entries []types.Entry
	for _, blk := range []uint64{10, 20, 30, 40} {
		entries = append(entries, types.Entry{
			Key:   types.CompoundKey{Addr: addr, Blk: blk},
			Value: types.ValueFromUint64(blk),
		})
	}
	r := buildRun(t, entries, Params{Fanout: 2})
	cases := []struct {
		q    uint64
		want uint64
		ok   bool
	}{
		{5, 0, false}, {10, 10, true}, {15, 10, true}, {25, 20, true},
		{40, 40, true}, {1000, 40, true},
	}
	for _, c := range cases {
		e, _, found, _, err := r.GetAt(addr, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if found != c.ok {
			t.Fatalf("GetAt(%d): found=%v want %v", c.q, found, c.ok)
		}
		if found && e.Key.Blk != c.want {
			t.Fatalf("GetAt(%d) = blk %d, want %d", c.q, e.Key.Blk, c.want)
		}
	}
}

func TestLargeRunMultiLayerIndex(t *testing.T) {
	// A small page size shrinks ε and models-per-page, forcing several
	// learned-index layers even at test scale.
	entries := genEntries(3, 4000, 10)
	r := buildRun(t, entries, Params{Fanout: 8, PageSize: 512})
	if r.Layers() < 2 {
		t.Fatalf("expected a multi-layer learned index for %d entries, got %d layers", len(entries), r.Layers())
	}
	// Spot check predecessor semantics over random probe keys against a
	// reference binary search.
	probe := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		q := types.CompoundKey{
			Addr: types.AddressFromUint64(uint64(probe.Intn(4200))),
			Blk:  uint64(probe.Intn(200)),
		}
		idx := sort.Search(len(entries), func(i int) bool { return q.Less(entries[i].Key) })
		e, pos, ok, err := r.predecessor(q)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 0 {
			if ok {
				t.Fatalf("probe %v: expected no predecessor, got %v", q, e.Key)
			}
			continue
		}
		want := entries[idx-1]
		if !ok || e != want || pos != int64(idx-1) {
			t.Fatalf("probe %v: got (%v,%d,%v), want (%v,%d)", q, e.Key, pos, ok, want.Key, idx-1)
		}
	}
}

func TestRunStatsAndGeometry(t *testing.T) {
	entries := genEntries(5, 1000, 5)
	r := buildRun(t, entries, Params{Fanout: 4})
	if r.Count() != int64(len(entries)) {
		t.Fatalf("count %d, want %d", r.Count(), len(entries))
	}
	if r.MinKey() != entries[0].Key || r.MaxKey() != entries[len(entries)-1].Key {
		t.Fatal("min/max keys wrong")
	}
	if r.Models() <= 0 || r.Models() >= int64(len(entries)) {
		t.Fatalf("model count %d implausible for %d entries", r.Models(), len(entries))
	}
	data, index := r.SizeOnDisk()
	if data <= 0 || index <= 0 {
		t.Fatal("disk sizes must be positive")
	}
	v, i := r.IOStats()
	_ = v
	_ = i
}

func TestReopenRun(t *testing.T) {
	entries := genEntries(6, 300, 4)
	dir := t.TempDir()
	r1, err := Build(dir, 42, int64(len(entries)), Params{Fanout: 4}, NewSliceIterator(entries))
	if err != nil {
		t.Fatal(err)
	}
	digest := r1.Digest()
	root := r1.MHTRoot()
	r1.Close()

	r2, err := Open(dir, 42, Params{Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.Digest() != digest || r2.MHTRoot() != root {
		t.Fatal("digests changed across reopen")
	}
	e, _, found, _, err := r2.Get(entries[0].Key.Addr)
	if err != nil || !found {
		t.Fatalf("reopened run lookup failed: %v", err)
	}
	_ = e
}

func TestBuildValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Build(dir, 1, 0, Params{Fanout: 4}, NewSliceIterator(nil)); err == nil {
		t.Fatal("empty run must be rejected")
	}
	if _, err := Build(dir, 1, 5, Params{Fanout: 1}, NewSliceIterator(nil)); err == nil {
		t.Fatal("fanout 1 must be rejected")
	}
	// Count mismatch.
	entries := genEntries(7, 10, 2)
	if _, err := Build(dir, 2, int64(len(entries))+5, Params{Fanout: 4}, NewSliceIterator(entries)); err == nil {
		t.Fatal("count mismatch must be rejected")
	}
	// Aborted builds must not leave files behind for the failed id.
	files, _ := filepath.Glob(filepath.Join(dir, "run-*"))
	if len(files) != 0 {
		t.Fatalf("aborted build left files: %v", files)
	}
}

func TestCorruptMetaRejected(t *testing.T) {
	entries := genEntries(8, 50, 2)
	dir := t.TempDir()
	r, err := Build(dir, 9, int64(len(entries)), Params{Fanout: 4}, NewSliceIterator(entries))
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	metaFile := filepath.Join(dir, baseName(9)+".met")
	raw, err := os.ReadFile(metaFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0xFF
	if err := os.WriteFile(metaFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 9, Params{Fanout: 4}); err == nil {
		t.Fatal("corrupt metadata must be rejected")
	}
}

func TestRemoveDeletesFiles(t *testing.T) {
	entries := genEntries(9, 50, 2)
	dir := t.TempDir()
	r, err := Build(dir, 3, int64(len(entries)), Params{Fanout: 4}, NewSliceIterator(entries))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "run-*"))
	if len(files) != 0 {
		t.Fatalf("remove left files: %v", files)
	}
}

func TestProvSearchBasic(t *testing.T) {
	addr := types.AddressFromUint64(1)
	other := types.AddressFromUint64(2)
	var entries []types.Entry
	for _, blk := range []uint64{5, 10, 15, 20, 25} {
		entries = append(entries, types.Entry{Key: types.CompoundKey{Addr: addr, Blk: blk}, Value: types.ValueFromUint64(blk)})
		entries = append(entries, types.Entry{Key: types.CompoundKey{Addr: other, Blk: blk}, Value: types.ValueFromUint64(blk + 100)})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
	r := buildRun(t, entries, Params{Fanout: 2})

	res, err := r.ProvSearch(addr, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.BloomMiss {
		t.Fatal("address is present; bloom must not miss")
	}
	if len(res.Results) != 3 { // blocks 10, 15, 20
		t.Fatalf("got %d results, want 3", len(res.Results))
	}
	if !res.StopEarly {
		t.Fatal("version at blk 5 < 10 must trigger early stop")
	}
	verified, err := VerifyProv(r.MHTRoot(), addr, 10, 20, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(verified) != 3 {
		t.Fatalf("verified %d results", len(verified))
	}
	for i, blk := range []uint64{10, 15, 20} {
		if verified[i].Key.Blk != blk {
			t.Fatalf("result %d blk %d, want %d", i, verified[i].Key.Blk, blk)
		}
	}
}

func TestProvSearchNoOlderVersion(t *testing.T) {
	addr := types.AddressFromUint64(3)
	var entries []types.Entry
	for _, blk := range []uint64{50, 60} {
		entries = append(entries, types.Entry{Key: types.CompoundKey{Addr: addr, Blk: blk}, Value: types.ValueFromUint64(blk)})
	}
	r := buildRun(t, entries, Params{Fanout: 2})
	res, err := r.ProvSearch(addr, 40, 70)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopEarly {
		t.Fatal("no version below blk 40 exists; must not stop early")
	}
	if len(res.Results) != 2 {
		t.Fatalf("got %d results", len(res.Results))
	}
	if _, err := VerifyProv(r.MHTRoot(), addr, 40, 70, res); err != nil {
		t.Fatal(err)
	}
}

func TestProvSearchBloomMiss(t *testing.T) {
	entries := genEntries(10, 50, 2)
	r := buildRun(t, entries, Params{Fanout: 4})
	// Find an address the bloom filter genuinely excludes.
	for i := uint64(10_000); ; i++ {
		res, err := r.ProvSearch(types.AddressFromUint64(i), 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.BloomMiss {
			if res.Proof != nil || len(res.Results) != 0 {
				t.Fatal("bloom miss must carry no span or results")
			}
			break
		}
		if i > 11_000 {
			t.Fatal("could not find a bloom-missed address")
		}
	}
}

func TestProvVerifyDetectsTampering(t *testing.T) {
	addr := types.AddressFromUint64(4)
	var entries []types.Entry
	for blk := uint64(0); blk < 40; blk += 2 {
		entries = append(entries, types.Entry{Key: types.CompoundKey{Addr: addr, Blk: blk}, Value: types.ValueFromUint64(blk)})
	}
	r := buildRun(t, entries, Params{Fanout: 4})
	root := r.MHTRoot()

	fresh := func() *ProvResult {
		res, err := r.ProvSearch(addr, 10, 20)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Tampered value.
	res := fresh()
	res.Span[1].Value[0] ^= 1
	if _, err := VerifyProv(root, addr, 10, 20, res); err == nil {
		t.Fatal("tampered span value must fail")
	}
	// Dropped result.
	res = fresh()
	res.Results = res.Results[:len(res.Results)-1]
	if _, err := VerifyProv(root, addr, 10, 20, res); err == nil {
		t.Fatal("dropped result must fail")
	}
	// Truncated span hiding results on the right.
	res = fresh()
	res.Span = res.Span[:len(res.Span)-2]
	res.SpanHi -= 2
	if _, err := VerifyProv(root, addr, 10, 20, res); err == nil {
		t.Fatal("truncated span must fail")
	}
	// Wrong root.
	res = fresh()
	badRoot := root
	badRoot[0] ^= 1
	if _, err := VerifyProv(badRoot, addr, 10, 20, res); err == nil {
		t.Fatal("wrong root must fail")
	}
}

func TestProvSearchEmptyRangeInsideHistory(t *testing.T) {
	addr := types.AddressFromUint64(5)
	entries := []types.Entry{
		{Key: types.CompoundKey{Addr: addr, Blk: 10}, Value: types.ValueFromUint64(1)},
		{Key: types.CompoundKey{Addr: addr, Blk: 90}, Value: types.ValueFromUint64(2)},
	}
	r := buildRun(t, entries, Params{Fanout: 2})
	res, err := r.ProvSearch(addr, 40, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 {
		t.Fatalf("no versions in [40,50], got %d", len(res.Results))
	}
	if !res.StopEarly {
		t.Fatal("version at 10 < 40 must stop the search")
	}
	if v, err := VerifyProv(r.MHTRoot(), addr, 40, 50, res); err != nil || len(v) != 0 {
		t.Fatalf("empty result must still verify: %v", err)
	}
}

func TestProvSearchInvertedRange(t *testing.T) {
	entries := genEntries(11, 10, 2)
	r := buildRun(t, entries, Params{Fanout: 4})
	if _, err := r.ProvSearch(entries[0].Key.Addr, 10, 5); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestDigestBindsBloomAndRoot(t *testing.T) {
	entries := genEntries(12, 100, 3)
	r := buildRun(t, entries, Params{Fanout: 4})
	if r.Digest() != Digest(r.MHTRoot(), r.BloomBytes()) {
		t.Fatal("verifier-side digest reconstruction differs")
	}
	// Changing the bloom bytes must change the digest.
	b := r.BloomBytes()
	b[len(b)-1] ^= 1
	if r.Digest() == Digest(r.MHTRoot(), b) {
		t.Fatal("digest must bind the bloom filter")
	}
}

func TestSingleEntryRun(t *testing.T) {
	addr := types.AddressFromUint64(6)
	entries := []types.Entry{{Key: types.CompoundKey{Addr: addr, Blk: 3}, Value: types.ValueFromUint64(9)}}
	r := buildRun(t, entries, Params{Fanout: 2})
	e, _, found, _, err := r.Get(addr)
	if err != nil || !found || e != entries[0] {
		t.Fatalf("single entry get: %v %v %v", e, found, err)
	}
	res, err := r.ProvSearch(addr, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("results %d", len(res.Results))
	}
	if _, err := VerifyProv(r.MHTRoot(), addr, 0, 10, res); err != nil {
		t.Fatal(err)
	}
}
