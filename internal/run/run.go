// Package run implements COLE's on-disk sorted runs (§3.2, §4).
//
// A run is an immutable triple of files plus metadata:
//
//   - value file: compound key-value pairs sorted by key (60-byte records,
//     page-padded);
//   - index file: the disk-optimized learned index — layers of ε-bounded
//     models built bottom-up (Algorithm 3), each layer page-aligned so the
//     top layer is exactly the last page;
//   - Merkle file: the m-ary complete MHT over the value entries
//     (Algorithm 4), sharing positions with the value file;
//   - metadata: entry count, layer geometry, MHT root, and the serialized
//     address Bloom filter. The run digest H(mht_root ‖ bloom_digest)
//     participates in root_hash_list, authenticating both data and filter.
//
// All three files are written in a single streaming pass over a sorted
// entry iterator (the L0 flush or a level sort-merge), then never modified:
// "the index file remains valid from its construction until the next level
// merge" (§4.1).
package run

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"cole/internal/bloom"
	"cole/internal/mht"
	"cole/internal/pagefile"
	"cole/internal/pla"
	"cole/internal/types"
	"cole/internal/vfs"
)

// Iterator yields entries in strictly increasing key order.
type Iterator interface {
	// Next returns the next entry; ok is false when exhausted.
	Next() (e types.Entry, ok bool)
}

// HashedIterator is an Iterator that can also supply each entry's Merkle
// leaf hash h(K‖value) from a precomputed source (a run's .mrk file, a
// reshard spool). Build uses it to skip re-hashing every entry during
// level merges and bulk installs: the leaf hashes a source run stores
// are by construction exactly the digests the destination's MHT needs.
type HashedIterator interface {
	Iterator
	// Hashed reports whether LeafHash is available for every entry this
	// iterator yields (a merge of mixed sources is not).
	Hashed() bool
	// LeafHash returns the leaf hash of the entry most recently returned
	// by Next. Valid only until the next call to Next.
	LeafHash() (types.Hash, error)
}

// SliceIterator adapts a sorted entry slice.
type SliceIterator struct {
	entries []types.Entry
	i       int
}

// NewSliceIterator wraps a sorted slice.
func NewSliceIterator(entries []types.Entry) *SliceIterator {
	return &SliceIterator{entries: entries}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (types.Entry, bool) {
	if s.i >= len(s.entries) {
		return types.Entry{}, false
	}
	e := s.entries[s.i]
	s.i++
	return e, true
}

// Params configures run construction and opening.
type Params struct {
	PageSize   int     // disk page size (pagefile.DefaultPageSize if 0)
	Fanout     int     // MHT fanout m (must be ≥ 2)
	BloomFP    float64 // bloom false-positive target (0.01 if 0)
	CachePages int     // per-file page cache (16 if 0)
	// MergeReadahead is the window, in pages, that streaming run readers
	// (Iter: level merges, exports, reshard sources) fetch per syscall,
	// bypassing the point-read page cache. Default 256 (~1 MiB at 4 KiB
	// pages).
	MergeReadahead int
	// WriteBufferPages is how many pages run builders coalesce per write
	// syscall. Default 256 (~1 MiB at 4 KiB pages). Any value produces
	// byte-identical files.
	WriteBufferPages int
	// OptimalPLA selects the exact convex-hull segment construction
	// (pla.OptimalBuilder) instead of the default greedy cone: fewer
	// models per run at a higher build cost. Both produce identical
	// on-disk formats, so the flag only matters at build time.
	OptimalPLA bool
	// LegacyCompaction reverts Build's per-entry CPU path to the
	// pre-streaming behavior: every Merkle leaf hash is recomputed even
	// when the source supplies precomputed ones, and every entry re-hashes
	// the Bloom base digest instead of taking the consecutive-version fast
	// path. An ablation knob for the compaction benchmark; the output
	// files are byte-identical either way.
	LegacyCompaction bool
	// VerifyReads makes every point lookup check the returned entry
	// against its stored Merkle leaf hash, turning silent value-page
	// bit rot into a typed ErrCorrupt at the cost of one hash read and
	// one SHA-256 per hit. Off by default.
	VerifyReads bool
	// FS is the filesystem the run's files live on (vfs.OS when nil).
	FS vfs.FS
}

// segmentBuilder abstracts the two PLA constructions.
type segmentBuilder interface {
	Add(k types.CompoundKey, pos int64) error
	Finish() error
}

func newSegmentBuilder(optimal bool, eps int, emit func(pla.Model) error) (segmentBuilder, error) {
	if optimal {
		return pla.NewOptimalBuilder(eps, emit)
	}
	return pla.NewBuilder(eps, emit)
}

func (p Params) withDefaults() Params {
	if p.PageSize == 0 {
		p.PageSize = pagefile.DefaultPageSize
	}
	if p.BloomFP == 0 {
		p.BloomFP = 0.01
	}
	if p.CachePages == 0 {
		p.CachePages = 16
	}
	if p.MergeReadahead == 0 {
		p.MergeReadahead = pagefile.DefaultReadaheadPages
	}
	if p.WriteBufferPages == 0 {
		p.WriteBufferPages = pagefile.DefaultWriteBufferPages
	}
	p.FS = vfs.OrOS(p.FS)
	return p
}

// layerMeta records the page-aligned placement of one model layer.
type layerMeta struct {
	StartPage int64 // first page of the layer in the index file
	Pages     int64 // pages occupied
	Models    int64 // model records in the layer
}

// Run is an open, immutable sorted run.
type Run struct {
	ID     uint64
	dir    string
	params Params

	count   int64
	layers  []layerMeta
	mhtRoot types.Hash
	filter  *bloom.Filter
	minKey  types.CompoundKey
	maxKey  types.CompoundKey

	values *pagefile.File
	index  *pagefile.File
	merkle *mht.File
}

func baseName(id uint64) string { return fmt.Sprintf("run-%016x", id) }

func valuePath(dir string, id uint64) string  { return filepath.Join(dir, baseName(id)+".val") }
func indexPath(dir string, id uint64) string  { return filepath.Join(dir, baseName(id)+".idx") }
func merklePath(dir string, id uint64) string { return filepath.Join(dir, baseName(id)+".mrk") }
func metaPath(dir string, id uint64) string   { return filepath.Join(dir, baseName(id)+".met") }

// Files returns the four file names a run with the given id occupies
// (used by the engine's orphan cleanup).
func Files(id uint64) []string {
	return []string{
		baseName(id) + ".val",
		baseName(id) + ".idx",
		baseName(id) + ".mrk",
		baseName(id) + ".met",
	}
}

// Build streams a sorted iterator into a new run. count must equal the
// number of entries the iterator yields.
func Build(dir string, id uint64, count int64, params Params, src Iterator) (*Run, error) {
	params = params.withDefaults()
	if params.Fanout < 2 {
		return nil, fmt.Errorf("run: MHT fanout %d < 2", params.Fanout)
	}
	if count < 1 {
		return nil, fmt.Errorf("run: empty runs are not built (count=%d)", count)
	}

	// Cap the coalescing buffers at the value file's own page count: a
	// small run (an L0 flush, a shallow level) should not pay a ~1 MiB
	// allocation per file to save syscalls it will never issue. The
	// index and Merkle files are never larger than the value file.
	wbufPages := params.WriteBufferPages
	if vp := (count + int64(pagefile.PerPage(params.PageSize, types.EntrySize)) - 1) /
		int64(pagefile.PerPage(params.PageSize, types.EntrySize)); int64(wbufPages) > vp {
		wbufPages = int(vp)
	}
	valW, err := pagefile.CreateWriterSizeFS(params.FS, valuePath(dir, id), params.PageSize, types.EntrySize, wbufPages)
	if err != nil {
		return nil, err
	}
	idxW, err := pagefile.CreateWriterSizeFS(params.FS, indexPath(dir, id), params.PageSize, pla.ModelSize, wbufPages)
	if err != nil {
		valW.Abort()
		return nil, err
	}
	mrkW, err := mht.CreateWriterSizeFS(params.FS, merklePath(dir, id), count, params.Fanout, wbufPages*params.PageSize)
	if err != nil {
		valW.Abort()
		idxW.Abort()
		return nil, err
	}
	abort := func() {
		valW.Abort()
		idxW.Abort()
		mrkW.Abort()
		_ = params.FS.Remove(metaPath(dir, id))
	}

	filter := bloom.New(int(count), params.BloomFP)
	epsVal := pagefile.Epsilon(params.PageSize, types.EntrySize)

	// Bottom model layer: learn over (key, value-file position). Collect
	// each emitted model's (kmin, index-file position) to drive the upper
	// layers — O(#models) memory, a tiny fraction of the data.
	var (
		seen   int64
		minKey types.CompoundKey
		maxKey types.CompoundKey
	)
	ib := newIndexBuilder(idxW, params)
	builder, err := newSegmentBuilder(params.OptimalPLA, epsVal, ib.writeModel)
	if err != nil {
		abort()
		return nil, err
	}

	// Leaf-hash passthrough: when the source can replay precomputed leaf
	// hashes (a run's .mrk file, a reshard spool, or a merge of such
	// sources), consume them instead of re-running SHA-256 over every
	// entry. L0 flushes arrive as plain slice iterators — no Merkle file
	// exists yet — and keep hashing. The output is byte-identical either
	// way: a stored leaf hash IS types.HashEntry of its entry.
	var hashSrc HashedIterator
	if h, ok := src.(HashedIterator); ok && h.Hashed() && !params.LegacyCompaction {
		hashSrc = h
	}

	entryBuf := make([]byte, types.EntrySize)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		// Consecutive versions of one address are adjacent in compound-key
		// order; the filter insert is idempotent, so only the first needs
		// the SHA-256 base hashes.
		sameAddr := seen > 0 && e.Key.Addr == maxKey.Addr && !params.LegacyCompaction
		if seen == 0 {
			minKey = e.Key
		}
		maxKey = e.Key
		types.EncodeEntry(entryBuf, e)
		if err := valW.Append(entryBuf); err != nil {
			abort()
			return nil, err
		}
		if err := builder.Add(e.Key, seen); err != nil {
			abort()
			return nil, err
		}
		var leaf types.Hash
		if hashSrc != nil {
			if leaf, err = hashSrc.LeafHash(); err != nil {
				abort()
				return nil, err
			}
		} else {
			leaf = types.HashEntry(e)
		}
		if err := mrkW.Add(leaf); err != nil {
			abort()
			return nil, err
		}
		if sameAddr {
			filter.AddRepeat()
		} else {
			filter.Add(e.Key.Addr)
		}
		seen++
	}
	if seen != count {
		abort()
		return nil, fmt.Errorf("run: iterator yielded %d entries, expected %d", seen, count)
	}
	if err := builder.Finish(); err != nil {
		abort()
		return nil, err
	}

	layers, err := ib.finishLayers()
	if err != nil {
		abort()
		return nil, err
	}
	if err := idxW.Finish(); err != nil {
		abort()
		return nil, err
	}
	if err := valW.Finish(); err != nil {
		abort()
		return nil, err
	}
	root, err := mrkW.Finish()
	if err != nil {
		abort()
		return nil, err
	}

	meta := runMeta{
		Count:  count,
		Fanout: params.Fanout,
		Layers: layers,
		Root:   root,
		Bloom:  filter.Marshal(),
		MinKey: minKey,
		MaxKey: maxKey,
		PageSz: params.PageSize,
	}
	if err := writeMeta(params.FS, metaPath(dir, id), meta); err != nil {
		abort()
		return nil, err
	}
	return Open(dir, id, params)
}

// indexBuilder accumulates the bottom model layer of a learned index and
// builds the page-aligned upper layers over it (Algorithm 3's recursion).
// Shared by the sequential builder and the partitioned builder's stitch
// phase — upper-layer construction is identical either way, so the index
// file is byte-identical by construction.
type indexBuilder struct {
	idxW          *pagefile.Writer
	params        Params
	kmins         []types.CompoundKey
	modelBuf      []byte
	modelsPerPage int
}

func newIndexBuilder(idxW *pagefile.Writer, params Params) *indexBuilder {
	return &indexBuilder{
		idxW:          idxW,
		params:        params,
		modelBuf:      make([]byte, pla.ModelSize),
		modelsPerPage: pagefile.PerPage(params.PageSize, pla.ModelSize),
	}
}

// writeModel is the emit hook of the bottom-layer PLA construction: it
// appends the model to the index file and records its kmin for the
// upper layers.
func (b *indexBuilder) writeModel(m pla.Model) error {
	m.Encode(b.modelBuf)
	b.kmins = append(b.kmins, m.KMin)
	return b.idxW.Append(b.modelBuf)
}

// finishLayers pads out the bottom layer and recurses upward until a
// layer fits in one page. Model positions are global index-file record
// slots (page · modelsPerPage + slot), so predictions divide directly
// into page numbers. The caller still owns idxW.Finish.
func (b *indexBuilder) finishLayers() ([]layerMeta, error) {
	epsIdx := pagefile.Epsilon(b.params.PageSize, pla.ModelSize)
	var layers []layerMeta
	layerStartPage := int64(0)
	layerModels := int64(len(b.kmins))
	for {
		pages := (layerModels + int64(b.modelsPerPage) - 1) / int64(b.modelsPerPage)
		layers = append(layers, layerMeta{StartPage: layerStartPage, Pages: pages, Models: layerModels})
		if err := b.idxW.Pad(); err != nil {
			return nil, err
		}
		if pages <= 1 {
			break
		}
		nextStart := layerStartPage + pages
		prev := b.kmins
		b.kmins = b.kmins[:0:0]
		ub, err := newSegmentBuilder(b.params.OptimalPLA, epsIdx, b.writeModel)
		if err != nil {
			return nil, err
		}
		for j, k := range prev {
			// Global record slot of lower-layer model j.
			pos := (layerStartPage+int64(j)/int64(b.modelsPerPage))*int64(b.modelsPerPage) + int64(j)%int64(b.modelsPerPage)
			if err := ub.Add(k, pos); err != nil {
				return nil, err
			}
		}
		if err := ub.Finish(); err != nil {
			return nil, err
		}
		layerStartPage = nextStart
		layerModels = int64(len(b.kmins))
	}
	return layers, nil
}

// PageSizeOf reads the page size a run was built with from its metadata,
// so offline tools (reshard) can adopt the store's real geometry instead
// of requiring the operator to recall its creation options.
func PageSizeOf(dir string, id uint64) (int, error) {
	return PageSizeOfFS(vfs.OS{}, dir, id)
}

// PageSizeOfFS is PageSizeOf on an explicit filesystem.
func PageSizeOfFS(fsys vfs.FS, dir string, id uint64) (int, error) {
	m, err := readMeta(vfs.OrOS(fsys), metaPath(dir, id))
	if err != nil {
		return 0, err
	}
	return m.PageSz, nil
}

// Open maps an existing run. Failures to read or cross-check any of
// the four files surface as *types.ErrCorrupt pinned to that file.
func Open(dir string, id uint64, params Params) (*Run, error) {
	params = params.withDefaults()
	meta, err := readMeta(params.FS, metaPath(dir, id))
	if err != nil {
		return nil, types.CorruptFrom(metaPath(dir, id), err)
	}
	if params.Fanout == 0 {
		params.Fanout = meta.Fanout
	}
	if meta.Fanout != params.Fanout {
		return nil, fmt.Errorf("run %d: fanout %d on disk, %d requested", id, meta.Fanout, params.Fanout)
	}
	if meta.PageSz != params.PageSize {
		return nil, fmt.Errorf("run %d: page size %d on disk, %d requested", id, meta.PageSz, params.PageSize)
	}
	filter, err := bloom.Unmarshal(meta.Bloom)
	if err != nil {
		return nil, types.CorruptFrom(metaPath(dir, id), fmt.Errorf("run %d: %w", id, err))
	}
	values, err := pagefile.OpenFS(params.FS, valuePath(dir, id), params.PageSize, types.EntrySize, meta.Count, params.CachePages)
	if err != nil {
		return nil, types.CorruptFrom(valuePath(dir, id), err)
	}
	totalModels := int64(0)
	lastLayer := meta.Layers[len(meta.Layers)-1]
	totalModels = (lastLayer.StartPage)*int64(pagefile.PerPage(params.PageSize, pla.ModelSize)) + lastLayer.Models
	index, err := pagefile.OpenFS(params.FS, indexPath(dir, id), params.PageSize, pla.ModelSize, totalModels, params.CachePages)
	if err != nil {
		_ = values.Close()
		return nil, types.CorruptFrom(indexPath(dir, id), err)
	}
	merkle, err := mht.OpenFS(params.FS, merklePath(dir, id), meta.Count, meta.Fanout)
	if err != nil {
		_ = values.Close()
		_ = index.Close()
		return nil, types.CorruptFrom(merklePath(dir, id), err)
	}
	return &Run{
		ID:      id,
		dir:     dir,
		params:  params,
		count:   meta.Count,
		layers:  meta.Layers,
		mhtRoot: meta.Root,
		filter:  filter,
		minKey:  meta.MinKey,
		maxKey:  meta.MaxKey,
		values:  values,
		index:   index,
		merkle:  merkle,
	}, nil
}

// Count returns the number of entries.
func (r *Run) Count() int64 { return r.count }

// MHTRoot returns the Merkle file root hash.
func (r *Run) MHTRoot() types.Hash { return r.mhtRoot }

// BloomDigest returns the digest of the serialized Bloom filter.
func (r *Run) BloomDigest() types.Hash { return r.filter.Digest() }

// MayContain probes the run's Bloom filter: false means no version of
// addr exists in this run, so point lookups can skip its learned index
// entirely. The filter is immutable once the run is built, making the
// probe safe for concurrent readers.
func (r *Run) MayContain(addr types.Address) bool { return r.filter.MayContain(addr) }

// BloomBytes returns the serialized Bloom filter (for non-membership
// proofs).
func (r *Run) BloomBytes() []byte { return r.filter.Marshal() }

// Digest returns the run's contribution to root_hash_list:
// H(mht_root ‖ bloom_digest), binding both data and filter (§4).
func (r *Run) Digest() types.Hash {
	bd := r.filter.Digest()
	return types.HashData(r.mhtRoot[:], bd[:])
}

// Digest recomputes a run digest from its components (verifier side).
func Digest(mhtRoot types.Hash, bloomBytes []byte) types.Hash {
	bd := types.HashData(bloomBytes)
	return types.HashData(mhtRoot[:], bd[:])
}

// MinKey returns the smallest stored key.
func (r *Run) MinKey() types.CompoundKey { return r.minKey }

// MaxKey returns the largest stored key.
func (r *Run) MaxKey() types.CompoundKey { return r.maxKey }

// Layers returns the number of learned-index layers.
func (r *Run) Layers() int { return len(r.layers) }

// Models returns the total number of learned models across layers.
func (r *Run) Models() int64 {
	var t int64
	for _, l := range r.layers {
		t += l.Models
	}
	return t
}

// Iter returns a sequential iterator over the run's entries in key order
// (used by level sort-merges, exports, and reshard). It streams through
// a private readahead buffer (Params.MergeReadahead pages per syscall)
// that bypasses the run's point-read page cache entirely: a background
// merge scanning this run evicts nothing from concurrent readers' caches
// and takes no per-record lock. Read errors surface through Err.
func (r *Run) Iter() *RunIterator {
	return &RunIterator{r: r, sr: r.values.SequentialReader(r.params.MergeReadahead)}
}

// IterRange returns a sequential iterator over value-file positions
// [lo, hi): the bounded sub-iterator a partitioned merge drives over one
// key-range span. Its readahead window is clipped to the span's pages,
// and LeafHash stays position-aligned with the full-run iterator.
func (r *Run) IterRange(lo, hi int64) *RunIterator {
	return &RunIterator{
		r:   r,
		sr:  r.values.SequentialReaderRange(r.params.MergeReadahead, lo, hi),
		pos: lo,
	}
}

// KeyAt reads just the compound key of the entry at a value-file
// position with one uncached positional read — the merge range planner's
// probe, which must not evict concurrent readers' cached pages.
func (r *Run) KeyAt(pos int64) (types.CompoundKey, error) {
	var buf [types.EntrySize]byte
	if err := r.values.RecordAt(pos, buf[:]); err != nil {
		return types.CompoundKey{}, err
	}
	return types.DecodeCompoundKey(buf[:types.CompoundKeySize])
}

// RunIterator streams a run's entries, and — on demand — the Merkle leaf
// hashes stored alongside them (HashedIterator): consumers that build a
// destination run reuse the precomputed hashes; consumers that only need
// the entries (exports) never touch the Merkle file.
type RunIterator struct {
	r      *Run
	sr     *pagefile.SequentialReader
	leaves *mht.LeafReader // lazily opened on first LeafHash
	pos    int64           // entries yielded so far
	err    error
}

// Next implements Iterator.
func (it *RunIterator) Next() (types.Entry, bool) {
	if it.err != nil {
		return types.Entry{}, false
	}
	rec, ok, err := it.sr.Next()
	if err != nil {
		it.err = err
		return types.Entry{}, false
	}
	if !ok {
		return types.Entry{}, false
	}
	e, err := types.DecodeEntry(rec)
	if err != nil {
		it.err = err
		return types.Entry{}, false
	}
	it.pos++
	return e, true
}

// Hashed implements HashedIterator: every run stores its leaf hashes.
func (it *RunIterator) Hashed() bool { return true }

// LeafHash returns the stored Merkle leaf hash of the entry most
// recently returned by Next, read through a readahead window of the
// run's .mrk file.
func (it *RunIterator) LeafHash() (types.Hash, error) {
	if it.leaves == nil {
		it.leaves = it.r.merkle.LeafStream(it.r.params.MergeReadahead * it.r.params.PageSize)
	}
	return it.leaves.At(it.pos - 1)
}

// Err reports a read failure that terminated the iterator early.
func (it *RunIterator) Err() error { return it.err }

// EntryAt reads the entry at a value-file position through the run's
// page cache (the point-read path; decoded immediately, so the cached
// page is never copied).
func (r *Run) EntryAt(pos int64) (types.Entry, error) {
	rec, err := r.values.RecordView(pos)
	if err != nil {
		return types.Entry{}, err
	}
	return types.DecodeEntry(rec)
}

// ProveRange builds an MHT range proof over value-file positions [lo, hi].
func (r *Run) ProveRange(lo, hi int64) (*mht.RangeProof, error) {
	return r.merkle.ProveRange(lo, hi)
}

// IOStats reports cumulative page reads on the value and index files.
func (r *Run) IOStats() (value, index pagefile.IOStats) {
	return r.values.Stats(), r.index.Stats()
}

// Close releases all file handles.
func (r *Run) Close() error {
	err1 := r.values.Close()
	err2 := r.index.Close()
	err3 := r.merkle.Close()
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	return err3
}

// Remove closes the run and deletes its files (level-merge cleanup).
func (r *Run) Remove() error {
	firstErr := r.Close()
	for _, p := range []string{
		valuePath(r.dir, r.ID), indexPath(r.dir, r.ID),
		merklePath(r.dir, r.ID), metaPath(r.dir, r.ID),
	} {
		if err := r.params.FS.Remove(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SizeOnDisk sums the byte size of the run's files, split into value-file
// bytes ("data") and index+merkle+meta bytes ("index") for the storage
// breakdown experiments.
func (r *Run) SizeOnDisk() (data, index int64) {
	if st, err := r.params.FS.Stat(valuePath(r.dir, r.ID)); err == nil {
		data = st.Size()
	}
	for _, p := range []string{indexPath(r.dir, r.ID), merklePath(r.dir, r.ID), metaPath(r.dir, r.ID)} {
		if st, err := r.params.FS.Stat(p); err == nil {
			index += st.Size()
		}
	}
	return data, index
}

// ---- metadata encoding ----

type runMeta struct {
	Count  int64
	Fanout int
	PageSz int
	Layers []layerMeta
	Root   types.Hash
	Bloom  []byte
	MinKey types.CompoundKey
	MaxKey types.CompoundKey
}

func writeMeta(fsys vfs.FS, path string, m runMeta) error {
	buf := make([]byte, 0, 128+len(m.Bloom))
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	putU64(uint64(m.Count))
	putU64(uint64(m.Fanout))
	putU64(uint64(m.PageSz))
	putU64(uint64(len(m.Layers)))
	for _, l := range m.Layers {
		putU64(uint64(l.StartPage))
		putU64(uint64(l.Pages))
		putU64(uint64(l.Models))
	}
	buf = append(buf, m.Root[:]...)
	buf = append(buf, m.MinKey.Bytes()...)
	buf = append(buf, m.MaxKey.Bytes()...)
	putU64(uint64(len(m.Bloom)))
	buf = append(buf, m.Bloom...)
	sum := types.HashData(buf)
	buf = append(buf, sum[:]...)

	// Durable replace: the metadata is the run's commit point, and its
	// rename must survive a crash (tmp fsync + parent directory fsync).
	// This also makes the sibling .val/.idx/.mrk directory entries,
	// already content-synced by their writers, durable.
	return vfs.WriteFileAtomic(fsys, path, buf, 0o644)
}

func readMeta(fsys vfs.FS, path string) (runMeta, error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return runMeta{}, err
	}
	if len(raw) < types.HashSize {
		return runMeta{}, fmt.Errorf("run: meta %s truncated", path)
	}
	body, sum := raw[:len(raw)-types.HashSize], raw[len(raw)-types.HashSize:]
	check := types.HashData(body)
	if string(check[:]) != string(sum) {
		return runMeta{}, fmt.Errorf("run: meta %s checksum mismatch", path)
	}
	var m runMeta
	off := 0
	getU64 := func() (uint64, error) {
		if off+8 > len(body) {
			return 0, fmt.Errorf("run: meta %s too short", path)
		}
		v := binary.BigEndian.Uint64(body[off:])
		off += 8
		return v, nil
	}
	var v uint64
	if v, err = getU64(); err != nil {
		return runMeta{}, err
	}
	m.Count = int64(v)
	if v, err = getU64(); err != nil {
		return runMeta{}, err
	}
	m.Fanout = int(v)
	if v, err = getU64(); err != nil {
		return runMeta{}, err
	}
	m.PageSz = int(v)
	nLayers, err := getU64()
	if err != nil {
		return runMeta{}, err
	}
	if nLayers == 0 || nLayers > 64 {
		return runMeta{}, fmt.Errorf("run: meta %s has %d layers", path, nLayers)
	}
	for i := uint64(0); i < nLayers; i++ {
		var l layerMeta
		if v, err = getU64(); err != nil {
			return runMeta{}, err
		}
		l.StartPage = int64(v)
		if v, err = getU64(); err != nil {
			return runMeta{}, err
		}
		l.Pages = int64(v)
		if v, err = getU64(); err != nil {
			return runMeta{}, err
		}
		l.Models = int64(v)
		m.Layers = append(m.Layers, l)
	}
	need := types.HashSize + 2*types.CompoundKeySize
	if off+need > len(body) {
		return runMeta{}, fmt.Errorf("run: meta %s too short", path)
	}
	copy(m.Root[:], body[off:])
	off += types.HashSize
	k, err := types.DecodeCompoundKey(body[off:])
	if err != nil {
		return runMeta{}, err
	}
	m.MinKey = k
	off += types.CompoundKeySize
	k, err = types.DecodeCompoundKey(body[off:])
	if err != nil {
		return runMeta{}, err
	}
	m.MaxKey = k
	off += types.CompoundKeySize
	blen, err := getU64()
	if err != nil {
		return runMeta{}, err
	}
	if off+int(blen) > len(body) {
		return runMeta{}, fmt.Errorf("run: meta %s bloom truncated", path)
	}
	m.Bloom = append([]byte(nil), body[off:off+int(blen)]...)
	return m, nil
}
