package run

import "cole/internal/types"

// ChunkedIterator wraps a sorted entry iterator so that a checkpoint
// callback runs between every quantum entries. It is the preemption
// point of long merges: the engine's callback asks the merge scheduler
// whether a higher-priority job (an L0 flush a commit is waiting on) is
// queued and, if so, hands the merge's worker slot over before pulling
// the next chunk. The wrapper yields exactly the source's entries in the
// source's order — chunking can only ever change *when* the entries are
// produced, never *what* is produced, so merged runs are byte-identical
// at any quantum.
type ChunkedIterator struct {
	src        Iterator
	quantum    int
	n          int
	checkpoint func()
}

// Chunked wraps src with a checkpoint every quantum entries. The
// checkpoint runs between entries — after the previous entry's LeafHash
// window has closed and before the next source advance — so callbacks
// may block for arbitrarily long without violating any iterator
// contract. A quantum < 1 or nil checkpoint returns src unwrapped.
func Chunked(src Iterator, quantum int, checkpoint func()) Iterator {
	if quantum < 1 || checkpoint == nil {
		return src
	}
	return &ChunkedIterator{src: src, quantum: quantum, checkpoint: checkpoint}
}

// Next implements Iterator, invoking the checkpoint at chunk boundaries.
func (c *ChunkedIterator) Next() (types.Entry, bool) {
	if c.n >= c.quantum {
		c.n = 0
		c.checkpoint()
	}
	e, ok := c.src.Next()
	if ok {
		c.n++
	}
	return e, ok
}

// Hashed implements HashedIterator by delegation: chunking preserves the
// source's leaf-hash passthrough (Build and buildSpan type-assert for
// it, and losing it would silently re-hash every merged entry).
func (c *ChunkedIterator) Hashed() bool {
	h, ok := c.src.(HashedIterator)
	return ok && h.Hashed()
}

// LeafHash delegates to the source's precomputed leaf hash for the entry
// most recently returned by Next.
func (c *ChunkedIterator) LeafHash() (types.Hash, error) {
	return c.src.(HashedIterator).LeafHash()
}

// Err surfaces the source's read failure (ErrIterator delegation).
func (c *ChunkedIterator) Err() error { return sourceErr(c.src) }
