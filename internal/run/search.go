package run

import (
	"fmt"

	"cole/internal/mht"
	"cole/internal/pla"
	"cole/internal/types"
)

// Get searches the run for the latest version of addr (Algorithm 7 with
// Kq = ⟨addr, max_int⟩). skipped reports a Bloom-filter miss (the run was
// not touched). found reports whether any version of addr exists here.
func (r *Run) Get(addr types.Address) (e types.Entry, pos int64, found, skipped bool, err error) {
	if !r.filter.MayContain(addr) {
		return types.Entry{}, 0, false, true, nil
	}
	e, pos, ok, err := r.predecessor(types.MaxKeyFor(addr))
	if err != nil || !ok || e.Key.Addr != addr {
		return types.Entry{}, 0, false, false, err
	}
	return e, pos, true, false, nil
}

// GetAt searches the run for the version of addr active at block height
// blk (the newest version with Key.Blk ≤ blk).
func (r *Run) GetAt(addr types.Address, blk uint64) (e types.Entry, pos int64, found, skipped bool, err error) {
	if !r.filter.MayContain(addr) {
		return types.Entry{}, 0, false, true, nil
	}
	e, pos, ok, err := r.SearchAt(addr, blk)
	return e, pos, ok, false, err
}

// SearchAt is GetAt without the Bloom probe: the engine's read path
// consults MayContain itself (to count filter skips) and then descends
// the learned index directly, avoiding a second round of filter hashing.
func (r *Run) SearchAt(addr types.Address, blk uint64) (types.Entry, int64, bool, error) {
	e, pos, ok, err := r.predecessor(types.CompoundKey{Addr: addr, Blk: blk})
	if err != nil || !ok || e.Key.Addr != addr {
		return types.Entry{}, 0, false, err
	}
	return e, pos, true, nil
}

// predecessor locates the entry with the largest key ≤ kq using the
// learned index: binary search on the top-layer page, then model-guided
// descent touching at most two or three pages per layer (Algorithm 7).
func (r *Run) predecessor(kq types.CompoundKey) (types.Entry, int64, bool, error) {
	if kq.Cmp(r.minKey) < 0 {
		return types.Entry{}, 0, false, nil
	}
	perPage := int64(r.index.PerPage())

	// Top layer: exactly one page.
	top := r.layers[len(r.layers)-1]
	data, valid, err := r.modelsPage(top, top.StartPage)
	if err != nil {
		return types.Entry{}, 0, false, err
	}
	model, _, ok := pla.SearchPage(data, valid, kq)
	if !ok {
		// kq ≥ minKey implies the first model covers it; defensive only.
		return types.Entry{}, 0, false, nil
	}

	// Descend through the lower model layers.
	for li := len(r.layers) - 1; li >= 1; li-- {
		target := r.layers[li-1]
		pred := model.Predict(kq) // global record slot in the index file
		page := clamp(pred/perPage, target.StartPage, target.StartPage+target.Pages-1)
		model, err = r.findModel(target, page, kq)
		if err != nil {
			return types.Entry{}, 0, false, err
		}
	}

	// Bottom layer model → value file position.
	pred := model.Predict(kq)
	e, pos, ok, err := r.findEntry(pred, kq)
	if err == nil && ok && r.params.VerifyReads {
		err = r.verifyEntry(e, pos)
	}
	if err != nil {
		return types.Entry{}, 0, false, err
	}
	return e, pos, ok, nil
}

// verifyEntry checks an entry read from the value file against its
// stored Merkle leaf hash, catching silent value-page damage before it
// is served (Params.VerifyReads).
func (r *Run) verifyEntry(e types.Entry, pos int64) error {
	leaf, err := r.merkle.NodeHash(0, pos)
	if err != nil {
		return types.CorruptFrom(merklePath(r.dir, r.ID), err)
	}
	if types.HashEntry(e) != leaf {
		return types.NewCorrupt(valuePath(r.dir, r.ID),
			pos/int64(r.values.PerPage()),
			fmt.Sprintf("entry %d does not match its Merkle leaf", pos))
	}
	return nil
}

// modelsPage reads an index page and returns its raw records plus the
// number of valid models on it (layer padding slots are excluded).
func (r *Run) modelsPage(layer layerMeta, page int64) ([]byte, int, error) {
	data, _, err := r.index.PageRecords(page)
	if err != nil {
		return nil, 0, err
	}
	perPage := int64(r.index.PerPage())
	valid := layer.Models - (page-layer.StartPage)*perPage
	if valid > perPage {
		valid = perPage
	}
	if valid < 1 {
		return nil, 0, types.NewCorrupt(indexPath(r.dir, r.ID), page,
			fmt.Sprintf("run %d: page %d outside layer models", r.ID, page))
	}
	return data, int(valid), nil
}

// findModel locates the rightmost model with kmin ≤ kq near the predicted
// page within a layer. The learned bound keeps the true model within one
// page of the prediction, so at most two extra page reads occur.
func (r *Run) findModel(layer layerMeta, page int64, kq types.CompoundKey) (pla.Model, error) {
	first := layer.StartPage
	last := layer.StartPage + layer.Pages - 1
	data, valid, err := r.modelsPage(layer, page)
	if err != nil {
		return pla.Model{}, err
	}
	firstK, err := pla.FirstKMin(data, 0)
	if err != nil {
		return pla.Model{}, err
	}
	if kq.Less(firstK) {
		if page == first {
			return pla.Model{}, types.NewCorrupt(indexPath(r.dir, r.ID), page,
				fmt.Sprintf("run %d: key %v precedes layer start", r.ID, kq))
		}
		page--
		data, valid, err = r.modelsPage(layer, page)
		if err != nil {
			return pla.Model{}, err
		}
	} else {
		lastK, err := pla.FirstKMin(data, valid-1)
		if err != nil {
			return pla.Model{}, err
		}
		if lastK.Less(kq) && page < last {
			// Predecessor may sit on the next page.
			nData, nValid, err := r.modelsPage(layer, page+1)
			if err != nil {
				return pla.Model{}, err
			}
			nFirst, err := pla.FirstKMin(nData, 0)
			if err != nil {
				return pla.Model{}, err
			}
			if !kq.Less(nFirst) {
				data, valid = nData, nValid
			}
		}
	}
	m, _, ok := pla.SearchPage(data, valid, kq)
	if !ok {
		return pla.Model{}, types.NewCorrupt(indexPath(r.dir, r.ID), page,
			fmt.Sprintf("run %d: model search missed for %v", r.ID, kq))
	}
	return m, nil
}

// findEntry locates the predecessor entry of kq near the predicted value
// file position.
func (r *Run) findEntry(pred int64, kq types.CompoundKey) (types.Entry, int64, bool, error) {
	perPage := int64(r.values.PerPage())
	page := clamp(pred/perPage, 0, r.values.NumPages()-1)

	data, n, err := r.values.PageRecords(page)
	if err != nil {
		return types.Entry{}, 0, false, err
	}
	firstK, err := types.DecodeCompoundKey(data)
	if err != nil {
		return types.Entry{}, 0, false, types.CorruptFrom(valuePath(r.dir, r.ID), err)
	}
	if kq.Less(firstK) {
		if page == 0 {
			return types.Entry{}, 0, false, nil
		}
		page--
		data, n, err = r.values.PageRecords(page)
		if err != nil {
			return types.Entry{}, 0, false, err
		}
	} else {
		lastK, err := types.DecodeCompoundKey(data[(n-1)*types.EntrySize:])
		if err != nil {
			return types.Entry{}, 0, false, types.CorruptFrom(valuePath(r.dir, r.ID), err)
		}
		if lastK.Less(kq) && page < r.values.NumPages()-1 {
			nData, nN, err := r.values.PageRecords(page + 1)
			if err != nil {
				return types.Entry{}, 0, false, err
			}
			nFirst, err := types.DecodeCompoundKey(nData)
			if err != nil {
				return types.Entry{}, 0, false, types.CorruptFrom(valuePath(r.dir, r.ID), err)
			}
			if !kq.Less(nFirst) {
				data, n = nData, nN
				page++
			}
		}
	}
	idx := predecessorInPage(data, n, kq)
	if idx < 0 {
		return types.Entry{}, 0, false, nil
	}
	e, err := types.DecodeEntry(data[idx*types.EntrySize:])
	if err != nil {
		return types.Entry{}, 0, false, types.CorruptFrom(valuePath(r.dir, r.ID), err)
	}
	lo, _ := r.values.PageBounds(page)
	return e, lo + int64(idx), true, nil
}

// predecessorInPage returns the index of the rightmost entry with
// key ≤ kq, or -1.
func predecessorInPage(data []byte, n int, kq types.CompoundKey) int {
	var kb [types.CompoundKeySize]byte
	kq.PutBytes(kb[:])
	lo, hi, found := 0, n-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		off := mid * types.EntrySize
		if cmpBytes(data[off:off+types.CompoundKeySize], kb[:]) <= 0 {
			found = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return found
}

func cmpBytes(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ProvResult is the per-run outcome of a provenance search (§6.2,
// Algorithm 8): the matched versions, the authenticated contiguous span
// that proves completeness, and the early-stop signal.
type ProvResult struct {
	// Results are the versions of the queried address with
	// blkLo ≤ blk ≤ blkHi found in this run.
	Results []types.Entry
	// Span is the contiguous proven slice of the value file, including the
	// boundary entries flanking the matches; SpanLo/SpanHi are its
	// value-file positions.
	Span           []types.Entry
	SpanLo, SpanHi int64
	// Proof authenticates Span against the run's MHT root.
	Proof *mht.RangeProof
	// BloomMiss is set when the Bloom filter excludes the address: the
	// serialized filter (BloomBytes) stands in for the span as the
	// non-membership proof.
	BloomMiss bool
	// StopEarly is set when the run holds a version of the address older
	// than blkLo: deeper levels hold only older data and need not be
	// searched (Algorithm 8 lines 19–21).
	StopEarly bool
}

// ProvSearch finds the versions of addr within block heights
// [blkLo, blkHi] and builds the Merkle evidence for them.
func (r *Run) ProvSearch(addr types.Address, blkLo, blkHi uint64) (*ProvResult, error) {
	if blkHi < blkLo {
		return nil, fmt.Errorf("run: inverted block range [%d,%d]", blkLo, blkHi)
	}
	if !r.filter.MayContain(addr) {
		return &ProvResult{BloomMiss: true}, nil
	}
	// Anchor at K_l = ⟨addr, blk_l − 1⟩ (the paper's boundary key): the
	// span then starts at the newest version *older* than blk_l when one
	// exists, which both proves left completeness and carries the
	// early-stop evidence.
	kl := types.ProvLowerKey(addr, blkLo)
	ku := types.CompoundKey{Addr: addr, Blk: blkHi}

	var spanLo int64
	if _, pos, ok, err := r.predecessor(kl); err != nil {
		return nil, err
	} else if ok {
		spanLo = pos
	}

	res := &ProvResult{SpanLo: spanLo}
	pos := spanLo
	for pos < r.count {
		e, err := r.EntryAt(pos)
		if err != nil {
			return nil, err
		}
		res.Span = append(res.Span, e)
		if e.Key.Addr == addr {
			if e.Key.Blk >= blkLo && e.Key.Blk <= blkHi {
				res.Results = append(res.Results, e)
			}
			if e.Key.Blk < blkLo {
				res.StopEarly = true
			}
		}
		if ku.Less(e.Key) {
			// First entry beyond K_u: right completeness boundary.
			break
		}
		pos++
	}
	if pos >= r.count {
		pos = r.count - 1
	}
	res.SpanHi = pos
	proof, err := r.ProveRange(res.SpanLo, res.SpanHi)
	if err != nil {
		return nil, err
	}
	res.Proof = proof
	return res, nil
}

// ReconstructProv validates a per-run provenance result and reconstructs
// the MHT root it authenticates against. It checks the span/proof
// consistency and the completeness boundaries, and returns the
// reconstructed root plus the verified in-range entries. The caller folds
// the root into the run digest and matches it against root_hash_list.
//
// For a BloomMiss the caller instead verifies the disclosed filter bytes
// against the digest and checks MayContain(addr) is false; see
// core.VerifyProv.
func ReconstructProv(addr types.Address, blkLo, blkHi uint64, res *ProvResult) (types.Hash, []types.Entry, error) {
	if res.Proof == nil || len(res.Span) == 0 {
		return types.Hash{}, nil, fmt.Errorf("run: provenance result missing span")
	}
	if res.SpanHi-res.SpanLo+1 != int64(len(res.Span)) {
		return types.Hash{}, nil, fmt.Errorf("run: span positions [%d,%d] do not match %d entries", res.SpanLo, res.SpanHi, len(res.Span))
	}
	if res.Proof.Lo != res.SpanLo || res.Proof.Hi != res.SpanHi {
		return types.Hash{}, nil, fmt.Errorf("run: proof range [%d,%d] does not match span [%d,%d]", res.Proof.Lo, res.Proof.Hi, res.SpanLo, res.SpanHi)
	}
	leaves := make([]types.Hash, len(res.Span))
	for i, e := range res.Span {
		leaves[i] = types.HashEntry(e)
	}
	root, err := mht.VerifyRange(res.Proof, leaves)
	if err != nil {
		return types.Hash{}, nil, err
	}
	// Keys must be strictly increasing (positions are sorted).
	for i := 1; i < len(res.Span); i++ {
		if res.Span[i].Key.Cmp(res.Span[i-1].Key) <= 0 {
			return types.Hash{}, nil, fmt.Errorf("run: span entries out of order")
		}
	}
	kl := types.CompoundKey{Addr: addr, Blk: blkLo}
	ku := types.CompoundKey{Addr: addr, Blk: blkHi}
	// Left completeness: nothing in range can precede the span.
	if res.SpanLo != 0 && kl.Less(res.Span[0].Key) {
		return types.Hash{}, nil, fmt.Errorf("run: span may omit results on the left")
	}
	// Right completeness: nothing in range can follow the span.
	if res.SpanHi != res.Proof.N-1 && !ku.Less(res.Span[len(res.Span)-1].Key) {
		return types.Hash{}, nil, fmt.Errorf("run: span may omit results on the right")
	}
	var out []types.Entry
	for _, e := range res.Span {
		if e.Key.Addr == addr && e.Key.Blk >= blkLo && e.Key.Blk <= blkHi {
			out = append(out, e)
		}
	}
	if len(out) != len(res.Results) {
		return types.Hash{}, nil, fmt.Errorf("run: claimed %d results, span holds %d", len(res.Results), len(out))
	}
	for i := range out {
		if out[i] != res.Results[i] {
			return types.Hash{}, nil, fmt.Errorf("run: result %d does not match span", i)
		}
	}
	return root, out, nil
}

// VerifyProv checks a per-run provenance result against a known MHT root
// and returns the verified in-range entries.
func VerifyProv(mhtRoot types.Hash, addr types.Address, blkLo, blkHi uint64, res *ProvResult) ([]types.Entry, error) {
	root, out, err := ReconstructProv(addr, blkLo, blkHi, res)
	if err != nil {
		return nil, err
	}
	if root != mhtRoot {
		return nil, fmt.Errorf("run: reconstructed MHT root mismatch")
	}
	return out, nil
}
