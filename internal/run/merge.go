package run

import "container/heap"

import "cole/internal/types"

// ErrIterator is an Iterator that can terminate early on a read failure;
// RunIterator and the reshard spool readers implement it. Merge checks
// for it on every exhausted source so disk errors surface instead of
// silently truncating the merged stream.
type ErrIterator interface {
	Iterator
	Err() error
}

// MergeIterator k-way merges sorted entry iterators into one sorted
// stream. Keys must be globally unique across the sources (every
// ⟨addr, blk⟩ compound key is written in exactly one block of exactly one
// shard), so no deduplication is performed — a duplicate indicates
// corruption and fails downstream via the PLA builder's
// strict-monotonicity check. This is the machinery behind level
// sort-merges, snapshot exports, and offline resharding.
//
// The source that produced the last-yielded entry is advanced lazily, at
// the start of the NEXT call to Next: between calls that source's most
// recent entry is still its current one, so LeafHash can fetch the
// entry's precomputed Merkle leaf hash from the source on demand —
// consumers that never ask (exports) never pay the hash reads.
type MergeIterator struct {
	h      mergeHeap
	hashed bool
	// yielded reports whether h[0].cur was returned by the last Next and
	// its source still needs advancing.
	yielded bool
	err     error
}

type mergeCursor struct {
	it  Iterator
	cur types.Entry
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].cur.Key.Less(h[j].cur.Key) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Merge returns an iterator over the union of the sorted sources.
func Merge(sources ...Iterator) *MergeIterator {
	m := &MergeIterator{hashed: true}
	for _, src := range sources {
		if h, ok := src.(HashedIterator); !ok || !h.Hashed() {
			m.hashed = false
		}
		if e, ok := src.Next(); ok {
			m.h = append(m.h, &mergeCursor{it: src, cur: e})
		} else if err := sourceErr(src); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

// MergeRuns merges the entry streams of whole runs (the level sort-merge
// and reshard source shapes).
func MergeRuns(runs []*Run) *MergeIterator {
	its := make([]Iterator, len(runs))
	for i, r := range runs {
		its[i] = r.Iter()
	}
	return Merge(its...)
}

func sourceErr(it Iterator) error {
	if ei, ok := it.(ErrIterator); ok {
		return ei.Err()
	}
	return nil
}

// Next implements Iterator.
func (m *MergeIterator) Next() (types.Entry, bool) {
	if m.err != nil {
		return types.Entry{}, false
	}
	if m.yielded {
		// Advance the source of the previously yielded entry (deferred so
		// that LeafHash could still query it between Next calls).
		m.yielded = false
		top := m.h[0]
		if e, ok := top.it.Next(); ok {
			top.cur = e
			heap.Fix(&m.h, 0)
		} else {
			if err := sourceErr(top.it); err != nil {
				m.err = err
				return types.Entry{}, false
			}
			heap.Pop(&m.h)
		}
	}
	if m.h.Len() == 0 {
		return types.Entry{}, false
	}
	m.yielded = true
	return m.h[0].cur, true
}

// Hashed implements HashedIterator: true when every source carries
// precomputed leaf hashes (all runs / spools; an export mixing L0 slice
// iterators is not hashed).
func (m *MergeIterator) Hashed() bool { return m.hashed }

// LeafHash returns the precomputed Merkle leaf hash of the entry most
// recently returned by Next, fetched from the source that produced it.
// Only valid on a Hashed merge, until the next call to Next.
func (m *MergeIterator) LeafHash() (types.Hash, error) {
	return m.h[0].it.(HashedIterator).LeafHash()
}

// Err reports a read failure from any source.
func (m *MergeIterator) Err() error { return m.err }
