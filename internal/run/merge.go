package run

import "container/heap"

import "cole/internal/types"

// ErrIterator is an Iterator that can terminate early on a read failure;
// RunIterator and the reshard spool readers implement it. Merge checks
// for it on every exhausted source so disk errors surface instead of
// silently truncating the merged stream.
type ErrIterator interface {
	Iterator
	Err() error
}

// MergeIterator k-way merges sorted entry iterators into one sorted
// stream. Keys must be globally unique across the sources (every
// ⟨addr, blk⟩ compound key is written in exactly one block of exactly one
// shard), so no deduplication is performed — a duplicate indicates
// corruption and fails downstream via the PLA builder's
// strict-monotonicity check. This is the machinery behind level
// sort-merges, snapshot exports, and offline resharding.
type MergeIterator struct {
	h   mergeHeap
	err error
}

type mergeCursor struct {
	it  Iterator
	cur types.Entry
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].cur.Key.Less(h[j].cur.Key) }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Merge returns an iterator over the union of the sorted sources.
func Merge(sources ...Iterator) *MergeIterator {
	m := &MergeIterator{}
	for _, src := range sources {
		if e, ok := src.Next(); ok {
			m.h = append(m.h, &mergeCursor{it: src, cur: e})
		} else if err := sourceErr(src); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

// MergeRuns merges the entry streams of whole runs (the level sort-merge
// and reshard source shapes).
func MergeRuns(runs []*Run) *MergeIterator {
	its := make([]Iterator, len(runs))
	for i, r := range runs {
		its[i] = r.Iter()
	}
	return Merge(its...)
}

func sourceErr(it Iterator) error {
	if ei, ok := it.(ErrIterator); ok {
		return ei.Err()
	}
	return nil
}

// Next implements Iterator.
func (m *MergeIterator) Next() (types.Entry, bool) {
	if m.err != nil || m.h.Len() == 0 {
		return types.Entry{}, false
	}
	top := m.h[0]
	out := top.cur
	if e, ok := top.it.Next(); ok {
		top.cur = e
		heap.Fix(&m.h, 0)
	} else {
		if err := sourceErr(top.it); err != nil {
			m.err = err
			return types.Entry{}, false
		}
		heap.Pop(&m.h)
	}
	return out, true
}

// Err reports a read failure from any source.
func (m *MergeIterator) Err() error { return m.err }
