package run

import (
	"errors"
	"fmt"

	"cole/internal/mht"
	"cole/internal/types"
)

func asCorrupt(err error) (*types.ErrCorrupt, bool) {
	var ec *types.ErrCorrupt
	ok := errors.As(err, &ec)
	return ec, ok
}

// Finding is one integrity defect the scrub pinned to a file. Page is
// the damaged page (value/index files) or node index within its layer
// (Merkle file), or -1 when the damage is not page-attributable.
type Finding struct {
	File   string
	Page   int64
	Detail string
}

func (f Finding) String() string {
	if f.Page >= 0 {
		return fmt.Sprintf("%s page %d: %s", f.File, f.Page, f.Detail)
	}
	return fmt.Sprintf("%s: %s", f.File, f.Detail)
}

// maxFindings bounds the per-run report: a shredded file would
// otherwise yield one finding per page.
const maxFindings = 64

// Verify scrubs one run's four files and reports every integrity
// defect it can pin down. A fast scrub checks the metadata checksum,
// the cross-file geometry (exact sizes), and the stored Merkle root
// against the metadata. A full scrub additionally walks every entry
// (strict key ordering, min/max bounds, Bloom membership), rebuilds the
// whole Merkle tree from the entries comparing every stored node, and
// descends the learned index for every key to prove coverage.
//
// A clean run returns an empty slice. Verify never modifies the run.
func Verify(dir string, id uint64, params Params, fast bool) []Finding {
	params = params.withDefaults()
	// The scrub does its own leaf comparison; double-checking every
	// probe read would only slow it down.
	params.VerifyReads = false

	// Open is the geometry probe: metadata checksum + decode, Bloom
	// unmarshal, and exact size checks on all three data files. Its
	// errors are already pinned to a file.
	r, err := Open(dir, id, params)
	if err != nil {
		return []Finding{findingFromErr(metaPath(dir, id), err)}
	}
	defer func() { _ = r.Close() }()

	var fs []Finding
	add := func(f Finding) bool {
		if len(fs) < maxFindings {
			fs = append(fs, f)
		}
		return len(fs) < maxFindings
	}

	storedRoot, err := r.merkle.Root()
	if err != nil {
		add(findingFromErr(merklePath(dir, id), err))
		return fs
	}
	if storedRoot != r.mhtRoot {
		add(Finding{File: merklePath(dir, id), Page: int64(r.merkle.Layers() - 1),
			Detail: "stored root does not match metadata root"})
	}
	if fast {
		return fs
	}

	fs = append(fs, r.verifyEntriesAndMerkle(storedRoot, maxFindings-len(fs))...)
	if len(fs) >= maxFindings {
		return fs[:maxFindings]
	}
	fs = append(fs, r.verifyIndexCoverage(maxFindings-len(fs))...)
	if len(fs) > maxFindings {
		fs = fs[:maxFindings]
	}
	return fs
}

// findingFromErr turns an open/read error into a Finding, preserving
// the file/page attribution when err is a typed ErrCorrupt.
func findingFromErr(fallbackFile string, err error) Finding {
	if ec, ok := asCorrupt(err); ok {
		return Finding{File: ec.File, Page: ec.Page, Detail: ec.Detail}
	}
	return Finding{File: fallbackFile, Page: -1, Detail: err.Error()}
}

// verifyEntriesAndMerkle walks the value file once — checking ordering,
// bounds, and Bloom membership — while recomputing the entire Merkle
// tree from the entries and comparing every node against the stored
// file. Mismatches are attributed by cross-checking the two roots:
// when the rebuilt root matches the metadata the entries are authentic
// and a differing stored node is Merkle-file damage; when the stored
// tree is internally consistent and its root matches the metadata, the
// tree is authentic and a differing leaf is value-file damage.
func (r *Run) verifyEntriesAndMerkle(storedRoot types.Hash, budget int) []Finding {
	var fs []Finding
	valPath := valuePath(r.dir, r.ID)
	mrkPath := merklePath(r.dir, r.ID)
	perPage := int64(r.values.PerPage())

	type mismatch struct {
		layer int
		idx   int64
	}
	var mismatches []mismatch
	leaves := r.merkle.LeafStream(0)

	// Streaming m-ary rebuild mirroring the writer's cascade: a group
	// of m nodes folds into its parent as soon as it completes, and
	// Finish folds the short tail groups bottom-up.
	m := r.params.Fanout
	layerCount := r.merkle.Layers()
	pending := make([][]types.Hash, layerCount)
	next := make([]int64, layerCount)
	var push func(layer int, h types.Hash)
	push = func(layer int, h types.Hash) {
		if layer > 0 { // leaves are compared inline against the stream
			stored, err := r.merkle.NodeHash(layer, next[layer])
			if err == nil && stored != h && len(mismatches) < maxFindings {
				mismatches = append(mismatches, mismatch{layer, next[layer]})
			}
		}
		next[layer]++
		if layer == layerCount-1 {
			pending[layer] = append(pending[layer][:0], h)
			return
		}
		pending[layer] = append(pending[layer], h)
		if len(pending[layer]) == m {
			parent := types.HashConcat(pending[layer]...)
			pending[layer] = pending[layer][:0]
			push(layer+1, parent)
		}
	}

	it := r.Iter()
	var pos int64
	var prev types.CompoundKey
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if pos > 0 && e.Key.Cmp(prev) <= 0 {
			fs = append(fs, Finding{File: valPath, Page: pos / perPage,
				Detail: fmt.Sprintf("entry %d key not above its predecessor", pos)})
			if len(fs) >= budget {
				return fs
			}
		}
		if !r.filter.MayContain(e.Key.Addr) {
			fs = append(fs, Finding{File: valPath, Page: pos / perPage,
				Detail: fmt.Sprintf("entry %d address missing from Bloom filter", pos)})
			if len(fs) >= budget {
				return fs
			}
		}
		leaf := types.HashEntry(e)
		if stored, err := leaves.At(pos); err != nil {
			fs = append(fs, findingFromErr(mrkPath, err))
			return fs
		} else if stored != leaf && len(mismatches) < maxFindings {
			mismatches = append(mismatches, mismatch{0, pos})
		}
		push(0, leaf)
		prev = e.Key
		pos++
	}
	if err := it.Err(); err != nil {
		fs = append(fs, findingFromErr(valPath, err))
		return fs
	}
	if pos != r.count {
		fs = append(fs, Finding{File: valPath, Page: -1,
			Detail: fmt.Sprintf("walked %d entries, metadata says %d", pos, r.count)})
		return fs
	}
	if pos > 0 {
		first, _ := r.EntryAt(0)
		if first.Key != r.minKey {
			fs = append(fs, Finding{File: valPath, Page: 0, Detail: "first key does not match metadata min key"})
		}
		if prev != r.maxKey {
			fs = append(fs, Finding{File: valPath, Page: (pos - 1) / perPage,
				Detail: "last key does not match metadata max key"})
		}
	}
	// Fold the tail groups bottom-up, exactly as the writer's Finish.
	for layer := 0; layer < layerCount-1; layer++ {
		if len(pending[layer]) > 0 {
			parent := types.HashConcat(pending[layer]...)
			pending[layer] = pending[layer][:0]
			push(layer+1, parent)
		}
	}
	rebuiltRoot := pending[layerCount-1][0]

	if len(mismatches) == 0 {
		if rebuiltRoot != r.mhtRoot {
			// Every stored node matches what the entries produce, yet the
			// fold disagrees with the metadata root: geometry damage.
			fs = append(fs, Finding{File: mrkPath, Page: -1,
				Detail: "rebuilt root does not match metadata root"})
		}
		return fs
	}

	switch {
	case rebuiltRoot == r.mhtRoot:
		// The entries reproduce the committed root, so they are
		// authentic; the stored tree is what diverged.
		for _, mm := range mismatches {
			fs = append(fs, Finding{File: mrkPath, Page: mm.idx,
				Detail: fmt.Sprintf("layer %d node %d does not match rebuild from entries", mm.layer, mm.idx)})
			if len(fs) >= budget {
				break
			}
		}
	case storedRoot == r.mhtRoot && r.storedTreeConsistent():
		// The stored tree hangs together and carries the committed
		// root, so it is authentic; the value file is what diverged.
		for _, mm := range mismatches {
			if mm.layer != 0 {
				continue // implied by the damaged leaves below them
			}
			fs = append(fs, Finding{File: valPath, Page: mm.idx / perPage,
				Detail: fmt.Sprintf("entry %d does not match its Merkle leaf", mm.idx)})
			if len(fs) >= budget {
				break
			}
		}
	default:
		// Both sides are damaged (or the damage spans files): report
		// the divergence without picking a side.
		for _, mm := range mismatches {
			fs = append(fs, Finding{File: mrkPath, Page: mm.idx,
				Detail: fmt.Sprintf("layer %d node %d diverges from entries (value or Merkle file damaged)", mm.layer, mm.idx)})
			if len(fs) >= budget {
				break
			}
		}
	}
	return fs
}

// storedTreeConsistent reports whether every stored internal node is
// the hash of its stored children — i.e. the Merkle file is internally
// coherent regardless of the value file.
func (r *Run) storedTreeConsistent() bool {
	counts := mht.LayerCounts(r.count, r.params.Fanout)
	m := int64(r.params.Fanout)
	for layer := 1; layer < len(counts); layer++ {
		for idx := int64(0); idx < counts[layer]; idx++ {
			lo := idx * m
			hi := lo + m
			if hi > counts[layer-1] {
				hi = counts[layer-1]
			}
			children := make([]types.Hash, 0, m)
			for c := lo; c < hi; c++ {
				h, err := r.merkle.NodeHash(layer-1, c)
				if err != nil {
					return false
				}
				children = append(children, h)
			}
			parent, err := r.merkle.NodeHash(layer, idx)
			if err != nil || parent != types.HashConcat(children...) {
				return false
			}
		}
	}
	return true
}

// verifyIndexCoverage descends the learned index for every entry's own
// key and demands it resolves to that exact position — a full-coverage
// proof of the PLA layers (every model, every page boundary) using only
// the public search path.
func (r *Run) verifyIndexCoverage(budget int) []Finding {
	var fs []Finding
	idxPath := indexPath(r.dir, r.ID)
	it := r.Iter()
	var pos int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		got, gotPos, found, err := r.predecessor(e.Key)
		switch {
		case err != nil:
			fs = append(fs, findingFromErr(idxPath, err))
		case !found || gotPos != pos || got != e:
			fs = append(fs, Finding{File: idxPath, Page: -1,
				Detail: fmt.Sprintf("index resolves key of entry %d to position %d", pos, gotPos)})
		}
		if len(fs) >= budget {
			return fs
		}
		pos++
	}
	if err := it.Err(); err != nil && len(fs) == 0 {
		fs = append(fs, findingFromErr(valuePath(r.dir, r.ID), err))
	}
	return fs
}
