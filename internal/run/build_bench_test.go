package run

import (
	"sort"
	"testing"

	"cole/internal/types"
)

// benchMergeBuild times a 4-way sort-merge rebuild of version-clustered
// runs — the level-merge data path — under the given params, so the
// legacy and streaming pipelines can be compared with
// `go test -bench MergeBuild ./internal/run`.
func benchMergeBuild(b *testing.B, params Params) {
	dir := b.TempDir()
	const nAddrs, versions, ways = 20000, 8, 4
	addrs := make([]types.Address, nAddrs)
	for i := range addrs {
		addrs[i] = types.AddressFromUint64(uint64(i))
	}
	sort.Slice(addrs, func(i, j int) bool {
		return types.CompoundKey{Addr: addrs[i]}.Less(types.CompoundKey{Addr: addrs[j]})
	})
	// Eight versions per address, striped round-robin across the source
	// runs: each source is sorted and the merged stream is globally
	// unique, the shape a full level group presents.
	perRun := make([][]types.Entry, ways)
	g := 0
	for _, a := range addrs {
		for v := 1; v <= versions; v++ {
			e := types.Entry{Key: types.CompoundKey{Addr: a, Blk: uint64(v)}, Value: types.ValueFromUint64(uint64(g))}
			perRun[g%ways] = append(perRun[g%ways], e)
			g++
		}
	}
	runs := make([]*Run, ways)
	for k := range runs {
		r, err := Build(dir, uint64(k), int64(len(perRun[k])), params, NewSliceIterator(perRun[k]))
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		runs[k] = r
	}
	total := int64(nAddrs * versions)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := MergeRuns(runs)
		r, err := Build(dir, uint64(100+i), total, params, it)
		if err != nil {
			b.Fatal(err)
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(total * types.EntrySize)
		if err := r.Remove(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeBuildLegacy(b *testing.B) {
	benchMergeBuild(b, Params{Fanout: 4, MergeReadahead: 1, WriteBufferPages: 1, LegacyCompaction: true})
}

func BenchmarkMergeBuildStreaming(b *testing.B) {
	benchMergeBuild(b, Params{Fanout: 4})
}
