package run

import (
	"fmt"
	"sync"

	"cole/internal/bloom"
	"cole/internal/mht"
	"cole/internal/pagefile"
	"cole/internal/pla"
	"cole/internal/types"
)

// Parallel supplies the scheduling hooks of a partitioned build. Both
// funcs are optional: a nil Spawn runs span builds inline (sequentially)
// and a nil Yield blocks the caller directly.
type Parallel struct {
	// Spawn schedules one span build; implementations must run fn exactly
	// once (typically on a merge-pool worker).
	Spawn func(fn func())
	// Yield is called around the join that waits for every spawned span.
	// A caller that itself occupies a merge-pool slot releases it here so
	// its own spans can run on a single-worker pool without deadlock.
	Yield func(wait func())
}

func (p Parallel) spawn(fn func()) {
	if p.Spawn == nil {
		fn()
		return
	}
	p.Spawn(fn)
}

func (p Parallel) yield(wait func()) {
	if p.Yield == nil {
		wait()
		return
	}
	p.Yield(wait)
}

// spanResult is what one span build hands the stitcher.
type spanResult struct {
	filter *bloom.Filter
	minKey types.CompoundKey
	maxKey types.CompoundKey
	err    error
}

// BuildPartitioned builds a run from a planned set of key-range spans,
// fanning the span builds across the Parallel hooks. openSpan returns
// the sorted entry iterator of one span (its bounded k-way merge). The
// output is byte-identical to Build over the concatenated spans:
//
//   - value file: spans cut on page boundaries, each worker writes its
//     pages at final offsets in a pre-sized shared file;
//   - Merkle file: span writers produce every node their leaf range
//     owns at its final layer offset; the boundary straddlers are
//     stitched bottom-up afterwards;
//   - Bloom filter: per-span filters with the full-count geometry,
//     unioned (bit OR is order-independent and idempotent);
//   - learned index: rebuilt sequentially from the merged keys read
//     back from the shared value file — PLA segmentation depends on
//     every preceding key, so this is the one stage that stays
//     sequential; it reads what was just written (page-cache warm)
//     instead of re-merging the sources.
func BuildPartitioned(dir string, id uint64, count int64, params Params, spans []Span,
	openSpan func(Span) (Iterator, error), par Parallel) (*Run, error) {
	params = params.withDefaults()
	if params.Fanout < 2 {
		return nil, fmt.Errorf("run: MHT fanout %d < 2", params.Fanout)
	}
	if count < 1 {
		return nil, fmt.Errorf("run: empty runs are not built (count=%d)", count)
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("run: partitioned build with no spans")
	}
	if len(spans) == 1 {
		it, err := openSpan(spans[0])
		if err != nil {
			return nil, err
		}
		return Build(dir, id, count, params, it)
	}
	var spanned int64
	for _, sp := range spans {
		spanned += sp.Hi - sp.Lo
	}
	if spanned != count {
		return nil, fmt.Errorf("run: spans cover %d entries, expected %d", spanned, count)
	}

	perPage := int64(pagefile.PerPage(params.PageSize, types.EntrySize))
	wbufPages := params.WriteBufferPages
	if vp := (count + perPage - 1) / perPage; int64(wbufPages) > vp {
		wbufPages = int(vp)
	}

	valW, err := pagefile.CreateSharedFS(params.FS, valuePath(dir, id), params.PageSize, types.EntrySize, count)
	if err != nil {
		return nil, err
	}
	mrkW, err := mht.CreateSharedFS(params.FS, merklePath(dir, id), count, params.Fanout, wbufPages*params.PageSize)
	if err != nil {
		valW.Abort()
		return nil, err
	}
	abort := func() {
		valW.Abort()
		mrkW.Abort()
		_ = params.FS.Remove(indexPath(dir, id))
		_ = params.FS.Remove(metaPath(dir, id))
	}

	results := make([]spanResult, len(spans))
	var wg sync.WaitGroup
	for i := range spans {
		wg.Add(1)
		i := i
		par.spawn(func() {
			defer wg.Done()
			results[i] = buildSpan(valW, mrkW, count, params, wbufPages, spans[i], openSpan)
		})
	}
	par.yield(wg.Wait)

	for i, res := range results {
		if res.err != nil {
			abort()
			return nil, fmt.Errorf("run: span %d [%d,%d): %w", i, spans[i].Lo, spans[i].Hi, res.err)
		}
		if i > 0 && !results[i-1].maxKey.Less(res.minKey) {
			abort()
			return nil, fmt.Errorf("run: span %d starts at %v, not above previous max %v",
				i, res.minKey, results[i-1].maxKey)
		}
	}

	// Sequential index rebuild over the freshly written value file.
	layers, err := buildIndexFromValues(dir, id, count, params, wbufPages, valW)
	if err != nil {
		abort()
		return nil, err
	}
	if err := valW.Finish(); err != nil {
		abort()
		return nil, err
	}

	leafSpans := make([][2]int64, len(spans))
	for i, sp := range spans {
		leafSpans[i] = [2]int64{sp.Lo, sp.Hi}
	}
	root, err := mrkW.Stitch(leafSpans)
	if err != nil {
		abort()
		return nil, err
	}

	filter := results[0].filter
	for _, res := range results[1:] {
		if err := filter.Union(res.filter); err != nil {
			abort()
			return nil, err
		}
	}
	if filter.Entries() != uint64(count) {
		abort()
		return nil, fmt.Errorf("run: unioned filter holds %d entries, expected %d", filter.Entries(), count)
	}

	meta := runMeta{
		Count:  count,
		Fanout: params.Fanout,
		Layers: layers,
		Root:   root,
		Bloom:  filter.Marshal(),
		MinKey: results[0].minKey,
		MaxKey: results[len(results)-1].maxKey,
		PageSz: params.PageSize,
	}
	if err := writeMeta(params.FS, metaPath(dir, id), meta); err != nil {
		abort()
		return nil, err
	}
	return Open(dir, id, params)
}

// buildSpan streams one span's merged entries into its slices of the
// shared value and Merkle files, and builds its Bloom contribution.
func buildSpan(valW *pagefile.SharedWriter, mrkW *mht.SharedWriter, count int64, params Params,
	wbufPages int, sp Span, openSpan func(Span) (Iterator, error)) (res spanResult) {
	fail := func(err error) spanResult {
		res.err = err
		return res
	}
	seg, err := valW.Segment(sp.Lo, wbufPages)
	if err != nil {
		return fail(err)
	}
	mspan, err := mrkW.Span(sp.Lo, sp.Hi)
	if err != nil {
		return fail(err)
	}
	src, err := openSpan(sp)
	if err != nil {
		return fail(err)
	}

	// The span filter gets the full run's geometry so the union marshals
	// byte-identically to one sequential pass.
	filter := bloom.New(int(count), params.BloomFP)

	var hashSrc HashedIterator
	if h, ok := src.(HashedIterator); ok && h.Hashed() && !params.LegacyCompaction {
		hashSrc = h
	}

	want := sp.Hi - sp.Lo
	var seen int64
	entryBuf := make([]byte, types.EntrySize)
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		if seen >= want {
			return fail(fmt.Errorf("span yielded more than %d entries", want))
		}
		sameAddr := seen > 0 && e.Key.Addr == res.maxKey.Addr && !params.LegacyCompaction
		if seen == 0 {
			res.minKey = e.Key
		}
		res.maxKey = e.Key
		types.EncodeEntry(entryBuf, e)
		if err := seg.Append(entryBuf); err != nil {
			return fail(err)
		}
		var leaf types.Hash
		if hashSrc != nil {
			if leaf, err = hashSrc.LeafHash(); err != nil {
				return fail(err)
			}
		} else {
			leaf = types.HashEntry(e)
		}
		if err := mspan.Add(leaf); err != nil {
			return fail(err)
		}
		// A span whose first entries continue the previous span's address
		// re-Adds it: the bit pattern is idempotent and both paths count
		// one entry, so the union stays byte-identical.
		if sameAddr {
			filter.AddRepeat()
		} else {
			filter.Add(e.Key.Addr)
		}
		seen++
	}
	if err := sourceErr(src); err != nil {
		return fail(err)
	}
	if seen != want {
		return fail(fmt.Errorf("span yielded %d entries, expected %d", seen, want))
	}
	if err := seg.Close(); err != nil {
		return fail(err)
	}
	if err := mspan.Close(); err != nil {
		return fail(err)
	}
	res.filter = filter
	return res
}

// buildIndexFromValues streams the shared value file's keys (still warm
// in the page cache) through the standard PLA construction — identical,
// by construction, to the index the sequential builder would emit.
func buildIndexFromValues(dir string, id uint64, count int64, params Params,
	wbufPages int, valW *pagefile.SharedWriter) ([]layerMeta, error) {
	idxW, err := pagefile.CreateWriterSizeFS(params.FS, indexPath(dir, id), params.PageSize, pla.ModelSize, wbufPages)
	if err != nil {
		return nil, err
	}
	ib := newIndexBuilder(idxW, params)
	epsVal := pagefile.Epsilon(params.PageSize, types.EntrySize)
	builder, err := newSegmentBuilder(params.OptimalPLA, epsVal, ib.writeModel)
	if err != nil {
		idxW.Abort()
		return nil, err
	}
	reader := valW.Reader(params.MergeReadahead)
	for pos := int64(0); pos < count; pos++ {
		rec, ok, err := reader.Next()
		if err != nil {
			idxW.Abort()
			return nil, err
		}
		if !ok {
			idxW.Abort()
			return nil, fmt.Errorf("run: value read-back ended at %d of %d entries", pos, count)
		}
		k, err := types.DecodeCompoundKey(rec[:types.CompoundKeySize])
		if err != nil {
			idxW.Abort()
			return nil, err
		}
		if err := builder.Add(k, pos); err != nil {
			idxW.Abort()
			return nil, err
		}
	}
	if err := builder.Finish(); err != nil {
		idxW.Abort()
		return nil, err
	}
	layers, err := ib.finishLayers()
	if err != nil {
		idxW.Abort()
		return nil, err
	}
	if err := idxW.Finish(); err != nil {
		idxW.Abort()
		return nil, err
	}
	return layers, nil
}
