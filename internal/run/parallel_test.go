package run

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"cole/internal/types"
)

// buildSources materializes k disjoint runs from round-robin slices of
// the entry set, returning them sorted by slot (the level-merge shape).
func buildSources(t *testing.T, dir string, entries []types.Entry, k int, params Params) []*Run {
	t.Helper()
	runs := make([]*Run, k)
	for i, part := range splitSorted(entries, k) {
		r, err := Build(dir, uint64(100+i), int64(len(part)), params, NewSliceIterator(part))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		runs[i] = r
	}
	return runs
}

// TestBuildPartitionedGolden is the byte-identity oracle of partitioned
// merges: the same k-way merge built sequentially and partitioned at
// W ∈ {1, 2, 4, 8} must produce byte-identical .val/.idx/.mrk/.met
// files and equal digests — for both PLA builders, and regardless of
// whether the spans run inline or on concurrent goroutines.
func TestBuildPartitionedGolden(t *testing.T) {
	entries := genEntries(7, 800, 8)
	count := int64(len(entries))
	for _, optimal := range []bool{false, true} {
		params := Params{Fanout: 4, OptimalPLA: optimal}
		srcDir := t.TempDir()
		sources := buildSources(t, srcDir, entries, 3, params)

		seqDir := t.TempDir()
		seq, err := Build(seqDir, 1, count, params, MergeRuns(sources))
		if err != nil {
			t.Fatal(err)
		}
		seq.Close()
		want := runFiles(t, seqDir, 1)

		for _, width := range []int{1, 2, 4, 8} {
			spans, err := PlanRuns(sources, width, params.PageSize)
			if err != nil {
				t.Fatalf("optimal=%v width=%d: plan: %v", optimal, width, err)
			}
			par := Parallel{}
			if width > 1 {
				par.Spawn = func(fn func()) { go fn() }
			}
			parDir := t.TempDir()
			got, err := BuildPartitioned(parDir, 1, count, params, spans,
				func(sp Span) (Iterator, error) { return MergeRunsRange(sources, sp), nil }, par)
			if err != nil {
				t.Fatalf("optimal=%v width=%d: %v", optimal, width, err)
			}
			if got.Digest() != runDigest(t, seqDir, params) {
				t.Errorf("optimal=%v width=%d: digest mismatch", optimal, width)
			}
			got.Close()
			gotFiles := runFiles(t, parDir, 1)
			for ext, wantRaw := range want {
				if !bytes.Equal(gotFiles[ext], wantRaw) {
					t.Errorf("optimal=%v width=%d: %s differs (%d vs %d bytes)",
						optimal, width, ext, len(gotFiles[ext]), len(wantRaw))
				}
			}
		}
	}
}

func runDigest(t *testing.T, dir string, params Params) types.Hash {
	t.Helper()
	r, err := Open(dir, 1, params)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	return r.Digest()
}

// TestBuildPartitionedConcurrentPool drives the spans through a real
// bounded pool shape — more spans than workers, spawned concurrently —
// to exercise the shared-file writers under actual parallelism.
func TestBuildPartitionedConcurrentPool(t *testing.T) {
	entries := genEntries(11, 1200, 6)
	count := int64(len(entries))
	params := Params{Fanout: 8}
	srcDir := t.TempDir()
	sources := buildSources(t, srcDir, entries, 4, params)

	seqDir := t.TempDir()
	seq, err := Build(seqDir, 1, count, params, MergeRuns(sources))
	if err != nil {
		t.Fatal(err)
	}
	seq.Close()
	want := runFiles(t, seqDir, 1)

	spans, err := PlanRuns(sources, 8, params.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Two-worker pool: spans queue behind a semaphore like the real
	// scheduler's slot channel.
	sem := make(chan struct{}, 2)
	par := Parallel{
		Spawn: func(fn func()) {
			go func() {
				sem <- struct{}{}
				defer func() { <-sem }()
				fn()
			}()
		},
	}
	parDir := t.TempDir()
	got, err := BuildPartitioned(parDir, 1, count, params, spans,
		func(sp Span) (Iterator, error) { return MergeRunsRange(sources, sp), nil }, par)
	if err != nil {
		t.Fatal(err)
	}
	got.Close()
	gotFiles := runFiles(t, parDir, 1)
	for ext, wantRaw := range want {
		if !bytes.Equal(gotFiles[ext], wantRaw) {
			t.Errorf("%s differs under pooled spans", ext)
		}
	}
}

// sliceSource adapts a sorted key slice to PlanSource for planner tests.
type sliceSource struct{ keys []types.CompoundKey }

func (s sliceSource) Count() int64 { return int64(len(s.keys)) }
func (s sliceSource) KeyAt(pos int64) (types.CompoundKey, error) {
	if pos < 0 || pos >= int64(len(s.keys)) {
		return types.CompoundKey{}, fmt.Errorf("KeyAt(%d) of %d", pos, len(s.keys))
	}
	return s.keys[pos], nil
}

// orderedAddr maps v to an address whose byte order matches its numeric
// order (AddressFromUint64 hashes, which scrambles ordering — fine for
// workloads, useless for constructing pre-sorted planner inputs).
func orderedAddr(v uint64) types.Address {
	b := make([]byte, types.AddressSize)
	binary.BigEndian.PutUint64(b[types.AddressSize-8:], v)
	return types.AddressFromBytes(b)
}

// TestPlanSkewedDistribution checks the planner on sources with heavily
// skewed, disjoint key ranges: spans must be page-aligned, contiguous,
// cover everything exactly once, and stay near byte-equal — no empty
// spans and no span more than twice the ideal share.
func TestPlanSkewedDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	mk := func(base uint64, n int, stride uint64) []types.CompoundKey {
		keys := make([]types.CompoundKey, n)
		next := base
		for i := range keys {
			next += 1 + uint64(r.Intn(int(stride)))
			keys[i] = types.CompoundKey{Addr: orderedAddr(next), Blk: 1}
		}
		return keys
	}
	// One giant dense source, one small source far above it, one source
	// interleaved across both ranges — ranks diverge wildly from naive
	// proportional splits.
	srcs := []PlanSource{
		sliceSource{mk(0, 40000, 3)},
		sliceSource{mk(1<<40, 700, 5)},
		sliceSource{mk(1<<20, 4000, 1<<22)},
	}
	var total int64
	for _, s := range srcs {
		total += s.Count()
	}
	const pageSize = 4096
	perPage := int64(pageSize / types.EntrySize)

	for _, width := range []int{2, 4, 8} {
		spans, err := Plan(srcs, width, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		if len(spans) != width {
			t.Fatalf("width %d: got %d spans", width, len(spans))
		}
		ideal := total / int64(width)
		var at int64
		for i, sp := range spans {
			if sp.Lo != at {
				t.Fatalf("width %d span %d: starts at %d, want %d", width, i, sp.Lo, at)
			}
			at = sp.Hi
			if i < len(spans)-1 && sp.Hi%perPage != 0 {
				t.Errorf("width %d span %d: boundary %d not page-aligned", width, i, sp.Hi)
			}
			size := sp.Hi - sp.Lo
			if size <= 0 {
				t.Fatalf("width %d span %d: empty", width, i)
			}
			if size > 2*ideal {
				t.Errorf("width %d span %d: %d entries, ideal %d", width, i, size, ideal)
			}
			var srcSum int64
			for j := range srcs {
				if sp.SrcLo[j] > sp.SrcHi[j] {
					t.Fatalf("width %d span %d src %d: inverted range", width, i, j)
				}
				srcSum += sp.SrcHi[j] - sp.SrcLo[j]
			}
			if srcSum != size {
				t.Errorf("width %d span %d: source ranges sum to %d, span holds %d", width, i, srcSum, size)
			}
		}
		if at != total {
			t.Fatalf("width %d: spans cover %d of %d", width, at, total)
		}
		// Boundary correctness: every key in span i sorts below every key
		// in span i+1, source by source against the global cut key.
		for i := 0; i < len(spans)-1; i++ {
			var maxBelow, minAbove *types.CompoundKey
			for j, s := range srcs {
				if hi := spans[i].SrcHi[j]; hi > spans[i].SrcLo[j] {
					k, _ := s.KeyAt(hi - 1)
					if maxBelow == nil || maxBelow.Less(k) {
						maxBelow = &k
					}
				}
				if lo := spans[i+1].SrcLo[j]; lo < spans[i+1].SrcHi[j] {
					k, _ := s.KeyAt(lo)
					if minAbove == nil || k.Less(*minAbove) {
						minAbove = &k
					}
				}
			}
			if maxBelow != nil && minAbove != nil && !maxBelow.Less(*minAbove) {
				t.Errorf("width %d: cut %d not key-ordered: %v !< %v", width, i, maxBelow, minAbove)
			}
		}
	}
}

// TestPlanTinyInput: a merge smaller than one page per span collapses to
// fewer spans instead of producing empties.
func TestPlanTinyInput(t *testing.T) {
	keys := make([]types.CompoundKey, 5)
	for i := range keys {
		keys[i] = types.CompoundKey{Addr: types.AddressFromUint64(uint64(i)), Blk: 1}
	}
	spans, err := Plan([]PlanSource{sliceSource{keys}}, 8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Lo != 0 || spans[0].Hi != 5 {
		t.Fatalf("got %+v", spans)
	}
}

// TestIterRangeMatchesFullScan: bounded sub-iterators concatenated over
// a span partition replay the full iterator, entries and leaf hashes.
func TestIterRangeMatchesFullScan(t *testing.T) {
	entries := genEntries(3, 300, 5)
	r := buildRun(t, entries, Params{Fanout: 4})

	var got []types.Entry
	var hashes []types.Hash
	n := r.Count()
	for _, cut := range [][2]int64{{0, n / 3}, {n / 3, n / 2}, {n / 2, n}} {
		it := r.IterRange(cut[0], cut[1])
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			h, err := it.LeafHash()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, e)
			hashes = append(hashes, h)
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(entries) {
		t.Fatalf("ranges yielded %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		if got[i] != e {
			t.Fatalf("entry %d mismatch", i)
		}
		if hashes[i] != types.HashEntry(e) {
			t.Fatalf("leaf hash %d mismatch", i)
		}
	}
}

// TestKeyAt probes random positions against the in-memory reference.
func TestKeyAt(t *testing.T) {
	entries := genEntries(5, 200, 4)
	r := buildRun(t, entries, Params{Fanout: 4})
	rng := rand.New(rand.NewSource(9))
	for probe := 0; probe < 100; probe++ {
		pos := int64(rng.Intn(len(entries)))
		k, err := r.KeyAt(pos)
		if err != nil {
			t.Fatal(err)
		}
		if k != entries[pos].Key {
			t.Fatalf("KeyAt(%d) = %v, want %v", pos, k, entries[pos].Key)
		}
	}
}

// TestPlanRandomizedOracle cross-checks planned spans against an exact
// in-memory merge for many random source shapes: concatenating the
// per-source ranges span by span must reproduce the full sorted stream.
func TestPlanRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		nSrc := 1 + rng.Intn(5)
		var all []types.CompoundKey
		srcs := make([]PlanSource, nSrc)
		slices := make([][]types.CompoundKey, nSrc)
		next := uint64(0)
		for i := 0; i < nSrc; i++ {
			n := 1 + rng.Intn(3000)
			keys := make([]types.CompoundKey, n)
			for j := range keys {
				next += 1 + uint64(rng.Intn(7))
				keys[j] = types.CompoundKey{Addr: types.AddressFromUint64(next), Blk: 1}
			}
			slices[i] = keys
			all = append(all, keys...)
		}
		// Shuffle key ranges between sources: reassign each key to a
		// random source, keeping per-source order.
		for i := range slices {
			slices[i] = slices[i][:0]
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		for _, k := range all {
			i := rng.Intn(nSrc)
			slices[i] = append(slices[i], k)
		}
		nonEmpty := false
		for i := range slices {
			srcs[i] = sliceSource{slices[i]}
			nonEmpty = nonEmpty || len(slices[i]) > 0
		}
		if !nonEmpty {
			continue
		}
		width := 1 + rng.Intn(8)
		spans, err := Plan(srcs, width, 4096)
		if err != nil {
			t.Fatal(err)
		}
		var replay []types.CompoundKey
		for _, sp := range spans {
			var spanKeys []types.CompoundKey
			for j := range srcs {
				spanKeys = append(spanKeys, slices[j][sp.SrcLo[j]:sp.SrcHi[j]]...)
			}
			sort.Slice(spanKeys, func(a, b int) bool { return spanKeys[a].Less(spanKeys[b]) })
			replay = append(replay, spanKeys...)
		}
		if len(replay) != len(all) {
			t.Fatalf("trial %d: replay has %d keys, want %d", trial, len(replay), len(all))
		}
		for i := range all {
			if replay[i] != all[i] {
				t.Fatalf("trial %d: key %d out of order across spans", trial, i)
			}
		}
	}
}

// TestBuildPartitionedSpanErrorAborts: a failing span must surface its
// error and leave no run files behind.
func TestBuildPartitionedSpanErrorAborts(t *testing.T) {
	entries := genEntries(13, 400, 4)
	count := int64(len(entries))
	params := Params{Fanout: 4}
	srcDir := t.TempDir()
	sources := buildSources(t, srcDir, entries, 2, params)
	spans, err := PlanRuns(sources, 4, params.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) < 2 {
		t.Skip("input too small to partition")
	}
	var once sync.Once
	parDir := t.TempDir()
	_, err = BuildPartitioned(parDir, 1, count, params, spans,
		func(sp Span) (Iterator, error) {
			var fail bool
			once.Do(func() { fail = true })
			if fail {
				return nil, fmt.Errorf("injected span failure")
			}
			return MergeRunsRange(sources, sp), nil
		}, Parallel{})
	if err == nil {
		t.Fatal("expected an error from the failing span")
	}
	if _, err := Open(parDir, 1, params); err == nil {
		t.Fatal("run files survived an aborted partitioned build")
	}
}
