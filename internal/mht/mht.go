// Package mht implements COLE's m-ary complete Merkle Hash Trees (§4.2).
//
// Each on-disk run stores a Merkle file: the bottom layer holds
// h(K_i ‖ value_i) for every entry of the value file (same position), and
// each upper layer hashes groups of m children, the last group possibly
// shorter (Definition 2). Construction is streaming and layer-concurrent
// (Algorithm 4): one buffer per layer, flushed to the file at precomputed
// layer offsets, so a run's Merkle file is produced in a single pass over
// the sorted entries with O(m·log_m n) memory.
//
// Range proofs authenticate a contiguous span of positions [lo, hi]: per
// layer, the proof carries the sibling hashes flanking the span inside its
// boundary groups; verification recomputes the root. Because value file and
// Merkle file share positions, a provenance scan's results are proven by
// the positions of its first and last entries (§6.2).
package mht

import (
	"fmt"
	"os"
	"sync/atomic"

	"cole/internal/types"
	"cole/internal/vfs"
)

// LayerCounts returns the node count of every MHT layer, bottom first:
// [n, ⌈n/m⌉, ⌈n/m²⌉, …, 1].
func LayerCounts(n int64, m int) []int64 {
	if n <= 0 {
		return nil
	}
	counts := []int64{n}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+int64(m)-1)/int64(m))
	}
	return counts
}

// LayerOffsets returns the file offset (in hash records) of each layer.
func LayerOffsets(counts []int64) []int64 {
	offs := make([]int64, len(counts))
	for i := 1; i < len(counts); i++ {
		offs[i] = offs[i-1] + counts[i-1]
	}
	return offs
}

// TotalNodes returns the total number of hash records in the Merkle file.
func TotalNodes(counts []int64) int64 {
	var t int64
	for _, c := range counts {
		t += c
	}
	return t
}

// DefaultWriteBufferBytes is the per-layer coalescing budget of a Writer
// (~1 MiB of hashes per write syscall).
const DefaultWriteBufferBytes = 1 << 20

// Writer streams an m-ary complete MHT to disk (Algorithm 4). The total
// stream size n must be known up front (it is: a run's size is fixed by its
// level). Nodes are held in per-layer buffers and flushed in coalesced
// multi-node writes instead of one tiny WriteAt per completed group; the
// file bytes are identical for every buffer size.
type Writer struct {
	fs      vfs.FS
	f       vfs.File
	path    string
	m       int
	counts  []int64
	offsets []int64
	flushed []int64 // records flushed per layer
	bufs    [][]types.Hash
	// ungrouped is the tail of bufs[i] not yet folded into a parent; the
	// grouped prefix is final and flushable at any time.
	ungrouped []int
	// bufHashes is the coalescing threshold: a layer's grouped prefix is
	// written once it holds at least this many nodes.
	bufHashes int
	added     int64
	n         int64
	root      types.Hash
	done      bool
}

// CreateWriter creates a Merkle file for n leaves with fanout m ≥ 2,
// coalescing writes with the default buffer.
func CreateWriter(path string, n int64, m int) (*Writer, error) {
	return CreateWriterSize(path, n, m, 0)
}

// CreateWriterSize creates a Merkle file whose node writes are coalesced
// into syscalls of roughly bufBytes (0 selects DefaultWriteBufferBytes;
// small values restore the per-group write granularity). The on-disk
// bytes and root are identical for every buffer size.
func CreateWriterSize(path string, n int64, m int, bufBytes int) (*Writer, error) {
	return CreateWriterSizeFS(vfs.OS{}, path, n, m, bufBytes)
}

// CreateWriterSizeFS is CreateWriterSize on an explicit filesystem.
func CreateWriterSizeFS(fsys vfs.FS, path string, n int64, m int, bufBytes int) (*Writer, error) {
	if m < 2 {
		return nil, fmt.Errorf("mht: fanout %d < 2", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("mht: need at least one leaf, got %d", n)
	}
	if bufBytes < 1 {
		bufBytes = DefaultWriteBufferBytes
	}
	bufHashes := bufBytes / types.HashSize
	if bufHashes < 1 {
		bufHashes = 1
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	counts := LayerCounts(n, m)
	w := &Writer{
		fs:        fsys,
		f:         f,
		path:      path,
		m:         m,
		counts:    counts,
		offsets:   LayerOffsets(counts),
		flushed:   make([]int64, len(counts)),
		bufs:      make([][]types.Hash, len(counts)),
		ungrouped: make([]int, len(counts)),
		bufHashes: bufHashes,
		n:         n,
	}
	if err := f.Truncate(TotalNodes(counts) * types.HashSize); err != nil {
		_ = f.Close()
		return nil, err
	}
	return w, nil
}

// push appends a node to a layer buffer; the single node of the top
// layer is the root.
func (w *Writer) push(i int, h types.Hash) {
	w.bufs[i] = append(w.bufs[i], h)
	w.ungrouped[i]++
	if i == len(w.counts)-1 {
		w.root = h
	}
}

// Add appends the next leaf hash (h(K‖value) of the entry at the current
// position).
func (w *Writer) Add(leaf types.Hash) error {
	if w.done {
		return fmt.Errorf("mht: add after Finish on %s", w.path)
	}
	if w.added >= w.n {
		return fmt.Errorf("mht: more than %d leaves added to %s", w.n, w.path)
	}
	w.added++
	w.push(0, leaf)
	for i := 0; i < len(w.counts)-1; i++ {
		if w.ungrouped[i] < w.m {
			break
		}
		parent := types.HashConcat(w.bufs[i][len(w.bufs[i])-w.m:]...)
		w.ungrouped[i] = 0
		if err := w.maybeFlush(i); err != nil {
			return err
		}
		w.push(i+1, parent)
	}
	return nil
}

// maybeFlush writes a layer's grouped prefix once it exceeds the
// coalescing threshold (capped at the layer's total node count — small
// upper layers flush once, at Finish).
func (w *Writer) maybeFlush(i int) error {
	grouped := len(w.bufs[i]) - w.ungrouped[i]
	if int64(grouped) < min(int64(w.bufHashes), w.counts[i]) {
		return nil
	}
	return w.flushLayer(i, grouped)
}

// flushLayer writes the first k buffered nodes of layer i at their file
// offsets in one syscall and shifts the unflushed tail down.
func (w *Writer) flushLayer(i, k int) error {
	if k == 0 {
		return nil
	}
	buf := make([]byte, 0, k*types.HashSize)
	for _, h := range w.bufs[i][:k] {
		buf = append(buf, h[:]...)
	}
	off := (w.offsets[i] + w.flushed[i]) * types.HashSize
	if _, err := w.f.WriteAt(buf, off); err != nil {
		return err
	}
	w.flushed[i] += int64(k)
	rest := copy(w.bufs[i], w.bufs[i][k:])
	w.bufs[i] = w.bufs[i][:rest]
	return nil
}

// Finish drains the per-layer buffers (Lines 15–18 of Algorithm 4), syncs
// and closes the file, and returns the root hash.
func (w *Writer) Finish() (types.Hash, error) {
	if w.done {
		return w.root, nil
	}
	if w.added != w.n {
		_ = w.f.Close()
		return types.Hash{}, fmt.Errorf("mht: %d leaves added, expected %d", w.added, w.n)
	}
	d := len(w.counts)
	for i := 0; i < d; i++ {
		// Fold the short trailing group into its parent (Definition 2
		// allows the last group of a layer to hold fewer than m nodes).
		if i < d-1 && w.ungrouped[i] > 0 {
			parent := types.HashConcat(w.bufs[i][len(w.bufs[i])-w.ungrouped[i]:]...)
			w.ungrouped[i] = 0
			w.push(i+1, parent)
		}
		if err := w.flushLayer(i, len(w.bufs[i])); err != nil {
			_ = w.f.Close()
			return types.Hash{}, err
		}
	}
	// Sanity: every layer fully flushed.
	for i, c := range w.counts {
		if w.flushed[i] != c {
			_ = w.f.Close()
			return types.Hash{}, fmt.Errorf("mht: layer %d flushed %d of %d nodes", i, w.flushed[i], c)
		}
	}
	// (push captured the root when the top layer's single node arrived —
	// in Add's cascade, in the drain above, or, for a one-leaf tree, at
	// the leaf itself.)
	w.done = true
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return types.Hash{}, err
	}
	return w.root, w.f.Close()
}

// Abort closes and removes a partially written file; errors are
// deliberately discarded (the caller is already failing and the file is
// about to be deleted or orphan-swept).
func (w *Writer) Abort() {
	if !w.done {
		w.done = true
		_ = w.f.Close()
	}
	_ = w.fs.Remove(w.path)
}

// File reads a Merkle file produced by Writer.
type File struct {
	f       vfs.File
	path    string
	m       int
	n       int64
	counts  []int64
	offsets []int64

	// hashReads is atomic: proof building runs on the engine's lock-free
	// read path, where any number of readers share one File.
	hashReads atomic.Int64
}

// Open opens a Merkle file for n leaves with fanout m.
func Open(path string, n int64, m int) (*File, error) {
	return OpenFS(vfs.OS{}, path, n, m)
}

// OpenFS is Open on an explicit filesystem.
func OpenFS(fsys vfs.FS, path string, n int64, m int) (*File, error) {
	if m < 2 || n < 1 {
		return nil, fmt.Errorf("mht: invalid geometry n=%d m=%d", n, m)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	counts := LayerCounts(n, m)
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	if st.Size() < TotalNodes(counts)*types.HashSize {
		_ = f.Close()
		return nil, fmt.Errorf("mht: %s has %d bytes, need %d", path, st.Size(), TotalNodes(counts)*types.HashSize)
	}
	return &File{f: f, path: path, m: m, n: n, counts: counts, offsets: LayerOffsets(counts)}, nil
}

// Layers returns the number of MHT layers.
func (r *File) Layers() int { return len(r.counts) }

// Leaves returns n.
func (r *File) Leaves() int64 { return r.n }

// NodeHash reads the hash at (layer, idx).
func (r *File) NodeHash(layer int, idx int64) (types.Hash, error) {
	if layer < 0 || layer >= len(r.counts) || idx < 0 || idx >= r.counts[layer] {
		return types.Hash{}, fmt.Errorf("mht: node (%d,%d) out of range in %s", layer, idx, r.path)
	}
	var h types.Hash
	if _, err := r.f.ReadAt(h[:], (r.offsets[layer]+idx)*types.HashSize); err != nil {
		return types.Hash{}, err
	}
	r.hashReads.Add(1)
	return h, nil
}

// Root returns the root hash (the last record of the file).
func (r *File) Root() (types.Hash, error) {
	return r.NodeHash(len(r.counts)-1, 0)
}

// HashReads returns how many node hashes were fetched (IO accounting).
func (r *File) HashReads() int64 { return r.hashReads.Load() }

// LeafReader streams the bottom-layer leaf hashes through a private
// readahead buffer: one ReadAt per window instead of one per hash, and
// nothing shared with concurrent proof readers. It serves the leaf-hash
// passthrough of level merges — the leaf hashes a source run already
// stores are exactly the h(K‖value) digests the destination run's
// builder needs, so re-reading them here replaces one SHA-256 per entry.
// Access is positional (At) so consumers that interleave several sources
// stay correct; sequential consumption costs one syscall per window.
type LeafReader struct {
	f     *File
	buf   []byte
	start int64 // leaf index of buf[0]
	n     int64 // valid leaves in buf
	win   int64 // leaves per refill
}

// LeafStream returns a reader over the file's leaf hashes with a
// readahead window of roughly bufBytes (0 selects
// DefaultWriteBufferBytes).
func (r *File) LeafStream(bufBytes int) *LeafReader {
	if bufBytes < 1 {
		bufBytes = DefaultWriteBufferBytes
	}
	win := int64(bufBytes / types.HashSize)
	if win < 1 {
		win = 1
	}
	if win > r.n {
		win = r.n
	}
	return &LeafReader{f: r, win: win}
}

// At returns the leaf hash at position i, refilling the window from i
// when i falls outside it.
func (l *LeafReader) At(i int64) (types.Hash, error) {
	if i < 0 || i >= l.f.n {
		return types.Hash{}, fmt.Errorf("mht: leaf %d out of range [0,%d) in %s", i, l.f.n, l.f.path)
	}
	if i < l.start || i >= l.start+l.n {
		if l.buf == nil {
			l.buf = make([]byte, l.win*types.HashSize)
		}
		n := l.win
		if rest := l.f.n - i; rest < n {
			n = rest
		}
		off := (l.f.offsets[0] + i) * types.HashSize
		if _, err := l.f.f.ReadAt(l.buf[:n*types.HashSize], off); err != nil {
			return types.Hash{}, fmt.Errorf("mht: leaf read [%d,%d) of %s: %w", i, i+n, l.f.path, err)
		}
		l.start, l.n = i, n
	}
	var h types.Hash
	copy(h[:], l.buf[(i-l.start)*types.HashSize:])
	return h, nil
}

// Close releases the file handle.
func (r *File) Close() error { return r.f.Close() }

// RangeProof authenticates the leaves at positions [Lo, Hi] of an n-leaf
// m-ary MHT. Per layer it carries the sibling hashes to the left of the
// span start and to the right of the span end within their groups.
type RangeProof struct {
	N  int64 // total leaves
	M  int   // fanout
	Lo int64 // first proven position
	Hi int64 // last proven position
	// Left[i] / Right[i] are the flanking sibling hashes at layer i.
	Left  [][]types.Hash
	Right [][]types.Hash
}

// Size returns the proof's wire size in bytes (hash payload plus the
// fixed header fields); used by the proof-size experiments.
func (p *RangeProof) Size() int {
	nh := 0
	for i := range p.Left {
		nh += len(p.Left[i]) + len(p.Right[i])
	}
	return nh*types.HashSize + 8*3 + 4 + 2*len(p.Left)
}

// ProveRange builds a range proof for leaf positions [lo, hi].
func (r *File) ProveRange(lo, hi int64) (*RangeProof, error) {
	if lo < 0 || hi < lo || hi >= r.n {
		return nil, fmt.Errorf("mht: bad range [%d,%d] of %d leaves", lo, hi, r.n)
	}
	p := &RangeProof{N: r.n, M: r.m, Lo: lo, Hi: hi}
	l, h := lo, hi
	for layer := 0; layer < len(r.counts)-1; layer++ {
		groupStart := (l / int64(r.m)) * int64(r.m)
		groupEnd := (h/int64(r.m))*int64(r.m) + int64(r.m) - 1
		if groupEnd >= r.counts[layer] {
			groupEnd = r.counts[layer] - 1
		}
		var left, right []types.Hash
		for i := groupStart; i < l; i++ {
			hh, err := r.NodeHash(layer, i)
			if err != nil {
				return nil, err
			}
			left = append(left, hh)
		}
		for i := h + 1; i <= groupEnd; i++ {
			hh, err := r.NodeHash(layer, i)
			if err != nil {
				return nil, err
			}
			right = append(right, hh)
		}
		p.Left = append(p.Left, left)
		p.Right = append(p.Right, right)
		l /= int64(r.m)
		h /= int64(r.m)
	}
	return p, nil
}

// VerifyRange recomputes the root from the claimed leaf hashes of
// positions [proof.Lo, proof.Hi] and the proof's flanking siblings.
// It returns the reconstructed root; the caller compares it against the
// authenticated root (e.g. from root_hash_list / Hstate).
func VerifyRange(proof *RangeProof, leaves []types.Hash) (types.Hash, error) {
	if proof.N < 1 || proof.M < 2 {
		return types.Hash{}, fmt.Errorf("mht: corrupt proof geometry n=%d m=%d", proof.N, proof.M)
	}
	if proof.Lo < 0 || proof.Hi < proof.Lo || proof.Hi >= proof.N {
		return types.Hash{}, fmt.Errorf("mht: corrupt proof range [%d,%d]", proof.Lo, proof.Hi)
	}
	if int64(len(leaves)) != proof.Hi-proof.Lo+1 {
		return types.Hash{}, fmt.Errorf("mht: %d leaf hashes for range [%d,%d]", len(leaves), proof.Lo, proof.Hi)
	}
	counts := LayerCounts(proof.N, proof.M)
	if len(proof.Left) != len(counts)-1 || len(proof.Right) != len(counts)-1 {
		return types.Hash{}, fmt.Errorf("mht: proof has %d layers, want %d", len(proof.Left), len(counts)-1)
	}
	m := int64(proof.M)
	cur := leaves
	l, h := proof.Lo, proof.Hi
	for layer := 0; layer < len(counts)-1; layer++ {
		groupStart := (l / m) * m
		groupEnd := (h/m)*m + m - 1
		if groupEnd >= counts[layer] {
			groupEnd = counts[layer] - 1
		}
		if int64(len(proof.Left[layer])) != l-groupStart ||
			int64(len(proof.Right[layer])) != groupEnd-h {
			return types.Hash{}, fmt.Errorf("mht: layer %d sibling count mismatch", layer)
		}
		// Assemble the full covered node span [groupStart, groupEnd].
		span := make([]types.Hash, 0, groupEnd-groupStart+1)
		span = append(span, proof.Left[layer]...)
		span = append(span, cur...)
		span = append(span, proof.Right[layer]...)
		// Hash each complete (possibly short, if last) group into parents.
		var parents []types.Hash
		for gs := groupStart; gs <= groupEnd; gs += m {
			ge := gs + m - 1
			if ge > groupEnd {
				ge = groupEnd
			}
			grp := span[gs-groupStart : ge-groupStart+1]
			parents = append(parents, types.HashConcat(grp...))
		}
		cur = parents
		l /= m
		h /= m
	}
	if len(cur) != 1 {
		return types.Hash{}, fmt.Errorf("mht: verification converged to %d nodes", len(cur))
	}
	return cur[0], nil
}

// ProveRangeOf builds a range proof for leaf positions [lo, hi] of an
// m-ary MHT computed entirely in memory — the counterpart of
// File.ProveRange for small trees that are never written to disk, such
// as the per-shard root list of a sharded store. The proof verifies with
// VerifyRange against RootOf(leaves, m).
func ProveRangeOf(leaves []types.Hash, m int, lo, hi int64) (*RangeProof, error) {
	n := int64(len(leaves))
	if m < 2 {
		return nil, fmt.Errorf("mht: fanout %d < 2", m)
	}
	if lo < 0 || hi < lo || hi >= n {
		return nil, fmt.Errorf("mht: bad range [%d,%d] of %d leaves", lo, hi, n)
	}
	counts := LayerCounts(n, m)
	p := &RangeProof{N: n, M: m, Lo: lo, Hi: hi}
	layer := leaves
	l, h := lo, hi
	for li := 0; li < len(counts)-1; li++ {
		groupStart := (l / int64(m)) * int64(m)
		groupEnd := (h/int64(m))*int64(m) + int64(m) - 1
		if groupEnd >= counts[li] {
			groupEnd = counts[li] - 1
		}
		p.Left = append(p.Left, append([]types.Hash(nil), layer[groupStart:l]...))
		p.Right = append(p.Right, append([]types.Hash(nil), layer[h+1:groupEnd+1]...))
		next := make([]types.Hash, 0, counts[li+1])
		for i := int64(0); i < counts[li]; i += int64(m) {
			j := i + int64(m)
			if j > counts[li] {
				j = counts[li]
			}
			next = append(next, types.HashConcat(layer[i:j]...))
		}
		layer = next
		l /= int64(m)
		h /= int64(m)
	}
	return p, nil
}

// RootOf computes the m-ary MHT root of a leaf set entirely in memory
// (used for transaction digests in block headers and for tests).
func RootOf(leaves []types.Hash, m int) types.Hash {
	if len(leaves) == 0 {
		return types.ZeroHash
	}
	cur := leaves
	for len(cur) > 1 {
		var next []types.Hash
		for i := 0; i < len(cur); i += m {
			j := i + m
			if j > len(cur) {
				j = len(cur)
			}
			next = append(next, types.HashConcat(cur[i:j]...))
		}
		cur = next
	}
	return cur[0]
}
