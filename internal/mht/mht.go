// Package mht implements COLE's m-ary complete Merkle Hash Trees (§4.2).
//
// Each on-disk run stores a Merkle file: the bottom layer holds
// h(K_i ‖ value_i) for every entry of the value file (same position), and
// each upper layer hashes groups of m children, the last group possibly
// shorter (Definition 2). Construction is streaming and layer-concurrent
// (Algorithm 4): one buffer per layer, flushed to the file at precomputed
// layer offsets, so a run's Merkle file is produced in a single pass over
// the sorted entries with O(m·log_m n) memory.
//
// Range proofs authenticate a contiguous span of positions [lo, hi]: per
// layer, the proof carries the sibling hashes flanking the span inside its
// boundary groups; verification recomputes the root. Because value file and
// Merkle file share positions, a provenance scan's results are proven by
// the positions of its first and last entries (§6.2).
package mht

import (
	"fmt"
	"os"
	"sync/atomic"

	"cole/internal/types"
)

// LayerCounts returns the node count of every MHT layer, bottom first:
// [n, ⌈n/m⌉, ⌈n/m²⌉, …, 1].
func LayerCounts(n int64, m int) []int64 {
	if n <= 0 {
		return nil
	}
	counts := []int64{n}
	for counts[len(counts)-1] > 1 {
		c := counts[len(counts)-1]
		counts = append(counts, (c+int64(m)-1)/int64(m))
	}
	return counts
}

// LayerOffsets returns the file offset (in hash records) of each layer.
func LayerOffsets(counts []int64) []int64 {
	offs := make([]int64, len(counts))
	for i := 1; i < len(counts); i++ {
		offs[i] = offs[i-1] + counts[i-1]
	}
	return offs
}

// TotalNodes returns the total number of hash records in the Merkle file.
func TotalNodes(counts []int64) int64 {
	var t int64
	for _, c := range counts {
		t += c
	}
	return t
}

// Writer streams an m-ary complete MHT to disk (Algorithm 4). The total
// stream size n must be known up front (it is: a run's size is fixed by its
// level).
type Writer struct {
	f       *os.File
	path    string
	m       int
	counts  []int64
	offsets []int64
	flushed []int64 // records flushed per layer
	bufs    [][]types.Hash
	added   int64
	n       int64
	root    types.Hash
	done    bool
}

// CreateWriter creates a Merkle file for n leaves with fanout m ≥ 2.
func CreateWriter(path string, n int64, m int) (*Writer, error) {
	if m < 2 {
		return nil, fmt.Errorf("mht: fanout %d < 2", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("mht: need at least one leaf, got %d", n)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	counts := LayerCounts(n, m)
	w := &Writer{
		f:       f,
		path:    path,
		m:       m,
		counts:  counts,
		offsets: LayerOffsets(counts),
		flushed: make([]int64, len(counts)),
		bufs:    make([][]types.Hash, len(counts)),
		n:       n,
	}
	if err := f.Truncate(TotalNodes(counts) * types.HashSize); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Add appends the next leaf hash (h(K‖value) of the entry at the current
// position).
func (w *Writer) Add(leaf types.Hash) error {
	if w.done {
		return fmt.Errorf("mht: add after Finish on %s", w.path)
	}
	if w.added >= w.n {
		return fmt.Errorf("mht: more than %d leaves added to %s", w.n, w.path)
	}
	w.added++
	w.bufs[0] = append(w.bufs[0], leaf)
	for i := 0; i < len(w.counts)-1; i++ {
		if len(w.bufs[i]) < w.m {
			break
		}
		parent := types.HashConcat(w.bufs[i]...)
		w.bufs[i+1] = append(w.bufs[i+1], parent)
		if err := w.flushLayer(i); err != nil {
			return err
		}
	}
	return nil
}

func (w *Writer) flushLayer(i int) error {
	if len(w.bufs[i]) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(w.bufs[i])*types.HashSize)
	for _, h := range w.bufs[i] {
		buf = append(buf, h[:]...)
	}
	off := (w.offsets[i] + w.flushed[i]) * types.HashSize
	if _, err := w.f.WriteAt(buf, off); err != nil {
		return err
	}
	w.flushed[i] += int64(len(w.bufs[i]))
	w.bufs[i] = w.bufs[i][:0]
	return nil
}

// Finish drains the per-layer buffers (Lines 15–18 of Algorithm 4), syncs
// and closes the file, and returns the root hash.
func (w *Writer) Finish() (types.Hash, error) {
	if w.done {
		return w.root, nil
	}
	if w.added != w.n {
		w.f.Close()
		return types.Hash{}, fmt.Errorf("mht: %d leaves added, expected %d", w.added, w.n)
	}
	d := len(w.counts)
	for i := 0; i < d; i++ {
		if len(w.bufs[i]) == 0 {
			continue
		}
		if i == d-1 {
			// Top layer: its single hash is the root.
			w.root = w.bufs[i][0]
			if err := w.flushLayer(i); err != nil {
				w.f.Close()
				return types.Hash{}, err
			}
			continue
		}
		parent := types.HashConcat(w.bufs[i]...)
		w.bufs[i+1] = append(w.bufs[i+1], parent)
		if err := w.flushLayer(i); err != nil {
			w.f.Close()
			return types.Hash{}, err
		}
	}
	// Sanity: every layer fully flushed.
	for i, c := range w.counts {
		if w.flushed[i] != c {
			w.f.Close()
			return types.Hash{}, fmt.Errorf("mht: layer %d flushed %d of %d nodes", i, w.flushed[i], c)
		}
	}
	if d == 1 {
		// Single leaf: the leaf is the root. (flushLayer already wrote it.)
		var buf [types.HashSize]byte
		if _, err := w.f.ReadAt(buf[:], 0); err != nil {
			w.f.Close()
			return types.Hash{}, err
		}
		w.root = types.Hash(buf)
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return types.Hash{}, err
	}
	return w.root, w.f.Close()
}

// Abort closes and removes a partially written file.
func (w *Writer) Abort() {
	if !w.done {
		w.done = true
		w.f.Close()
	}
	os.Remove(w.path)
}

// File reads a Merkle file produced by Writer.
type File struct {
	f       *os.File
	path    string
	m       int
	n       int64
	counts  []int64
	offsets []int64

	// hashReads is atomic: proof building runs on the engine's lock-free
	// read path, where any number of readers share one File.
	hashReads atomic.Int64
}

// Open opens a Merkle file for n leaves with fanout m.
func Open(path string, n int64, m int) (*File, error) {
	if m < 2 || n < 1 {
		return nil, fmt.Errorf("mht: invalid geometry n=%d m=%d", n, m)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	counts := LayerCounts(n, m)
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < TotalNodes(counts)*types.HashSize {
		f.Close()
		return nil, fmt.Errorf("mht: %s has %d bytes, need %d", path, st.Size(), TotalNodes(counts)*types.HashSize)
	}
	return &File{f: f, path: path, m: m, n: n, counts: counts, offsets: LayerOffsets(counts)}, nil
}

// Layers returns the number of MHT layers.
func (r *File) Layers() int { return len(r.counts) }

// Leaves returns n.
func (r *File) Leaves() int64 { return r.n }

// NodeHash reads the hash at (layer, idx).
func (r *File) NodeHash(layer int, idx int64) (types.Hash, error) {
	if layer < 0 || layer >= len(r.counts) || idx < 0 || idx >= r.counts[layer] {
		return types.Hash{}, fmt.Errorf("mht: node (%d,%d) out of range in %s", layer, idx, r.path)
	}
	var h types.Hash
	if _, err := r.f.ReadAt(h[:], (r.offsets[layer]+idx)*types.HashSize); err != nil {
		return types.Hash{}, err
	}
	r.hashReads.Add(1)
	return h, nil
}

// Root returns the root hash (the last record of the file).
func (r *File) Root() (types.Hash, error) {
	return r.NodeHash(len(r.counts)-1, 0)
}

// HashReads returns how many node hashes were fetched (IO accounting).
func (r *File) HashReads() int64 { return r.hashReads.Load() }

// Close releases the file handle.
func (r *File) Close() error { return r.f.Close() }

// RangeProof authenticates the leaves at positions [Lo, Hi] of an n-leaf
// m-ary MHT. Per layer it carries the sibling hashes to the left of the
// span start and to the right of the span end within their groups.
type RangeProof struct {
	N  int64 // total leaves
	M  int   // fanout
	Lo int64 // first proven position
	Hi int64 // last proven position
	// Left[i] / Right[i] are the flanking sibling hashes at layer i.
	Left  [][]types.Hash
	Right [][]types.Hash
}

// Size returns the proof's wire size in bytes (hash payload plus the
// fixed header fields); used by the proof-size experiments.
func (p *RangeProof) Size() int {
	nh := 0
	for i := range p.Left {
		nh += len(p.Left[i]) + len(p.Right[i])
	}
	return nh*types.HashSize + 8*3 + 4 + 2*len(p.Left)
}

// ProveRange builds a range proof for leaf positions [lo, hi].
func (r *File) ProveRange(lo, hi int64) (*RangeProof, error) {
	if lo < 0 || hi < lo || hi >= r.n {
		return nil, fmt.Errorf("mht: bad range [%d,%d] of %d leaves", lo, hi, r.n)
	}
	p := &RangeProof{N: r.n, M: r.m, Lo: lo, Hi: hi}
	l, h := lo, hi
	for layer := 0; layer < len(r.counts)-1; layer++ {
		groupStart := (l / int64(r.m)) * int64(r.m)
		groupEnd := (h/int64(r.m))*int64(r.m) + int64(r.m) - 1
		if groupEnd >= r.counts[layer] {
			groupEnd = r.counts[layer] - 1
		}
		var left, right []types.Hash
		for i := groupStart; i < l; i++ {
			hh, err := r.NodeHash(layer, i)
			if err != nil {
				return nil, err
			}
			left = append(left, hh)
		}
		for i := h + 1; i <= groupEnd; i++ {
			hh, err := r.NodeHash(layer, i)
			if err != nil {
				return nil, err
			}
			right = append(right, hh)
		}
		p.Left = append(p.Left, left)
		p.Right = append(p.Right, right)
		l /= int64(r.m)
		h /= int64(r.m)
	}
	return p, nil
}

// VerifyRange recomputes the root from the claimed leaf hashes of
// positions [proof.Lo, proof.Hi] and the proof's flanking siblings.
// It returns the reconstructed root; the caller compares it against the
// authenticated root (e.g. from root_hash_list / Hstate).
func VerifyRange(proof *RangeProof, leaves []types.Hash) (types.Hash, error) {
	if proof.N < 1 || proof.M < 2 {
		return types.Hash{}, fmt.Errorf("mht: corrupt proof geometry n=%d m=%d", proof.N, proof.M)
	}
	if proof.Lo < 0 || proof.Hi < proof.Lo || proof.Hi >= proof.N {
		return types.Hash{}, fmt.Errorf("mht: corrupt proof range [%d,%d]", proof.Lo, proof.Hi)
	}
	if int64(len(leaves)) != proof.Hi-proof.Lo+1 {
		return types.Hash{}, fmt.Errorf("mht: %d leaf hashes for range [%d,%d]", len(leaves), proof.Lo, proof.Hi)
	}
	counts := LayerCounts(proof.N, proof.M)
	if len(proof.Left) != len(counts)-1 || len(proof.Right) != len(counts)-1 {
		return types.Hash{}, fmt.Errorf("mht: proof has %d layers, want %d", len(proof.Left), len(counts)-1)
	}
	m := int64(proof.M)
	cur := leaves
	l, h := proof.Lo, proof.Hi
	for layer := 0; layer < len(counts)-1; layer++ {
		groupStart := (l / m) * m
		groupEnd := (h/m)*m + m - 1
		if groupEnd >= counts[layer] {
			groupEnd = counts[layer] - 1
		}
		if int64(len(proof.Left[layer])) != l-groupStart ||
			int64(len(proof.Right[layer])) != groupEnd-h {
			return types.Hash{}, fmt.Errorf("mht: layer %d sibling count mismatch", layer)
		}
		// Assemble the full covered node span [groupStart, groupEnd].
		span := make([]types.Hash, 0, groupEnd-groupStart+1)
		span = append(span, proof.Left[layer]...)
		span = append(span, cur...)
		span = append(span, proof.Right[layer]...)
		// Hash each complete (possibly short, if last) group into parents.
		var parents []types.Hash
		for gs := groupStart; gs <= groupEnd; gs += m {
			ge := gs + m - 1
			if ge > groupEnd {
				ge = groupEnd
			}
			grp := span[gs-groupStart : ge-groupStart+1]
			parents = append(parents, types.HashConcat(grp...))
		}
		cur = parents
		l /= m
		h /= m
	}
	if len(cur) != 1 {
		return types.Hash{}, fmt.Errorf("mht: verification converged to %d nodes", len(cur))
	}
	return cur[0], nil
}

// ProveRangeOf builds a range proof for leaf positions [lo, hi] of an
// m-ary MHT computed entirely in memory — the counterpart of
// File.ProveRange for small trees that are never written to disk, such
// as the per-shard root list of a sharded store. The proof verifies with
// VerifyRange against RootOf(leaves, m).
func ProveRangeOf(leaves []types.Hash, m int, lo, hi int64) (*RangeProof, error) {
	n := int64(len(leaves))
	if m < 2 {
		return nil, fmt.Errorf("mht: fanout %d < 2", m)
	}
	if lo < 0 || hi < lo || hi >= n {
		return nil, fmt.Errorf("mht: bad range [%d,%d] of %d leaves", lo, hi, n)
	}
	counts := LayerCounts(n, m)
	p := &RangeProof{N: n, M: m, Lo: lo, Hi: hi}
	layer := leaves
	l, h := lo, hi
	for li := 0; li < len(counts)-1; li++ {
		groupStart := (l / int64(m)) * int64(m)
		groupEnd := (h/int64(m))*int64(m) + int64(m) - 1
		if groupEnd >= counts[li] {
			groupEnd = counts[li] - 1
		}
		p.Left = append(p.Left, append([]types.Hash(nil), layer[groupStart:l]...))
		p.Right = append(p.Right, append([]types.Hash(nil), layer[h+1:groupEnd+1]...))
		next := make([]types.Hash, 0, counts[li+1])
		for i := int64(0); i < counts[li]; i += int64(m) {
			j := i + int64(m)
			if j > counts[li] {
				j = counts[li]
			}
			next = append(next, types.HashConcat(layer[i:j]...))
		}
		layer = next
		l /= int64(m)
		h /= int64(m)
	}
	return p, nil
}

// RootOf computes the m-ary MHT root of a leaf set entirely in memory
// (used for transaction digests in block headers and for tests).
func RootOf(leaves []types.Hash, m int) types.Hash {
	if len(leaves) == 0 {
		return types.ZeroHash
	}
	cur := leaves
	for len(cur) > 1 {
		var next []types.Hash
		for i := 0; i < len(cur); i += m {
			j := i + m
			if j > len(cur) {
				j = len(cur)
			}
			next = append(next, types.HashConcat(cur[i:j]...))
		}
		cur = next
	}
	return cur[0]
}
