package mht

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"cole/internal/types"
)

func leafHashes(n int64) []types.Hash {
	hs := make([]types.Hash, n)
	for i := range hs {
		hs[i] = types.HashData([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
	return hs
}

func buildFile(t *testing.T, dir string, leaves []types.Hash, m int) (*File, types.Hash) {
	t.Helper()
	path := filepath.Join(dir, "merkle.dat")
	w, err := CreateWriter(path, int64(len(leaves)), m)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range leaves {
		if err := w.Add(h); err != nil {
			t.Fatal(err)
		}
	}
	root, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, int64(len(leaves)), m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f, root
}

func TestLayerGeometry(t *testing.T) {
	counts := LayerCounts(4, 2)
	want := []int64{4, 2, 1}
	if len(counts) != len(want) {
		t.Fatalf("counts %v", counts)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts %v, want %v", counts, want)
		}
	}
	offs := LayerOffsets(counts)
	if offs[0] != 0 || offs[1] != 4 || offs[2] != 6 {
		t.Fatalf("offsets %v (paper example expects [0,4,6])", offs)
	}
	if TotalNodes(counts) != 7 {
		t.Fatalf("total %d", TotalNodes(counts))
	}
	if LayerCounts(0, 2) != nil {
		t.Fatal("empty tree has no layers")
	}
	if got := LayerCounts(1, 4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("single leaf: %v", got)
	}
}

func TestPaperExampleBinaryTree(t *testing.T) {
	// Figure 6: s1..s4, m=2. Root must equal h(h(h1‖h2)‖h(h3‖h4)).
	leaves := leafHashes(4)
	_, root := buildFile(t, t.TempDir(), leaves, 2)
	h12 := types.HashConcat(leaves[0], leaves[1])
	h34 := types.HashConcat(leaves[2], leaves[3])
	if root != types.HashConcat(h12, h34) {
		t.Fatal("root does not match manual computation")
	}
}

func TestStreamingMatchesInMemoryAcrossShapes(t *testing.T) {
	for _, m := range []int{2, 3, 4, 8, 16, 64} {
		for _, n := range []int64{1, 2, 3, 5, 7, 16, 17, 63, 64, 65, 100, 1000} {
			leaves := leafHashes(n)
			f, root := buildFile(t, t.TempDir(), leaves, m)
			if want := RootOf(leaves, m); root != want {
				t.Fatalf("n=%d m=%d: streaming root != in-memory root", n, m)
			}
			got, err := f.Root()
			if err != nil || got != root {
				t.Fatalf("n=%d m=%d: file root mismatch (%v)", n, m, err)
			}
		}
	}
}

func TestShortLastGroup(t *testing.T) {
	// n=5, m=4: layer0=5, layer1=2 (one full group + one 1-child group),
	// layer2=1. The short group hashes fewer than m children.
	leaves := leafHashes(5)
	_, root := buildFile(t, t.TempDir(), leaves, 4)
	g1 := types.HashConcat(leaves[0], leaves[1], leaves[2], leaves[3])
	g2 := types.HashConcat(leaves[4])
	if root != types.HashConcat(g1, g2) {
		t.Fatal("short-group hashing deviates from Definition 2")
	}
}

func TestNodeHashReadsEveryLayer(t *testing.T) {
	leaves := leafHashes(10)
	f, _ := buildFile(t, t.TempDir(), leaves, 2)
	for i := int64(0); i < 10; i++ {
		h, err := f.NodeHash(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if h != leaves[i] {
			t.Fatalf("leaf %d corrupted", i)
		}
	}
	if _, err := f.NodeHash(0, 10); err == nil {
		t.Fatal("out-of-range idx must error")
	}
	if _, err := f.NodeHash(99, 0); err == nil {
		t.Fatal("out-of-range layer must error")
	}
	if f.HashReads() == 0 {
		t.Fatal("IO accounting must count reads")
	}
}

func TestWriterMisuse(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateWriter(filepath.Join(dir, "x"), 4, 1); err == nil {
		t.Fatal("fanout < 2 must error")
	}
	if _, err := CreateWriter(filepath.Join(dir, "x"), 0, 2); err == nil {
		t.Fatal("zero leaves must error")
	}
	w, err := CreateWriter(filepath.Join(dir, "y"), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("finishing before all leaves are added must error")
	}
	w2, _ := CreateWriter(filepath.Join(dir, "z"), 1, 2)
	_ = w2.Add(leafHashes(1)[0])
	if err := w2.Add(leafHashes(1)[0]); err == nil {
		t.Fatal("extra leaf must error")
	}
}

func TestRangeProofRoundTrip(t *testing.T) {
	leaves := leafHashes(37)
	f, root := buildFile(t, t.TempDir(), leaves, 4)
	for _, rng := range [][2]int64{{0, 0}, {0, 36}, {5, 9}, {35, 36}, {16, 16}, {3, 20}} {
		p, err := f.ProveRange(rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := VerifyRange(p, leaves[rng[0]:rng[1]+1])
		if err != nil {
			t.Fatalf("range %v: %v", rng, err)
		}
		if got != root {
			t.Fatalf("range %v: reconstructed root mismatch", rng)
		}
	}
}

func TestRangeProofDetectsTampering(t *testing.T) {
	leaves := leafHashes(20)
	f, root := buildFile(t, t.TempDir(), leaves, 2)
	p, err := f.ProveRange(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Tampered leaf.
	bad := append([]types.Hash(nil), leaves[5:9]...)
	bad[2][0] ^= 1
	if got, err := VerifyRange(p, bad); err == nil && got == root {
		t.Fatal("tampered leaf must not verify")
	}
	// Tampered sibling (range 5..8 is group-misaligned for m=2, so layer 0
	// has flanking siblings on both sides).
	if len(p.Left[0]) == 0 && len(p.Right[0]) == 0 {
		t.Fatal("test needs flanking siblings")
	}
	p2, _ := f.ProveRange(5, 8)
	if len(p2.Right[0]) > 0 {
		p2.Right[0][0][0] ^= 1
	} else {
		p2.Left[0][0][0] ^= 1
	}
	if got, err := VerifyRange(p2, leaves[5:9]); err == nil && got == root {
		t.Fatal("tampered sibling must not verify")
	}
	// Shifted range (claiming different positions for same hashes).
	p3, _ := f.ProveRange(5, 8)
	p3.Lo, p3.Hi = 6, 9
	if got, err := VerifyRange(p3, leaves[5:9]); err == nil && got == root {
		t.Fatal("shifted range must not verify")
	}
}

func TestVerifyRejectsMalformedProofs(t *testing.T) {
	leaves := leafHashes(10)
	f, _ := buildFile(t, t.TempDir(), leaves, 2)
	p, _ := f.ProveRange(2, 4)
	if _, err := VerifyRange(p, leaves[2:4]); err == nil {
		t.Fatal("wrong leaf count must error")
	}
	p.Left = p.Left[:1]
	if _, err := VerifyRange(p, leaves[2:5]); err == nil {
		t.Fatal("missing layers must error")
	}
	bad := &RangeProof{N: 0, M: 2, Lo: 0, Hi: 0}
	if _, err := VerifyRange(bad, leaves[:1]); err == nil {
		t.Fatal("corrupt geometry must error")
	}
	bad2 := &RangeProof{N: 10, M: 2, Lo: 5, Hi: 2}
	if _, err := VerifyRange(bad2, nil); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestProveRangeValidation(t *testing.T) {
	leaves := leafHashes(10)
	f, _ := buildFile(t, t.TempDir(), leaves, 2)
	if _, err := f.ProveRange(-1, 2); err == nil {
		t.Fatal("negative lo must error")
	}
	if _, err := f.ProveRange(3, 2); err == nil {
		t.Fatal("hi < lo must error")
	}
	if _, err := f.ProveRange(0, 10); err == nil {
		t.Fatal("hi ≥ n must error")
	}
}

func TestProofSizeGrowsSublinearlyInRange(t *testing.T) {
	// The point of sharing ancestors (§8.2.5): doubling the range must not
	// double the proof size.
	leaves := leafHashes(1 << 12)
	f, _ := buildFile(t, t.TempDir(), leaves, 4)
	p16, _ := f.ProveRange(100, 115)
	p128, _ := f.ProveRange(100, 227)
	if p128.Size() >= p16.Size()*8 {
		t.Fatalf("proof sizes: 16→%d bytes, 128→%d bytes; expected sublinear growth", p16.Size(), p128.Size())
	}
}

func TestSingleLeafTree(t *testing.T) {
	leaves := leafHashes(1)
	f, root := buildFile(t, t.TempDir(), leaves, 2)
	if root != leaves[0] {
		t.Fatal("single-leaf root must be the leaf itself")
	}
	p, err := f.ProveRange(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VerifyRange(p, leaves)
	if err != nil || got != root {
		t.Fatalf("single-leaf proof failed: %v", err)
	}
}

func TestRangeProofProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8, nRaw uint16) bool {
		m := int(mRaw%7) + 2
		n := int64(nRaw%500) + 1
		r := rand.New(rand.NewSource(seed))
		leaves := make([]types.Hash, n)
		for i := range leaves {
			r.Read(leaves[i][:])
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "m")
		w, err := CreateWriter(path, n, m)
		if err != nil {
			return false
		}
		for _, h := range leaves {
			if err := w.Add(h); err != nil {
				return false
			}
		}
		root, err := w.Finish()
		if err != nil {
			return false
		}
		file, err := Open(path, n, m)
		if err != nil {
			return false
		}
		defer file.Close()
		lo := r.Int63n(n)
		hi := lo + r.Int63n(n-lo)
		p, err := file.ProveRange(lo, hi)
		if err != nil {
			return false
		}
		got, err := VerifyRange(p, leaves[lo:hi+1])
		return err == nil && got == root && got == RootOf(leaves, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidatesGeometry(t *testing.T) {
	leaves := leafHashes(8)
	dir := t.TempDir()
	path := filepath.Join(dir, "m")
	w, _ := CreateWriter(path, 8, 2)
	for _, h := range leaves {
		_ = w.Add(h)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 1000, 2); err == nil {
		t.Fatal("oversized n must error")
	}
	if _, err := Open(path, 8, 1); err == nil {
		t.Fatal("fanout 1 must error")
	}
	if _, err := Open(filepath.Join(dir, "missing"), 8, 2); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRootOfEmpty(t *testing.T) {
	if RootOf(nil, 2) != types.ZeroHash {
		t.Fatal("empty root must be the zero hash")
	}
}
