package mht

import (
	"fmt"
	"path/filepath"
	"testing"

	"cole/internal/types"
)

// TestProveRangeOfMatchesFile cross-checks the in-memory prover against
// the on-disk one: for the same leaves, every range proof must verify to
// the same root, and the in-memory proof must carry the same sibling
// geometry the file-based prover produces.
func TestProveRangeOfMatchesFile(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 4}, {5, 2}, {16, 4}, {37, 3}, {100, 4}} {
		t.Run(fmt.Sprintf("n=%d_m=%d", tc.n, tc.m), func(t *testing.T) {
			leaves := make([]types.Hash, tc.n)
			for i := range leaves {
				leaves[i] = types.HashData([]byte{byte(i), byte(i >> 8), byte(tc.m)})
			}
			root := RootOf(leaves, tc.m)

			path := filepath.Join(t.TempDir(), "mht")
			w, err := CreateWriter(path, int64(tc.n), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range leaves {
				if err := w.Add(l); err != nil {
					t.Fatal(err)
				}
			}
			fileRoot, err := w.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if fileRoot != root {
				t.Fatalf("RootOf %s != streamed file root %s", root, fileRoot)
			}
			f, err := Open(path, int64(tc.n), tc.m)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()

			ranges := [][2]int64{{0, 0}, {0, int64(tc.n) - 1}}
			if tc.n > 2 {
				ranges = append(ranges, [2]int64{1, int64(tc.n) / 2}, [2]int64{int64(tc.n) - 1, int64(tc.n) - 1})
			}
			for _, r := range ranges {
				mem, err := ProveRangeOf(leaves, tc.m, r[0], r[1])
				if err != nil {
					t.Fatalf("range [%d,%d]: %v", r[0], r[1], err)
				}
				got, err := VerifyRange(mem, leaves[r[0]:r[1]+1])
				if err != nil {
					t.Fatalf("range [%d,%d] verify: %v", r[0], r[1], err)
				}
				if got != root {
					t.Fatalf("range [%d,%d]: in-memory proof root %s != %s", r[0], r[1], got, root)
				}
				disk, err := f.ProveRange(r[0], r[1])
				if err != nil {
					t.Fatal(err)
				}
				if len(disk.Left) != len(mem.Left) {
					t.Fatalf("range [%d,%d]: layer counts differ (%d vs %d)", r[0], r[1], len(mem.Left), len(disk.Left))
				}
				for li := range disk.Left {
					if len(disk.Left[li]) != len(mem.Left[li]) || len(disk.Right[li]) != len(mem.Right[li]) {
						t.Fatalf("range [%d,%d] layer %d: sibling geometry differs", r[0], r[1], li)
					}
					for i := range disk.Left[li] {
						if disk.Left[li][i] != mem.Left[li][i] {
							t.Fatalf("range [%d,%d] layer %d: left sibling %d differs", r[0], r[1], li, i)
						}
					}
					for i := range disk.Right[li] {
						if disk.Right[li][i] != mem.Right[li][i] {
							t.Fatalf("range [%d,%d] layer %d: right sibling %d differs", r[0], r[1], li, i)
						}
					}
				}
			}

			// Out-of-range requests fail like the file-based prover.
			if _, err := ProveRangeOf(leaves, tc.m, -1, 0); err == nil {
				t.Fatal("negative lo accepted")
			}
			if _, err := ProveRangeOf(leaves, tc.m, 0, int64(tc.n)); err == nil {
				t.Fatal("hi == n accepted")
			}
		})
	}
}
