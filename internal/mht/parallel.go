package mht

import (
	"fmt"
	"os"

	"cole/internal/types"
	"cole/internal/vfs"
)

// This file adds the partitioned counterpart of Writer: a Merkle file
// built by several workers, each streaming the leaves of one contiguous
// position span and cascading parents exactly as Algorithm 4 does — but
// only for the nodes whose children fall entirely inside the span. The
// handful of "straddler" nodes per layer whose children come from two
// spans (at most two per span boundary) are computed afterwards by
// Stitch, bottom-up, from the children already on disk. Because every
// node lands at the same precomputed layer offset a sequential Writer
// would use, the finished file and root are byte-identical for every
// span partitioning.

// nodeRange is a half-open node-index range [lo, hi) at one MHT layer.
type nodeRange struct{ lo, hi int64 }

// spanRanges computes, for the leaf span [lo, hi), the node range each
// layer fully owns. A parent is owned when all its children lie inside
// the child layer's owned range; the last (possibly short) group of a
// layer counts as complete only when the child range reaches the end of
// its layer, mirroring the fold in Writer.Finish.
func spanRanges(counts []int64, m int, lo, hi int64) []nodeRange {
	rs := make([]nodeRange, len(counts))
	rs[0] = nodeRange{lo, hi}
	for i := 1; i < len(counts); i++ {
		kl, kh := rs[i-1].lo, rs[i-1].hi
		a := (kl + int64(m) - 1) / int64(m)
		var b int64
		if kh == counts[i-1] {
			b = counts[i]
		} else {
			b = kh / int64(m)
		}
		if b < a {
			b = a
		}
		rs[i] = nodeRange{a, b}
	}
	return rs
}

// SharedWriter is a Merkle file pre-sized for n leaves that several
// SpanWriters fill concurrently, one per disjoint leaf span. Distinct
// spans own disjoint node ranges at every layer, so the writers never
// touch the same byte; Stitch completes the boundary nodes and returns
// the root.
type SharedWriter struct {
	fs        vfs.FS
	f         vfs.File
	path      string
	m         int
	n         int64
	counts    []int64
	offsets   []int64
	bufHashes int
	closed    bool
}

// CreateShared creates a Merkle file for n leaves with fanout m ≥ 2,
// sized and laid out exactly as CreateWriterSize would. bufBytes is the
// per-layer, per-span write-coalescing budget (0 selects
// DefaultWriteBufferBytes).
func CreateShared(path string, n int64, m int, bufBytes int) (*SharedWriter, error) {
	return CreateSharedFS(vfs.OS{}, path, n, m, bufBytes)
}

// CreateSharedFS is CreateShared on an explicit filesystem.
func CreateSharedFS(fsys vfs.FS, path string, n int64, m int, bufBytes int) (*SharedWriter, error) {
	if m < 2 {
		return nil, fmt.Errorf("mht: fanout %d < 2", m)
	}
	if n < 1 {
		return nil, fmt.Errorf("mht: need at least one leaf, got %d", n)
	}
	if bufBytes < 1 {
		bufBytes = DefaultWriteBufferBytes
	}
	bufHashes := bufBytes / types.HashSize
	if bufHashes < 1 {
		bufHashes = 1
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	counts := LayerCounts(n, m)
	if err := f.Truncate(TotalNodes(counts) * types.HashSize); err != nil {
		_ = f.Close()
		_ = fsys.Remove(path)
		return nil, err
	}
	return &SharedWriter{
		fs:        fsys,
		f:         f,
		path:      path,
		m:         m,
		n:         n,
		counts:    counts,
		offsets:   LayerOffsets(counts),
		bufHashes: bufHashes,
	}, nil
}

// Span returns a writer for the leaves at positions [lo, hi). Spans must
// be disjoint; each SpanWriter is single-goroutine, but distinct spans
// may run concurrently.
func (s *SharedWriter) Span(lo, hi int64) (*SpanWriter, error) {
	if lo < 0 || hi <= lo || hi > s.n {
		return nil, fmt.Errorf("mht: bad leaf span [%d,%d) of %d in %s", lo, hi, s.n, s.path)
	}
	ranges := spanRanges(s.counts, s.m, lo, hi)
	w := &SpanWriter{
		s:      s,
		ranges: ranges,
		pend:   make([][]types.Hash, len(s.counts)),
		bufs:   make([][]byte, len(s.counts)),
		next:   make([]int64, len(s.counts)),
	}
	for i, r := range ranges {
		w.next[i] = r.lo
	}
	return w, nil
}

// SpanWriter streams the leaf hashes of one position span and writes
// every MHT node the span owns at its final file offset.
type SpanWriter struct {
	s      *SharedWriter
	ranges []nodeRange
	pend   [][]types.Hash // children of the next parent, per layer
	bufs   [][]byte       // coalesced unwritten node bytes, per layer
	next   []int64        // node index where bufs[i] begins
	added  int64
	closed bool
}

// Add appends the next leaf hash of the span.
func (w *SpanWriter) Add(leaf types.Hash) error {
	if w.closed {
		return fmt.Errorf("mht: add after Close on span of %s", w.s.path)
	}
	r := w.ranges[0]
	if w.added >= r.hi-r.lo {
		return fmt.Errorf("mht: more than %d leaves added to span [%d,%d) of %s", r.hi-r.lo, r.lo, r.hi, w.s.path)
	}
	k := r.lo + w.added
	w.added++
	return w.node(0, k, leaf)
}

// node records the hash at (layer i, index k) and cascades a parent when
// it completes a group the span owns. Children left of the span's first
// owned parent belong to a straddler and are skipped (Stitch rereads
// them from the file); a full group is always an owned parent.
func (w *SpanWriter) node(i int, k int64, h types.Hash) error {
	if err := w.stage(i, h); err != nil {
		return err
	}
	if i == len(w.s.counts)-1 {
		return nil
	}
	pr := w.ranges[i+1]
	if k < pr.lo*int64(w.s.m) {
		return nil
	}
	w.pend[i] = append(w.pend[i], h)
	if len(w.pend[i]) < w.s.m {
		return nil
	}
	parent := types.HashConcat(w.pend[i]...)
	w.pend[i] = w.pend[i][:0]
	p := k / int64(w.s.m)
	if p >= pr.hi {
		return fmt.Errorf("mht: span parent %d outside layer %d range [%d,%d) in %s", p, i+1, pr.lo, pr.hi, w.s.path)
	}
	return w.node(i+1, p, parent)
}

// stage buffers the node bytes for the layer's next sequential write.
func (w *SpanWriter) stage(i int, h types.Hash) error {
	w.bufs[i] = append(w.bufs[i], h[:]...)
	if len(w.bufs[i]) >= w.s.bufHashes*types.HashSize {
		return w.flushLayer(i)
	}
	return nil
}

func (w *SpanWriter) flushLayer(i int) error {
	if len(w.bufs[i]) == 0 {
		return nil
	}
	if _, err := w.s.f.WriteAt(w.bufs[i], (w.s.offsets[i]+w.next[i])*types.HashSize); err != nil {
		return err
	}
	w.next[i] += int64(len(w.bufs[i]) / types.HashSize)
	w.bufs[i] = w.bufs[i][:0]
	return nil
}

// Close folds the short trailing groups (only the span that reaches a
// layer's end owns them, mirroring Writer.Finish) and flushes every
// layer. It verifies the span wrote exactly its owned node ranges.
func (w *SpanWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	r := w.ranges[0]
	if w.added != r.hi-r.lo {
		return fmt.Errorf("mht: span [%d,%d) of %s got %d leaves", r.lo, r.hi, w.s.path, w.added)
	}
	for i := 0; i < len(w.s.counts)-1; i++ {
		if w.ranges[i].hi == w.s.counts[i] && len(w.pend[i]) > 0 {
			parent := types.HashConcat(w.pend[i]...)
			w.pend[i] = w.pend[i][:0]
			if err := w.node(i+1, w.s.counts[i+1]-1, parent); err != nil {
				return err
			}
		}
	}
	for i := range w.bufs {
		if err := w.flushLayer(i); err != nil {
			return err
		}
		if w.next[i] != w.ranges[i].hi {
			return fmt.Errorf("mht: span layer %d wrote up to node %d, owns [%d,%d) in %s",
				i, w.next[i], w.ranges[i].lo, w.ranges[i].hi, w.s.path)
		}
	}
	return nil
}

// Stitch completes the Merkle file after every span writer has Closed:
// it fills, bottom-up, the straddler nodes no span owned (reading their
// children — contiguous, and complete by induction — straight from the
// file), then syncs, closes, and returns the root. spans must be the
// sorted, contiguous leaf spans covering [0, n) that were handed to
// Span.
func (s *SharedWriter) Stitch(spans [][2]int64) (types.Hash, error) {
	if s.closed {
		return types.Hash{}, fmt.Errorf("mht: stitch after close on %s", s.path)
	}
	var at int64
	for _, sp := range spans {
		if sp[0] != at || sp[1] <= sp[0] {
			return types.Hash{}, fmt.Errorf("mht: spans not contiguous at [%d,%d) (expected lo %d) in %s", sp[0], sp[1], at, s.path)
		}
		at = sp[1]
	}
	if at != s.n {
		return types.Hash{}, fmt.Errorf("mht: spans cover %d of %d leaves in %s", at, s.n, s.path)
	}
	perSpan := make([][]nodeRange, len(spans))
	for i, sp := range spans {
		perSpan[i] = spanRanges(s.counts, s.m, sp[0], sp[1])
	}
	for layer := 1; layer < len(s.counts); layer++ {
		var cur int64
		for _, rs := range perSpan {
			r := rs[layer]
			for p := cur; p < r.lo; p++ {
				if err := s.fillNode(layer, p); err != nil {
					return types.Hash{}, err
				}
			}
			if r.hi > cur {
				cur = r.hi
			}
		}
		for p := cur; p < s.counts[layer]; p++ {
			if err := s.fillNode(layer, p); err != nil {
				return types.Hash{}, err
			}
		}
	}
	var root types.Hash
	if _, err := s.f.ReadAt(root[:], (s.offsets[len(s.counts)-1])*types.HashSize); err != nil {
		return types.Hash{}, fmt.Errorf("mht: read root of %s: %w", s.path, err)
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		_ = s.f.Close()
		return types.Hash{}, err
	}
	return root, s.f.Close()
}

// fillNode computes the node at (layer, p) from its children on disk.
func (s *SharedWriter) fillNode(layer int, p int64) error {
	m := int64(s.m)
	clo := p * m
	chi := clo + m
	if chi > s.counts[layer-1] {
		chi = s.counts[layer-1]
	}
	cnt := int(chi - clo)
	buf := make([]byte, cnt*types.HashSize)
	if _, err := s.f.ReadAt(buf, (s.offsets[layer-1]+clo)*types.HashSize); err != nil {
		return fmt.Errorf("mht: stitch read children of (%d,%d) in %s: %w", layer, p, s.path, err)
	}
	children := make([]types.Hash, cnt)
	for i := range children {
		copy(children[i][:], buf[i*types.HashSize:])
	}
	h := types.HashConcat(children...)
	if _, err := s.f.WriteAt(h[:], (s.offsets[layer]+p)*types.HashSize); err != nil {
		return fmt.Errorf("mht: stitch write node (%d,%d) in %s: %w", layer, p, s.path, err)
	}
	return nil
}

// Abort closes and removes a partially written file; errors are
// deliberately discarded (see Writer.Abort).
func (s *SharedWriter) Abort() {
	if !s.closed {
		s.closed = true
		_ = s.f.Close()
	}
	_ = s.fs.Remove(s.path)
}
