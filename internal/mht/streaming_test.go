package mht

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cole/internal/types"
)

func leafSet(n int64) []types.Hash {
	leaves := make([]types.Hash, n)
	for i := range leaves {
		leaves[i] = types.HashData([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return leaves
}

// TestWriterCoalescingByteIdentical proves the buffered layer flushes
// are pure batching: across tree shapes (incl. short last groups and a
// single leaf) every buffer size yields the same file bytes and root as
// the per-group write granularity.
func TestWriterCoalescingByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		n int64
		m int
	}{
		{1, 2}, {2, 2}, {5, 2}, {64, 2}, {65, 2},
		{3, 4}, {16, 4}, {17, 4}, {1000, 4}, {1000, 16},
	} {
		var want []byte
		var wantRoot types.Hash
		for i, bufBytes := range []int{1 /* per-group */, 256, 4096, 0 /* default */} {
			path := filepath.Join(dir, fmt.Sprintf("n%d-m%d-b%d.mrk", tc.n, tc.m, bufBytes))
			w, err := CreateWriterSize(path, tc.n, tc.m, bufBytes)
			if err != nil {
				t.Fatal(err)
			}
			leaves := leafSet(tc.n)
			for _, l := range leaves {
				if err := w.Add(l); err != nil {
					t.Fatal(err)
				}
			}
			root, err := w.Finish()
			if err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want, wantRoot = raw, root
				if mem := RootOf(leaves, tc.m); mem != root {
					t.Fatalf("n=%d m=%d: streaming root != in-memory root", tc.n, tc.m)
				}
				continue
			}
			if root != wantRoot {
				t.Fatalf("n=%d m=%d buf=%d: root mismatch", tc.n, tc.m, bufBytes)
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("n=%d m=%d buf=%d: file bytes differ", tc.n, tc.m, bufBytes)
			}
		}
	}
}

// TestLeafReader checks the readahead leaf stream returns exactly the
// bottom-layer hashes, for sequential and random access across window
// sizes.
func TestLeafReader(t *testing.T) {
	const n, m = 777, 4
	dir := t.TempDir()
	path := filepath.Join(dir, "leaves.mrk")
	w, err := CreateWriter(path, n, m)
	if err != nil {
		t.Fatal(err)
	}
	leaves := leafSet(n)
	for _, l := range leaves {
		if err := w.Add(l); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, n, m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for _, bufBytes := range []int{1, types.HashSize * 10, 0 /* default */} {
		lr := f.LeafStream(bufBytes)
		for i := int64(0); i < n; i++ {
			h, err := lr.At(i)
			if err != nil {
				t.Fatal(err)
			}
			if h != leaves[i] {
				t.Fatalf("buf=%d: leaf %d mismatch", bufBytes, i)
			}
		}
		// Random-order access still works (window refills backwards).
		for _, i := range []int64{n - 1, 0, n / 2, 3, n - 2} {
			h, err := lr.At(i)
			if err != nil {
				t.Fatal(err)
			}
			if h != leaves[i] {
				t.Fatalf("buf=%d: random leaf %d mismatch", bufBytes, i)
			}
		}
		if _, err := lr.At(n); err == nil {
			t.Fatal("out-of-range leaf accepted")
		}
		if _, err := lr.At(-1); err == nil {
			t.Fatal("negative leaf accepted")
		}
	}
}
