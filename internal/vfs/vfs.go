// Package vfs abstracts the filesystem operations the storage engine
// performs — create/open/read/write/sync/rename/remove — behind a small
// interface so tests can deterministically inject faults (torn writes,
// dropped fsyncs, post-crash state, read errors, bit flips) at any
// syscall index. The production implementation, OS, is a zero-cost
// passthrough to the os package; MemFS is the fault-injecting in-memory
// implementation used by the crash-consistency sweep.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the per-file surface the engine uses: positional and
// sequential I/O, durability, and metadata.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	// Sync flushes the file's buffered data to durable storage.
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Stat returns file metadata (the engine reads only Size).
	Stat() (os.FileInfo, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface the engine routes every data,
// index, Merkle, metadata, manifest, and spool operation through.
type FS interface {
	// Create opens name for writing, creating or truncating it.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (os.O_* flags).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath. Durability of
	// the rename itself requires SyncDir on the parent directory.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes a file or directory tree.
	RemoveAll(path string) error
	// MkdirAll creates a directory and its missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat returns metadata for a path.
	Stat(name string) (os.FileInfo, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes a whole file without any durability guarantee
	// (like os.WriteFile). Commit points must use WriteFileAtomic.
	WriteFile(name string, data []byte, perm os.FileMode) error
	// SyncDir fsyncs a directory, making its entries (creates,
	// renames, removes) durable.
	SyncDir(name string) error
}

// OS is the production FS: a direct passthrough to the os package.
type OS struct{}

type osFile struct{ *os.File }

func (OS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error             { return os.Remove(name) }
func (OS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (OS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// OrOS returns fsys, or the OS passthrough when fsys is nil — the
// idiom every Options.FS consumer uses to default.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}

// IsOS reports whether fsys is the real filesystem. Advisory file
// locks (flock) only exist there; in-memory filesystems skip them.
func IsOS(fsys FS) bool {
	_, ok := fsys.(OS)
	return ok
}

// WriteFileAtomic durably replaces path with data: it writes
// path+".tmp", fsyncs it, closes it, renames it over path, and fsyncs
// the parent directory so the rename survives a crash. Every commit
// point (run metadata, engine MANIFEST, shard SHARDS) goes through
// this; a plain WriteFile+Rename can be reverted or torn by a crash.
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
