package vfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"testing"
)

func TestMemFSBasics(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("db", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("H"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("db/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Hello" {
		t.Fatalf("got %q", got)
	}

	r, err := m.Open("db/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if n, err := r.ReadAt(buf, 2); err != nil || n != 3 || string(buf) != "llo" {
		t.Fatalf("ReadAt = %d %q %v", n, buf, err)
	}
	if _, err := r.ReadAt(buf, 4); !errors.Is(err, io.EOF) {
		t.Fatalf("short ReadAt err = %v, want EOF", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := m.Open("db/missing"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("open missing = %v, want ErrNotExist", err)
	}
	if _, err := m.Stat("db/missing"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("stat missing = %v, want ErrNotExist", err)
	}

	ents, err := m.ReadDir("db")
	if err != nil || len(ents) != 1 || ents[0].Name() != "a" {
		t.Fatalf("ReadDir = %v %v", ents, err)
	}
}

// An unsynced write is lost at a crash; a synced one survives.
func TestMemFSCrashDropsUnsynced(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	writeSyncedFile(t, m, "db/synced", []byte("durable"))
	mustSyncDir(t, m, "db")

	// Unsynced content on a synced file, plus a whole unsynced file.
	f, err := m.OpenFile("db/synced", os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("DIRTY__"), 0); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if err := m.WriteFile("db/unsynced", []byte("gone"), 0o644); err != nil {
		t.Fatal(err)
	}

	m.Crash()

	got, err := m.ReadFile("db/synced")
	if err != nil || string(got) != "durable" {
		t.Fatalf("synced file after crash = %q %v", got, err)
	}
	if _, err := m.ReadFile("db/unsynced"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("unsynced file after crash: err = %v, want ErrNotExist", err)
	}
}

// A rename is durable only after the parent directory syncs.
func TestMemFSRenameNeedsDirSync(t *testing.T) {
	for _, syncDir := range []bool{false, true} {
		m := NewMem()
		mustMkdir(t, m, "db")
		writeSyncedFile(t, m, "db/old", []byte("v1"))
		mustSyncDir(t, m, "db")
		writeSyncedFile(t, m, "db/new.tmp", []byte("v2"))
		if err := m.Rename("db/new.tmp", "db/old"); err != nil {
			t.Fatal(err)
		}
		if syncDir {
			mustSyncDir(t, m, "db")
		}
		m.Crash()
		got, err := m.ReadFile("db/old")
		if err != nil {
			t.Fatal(err)
		}
		want := "v1"
		if syncDir {
			want = "v2"
		}
		if string(got) != want {
			t.Fatalf("syncDir=%v: after crash got %q, want %q", syncDir, got, want)
		}
	}
}

// DropDirSyncs makes the rename above silently non-durable even though
// SyncDir reports success — the failure mode the commit-point audit
// protects against.
func TestMemFSDroppedDirSync(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	writeSyncedFile(t, m, "db/old", []byte("v1"))
	mustSyncDir(t, m, "db")
	m.DropDirSyncs(true)
	writeSyncedFile(t, m, "db/new.tmp", []byte("v2"))
	if err := m.Rename("db/new.tmp", "db/old"); err != nil {
		t.Fatal(err)
	}
	mustSyncDir(t, m, "db") // reports success, does nothing
	m.Crash()
	got, err := m.ReadFile("db/old")
	if err != nil || string(got) != "v1" {
		t.Fatalf("after crash with dropped dir syncs got %q %v, want v1", got, err)
	}
}

// Crashing on a write tears it: a prefix may land, and everything
// afterwards fails with ErrCrashed until Crash().
func TestMemFSCrashAtTearsWrite(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	f, err := m.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	m.CrashAt(m.OpCount() + 1)
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write = %v, want ErrCrashed", err)
	}
	if !m.Crashed() {
		t.Fatal("not crashed")
	}
	if _, err := m.Open("db/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	m.Crash()
	// The file entry itself was never durable, so it is gone entirely.
	if _, err := m.ReadFile("db/a"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("after crash: %v, want ErrNotExist", err)
	}
}

func TestMemFSFailAt(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	f, err := m.Create("db/a")
	if err != nil {
		t.Fatal(err)
	}
	m.FailAt(m.OpCount()+1, nil)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v, want ErrInjected", err)
	}
	// One-shot: the next operation succeeds.
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("second write = %v", err)
	}
}

func TestMemFSRemoveAllAndRecreate(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db/build")
	writeSyncedFile(t, m, "db/build/s0", []byte("spool"))
	mustSyncDir(t, m, "db/build")
	if err := m.RemoveAll("db/build"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("db/build/s0"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("stat removed = %v", err)
	}
	mustMkdir(t, m, "db/build")
	ents, err := m.ReadDir("db/build")
	if err != nil || len(ents) != 0 {
		t.Fatalf("recreated dir = %v %v, want empty", ents, err)
	}
}

func TestWriteFileAtomicDurable(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	if err := WriteFileAtomic(m, "db/MANIFEST", []byte("state"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	got, err := m.ReadFile("db/MANIFEST")
	if err != nil || string(got) != "state" {
		t.Fatalf("after crash = %q %v", got, err)
	}
	// Plain WriteFile, by contrast, does not survive.
	if err := m.WriteFile("db/PLAIN", []byte("state"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("db/PLAIN"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("plain WriteFile survived crash: %v", err)
	}
}

func TestMemFSFlipByte(t *testing.T) {
	m := NewMem()
	mustMkdir(t, m, "db")
	writeSyncedFile(t, m, "db/a", []byte{0x00, 0x01})
	mustSyncDir(t, m, "db")
	if err := m.FlipByte("db/a", 1); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadFile("db/a")
	if got[1] != 0xFE {
		t.Fatalf("flip: got %x", got)
	}
	m.Crash() // flip persists in the durable image too
	got, err := m.ReadFile("db/a")
	if err != nil || got[1] != 0xFE {
		t.Fatalf("flip after crash: %x %v", got, err)
	}
}

func mustMkdir(t *testing.T, m *MemFS, p string) {
	t.Helper()
	if err := m.MkdirAll(p, 0o755); err != nil {
		t.Fatal(err)
	}
}

func mustSyncDir(t *testing.T, m *MemFS, p string) {
	t.Helper()
	if err := m.SyncDir(p); err != nil {
		t.Fatal(err)
	}
}

func writeSyncedFile(t *testing.T, m *MemFS, p string, data []byte) {
	t.Helper()
	f, err := m.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
