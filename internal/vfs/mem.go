package vfs

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrCrashed is returned by every MemFS operation after the armed
// crash point has been reached: the "machine" is down until Crash()
// reverts the filesystem to its durable image and clears the fault.
var ErrCrashed = errors.New("vfs: crashed")

// ErrInjected is the default error for single-operation fault
// injection (FailAt).
var ErrInjected = errors.New("vfs: injected fault")

// MemFS is an in-memory filesystem that models crash consistency: it
// tracks, for every file and directory, both the current state and the
// durable state (what has been fsynced). Faults are injected by global
// operation index — every FS and File method counts as one operation —
// so a sweep can crash a workload at each distinct syscall.
//
// Crash semantics (deterministic, adversarial):
//   - File data becomes durable only on Sync. At a crash, unsynced
//     writes are dropped — except the torn tail of the very write the
//     crash lands on, half of which reaches the durable image (data
//     may hit disk unordered without fsync).
//   - Directory entries (create, rename, remove) become durable only
//     on SyncDir of the parent. At a crash, unsynced entry changes
//     revert: an unsynced rename rolls back, an unsynced remove
//     resurrects the file.
//   - Directories themselves are durable on creation (a modeling
//     simplification; the engine always syncs the directories whose
//     entries it depends on).
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu   sync.Mutex
	dirs map[string]*memDir

	ops     int64
	crashAt int64 // crash when ops reaches this index (0 = disarmed)
	crashed bool
	failAt  int64 // fail exactly this op with failErr (0 = disarmed)
	failErr error

	dropDirSync bool
}

type inode struct {
	cur []byte
	dur []byte
}

type dirent struct {
	dir bool
	ino *inode
}

type memDir struct {
	cur map[string]dirent
	dur map[string]dirent
}

func newMemDir() *memDir {
	return &memDir{cur: map[string]dirent{}, dur: map[string]dirent{}}
}

// NewMem returns an empty in-memory filesystem with no faults armed.
func NewMem() *MemFS {
	m := &MemFS{dirs: map[string]*memDir{}}
	m.dirs["."] = newMemDir()
	m.dirs["/"] = newMemDir()
	return m
}

// CrashAt arms the crash point: the n-th subsequent operation (1-based,
// counted from the filesystem's creation) fails, and every operation
// after it fails with ErrCrashed until Crash is called.
func (m *MemFS) CrashAt(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = n
}

// FailAt arms a single-operation fault: operation n fails with err
// (ErrInjected when nil); later operations succeed normally.
func (m *MemFS) FailAt(n int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	m.failAt, m.failErr = n, err
}

// DropDirSyncs makes SyncDir report success without making directory
// entries durable — the "buggy fsync" mode that demonstrates why
// commit points must sync the parent directory.
func (m *MemFS) DropDirSyncs(drop bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropDirSync = drop
}

// OpCount returns the number of operations performed so far.
func (m *MemFS) OpCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether the armed crash point has been reached.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Crash simulates the machine rebooting after a power failure: every
// file and directory reverts to its durable image, armed faults are
// cleared, and the filesystem is usable again.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.dirs {
		d.cur = cloneEntries(d.dur)
		for _, ent := range d.cur {
			if ent.ino != nil {
				ent.ino.cur = append([]byte(nil), ent.ino.dur...)
			}
		}
	}
	m.crashed = false
	m.crashAt, m.failAt, m.failErr = 0, 0, nil
}

// FlipByte XOR-flips one byte of a file in both the current and
// durable images — latent media corruption for scrub tests.
func (m *MemFS) FlipByte(path string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ent, err := m.lookupLocked(path)
	if err != nil {
		return err
	}
	if ent.dir || ent.ino == nil {
		return &os.PathError{Op: "flip", Path: path, Err: errors.New("is a directory")}
	}
	if off < 0 || off >= int64(len(ent.ino.cur)) {
		return &os.PathError{Op: "flip", Path: path, Err: errors.New("offset out of range")}
	}
	ent.ino.cur[off] ^= 0xFF
	if off < int64(len(ent.ino.dur)) {
		ent.ino.dur[off] ^= 0xFF
	}
	return nil
}

func cloneEntries(src map[string]dirent) map[string]dirent {
	out := make(map[string]dirent, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// step counts one operation and applies armed faults. crossed is true
// when this very operation is the armed crash point (its write may
// tear).
func (m *MemFS) stepLocked() (err error, crossed bool) {
	if m.crashed {
		return ErrCrashed, false
	}
	m.ops++
	if m.failAt != 0 && m.ops == m.failAt {
		e := m.failErr
		m.failAt, m.failErr = 0, nil
		return e, false
	}
	if m.crashAt != 0 && m.ops >= m.crashAt {
		m.crashed = true
		return ErrCrashed, true
	}
	return nil, false
}

func norm(p string) string { return filepath.Clean(p) }

func (m *MemFS) parentLocked(p string) (*memDir, string, error) {
	dir, base := filepath.Dir(p), filepath.Base(p)
	d, ok := m.dirs[dir]
	if !ok {
		return nil, "", &os.PathError{Op: "open", Path: p, Err: iofs.ErrNotExist}
	}
	return d, base, nil
}

func (m *MemFS) lookupLocked(p string) (dirent, error) {
	p = norm(p)
	if _, ok := m.dirs[p]; ok {
		// A directory that still has a live entry in its parent (or a
		// root) resolves as a directory.
		if m.entryLiveLocked(p) {
			return dirent{dir: true}, nil
		}
		return dirent{}, &os.PathError{Op: "stat", Path: p, Err: iofs.ErrNotExist}
	}
	d, base, err := m.parentLocked(p)
	if err != nil {
		return dirent{}, err
	}
	ent, ok := d.cur[base]
	if !ok {
		return dirent{}, &os.PathError{Op: "stat", Path: p, Err: iofs.ErrNotExist}
	}
	return ent, nil
}

// entryLiveLocked reports whether directory p is reachable: roots are
// always live; others need a live entry in their parent.
func (m *MemFS) entryLiveLocked(p string) bool {
	if p == "." || p == "/" {
		return true
	}
	d, base, err := m.parentLocked(p)
	if err != nil {
		return false
	}
	ent, ok := d.cur[base]
	return ok && ent.dir
}

// --- FS interface ---

func (m *MemFS) Create(name string) (File, error) {
	return m.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (m *MemFS) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return nil, err
	}
	name = norm(name)
	d, base, err := m.parentLocked(name)
	if err != nil {
		return nil, err
	}
	ent, ok := d.cur[base]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: iofs.ErrNotExist}
	case !ok:
		ent = dirent{ino: &inode{}}
		d.cur[base] = ent
	case ent.dir:
		return nil, &os.PathError{Op: "open", Path: name, Err: errors.New("is a directory")}
	case flag&os.O_TRUNC != 0:
		ent.ino.cur = nil
	}
	return &memHandle{fs: m, name: name, ino: ent.ino}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return err
	}
	od, obase, err := m.parentLocked(norm(oldpath))
	if err != nil {
		return err
	}
	ent, ok := od.cur[obase]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: iofs.ErrNotExist}
	}
	nd, nbase, err := m.parentLocked(norm(newpath))
	if err != nil {
		return err
	}
	delete(od.cur, obase)
	nd.cur[nbase] = ent
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return err
	}
	d, base, err := m.parentLocked(norm(name))
	if err != nil {
		return err
	}
	if _, ok := d.cur[base]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: iofs.ErrNotExist}
	}
	delete(d.cur, base)
	return nil
}

func (m *MemFS) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return err
	}
	path = norm(path)
	d, base, err := m.parentLocked(path)
	if err != nil {
		return nil // parent gone: nothing to remove (os.RemoveAll semantics)
	}
	delete(d.cur, base)
	// Empty the current view of the whole subtree so a re-created
	// directory starts fresh; durable state stays for crash revert.
	prefix := path + string(filepath.Separator)
	for p, sub := range m.dirs {
		if p == path || (len(p) > len(prefix) && p[:len(prefix)] == prefix) {
			sub.cur = map[string]dirent{}
		}
	}
	return nil
}

func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return err
	}
	return m.mkdirAllLocked(norm(path))
}

func (m *MemFS) mkdirAllLocked(p string) error {
	if p == "." || p == "/" {
		return nil
	}
	parent := filepath.Dir(p)
	if _, ok := m.dirs[parent]; !ok {
		if err := m.mkdirAllLocked(parent); err != nil {
			return err
		}
	}
	d := m.dirs[parent]
	base := filepath.Base(p)
	if ent, ok := d.cur[base]; ok && !ent.dir {
		return &os.PathError{Op: "mkdir", Path: p, Err: errors.New("not a directory")}
	}
	// Directory creation is modeled as immediately durable.
	ent := dirent{dir: true}
	d.cur[base] = ent
	d.dur[base] = ent
	if _, ok := m.dirs[p]; !ok {
		m.dirs[p] = newMemDir()
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return nil, err
	}
	name = norm(name)
	d, ok := m.dirs[name]
	if !ok || !m.entryLiveLocked(name) {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: iofs.ErrNotExist}
	}
	names := make([]string, 0, len(d.cur))
	for n := range d.cur {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]os.DirEntry, 0, len(names))
	for _, n := range names {
		ent := d.cur[n]
		var size int64
		if ent.ino != nil {
			size = int64(len(ent.ino.cur))
		}
		out = append(out, memDirEntry{name: n, dir: ent.dir, size: size})
	}
	return out, nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return nil, err
	}
	ent, err := m.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	var size int64
	if ent.ino != nil {
		size = int64(len(ent.ino.cur))
	}
	return memFileInfo{name: filepath.Base(norm(name)), dir: ent.dir, size: size}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return nil, err
	}
	ent, err := m.lookupLocked(name)
	if err != nil {
		return nil, err
	}
	if ent.dir || ent.ino == nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: errors.New("is a directory")}
	}
	return append([]byte(nil), ent.ino.cur...), nil
}

func (m *MemFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err, crossed := m.stepLocked()
	if err != nil {
		if crossed {
			// The crash lands mid-write: a torn prefix reaches the
			// current (never the durable) image of a fresh entry.
			if d, base, perr := m.parentLocked(norm(name)); perr == nil {
				ino := &inode{cur: append([]byte(nil), data[:len(data)/2]...)}
				d.cur[base] = dirent{ino: ino}
			}
		}
		return err
	}
	d, base, perr := m.parentLocked(norm(name))
	if perr != nil {
		return perr
	}
	ent, ok := d.cur[base]
	if !ok || ent.ino == nil {
		ent = dirent{ino: &inode{}}
		d.cur[base] = ent
	}
	ent.ino.cur = append([]byte(nil), data...)
	return nil
}

func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err, _ := m.stepLocked(); err != nil {
		return err
	}
	if m.dropDirSync {
		return nil
	}
	name = norm(name)
	d, ok := m.dirs[name]
	if !ok {
		return &os.PathError{Op: "syncdir", Path: name, Err: iofs.ErrNotExist}
	}
	d.dur = cloneEntries(d.cur)
	return nil
}

// --- file handle ---

type memHandle struct {
	fs   *MemFS
	name string
	ino  *inode
	off  int64 // sequential write offset
}

func (f *memHandle) Name() string { return f.name }

func (f *memHandle) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err, _ := f.fs.stepLocked(); err != nil {
		return 0, err
	}
	if off < 0 || off >= int64(len(f.ino.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memHandle) writeAtLocked(p []byte, off int64, alsoDurable bool) {
	end := off + int64(len(p))
	if int64(len(f.ino.cur)) < end {
		grown := make([]byte, end)
		copy(grown, f.ino.cur)
		f.ino.cur = grown
	}
	copy(f.ino.cur[off:], p)
	if alsoDurable {
		if int64(len(f.ino.dur)) < end {
			grown := make([]byte, end)
			copy(grown, f.ino.dur)
			f.ino.dur = grown
		}
		copy(f.ino.dur[off:], p)
	}
}

func (f *memHandle) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	err, crossed := f.fs.stepLocked()
	if err != nil {
		if crossed && len(p) > 0 {
			// Torn write: half the buffer may land — in the durable
			// image too, since unfsynced data can hit disk unordered.
			f.writeAtLocked(p[:len(p)/2], off, true)
		}
		return 0, err
	}
	f.writeAtLocked(p, off, false)
	return len(p), nil
}

func (f *memHandle) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	err, crossed := f.fs.stepLocked()
	if err != nil {
		if crossed && len(p) > 0 {
			f.writeAtLocked(p[:len(p)/2], f.off, true)
		}
		return 0, err
	}
	f.writeAtLocked(p, f.off, false)
	f.off += int64(len(p))
	return len(p), nil
}

func (f *memHandle) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err, _ := f.fs.stepLocked(); err != nil {
		return err
	}
	if int64(len(f.ino.cur)) >= size {
		f.ino.cur = f.ino.cur[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.ino.cur)
		f.ino.cur = grown
	}
	if f.off > size {
		f.off = size
	}
	return nil
}

func (f *memHandle) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err, _ := f.fs.stepLocked(); err != nil {
		return err
	}
	f.ino.dur = append([]byte(nil), f.ino.cur...)
	return nil
}

func (f *memHandle) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err, _ := f.fs.stepLocked(); err != nil {
		return err
	}
	return nil
}

func (f *memHandle) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err, _ := f.fs.stepLocked(); err != nil {
		return nil, err
	}
	return memFileInfo{name: filepath.Base(f.name), size: int64(len(f.ino.cur))}, nil
}

// --- metadata types ---

type memFileInfo struct {
	name string
	dir  bool
	size int64
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() iofs.FileMode {
	if i.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }

type memDirEntry struct {
	name string
	dir  bool
	size int64
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() iofs.FileMode {
	if e.dir {
		return iofs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (iofs.FileInfo, error) {
	return memFileInfo{name: e.name, dir: e.dir, size: e.size}, nil
}
