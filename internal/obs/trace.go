// Package obs is the engine's observability layer: a low-overhead
// lifecycle event tracer (this file) and a Prometheus-style metrics
// exposition handler over registered stats sources (metrics.go).
//
// The tracer answers the question counters cannot: not how many merges
// preempted or how long commits stalled in total, but *when* and *in
// what order* — the timeline that explains a commit-tail spike or a
// merge convoy. It is opt-in (core.Options.Trace), and every recording
// site in the engine is guarded by a single nil check, so the disabled
// path costs one predictable branch.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// EventType identifies what lifecycle transition an Event records.
type EventType uint8

const (
	// EvFlushStart / EvFlushEnd bracket an L0 memtable flush job.
	EvFlushStart EventType = iota
	EvFlushEnd
	// EvMergeStart / EvMergeEnd bracket a level merge (shallow or deep;
	// Level says which).
	EvMergeStart
	EvMergeEnd
	// EvMergeChunk marks a preemption checkpoint reached by a chunked
	// merge (every MergeChunk entries).
	EvMergeChunk
	// EvMergePreempt records a chunked merge handing its worker slot to
	// a queued higher-priority job; Dur is the time spent re-queued.
	EvMergePreempt
	// EvPace records an ingest pacing sleep; Dur is the sleep, Bytes the
	// compaction debt that triggered it.
	EvPace
	// EvCommit is the whole commit critical path (Dur from the caller's
	// Commit() entry to durability).
	EvCommit
	// EvStall records a commit blocking on an unfinished async merge
	// (the write stall COLE⁺ identifies); Dur is the wait.
	EvStall
	// EvManifest is one manifest write — inline on the commit path, or
	// on the background IO lane under PipelinedCommit.
	EvManifest
	// EvViewPublish marks a new read view becoming visible (ID = block
	// height).
	EvViewPublish
	// EvViewRetire marks a replaced run leaving the live set once its
	// last reader drops (ID = run file id).
	EvViewRetire
	// EvSpanStart / EvSpanEnd bracket one span of a range-partitioned
	// merge fanned out across the pool (ID = span ordinal).
	EvSpanStart
	EvSpanEnd

	numEventTypes
)

var eventNames = [numEventTypes]string{
	EvFlushStart:   "flush_start",
	EvFlushEnd:     "flush_end",
	EvMergeStart:   "merge_start",
	EvMergeEnd:     "merge_end",
	EvMergeChunk:   "merge_chunk",
	EvMergePreempt: "merge_preempt",
	EvPace:         "pace",
	EvCommit:       "commit",
	EvStall:        "stall",
	EvManifest:     "manifest",
	EvViewPublish:  "view_publish",
	EvViewRetire:   "view_retire",
	EvSpanStart:    "span_start",
	EvSpanEnd:      "span_end",
}

// String returns the JSONL wire name of the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return fmt.Sprintf("event_%d", int(t))
}

// Event is one recorded lifecycle transition. TS is nanoseconds since
// the tracer's epoch on the monotonic clock; for events that describe a
// completed span (Dur > 0), TS is the span's end.
type Event struct {
	TS    int64
	Dur   int64
	Bytes int64
	ID    uint64
	Type  EventType
	Shard int32
	Level int32
}

// Tracer is a fixed-size buffer of lifecycle events with a lock-free
// recording path: one atomic slot claim plus a handful of plain stores.
// When the buffer fills, further events are dropped (never overwritten,
// so the retained prefix stays a coherent timeline) and counted — the
// engine surfaces the count as Stats.TraceDropped instead of losing
// events silently.
//
// Export (Events, WriteJSONL, WriteChromeTrace) assumes recording has
// quiesced — export after Close on the store being traced. A Tracer may
// be shared across every shard of a store; events carry the shard that
// recorded them.
type Tracer struct {
	epoch   time.Time
	buf     []Event
	pos     atomic.Uint64
	dropped atomic.Int64
}

// DefaultTraceEvents is the ring capacity when NewTracer is given a
// non-positive size: 256K events (~14 MB), enough for minutes of a
// busy multi-shard run.
const DefaultTraceEvents = 1 << 18

// NewTracer returns a tracer holding up to capacity events; capacity
// <= 0 selects DefaultTraceEvents.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	return &Tracer{epoch: time.Now(), buf: make([]Event, capacity)}
}

// Record appends one event. Safe for concurrent use from any goroutine;
// never blocks and never allocates. dur is the span duration for
// completed-span events (0 for instants); the timestamp is taken here,
// so record span events at their end.
func (t *Tracer) Record(typ EventType, shard, level int32, bytes int64, id uint64, dur time.Duration) {
	slot := t.pos.Add(1) - 1
	if slot >= uint64(len(t.buf)) {
		t.dropped.Add(1)
		return
	}
	t.buf[slot] = Event{
		TS:    int64(time.Since(t.epoch)),
		Dur:   int64(dur),
		Bytes: bytes,
		ID:    id,
		Type:  typ,
		Shard: shard,
		Level: level,
	}
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	n := t.pos.Load()
	if n > uint64(len(t.buf)) {
		return len(t.buf)
	}
	return int(n)
}

// Dropped returns how many events did not fit in the buffer. Nil-safe
// so engines can surface it unconditionally.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset empties the ring and clears the drop counter so the tracer can
// be reused across consecutive runs (one export file per experiment).
// Like the export methods, it assumes recording has quiesced: call it
// only while no store is holding the tracer. The epoch is preserved, so
// timestamps stay monotone across a reset.
func (t *Tracer) Reset() {
	t.pos.Store(0)
	t.dropped.Store(0)
}

// Events returns the retained events in recording order. The returned
// slice aliases the ring; do not Record concurrently with reading it.
func (t *Tracer) Events() []Event {
	return t.buf[:t.Len()]
}

// CountType returns how many retained events have the given type — the
// cross-check hook for trace-vs-counter verification (e.g. preemption
// events against Stats.Preemptions).
func (t *Tracer) CountType(typ EventType) int64 {
	var n int64
	for _, ev := range t.Events() {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// WriteJSONL writes one JSON object per event (ts/dur in nanoseconds
// since the trace epoch) followed by a trailer object carrying the
// retained and dropped counts. Fields are emitted by hand — the export
// path must not allocate per event beyond the writer's buffer.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, ev := range t.Events() {
		fmt.Fprintf(bw, `{"ts":%d,"type":%q,"shard":%d,"level":%d,"bytes":%d,"id":%d,"dur":%d}`+"\n",
			ev.TS, ev.Type.String(), ev.Shard, ev.Level, ev.Bytes, ev.ID, ev.Dur)
	}
	fmt.Fprintf(bw, `{"type":"trace_summary","events":%d,"dropped":%d}`+"\n", t.Len(), t.Dropped())
	return bw.Flush()
}
