package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sort"
	"strings"
	"sync"

	"cole/internal/hist"
)

// Metrics exposition: every open engine (and shared merge pool)
// registers a stats source — a function returning its counter struct —
// and Handler() renders all of them in Prometheus text format on each
// scrape. The walk is reflective, so a counter added to core.Stats,
// merge.Stats, or pagefile.IOStats shows up on /metrics without any
// exposition code changing: int fields become counters named
// cole_<snake_case_path>, nested structs extend the path, and
// hist.Hist fields become summaries with quantile labels (values in
// seconds, per Prometheus convention).
//
// Struct tags steer the walk: `obs:"-"` skips a field, `obs:"inline"`
// recurses without adding a path segment (core.Stats uses it for the
// operation-histogram block, so its metrics read cole_commit_latency_
// seconds rather than cole_hist_commit_latency_seconds).

// Label is one key=value pair attached to every metric of a source.
type Label struct{ Key, Value string }

type source struct {
	prefix string
	labels []Label
	fn     func() any
}

var (
	regMu     sync.Mutex
	registry  = map[int64]*source{}
	nextregID int64
)

// Register adds a stats source: fn is called on every scrape and must
// return a struct (or pointer to one) of counters. prefix, if
// non-empty, namespaces the source's metrics (cole_<prefix>_...);
// labels are attached to every sample. The returned function removes
// the source — engines call it from Close.
func Register(prefix string, fn func() any, labels ...Label) (unregister func()) {
	regMu.Lock()
	defer regMu.Unlock()
	nextregID++
	id := nextregID
	registry[id] = &source{prefix: prefix, labels: labels, fn: fn}
	return func() {
		regMu.Lock()
		defer regMu.Unlock()
		delete(registry, id)
	}
}

// snapshotSources copies the registered sources so stats functions run
// outside the registry lock (they may take engine locks of their own).
func snapshotSources() []*source {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*source, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	return out
}

// sample is one exposition line: rendered label set plus value text.
type sample struct {
	labels string
	value  string
}

type collector struct {
	types   map[string]string // metric name -> TYPE
	samples map[string][]sample
}

var histType = reflect.TypeOf(hist.Hist{})

func (c *collector) walk(v reflect.Value, path string, labels string) {
	for v.Kind() == reflect.Pointer || v.Kind() == reflect.Interface {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Type() == histType {
		c.addHist(v, path, labels)
		return
	}
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag := f.Tag.Get("obs")
			if tag == "-" {
				continue
			}
			child := path
			if tag != "inline" {
				child = joinPath(path, snake(f.Name))
			}
			c.walk(v.Field(i), child, labels)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		c.add(path, "counter", labels, fmt.Sprintf("%d", v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		c.add(path, "counter", labels, fmt.Sprintf("%d", v.Uint()))
	case reflect.Float32, reflect.Float64:
		c.add(path, "gauge", labels, fmt.Sprintf("%g", v.Float()))
	}
}

func (c *collector) add(name, typ, labels, value string) {
	if name == "" {
		return
	}
	metric := "cole_" + name
	if _, ok := c.types[metric]; !ok {
		c.types[metric] = typ
	}
	c.samples[metric] = append(c.samples[metric], sample{labels: labels, value: value})
}

// addHist renders a histogram as a Prometheus summary: quantile-labeled
// points in seconds plus _sum and _count series.
func (c *collector) addHist(v reflect.Value, path string, labels string) {
	h, ok := v.Interface().(hist.Hist)
	if !ok {
		return
	}
	name := path + "_latency_seconds"
	metric := "cole_" + name
	if _, ok := c.types[metric]; !ok {
		c.types[metric] = "summary"
	}
	secs := func(ns int64) string { return fmt.Sprintf("%g", float64(ns)/1e9) }
	for _, q := range []struct {
		p float64
		s string
	}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"}} {
		ql := fmt.Sprintf(`quantile=%q`, q.s)
		if labels != "" {
			ql = labels + "," + ql
		}
		c.samples[metric] = append(c.samples[metric],
			sample{labels: ql, value: secs(int64(h.Percentile(q.p)))})
	}
	c.samples[metric+"_sum"] = append(c.samples[metric+"_sum"], sample{labels: labels, value: secs(h.Sum())})
	c.samples[metric+"_count"] = append(c.samples[metric+"_count"], sample{labels: labels, value: fmt.Sprintf("%d", h.Count())})
}

func (c *collector) writeTo(w http.ResponseWriter) {
	names := make([]string, 0, len(c.samples))
	for name := range c.samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if typ, ok := c.types[name]; ok {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		}
		for _, s := range c.samples[name] {
			if s.labels == "" {
				fmt.Fprintf(w, "%s %s\n", name, s.value)
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", name, s.labels, s.value)
			}
		}
	}
}

func joinPath(path, field string) string {
	if path == "" {
		return field
	}
	return path + "_" + field
}

// snake converts a Go exported identifier to snake_case: PageReads ->
// page_reads, IOStats -> io_stats, MaxCommitNanos -> max_commit_nanos.
func snake(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && rs[i-1] >= 'a' && rs[i-1] <= 'z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// renderLabels formats a label set for exposition lines, escaping
// values per the text format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		parts = append(parts, fmt.Sprintf(`%s="%s"`, l.Key, v))
	}
	return strings.Join(parts, ",")
}

// Handler returns the /metrics endpoint: all registered sources,
// rendered in Prometheus text exposition format.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := &collector{types: map[string]string{}, samples: map[string][]sample{}}
		for _, s := range snapshotSources() {
			v := s.fn()
			if v == nil {
				continue
			}
			c.walk(reflect.ValueOf(v), s.prefix, renderLabels(s.labels))
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.writeTo(w)
	})
}

// Mux returns the telemetry mux: /metrics plus the standard
// net/http/pprof endpoints (wired explicitly so the handler works on
// any mux, not just http.DefaultServeMux).
func Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Mux on it in the background, returning
// the bound address (useful with ":0") and a shutdown function.
func Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Mux()}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
