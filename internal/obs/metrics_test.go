package obs

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"cole/internal/hist"
)

type fakeIO struct {
	PageReads int64
	CacheHits int64
}

type fakeStats struct {
	Puts     int64
	Gets     int64
	IO       fakeIO
	Ratio    float64
	Secret   int64 `obs:"-"`
	internal int64
	Ops      *fakeOps `obs:"inline"`
}

type fakeOps struct {
	Commit hist.Hist
	Get    hist.Hist
}

func scrape(t *testing.T) string {
	t.Helper()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body, _ := io.ReadAll(rec.Body)
	return string(body)
}

// expositionLine matches valid Prometheus text-format sample lines.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [0-9eE.+-]+$`)

func TestMetricsExposition(t *testing.T) {
	ops := &fakeOps{}
	for i := 0; i < 100; i++ {
		ops.Commit.Record(2 * time.Millisecond)
	}
	st := fakeStats{Puts: 10, Gets: 20, IO: fakeIO{PageReads: 5, CacheHits: 4}, Ratio: 1.5, Secret: 99, Ops: ops}
	unreg := Register("", func() any { return st }, Label{"store", "/tmp/x"}, Label{"shard", "0"})
	defer unreg()
	unregSched := Register("sched", func() any {
		return struct{ Submitted int64 }{7}
	}, Label{"store", "/tmp/x"})
	defer unregSched()

	body := scrape(t)
	for _, want := range []string{
		`cole_puts{store="/tmp/x",shard="0"} 10`,
		`cole_gets{store="/tmp/x",shard="0"} 20`,
		`cole_io_page_reads{store="/tmp/x",shard="0"} 5`,
		`cole_io_cache_hits{store="/tmp/x",shard="0"} 4`,
		`cole_ratio{store="/tmp/x",shard="0"} 1.5`,
		`cole_sched_submitted{store="/tmp/x"} 7`,
		`cole_commit_latency_seconds{store="/tmp/x",shard="0",quantile="0.5"}`,
		`cole_commit_latency_seconds_count{store="/tmp/x",shard="0"} 100`,
		`cole_commit_latency_seconds_sum{store="/tmp/x",shard="0"}`,
		`# TYPE cole_puts counter`,
		`# TYPE cole_commit_latency_seconds summary`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if strings.Contains(body, "secret") || strings.Contains(body, "internal") {
		t.Fatalf("skipped fields leaked:\n%s", body)
	}
	// The inline tag must not leave an ops_ path segment behind.
	if strings.Contains(body, "cole_ops_") {
		t.Fatalf("inline tag ignored:\n%s", body)
	}
	// Every non-comment line is format-valid.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("invalid exposition line %q", line)
		}
	}
	// The 2ms recordings must surface in seconds (~0.002), not nanos.
	q50 := regexp.MustCompile(`cole_commit_latency_seconds\{[^}]*quantile="0.5"\} ([0-9.e+-]+)`)
	m := q50.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("no p50 sample:\n%s", body)
	}
	if !strings.HasPrefix(m[1], "0.002") {
		t.Fatalf("p50 %s, want ~0.002s", m[1])
	}

	// Unregistering removes the source from subsequent scrapes.
	unreg()
	if body := scrape(t); strings.Contains(body, "cole_puts") {
		t.Fatalf("unregistered source still exposed:\n%s", body)
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	unreg := Register("", func() any {
		return struct{ X int64 }{1}
	}, Label{"store", `C:\data "hot"`})
	defer unreg()
	body := scrape(t)
	if !strings.Contains(body, `cole_x{store="C:\\data \"hot\""} 1`) {
		t.Fatalf("label not escaped:\n%s", body)
	}
}

func TestMetricsNilSource(t *testing.T) {
	unreg := Register("", func() any { return nil })
	defer unreg()
	scrape(t) // must not panic
}

func TestMuxRoutes(t *testing.T) {
	mux := Mux()
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s -> %d", path, rec.Code)
		}
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"Puts":           "puts",
		"PageReads":      "page_reads",
		"MaxCommitNanos": "max_commit_nanos",
		"IOStats":        "io_stats",
		"SeqReads":       "seq_reads",
		"TraceDropped":   "trace_dropped",
	} {
		if got := snake(in); got != want {
			t.Fatalf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}
