package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordAndOrder(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(EvFlushStart, 0, 1, 4096, 7, 0)
	tr.Record(EvFlushEnd, 0, 1, 4096, 7, 3*time.Millisecond)
	tr.Record(EvMergePreempt, 1, 2, 0, 0, 50*time.Microsecond)
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len %d", len(evs))
	}
	if evs[0].Type != EvFlushStart || evs[1].Type != EvFlushEnd || evs[2].Type != EvMergePreempt {
		t.Fatalf("order %v %v %v", evs[0].Type, evs[1].Type, evs[2].Type)
	}
	if evs[1].Dur != int64(3*time.Millisecond) || evs[1].Bytes != 4096 || evs[1].ID != 7 {
		t.Fatalf("fields %+v", evs[1])
	}
	if evs[2].Shard != 1 || evs[2].Level != 2 {
		t.Fatalf("tags %+v", evs[2])
	}
	if evs[0].TS > evs[1].TS || evs[1].TS > evs[2].TS {
		t.Fatalf("timestamps not monotone: %d %d %d", evs[0].TS, evs[1].TS, evs[2].TS)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d", tr.Dropped())
	}
	if got := tr.CountType(EvMergePreempt); got != 1 {
		t.Fatalf("CountType %d", got)
	}
}

func TestTracerDropAccounting(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(EvPace, 0, -1, int64(i), 0, time.Millisecond)
	}
	if tr.Len() != 4 {
		t.Fatalf("retained %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", tr.Dropped())
	}
	// The retained prefix is the earliest events, a coherent timeline.
	for i, ev := range tr.Events() {
		if ev.Bytes != int64(i) {
			t.Fatalf("event %d has bytes %d; buffer overwrote instead of dropping", i, ev.Bytes)
		}
	}
	// Nil tracers answer Dropped (engines call it unconditionally).
	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer dropped")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int32) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(EvMergeChunk, shard, 1, 0, uint64(i), 0)
			}
		}(int32(w))
	}
	wg.Wait()
	if got := int64(tr.Len()) + tr.Dropped(); got != workers*per {
		t.Fatalf("retained+dropped = %d, want %d", got, workers*per)
	}
	if tr.Len() != 1024 {
		t.Fatalf("retained %d", tr.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(EvMergeStart, 0, 2, 1<<20, 42, 0)
	tr.Record(EvMergePreempt, 0, 2, 0, 42, 80*time.Microsecond)
	tr.Record(EvMergeEnd, 0, 2, 1<<20, 42, 9*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 { // 3 events + trailer
		t.Fatalf("lines %d", len(lines))
	}
	if lines[1]["type"] != "merge_preempt" || lines[2]["type"] != "merge_end" {
		t.Fatalf("types %v %v", lines[1]["type"], lines[2]["type"])
	}
	trailer := lines[3]
	if trailer["type"] != "trace_summary" || trailer["events"].(float64) != 3 || trailer["dropped"].(float64) != 0 {
		t.Fatalf("trailer %v", trailer)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(32)
	tr.Record(EvFlushStart, 0, 1, 4096, 1, 0)
	tr.Record(EvFlushEnd, 0, 1, 4096, 1, 2*time.Millisecond)
	tr.Record(EvMergeChunk, 1, 2, 0, 3, 0)
	tr.Record(EvMergePreempt, 1, 2, 0, 3, 100*time.Microsecond)
	tr.Record(EvCommit, 0, -1, 0, 9, 5*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta int
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
		if n, ok := ev["name"].(string); ok && ev["ph"] != "M" {
			names[n]++
		}
	}
	// flush end, preempt, and commit are slices; the chunk checkpoint is
	// an instant; the flush start marker is folded into its end slice.
	if complete != 3 || instant != 1 {
		t.Fatalf("complete %d instant %d\n%s", complete, instant, buf.String())
	}
	if names["preempt"] != 1 || names["flush"] != 1 || names["commit"] != 1 || names["chunk"] != 1 {
		t.Fatalf("names %v", names)
	}
	if meta == 0 {
		t.Fatal("no lane metadata emitted")
	}
	// Perfetto needs slice start = end - dur: the flush slice must not
	// start before the trace epoch.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			if ts := ev["ts"].(float64); ts < 0 {
				t.Fatalf("negative slice start %v", ev)
			}
		}
	}
	if !strings.Contains(buf.String(), `"displayTimeUnit":"ms"`) {
		t.Fatal("missing displayTimeUnit")
	}
}
