package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the retained timeline rendered as the JSON
// object format Perfetto and chrome://tracing open directly. Each shard
// becomes a process, and within it activities get stable lanes
// (threads): the commit path, the pipelined commit-IO lane, the flush
// lane, one lane per merge level, and one per partition-span slot — so
// a stalls run shows flushes overtaking preempted deep merges at a
// glance.
//
// Span-shaped events (flush/merge/span ends, commits, stalls, pacing
// sleeps, manifest writes, preemption waits) are emitted as complete
// ("ph":"X") slices reconstructed from their end timestamp and
// duration; checkpoint and view events are instants ("ph":"i"). Start
// markers are retained in the JSONL export but skipped here — their
// matching end event already carries the whole slice.

const (
	laneCommit   = 0
	laneCommitIO = 1
	laneFlush    = 2
	laneMerge    = 10 // + level
	laneSpan     = 100
	laneSpanMod  = 32 // span lanes cycle per level to bound lane count
)

// chromeLane maps an event to its thread lane within the shard process.
func chromeLane(ev Event) int {
	switch ev.Type {
	case EvCommit, EvStall, EvPace, EvViewPublish:
		return laneCommit
	case EvManifest, EvViewRetire:
		return laneCommitIO
	case EvFlushStart, EvFlushEnd:
		return laneFlush
	case EvSpanStart, EvSpanEnd:
		return laneSpan + int(ev.Level)*laneSpanMod + int(ev.ID%laneSpanMod)
	default: // merge start/chunk/preempt/end
		lvl := int(ev.Level)
		if lvl < 0 {
			lvl = 0
		}
		return laneMerge + lvl
	}
}

func chromeLaneName(lane int) string {
	switch {
	case lane == laneCommit:
		return "commit"
	case lane == laneCommitIO:
		return "commit-io"
	case lane == laneFlush:
		return "flush"
	case lane >= laneSpan:
		return fmt.Sprintf("span L%d.%d", (lane-laneSpan)/laneSpanMod, (lane-laneSpan)%laneSpanMod)
	default:
		return fmt.Sprintf("merge L%d", lane-laneMerge)
	}
}

// chromeName is the slice/instant label shown on the timeline.
func chromeName(ev Event) string {
	switch ev.Type {
	case EvFlushEnd:
		return "flush"
	case EvMergeEnd:
		return fmt.Sprintf("merge L%d", ev.Level)
	case EvMergeChunk:
		return "chunk"
	case EvMergePreempt:
		return "preempt"
	case EvPace:
		return "pace"
	case EvCommit:
		return "commit"
	case EvStall:
		return "stall"
	case EvManifest:
		return "manifest"
	case EvViewPublish:
		return "publish"
	case EvViewRetire:
		return "retire"
	case EvSpanEnd:
		return fmt.Sprintf("span %d", ev.ID)
	default:
		return ev.Type.String()
	}
}

// WriteChromeTrace writes the retained events in Chrome trace-event
// JSON. Like the other exports it assumes recording has quiesced.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		fmt.Fprintf(bw, "\n"+format, args...)
	}

	// Metadata: name every (process, thread) lane we are about to use so
	// Perfetto shows activities, not bare tids.
	type laneKey struct{ shard, lane int }
	lanes := map[laneKey]bool{}
	shards := map[int]bool{}
	for _, ev := range t.Events() {
		if ev.Type == EvFlushStart || ev.Type == EvMergeStart || ev.Type == EvSpanStart {
			continue
		}
		shards[int(ev.Shard)] = true
		lanes[laneKey{int(ev.Shard), chromeLane(ev)}] = true
	}
	sortedLanes := make([]laneKey, 0, len(lanes))
	for k := range lanes {
		sortedLanes = append(sortedLanes, k)
	}
	sort.Slice(sortedLanes, func(i, j int) bool {
		if sortedLanes[i].shard != sortedLanes[j].shard {
			return sortedLanes[i].shard < sortedLanes[j].shard
		}
		return sortedLanes[i].lane < sortedLanes[j].lane
	})
	for s := range shards {
		emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"shard %d"}}`, s, s)
	}
	for _, k := range sortedLanes {
		emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			k.shard, k.lane, chromeLaneName(k.lane))
		// sort_index keeps lanes in activity order rather than tid order.
		emit(`{"ph":"M","name":"thread_sort_index","pid":%d,"tid":%d,"args":{"sort_index":%d}}`,
			k.shard, k.lane, k.lane)
	}

	for _, ev := range t.Events() {
		switch ev.Type {
		case EvFlushStart, EvMergeStart, EvSpanStart:
			continue // the end event carries the slice
		}
		lane := chromeLane(ev)
		args := fmt.Sprintf(`{"bytes":%d,"id":%d,"level":%d}`, ev.Bytes, ev.ID, ev.Level)
		if ev.Dur > 0 || spanShaped(ev.Type) {
			// A span that began before the tracer's epoch (attached
			// mid-operation) is clipped to the traced window.
			start := ev.TS - ev.Dur
			if start < 0 {
				start = 0
			}
			emit(`{"ph":"X","name":%q,"pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":%s}`,
				chromeName(ev), ev.Shard, lane, float64(start)/1e3, float64(ev.TS-start)/1e3, args)
		} else {
			emit(`{"ph":"i","s":"t","name":%q,"pid":%d,"tid":%d,"ts":%.3f,"args":%s}`,
				chromeName(ev), ev.Shard, lane, float64(ev.TS)/1e3, args)
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// spanShaped reports whether the event type describes a completed span
// (rendered "X" even at zero measured duration).
func spanShaped(t EventType) bool {
	switch t {
	case EvFlushEnd, EvMergeEnd, EvSpanEnd, EvCommit, EvStall, EvManifest, EvPace, EvMergePreempt:
		return true
	}
	return false
}
