package types

import (
	"encoding/binary"
	"math"
	"math/big"
	"math/bits"
)

// U256 is an unsigned 256-bit integer in four little-endian uint64 limbs.
// Compound keys occupy only the low 224 bits (binary(addr)·2^64 + blk), so
// U256 arithmetic over keys is exact. It replaces the paper's arbitrary-
// precision `rug` integers (§3.2): the learned models take the *difference*
// K − kmin of two U256 keys as their x coordinate.
type U256 [4]uint64

// U256FromKey converts a compound key to its big-integer form
// binary(addr)·2^64 + blk.
func U256FromKey(k CompoundKey) U256 {
	var u U256
	// addr occupies bits [64, 224): big-endian addr bytes are the most
	// significant. addr[0..3] → high bits of limb 3 ... addr[16..19] → limb 1.
	// Layout: limb0 = blk; limbs 1..3 hold the 160-bit address.
	u[0] = k.Blk
	// The 20 address bytes map to 2.5 limbs; treat addr as a 160-bit
	// big-endian integer occupying bits [64, 224).
	var pad [24]byte // 3 limbs big-endian
	copy(pad[4:], k.Addr[:])
	u[3] = binary.BigEndian.Uint64(pad[0:8])
	u[2] = binary.BigEndian.Uint64(pad[8:16])
	u[1] = binary.BigEndian.Uint64(pad[16:24])
	return u
}

// Cmp returns -1, 0, or +1 comparing u and v numerically.
func (u U256) Cmp(v U256) int {
	for i := 3; i >= 0; i-- {
		if u[i] < v[i] {
			return -1
		}
		if u[i] > v[i] {
			return 1
		}
	}
	return 0
}

// Sub returns u − v. The caller must ensure u ≥ v (keys are compared before
// subtracting); underflow wraps like two's-complement, matching uint
// semantics, and is guarded by tests.
func (u U256) Sub(v U256) U256 {
	var r U256
	var borrow uint64
	for i := 0; i < 4; i++ {
		r[i], borrow = bits.Sub64(u[i], v[i], borrow)
	}
	return r
}

// Add returns u + v, wrapping on overflow.
func (u U256) Add(v U256) U256 {
	var r U256
	var carry uint64
	for i := 0; i < 4; i++ {
		r[i], carry = bits.Add64(u[i], v[i], carry)
	}
	return r
}

// IsZero reports whether u == 0.
func (u U256) IsZero() bool { return u[0]|u[1]|u[2]|u[3] == 0 }

// Float64 converts u to the nearest float64. Values above 2^53 lose
// precision, exactly as at query time: build and query use the same
// conversion, so learned-model error bounds verified at build time hold at
// query time.
func (u U256) Float64() float64 {
	f := 0.0
	for i := 3; i >= 0; i-- {
		f = f*18446744073709551616.0 + float64(u[i])
	}
	return f
}

// BitLen returns the number of bits in u's minimal representation.
func (u U256) BitLen() int {
	for i := 3; i >= 0; i-- {
		if u[i] != 0 {
			return i*64 + bits.Len64(u[i])
		}
	}
	return 0
}

// Big converts u to a math/big integer (used by tests to cross-check the
// limb arithmetic against the stdlib reference implementation).
func (u U256) Big() *big.Int {
	b := new(big.Int)
	for i := 3; i >= 0; i-- {
		b.Lsh(b, 64)
		b.Or(b, new(big.Int).SetUint64(u[i]))
	}
	return b
}

// KeyDeltaFloat returns float64(K − kmin), the learned-model x coordinate
// for key K in a segment anchored at kmin. K must satisfy K ≥ kmin.
func KeyDeltaFloat(k, kmin CompoundKey) float64 {
	return U256FromKey(k).Sub(U256FromKey(kmin)).Float64()
}

// Inf is the positive-infinity convenience used by model builders.
var Inf = math.Inf(1)
