package types

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddressFromBytesExactWidth(t *testing.T) {
	raw := make([]byte, AddressSize)
	for i := range raw {
		raw[i] = byte(i + 1)
	}
	a := AddressFromBytes(raw)
	if !bytes.Equal(a[:], raw) {
		t.Fatalf("exact-width input must be copied verbatim, got %x", a)
	}
}

func TestAddressFromBytesHashesOddWidth(t *testing.T) {
	a := AddressFromBytes([]byte("alice"))
	b := AddressFromBytes([]byte("alice"))
	c := AddressFromBytes([]byte("bob"))
	if a != b {
		t.Fatal("address derivation must be deterministic")
	}
	if a == c {
		t.Fatal("distinct identifiers must map to distinct addresses")
	}
}

func TestAddressFromUint64Distinct(t *testing.T) {
	seen := make(map[Address]bool)
	for i := uint64(0); i < 1000; i++ {
		a := AddressFromUint64(i)
		if seen[a] {
			t.Fatalf("collision at %d", i)
		}
		seen[a] = true
	}
}

func TestValueRoundTripUint64(t *testing.T) {
	for _, x := range []uint64{0, 1, 255, 1 << 40, ^uint64(0)} {
		if got := ValueFromUint64(x).Uint64(); got != x {
			t.Fatalf("round trip %d -> %d", x, got)
		}
	}
}

func TestValueFromBytesShortPads(t *testing.T) {
	v := ValueFromBytes([]byte{0xAB})
	if v[0] != 0xAB {
		t.Fatal("short input must be copied into prefix")
	}
	for _, b := range v[1:] {
		if b != 0 {
			t.Fatal("padding must be zero")
		}
	}
}

func TestValueFromBytesLongHashes(t *testing.T) {
	long := make([]byte, 100)
	v1 := ValueFromBytes(long)
	long[99] = 1
	v2 := ValueFromBytes(long)
	if v1 == v2 {
		t.Fatal("oversized inputs must be hashed, not truncated")
	}
}

func TestCompoundKeyBytesOrderMatchesCmp(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		k1 := randKey(r)
		k2 := randKey(r)
		byteOrder := bytes.Compare(k1.Bytes(), k2.Bytes())
		if byteOrder != k1.Cmp(k2) {
			t.Fatalf("byte order %d != Cmp %d for %v vs %v", byteOrder, k1.Cmp(k2), k1, k2)
		}
	}
}

func TestCompoundKeyCmpSameAddrOrdersByBlock(t *testing.T) {
	a := AddressFromString("x")
	lo := CompoundKey{Addr: a, Blk: 5}
	hi := CompoundKey{Addr: a, Blk: 6}
	if !lo.Less(hi) || hi.Less(lo) || lo.Cmp(lo) != 0 {
		t.Fatal("block height must break ties")
	}
}

func TestCompoundKeyEncodeDecode(t *testing.T) {
	k := CompoundKey{Addr: AddressFromString("k"), Blk: 123456789}
	got, err := DecodeCompoundKey(k.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("round trip mismatch: %v vs %v", got, k)
	}
	if _, err := DecodeCompoundKey(make([]byte, 3)); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestEntryEncodeDecode(t *testing.T) {
	e := Entry{Key: CompoundKey{Addr: AddressFromString("e"), Blk: 42}, Value: ValueFromUint64(7)}
	buf := make([]byte, EntrySize)
	EncodeEntry(buf, e)
	got, err := DecodeEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
	}
	if _, err := DecodeEntry(buf[:10]); err == nil {
		t.Fatal("short buffer must error")
	}
}

func TestProvBoundaryKeys(t *testing.T) {
	a := AddressFromString("p")
	if k := ProvLowerKey(a, 10); k.Blk != 9 {
		t.Fatalf("lower key blk = %d, want 9", k.Blk)
	}
	if k := ProvLowerKey(a, 0); k.Blk != 0 {
		t.Fatalf("lower key must saturate at 0, got %d", k.Blk)
	}
	if k := ProvUpperKey(a, 10); k.Blk != 11 {
		t.Fatalf("upper key blk = %d, want 11", k.Blk)
	}
	if k := ProvUpperKey(a, MaxBlock); k.Blk != MaxBlock {
		t.Fatal("upper key must saturate at MaxBlock")
	}
}

func TestMaxKeyForIsUpperBound(t *testing.T) {
	a := AddressFromString("m")
	max := MaxKeyFor(a)
	for blk := uint64(0); blk < 100; blk += 7 {
		if max.Less(CompoundKey{Addr: a, Blk: blk}) {
			t.Fatal("MaxKeyFor must dominate every version of the address")
		}
	}
}

func TestHashEntryDistinct(t *testing.T) {
	e1 := Entry{Key: CompoundKey{Addr: AddressFromString("h"), Blk: 1}, Value: ValueFromUint64(1)}
	e2 := e1
	e2.Value = ValueFromUint64(2)
	if HashEntry(e1) == HashEntry(e2) {
		t.Fatal("different values must hash differently")
	}
	e3 := e1
	e3.Key.Blk = 2
	if HashEntry(e1) == HashEntry(e3) {
		t.Fatal("different versions must hash differently")
	}
}

func TestHashConcatMatchesHashData(t *testing.T) {
	h1 := HashData([]byte("a"))
	h2 := HashData([]byte("b"))
	want := HashData(h1[:], h2[:])
	if HashConcat(h1, h2) != want {
		t.Fatal("HashConcat must equal HashData over concatenated digests")
	}
}

func TestHashDataEmpty(t *testing.T) {
	if HashData() == ZeroHash {
		t.Fatal("sha256 of empty input is not the zero hash")
	}
}

func randKey(r *rand.Rand) CompoundKey {
	var k CompoundKey
	r.Read(k.Addr[:])
	k.Blk = r.Uint64()
	return k
}

func TestCompoundKeyOrderProperty(t *testing.T) {
	f := func(a1, a2 [AddressSize]byte, b1, b2 uint64) bool {
		k1 := CompoundKey{Addr: a1, Blk: b1}
		k2 := CompoundKey{Addr: a2, Blk: b2}
		// Byte order, Cmp and U256 order must all agree.
		c := k1.Cmp(k2)
		return bytes.Compare(k1.Bytes(), k2.Bytes()) == c &&
			U256FromKey(k1).Cmp(U256FromKey(k2)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
