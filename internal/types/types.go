// Package types defines the primitive data model shared by every COLE
// module: fixed-size state addresses and values, compound keys ⟨addr, blk⟩,
// their 224-bit integer form, and the cryptographic hash helpers used by the
// Merkle structures.
//
// The paper (§2, §3.2) fixes both the state address and the state value to
// constant-size strings, and converts a compound key K = ⟨addr, blk⟩ into the
// big integer binary(addr)·2^64 + blk. With 20-byte addresses that integer
// is 224 bits wide, so the fixed four-limb U256 type is exact.
package types

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

const (
	// AddressSize is the byte width of a state address (Ethereum account
	// address width).
	AddressSize = 20
	// ValueSize is the byte width of a state value.
	ValueSize = 32
	// HashSize is the byte width of the cryptographic hash (SHA-256).
	HashSize = 32
	// CompoundKeySize is the encoded width of ⟨addr, blk⟩.
	CompoundKeySize = AddressSize + 8
	// EntrySize is the encoded width of a compound key-value pair as stored
	// in a run's value file.
	EntrySize = CompoundKeySize + ValueSize
	// MaxBlock is the paper's max_int sentinel: Get(addr) searches for
	// ⟨addr, MaxBlock⟩ so the freshest version is the predecessor.
	MaxBlock = math.MaxUint64
)

// Address identifies a ledger state ("column" in the column-based design).
type Address [AddressSize]byte

// Value is a fixed-size state value.
type Value [ValueSize]byte

// Hash is a SHA-256 digest.
type Hash [HashSize]byte

// CompoundKey is the versioned key ⟨addr, blk⟩: blk is the block height at
// which the value of addr was written.
type CompoundKey struct {
	Addr Address
	Blk  uint64
}

// Entry is a compound key-value pair, the unit stored in value files.
type Entry struct {
	Key   CompoundKey
	Value Value
}

// Update is one pending state write of a batch: Addr receives Value at
// the height of the block the batch is applied to. The height itself is
// not part of the update — the engine stamps it when the batch lands,
// which is what lets one batch be rerouted across shards or replayed at
// recovery without rewriting it.
type Update struct {
	Addr  Address
	Value Value
}

// AddressFromBytes builds an Address from arbitrary bytes, hashing when the
// input is not exactly AddressSize long so that any identifier maps to a
// uniformly distributed address.
func AddressFromBytes(b []byte) Address {
	var a Address
	if len(b) == AddressSize {
		copy(a[:], b)
		return a
	}
	sum := sha256.Sum256(b)
	copy(a[:], sum[:AddressSize])
	return a
}

// AddressFromString derives an address from a string identifier (used by
// workload generators: account names, YCSB keys).
func AddressFromString(s string) Address { return AddressFromBytes([]byte(s)) }

// AddressFromUint64 derives an address from an integer identifier.
func AddressFromUint64(v uint64) Address {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return AddressFromBytes(b[:])
}

// ValueFromBytes builds a Value, hashing oversized input and zero-padding
// short input so any payload maps deterministically to a fixed-size value.
func ValueFromBytes(b []byte) Value {
	var v Value
	if len(b) <= ValueSize {
		copy(v[:], b)
		return v
	}
	sum := sha256.Sum256(b)
	copy(v[:], sum[:])
	return v
}

// ValueFromUint64 encodes an integer as a Value (big-endian in the trailing
// bytes so numeric order matches byte order).
func ValueFromUint64(x uint64) Value {
	var v Value
	binary.BigEndian.PutUint64(v[ValueSize-8:], x)
	return v
}

// Uint64 decodes a value produced by ValueFromUint64.
func (v Value) Uint64() uint64 { return binary.BigEndian.Uint64(v[ValueSize-8:]) }

// String renders the address as hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// String renders the value as hex.
func (v Value) String() string { return hex.EncodeToString(v[:]) }

// String renders the hash as hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// String renders the compound key.
func (k CompoundKey) String() string {
	return fmt.Sprintf("⟨%s,%d⟩", hex.EncodeToString(k.Addr[:6]), k.Blk)
}

// Bytes encodes the compound key as addr‖blk big-endian, so lexicographic
// byte order equals numeric order of the 224-bit integer form.
func (k CompoundKey) Bytes() []byte {
	b := make([]byte, CompoundKeySize)
	copy(b, k.Addr[:])
	binary.BigEndian.PutUint64(b[AddressSize:], k.Blk)
	return b
}

// PutBytes encodes the key into dst, which must be at least CompoundKeySize.
func (k CompoundKey) PutBytes(dst []byte) {
	copy(dst, k.Addr[:])
	binary.BigEndian.PutUint64(dst[AddressSize:], k.Blk)
}

// DecodeCompoundKey parses an encoding produced by Bytes.
func DecodeCompoundKey(b []byte) (CompoundKey, error) {
	if len(b) < CompoundKeySize {
		return CompoundKey{}, fmt.Errorf("types: compound key too short: %d bytes", len(b))
	}
	var k CompoundKey
	copy(k.Addr[:], b[:AddressSize])
	k.Blk = binary.BigEndian.Uint64(b[AddressSize:CompoundKeySize])
	return k, nil
}

// Cmp orders compound keys by (addr, blk), i.e. by their big-integer form.
// It returns -1, 0, or +1.
func (k CompoundKey) Cmp(o CompoundKey) int {
	if c := bytes.Compare(k.Addr[:], o.Addr[:]); c != 0 {
		return c
	}
	switch {
	case k.Blk < o.Blk:
		return -1
	case k.Blk > o.Blk:
		return 1
	}
	return 0
}

// Less reports k < o.
func (k CompoundKey) Less(o CompoundKey) bool { return k.Cmp(o) < 0 }

// MaxKeyFor returns the Get-query search key ⟨addr, max_int⟩ (§3.2).
func MaxKeyFor(addr Address) CompoundKey { return CompoundKey{Addr: addr, Blk: MaxBlock} }

// ProvLowerKey returns K_l = ⟨addr, blk_l − 1⟩ used by provenance queries
// (§6.2); blk_l = 0 saturates at 0.
func ProvLowerKey(addr Address, blkLow uint64) CompoundKey {
	if blkLow == 0 {
		return CompoundKey{Addr: addr, Blk: 0}
	}
	return CompoundKey{Addr: addr, Blk: blkLow - 1}
}

// ProvUpperKey returns K_u = ⟨addr, blk_u + 1⟩ (saturating at MaxBlock).
func ProvUpperKey(addr Address, blkHigh uint64) CompoundKey {
	if blkHigh == MaxBlock {
		return CompoundKey{Addr: addr, Blk: MaxBlock}
	}
	return CompoundKey{Addr: addr, Blk: blkHigh + 1}
}

// EncodeEntry writes the 60-byte entry encoding into dst.
func EncodeEntry(dst []byte, e Entry) {
	e.Key.PutBytes(dst)
	copy(dst[CompoundKeySize:], e.Value[:])
}

// DecodeEntry parses an entry written by EncodeEntry.
func DecodeEntry(b []byte) (Entry, error) {
	if len(b) < EntrySize {
		return Entry{}, fmt.Errorf("types: entry too short: %d bytes", len(b))
	}
	k, err := DecodeCompoundKey(b)
	if err != nil {
		return Entry{}, err
	}
	var e Entry
	e.Key = k
	copy(e.Value[:], b[CompoundKeySize:EntrySize])
	return e, nil
}

// HashData hashes the concatenation of the given byte slices.
func HashData(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashEntry computes the Merkle leaf hash h(K‖value) of Definition 2.
func HashEntry(e Entry) Hash {
	var buf [EntrySize]byte
	EncodeEntry(buf[:], e)
	return sha256.Sum256(buf[:])
}

// HashConcat computes the parent hash h(h_1‖…‖h_m) of Definition 2.
func HashConcat(hs ...Hash) Hash {
	h := sha256.New()
	for i := range hs {
		h.Write(hs[i][:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// ZeroHash is the all-zero digest, used as the root of empty structures.
var ZeroHash Hash
