package types

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestU256FromKeyMatchesPaperFormula(t *testing.T) {
	// §3.2: big integer = binary(addr) · 2^64 + blk.
	k := CompoundKey{Addr: AddressFromString("u"), Blk: 0xDEADBEEF}
	u := U256FromKey(k)

	want := new(big.Int).SetBytes(k.Addr[:])
	want.Lsh(want, 64)
	want.Or(want, new(big.Int).SetUint64(k.Blk))

	if u.Big().Cmp(want) != 0 {
		t.Fatalf("U256FromKey = %s, want %s", u.Big(), want)
	}
}

func TestU256KeyFitsIn224Bits(t *testing.T) {
	var k CompoundKey
	for i := range k.Addr {
		k.Addr[i] = 0xFF
	}
	k.Blk = ^uint64(0)
	if bl := U256FromKey(k).BitLen(); bl != 224 {
		t.Fatalf("max key bit length = %d, want 224", bl)
	}
}

func TestU256SubAddRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := U256FromKey(randKey(r))
		b := U256FromKey(randKey(r))
		if a.Cmp(b) < 0 {
			a, b = b, a
		}
		d := a.Sub(b)
		if d.Add(b) != a {
			t.Fatalf("(a-b)+b != a for a=%s b=%s", a.Big(), b.Big())
		}
	}
}

func TestU256SubMatchesBig(t *testing.T) {
	f := func(a1, a2 [AddressSize]byte, b1, b2 uint64) bool {
		x := U256FromKey(CompoundKey{Addr: a1, Blk: b1})
		y := U256FromKey(CompoundKey{Addr: a2, Blk: b2})
		if x.Cmp(y) < 0 {
			x, y = y, x
		}
		want := new(big.Int).Sub(x.Big(), y.Big())
		return x.Sub(y).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestU256CmpMatchesBig(t *testing.T) {
	f := func(a1, a2 [AddressSize]byte, b1, b2 uint64) bool {
		x := U256FromKey(CompoundKey{Addr: a1, Blk: b1})
		y := U256FromKey(CompoundKey{Addr: a2, Blk: b2})
		return x.Cmp(y) == x.Big().Cmp(y.Big())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestU256Float64SmallValuesExact(t *testing.T) {
	// Same-address deltas are ≤ 2^53 in realistic chains and must convert
	// exactly: model x coordinates are these deltas.
	a := AddressFromString("f")
	base := CompoundKey{Addr: a, Blk: 100}
	for _, d := range []uint64{0, 1, 2, 1000, 1 << 30, 1 << 52} {
		k := CompoundKey{Addr: a, Blk: 100 + d}
		got := KeyDeltaFloat(k, base)
		if got != float64(d) {
			t.Fatalf("delta %d converted to %g", d, got)
		}
	}
}

func TestU256Float64MatchesBig(t *testing.T) {
	f := func(a1 [AddressSize]byte, b1 uint64) bool {
		u := U256FromKey(CompoundKey{Addr: a1, Blk: b1})
		want, _ := new(big.Float).SetInt(u.Big()).Float64()
		got := u.Float64()
		if want == 0 {
			return got == 0
		}
		// The limb-wise conversion may differ from the correctly rounded
		// big.Float result by a few ulps; the PLA builder tolerates this by
		// verifying with the same conversion it will use at query time.
		rel := (got - want) / want
		if rel < 0 {
			rel = -rel
		}
		return rel < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestU256IsZeroAndBitLen(t *testing.T) {
	var z U256
	if !z.IsZero() || z.BitLen() != 0 {
		t.Fatal("zero value must report IsZero and BitLen 0")
	}
	one := U256{1, 0, 0, 0}
	if one.IsZero() || one.BitLen() != 1 {
		t.Fatal("one must have bit length 1")
	}
	high := U256{0, 0, 0, 1}
	if high.BitLen() != 193 {
		t.Fatalf("2^192 bit length = %d, want 193", high.BitLen())
	}
}

func TestKeyDeltaFloatMonotone(t *testing.T) {
	// For sorted keys k1 ≤ k2 ≤ k3 with common anchor, deltas must be
	// non-decreasing even through float64 rounding (rounding is monotone).
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		ks := []CompoundKey{randKey(r), randKey(r), randKey(r)}
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				if ks[b].Less(ks[a]) {
					ks[a], ks[b] = ks[b], ks[a]
				}
			}
		}
		anchor := ks[0]
		d1 := KeyDeltaFloat(ks[0], anchor)
		d2 := KeyDeltaFloat(ks[1], anchor)
		d3 := KeyDeltaFloat(ks[2], anchor)
		if d1 > d2 || d2 > d3 {
			t.Fatalf("deltas not monotone: %g %g %g", d1, d2, d3)
		}
	}
}
