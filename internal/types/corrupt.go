package types

import (
	"errors"
	"fmt"
	"strings"
)

// ErrCorrupt is the typed corruption error every read and scrub path
// reports instead of garbage bytes or a panic: a run file, manifest, or
// Merkle node whose on-disk bytes fail an integrity invariant (checksum
// mismatch, broken key ordering, learned-index miss, hash mismatch,
// truncation). Layers decorate it as it propagates: the run layer fills
// File/Page/Detail, the engine adds Store/Level, the shard layer adds
// Shard. Match it with errors.As; the zero value of a location field
// (-1 for the integers) means "not attributed".
type ErrCorrupt struct {
	// Store is the store (engine) directory.
	Store string
	// Shard is the owning shard index, or -1 for a single-engine store.
	Shard int
	// Level is the LSM level of the damaged run, or -1 when the damage
	// is outside a run (e.g. the manifest).
	Level int
	// File is the path of the damaged file.
	File string
	// Page is the page (value/index files) or node index (Merkle
	// files) the damage was pinned to, or -1 when unattributed.
	Page int64
	// Detail says which invariant failed.
	Detail string
	// Err is the underlying error, if any (errors.Unwrap).
	Err error
}

// NewCorrupt returns an ErrCorrupt pinned to a file with the location
// fields unattributed.
func NewCorrupt(file string, page int64, detail string) *ErrCorrupt {
	return &ErrCorrupt{Shard: -1, Level: -1, File: file, Page: page, Detail: detail}
}

// CorruptFrom wraps err as an ErrCorrupt for file; when err already is
// one, it is returned unchanged (the innermost attribution wins).
func CorruptFrom(file string, err error) error {
	if err == nil {
		return nil
	}
	var ec *ErrCorrupt
	if errors.As(err, &ec) {
		return err
	}
	return &ErrCorrupt{Shard: -1, Level: -1, File: file, Page: -1, Detail: err.Error(), Err: err}
}

func (e *ErrCorrupt) Error() string {
	var b strings.Builder
	b.WriteString("corrupt")
	if e.Store != "" {
		fmt.Fprintf(&b, " store %s", e.Store)
	}
	if e.Shard >= 0 {
		fmt.Fprintf(&b, " shard %d", e.Shard)
	}
	if e.Level >= 0 {
		fmt.Fprintf(&b, " level %d", e.Level)
	}
	if e.File != "" {
		fmt.Fprintf(&b, ": %s", e.File)
	}
	if e.Page >= 0 {
		fmt.Fprintf(&b, " page %d", e.Page)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, ": %s", e.Detail)
	}
	return b.String()
}

func (e *ErrCorrupt) Unwrap() error { return e.Err }
