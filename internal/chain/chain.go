// Package chain is the blockchain substrate: blocks, transactions, and a
// deterministic transaction executor over pluggable state backends.
//
// It replaces the paper's Rust-EVM harness (DESIGN.md §4): the evaluation's
// smart contracts (SmallBank, YCSB KVStore from Blockbench) only read and
// update fixed-size states, so the storage layer observes exactly the same
// access patterns from this interpreter as from an EVM. Transactions are
// packed into blocks (100/block in the paper); each block header carries
// the previous block hash, a timestamp surrogate, the transaction Merkle
// root Htx, and the state root Hstate (Figure 2).
package chain

import (
	"encoding/binary"
	"fmt"

	"cole/internal/mht"
	"cole/internal/types"
)

// TxKind enumerates the contract operations of the two Blockbench
// benchmarks used in the paper (§8.1.3).
type TxKind uint8

// SmallBank operations plus the YCSB KVStore pair.
const (
	TxTransactSavings TxKind = iota
	TxDepositChecking
	TxSendPayment
	TxWriteCheck
	TxAmalgamate
	TxQuery
	TxKVRead
	TxKVWrite
)

// IsWrite reports whether the transaction updates state.
func (k TxKind) IsWrite() bool { return k != TxQuery && k != TxKVRead }

// String names the operation.
func (k TxKind) String() string {
	switch k {
	case TxTransactSavings:
		return "TransactSavings"
	case TxDepositChecking:
		return "DepositChecking"
	case TxSendPayment:
		return "SendPayment"
	case TxWriteCheck:
		return "WriteCheck"
	case TxAmalgamate:
		return "Amalgamate"
	case TxQuery:
		return "Query"
	case TxKVRead:
		return "KVRead"
	case TxKVWrite:
		return "KVWrite"
	}
	return fmt.Sprintf("TxKind(%d)", uint8(k))
}

// Tx is one transaction: an operation over one or two parties.
type Tx struct {
	Kind   TxKind
	A, B   string // party identifiers (account names / YCSB keys)
	Amount uint64
}

// Hash digests the transaction for the block's Merkle tree.
func (tx Tx) Hash() types.Hash {
	var amt [9]byte
	amt[0] = byte(tx.Kind)
	binary.BigEndian.PutUint64(amt[1:], tx.Amount)
	return types.HashData(amt[:], []byte(tx.A), []byte{0}, []byte(tx.B))
}

// Header is a block header (Figure 2).
type Header struct {
	Height   uint64
	PrevHash types.Hash
	TS       uint64 // deterministic timestamp surrogate
	Htx      types.Hash
	Hstate   types.Hash
}

// Hash digests the header, chaining blocks together.
func (h Header) Hash() types.Hash {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], h.Height)
	binary.BigEndian.PutUint64(buf[8:16], h.TS)
	return types.HashData(buf[:], h.PrevHash[:], h.Htx[:], h.Hstate[:])
}

// StateBackend abstracts the four storage engines under the executor
// (COLE, COLE*, MPT, LIPP, CMI).
type StateBackend interface {
	// BeginBlock opens block height for writes.
	BeginBlock(height uint64) error
	// Put writes a state update into the open block.
	Put(addr types.Address, v types.Value) error
	// Get reads the latest value of a state.
	Get(addr types.Address) (types.Value, bool, error)
	// Commit seals the open block and returns Hstate.
	Commit() (types.Hash, error)
	// Close releases resources.
	Close() error
}

// BatchBackend is a StateBackend that can apply a block's writes as one
// batch (the COLE backends; the baselines stay per-Put).
type BatchBackend interface {
	StateBackend
	// PutBatch applies the updates to the open block in order, collapsing
	// duplicate addresses to the last write.
	PutBatch(updates []types.Update) error
}

// Batched wraps a batch-capable backend so that every block's writes are
// buffered in memory and applied as a single PutBatch at Commit — the
// batched write pipeline: transactions execute against a block-local
// overlay (reads see the block's own writes), and the store sees one
// bulk call per block instead of one locked call per update. Because
// PutBatch is byte-compatible with sequential Put, headers produced
// through a Batched backend are identical to the unbatched ones.
type Batched struct {
	inner   BatchBackend
	updates []types.Update
	// overlay maps an address to its position in updates, giving
	// read-your-writes within the open block and last-write-wins
	// coalescing before the batch is even submitted.
	overlay map[types.Address]int
	open    bool
}

// NewBatched wraps backend in the block-buffering write pipeline.
func NewBatched(backend BatchBackend) *Batched {
	return &Batched{inner: backend, overlay: make(map[types.Address]int)}
}

// BeginBlock implements StateBackend.
func (b *Batched) BeginBlock(h uint64) error {
	if err := b.inner.BeginBlock(h); err != nil {
		return err
	}
	b.updates = b.updates[:0]
	clear(b.overlay)
	b.open = true
	return nil
}

// Put implements StateBackend: the write lands in the block buffer.
func (b *Batched) Put(addr types.Address, v types.Value) error {
	if !b.open {
		return fmt.Errorf("chain: Put outside a block")
	}
	if i, ok := b.overlay[addr]; ok {
		b.updates[i].Value = v
		return nil
	}
	b.overlay[addr] = len(b.updates)
	b.updates = append(b.updates, types.Update{Addr: addr, Value: v})
	return nil
}

// Get implements StateBackend: the block's own writes win over the store.
func (b *Batched) Get(addr types.Address) (types.Value, bool, error) {
	if b.open {
		if i, ok := b.overlay[addr]; ok {
			return b.updates[i].Value, true, nil
		}
	}
	return b.inner.Get(addr)
}

// Commit implements StateBackend: the buffered block lands as one batch,
// then the inner backend seals it.
func (b *Batched) Commit() (types.Hash, error) {
	if !b.open {
		return types.Hash{}, fmt.Errorf("chain: commit without block")
	}
	b.open = false
	if err := b.inner.PutBatch(b.updates); err != nil {
		return types.Hash{}, err
	}
	return b.inner.Commit()
}

// Close implements StateBackend.
func (b *Batched) Close() error { return b.inner.Close() }

// Inner exposes the wrapped backend, for callers that need the concrete
// store behind the pipeline (e.g. to run provenance queries).
func (b *Batched) Inner() BatchBackend { return b.inner }

// Account state addresses: SmallBank keeps two states per account
// (savings and checking), the KVStore contract one per key.
func savingsAddr(acct string) types.Address  { return types.AddressFromString("sb/s/" + acct) }
func checkingAddr(acct string) types.Address { return types.AddressFromString("sb/c/" + acct) }

// KVAddr is the state address of a YCSB KVStore record.
func KVAddr(key string) types.Address { return types.AddressFromString("kv/" + key) }

// SavingsAddr exposes the savings state address of an account (used by
// provenance examples and tests).
func SavingsAddr(acct string) types.Address { return savingsAddr(acct) }

// CheckingAddr exposes the checking state address of an account.
func CheckingAddr(acct string) types.Address { return checkingAddr(acct) }

func balance(b StateBackend, addr types.Address) (uint64, error) {
	v, ok, err := b.Get(addr)
	if err != nil || !ok {
		return 0, err
	}
	return v.Uint64(), nil
}

// applyTx interprets one transaction against the backend — the same
// read/update pattern the Blockbench contracts produce.
func applyTx(b StateBackend, tx Tx) error {
	switch tx.Kind {
	case TxTransactSavings:
		s, err := balance(b, savingsAddr(tx.A))
		if err != nil {
			return err
		}
		return b.Put(savingsAddr(tx.A), types.ValueFromUint64(s+tx.Amount))
	case TxDepositChecking:
		c, err := balance(b, checkingAddr(tx.A))
		if err != nil {
			return err
		}
		return b.Put(checkingAddr(tx.A), types.ValueFromUint64(c+tx.Amount))
	case TxSendPayment:
		ca, err := balance(b, checkingAddr(tx.A))
		if err != nil {
			return err
		}
		cb, err := balance(b, checkingAddr(tx.B))
		if err != nil {
			return err
		}
		amt := tx.Amount
		if amt > ca {
			amt = ca // insufficient funds: transfer what exists
		}
		if err := b.Put(checkingAddr(tx.A), types.ValueFromUint64(ca-amt)); err != nil {
			return err
		}
		return b.Put(checkingAddr(tx.B), types.ValueFromUint64(cb+amt))
	case TxWriteCheck:
		s, err := balance(b, savingsAddr(tx.A))
		if err != nil {
			return err
		}
		c, err := balance(b, checkingAddr(tx.A))
		if err != nil {
			return err
		}
		amt := tx.Amount
		if amt > s+c {
			amt = s + c
		}
		if amt > c {
			amt = c
		}
		return b.Put(checkingAddr(tx.A), types.ValueFromUint64(c-amt))
	case TxAmalgamate:
		s, err := balance(b, savingsAddr(tx.A))
		if err != nil {
			return err
		}
		c, err := balance(b, checkingAddr(tx.A))
		if err != nil {
			return err
		}
		cb, err := balance(b, checkingAddr(tx.B))
		if err != nil {
			return err
		}
		if err := b.Put(savingsAddr(tx.A), types.ValueFromUint64(0)); err != nil {
			return err
		}
		if err := b.Put(checkingAddr(tx.A), types.ValueFromUint64(0)); err != nil {
			return err
		}
		return b.Put(checkingAddr(tx.B), types.ValueFromUint64(cb+s+c))
	case TxQuery:
		if _, err := balance(b, savingsAddr(tx.A)); err != nil {
			return err
		}
		_, err := balance(b, checkingAddr(tx.A))
		return err
	case TxKVRead:
		_, _, err := b.Get(KVAddr(tx.A))
		return err
	case TxKVWrite:
		return b.Put(KVAddr(tx.A), types.ValueFromUint64(tx.Amount))
	}
	return fmt.Errorf("chain: unknown tx kind %d", tx.Kind)
}

// Chain executes blocks against a backend and maintains the header chain.
type Chain struct {
	backend  StateBackend
	lastHash types.Hash
	height   uint64
	headers  []Header // retained for inspection; headers are small
}

// New creates a chain over a backend, starting above the backend's
// current height (0 for a fresh store).
func New(backend StateBackend, startHeight uint64) *Chain {
	return &Chain{backend: backend, height: startHeight}
}

// Height returns the last executed block height.
func (c *Chain) Height() uint64 { return c.height }

// Headers returns the executed block headers.
func (c *Chain) Headers() []Header { return c.headers }

// LastHeader returns the newest header.
func (c *Chain) LastHeader() (Header, bool) {
	if len(c.headers) == 0 {
		return Header{}, false
	}
	return c.headers[len(c.headers)-1], true
}

// ExecuteBlock packs the transactions into the next block, applies them,
// and seals the header with Htx and Hstate.
func (c *Chain) ExecuteBlock(txs []Tx) (Header, error) {
	h := c.height + 1
	if err := c.backend.BeginBlock(h); err != nil {
		return Header{}, err
	}
	leaves := make([]types.Hash, len(txs))
	for i, tx := range txs {
		if err := applyTx(c.backend, tx); err != nil {
			return Header{}, fmt.Errorf("chain: block %d tx %d (%s): %w", h, i, tx.Kind, err)
		}
		leaves[i] = tx.Hash()
	}
	hstate, err := c.backend.Commit()
	if err != nil {
		return Header{}, err
	}
	hdr := Header{
		Height:   h,
		PrevHash: c.lastHash,
		TS:       h, // deterministic surrogate: real chains stamp wall time
		Htx:      mht.RootOf(leaves, 2),
		Hstate:   hstate,
	}
	c.height = h
	c.lastHash = hdr.Hash()
	c.headers = append(c.headers, hdr)
	return hdr, nil
}

// VerifyHeaderChain checks the hash chaining of a header sequence
// (integrity of the simulated ledger).
func VerifyHeaderChain(headers []Header) error {
	for i := 1; i < len(headers); i++ {
		if headers[i].PrevHash != headers[i-1].Hash() {
			return fmt.Errorf("chain: header %d does not link to %d", headers[i].Height, headers[i-1].Height)
		}
		if headers[i].Height != headers[i-1].Height+1 {
			return fmt.Errorf("chain: non-monotone heights %d → %d", headers[i-1].Height, headers[i].Height)
		}
	}
	return nil
}
