package chain

import (
	"encoding/binary"
	"fmt"

	"cole/internal/cmi"
	"cole/internal/core"
	"cole/internal/kvstore"
	"cole/internal/lipp"
	"cole/internal/mpt"
	"cole/internal/shard"
	"cole/internal/types"
)

// blockOverlay gives a COLE backend read-your-writes inside an open
// block: engine reads are snapshot-isolated at the last commit, so the
// executor's intra-block reads (a transfer reading a balance an earlier
// transaction in the same block wrote) are served from this overlay while
// everything else comes from a snapshot pinned at BeginBlock. The engine
// receives exactly the same Put sequence as before, so headers are
// byte-identical to the pre-snapshot read path.
type blockOverlay struct {
	writes map[types.Address]types.Value
}

func newBlockOverlay() *blockOverlay {
	return &blockOverlay{writes: make(map[types.Address]types.Value)}
}

func (o *blockOverlay) reset()                                  { clear(o.writes) }
func (o *blockOverlay) put(a types.Address, v types.Value)      { o.writes[a] = v }
func (o *blockOverlay) get(a types.Address) (types.Value, bool) { v, ok := o.writes[a]; return v, ok }

// ColeBackend adapts the COLE engine (sync or async) to StateBackend.
// Each block executes over a Snapshot pinned at BeginBlock (lock-free,
// stable reads while background merges run) plus the block's own write
// overlay.
type ColeBackend struct {
	Engine  *core.Engine
	snap    *core.Snapshot
	overlay *blockOverlay
}

// OpenCole opens a COLE backend.
func OpenCole(opts core.Options) (*ColeBackend, error) {
	e, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	return &ColeBackend{Engine: e, overlay: newBlockOverlay()}, nil
}

// BeginBlock implements StateBackend: it pins the pre-block snapshot all
// of the block's reads are served from.
func (b *ColeBackend) BeginBlock(h uint64) error {
	// No stale snapshot can be pinned here: Commit releases it whatever
	// its outcome, so b.snap is non-nil only while a block is open — and
	// then the engine rejects the nested BeginBlock below, keeping the
	// active block's pin (and its isolation) intact.
	if err := b.Engine.BeginBlock(h); err != nil {
		return err
	}
	b.releaseSnap()
	b.snap = b.Engine.Snapshot()
	b.overlay.reset()
	return nil
}

func (b *ColeBackend) releaseSnap() {
	if b.snap != nil {
		b.snap.Release()
		b.snap = nil
	}
}

// Put implements StateBackend.
func (b *ColeBackend) Put(addr types.Address, v types.Value) error {
	if err := b.Engine.Put(addr, v); err != nil {
		return err
	}
	b.overlay.put(addr, v)
	return nil
}

// PutBatch implements BatchBackend.
func (b *ColeBackend) PutBatch(updates []types.Update) error {
	if err := b.Engine.PutBatch(updates); err != nil {
		return err
	}
	for _, u := range updates {
		b.overlay.put(u.Addr, u.Value)
	}
	return nil
}

// Get implements StateBackend: the open block's own writes win, then the
// pinned pre-block snapshot (or the live engine view between blocks).
func (b *ColeBackend) Get(addr types.Address) (types.Value, bool, error) {
	if v, ok := b.overlay.get(addr); ok {
		return v, true, nil
	}
	if b.snap != nil {
		return b.snap.Get(addr)
	}
	return b.Engine.Get(addr)
}

// Commit implements StateBackend. The overlay is dropped whatever the
// outcome: on success the engine serves the block's writes, and on error
// between-block Gets must not keep serving values that never committed.
func (b *ColeBackend) Commit() (types.Hash, error) {
	root, err := b.Engine.Commit()
	b.releaseSnap()
	b.overlay.reset()
	return root, err
}

// Close implements StateBackend.
func (b *ColeBackend) Close() error {
	b.releaseSnap()
	return b.Engine.Close()
}

// ShardedColeBackend adapts a sharded COLE store (N engines, parallel
// per-shard commit) to StateBackend, with the same snapshot-plus-overlay
// block execution as ColeBackend.
type ShardedColeBackend struct {
	Store   *shard.Store
	snap    *shard.Snapshot
	overlay *blockOverlay
}

// OpenShardedCole opens a sharded COLE backend with opts.Shards
// partitions.
func OpenShardedCole(opts core.Options) (*ShardedColeBackend, error) {
	s, err := shard.Open(opts)
	if err != nil {
		return nil, err
	}
	return &ShardedColeBackend{Store: s, overlay: newBlockOverlay()}, nil
}

// BeginBlock implements StateBackend.
func (b *ShardedColeBackend) BeginBlock(h uint64) error {
	// See ColeBackend.BeginBlock: a failed BeginBlock either finds no
	// snapshot pinned (Commit always released it) or preserves the open
	// block's pin.
	if err := b.Store.BeginBlock(h); err != nil {
		return err
	}
	b.releaseSnap()
	b.snap = b.Store.Snapshot()
	b.overlay.reset()
	return nil
}

func (b *ShardedColeBackend) releaseSnap() {
	if b.snap != nil {
		b.snap.Release()
		b.snap = nil
	}
}

// Put implements StateBackend.
func (b *ShardedColeBackend) Put(addr types.Address, v types.Value) error {
	if err := b.Store.Put(addr, v); err != nil {
		return err
	}
	b.overlay.put(addr, v)
	return nil
}

// PutBatch implements BatchBackend.
func (b *ShardedColeBackend) PutBatch(updates []types.Update) error {
	if err := b.Store.PutBatch(updates); err != nil {
		return err
	}
	for _, u := range updates {
		b.overlay.put(u.Addr, u.Value)
	}
	return nil
}

// Get implements StateBackend.
func (b *ShardedColeBackend) Get(addr types.Address) (types.Value, bool, error) {
	if v, ok := b.overlay.get(addr); ok {
		return v, true, nil
	}
	if b.snap != nil {
		return b.snap.Get(addr)
	}
	return b.Store.Get(addr)
}

// Commit implements StateBackend. The overlay is dropped whatever the
// outcome (see ColeBackend.Commit).
func (b *ShardedColeBackend) Commit() (types.Hash, error) {
	root, err := b.Store.Commit()
	b.releaseSnap()
	b.overlay.reset()
	return root, err
}

// Close implements StateBackend.
func (b *ShardedColeBackend) Close() error {
	b.releaseSnap()
	return b.Store.Close()
}

// MPTBackend adapts the persistent Merkle Patricia Trie baseline.
type MPTBackend struct {
	DB      *kvstore.DB
	Trie    *mpt.Trie
	History *mpt.History
	height  uint64
	open    bool
}

// OpenMPT creates an MPT backend over a fresh or existing kvstore.
func OpenMPT(kvOpts kvstore.Options) (*MPTBackend, error) {
	db, err := kvstore.Open(kvOpts)
	if err != nil {
		return nil, err
	}
	tr := mpt.New(db, true)
	return &MPTBackend{DB: db, Trie: tr, History: mpt.NewHistory(tr)}, nil
}

// BeginBlock implements StateBackend.
func (b *MPTBackend) BeginBlock(h uint64) error {
	if b.open {
		return fmt.Errorf("chain: block %d still open", b.height)
	}
	b.height = h
	b.open = true
	return nil
}

// Put implements StateBackend.
func (b *MPTBackend) Put(addr types.Address, v types.Value) error { return b.Trie.Put(addr, v) }

// Get implements StateBackend.
func (b *MPTBackend) Get(addr types.Address) (types.Value, bool, error) { return b.Trie.Get(addr) }

// Commit implements StateBackend.
func (b *MPTBackend) Commit() (types.Hash, error) {
	if !b.open {
		return types.Hash{}, fmt.Errorf("chain: commit without block")
	}
	b.open = false
	if err := b.History.CommitBlock(b.height); err != nil {
		return types.Hash{}, err
	}
	return b.Trie.Root(), nil
}

// Close implements StateBackend.
func (b *MPTBackend) Close() error { return b.DB.Close() }

// LIPPBackend adapts the LIPP baseline: a persisted learned index with
// per-block roots.
type LIPPBackend struct {
	DB     *kvstore.DB
	Tree   *lipp.Tree
	height uint64
	open   bool
}

// OpenLIPP creates a LIPP backend.
func OpenLIPP(kvOpts kvstore.Options) (*LIPPBackend, error) {
	db, err := kvstore.Open(kvOpts)
	if err != nil {
		return nil, err
	}
	return &LIPPBackend{DB: db, Tree: lipp.New(db)}, nil
}

// BeginBlock implements StateBackend.
func (b *LIPPBackend) BeginBlock(h uint64) error {
	if b.open {
		return fmt.Errorf("chain: block %d still open", b.height)
	}
	b.height = h
	b.open = true
	return nil
}

// Put implements StateBackend.
func (b *LIPPBackend) Put(addr types.Address, v types.Value) error { return b.Tree.Put(addr, v) }

// Get implements StateBackend.
func (b *LIPPBackend) Get(addr types.Address) (types.Value, bool, error) { return b.Tree.Get(addr) }

// Commit implements StateBackend.
func (b *LIPPBackend) Commit() (types.Hash, error) {
	if !b.open {
		return types.Hash{}, fmt.Errorf("chain: commit without block")
	}
	b.open = false
	root := b.Tree.Root()
	var k [10]byte
	copy(k[:], "r/")
	binary.BigEndian.PutUint64(k[2:], b.height)
	if err := b.DB.Put(k[:], root[:]); err != nil {
		return types.Hash{}, err
	}
	return root, nil
}

// RootAt returns the persisted root of a block (provenance entry point).
func (b *LIPPBackend) RootAt(h uint64) (types.Hash, bool, error) {
	var k [10]byte
	copy(k[:], "r/")
	binary.BigEndian.PutUint64(k[2:], h)
	raw, ok, err := b.DB.Get(k[:])
	if err != nil || !ok {
		return types.Hash{}, ok, err
	}
	var out types.Hash
	copy(out[:], raw)
	return out, true, nil
}

// Close implements StateBackend.
func (b *LIPPBackend) Close() error { return b.DB.Close() }

// CMIBackend adapts the column-based Merkle index baseline.
type CMIBackend struct {
	DB     *kvstore.DB
	Store  *cmi.Store
	height uint64
	open   bool
}

// OpenCMI creates a CMI backend.
func OpenCMI(kvOpts kvstore.Options) (*CMIBackend, error) {
	db, err := kvstore.Open(kvOpts)
	if err != nil {
		return nil, err
	}
	return &CMIBackend{DB: db, Store: cmi.New(db)}, nil
}

// BeginBlock implements StateBackend.
func (b *CMIBackend) BeginBlock(h uint64) error {
	if b.open {
		return fmt.Errorf("chain: block %d still open", b.height)
	}
	b.height = h
	b.open = true
	return nil
}

// Put implements StateBackend.
func (b *CMIBackend) Put(addr types.Address, v types.Value) error {
	return b.Store.Put(addr, b.height, v)
}

// Get implements StateBackend.
func (b *CMIBackend) Get(addr types.Address) (types.Value, bool, error) { return b.Store.Get(addr) }

// Commit implements StateBackend.
func (b *CMIBackend) Commit() (types.Hash, error) {
	if !b.open {
		return types.Hash{}, fmt.Errorf("chain: commit without block")
	}
	b.open = false
	return b.Store.Root(), nil
}

// Close implements StateBackend.
func (b *CMIBackend) Close() error { return b.DB.Close() }
