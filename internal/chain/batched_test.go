package chain

import (
	"math/rand"
	"testing"

	"cole/internal/core"
	"cole/internal/types"
)

// txBlocks generates deterministic SmallBank-flavored blocks whose
// transactions read what earlier transactions in the same block wrote
// (SendPayment chains), stressing the batched pipeline's block-local
// overlay.
func txBlocks(seed int64, blocks, perBlock int) [][]Tx {
	r := rand.New(rand.NewSource(seed))
	out := make([][]Tx, blocks)
	acct := func() string { return string(rune('a' + r.Intn(8))) }
	for b := range out {
		txs := make([]Tx, perBlock)
		for i := range txs {
			switch r.Intn(4) {
			case 0:
				txs[i] = Tx{Kind: TxTransactSavings, A: acct(), Amount: uint64(r.Intn(100))}
			case 1:
				txs[i] = Tx{Kind: TxDepositChecking, A: acct(), Amount: uint64(r.Intn(100))}
			case 2:
				txs[i] = Tx{Kind: TxSendPayment, A: acct(), B: acct(), Amount: uint64(r.Intn(50))}
			default:
				txs[i] = Tx{Kind: TxWriteCheck, A: acct(), Amount: uint64(r.Intn(30))}
			}
		}
		out[b] = txs
	}
	return out
}

// TestBatchedHeadersMatchUnbatched executes the same transaction stream
// through a plain COLE backend and a Batched one: every header (Htx and
// Hstate) must be identical, because PutBatch is byte-compatible with
// sequential Put and the overlay preserves read-your-writes.
func TestBatchedHeadersMatchUnbatched(t *testing.T) {
	opts := func(dir string) core.Options {
		return core.Options{Dir: dir, MemCapacity: 64, SizeRatio: 2}
	}
	plain, err := OpenCole(opts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	inner, err := OpenCole(opts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	batched := NewBatched(inner)
	defer batched.Close()

	cp := New(plain, 0)
	cb := New(batched, 0)
	for _, txs := range txBlocks(7, 40, 25) {
		hp, err := cp.ExecuteBlock(txs)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := cb.ExecuteBlock(txs)
		if err != nil {
			t.Fatal(err)
		}
		if hp != hb {
			t.Fatalf("block %d: batched header %+v != unbatched %+v", hp.Height, hb, hp)
		}
	}
	if err := VerifyHeaderChain(cb.Headers()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedReadYourWrites checks a Get inside an open block sees the
// block's own buffered writes, and that the buffer resets across blocks.
func TestBatchedReadYourWrites(t *testing.T) {
	inner, err := OpenCole(core.Options{Dir: t.TempDir(), MemCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatched(inner)
	defer b.Close()

	addr := types.AddressFromString("x")
	if err := b.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Get(addr); ok {
		t.Fatal("unwritten address found")
	}
	if err := b.Put(addr, types.ValueFromUint64(1)); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := b.Get(addr); !ok || v != types.ValueFromUint64(1) {
		t.Fatalf("in-block read missed the buffered write: ok=%v v=%v", ok, v.Uint64())
	}
	if err := b.Put(addr, types.ValueFromUint64(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// Next block: the overlay is empty again but the store has the value.
	if err := b.BeginBlock(2); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := b.Get(addr); !ok || v != types.ValueFromUint64(2) {
		t.Fatalf("committed value lost after buffer reset: ok=%v v=%v", ok, v.Uint64())
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// A Put outside a block is rejected (the buffer has no target).
	if err := b.Put(addr, types.ValueFromUint64(3)); err == nil {
		t.Fatal("Put outside a block succeeded")
	}
}
