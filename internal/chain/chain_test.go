package chain_test

import (
	"testing"

	"cole/internal/chain"

	"cole/internal/core"
	"cole/internal/kvstore"
	"cole/internal/types"
	"cole/internal/workload"
)

func coleBackend(t *testing.T, async bool) *chain.ColeBackend {
	t.Helper()
	b, err := chain.OpenCole(core.Options{Dir: t.TempDir(), MemCapacity: 64, SizeRatio: 2, Fanout: 4, AsyncMerge: async})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func mptBackend(t *testing.T) *chain.MPTBackend {
	t.Helper()
	b, err := chain.OpenMPT(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func lippBackend(t *testing.T) *chain.LIPPBackend {
	t.Helper()
	b, err := chain.OpenLIPP(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func cmiBackend(t *testing.T) *chain.CMIBackend {
	t.Helper()
	b, err := chain.OpenCMI(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func TestTxHashDistinct(t *testing.T) {
	a := chain.Tx{Kind: chain.TxSendPayment, A: "x", B: "y", Amount: 5}
	b := a
	b.Amount = 6
	if a.Hash() == b.Hash() {
		t.Fatal("different amounts must hash differently")
	}
	c := a
	c.A, c.B = "xy", "" // concatenation ambiguity guard
	if a.Hash() == c.Hash() {
		t.Fatal("party-boundary ambiguity in tx hash")
	}
}

func TestHeaderChainLinksAndVerifies(t *testing.T) {
	b := coleBackend(t, false)
	c := chain.New(b, 0)
	gen := workload.NewSmallBank(1, 100)
	for i := 0; i < 20; i++ {
		if _, err := c.ExecuteBlock(gen.Block(10)); err != nil {
			t.Fatal(err)
		}
	}
	headers := c.Headers()
	if len(headers) != 20 {
		t.Fatalf("%d headers", len(headers))
	}
	if err := chain.VerifyHeaderChain(headers); err != nil {
		t.Fatal(err)
	}
	// Tampered chain detected.
	headers[7].Hstate[0] ^= 1
	if err := chain.VerifyHeaderChain(headers); err == nil {
		t.Fatal("tampered header must break the chain")
	}
}

// TestAllBackendsAgreeOnState executes the identical SmallBank workload on
// every engine and checks that the resulting latest balances agree: the
// executor is deterministic and engines only differ in storage layout.
func TestAllBackendsAgreeOnState(t *testing.T) {
	backends := map[string]chain.StateBackend{
		"cole":  coleBackend(t, false),
		"cole*": coleBackend(t, true),
		"mpt":   mptBackend(t),
		"lipp":  lippBackend(t),
		"cmi":   cmiBackend(t),
	}
	const blocks, txPerBlock, accounts = 30, 10, 50
	for name, b := range backends {
		gen := workload.NewSmallBank(7, accounts) // same seed everywhere
		c := chain.New(b, 0)
		for i := 0; i < blocks; i++ {
			if _, err := c.ExecuteBlock(gen.Block(txPerBlock)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	ref := backends["mpt"]
	for i := 0; i < accounts; i++ {
		acct := workload.ProvKey(i) // arbitrary id formatting; use real accounts below
		_ = acct
	}
	for i := 0; i < accounts; i++ {
		for _, addr := range []types.Address{
			chain.SavingsAddr(acctName(i)),
			chain.CheckingAddr(acctName(i)),
		} {
			want, wantOK, err := ref.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			for name, b := range backends {
				got, ok, err := b.Get(addr)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("%s disagrees with mpt on account %d (ok=%v/%v)", name, i, ok, wantOK)
				}
			}
		}
	}
}

func acctName(i int) string {
	return "acct" + pad6(i)
}

func pad6(i int) string {
	s := "000000"
	d := []byte(s)
	for p := 5; p >= 0 && i > 0; p-- {
		d[p] = byte('0' + i%10)
		i /= 10
	}
	return string(d)
}

func TestKVStoreMixesRespectWriteRatio(t *testing.T) {
	count := func(mix workload.Mix) (reads, writes int) {
		gen := workload.NewKVStore(3, 1000, mix)
		for i := 0; i < 1000; i++ {
			if gen.Next().Kind == chain.TxKVWrite {
				writes++
			} else {
				reads++
			}
		}
		return
	}
	if r, w := count(workload.ReadOnly); w != 0 || r != 1000 {
		t.Fatalf("RO mix produced %d writes", w)
	}
	if r, w := count(workload.WriteOnly); r != 0 || w != 1000 {
		t.Fatalf("WO mix produced %d reads", r)
	}
	if _, w := count(workload.ReadWrite); w < 400 || w > 600 {
		t.Fatalf("RW mix writes %d far from half", w)
	}
}

func TestKVStoreZipfSkew(t *testing.T) {
	gen := workload.NewKVStore(5, 10_000, workload.WriteOnly)
	freq := map[string]int{}
	for i := 0; i < 20_000; i++ {
		freq[gen.Next().A]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	// Zipf: the hottest key must dwarf the uniform expectation (2/key).
	if max < 100 {
		t.Fatalf("hottest key seen %d times; distribution not skewed", max)
	}
}

func TestSmallBankConservation(t *testing.T) {
	// SendPayment/Amalgamate/WriteCheck never create money beyond the
	// deposits: total balance equals total deposited via TransactSavings
	// and DepositChecking minus checks written. We verify the weaker but
	// meaningful invariant that balances never go negative (they are
	// unsigned: a bug would wrap and explode).
	b := coleBackend(t, false)
	c := chain.New(b, 0)
	gen := workload.NewSmallBank(11, 20)
	for i := 0; i < 50; i++ {
		if _, err := c.ExecuteBlock(gen.Block(20)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		for _, addr := range []types.Address{chain.SavingsAddr(acctName(i)), chain.CheckingAddr(acctName(i))} {
			v, ok, err := b.Get(addr)
			if err != nil {
				t.Fatal(err)
			}
			if ok && v.Uint64() > 1<<40 {
				t.Fatalf("balance %d implausible: unsigned wrap?", v.Uint64())
			}
		}
	}
}

func TestProvenanceWorkloadShape(t *testing.T) {
	gen := workload.NewProvenance(1, 100)
	load := gen.LoadPhase()
	if len(load) != 100 {
		t.Fatalf("load phase %d txs", len(load))
	}
	seen := map[string]bool{}
	for _, tx := range gen.Block(1000) {
		if tx.Kind != chain.TxKVWrite {
			t.Fatal("provenance workload must be write-only")
		}
		seen[tx.A] = true
	}
	if len(seen) < 50 || len(seen) > 100 {
		t.Fatalf("updates touched %d keys, want within base 100", len(seen))
	}
}

func TestBackendBlockDiscipline(t *testing.T) {
	for _, mk := range []func() chain.StateBackend{
		func() chain.StateBackend { return mptBackend(t) },
		func() chain.StateBackend { return lippBackend(t) },
		func() chain.StateBackend { return cmiBackend(t) },
	} {
		b := mk()
		if _, err := b.Commit(); err == nil {
			t.Fatal("commit without block must fail")
		}
		if err := b.BeginBlock(1); err != nil {
			t.Fatal(err)
		}
		if err := b.BeginBlock(2); err == nil {
			t.Fatal("nested begin must fail")
		}
		if _, err := b.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMPTBackendProvenanceThroughChain(t *testing.T) {
	b := mptBackend(t)
	c := chain.New(b, 0)
	gen := workload.NewProvenance(2, 10)
	if _, err := c.ExecuteBlock(gen.LoadPhase()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.ExecuteBlock(gen.Block(5)); err != nil {
			t.Fatal(err)
		}
	}
	addr := chain.KVAddr(workload.ProvKey(0))
	values, proofs, err := b.History.ProvQuery(addr, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 11 || len(proofs) != 11 {
		t.Fatalf("per-block prov answers: %d/%d", len(values), len(proofs))
	}
}

func TestLIPPRootAtPersists(t *testing.T) {
	b := lippBackend(t)
	c := chain.New(b, 0)
	gen := workload.NewKVStore(9, 50, workload.WriteOnly)
	var roots []types.Hash
	for i := 0; i < 10; i++ {
		hdr, err := c.ExecuteBlock(gen.Block(5))
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, hdr.Hstate)
	}
	for i, want := range roots {
		got, ok, err := b.RootAt(uint64(i + 1))
		if err != nil || !ok || got != want {
			t.Fatalf("block %d root: ok=%v err=%v", i+1, ok, err)
		}
	}
}
