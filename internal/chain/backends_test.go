package chain

import (
	"os"
	"path/filepath"
	"testing"

	"cole/internal/core"
	"cole/internal/run"
	"cole/internal/types"
)

// putN writes addrs 0..n-1 with value base+a into the open block.
func putN(t *testing.T, b StateBackend, n int, base uint64) {
	t.Helper()
	for a := 0; a < n; a++ {
		if err := b.Put(types.AddressFromUint64(uint64(a)), types.ValueFromUint64(base+uint64(a))); err != nil {
			t.Fatal(err)
		}
	}
}

// squatRunFiles creates directories on every file path the engine's next
// cascades would build runs at, so run.Build fails with EISDIR — the only
// way to force a mid-block Commit error without fault-injection hooks
// (tests run as root, so permission bits do not stop writes).
func squatRunFiles(t *testing.T, dir string, upToID uint64) {
	t.Helper()
	for id := uint64(0); id <= upToID; id++ {
		for _, f := range run.Files(id) {
			if err := os.Mkdir(filepath.Join(dir, f), 0o755); err != nil && !os.IsExist(err) {
				t.Fatal(err)
			}
		}
	}
}

// TestColeBackendCommitFailureDropsOverlay: when Engine.Commit fails, the
// block's writes never became durable, so between-block Gets (which fall
// through to the engine once the snapshot is released) must not keep
// serving them from the backend's write overlay.
func TestColeBackendCommitFailureDropsOverlay(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenCole(core.Options{Dir: dir, MemCapacity: 8, SizeRatio: 2, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Block 1 commits cleanly, below the L0 capacity.
	if err := b.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	putN(t, b, 4, 1000)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	// Block 2 fills L0 to capacity, so its Commit cascades — into the
	// squatted file paths — and fails.
	squatRunFiles(t, dir, 64)
	if err := b.BeginBlock(2); err != nil {
		t.Fatal(err)
	}
	putN(t, b, 4, 2000)
	if _, err := b.Commit(); err == nil {
		t.Fatal("commit with a failing cascade must error")
	}

	if b.snap != nil {
		t.Fatal("snapshot still pinned after Commit")
	}
	v, ok, err := b.Get(types.AddressFromUint64(0))
	if err != nil || !ok {
		t.Fatalf("get after failed commit: ok=%v err=%v", ok, err)
	}
	if v.Uint64() != 1000 {
		t.Fatalf("read %d after failed commit, want last durable 1000 (overlay leaked the failed block's write)", v.Uint64())
	}
}

// TestColeBackendBeginBlockErrorSnapshotDiscipline: a nested BeginBlock
// keeps the open block's snapshot pinned (its isolation must survive the
// caller's mistake), while a rejected BeginBlock between blocks leaves no
// snapshot pinned — Commit released it whatever its outcome, so no stale
// pin can keep retired run files on disk until Close.
func TestColeBackendBeginBlockErrorSnapshotDiscipline(t *testing.T) {
	b, err := OpenCole(core.Options{Dir: t.TempDir(), MemCapacity: 64, SizeRatio: 2, Fanout: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	putN(t, b, 4, 1000)
	if err := b.BeginBlock(2); err == nil {
		t.Fatal("nested BeginBlock must fail")
	}
	if b.snap == nil {
		t.Fatal("open block's snapshot dropped by a rejected nested BeginBlock")
	}
	if v, ok, err := b.Get(types.AddressFromUint64(1)); err != nil || !ok || v.Uint64() != 1001 {
		t.Fatalf("mid-block get after nested BeginBlock: v=%v ok=%v err=%v", v, ok, err)
	}
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if b.snap != nil {
		t.Fatal("snapshot still pinned after Commit")
	}
	// Non-monotone height: rejected, still no snapshot pinned, reads serve
	// the committed state.
	if err := b.BeginBlock(1); err == nil {
		t.Fatal("non-monotone BeginBlock must fail")
	}
	if b.snap != nil {
		t.Fatal("snapshot pinned after rejected height")
	}
	if v, ok, err := b.Get(types.AddressFromUint64(1)); err != nil || !ok || v.Uint64() != 1001 {
		t.Fatalf("get after rejected BeginBlock: v=%v ok=%v err=%v", v, ok, err)
	}
}

// TestShardedColeBackendCommitFailureDropsOverlay is the sharded twin of
// the ColeBackend overlay test.
func TestShardedColeBackendCommitFailureDropsOverlay(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenShardedCole(core.Options{Dir: dir, MemCapacity: 8, SizeRatio: 2, Fanout: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	if err := b.BeginBlock(1); err != nil {
		t.Fatal(err)
	}
	putN(t, b, 8, 1000)
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}

	// Squat the run paths of every shard subdirectory.
	shards, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	squatted := 0
	for _, sd := range shards {
		if st, err := os.Stat(sd); err == nil && st.IsDir() {
			squatRunFiles(t, sd, 64)
			squatted++
		}
	}
	if squatted == 0 {
		t.Fatal("no shard directories found to squat")
	}

	// Drive blocks until a cascade fires in some shard and Commit fails.
	failed := false
	for h := uint64(2); h <= 12 && !failed; h++ {
		if err := b.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		putN(t, b, 8, h*1000)
		if _, err := b.Commit(); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no shard cascade failed; raise the block count")
	}
	if b.snap != nil {
		t.Fatal("snapshot still pinned after failed Commit")
	}
	// Between blocks the backend must agree with the store (the durable
	// state), not with the overlay holding the failed block's writes.
	for a := 0; a < 8; a++ {
		addr := types.AddressFromUint64(uint64(a))
		want, wok, werr := b.Store.Get(addr)
		got, ok, err := b.Get(addr)
		if werr != nil || err != nil || !wok || !ok {
			t.Fatalf("addr %d after failed commit: store ok=%v err=%v, backend ok=%v err=%v", a, wok, werr, ok, err)
		}
		if got != want {
			t.Fatalf("addr %d: backend %d != durable %d (overlay leaked the failed block's write)", a, got.Uint64(), want.Uint64())
		}
	}
}
