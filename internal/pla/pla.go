// Package pla implements the ε-bounded piecewise linear models of COLE's
// index files (paper §4.1, Definition 1, Algorithm 2).
//
// A model M = ⟨sl, ic, kmin, pmax⟩ predicts the position of a compound key
// K ≥ kmin as ppred = min(ic + sl·(K − kmin), pmax) with the guarantee
// |ppred − preal| ≤ ε. Keys are 224-bit integers (types.U256); the x
// coordinate of a point is the key's delta from the segment anchor kmin,
// converted to float64 by the *same* conversion at build and query time, so
// the bound verified during construction holds on disk.
//
// Substitution note (DESIGN.md §4): the paper computes segments with
// O'Rourke's online parallelogram/convex-hull algorithm (optimal PLA). We
// use the greedy shrinking-cone method (FITing-tree): also streaming with
// O(1) state, also ε-bounded, and at most 2× the optimal segment count.
// The builder applies a 0.75-position safety margin so that float64
// rounding plus final round-to-nearest can never exceed ε.
package pla

import (
	"encoding/binary"
	"fmt"
	"math"

	"cole/internal/types"
)

// ModelSize is the on-disk encoding width of a model:
// kmin (28) ‖ slope (8) ‖ intercept (8) ‖ pmax (8).
const ModelSize = types.CompoundKeySize + 8 + 8 + 8

// Model is an ε-bounded linear segment (Definition 1).
type Model struct {
	KMin      types.CompoundKey // first key covered
	Slope     float64
	Intercept float64 // predicted position at kmin
	PMax      int64   // last position covered by this model
}

// Predict returns the model's position estimate for key k (the paper's
// ppred = min(K·sl + ic, pmax), with x anchored at kmin and clamped to be
// non-negative). k must satisfy k ≥ kmin; the caller checks coverage.
func (m Model) Predict(k types.CompoundKey) int64 {
	x := types.KeyDeltaFloat(k, m.KMin)
	p := m.Intercept + m.Slope*x
	// Clamp in float space: keys far beyond the segment (e.g. a query key
	// between segments) can push p past the int64 range, and a float→int
	// conversion would overflow before an integer clamp could catch it.
	if p >= float64(m.PMax) || math.IsNaN(p) {
		return m.PMax
	}
	if p <= 0 {
		return 0
	}
	return int64(math.Round(p))
}

// Encode writes the 52-byte model record into dst.
func (m Model) Encode(dst []byte) {
	m.KMin.PutBytes(dst)
	off := types.CompoundKeySize
	binary.BigEndian.PutUint64(dst[off:], math.Float64bits(m.Slope))
	binary.BigEndian.PutUint64(dst[off+8:], math.Float64bits(m.Intercept))
	binary.BigEndian.PutUint64(dst[off+16:], uint64(m.PMax))
}

// DecodeModel parses a record written by Encode.
func DecodeModel(b []byte) (Model, error) {
	if len(b) < ModelSize {
		return Model{}, fmt.Errorf("pla: model record too short: %d bytes", len(b))
	}
	k, err := types.DecodeCompoundKey(b)
	if err != nil {
		return Model{}, err
	}
	off := types.CompoundKeySize
	return Model{
		KMin:      k,
		Slope:     math.Float64frombits(binary.BigEndian.Uint64(b[off:])),
		Intercept: math.Float64frombits(binary.BigEndian.Uint64(b[off+8:])),
		PMax:      int64(binary.BigEndian.Uint64(b[off+16:])),
	}, nil
}

// Builder consumes a stream of strictly increasing (key, position) points
// and emits ε-bounded models (the paper's BuildModel, Algorithm 2). It
// keeps O(1) state: the current segment anchor and the feasible slope cone.
type Builder struct {
	eps  float64 // effective error budget (ε − safety margin)
	emit func(Model) error

	started bool
	kmin    types.CompoundKey
	lastKey types.CompoundKey
	y0      float64 // position of the anchor point
	pmax    int64
	loSlope float64
	hiSlope float64
	count   int64 // points in current segment
	total   int64 // points consumed overall
	models  int64 // models emitted
}

// NewBuilder creates a builder with error bound eps ≥ 1 that invokes emit
// for each completed model, in key order.
func NewBuilder(eps int, emit func(Model) error) (*Builder, error) {
	if eps < 1 {
		return nil, fmt.Errorf("pla: epsilon %d < 1", eps)
	}
	return &Builder{eps: float64(eps) - 0.75, emit: emit}, nil
}

// Add feeds the next point. Keys must be strictly increasing; positions must
// be strictly increasing as well (they are file offsets of sorted entries).
func (b *Builder) Add(k types.CompoundKey, pos int64) error {
	if b.started && k.Cmp(b.lastKey) <= 0 {
		return fmt.Errorf("pla: keys not strictly increasing: %v after %v", k, b.lastKey)
	}
	if b.total > 0 && pos <= b.pmax {
		return fmt.Errorf("pla: positions not strictly increasing: %d after %d", pos, b.pmax)
	}
	b.total++
	if !b.started {
		b.startSegment(k, pos)
		return nil
	}

	x := types.KeyDeltaFloat(k, b.kmin)
	y := float64(pos)
	if x == 0 {
		// Distinct keys whose 224-bit delta rounds to the same float64
		// (possible only for astronomically wide segments). The prediction
		// at x = 0 is y0 for every slope, so the point fits iff
		// |y − y0| ≤ ε; otherwise the segment must end here.
		if math.Abs(y-b.y0) <= b.eps {
			b.lastKey, b.pmax = k, pos
			b.count++
			return nil
		}
		if err := b.emitSegment(); err != nil {
			return err
		}
		b.startSegment(k, pos)
		return nil
	}

	// Shrinking cone: slopes that keep this point within ±ε of the line
	// anchored at (0, y0).
	lo := (y - b.eps - b.y0) / x
	hi := (y + b.eps - b.y0) / x
	newLo, newHi := b.loSlope, b.hiSlope
	if lo > newLo {
		newLo = lo
	}
	if hi < newHi {
		newHi = hi
	}
	if newLo <= newHi {
		b.loSlope, b.hiSlope = newLo, newHi
		b.lastKey, b.pmax = k, pos
		b.count++
		return nil
	}
	if err := b.emitSegment(); err != nil {
		return err
	}
	b.startSegment(k, pos)
	return nil
}

func (b *Builder) startSegment(k types.CompoundKey, pos int64) {
	b.started = true
	b.kmin, b.lastKey = k, k
	b.y0 = float64(pos)
	b.pmax = pos
	b.loSlope, b.hiSlope = 0, math.Inf(1)
	b.count = 1
}

func (b *Builder) emitSegment() error {
	sl := 0.0
	switch {
	case math.IsInf(b.hiSlope, 1):
		// Single point, or all extra points at x = 0: any slope works for
		// the covered points; 0 keeps predictions at y0.
		sl = b.loSlope
	default:
		sl = (b.loSlope + b.hiSlope) / 2
	}
	m := Model{KMin: b.kmin, Slope: sl, Intercept: b.y0, PMax: b.pmax}
	b.models++
	return b.emit(m)
}

// Finish flushes the trailing segment. The builder must not be reused.
func (b *Builder) Finish() error {
	if !b.started {
		return nil
	}
	b.started = false
	return b.emitSegment()
}

// Total returns the number of points consumed.
func (b *Builder) Total() int64 { return b.total }

// Models returns the number of models emitted so far (excluding any open
// segment).
func (b *Builder) Models() int64 { return b.models }

// SearchPage performs the predecessor binary search of Algorithm 7 over a
// page of encoded models: it returns the rightmost model with kmin ≤ key
// and its index within the page. ok is false when key precedes every model
// on the page.
func SearchPage(page []byte, n int, key types.CompoundKey) (Model, int, bool) {
	lo, hi := 0, n-1
	found := -1
	var keyBytes [types.CompoundKeySize]byte
	key.PutBytes(keyBytes[:])
	for lo <= hi {
		mid := (lo + hi) / 2
		off := mid * ModelSize
		if cmpKeyBytes(page[off:off+types.CompoundKeySize], keyBytes[:]) <= 0 {
			found = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if found < 0 {
		return Model{}, -1, false
	}
	m, err := DecodeModel(page[found*ModelSize:])
	if err != nil {
		return Model{}, -1, false
	}
	return m, found, true
}

// FirstKMin decodes the kmin of the i-th model on a page without decoding
// the whole record.
func FirstKMin(page []byte, i int) (types.CompoundKey, error) {
	return types.DecodeCompoundKey(page[i*ModelSize:])
}

func cmpKeyBytes(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
