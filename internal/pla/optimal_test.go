package pla

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cole/internal/types"
)

func buildOptimal(t *testing.T, eps int, keys []types.CompoundKey) []Model {
	t.Helper()
	var models []Model
	b, err := NewOptimalBuilder(eps, func(m Model) error { models = append(models, m); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := b.Add(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if b.Total() != int64(len(keys)) {
		t.Fatalf("Total = %d, want %d", b.Total(), len(keys))
	}
	if b.Models() != int64(len(models)) {
		t.Fatalf("Models = %d, emitted %d", b.Models(), len(models))
	}
	return models
}

func TestOptimalLinearStreamOneModel(t *testing.T) {
	keys := seqKeys(21, 10000)
	models := buildOptimal(t, 34, keys)
	if len(models) != 1 {
		t.Fatalf("linear data needs 1 model, got %d", len(models))
	}
	checkBound(t, 34, keys, models)
}

func TestOptimalBoundHolds(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	var keys []types.CompoundKey
	for a := 0; a < 400; a++ {
		addr := types.AddressFromUint64(uint64(a))
		blk := uint64(r.Intn(50))
		for v := 0; v < 1+r.Intn(6); v++ {
			keys = append(keys, types.CompoundKey{Addr: addr, Blk: blk})
			blk += 1 + uint64(r.Intn(30))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, eps := range []int{1, 4, 34} {
		models := buildOptimal(t, eps, keys)
		checkBound(t, eps, keys, models)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	// The optimal algorithm's whole point: fewer or equal segments for the
	// same ε on the same stream.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		var keys []types.CompoundKey
		a := types.AddressFromUint64(uint64(trial))
		blk := uint64(0)
		for i := 0; i < 5000; i++ {
			blk += 1 + uint64(r.Intn(20))
			keys = append(keys, types.CompoundKey{Addr: a, Blk: blk})
		}
		greedy := buildAll(t, 8, keys)
		optimal := buildOptimal(t, 8, keys)
		if len(optimal) > len(greedy) {
			t.Fatalf("trial %d: optimal %d segments > greedy %d", trial, len(optimal), len(greedy))
		}
		checkBound(t, 8, keys, optimal)
	}
}

func TestOptimalSinglePointAndEmpty(t *testing.T) {
	models := buildOptimal(t, 34, seqKeys(22, 1))
	if len(models) != 1 || models[0].Predict(seqKeys(22, 1)[0]) != 0 {
		t.Fatalf("single point: %+v", models)
	}
	if got := buildOptimal(t, 34, nil); len(got) != 0 {
		t.Fatal("empty stream must emit nothing")
	}
}

func TestOptimalRejectsDisorder(t *testing.T) {
	b, _ := NewOptimalBuilder(8, func(Model) error { return nil })
	a := types.AddressFromUint64(1)
	_ = b.Add(types.CompoundKey{Addr: a, Blk: 10}, 0)
	if err := b.Add(types.CompoundKey{Addr: a, Blk: 10}, 1); err == nil {
		t.Fatal("duplicate key must be rejected")
	}
	if _, err := NewOptimalBuilder(0, func(Model) error { return nil }); err == nil {
		t.Fatal("eps 0 must be rejected")
	}
}

func TestOptimalFloatCollapsedDeltasSplit(t *testing.T) {
	var base types.Address
	keys := []types.CompoundKey{{Addr: base, Blk: 0}}
	var far types.Address
	far[0] = 0x80
	for i := 0; i < 100; i++ {
		keys = append(keys, types.CompoundKey{Addr: far, Blk: uint64(i)})
	}
	models := buildOptimal(t, 5, keys)
	checkBound(t, 5, keys, models)
}

func TestOptimalBoundProperty(t *testing.T) {
	f := func(seed int64, rawEps uint8, nAddrs uint8) bool {
		eps := int(rawEps%64) + 1
		na := int(nAddrs%20) + 1
		r := rand.New(rand.NewSource(seed))
		keySet := make(map[types.CompoundKey]bool)
		for a := 0; a < na; a++ {
			addr := types.AddressFromUint64(r.Uint64() % 1000)
			for v := 0; v < 1+r.Intn(30); v++ {
				keySet[types.CompoundKey{Addr: addr, Blk: r.Uint64() % 10000}] = true
			}
		}
		keys := make([]types.CompoundKey, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

		var models []Model
		b, err := NewOptimalBuilder(eps, func(m Model) error { models = append(models, m); return nil })
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := b.Add(k, int64(i)); err != nil {
				return false
			}
		}
		if err := b.Finish(); err != nil {
			return false
		}
		for i, k := range keys {
			m := coveringModel(models, k)
			if d := m.Predict(k) - int64(i); d > int64(eps) || d < -int64(eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalVsGreedyEquivalentQueries(t *testing.T) {
	// Both builders must produce indexes that answer the same predecessor
	// queries (through the covering-model + Predict path).
	r := rand.New(rand.NewSource(77))
	a := types.AddressFromUint64(3)
	var keys []types.CompoundKey
	blk := uint64(0)
	for i := 0; i < 3000; i++ {
		blk += 1 + uint64(r.Intn(15))
		keys = append(keys, types.CompoundKey{Addr: a, Blk: blk})
	}
	greedy := buildAll(t, 16, keys)
	optimal := buildOptimal(t, 16, keys)
	for trial := 0; trial < 500; trial++ {
		q := types.CompoundKey{Addr: a, Blk: uint64(r.Intn(int(blk)))}
		for _, models := range [][]Model{greedy, optimal} {
			m := coveringModel(models, q)
			pred := m.Predict(q)
			// True predecessor rank:
			idx := sort.Search(len(keys), func(i int) bool { return q.Less(keys[i]) }) - 1
			if idx < 0 {
				continue
			}
			if d := pred - int64(idx); d > 16+1 || d < -(16+1) {
				t.Fatalf("prediction off by %d for query between trained keys", d)
			}
		}
	}
}

func TestOptimalNeverWorseThanGreedyMultiAddress(t *testing.T) {
	// Regression: same-address version clusters collapse to one float64 x
	// far from the anchor; they must tighten the vertical window, not
	// split the segment (an early implementation split on every one).
	r := rand.New(rand.NewSource(9))
	var keys []types.CompoundKey
	seen := map[types.CompoundKey]bool{}
	for len(keys) < 5000 {
		addr := types.AddressFromUint64(r.Uint64() % 1250)
		blk := uint64(r.Intn(64))
		for v := 0; v < 1+r.Intn(8) && len(keys) < 5000; v++ {
			k := types.CompoundKey{Addr: addr, Blk: blk}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
			blk += 1 + uint64(r.Intn(16))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	greedy := buildAll(t, 34, keys)
	optimal := buildOptimal(t, 34, keys)
	if len(optimal) > len(greedy) {
		t.Fatalf("optimal %d segments > greedy %d on multi-address stream", len(optimal), len(greedy))
	}
	checkBound(t, 34, keys, optimal)
}
