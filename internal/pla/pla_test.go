package pla

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cole/internal/types"
)

// buildAll runs the builder over sorted points and returns the models.
func buildAll(t *testing.T, eps int, keys []types.CompoundKey) []Model {
	t.Helper()
	var models []Model
	b, err := NewBuilder(eps, func(m Model) error { models = append(models, m); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := b.Add(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if b.Total() != int64(len(keys)) {
		t.Fatalf("Total = %d, want %d", b.Total(), len(keys))
	}
	return models
}

// checkBound asserts the Definition 1 guarantee for every point: the model
// covering the key predicts within ±eps of the true position.
func checkBound(t *testing.T, eps int, keys []types.CompoundKey, models []Model) {
	t.Helper()
	if len(models) == 0 && len(keys) > 0 {
		t.Fatal("no models emitted")
	}
	for i, k := range keys {
		m := coveringModel(models, k)
		pred := m.Predict(k)
		if d := pred - int64(i); d > int64(eps) || d < -int64(eps) {
			t.Fatalf("key %d: |pred %d - real %d| > ε=%d (model %+v)", i, pred, i, eps, m)
		}
	}
}

// coveringModel finds the rightmost model with kmin ≤ k (what SearchPage
// does over the on-disk layout).
func coveringModel(models []Model, k types.CompoundKey) Model {
	idx := sort.Search(len(models), func(i int) bool { return k.Cmp(models[i].KMin) < 0 })
	if idx == 0 {
		return models[0]
	}
	return models[idx-1]
}

func seqKeys(addrSeed uint64, n int) []types.CompoundKey {
	keys := make([]types.CompoundKey, n)
	a := types.AddressFromUint64(addrSeed)
	for i := range keys {
		keys[i] = types.CompoundKey{Addr: a, Blk: uint64(i)}
	}
	return keys
}

func TestLinearStreamUsesOneModel(t *testing.T) {
	keys := seqKeys(1, 10000)
	models := buildAll(t, 34, keys)
	if len(models) != 1 {
		t.Fatalf("perfectly linear data needs 1 model, got %d", len(models))
	}
	checkBound(t, 34, keys, models)
	if models[0].PMax != int64(len(keys)-1) {
		t.Fatalf("PMax = %d, want %d", models[0].PMax, len(keys)-1)
	}
}

func TestStridedStreamStaysLinear(t *testing.T) {
	// Versions every 7 blocks: still one line.
	a := types.AddressFromUint64(9)
	keys := make([]types.CompoundKey, 5000)
	for i := range keys {
		keys[i] = types.CompoundKey{Addr: a, Blk: uint64(i * 7)}
	}
	models := buildAll(t, 34, keys)
	if len(models) != 1 {
		t.Fatalf("strided linear data needs 1 model, got %d", len(models))
	}
	checkBound(t, 34, keys, models)
}

func TestMultiAddressStream(t *testing.T) {
	// The realistic run shape: many addresses, a few versions each, huge key
	// gaps between addresses. The bound must hold everywhere.
	r := rand.New(rand.NewSource(42))
	var keys []types.CompoundKey
	for a := 0; a < 300; a++ {
		addr := types.AddressFromUint64(uint64(a))
		nv := 1 + r.Intn(8)
		blk := uint64(r.Intn(100))
		for v := 0; v < nv; v++ {
			keys = append(keys, types.CompoundKey{Addr: addr, Blk: blk})
			blk += 1 + uint64(r.Intn(50))
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	models := buildAll(t, 34, keys)
	checkBound(t, 34, keys, models)
	if len(models) >= len(keys) {
		t.Fatalf("learned index degenerated: %d models for %d keys", len(models), len(keys))
	}
}

func TestSmallEpsilon(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var keys []types.CompoundKey
	for a := 0; a < 100; a++ {
		keys = append(keys, types.CompoundKey{Addr: types.AddressFromUint64(uint64(a)), Blk: uint64(r.Intn(1000))})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, eps := range []int{1, 2, 5} {
		models := buildAll(t, eps, keys)
		checkBound(t, eps, keys, models)
	}
}

func TestEpsilonBelowOneRejected(t *testing.T) {
	if _, err := NewBuilder(0, func(Model) error { return nil }); err == nil {
		t.Fatal("eps 0 must be rejected")
	}
}

func TestSinglePoint(t *testing.T) {
	keys := seqKeys(2, 1)
	models := buildAll(t, 34, keys)
	if len(models) != 1 {
		t.Fatalf("got %d models", len(models))
	}
	if p := models[0].Predict(keys[0]); p != 0 {
		t.Fatalf("single point predicts %d, want 0", p)
	}
}

func TestEmptyStream(t *testing.T) {
	models := buildAll(t, 34, nil)
	if len(models) != 0 {
		t.Fatal("empty stream must emit no models")
	}
}

func TestNonIncreasingKeysRejected(t *testing.T) {
	b, _ := NewBuilder(34, func(Model) error { return nil })
	k := types.CompoundKey{Addr: types.AddressFromUint64(1), Blk: 5}
	if err := b.Add(k, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(k, 1); err == nil {
		t.Fatal("duplicate key must be rejected")
	}
	b2, _ := NewBuilder(34, func(Model) error { return nil })
	_ = b2.Add(types.CompoundKey{Addr: types.AddressFromUint64(2), Blk: 5}, 0)
	if err := b2.Add(types.CompoundKey{Addr: types.AddressFromUint64(2), Blk: 4}, 1); err == nil {
		t.Fatal("decreasing key must be rejected")
	}
}

func TestNonIncreasingPositionsRejected(t *testing.T) {
	b, _ := NewBuilder(34, func(Model) error { return nil })
	a := types.AddressFromUint64(3)
	_ = b.Add(types.CompoundKey{Addr: a, Blk: 1}, 5)
	if err := b.Add(types.CompoundKey{Addr: a, Blk: 2}, 5); err == nil {
		t.Fatal("repeated position must be rejected")
	}
}

func TestIdenticalFloatDeltaSplits(t *testing.T) {
	// Construct keys whose deltas from the anchor collapse to the same
	// float64 but whose positions differ by more than ε: builder must split
	// rather than emit an invalid model. Deltas ~2^160 with +1 offsets all
	// round to the same float64.
	var base types.Address // zero address
	keys := []types.CompoundKey{{Addr: base, Blk: 0}}
	var far types.Address
	far[0] = 0x80 // delta ≈ 2^223
	for i := 0; i < 200; i++ {
		k := types.CompoundKey{Addr: far, Blk: uint64(i)} // all ≈ same float delta
		keys = append(keys, k)
	}
	models := buildAll(t, 5, keys)
	checkBound(t, 5, keys, models)
	if len(models) < 2 {
		t.Fatalf("expected split on float-collapsed deltas, got %d models", len(models))
	}
}

func TestPredictClampsToPMax(t *testing.T) {
	m := Model{KMin: types.CompoundKey{Addr: types.AddressFromUint64(1)}, Slope: 10, Intercept: 0, PMax: 7}
	k := types.CompoundKey{Addr: types.AddressFromUint64(1), Blk: 1000}
	if p := m.Predict(k); p != 7 {
		t.Fatalf("Predict = %d, want clamp at PMax 7", p)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := Model{
		KMin:      types.CompoundKey{Addr: types.AddressFromUint64(77), Blk: 123},
		Slope:     0.5,
		Intercept: 42.25,
		PMax:      99,
	}
	buf := make([]byte, ModelSize)
	m.Encode(buf)
	got, err := DecodeModel(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := DecodeModel(buf[:10]); err == nil {
		t.Fatal("short record must error")
	}
}

func TestSearchPage(t *testing.T) {
	// Lay out 10 models with kmin = blk 10,20,...,100 on one page.
	a := types.AddressFromUint64(5)
	page := make([]byte, 10*ModelSize)
	for i := 0; i < 10; i++ {
		m := Model{KMin: types.CompoundKey{Addr: a, Blk: uint64((i + 1) * 10)}, PMax: int64(i)}
		m.Encode(page[i*ModelSize:])
	}
	// Exact hit.
	m, idx, ok := SearchPage(page, 10, types.CompoundKey{Addr: a, Blk: 50})
	if !ok || idx != 4 || m.KMin.Blk != 50 {
		t.Fatalf("exact: ok=%v idx=%d kmin=%d", ok, idx, m.KMin.Blk)
	}
	// Between models → predecessor.
	m, idx, ok = SearchPage(page, 10, types.CompoundKey{Addr: a, Blk: 55})
	if !ok || idx != 4 || m.KMin.Blk != 50 {
		t.Fatalf("between: ok=%v idx=%d kmin=%d", ok, idx, m.KMin.Blk)
	}
	// Before first → not found.
	if _, _, ok := SearchPage(page, 10, types.CompoundKey{Addr: a, Blk: 5}); ok {
		t.Fatal("key before first model must report !ok")
	}
	// After last → last model.
	m, idx, ok = SearchPage(page, 10, types.CompoundKey{Addr: a, Blk: 1 << 40})
	if !ok || idx != 9 || m.KMin.Blk != 100 {
		t.Fatalf("after: ok=%v idx=%d kmin=%d", ok, idx, m.KMin.Blk)
	}
	// FirstKMin helper.
	k, err := FirstKMin(page, 3)
	if err != nil || k.Blk != 40 {
		t.Fatalf("FirstKMin = %v, %v", k, err)
	}
}

func TestSegmentCountReasonableOnRandomData(t *testing.T) {
	// ε=34 should compress ~1 model per ≥ 2ε points on average-ish data;
	// here we just assert meaningful compression (≥ 8× fewer models than
	// keys) for uniformly random block gaps of a single address.
	r := rand.New(rand.NewSource(11))
	a := types.AddressFromUint64(8)
	keys := make([]types.CompoundKey, 20000)
	blk := uint64(0)
	for i := range keys {
		blk += 1 + uint64(r.Intn(10))
		keys[i] = types.CompoundKey{Addr: a, Blk: blk}
	}
	models := buildAll(t, 34, keys)
	if len(models)*8 > len(keys) {
		t.Fatalf("poor compression: %d models for %d keys", len(models), len(keys))
	}
	checkBound(t, 34, keys, models)
}

func TestBoundProperty(t *testing.T) {
	// Property: for arbitrary sorted key sets and ε ∈ {1..64}, every point
	// prediction is within ε (testing/quick drives the randomness).
	f := func(seed int64, rawEps uint8, nAddrs uint8) bool {
		eps := int(rawEps%64) + 1
		na := int(nAddrs%20) + 1
		r := rand.New(rand.NewSource(seed))
		keySet := make(map[types.CompoundKey]bool)
		for a := 0; a < na; a++ {
			addr := types.AddressFromUint64(r.Uint64() % 1000)
			for v := 0; v < 1+r.Intn(30); v++ {
				keySet[types.CompoundKey{Addr: addr, Blk: r.Uint64() % 10000}] = true
			}
		}
		keys := make([]types.CompoundKey, 0, len(keySet))
		for k := range keySet {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })

		var models []Model
		b, err := NewBuilder(eps, func(m Model) error { models = append(models, m); return nil })
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := b.Add(k, int64(i)); err != nil {
				return false
			}
		}
		if err := b.Finish(); err != nil {
			return false
		}
		for i, k := range keys {
			m := coveringModel(models, k)
			if d := m.Predict(k) - int64(i); d > int64(eps) || d < -int64(eps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSlopesAreFinite(t *testing.T) {
	// Adjacent keys with gap 1 and positions with gap 1: slope 1 exactly,
	// never NaN/Inf in emitted models.
	keys := seqKeys(4, 100)
	for _, m := range buildAll(t, 1, keys) {
		if math.IsNaN(m.Slope) || math.IsInf(m.Slope, 0) {
			t.Fatalf("bad slope %v", m.Slope)
		}
		if math.IsNaN(m.Intercept) || math.IsInf(m.Intercept, 0) {
			t.Fatalf("bad intercept %v", m.Intercept)
		}
	}
}
