package pla

import (
	"math"

	"cole/internal/types"
)

// OptimalBuilder is the paper's exact segment construction (Algorithm 2 /
// O'Rourke [40]): it maintains the convex hulls of the ±ε constraint
// points and the feasible slope interval they induce, emitting a segment
// only when no single line can cover the next point — the minimal number
// of ε-bounded segments for the stream.
//
// It produces at most as many models as the default greedy Builder (which
// is guaranteed within 2× of optimal) at the cost of O(segment) buffering
// for the final float-safety verification; the greedy Builder keeps O(1)
// state. Compare both with the ablation benchmarks. The emitted models are
// interchangeable: same encoding, same query path.
type OptimalBuilder struct {
	eps    float64 // constraint half-width with float-safety margin
	epsInt int64   // integer bound verified on emit
	emit   func(Model) error

	started bool
	kmin    types.CompoundKey
	lastKey types.CompoundKey
	pts     []optPoint
	hullL   []optPoint // upper hull of (x, y−ε): candidates bounding ρmax
	hullU   []optPoint // lower hull of (x, y+ε): candidates bounding ρmin
	rhoMin  float64
	rhoMax  float64
	// Support pairs realizing the extreme slopes; their intersection is a
	// point every feasible line can rotate around (O'Rourke's pivot).
	maxA, maxB optPoint
	minA, minB optPoint
	// Same-x cluster state: distinct keys whose deltas collapse to one
	// float64 (far from the anchor, a whole address's versions share an
	// x). They impose a vertical constraint — the line's value at x must
	// lie in the intersection of their ±ε intervals — rather than slope
	// bounds.
	clusterLo, clusterHi float64

	total  int64
	models int64
}

type optPoint struct {
	x, y float64
}

// NewOptimalBuilder mirrors NewBuilder for the optimal algorithm.
func NewOptimalBuilder(eps int, emit func(Model) error) (*OptimalBuilder, error) {
	b, err := NewBuilder(eps, emit) // reuse validation
	if err != nil {
		return nil, err
	}
	_ = b
	return &OptimalBuilder{eps: float64(eps) - 0.75, epsInt: int64(eps), emit: emit}, nil
}

// Add feeds the next point; keys and positions must be strictly
// increasing.
func (b *OptimalBuilder) Add(k types.CompoundKey, pos int64) error {
	if b.started && k.Cmp(b.lastKey) <= 0 {
		return errNonIncreasingKey(k, b.lastKey)
	}
	b.total++
	if !b.started {
		b.start(k, pos)
		return nil
	}
	x := types.KeyDeltaFloat(k, b.kmin)
	y := float64(pos)
	last := b.pts[len(b.pts)-1]

	p := optPoint{x: x, y: y}
	pl := optPoint{x: x, y: y - b.eps}
	pu := optPoint{x: x, y: y + b.eps}

	// Candidate slope bounds induced by the new point against the hulls
	// (entries at the same x impose no slope constraint and are skipped):
	// ρmax ≤ min over earlier lower points L_i of slope(L_i, pu);
	// ρmin ≥ max over earlier upper points U_i of slope(U_i, pl).
	candMax, supMax := minSlopeTo(b.hullL, pu)
	candMin, supMin := maxSlopeTo(b.hullU, pl)

	newMax, newMin := b.rhoMax, b.rhoMin
	ma, mb := b.maxA, b.maxB
	na, nb := b.minA, b.minB
	if candMax < newMax {
		newMax = candMax
		ma, mb = supMax, pu
	}
	if candMin > newMin {
		newMin = candMin
		na, nb = supMin, pl
	}
	sameX := x == last.x
	if newMin > newMax ||
		(sameX && (pl.y > b.clusterHi || pu.y < b.clusterLo)) {
		if err := b.flush(); err != nil {
			return err
		}
		b.start(k, pos)
		return nil
	}
	b.rhoMax, b.rhoMin = newMax, newMin
	b.maxA, b.maxB = ma, mb
	b.minA, b.minB = na, nb
	b.pts = append(b.pts, p)
	b.lastKey = k
	if sameX {
		// Tighten the vertical window. Positions increase, so the new
		// point's lower bound is the binding one for future slope
		// candidates: replace the same-x hull top on the lower hulls; the
		// earlier (smaller) upper bound stays binding on hullU.
		if pl.y > b.clusterLo {
			b.clusterLo = pl.y
		}
		if pu.y < b.clusterHi {
			b.clusterHi = pu.y
		}
		if top := b.hullL[len(b.hullL)-1]; top.x == x && pl.y > top.y {
			b.hullL = b.hullL[:len(b.hullL)-1]
			pushUpperHull(&b.hullL, pl)
		}
		return nil
	}
	b.clusterLo, b.clusterHi = pl.y, pu.y
	pushUpperHull(&b.hullL, pl)
	pushLowerHull(&b.hullU, pu)
	return nil
}

func (b *OptimalBuilder) start(k types.CompoundKey, pos int64) {
	b.started = true
	b.kmin, b.lastKey = k, k
	p := optPoint{x: 0, y: float64(pos)}
	b.pts = b.pts[:0]
	b.pts = append(b.pts, p)
	b.hullL = b.hullL[:0]
	b.hullL = append(b.hullL, optPoint{x: 0, y: p.y - b.eps})
	b.hullU = b.hullU[:0]
	b.hullU = append(b.hullU, optPoint{x: 0, y: p.y + b.eps})
	b.rhoMin, b.rhoMax = math.Inf(-1), math.Inf(1)
	b.clusterLo, b.clusterHi = p.y-b.eps, p.y+b.eps
}

// flush emits the current segment, verifying the integer error bound and
// falling back to greedy splitting if float geometry ever drifts past it.
func (b *OptimalBuilder) flush() error {
	if !b.started || len(b.pts) == 0 {
		return nil
	}
	pmax := int64(b.pts[len(b.pts)-1].y)
	var m Model
	switch {
	case len(b.pts) == 1:
		m = Model{KMin: b.kmin, Slope: 0, Intercept: b.pts[0].y, PMax: pmax}
	case math.IsInf(b.rhoMax, 1) && math.IsInf(b.rhoMin, -1):
		// Every point shares one x (a single collapsed cluster): a flat
		// line through the vertical window's center covers them all.
		m = Model{KMin: b.kmin, Slope: 0, Intercept: (b.clusterLo + b.clusterHi) / 2, PMax: pmax}
	default:
		slope := (b.rhoMin + b.rhoMax) / 2
		if math.IsInf(b.rhoMax, 1) {
			slope = b.rhoMin
		}
		if math.IsInf(b.rhoMin, -1) {
			slope = b.rhoMax
		}
		ox, oy := b.pivot()
		m = Model{KMin: b.kmin, Slope: slope, Intercept: oy - slope*ox, PMax: pmax}
	}
	if b.verified(m) {
		b.models++
		return b.emit(m)
	}
	// Float drift beyond the safety margin: re-segment the buffered
	// points greedily over their stored deltas, which enforces the bound
	// point by point.
	return b.greedyOverDeltas()
}

// greedyOverDeltas re-segments the buffered points using the cone method
// over their float deltas, emitting models anchored at sub-offsets of the
// original kmin. Because model prediction only uses float deltas from
// KMin, anchoring every fallback model at the segment's kmin with an
// adjusted intercept is exact.
func (b *OptimalBuilder) greedyOverDeltas() error {
	i := 0
	for i < len(b.pts) {
		x0, y0 := b.pts[i].x, b.pts[i].y
		lo, hi := 0.0, math.Inf(1)
		j := i + 1
		for j < len(b.pts) {
			dx := b.pts[j].x - x0
			if dx == 0 {
				// Collapsed delta: the line value at x0 is y0; the point
				// fits iff within ε of it (the greedy Builder's rule).
				if math.Abs(b.pts[j].y-y0) <= b.eps {
					j++
					continue
				}
				break
			}
			l := (b.pts[j].y - b.eps - y0) / dx
			h := (b.pts[j].y + b.eps - y0) / dx
			nl, nh := lo, hi
			if l > nl {
				nl = l
			}
			if h < nh {
				nh = h
			}
			if nl > nh {
				break
			}
			lo, hi = nl, nh
			j++
		}
		slope := lo
		if !math.IsInf(hi, 1) {
			slope = (lo + hi) / 2
		}
		// Anchor at the segment's kmin: intercept shifts by slope·x0.
		m := Model{KMin: b.kmin, Slope: slope, Intercept: y0 - slope*x0, PMax: int64(b.pts[j-1].y)}
		b.models++
		if err := b.emit(m); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// pivot returns the intersection of the two extreme lines — a point all
// feasible lines pass near (the parallelogram center of Figure 5).
func (b *OptimalBuilder) pivot() (float64, float64) {
	// Extreme lines: through (maxA, maxB) with slope ρmax and through
	// (minA, minB) with slope ρmin.
	if math.IsInf(b.rhoMax, 1) || math.IsInf(b.rhoMin, -1) {
		return b.pts[0].x, b.pts[0].y
	}
	// y = ρmax (x − maxA.x) + maxA.y ; y = ρmin (x − minA.x) + minA.y
	denom := b.rhoMax - b.rhoMin
	if denom == 0 {
		return b.maxA.x, b.maxA.y
	}
	x := (b.rhoMax*b.maxA.x - b.rhoMin*b.minA.x + b.minA.y - b.maxA.y) / denom
	y := b.rhoMax*(x-b.maxA.x) + b.maxA.y
	return x, y
}

// verified checks the emitted model against every buffered point using
// the exact query-path arithmetic.
func (b *OptimalBuilder) verified(m Model) bool {
	for _, p := range b.pts {
		pred := m.Intercept + m.Slope*p.x
		if pred >= float64(m.PMax) {
			pred = float64(m.PMax)
		}
		if pred <= 0 {
			pred = 0
		}
		if d := int64(math.Round(pred)) - int64(p.y); d > b.epsInt || d < -b.epsInt {
			return false
		}
	}
	return true
}

// Finish flushes the trailing segment.
func (b *OptimalBuilder) Finish() error {
	if !b.started {
		return nil
	}
	err := b.flush()
	b.started = false
	return err
}

// Total returns points consumed; Models returns models emitted.
func (b *OptimalBuilder) Total() int64  { return b.total }
func (b *OptimalBuilder) Models() int64 { return b.models }

// ---- geometry helpers ----

func cross(o, a, p optPoint) float64 {
	return (a.x-o.x)*(p.y-o.y) - (a.y-o.y)*(p.x-o.x)
}

// pushUpperHull maintains the upper convex hull (left-to-right, right
// turns only) — the candidate set maximizing slopes seen from the right.
func pushUpperHull(h *[]optPoint, p optPoint) {
	s := *h
	for len(s) >= 2 && cross(s[len(s)-2], s[len(s)-1], p) >= 0 {
		s = s[:len(s)-1]
	}
	*h = append(s, p)
}

// pushLowerHull maintains the lower convex hull (left turns only).
func pushLowerHull(h *[]optPoint, p optPoint) {
	s := *h
	for len(s) >= 2 && cross(s[len(s)-2], s[len(s)-1], p) <= 0 {
		s = s[:len(s)-1]
	}
	*h = append(s, p)
}

// minSlopeTo returns the minimum slope from any hull vertex to target and
// the achieving vertex (slope function over a convex chain is unimodal; a
// linear scan is robust and hulls stay small).
func minSlopeTo(hull []optPoint, target optPoint) (float64, optPoint) {
	best := math.Inf(1)
	var bp optPoint
	for _, hp := range hull {
		dx := target.x - hp.x
		if dx <= 0 {
			continue
		}
		s := (target.y - hp.y) / dx
		if s < best {
			best = s
			bp = hp
		}
	}
	return best, bp
}

// maxSlopeTo returns the maximum slope from any hull vertex to target.
func maxSlopeTo(hull []optPoint, target optPoint) (float64, optPoint) {
	best := math.Inf(-1)
	var bp optPoint
	for _, hp := range hull {
		dx := target.x - hp.x
		if dx <= 0 {
			continue
		}
		s := (target.y - hp.y) / dx
		if s > best {
			best = s
			bp = hp
		}
	}
	return best, bp
}

func errNonIncreasingKey(k, last types.CompoundKey) error {
	return &orderError{k: k, last: last}
}

type orderError struct{ k, last types.CompoundKey }

func (e *orderError) Error() string {
	return "pla: keys not strictly increasing: " + e.k.String() + " after " + e.last.String()
}
