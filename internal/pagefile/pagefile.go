// Package pagefile provides the page-granular file layer underneath COLE's
// value and index files.
//
// Files are organized into fixed-size pages (default 4 KiB) holding
// fixed-size records that never straddle a page boundary; the tail of each
// page is zero padding. This layout is what makes the paper's ε rule work
// (§4.1): with perPage = ⌊pageSize/recordSize⌋ records per page and
// ε = ⌊perPage/2⌋, a learned model's prediction error of ±ε keeps the true
// record within one page of the predicted page, so a lookup touches at most
// two pages.
//
// Writers stream append-only (runs are immutable once built) and coalesce
// many pages per write syscall; point readers go through a small per-file
// LRU page cache and count disk reads vs cache hits so benchmarks can
// report IO cost. Sequential consumers (level merges, exports, reshard)
// instead use SequentialReader, which reads large readahead windows into
// a private buffer and never touches the shared LRU — a background
// compaction cannot evict the working set of concurrent point readers.
package pagefile

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"cole/internal/vfs"
)

// DefaultPageSize is the disk page granularity assumed by the paper.
const DefaultPageSize = 4096

// DefaultWriteBufferPages is how many pages a Writer coalesces per write
// syscall by default (~1 MiB at the default page size).
const DefaultWriteBufferPages = 256

// DefaultReadaheadPages is the default SequentialReader window (~1 MiB
// at the default page size).
const DefaultReadaheadPages = 256

// PerPage returns how many recSize-byte records fit in a page.
func PerPage(pageSize, recSize int) int {
	if recSize <= 0 || pageSize < recSize {
		return 0
	}
	return pageSize / recSize
}

// Epsilon returns the paper's error bound for a given record layout:
// half the records per page (§4.1).
func Epsilon(pageSize, recSize int) int {
	return PerPage(pageSize, recSize) / 2
}

// IOStats counts physical page reads and cache hits on the point-read
// path, plus pages fetched by sequential readers (which bypass the
// cache entirely).
type IOStats struct {
	PageReads int64
	CacheHits int64
	// SeqReads counts pages fetched by SequentialReaders: streaming IO
	// that never touched (or evicted from) the LRU cache.
	SeqReads int64
}

// Writer appends fixed-size records to a page-padded file, coalescing
// several pages into each write syscall.
type Writer struct {
	fs       vfs.FS
	f        vfs.File
	path     string
	pageSize int
	recSize  int
	perPage  int
	buf      []byte // bufPages × pageSize, written in one syscall when full
	bufPages int
	inBuf    int // complete pages buffered
	inPage   int // records in the page currently being filled
	count    int64
	closed   bool
}

// CreateWriter creates (truncating) a record file for streaming writes
// with the default write-coalescing buffer.
func CreateWriter(path string, pageSize, recSize int) (*Writer, error) {
	return CreateWriterSize(path, pageSize, recSize, 0)
}

// CreateWriterSize creates a record file whose writes are coalesced into
// bufPages-page syscalls (0 selects DefaultWriteBufferPages; 1 restores
// the one-syscall-per-page behavior). The on-disk bytes are identical
// for every buffer size.
func CreateWriterSize(path string, pageSize, recSize, bufPages int) (*Writer, error) {
	return CreateWriterSizeFS(vfs.OS{}, path, pageSize, recSize, bufPages)
}

// CreateWriterSizeFS is CreateWriterSize on an explicit filesystem.
func CreateWriterSizeFS(fsys vfs.FS, path string, pageSize, recSize, bufPages int) (*Writer, error) {
	if PerPage(pageSize, recSize) < 1 {
		return nil, fmt.Errorf("pagefile: record size %d does not fit page size %d", recSize, pageSize)
	}
	if bufPages < 1 {
		bufPages = DefaultWriteBufferPages
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{
		fs:       fsys,
		f:        f,
		path:     path,
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  PerPage(pageSize, recSize),
		buf:      make([]byte, bufPages*pageSize),
		bufPages: bufPages,
	}, nil
}

// pageStart returns the offset of the in-progress page inside the buffer.
func (w *Writer) pageStart() int { return w.inBuf * w.pageSize }

// Append writes one record; rec must be exactly the record size.
func (w *Writer) Append(rec []byte) error {
	if w.closed {
		return fmt.Errorf("pagefile: append to finished writer %s", w.path)
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("pagefile: record length %d, want %d", len(rec), w.recSize)
	}
	copy(w.buf[w.pageStart()+w.inPage*w.recSize:], rec)
	w.inPage++
	w.count++
	if w.inPage == w.perPage {
		return w.sealPage()
	}
	return nil
}

// sealPage zero-pads the in-progress page, marks it complete, and issues
// the coalesced write when the buffer is full.
func (w *Writer) sealPage() error {
	if w.inPage == 0 {
		return nil
	}
	// Zero the padding after the last record (the buffer is reused).
	start := w.pageStart()
	for i := start + w.inPage*w.recSize; i < start+w.pageSize; i++ {
		w.buf[i] = 0
	}
	w.inPage = 0
	w.inBuf++
	if w.inBuf == w.bufPages {
		return w.flush()
	}
	return nil
}

// flush writes the buffered complete pages in one syscall.
func (w *Writer) flush() error {
	if w.inBuf == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf[:w.inBuf*w.pageSize]); err != nil {
		return err
	}
	w.inBuf = 0
	return nil
}

// Count returns the number of records appended so far (including padding
// slots consumed by Pad).
func (w *Writer) Count() int64 { return w.count }

// Pad fills the remainder of the current page with zero records so the
// next Append starts on a fresh page. COLE's index files pad each model
// layer to a page boundary (Algorithm 3 builds the index layer by layer,
// with the top layer occupying exactly the last page).
func (w *Writer) Pad() error {
	if w.closed {
		return fmt.Errorf("pagefile: pad on finished writer %s", w.path)
	}
	if w.inPage == 0 {
		return nil
	}
	w.count += int64(w.perPage - w.inPage)
	return w.sealPage()
}

// Finish flushes the trailing partial page and buffered pages, syncs and
// closes the file.
func (w *Writer) Finish() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.sealPage(); err != nil {
		_ = w.f.Close()
		return err
	}
	if err := w.flush(); err != nil {
		_ = w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort closes and removes a partially written file. Errors are
// deliberately discarded: Abort runs on paths already failing, and the
// file is about to be deleted (or swept as an orphan on reopen).
func (w *Writer) Abort() {
	if !w.closed {
		w.closed = true
		_ = w.f.Close()
	}
	_ = w.fs.Remove(w.path)
}

// File reads records from a page-padded file through an LRU page cache.
// It is safe for concurrent readers.
type File struct {
	f        vfs.File
	path     string
	pageSize int
	recSize  int
	perPage  int
	count    int64

	mu    sync.Mutex
	cache *lruCache

	pageReads atomic.Int64
	cacheHits atomic.Int64
	seqReads  atomic.Int64
}

// Open opens a record file for reading. count is the number of records (the
// run metadata records it; the file itself is page-padded so its size alone
// is ambiguous). cachePages bounds the per-file page cache (≥1).
func Open(path string, pageSize, recSize int, count int64, cachePages int) (*File, error) {
	return OpenFS(vfs.OS{}, path, pageSize, recSize, count, cachePages)
}

// OpenFS is Open on an explicit filesystem.
func OpenFS(fsys vfs.FS, path string, pageSize, recSize int, count int64, cachePages int) (*File, error) {
	if PerPage(pageSize, recSize) < 1 {
		return nil, fmt.Errorf("pagefile: record size %d does not fit page size %d", recSize, pageSize)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	perPage := PerPage(pageSize, recSize)
	needPages := (count + int64(perPage) - 1) / int64(perPage)
	if st.Size() < needPages*int64(pageSize) {
		_ = f.Close()
		return nil, fmt.Errorf("pagefile: %s has %d bytes, need %d for %d records", path, st.Size(), needPages*int64(pageSize), count)
	}
	if cachePages < 1 {
		cachePages = 1
	}
	return &File{
		f:        f,
		path:     path,
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  perPage,
		count:    count,
		cache:    newLRUCache(cachePages),
	}, nil
}

// Count returns the number of records in the file.
func (r *File) Count() int64 { return r.count }

// PerPage returns records per page.
func (r *File) PerPage() int { return r.perPage }

// NumPages returns the number of pages holding records.
func (r *File) NumPages() int64 {
	return (r.count + int64(r.perPage) - 1) / int64(r.perPage)
}

// PageOf returns the page index containing record i.
func (r *File) PageOf(i int64) int64 { return i / int64(r.perPage) }

// PageBounds returns the half-open record-index range [lo, hi) stored on a
// page.
func (r *File) PageBounds(page int64) (lo, hi int64) {
	lo = page * int64(r.perPage)
	hi = lo + int64(r.perPage)
	if hi > r.count {
		hi = r.count
	}
	return lo, hi
}

// page returns the cached contents of a page, reading it if necessary.
func (r *File) pageData(page int64) ([]byte, error) {
	if page < 0 || page >= r.NumPages() {
		return nil, fmt.Errorf("pagefile: page %d out of range [0,%d) in %s", page, r.NumPages(), r.path)
	}
	r.mu.Lock()
	if data, ok := r.cache.get(page); ok {
		r.mu.Unlock()
		r.cacheHits.Add(1)
		return data, nil
	}
	r.mu.Unlock()

	data := make([]byte, r.pageSize)
	if _, err := r.f.ReadAt(data, page*int64(r.pageSize)); err != nil {
		return nil, fmt.Errorf("pagefile: read page %d of %s: %w", page, r.path, err)
	}
	r.pageReads.Add(1)

	r.mu.Lock()
	r.cache.put(page, data)
	r.mu.Unlock()
	return data, nil
}

// Record copies record i into dst (len ≥ recSize) and returns dst[:recSize].
// Use RecordView when the caller decodes immediately and never retains
// the bytes: Record pays a second copy (cached page → dst) for the right
// to hold the buffer indefinitely.
func (r *File) Record(i int64, dst []byte) ([]byte, error) {
	data, err := r.RecordView(i)
	if err != nil {
		return nil, err
	}
	n := copy(dst, data)
	return dst[:n], nil
}

// RecordAt reads record i into dst (len == recSize) with one positional
// syscall, bypassing — and never populating — the LRU page cache. This
// is the merge planner's probe path: planning a partitioned merge
// touches a few hundred scattered records per source and must not evict
// concurrent point readers' working set. Accounted under SeqReads with
// the other cache-bypassing reads.
func (r *File) RecordAt(i int64, dst []byte) error {
	if i < 0 || i >= r.count {
		return fmt.Errorf("pagefile: record %d out of range [0,%d) in %s", i, r.count, r.path)
	}
	if len(dst) != r.recSize {
		return fmt.Errorf("pagefile: record buffer length %d, want %d", len(dst), r.recSize)
	}
	off := r.PageOf(i)*int64(r.pageSize) + (i%int64(r.perPage))*int64(r.recSize)
	if _, err := r.f.ReadAt(dst, off); err != nil {
		return fmt.Errorf("pagefile: read record %d of %s: %w", i, r.path, err)
	}
	r.seqReads.Add(1)
	return nil
}

// RecordView returns record i as a view into the cached page: no copy.
// The bytes are immutable (pages are never modified once cached) but the
// caller must not mutate them; decode before issuing writes that could
// recycle buffers elsewhere, and prefer Record for anything retained.
func (r *File) RecordView(i int64) ([]byte, error) {
	if i < 0 || i >= r.count {
		return nil, fmt.Errorf("pagefile: record %d out of range [0,%d) in %s", i, r.count, r.path)
	}
	data, err := r.pageData(r.PageOf(i))
	if err != nil {
		return nil, err
	}
	off := int(i%int64(r.perPage)) * r.recSize
	return data[off : off+r.recSize], nil
}

// PageRecords returns the raw records of a page as a single byte slice of
// length numRecords*recSize (a view of the cached page; callers must not
// mutate it).
func (r *File) PageRecords(page int64) ([]byte, int, error) {
	data, err := r.pageData(page)
	if err != nil {
		return nil, 0, err
	}
	lo, hi := r.PageBounds(page)
	n := int(hi - lo)
	return data[:n*r.recSize], n, nil
}

// Stats returns cumulative IO counters.
func (r *File) Stats() IOStats {
	return IOStats{
		PageReads: r.pageReads.Load(),
		CacheHits: r.cacheHits.Load(),
		SeqReads:  r.seqReads.Load(),
	}
}

// SequentialReader streams a file's records in position order through a
// private readahead buffer: each refill fetches up to `window` pages in
// one ReadAt syscall, and nothing ever touches the File's LRU cache or
// mutex. This is the read side of the compaction pipeline — a background
// level merge scanning whole runs neither evicts the working set of
// concurrent point readers nor serializes against them. Safe to use
// concurrently with point reads on the same File (ReadAt carries no
// shared offset); each SequentialReader itself is single-consumer.
type SequentialReader struct {
	f         *File
	buf       []byte
	window    int   // pages per refill
	startPage int64 // first page currently buffered
	pages     int   // valid pages in buf
	pos       int64 // next record index
	limit     int64 // first record index beyond the readable range
	endPage   int64 // first page beyond the readable range
}

// SequentialReader returns a streaming reader over all records, reading
// readaheadPages pages per syscall (0 selects DefaultReadaheadPages).
func (r *File) SequentialReader(readaheadPages int) *SequentialReader {
	return r.SequentialReaderRange(readaheadPages, 0, r.count)
}

// SequentialReaderRange returns a streaming reader over records
// [lo, hi), with the readahead window clipped to the span's pages: the
// sub-iterator of a partitioned merge never fetches pages beyond its
// cut. readaheadPages 0 selects DefaultReadaheadPages.
func (r *File) SequentialReaderRange(readaheadPages int, lo, hi int64) *SequentialReader {
	if readaheadPages < 1 {
		readaheadPages = DefaultReadaheadPages
	}
	if lo < 0 {
		lo = 0
	}
	if hi > r.count {
		hi = r.count
	}
	if lo >= hi {
		return &SequentialReader{f: r, window: 1}
	}
	endPage := r.PageOf(hi-1) + 1
	if spanPages := endPage - r.PageOf(lo); int64(readaheadPages) > spanPages {
		readaheadPages = int(spanPages)
	}
	return &SequentialReader{f: r, window: readaheadPages, pos: lo, limit: hi, endPage: endPage}
}

// Next returns a view of the next record (valid until the following Next
// call refills the buffer); ok is false after the last record.
func (s *SequentialReader) Next() (rec []byte, ok bool, err error) {
	if s.pos >= s.limit {
		return nil, false, nil
	}
	page := s.pos / int64(s.f.perPage)
	if s.buf == nil || page < s.startPage || page >= s.startPage+int64(s.pages) {
		if err := s.refill(page); err != nil {
			return nil, false, err
		}
	}
	off := int(page-s.startPage)*s.f.pageSize + int(s.pos%int64(s.f.perPage))*s.f.recSize
	s.pos++
	return s.buf[off : off+s.f.recSize], true, nil
}

// refill loads `window` pages starting at page in one syscall.
func (s *SequentialReader) refill(page int64) error {
	if s.buf == nil {
		s.buf = make([]byte, s.window*s.f.pageSize)
	}
	n := int64(s.window)
	if rest := s.endPage - page; rest < n {
		n = rest
	}
	if _, err := s.f.f.ReadAt(s.buf[:n*int64(s.f.pageSize)], page*int64(s.f.pageSize)); err != nil {
		return fmt.Errorf("pagefile: sequential read pages [%d,%d) of %s: %w", page, page+n, s.f.path, err)
	}
	s.f.seqReads.Add(n)
	s.startPage = page
	s.pages = int(n)
	return nil
}

// Close releases the file handle.
func (r *File) Close() error { return r.f.Close() }

// Path returns the underlying file path.
func (r *File) Path() string { return r.path }

// lruCache is a minimal LRU keyed by page number.
type lruCache struct {
	cap   int
	items map[int64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        int64
	data       []byte
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[int64]*lruNode, capacity)}
}

func (c *lruCache) get(key int64) ([]byte, bool) {
	n, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.moveFront(n)
	return n.data, true
}

func (c *lruCache) put(key int64, data []byte) {
	if n, ok := c.items[key]; ok {
		n.data = data
		c.moveFront(n)
		return
	}
	n := &lruNode{key: key, data: data}
	c.items[key] = n
	c.pushFront(n)
	if len(c.items) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.key)
	}
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
