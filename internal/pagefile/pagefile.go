// Package pagefile provides the page-granular file layer underneath COLE's
// value and index files.
//
// Files are organized into fixed-size pages (default 4 KiB) holding
// fixed-size records that never straddle a page boundary; the tail of each
// page is zero padding. This layout is what makes the paper's ε rule work
// (§4.1): with perPage = ⌊pageSize/recordSize⌋ records per page and
// ε = ⌊perPage/2⌋, a learned model's prediction error of ±ε keeps the true
// record within one page of the predicted page, so a lookup touches at most
// two pages.
//
// Writers stream append-only (runs are immutable once built); readers go
// through a small per-file LRU page cache and count disk reads vs cache
// hits so benchmarks can report IO cost.
package pagefile

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the disk page granularity assumed by the paper.
const DefaultPageSize = 4096

// PerPage returns how many recSize-byte records fit in a page.
func PerPage(pageSize, recSize int) int {
	if recSize <= 0 || pageSize < recSize {
		return 0
	}
	return pageSize / recSize
}

// Epsilon returns the paper's error bound for a given record layout:
// half the records per page (§4.1).
func Epsilon(pageSize, recSize int) int {
	return PerPage(pageSize, recSize) / 2
}

// IOStats counts physical page reads and cache hits.
type IOStats struct {
	PageReads int64
	CacheHits int64
}

// Writer appends fixed-size records to a page-padded file.
type Writer struct {
	f        *os.File
	path     string
	pageSize int
	recSize  int
	perPage  int
	page     []byte
	inPage   int
	count    int64
	closed   bool
}

// CreateWriter creates (truncating) a record file for streaming writes.
func CreateWriter(path string, pageSize, recSize int) (*Writer, error) {
	if PerPage(pageSize, recSize) < 1 {
		return nil, fmt.Errorf("pagefile: record size %d does not fit page size %d", recSize, pageSize)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{
		f:        f,
		path:     path,
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  PerPage(pageSize, recSize),
		page:     make([]byte, pageSize),
	}, nil
}

// Append writes one record; rec must be exactly the record size.
func (w *Writer) Append(rec []byte) error {
	if w.closed {
		return fmt.Errorf("pagefile: append to finished writer %s", w.path)
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("pagefile: record length %d, want %d", len(rec), w.recSize)
	}
	copy(w.page[w.inPage*w.recSize:], rec)
	w.inPage++
	w.count++
	if w.inPage == w.perPage {
		return w.flushPage()
	}
	return nil
}

func (w *Writer) flushPage() error {
	if w.inPage == 0 {
		return nil
	}
	// Zero the padding after the last record (page buffer is reused).
	for i := w.inPage * w.recSize; i < w.pageSize; i++ {
		w.page[i] = 0
	}
	if _, err := w.f.Write(w.page); err != nil {
		return err
	}
	w.inPage = 0
	return nil
}

// Count returns the number of records appended so far (including padding
// slots consumed by Pad).
func (w *Writer) Count() int64 { return w.count }

// Pad fills the remainder of the current page with zero records so the
// next Append starts on a fresh page. COLE's index files pad each model
// layer to a page boundary (Algorithm 3 builds the index layer by layer,
// with the top layer occupying exactly the last page).
func (w *Writer) Pad() error {
	if w.closed {
		return fmt.Errorf("pagefile: pad on finished writer %s", w.path)
	}
	if w.inPage == 0 {
		return nil
	}
	// Zero the padding slots explicitly: the page buffer is reused across
	// pages and flushPage only zeroes past w.inPage.
	for i := w.inPage * w.recSize; i < w.pageSize; i++ {
		w.page[i] = 0
	}
	w.count += int64(w.perPage - w.inPage)
	w.inPage = w.perPage
	return w.flushPage()
}

// Finish flushes the trailing partial page, syncs and closes the file.
func (w *Writer) Finish() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flushPage(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort closes and removes a partially written file.
func (w *Writer) Abort() {
	if !w.closed {
		w.closed = true
		w.f.Close()
	}
	os.Remove(w.path)
}

// File reads records from a page-padded file through an LRU page cache.
// It is safe for concurrent readers.
type File struct {
	f        *os.File
	path     string
	pageSize int
	recSize  int
	perPage  int
	count    int64

	mu    sync.Mutex
	cache *lruCache

	pageReads atomic.Int64
	cacheHits atomic.Int64
}

// Open opens a record file for reading. count is the number of records (the
// run metadata records it; the file itself is page-padded so its size alone
// is ambiguous). cachePages bounds the per-file page cache (≥1).
func Open(path string, pageSize, recSize int, count int64, cachePages int) (*File, error) {
	if PerPage(pageSize, recSize) < 1 {
		return nil, fmt.Errorf("pagefile: record size %d does not fit page size %d", recSize, pageSize)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	perPage := PerPage(pageSize, recSize)
	needPages := (count + int64(perPage) - 1) / int64(perPage)
	if st.Size() < needPages*int64(pageSize) {
		f.Close()
		return nil, fmt.Errorf("pagefile: %s has %d bytes, need %d for %d records", path, st.Size(), needPages*int64(pageSize), count)
	}
	if cachePages < 1 {
		cachePages = 1
	}
	return &File{
		f:        f,
		path:     path,
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  perPage,
		count:    count,
		cache:    newLRUCache(cachePages),
	}, nil
}

// Count returns the number of records in the file.
func (r *File) Count() int64 { return r.count }

// PerPage returns records per page.
func (r *File) PerPage() int { return r.perPage }

// NumPages returns the number of pages holding records.
func (r *File) NumPages() int64 {
	return (r.count + int64(r.perPage) - 1) / int64(r.perPage)
}

// PageOf returns the page index containing record i.
func (r *File) PageOf(i int64) int64 { return i / int64(r.perPage) }

// PageBounds returns the half-open record-index range [lo, hi) stored on a
// page.
func (r *File) PageBounds(page int64) (lo, hi int64) {
	lo = page * int64(r.perPage)
	hi = lo + int64(r.perPage)
	if hi > r.count {
		hi = r.count
	}
	return lo, hi
}

// page returns the cached contents of a page, reading it if necessary.
func (r *File) pageData(page int64) ([]byte, error) {
	if page < 0 || page >= r.NumPages() {
		return nil, fmt.Errorf("pagefile: page %d out of range [0,%d) in %s", page, r.NumPages(), r.path)
	}
	r.mu.Lock()
	if data, ok := r.cache.get(page); ok {
		r.mu.Unlock()
		r.cacheHits.Add(1)
		return data, nil
	}
	r.mu.Unlock()

	data := make([]byte, r.pageSize)
	if _, err := r.f.ReadAt(data, page*int64(r.pageSize)); err != nil {
		return nil, fmt.Errorf("pagefile: read page %d of %s: %w", page, r.path, err)
	}
	r.pageReads.Add(1)

	r.mu.Lock()
	r.cache.put(page, data)
	r.mu.Unlock()
	return data, nil
}

// Record copies record i into dst (len ≥ recSize) and returns dst[:recSize].
func (r *File) Record(i int64, dst []byte) ([]byte, error) {
	if i < 0 || i >= r.count {
		return nil, fmt.Errorf("pagefile: record %d out of range [0,%d) in %s", i, r.count, r.path)
	}
	data, err := r.pageData(r.PageOf(i))
	if err != nil {
		return nil, err
	}
	off := int(i%int64(r.perPage)) * r.recSize
	n := copy(dst, data[off:off+r.recSize])
	return dst[:n], nil
}

// PageRecords returns the raw records of a page as a single byte slice of
// length numRecords*recSize (a view of the cached page; callers must not
// mutate it).
func (r *File) PageRecords(page int64) ([]byte, int, error) {
	data, err := r.pageData(page)
	if err != nil {
		return nil, 0, err
	}
	lo, hi := r.PageBounds(page)
	n := int(hi - lo)
	return data[:n*r.recSize], n, nil
}

// Stats returns cumulative IO counters.
func (r *File) Stats() IOStats {
	return IOStats{PageReads: r.pageReads.Load(), CacheHits: r.cacheHits.Load()}
}

// Close releases the file handle.
func (r *File) Close() error { return r.f.Close() }

// Path returns the underlying file path.
func (r *File) Path() string { return r.path }

// lruCache is a minimal LRU keyed by page number.
type lruCache struct {
	cap   int
	items map[int64]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        int64
	data       []byte
	prev, next *lruNode
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, items: make(map[int64]*lruNode, capacity)}
}

func (c *lruCache) get(key int64) ([]byte, bool) {
	n, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.moveFront(n)
	return n.data, true
}

func (c *lruCache) put(key int64, data []byte) {
	if n, ok := c.items[key]; ok {
		n.data = data
		c.moveFront(n)
		return
	}
	n := &lruNode{key: key, data: data}
	c.items[key] = n
	c.pushFront(n)
	if len(c.items) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.key)
	}
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
