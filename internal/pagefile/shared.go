package pagefile

import (
	"fmt"
	"os"

	"cole/internal/vfs"
)

// SharedWriter is a record file created at its final page-padded size so
// several SegmentWriters can fill disjoint, page-aligned record ranges
// concurrently — the value file of a partitioned run build, one segment
// per key-range span. Records land through positional writes at their
// final offsets; because segments never share a page, no two writers
// touch the same byte, and the finished file is byte-identical to one
// streamed through a single Writer.
type SharedWriter struct {
	fs       vfs.FS
	f        vfs.File
	path     string
	pageSize int
	recSize  int
	perPage  int
	count    int64 // total records the file will hold
	closed   bool
}

// CreateShared creates (truncating) a record file pre-sized for count
// records.
func CreateShared(path string, pageSize, recSize int, count int64) (*SharedWriter, error) {
	return CreateSharedFS(vfs.OS{}, path, pageSize, recSize, count)
}

// CreateSharedFS is CreateShared on an explicit filesystem.
func CreateSharedFS(fsys vfs.FS, path string, pageSize, recSize int, count int64) (*SharedWriter, error) {
	perPage := PerPage(pageSize, recSize)
	if perPage < 1 {
		return nil, fmt.Errorf("pagefile: record size %d does not fit page size %d", recSize, pageSize)
	}
	if count < 1 {
		return nil, fmt.Errorf("pagefile: shared writer needs at least one record")
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	pages := (count + int64(perPage) - 1) / int64(perPage)
	if err := f.Truncate(pages * int64(pageSize)); err != nil {
		_ = f.Close()
		_ = fsys.Remove(path)
		return nil, err
	}
	return &SharedWriter{fs: fsys, f: f, path: path, pageSize: pageSize, recSize: recSize, perPage: perPage, count: count}, nil
}

// Count returns the total record count the file was sized for.
func (s *SharedWriter) Count() int64 { return s.count }

// numPages returns the page count of the finished file.
func (s *SharedWriter) numPages() int64 {
	return (s.count + int64(s.perPage) - 1) / int64(s.perPage)
}

// Segment returns a writer that appends records at positions
// [startRec, …) of the shared file. startRec must fall on a page
// boundary — the merge planner cuts spans at page multiples for exactly
// this reason. bufPages bounds the pages coalesced per write syscall
// (0 selects DefaultWriteBufferPages). Distinct segments are safe to
// drive from concurrent goroutines; each individual segment is
// single-writer.
func (s *SharedWriter) Segment(startRec int64, bufPages int) (*SegmentWriter, error) {
	if startRec < 0 || startRec >= s.count {
		return nil, fmt.Errorf("pagefile: segment start %d out of range [0,%d) in %s", startRec, s.count, s.path)
	}
	if startRec%int64(s.perPage) != 0 {
		return nil, fmt.Errorf("pagefile: segment start %d not page-aligned (%d records per page) in %s", startRec, s.perPage, s.path)
	}
	if bufPages < 1 {
		bufPages = DefaultWriteBufferPages
	}
	return &SegmentWriter{
		s:        s,
		buf:      make([]byte, bufPages*s.pageSize),
		bufPages: bufPages,
		basePage: startRec / int64(s.perPage),
		next:     startRec,
	}, nil
}

// SegmentWriter appends records into one page-aligned slice of a
// SharedWriter (the Writer append logic, landed with WriteAt at
// absolute offsets).
type SegmentWriter struct {
	s        *SharedWriter
	buf      []byte
	bufPages int
	inBuf    int   // complete pages buffered
	inPage   int   // records in the page currently being filled
	basePage int64 // file page of buf[0]
	next     int64 // global index of the next record appended
}

// Append writes one record; rec must be exactly the record size.
func (w *SegmentWriter) Append(rec []byte) error {
	if len(rec) != w.s.recSize {
		return fmt.Errorf("pagefile: record length %d, want %d", len(rec), w.s.recSize)
	}
	if w.next >= w.s.count {
		return fmt.Errorf("pagefile: segment append past %d records in %s", w.s.count, w.s.path)
	}
	copy(w.buf[w.inBuf*w.s.pageSize+w.inPage*w.s.recSize:], rec)
	w.inPage++
	w.next++
	if w.inPage == w.s.perPage {
		return w.sealPage()
	}
	return nil
}

// sealPage zero-pads the in-progress page (the buffer is reused) and
// issues the coalesced positional write when the buffer is full.
func (w *SegmentWriter) sealPage() error {
	if w.inPage == 0 {
		return nil
	}
	start := w.inBuf * w.s.pageSize
	for i := start + w.inPage*w.s.recSize; i < start+w.s.pageSize; i++ {
		w.buf[i] = 0
	}
	w.inPage = 0
	w.inBuf++
	if w.inBuf == w.bufPages {
		return w.flush()
	}
	return nil
}

func (w *SegmentWriter) flush() error {
	if w.inBuf == 0 {
		return nil
	}
	if _, err := w.s.f.WriteAt(w.buf[:w.inBuf*w.s.pageSize], w.basePage*int64(w.s.pageSize)); err != nil {
		return err
	}
	w.basePage += int64(w.inBuf)
	w.inBuf = 0
	return nil
}

// Close seals and flushes the segment. A segment may end mid-page only
// at the very end of the file (the final span); interior spans end on
// the page boundaries the planner cut.
func (w *SegmentWriter) Close() error {
	if w.inPage > 0 && w.next != w.s.count {
		return fmt.Errorf("pagefile: segment ends mid-page at record %d of %s", w.next, w.s.path)
	}
	if err := w.sealPage(); err != nil {
		return err
	}
	return w.flush()
}

// Reader streams the written records back in position order through a
// windowed positional reader (the partitioned run builder re-reads the
// merged keys to drive the sequential PLA construction after every
// segment has landed). windowPages 0 selects DefaultReadaheadPages.
func (s *SharedWriter) Reader(windowPages int) *SharedReader {
	if windowPages < 1 {
		windowPages = DefaultReadaheadPages
	}
	if np := s.numPages(); int64(windowPages) > np {
		windowPages = int(np)
	}
	return &SharedReader{s: s, window: windowPages}
}

// SharedReader iterates a SharedWriter's records front to back.
type SharedReader struct {
	s         *SharedWriter
	buf       []byte
	window    int
	startPage int64
	pages     int
	pos       int64
}

// Next returns a view of the next record (valid until the following
// Next refills the window); ok is false after the last record.
func (r *SharedReader) Next() (rec []byte, ok bool, err error) {
	if r.pos >= r.s.count {
		return nil, false, nil
	}
	page := r.pos / int64(r.s.perPage)
	if r.buf == nil || page < r.startPage || page >= r.startPage+int64(r.pages) {
		if r.buf == nil {
			r.buf = make([]byte, r.window*r.s.pageSize)
		}
		n := int64(r.window)
		if rest := r.s.numPages() - page; rest < n {
			n = rest
		}
		if _, err := r.s.f.ReadAt(r.buf[:n*int64(r.s.pageSize)], page*int64(r.s.pageSize)); err != nil {
			return nil, false, fmt.Errorf("pagefile: read back pages [%d,%d) of %s: %w", page, page+n, r.s.path, err)
		}
		r.startPage = page
		r.pages = int(n)
	}
	off := int(page-r.startPage)*r.s.pageSize + int(r.pos%int64(r.s.perPage))*r.s.recSize
	r.pos++
	return r.buf[off : off+r.s.recSize], true, nil
}

// Finish syncs and closes the file (call after every segment closed).
func (s *SharedWriter) Finish() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		_ = s.f.Close()
		return err
	}
	return s.f.Close()
}

// Abort closes and removes a partially written file; errors are
// deliberately discarded (see Writer.Abort).
func (s *SharedWriter) Abort() {
	if !s.closed {
		s.closed = true
		_ = s.f.Close()
	}
	_ = s.fs.Remove(s.path)
}
