package pagefile

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

const testRecSize = 60

func makeRec(i int64) []byte {
	rec := make([]byte, testRecSize)
	binary.BigEndian.PutUint64(rec, uint64(i))
	for j := 8; j < testRecSize; j++ {
		rec[j] = byte(i * int64(j))
	}
	return rec
}

func writeFile(t *testing.T, dir string, n int64) string {
	t.Helper()
	path := filepath.Join(dir, "records.dat")
	w, err := CreateWriter(path, DefaultPageSize, testRecSize)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := w.Append(makeRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("writer count %d, want %d", w.Count(), n)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteReadRoundTrip(t *testing.T) {
	const n = 1000
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, testRecSize)
	for i := int64(0); i < n; i++ {
		rec, err := f.Record(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec, makeRec(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestPagePaddingAndAlignment(t *testing.T) {
	// 60-byte records: 68 per 4 KiB page; a non-multiple count must still
	// produce whole pages on disk.
	const n = 100
	path := writeFile(t, t.TempDir(), n)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	perPage := PerPage(DefaultPageSize, testRecSize)
	wantPages := (n + int64(perPage) - 1) / int64(perPage)
	if st.Size() != wantPages*DefaultPageSize {
		t.Fatalf("file size %d, want %d pages of %d", st.Size(), wantPages, DefaultPageSize)
	}
}

func TestEpsilonRule(t *testing.T) {
	// Paper setting: 88-byte pairs on 4 KiB pages → 46 per page → ε = 23.
	if got := PerPage(4096, 88); got != 46 {
		t.Fatalf("perPage(4096,88) = %d, want 46", got)
	}
	if got := Epsilon(4096, 88); got != 23 {
		t.Fatalf("ε(4096,88) = %d, want 23", got)
	}
	// Our entry layout: 60-byte entries → 68 per page → ε = 34.
	if got := Epsilon(4096, 60); got != 34 {
		t.Fatalf("ε(4096,60) = %d, want 34", got)
	}
	if PerPage(10, 60) != 0 {
		t.Fatal("oversized records must not fit")
	}
}

func TestPageBounds(t *testing.T) {
	const n = 150
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	perPage := int64(f.PerPage())
	if f.NumPages() != (n+perPage-1)/perPage {
		t.Fatalf("NumPages = %d", f.NumPages())
	}
	lo, hi := f.PageBounds(f.NumPages() - 1)
	if hi != n || lo != (f.NumPages()-1)*perPage {
		t.Fatalf("last page bounds [%d,%d)", lo, hi)
	}
	if f.PageOf(0) != 0 || f.PageOf(perPage) != 1 {
		t.Fatal("PageOf misaligned")
	}
}

func TestPageRecordsView(t *testing.T) {
	const n = 200
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for p := int64(0); p < f.NumPages(); p++ {
		data, cnt, err := f.PageRecords(p)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := f.PageBounds(p)
		if int64(cnt) != hi-lo {
			t.Fatalf("page %d count %d, want %d", p, cnt, hi-lo)
		}
		for i := 0; i < cnt; i++ {
			if !bytes.Equal(data[i*testRecSize:(i+1)*testRecSize], makeRec(lo+int64(i))) {
				t.Fatalf("page %d record %d corrupted", p, i)
			}
		}
	}
}

func TestCacheHitsAccounting(t *testing.T) {
	const n = 500
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, testRecSize)
	// First pass: all disk reads. Second pass: all cache hits.
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < n; i++ {
			if _, err := f.Record(i, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := f.Stats()
	if st.PageReads != f.NumPages() {
		t.Fatalf("page reads %d, want %d", st.PageReads, f.NumPages())
	}
	if st.CacheHits == 0 {
		t.Fatal("expected cache hits on second pass")
	}
}

func TestCacheEviction(t *testing.T) {
	const n = 1000
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 1) // single-page cache
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, testRecSize)
	// Alternate between first and last page: every access evicts.
	for i := 0; i < 10; i++ {
		if _, err := f.Record(0, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Record(n-1, buf); err != nil {
			t.Fatal(err)
		}
	}
	if st := f.Stats(); st.PageReads < 10 {
		t.Fatalf("expected thrashing reads, got %d", st.PageReads)
	}
	// Correctness under eviction.
	rec, _ := f.Record(0, buf)
	if !bytes.Equal(rec, makeRec(0)) {
		t.Fatal("record corrupted under eviction")
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	const n = 10
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, testRecSize)
	if _, err := f.Record(-1, buf); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := f.Record(n, buf); err == nil {
		t.Fatal("past-end index must error")
	}
	if _, _, err := f.PageRecords(99); err == nil {
		t.Fatal("out-of-range page must error")
	}
}

func TestOpenValidatesSize(t *testing.T) {
	path := writeFile(t, t.TempDir(), 10)
	if _, err := Open(path, DefaultPageSize, testRecSize, 1<<20, 2); err == nil {
		t.Fatal("claiming more records than the file holds must error")
	}
	if _, err := Open(path, 10, testRecSize, 1, 1); err == nil {
		t.Fatal("records larger than pages must error")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), DefaultPageSize, testRecSize, 0, 1); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestWriterMisuse(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWriter(filepath.Join(dir, "x"), DefaultPageSize, testRecSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(make([]byte, 3)); err == nil {
		t.Fatal("wrong record size must error")
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(makeRec(0)); err == nil {
		t.Fatal("append after Finish must error")
	}
	if err := w.Finish(); err != nil {
		t.Fatal("double Finish must be a no-op")
	}
}

func TestAbortRemovesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "aborted")
	w, err := CreateWriter(path, DefaultPageSize, testRecSize)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Append(makeRec(1))
	w.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("abort must remove the file")
	}
}

func TestConcurrentReaders(t *testing.T) {
	const n = 2000
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, testRecSize)
			for i := 0; i < 3000; i++ {
				idx := r.Int63n(n)
				rec, err := f.Record(idx, buf)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(rec, makeRec(idx)) {
					done <- os.ErrInvalid
					return
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestLRUCacheUnit(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, []byte{1})
	c.put(2, []byte{2})
	if _, ok := c.get(1); !ok {
		t.Fatal("1 should be cached")
	}
	c.put(3, []byte{3}) // evicts 2 (1 was just used)
	if _, ok := c.get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("1 should survive")
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("3 should be cached")
	}
	c.put(3, []byte{33}) // update in place
	if v, _ := c.get(3); v[0] != 33 {
		t.Fatal("update must replace data")
	}
}
