package pagefile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestWriterCoalescingByteIdentical proves the coalescing buffer is pure
// batching: the same record stream (including mid-stream Pads) produces
// byte-for-byte identical files at every buffer size.
func TestWriterCoalescingByteIdentical(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, bufPages int) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		w, err := CreateWriterSize(path, DefaultPageSize, testRecSize, bufPages)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 700; i++ {
			if err := w.Append(makeRec(i)); err != nil {
				t.Fatal(err)
			}
			// Pad at irregular points to exercise page sealing inside and
			// at the edges of the coalescing buffer.
			if i == 10 || i == 299 || i == 500 {
				if err := w.Pad(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	want := write("buf1.dat", 1)
	for _, bufPages := range []int{2, 3, 7, 0 /* default */} {
		got := write(fmt.Sprintf("buf%d.dat", bufPages), bufPages)
		if !bytes.Equal(got, want) {
			t.Fatalf("bufPages=%d produced different bytes (%d vs %d)", bufPages, len(got), len(want))
		}
	}
}

// TestSequentialReaderMatchesRecord checks the streaming reader yields
// every record, in order, across window sizes that do and do not divide
// the file, counting its pages in SeqReads and never in PageReads.
func TestSequentialReaderMatchesRecord(t *testing.T) {
	const n = 1000
	path := writeFile(t, t.TempDir(), n)
	for _, window := range []int{1, 3, 16, 0 /* default */} {
		f, err := Open(path, DefaultPageSize, testRecSize, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		sr := f.SequentialReader(window)
		for i := int64(0); i < n; i++ {
			rec, ok, err := sr.Next()
			if err != nil || !ok {
				t.Fatalf("window %d: Next at %d: ok=%v err=%v", window, i, ok, err)
			}
			if !bytes.Equal(rec, makeRec(i)) {
				t.Fatalf("window %d: record %d mismatch", window, i)
			}
		}
		if _, ok, err := sr.Next(); ok || err != nil {
			t.Fatalf("window %d: reader did not end cleanly: ok=%v err=%v", window, ok, err)
		}
		st := f.Stats()
		if st.SeqReads == 0 {
			t.Fatalf("window %d: no sequential reads counted", window)
		}
		if st.PageReads != 0 || st.CacheHits != 0 {
			t.Fatalf("window %d: sequential scan touched the page cache: %+v", window, st)
		}
		f.Close()
	}
}

// TestSequentialReaderCacheIsolation is the tentpole's core claim at the
// pagefile layer: a full sequential scan (what a level merge does) must
// not evict a single page from a concurrent point reader's LRU cache.
func TestSequentialReaderCacheIsolation(t *testing.T) {
	const n, cachePages = 2000, 4
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, cachePages)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Warm the cache with the reader's working set: the first records of
	// cachePages distinct pages.
	perPage := int64(f.PerPage())
	working := make([]int64, cachePages)
	for i := range working {
		working[i] = int64(i) * perPage
	}
	buf := make([]byte, testRecSize)
	for _, i := range working {
		if _, err := f.Record(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	warm := f.Stats()

	// The "merge": a full scan of the file.
	sr := f.SequentialReader(8)
	for {
		_, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}

	// Re-read the working set: every access must hit the cache — zero
	// evictions, zero new physical page reads.
	for _, i := range working {
		if _, err := f.Record(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.PageReads != warm.PageReads {
		t.Fatalf("sequential scan evicted cached pages: %d physical reads after scan, %d before", st.PageReads, warm.PageReads)
	}
	if want := warm.CacheHits + int64(len(working)); st.CacheHits != want {
		t.Fatalf("re-reads should all hit: hits %d, want %d", st.CacheHits, want)
	}
}

// TestRecordViewMatchesRecord checks the zero-copy view returns the same
// bytes as the copying Record.
func TestRecordViewMatchesRecord(t *testing.T) {
	const n = 500
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, testRecSize)
	for i := int64(0); i < n; i += 37 {
		view, err := f.RecordView(i)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := f.Record(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(view, rec) {
			t.Fatalf("record %d: view differs from copy", i)
		}
	}
	if _, err := f.RecordView(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := f.RecordView(n); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestConcurrentSequentialAndPointReads races streaming scans against
// point reads on one File (the -race lane's target): sequential readers
// share the fd via ReadAt and must not disturb the LRU's correctness.
func TestConcurrentSequentialAndPointReads(t *testing.T) {
	const n = 3000
	path := writeFile(t, t.TempDir(), n)
	f, err := Open(path, DefaultPageSize, testRecSize, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := f.SequentialReader(4)
			for i := int64(0); ; i++ {
				rec, ok, err := sr.Next()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					return
				}
				if !bytes.Equal(rec, makeRec(i)) {
					errs <- fmt.Errorf("seq record %d mismatch", i)
					return
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			buf := make([]byte, testRecSize)
			for k := 0; k < 500; k++ {
				i := (seed*7919 + int64(k)*104729) % n
				rec, err := f.Record(i, buf)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(rec, makeRec(i)) {
					errs <- fmt.Errorf("point record %d mismatch", i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
