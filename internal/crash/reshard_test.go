package crash

import (
	"testing"

	"cole/internal/core"
	"cole/internal/reshard"
	"cole/internal/shard"
	"cole/internal/vfs"
)

// buildSource lays down the deterministic workload as a flushed,
// cleanly-closed 1-shard store — the reshard sweep's fixed starting
// point. Sync mode keeps the operation count identical across rebuilds,
// so a crash index recorded against the golden rebuild lands on the
// same reshard-phase operation in every sweep iteration.
func buildSource(t *testing.T, fs *vfs.MemFS) {
	t.Helper()
	s, err := shard.Open(core.Options{Dir: storeDir, Shards: 1, MemCapacity: 8, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for h := uint64(1); h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatal(err)
		}
		if err := s.PutBatch(batchFor(h)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReshardCrashSweep crashes a 1→4 reshard at every filesystem
// operation of the rewrite, including the SHARDS generation flip, and
// asserts the atomic-commit contract: the store reopens into exactly
// one complete layout — the old one up to the flip, the new one after —
// serves every account correctly, and scrubs clean.
func TestReshardCrashSweep(t *testing.T) {
	want := finalState()

	// Golden pass: fix the operation index where the reshard starts and
	// where it ends; the sweep crashes at every index in between.
	golden := vfs.NewMem()
	buildSource(t, golden)
	base := golden.OpCount()
	if _, err := reshard.Reshard(storeDir, 4, reshard.Options{FS: golden}); err != nil {
		t.Fatalf("golden reshard: %v", err)
	}
	total := golden.OpCount()
	if total-base < 50 {
		t.Fatalf("reshard spans only %d operations; the sweep needs a real rewrite", total-base)
	}

	stride := sweepStride(total - base)
	for n := base + 1; n <= total; n += stride {
		fs := vfs.NewMem()
		buildSource(t, fs)
		if got := fs.OpCount(); got != base {
			t.Fatalf("source rebuild is not deterministic: %d ops vs golden %d", got, base)
		}
		fs.CrashAt(n)
		_, rerr := reshard.Reshard(storeDir, 4, reshard.Options{FS: fs})
		fs.Crash()

		// Shards: 0 adopts whatever layout the SHARDS file pins — the
		// reopen itself must not need to know whether the flip committed.
		s, err := shard.Open(core.Options{Dir: storeDir, MemCapacity: 8, FS: fs})
		if err != nil {
			t.Fatalf("crash at op %d: reopen failed: %v", n, err)
		}
		switch s.Shards() {
		case 1:
			if rerr == nil {
				t.Fatalf("crash at op %d: reshard reported success but the old layout is live", n)
			}
		case 4:
			// The flip committed; a post-flip crash only loses cleanup.
		default:
			t.Fatalf("crash at op %d: store reopened with %d shards (neither old nor new layout)", n, s.Shards())
		}
		if ck := s.CheckpointHeight(); ck != blocks {
			t.Fatalf("crash at op %d: checkpoint %d != %d (reshard must preserve the flushed height)", n, ck, blocks)
		}
		for i := 0; i < accounts; i++ {
			v, ok, gerr := s.Get(acct(i))
			if gerr != nil {
				t.Fatalf("crash at op %d: get account %d: %v", n, i, gerr)
			}
			if !ok || v != want[acct(i)] {
				t.Fatalf("crash at op %d: account %d serves the wrong value (layout=%d shards)", n, i, s.Shards())
			}
		}
		// Historical versions survive the rewrite too.
		for i := 0; i < accounts; i += 5 {
			hstate := s.RootDigest()
			vers, p, perr := s.ProvQuery(acct(i), 1, blocks)
			if perr != nil {
				t.Fatalf("crash at op %d: prov query account %d: %v", n, i, perr)
			}
			if _, verr := shard.VerifyProv(hstate, acct(i), 1, blocks, p); verr != nil {
				t.Fatalf("crash at op %d: proof for account %d does not verify: %v", n, i, verr)
			}
			_ = vers
		}
		if err := s.Close(); err != nil {
			t.Fatalf("crash at op %d: close: %v", n, err)
		}
		findings, _, serr := shard.VerifyStore(fs, storeDir, false)
		if serr != nil {
			t.Fatalf("crash at op %d: scrub: %v", n, serr)
		}
		for _, f := range findings {
			t.Errorf("crash at op %d: scrub finding: %s: %s", n, f.File, f.Detail)
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}
