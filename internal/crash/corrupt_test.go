package crash

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"cole/internal/core"
	"cole/internal/shard"
	"cole/internal/types"
	"cole/internal/vfs"
)

// filesWithSuffix walks the in-memory store and returns every file path
// with the given suffix (or exact basename), sorted by ReadDir order.
func filesWithSuffix(t *testing.T, fs *vfs.MemFS, dir, suffix string) []string {
	t.Helper()
	var out []string
	var walk func(d string)
	walk = func(d string) {
		ents, err := fs.ReadDir(d)
		if err != nil {
			t.Fatalf("walk %s: %v", d, err)
		}
		for _, de := range ents {
			p := filepath.Join(d, de.Name())
			if de.IsDir() {
				walk(p)
				continue
			}
			if strings.HasSuffix(de.Name(), suffix) || de.Name() == suffix {
				out = append(out, p)
			}
		}
	}
	walk(dir)
	return out
}

// TestCorruptionMatrix flips a single byte in each on-disk file kind of
// a freshly-built store and asserts two things: the full scrub pinpoints
// the damaged file, and the read path never serves the damage silently —
// it either refuses to open the store or surfaces a typed ErrCorrupt.
func TestCorruptionMatrix(t *testing.T) {
	kinds := []struct {
		name       string
		shards     int
		suffix     string
		off        int64 // chosen inside covered bytes, never padding
		openFails  bool  // the flip is fatal at reopen (metadata kinds)
		corruptGet bool  // a VerifyReads lookup must surface ErrCorrupt
	}{
		// Offset 30 lands in the first entry's value bytes: lookups still
		// find the key, so VerifyReads must catch the lie via the stored
		// Merkle leaf hash.
		{name: "value-page", shards: 1, suffix: ".val", off: 30, corruptGet: true},
		{name: "learned-index", shards: 1, suffix: ".idx", off: 0},
		{name: "merkle-node", shards: 1, suffix: ".mrk", off: 0},
		{name: "run-meta", shards: 1, suffix: ".met", off: 0, openFails: true},
		{name: "engine-manifest", shards: 1, suffix: "MANIFEST", off: 1, openFails: true},
		{name: "shard-layout", shards: 2, suffix: "SHARDS", off: 1, openFails: true},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			fs := vfs.NewMem()
			s, err := shard.Open(core.Options{Dir: storeDir, Shards: k.shards, MemCapacity: 8, FS: fs})
			if err != nil {
				t.Fatal(err)
			}
			for h := uint64(1); h <= blocks; h++ {
				if err := s.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := s.PutBatch(batchFor(h)); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.FlushAll(); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			targets := filesWithSuffix(t, fs, storeDir, k.suffix)
			if len(targets) == 0 {
				t.Fatalf("store has no %s file to corrupt", k.suffix)
			}
			target := targets[0]
			if err := fs.FlipByte(target, k.off); err != nil {
				t.Fatalf("flip %s@%d: %v", target, k.off, err)
			}

			// The scrub must pinpoint the damaged file, not just notice
			// "something is wrong".
			findings, _, err := shard.VerifyStore(fs, storeDir, false)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if len(findings) == 0 {
				t.Fatalf("scrub missed a flipped byte in %s", target)
			}
			pinned := false
			for _, f := range findings {
				if filepath.Base(f.File) == filepath.Base(target) {
					pinned = true
				}
			}
			if !pinned {
				t.Fatalf("scrub found damage but pinned the wrong file(s): %v (want %s)", findings, target)
			}

			s2, err := shard.Open(core.Options{
				Dir: storeDir, Shards: k.shards, MemCapacity: 8, FS: fs, VerifyReads: true,
			})
			if k.openFails {
				if err == nil {
					_ = s2.Close()
					t.Fatalf("reopen succeeded with corrupt %s", k.name)
				}
				if k.suffix == ".met" {
					var ec *types.ErrCorrupt
					if !errors.As(err, &ec) {
						t.Fatalf("reopen error for corrupt %s is not typed ErrCorrupt: %v", k.name, err)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer func() { _ = s2.Close() }()

			// Resolve every version ever written: the flipped entry is one
			// of them. The contract is "no silent wrong answer" — every
			// successful read returns the true value; the corrupt one (if
			// it reaches a value page) is a typed ErrCorrupt.
			sawCorrupt := false
			for i := 0; i < accounts; i++ {
				for h := uint64(1); h <= blocks; h++ {
					v, at, ok, gerr := s2.GetAt(acct(i), h)
					if gerr != nil {
						var ec *types.ErrCorrupt
						if !errors.As(gerr, &ec) {
							t.Fatalf("GetAt(%d,%d): untyped error %v", i, h, gerr)
						}
						// A leaf-hash mismatch cannot tell a lying value
						// page from a lying stored hash, so the read path
						// may blame the sibling file of the same run; the
						// scrub above (which rebuilds the tree) is what
						// pins the exact file.
						if runBase(ec.File) != runBase(target) {
							t.Fatalf("ErrCorrupt blames %s, damage is in %s", ec.File, target)
						}
						sawCorrupt = true
						continue
					}
					if ok {
						if want, exists := valueAt(acct(i), h); !exists || v != want || at == 0 {
							t.Fatalf("GetAt(%d,%d) served a silent wrong answer", i, h)
						}
					}
				}
			}
			if k.corruptGet {
				if !sawCorrupt {
					t.Fatalf("no read surfaced ErrCorrupt for the flipped %s byte", k.name)
				}
				if st := s2.Stats(); st.CorruptReads == 0 {
					t.Fatalf("Stats.CorruptReads did not count the corrupt reads")
				}
			}
		})
	}
}

// runBase strips the extension: two files of the same run share it.
func runBase(p string) string {
	b := filepath.Base(p)
	return strings.TrimSuffix(b, filepath.Ext(b))
}

// valueAt replays the schedule in memory: the value account a serves at
// height h, if any version ≤ h exists.
func valueAt(a types.Address, h uint64) (types.Value, bool) {
	var v types.Value
	found := false
	for b := uint64(1); b <= h; b++ {
		for _, u := range batchFor(b) {
			if u.Addr == a {
				v, found = u.Value, true
			}
		}
	}
	return v, found
}
