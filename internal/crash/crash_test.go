// Package crash is the store's crash-consistency acceptance suite: it
// sweeps a deterministic workload across every filesystem operation,
// "pulls the plug" at each one (internal/vfs.MemFS drops all unsynced
// state, tearing the write the crash lands on), and proves the store
// recovers — the reopen succeeds, the durable checkpoint never runs
// ahead of the chain, replay from the checkpoint reproduces the
// published digests, proofs verify, and a full integrity scrub comes
// back clean. The sweep covers {sync, async merge, pipelined commit,
// sorted batch} × {1, 4 shards}, the reshard generation flip, and the
// dropped-directory-fsync ("buggy fsync") failure mode.
package crash

import (
	"fmt"
	"testing"

	"cole/internal/core"
	"cole/internal/shard"
	"cole/internal/types"
	"cole/internal/vfs"
)

const (
	storeDir = "store"
	blocks   = 16
	writes   = 12
	accounts = 24
)

func acct(i int) types.Address {
	return types.AddressFromString(fmt.Sprintf("crash-%03d", i))
}

// batchFor is keyed to the height, not any run-local state, so a replay
// starting mid-stream regenerates byte-identical blocks.
func batchFor(h uint64) []types.Update {
	ups := make([]types.Update, 0, writes)
	for w := 0; w < writes; w++ {
		i := (int(h-1)*writes + w) % accounts
		ups = append(ups, types.Update{Addr: acct(i), Value: types.ValueFromUint64(h*1000 + uint64(w))})
	}
	return ups
}

// finalState replays the schedule in memory: the latest (value, height)
// every account must serve once all `blocks` blocks are committed.
func finalState() map[types.Address]types.Value {
	want := make(map[types.Address]types.Value)
	for h := uint64(1); h <= blocks; h++ {
		for _, u := range batchFor(h) {
			want[u.Addr] = u.Value
		}
	}
	return want
}

// config is one cell of the sweep matrix. async marks modes whose
// replayed digests only converge back to the published headers at the
// reopened manifest height (see shard.TestReplayReproducesHistoricalDigests);
// for those the sweep asserts the final digest, for the rest every
// replayed digest.
type config struct {
	name   string
	shards int
	async  bool
	set    func(o *core.Options)
}

func sweepConfigs() []config {
	modes := []struct {
		name  string
		async bool
		set   func(o *core.Options)
	}{
		{"sync", false, func(o *core.Options) {}},
		{"async", true, func(o *core.Options) { o.AsyncMerge = true }},
		{"pipelined", true, func(o *core.Options) { o.AsyncMerge = true; o.PipelinedCommit = true }},
		{"sorted", false, func(o *core.Options) { o.SortedBatch = true }},
	}
	var out []config
	for _, m := range modes {
		for _, n := range []int{1, 4} {
			out = append(out, config{
				name:   fmt.Sprintf("%s-shards%d", m.name, n),
				shards: n,
				async:  m.async,
				set:    m.set,
			})
		}
	}
	return out
}

func openStore(fs *vfs.MemFS, c config) (*shard.Store, error) {
	o := core.Options{Dir: storeDir, Shards: c.shards, MemCapacity: 8, FS: fs}
	c.set(&o)
	return shard.Open(o)
}

// goldenRun drives the full workload on a pristine filesystem and
// returns the published per-height digests plus the total operation
// count — the sweep's crash-point range. The count is taken after Close
// so the sweep also crashes inside close-time flushes and merge joins.
func goldenRun(t *testing.T, c config) (roots []types.Hash, total int64) {
	t.Helper()
	fs := vfs.NewMem()
	s, err := openStore(fs, c)
	if err != nil {
		t.Fatalf("golden open: %v", err)
	}
	roots = make([]types.Hash, blocks+1)
	for h := uint64(1); h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatalf("golden begin %d: %v", h, err)
		}
		if err := s.PutBatch(batchFor(h)); err != nil {
			t.Fatalf("golden put %d: %v", h, err)
		}
		if roots[h], err = s.Commit(); err != nil {
			t.Fatalf("golden commit %d: %v", h, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("golden close: %v", err)
	}
	return roots, fs.OpCount()
}

// checkCrashPoint is one cell of the sweep: crash the workload at
// filesystem operation n, reboot, and hold the store to its durability
// contract.
func checkCrashPoint(t *testing.T, c config, n int64, roots []types.Hash, want map[types.Address]types.Value) {
	t.Helper()
	fs := vfs.NewMem()
	fs.CrashAt(n)

	// Run the workload into the armed crash. The first error aborts the
	// chain loop (a real node would die here); Close after a crash may
	// itself fail and its error is deliberately dropped.
	if s, err := openStore(fs, c); err == nil {
		for h := uint64(1); h <= blocks; h++ {
			if err := s.BeginBlock(h); err != nil {
				break
			}
			if err := s.PutBatch(batchFor(h)); err != nil {
				break
			}
			if _, err := s.Commit(); err != nil {
				break
			}
		}
		_ = s.Close()
	}
	fs.Crash() // reboot: only fsynced state survives; the op-n write is torn

	s, err := openStore(fs, c)
	if err != nil {
		t.Fatalf("crash at op %d: reopen failed: %v", n, err)
	}
	ck := s.CheckpointHeight()
	if ck > blocks {
		t.Fatalf("crash at op %d: checkpoint %d ahead of the chain (%d blocks)", n, ck, blocks)
	}
	for h := ck + 1; h <= blocks; h++ {
		if err := s.BeginBlock(h); err != nil {
			t.Fatalf("crash at op %d: replay begin %d: %v", n, h, err)
		}
		if err := s.PutBatch(batchFor(h)); err != nil {
			t.Fatalf("crash at op %d: replay put %d: %v", n, h, err)
		}
		root, err := s.Commit()
		if err != nil {
			t.Fatalf("crash at op %d: replay commit %d: %v", n, h, err)
		}
		if !c.async && root != roots[h] {
			t.Fatalf("crash at op %d: replayed digest at height %d diverges from the published header", n, h)
		}
	}
	hstate := s.RootDigest()
	if hstate != roots[blocks] {
		t.Fatalf("crash at op %d: final digest %s != golden %s", n, hstate, roots[blocks])
	}
	for i := 0; i < accounts; i++ {
		v, ok, err := s.Get(acct(i))
		if err != nil {
			t.Fatalf("crash at op %d: get account %d: %v", n, i, err)
		}
		if !ok || v != want[acct(i)] {
			t.Fatalf("crash at op %d: account %d serves the wrong value after recovery", n, i)
		}
	}
	// Every fsync-acknowledged version must still prove against the
	// recovered digest (spot-checked; the full scrub below rebuilds
	// every Merkle node anyway).
	for i := 0; i < accounts; i += 7 {
		vers, p, err := s.ProvQuery(acct(i), 1, blocks)
		if err != nil {
			t.Fatalf("crash at op %d: prov query account %d: %v", n, i, err)
		}
		got, err := shard.VerifyProv(hstate, acct(i), 1, blocks, p)
		if err != nil {
			t.Fatalf("crash at op %d: proof for account %d does not verify: %v", n, i, err)
		}
		if len(got) != len(vers) {
			t.Fatalf("crash at op %d: proof for account %d drops versions", n, i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("crash at op %d: close after recovery: %v", n, err)
	}
	findings, _, err := shard.VerifyStore(fs, storeDir, false)
	if err != nil {
		t.Fatalf("crash at op %d: scrub: %v", n, err)
	}
	for _, f := range findings {
		t.Errorf("crash at op %d: scrub finding: %s: %s", n, f.File, f.Detail)
	}
	if t.Failed() {
		t.FailNow()
	}
}

// sweepStride picks the crash-point stride: every operation in full
// mode, ~30 sampled points per config in -short (the CI lane), which
// still clears 200 distinct crash points across the 8-cell matrix.
func sweepStride(total int64) int64 {
	if !testing.Short() {
		return 1
	}
	stride := (total + 29) / 30
	if stride < 1 {
		stride = 1
	}
	return stride
}

// TestCrashSweep is the tentpole acceptance test: for every config in
// the matrix, crash at every filesystem operation of the golden run and
// assert full recovery.
func TestCrashSweep(t *testing.T) {
	for _, c := range sweepConfigs() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			roots, total := goldenRun(t, c)
			want := finalState()
			stride := sweepStride(total)
			for n := int64(1); n <= total; n += stride {
				checkCrashPoint(t, c, n, roots, want)
			}
		})
	}
}

// TestDroppedDirSyncRecovery is the "buggy fsync" mode: SyncDir reports
// success but persists nothing, so rename-based commit points (MANIFEST,
// SHARDS, run installs) may silently roll back at the crash. The store
// must still reopen into SOME consistent earlier state and replay back
// to the chain tip — lost progress is acceptable, corruption is not.
func TestDroppedDirSyncRecovery(t *testing.T) {
	for _, c := range []config{
		{name: "sync-shards1", shards: 1, set: func(o *core.Options) {}},
		{name: "async-shards4", shards: 4, async: true, set: func(o *core.Options) { o.AsyncMerge = true }},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			roots, _ := goldenRun(t, c)
			want := finalState()

			fs := vfs.NewMem()
			s, err := openStore(fs, c)
			if err != nil {
				t.Fatal(err)
			}
			for h := uint64(1); h <= blocks; h++ {
				// Halfway through the chain, directory fsyncs silently stop
				// persisting: every rename and file creation from here on
				// rolls back at the crash, even though the store believes
				// all of it is durable. (No explicit flush here — an extra
				// flush would shift the cascade schedule off the golden
				// run's and legitimately change every later digest.)
				if h == blocks/2+1 {
					fs.DropDirSyncs(true)
				}
				if err := s.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := s.PutBatch(batchFor(h)); err != nil {
					t.Fatal(err)
				}
				if _, err := s.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			fs.Crash()

			s2, err := openStore(fs, c)
			if err != nil {
				t.Fatalf("reopen after dropped dir syncs: %v", err)
			}
			ck := s2.CheckpointHeight()
			if ck > blocks {
				t.Fatalf("checkpoint %d ahead of the chain", ck)
			}
			for h := ck + 1; h <= blocks; h++ {
				if err := s2.BeginBlock(h); err != nil {
					t.Fatal(err)
				}
				if err := s2.PutBatch(batchFor(h)); err != nil {
					t.Fatal(err)
				}
				if _, err := s2.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if got := s2.RootDigest(); got != roots[blocks] {
				t.Fatalf("digest after replay %s != golden %s", got, roots[blocks])
			}
			for i := 0; i < accounts; i++ {
				v, ok, err := s2.Get(acct(i))
				if err != nil || !ok || v != want[acct(i)] {
					t.Fatalf("account %d wrong after recovery (ok=%v err=%v)", i, ok, err)
				}
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			findings, _, err := shard.VerifyStore(fs, storeDir, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				t.Errorf("scrub finding: %s: %s", f.File, f.Detail)
			}
		})
	}
}
