package mbtree

import (
	"fmt"

	"cole/internal/types"
)

// Proof authenticates a range query [Lo, Hi] against the tree's root hash.
// It is the pruned tree: opened internal nodes expose their children's
// separator keys, opened leaves expose their full entry lists, and every
// subtree that cannot intersect the range is replaced by its digest.
type Proof struct {
	Lo, Hi types.CompoundKey
	Root   *ProofNode
}

// ProofNode is one node of the pruned tree. Exactly one of the three
// shapes is populated: a pruned digest, an opened leaf, or an opened
// internal node.
type ProofNode struct {
	Pruned   *types.Hash
	Leaf     []types.Entry
	Children []ProofChild
}

// ProofChild pairs a child subtree with its separator (minimum) key, which
// is part of the parent's digest and lets verifiers bound pruned subtrees.
type ProofChild struct {
	MinKey types.CompoundKey
	Node   *ProofNode
}

// Size returns the approximate wire size of the proof in bytes.
func (p *Proof) Size() int {
	return 2*types.CompoundKeySize + nodeSize(p.Root)
}

func nodeSize(n *ProofNode) int {
	if n == nil {
		return 0
	}
	switch {
	case n.Pruned != nil:
		return types.HashSize
	case n.Children != nil:
		s := 2 // child count
		for _, c := range n.Children {
			s += types.CompoundKeySize + nodeSize(c.Node)
		}
		return s
	default:
		return 2 + len(n.Leaf)*types.EntrySize
	}
}

// ProveRange builds a completeness-preserving proof for keys in [lo, hi]
// and returns the in-range entries. Every leaf whose key interval could
// intersect the range is opened in full.
func (t *Tree) ProveRange(lo, hi types.CompoundKey) ([]types.Entry, *Proof, error) {
	if hi.Less(lo) {
		return nil, nil, fmt.Errorf("mbtree: inverted range %v..%v", lo, hi)
	}
	p := &Proof{Lo: lo, Hi: hi}
	if t.root == nil {
		return nil, p, nil
	}
	var results []types.Entry
	p.Root = t.proveNode(t.root, lo, hi, &results)
	return results, p, nil
}

func (t *Tree) proveNode(n node, lo, hi types.CompoundKey, results *[]types.Entry) *ProofNode {
	switch nd := n.(type) {
	case *leafNode:
		for _, e := range nd.entries {
			if e.Key.Cmp(lo) >= 0 && e.Key.Cmp(hi) <= 0 {
				*results = append(*results, e)
			}
		}
		return &ProofNode{Leaf: append([]types.Entry(nil), nd.entries...)}
	case *internalNode:
		out := &ProofNode{Children: make([]ProofChild, len(nd.children))}
		for i, c := range nd.children {
			childLo := nd.mins[i]
			open := true
			// Child interval is [mins[i], mins[i+1]); prune when it cannot
			// intersect [lo, hi].
			if childLo.Cmp(hi) > 0 {
				open = false
			}
			if i+1 < len(nd.mins) && nd.mins[i+1].Cmp(lo) <= 0 {
				open = false
			}
			if open {
				out.Children[i] = ProofChild{MinKey: childLo, Node: t.proveNode(c, lo, hi, results)}
			} else {
				h := c.digest()
				out.Children[i] = ProofChild{MinKey: childLo, Node: &ProofNode{Pruned: &h}}
			}
		}
		return out
	}
	panic("mbtree: unknown node type")
}

// ReconstructRange walks a proof, reconstructs the root digest from the
// pruned tree, confirms no pruned subtree could hold in-range keys, and
// returns the authenticated in-range entries. The caller compares the root
// against an authenticated value (e.g. the digest folded into Hstate).
// An empty-tree proof reconstructs types.ZeroHash.
func ReconstructRange(p *Proof) (types.Hash, []types.Entry, error) {
	if p == nil {
		return types.Hash{}, nil, fmt.Errorf("mbtree: nil proof")
	}
	if p.Root == nil {
		return types.ZeroHash, nil, nil
	}
	var (
		results []types.Entry
		lastKey *types.CompoundKey
	)
	upper := types.CompoundKey{Addr: types.Address{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, Blk: types.MaxBlock}
	h, err := verifyNode(p.Root, p.Lo, p.Hi, types.CompoundKey{}, upper, &results, &lastKey)
	if err != nil {
		return types.Hash{}, nil, err
	}
	return h, results, nil
}

// VerifyRange checks a proof against a known root hash and returns the
// authenticated in-range entries.
func VerifyRange(rootHash types.Hash, p *Proof) ([]types.Entry, error) {
	h, results, err := ReconstructRange(p)
	if err != nil {
		return nil, err
	}
	if h != rootHash {
		return nil, fmt.Errorf("mbtree: reconstructed root %v does not match %v", h, rootHash)
	}
	return results, nil
}

// verifyNode recomputes the node digest. ivLo/ivHi bound the keys this
// subtree may contain (from ancestors' separator keys); pruned subtrees
// are rejected if those bounds intersect the query range.
func verifyNode(n *ProofNode, lo, hi, ivLo, ivHi types.CompoundKey, results *[]types.Entry, lastKey **types.CompoundKey) (types.Hash, error) {
	switch {
	case n.Pruned != nil:
		// The subtree's keys lie in [ivLo, ivHi) (ivHi is the next
		// sibling's separator, exclusive; the global sentinel at the root
		// is above every storable key). It must not intersect [lo, hi] or
		// results could be missing. This mirrors the prover's pruning rule
		// exactly: pruned iff ivLo > hi or ivHi ≤ lo.
		if ivLo.Cmp(hi) <= 0 && ivHi.Cmp(lo) > 0 {
			return types.Hash{}, fmt.Errorf("mbtree: pruned subtree [%v,%v) may intersect query range", ivLo, ivHi)
		}
		return *n.Pruned, nil
	case n.Children != nil:
		if len(n.Children) == 0 {
			return types.Hash{}, fmt.Errorf("mbtree: internal proof node with no children")
		}
		mins := make([]types.CompoundKey, len(n.Children))
		hashes := make([]types.Hash, len(n.Children))
		for i, c := range n.Children {
			if c.Node == nil {
				return types.Hash{}, fmt.Errorf("mbtree: missing child node in proof")
			}
			mins[i] = c.MinKey
			if i > 0 && c.MinKey.Cmp(n.Children[i-1].MinKey) <= 0 {
				return types.Hash{}, fmt.Errorf("mbtree: separator keys out of order")
			}
			childLo := c.MinKey
			childHi := ivHi
			if i+1 < len(n.Children) {
				childHi = n.Children[i+1].MinKey
			}
			if childLo.Cmp(ivLo) < 0 || childHi.Cmp(ivHi) > 0 {
				return types.Hash{}, fmt.Errorf("mbtree: child interval escapes parent bounds")
			}
			h, err := verifyNode(c.Node, lo, hi, childLo, childHi, results, lastKey)
			if err != nil {
				return types.Hash{}, err
			}
			hashes[i] = h
		}
		return InternalHash(mins, hashes), nil
	default:
		for _, e := range n.Leaf {
			if *lastKey != nil && e.Key.Cmp(**lastKey) <= 0 {
				return types.Hash{}, fmt.Errorf("mbtree: revealed entries out of order at %v", e.Key)
			}
			k := e.Key
			*lastKey = &k
			if e.Key.Cmp(ivLo) < 0 || e.Key.Cmp(ivHi) > 0 {
				return types.Hash{}, fmt.Errorf("mbtree: leaf entry %v outside interval", e.Key)
			}
			if e.Key.Cmp(lo) >= 0 && e.Key.Cmp(hi) <= 0 {
				*results = append(*results, e)
			}
		}
		return LeafHash(n.Leaf), nil
	}
}
