package mbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cole/internal/types"
)

func key(a uint64, blk uint64) types.CompoundKey {
	return types.CompoundKey{Addr: types.AddressFromUint64(a), Blk: blk}
}

// rawKey builds keys whose address order follows the numeric id (hashed
// addresses from AddressFromUint64 are *not* ordered by id).
func rawKey(a uint64, blk uint64) types.CompoundKey {
	var addr types.Address
	addr[18] = byte(a >> 8)
	addr[19] = byte(a)
	return types.CompoundKey{Addr: addr, Blk: blk}
}

func val(x uint64) types.Value { return types.ValueFromUint64(x) }

func fillRandom(t *testing.T, tr *Tree, n int, seed int64) map[types.CompoundKey]types.Value {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ref := make(map[types.CompoundKey]types.Value)
	for i := 0; i < n; i++ {
		k := key(r.Uint64()%500, r.Uint64()%1000)
		v := val(r.Uint64())
		tr.Insert(k, v)
		ref[k] = v
	}
	return ref
}

func TestNewValidatesFanout(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Fatal("fanout 2 must be rejected")
	}
	tr, err := New(0)
	if err != nil || tr == nil {
		t.Fatal("fanout 0 must default")
	}
}

func TestInsertGetAgainstMap(t *testing.T) {
	tr, _ := New(8)
	ref := fillRandom(t, tr, 5000, 1)
	if tr.Size() != len(ref) {
		t.Fatalf("size %d, want %d", tr.Size(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%v) = %v,%v want %v", k, got, ok, v)
		}
	}
	if _, ok := tr.Get(key(10_000, 0)); ok {
		t.Fatal("absent key must miss")
	}
}

func TestOverwriteSameCompoundKey(t *testing.T) {
	tr, _ := New(4)
	k := key(1, 7)
	tr.Insert(k, val(1))
	h1 := tr.RootHash()
	tr.Insert(k, val(2))
	if tr.Size() != 1 {
		t.Fatalf("overwrite must not grow tree, size=%d", tr.Size())
	}
	if got, _ := tr.Get(k); got != val(2) {
		t.Fatal("overwrite must replace value")
	}
	if tr.RootHash() == h1 {
		t.Fatal("root hash must change when a value changes")
	}
}

func TestForEachSortedAndComplete(t *testing.T) {
	tr, _ := New(5)
	ref := fillRandom(t, tr, 3000, 2)
	var keys []types.CompoundKey
	err := tr.ForEach(func(e types.Entry) error {
		keys = append(keys, e.Key)
		if ref[e.Key] != e.Value {
			t.Fatalf("value mismatch at %v", e.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(ref) {
		t.Fatalf("visited %d, want %d", len(keys), len(ref))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestPredecessor(t *testing.T) {
	tr, _ := New(4)
	a := types.AddressFromUint64(9)
	for _, blk := range []uint64{10, 20, 30} {
		tr.Insert(types.CompoundKey{Addr: a, Blk: blk}, val(blk))
	}
	// Freshest version via max_int sentinel.
	e, ok := tr.Predecessor(types.MaxKeyFor(a))
	if !ok || e.Key.Blk != 30 {
		t.Fatalf("predecessor(max) = %v,%v", e, ok)
	}
	// Mid-range: version active at block 25 is the one written at 20.
	e, ok = tr.Predecessor(types.CompoundKey{Addr: a, Blk: 25})
	if !ok || e.Key.Blk != 20 {
		t.Fatalf("predecessor(25) = %v,%v", e, ok)
	}
	// Exact hit.
	e, ok = tr.Predecessor(types.CompoundKey{Addr: a, Blk: 20})
	if !ok || e.Key.Blk != 20 {
		t.Fatalf("predecessor(20) = %v,%v", e, ok)
	}
	// Below everything.
	if _, ok := tr.Predecessor(types.CompoundKey{Addr: a, Blk: 5}); ok {
		// Note: another address may sort below; with a single address
		// nothing precedes blk 5.
		t.Fatal("nothing precedes the first version")
	}
}

func TestPredecessorAgainstReference(t *testing.T) {
	tr, _ := New(6)
	ref := fillRandom(t, tr, 2000, 3)
	sorted := make([]types.CompoundKey, 0, len(ref))
	for k := range ref {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		q := key(r.Uint64()%500, r.Uint64()%1000)
		idx := sort.Search(len(sorted), func(i int) bool { return q.Less(sorted[i]) })
		e, ok := tr.Predecessor(q)
		if idx == 0 {
			if ok {
				t.Fatalf("query %v: expected no predecessor, got %v", q, e.Key)
			}
			continue
		}
		want := sorted[idx-1]
		if !ok || e.Key != want {
			t.Fatalf("query %v: predecessor %v (ok=%v), want %v", q, e.Key, ok, want)
		}
	}
}

func TestRootHashDeterministicAndOrderIndependent(t *testing.T) {
	// Same key set inserted in different orders must converge... note:
	// B+-tree shape depends on insertion order, so digests may differ —
	// what must hold is determinism for identical insert sequences.
	mk := func(order []int) types.Hash {
		tr, _ := New(4)
		for _, i := range order {
			tr.Insert(key(uint64(i), uint64(i)), val(uint64(i)))
		}
		return tr.RootHash()
	}
	o1 := []int{5, 3, 8, 1, 9, 2, 7}
	h1 := mk(o1)
	h2 := mk(o1)
	if h1 != h2 {
		t.Fatal("identical insert sequences must produce identical roots")
	}
}

func TestRootHashChangesOnInsert(t *testing.T) {
	tr, _ := New(4)
	if tr.RootHash() != types.ZeroHash {
		t.Fatal("empty tree root must be ZeroHash")
	}
	tr.Insert(key(1, 1), val(1))
	h1 := tr.RootHash()
	if h1 == types.ZeroHash {
		t.Fatal("non-empty root must differ from ZeroHash")
	}
	tr.Insert(key(2, 1), val(2))
	if tr.RootHash() == h1 {
		t.Fatal("root must change on insert")
	}
}

func TestRangeQuery(t *testing.T) {
	tr, _ := New(4)
	a := types.AddressFromUint64(1)
	for blk := uint64(0); blk < 100; blk += 10 {
		tr.Insert(types.CompoundKey{Addr: a, Blk: blk}, val(blk))
	}
	got := tr.Range(types.CompoundKey{Addr: a, Blk: 25}, types.CompoundKey{Addr: a, Blk: 65})
	if len(got) != 4 { // 30, 40, 50, 60
		t.Fatalf("range returned %d entries, want 4", len(got))
	}
	for i, want := range []uint64{30, 40, 50, 60} {
		if got[i].Key.Blk != want {
			t.Fatalf("range[%d].Blk = %d, want %d", i, got[i].Key.Blk, want)
		}
	}
}

func TestProveRangeRoundTrip(t *testing.T) {
	tr, _ := New(4)
	ref := fillRandom(t, tr, 500, 5)
	root := tr.RootHash()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		lo := key(r.Uint64()%500, r.Uint64()%1000)
		hi := key(r.Uint64()%500, r.Uint64()%1000)
		if hi.Less(lo) {
			lo, hi = hi, lo
		}
		want := refRange(ref, lo, hi)
		got, proof, err := tr.ProveRange(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("prover returned %d entries, want %d", len(got), len(want))
		}
		verified, err := VerifyRange(root, proof)
		if err != nil {
			t.Fatalf("verification failed: %v", err)
		}
		if len(verified) != len(want) {
			t.Fatalf("verifier extracted %d entries, want %d", len(verified), len(want))
		}
		for j := range want {
			if verified[j] != want[j] {
				t.Fatalf("entry %d mismatch", j)
			}
		}
	}
}

func refRange(ref map[types.CompoundKey]types.Value, lo, hi types.CompoundKey) []types.Entry {
	var out []types.Entry
	for k, v := range ref {
		if k.Cmp(lo) >= 0 && k.Cmp(hi) <= 0 {
			out = append(out, types.Entry{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

func TestProveRangeEmptyTree(t *testing.T) {
	tr, _ := New(4)
	got, proof, err := tr.ProveRange(rawKey(0, 0), rawKey(5, 0))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty tree proof: %v", err)
	}
	if _, err := VerifyRange(types.ZeroHash, proof); err != nil {
		t.Fatalf("empty proof must verify against ZeroHash: %v", err)
	}
	if _, err := VerifyRange(types.HashData([]byte("x")), proof); err == nil {
		t.Fatal("empty proof must fail against non-zero root")
	}
}

func TestProveRangeInvertedRejected(t *testing.T) {
	tr, _ := New(4)
	tr.Insert(key(1, 1), val(1))
	if _, _, err := tr.ProveRange(rawKey(5, 0), rawKey(1, 0)); err == nil {
		t.Fatal("inverted range must error")
	}
}

func TestVerifyDetectsTamperedValue(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 50; i++ {
		tr.Insert(rawKey(i, i), val(i))
	}
	root := tr.RootHash()
	_, proof, _ := tr.ProveRange(rawKey(10, 0), rawKey(20, 100))
	tampered := mutateFirstLeaf(proof.Root)
	if !tampered {
		t.Fatal("test setup: no leaf found to tamper")
	}
	if _, err := VerifyRange(root, proof); err == nil {
		t.Fatal("tampered value must not verify")
	}
}

func mutateFirstLeaf(n *ProofNode) bool {
	if n == nil {
		return false
	}
	if n.Pruned != nil {
		return false
	}
	if n.Children == nil {
		if len(n.Leaf) == 0 {
			return false
		}
		n.Leaf[0].Value[0] ^= 1
		return true
	}
	for i := range n.Children {
		if mutateFirstLeaf(n.Children[i].Node) {
			return true
		}
	}
	return false
}

func TestVerifyDetectsHiddenResults(t *testing.T) {
	// A malicious prover prunes a subtree that actually holds in-range
	// keys. Build a correct proof for a *different* (narrower) range and
	// claim it answers the wide one: verification must fail.
	tr, _ := New(4)
	for i := uint64(0); i < 200; i++ {
		tr.Insert(rawKey(i, 1), val(i))
	}
	root := tr.RootHash()
	_, narrow, _ := tr.ProveRange(rawKey(100, 0), rawKey(100, 10))
	narrow.Lo = rawKey(0, 0) // claim the proof covers everything
	narrow.Hi = rawKey(199, 10)
	if _, err := VerifyRange(root, narrow); err == nil {
		t.Fatal("pruned in-range subtrees must be detected")
	}
}

func TestVerifyDetectsReorderedEntries(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 30; i++ {
		tr.Insert(key(1, i), val(i))
	}
	root := tr.RootHash()
	_, proof, _ := tr.ProveRange(key(1, 5), key(1, 12))
	swapLeafEntries(proof.Root)
	if _, err := VerifyRange(root, proof); err == nil {
		t.Fatal("reordered entries must not verify")
	}
}

func swapLeafEntries(n *ProofNode) bool {
	if n == nil || n.Pruned != nil {
		return false
	}
	if n.Children == nil {
		if len(n.Leaf) < 2 {
			return false
		}
		n.Leaf[0], n.Leaf[1] = n.Leaf[1], n.Leaf[0]
		return true
	}
	for i := range n.Children {
		if swapLeafEntries(n.Children[i].Node) {
			return true
		}
	}
	return false
}

func TestProofSizeSublinearInTreeSize(t *testing.T) {
	mkProof := func(n int) int {
		tr, _ := New(16)
		for i := uint64(0); i < uint64(n); i++ {
			tr.Insert(key(i, 1), val(i))
		}
		_, p, _ := tr.ProveRange(key(uint64(n/2), 0), key(uint64(n/2), 10))
		return p.Size()
	}
	small, large := mkProof(100), mkProof(10000)
	if large > small*8 {
		t.Fatalf("point-proof size grew from %d to %d for 100× data", small, large)
	}
}

func TestPropertyTreeMatchesMapUnderRandomOps(t *testing.T) {
	f := func(seed int64, nOps uint16) bool {
		n := int(nOps%800) + 1
		r := rand.New(rand.NewSource(seed))
		tr, _ := New(3 + r.Intn(14))
		ref := make(map[types.CompoundKey]types.Value)
		for i := 0; i < n; i++ {
			k := key(r.Uint64()%50, r.Uint64()%100)
			v := val(r.Uint64())
			tr.Insert(k, v)
			ref[k] = v
		}
		if tr.Size() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := tr.Get(k); !ok || got != v {
				return false
			}
		}
		// Full-range proof returns everything.
		lo := types.CompoundKey{}
		hi := types.CompoundKey{Addr: types.Address{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, Blk: types.MaxBlock}
		res, p, err := tr.ProveRange(lo, hi)
		if err != nil || len(res) != len(ref) {
			return false
		}
		v, err := VerifyRange(tr.RootHash(), p)
		return err == nil && len(v) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepTreeSplitsInternalNodes(t *testing.T) {
	tr, _ := New(3) // tiny fanout forces many levels
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Insert(key(uint64(i), 1), val(uint64(i)))
	}
	if tr.Size() != n {
		t.Fatalf("size %d", tr.Size())
	}
	count := 0
	_ = tr.ForEach(func(types.Entry) error { count++; return nil })
	if count != n {
		t.Fatalf("scan %d, want %d", count, n)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tr, _ := New(4)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(key(i, 1), val(i))
	}
	seen := 0
	sentinel := rand.New(rand.NewSource(1)) // unused, placate lint about rand
	_ = sentinel
	stop := tr.ForEach(func(types.Entry) error {
		seen++
		if seen == 10 {
			return errStop
		}
		return nil
	})
	if stop != errStop || seen != 10 {
		t.Fatalf("early stop: err=%v seen=%d", stop, seen)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
