package mbtree

import (
	"math/rand"
	"sync"
	"testing"

	"cole/internal/types"
)

func snapKey(i uint64) types.CompoundKey {
	return types.CompoundKey{Addr: types.AddressFromUint64(i % 64), Blk: i}
}

// TestSnapshotFrozen checks that a snapshot's contents and root hash are
// immune to every later Insert on the live tree, including overwrites of
// keys the snapshot holds and splits of shared nodes.
func TestSnapshotFrozen(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		tr.Insert(snapKey(i), types.ValueFromUint64(i))
	}
	root := tr.RootHash()
	snap := tr.Snapshot()

	if snap.Size() != 200 || snap.RootHash() != root {
		t.Fatal("snapshot does not match the tree it was taken from")
	}

	// Overwrite half the existing keys and add new ones.
	for i := uint64(0); i < 300; i++ {
		tr.Insert(snapKey(i), types.ValueFromUint64(i+1000))
	}
	if tr.RootHash() == root {
		t.Fatal("live tree root did not change")
	}
	if snap.RootHash() != root {
		t.Fatal("snapshot root changed under writes")
	}
	if snap.Size() != 200 {
		t.Fatalf("snapshot size %d, want 200", snap.Size())
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := snap.Get(snapKey(i))
		if !ok || v != types.ValueFromUint64(i) {
			t.Fatalf("snapshot key %d = %v ok=%v, want original value", i, v, ok)
		}
	}
	if _, ok := snap.Get(snapKey(250)); ok {
		t.Fatal("snapshot sees a key inserted after it was taken")
	}
	// Proofs built from the snapshot verify against the frozen root.
	lo := types.CompoundKey{}
	hi := types.CompoundKey{Addr: types.AddressFromUint64(3), Blk: types.MaxBlock}
	_, proof, err := snap.ProveRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyRange(root, proof); err != nil {
		t.Fatalf("snapshot proof: %v", err)
	}
}

// TestSnapshotChain takes a snapshot per round and checks every older
// snapshot stays intact (multiple generations sharing structure).
func TestSnapshotChain(t *testing.T) {
	tr, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	type gen struct {
		snap *Tree
		root types.Hash
		size int
	}
	var gens []gen
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			k := uint64(round*50 + i)
			tr.Insert(snapKey(k), types.ValueFromUint64(k))
		}
		tr.RootHash()
		gens = append(gens, gen{snap: tr.Snapshot(), root: tr.RootHash(), size: tr.Size()})
	}
	for gi, g := range gens {
		if g.snap.RootHash() != g.root || g.snap.Size() != g.size {
			t.Fatalf("generation %d drifted", gi)
		}
	}
}

// TestSnapshotConcurrentReaders runs parallel readers over warmed
// snapshots while the live tree keeps inserting (meant for -race).
func TestSnapshotConcurrentReaders(t *testing.T) {
	tr, err := New(DefaultFanout)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		tr.Insert(snapKey(i), types.ValueFromUint64(i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	spawnReaders := func(snap *Tree, upTo uint64) {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					i := uint64(r.Intn(int(upTo)))
					if _, ok := snap.Get(snapKey(i)); !ok {
						t.Error("snapshot lost a key")
						return
					}
					snap.Predecessor(snapKey(i))
					k := snapKey(i)
					if _, _, err := snap.ProveRange(k, types.CompoundKey{Addr: k.Addr, Blk: k.Blk + 10}); err != nil {
						t.Error(err)
						return
					}
				}
			}(int64(g))
		}
	}

	for round := uint64(1); round <= 5; round++ {
		tr.RootHash() // warm digests so snapshot reads are pure
		spawnReaders(tr.Snapshot(), round*100)
		for i := round * 100; i < (round+1)*100; i++ {
			tr.Insert(snapKey(i), types.ValueFromUint64(i))
		}
	}
	close(stop)
	wg.Wait()
}
