package mbtree

import (
	"math/rand"
	"testing"

	"cole/internal/types"
)

// sortedBatch builds an ascending-key batch of n entries for block blk,
// drawing addresses from a bounded universe so consecutive batches
// overwrite some keys of earlier blocks (distinct blk ⇒ distinct key)
// and collide with none of their own.
func sortedBatch(r *rand.Rand, blk uint64, n, universe int) []types.Entry {
	picked := map[int]bool{}
	for len(picked) < n {
		picked[r.Intn(universe)] = true
	}
	out := make([]types.Entry, 0, n)
	for i := 0; i < universe; i++ {
		if picked[i] {
			out = append(out, types.Entry{
				Key:   types.CompoundKey{Addr: types.AddressFromUint64(uint64(i)), Blk: blk},
				Value: types.ValueFromUint64(blk*1000 + uint64(i)),
			})
		}
	}
	return out
}

// TestInsertSortedMatchesSequentialInsert bulk-loads many batches into
// one tree and replays them entry by entry into another: structure is
// hash-visible (internal digests commit separator keys), so equal root
// hashes at every step mean the bulk path built EXACTLY the tree the
// sequential loop builds — the identity the engine's SortedBatch fast
// path rests on.
func TestInsertSortedMatchesSequentialInsert(t *testing.T) {
	for _, fanout := range []int{3, 4, 16} {
		r := rand.New(rand.NewSource(int64(fanout)))
		bulk, err := New(fanout)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := New(fanout)
		if err != nil {
			t.Fatal(err)
		}
		for blk := uint64(1); blk <= 60; blk++ {
			batch := sortedBatch(r, blk, 1+r.Intn(40), 120)
			bulk.InsertSorted(batch)
			for _, e := range batch {
				seq.Insert(e.Key, e.Value)
			}
			if bh, sh := bulk.RootHash(), seq.RootHash(); bh != sh {
				t.Fatalf("fanout %d, block %d: bulk root %x != sequential root %x", fanout, blk, bh, sh)
			}
			if bulk.Size() != seq.Size() {
				t.Fatalf("fanout %d, block %d: sizes diverge %d vs %d", fanout, blk, bulk.Size(), seq.Size())
			}
		}
	}
}

// TestInsertSortedOverwrites re-bulk-loads the same keys (same block)
// with new values: the fast path must overwrite in place like Insert
// does, not duplicate.
func TestInsertSortedOverwrites(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i uint64, v uint64) types.Entry {
		return types.Entry{
			Key:   types.CompoundKey{Addr: types.AddressFromUint64(i), Blk: 1},
			Value: types.ValueFromUint64(v),
		}
	}
	first := make([]types.Entry, 0, 50)
	second := make([]types.Entry, 0, 50)
	for i := uint64(0); i < 50; i++ {
		first = append(first, mk(i, i))
		second = append(second, mk(i, 1000+i))
	}
	tr.InsertSorted(first)
	tr.InsertSorted(second)
	if tr.Size() != 50 {
		t.Fatalf("size %d after overwriting bulk load, want 50", tr.Size())
	}
	for i := uint64(0); i < 50; i++ {
		v, ok := tr.Get(types.CompoundKey{Addr: types.AddressFromUint64(i), Blk: 1})
		if !ok || v != types.ValueFromUint64(1000+i) {
			t.Fatalf("key %d = %v ok=%v, want overwritten value %d", i, v, ok, 1000+i)
		}
	}
}

// TestInsertSortedRespectsSnapshots interleaves copy-on-write snapshots
// with bulk loads: every snapshot's root hash and contents must stay
// frozen while the live tree keeps absorbing batches — the same
// guarantee Insert gives, which the engine's published read views
// depend on.
func TestInsertSortedRespectsSnapshots(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	type frozen struct {
		snap *Tree
		root types.Hash
		size int
	}
	var snaps []frozen
	for blk := uint64(1); blk <= 40; blk++ {
		tr.InsertSorted(sortedBatch(r, blk, 1+r.Intn(30), 80))
		tr.RootHash() // warm, as the engine does before publishing
		s := tr.Snapshot()
		snaps = append(snaps, frozen{snap: s, root: s.RootHash(), size: s.Size()})
	}
	for i, f := range snaps {
		if got := f.snap.RootHash(); got != f.root {
			t.Fatalf("snapshot %d root changed under later bulk loads: %x != %x", i, got, f.root)
		}
		if got := f.snap.Size(); got != f.size {
			t.Fatalf("snapshot %d size changed: %d != %d", i, got, f.size)
		}
	}
}
