// Package mbtree implements the Merkle B+-tree used for COLE's in-memory
// level L0 (paper §3.2, citing Li et al. [29]).
//
// The tree stores compound key-value pairs sorted by key. Every node is
// augmented with a digest: a leaf hashes its entry list, an internal node
// hashes the (minKey, childHash) sequence of its children. Including the
// separator keys in the digest is what lets range-proof verifiers confirm
// that pruned subtrees cannot contain in-range keys (completeness).
//
// L0 is flushed wholesale once it holds B entries, so the tree supports
// insert/overwrite, point and predecessor lookups, ordered scans, and
// authenticated range queries — but no deletion (COLE never deletes;
// obsolete versions are superseded by newer compound keys).
//
// Snapshot returns an O(1) frozen copy-on-write view of the tree: the
// snapshot shares the current nodes, and subsequent Inserts on the live
// tree path-copy any shared node before mutating it (generation-stamped
// nodes, classic persistent B-tree). A snapshot whose hashes were warmed
// with RootHash() before it was taken is safe for concurrent readers —
// every operation on it, including ProveRange, is a pure read.
package mbtree

import (
	"fmt"

	"cole/internal/types"
)

// DefaultFanout is the maximum number of children (internal) or entries
// (leaf) per node.
const DefaultFanout = 16

const (
	leafHashTag     = 0x00
	internalHashTag = 0x01
)

// Tree is an in-memory Merkle B+-tree.
type Tree struct {
	root   node
	fanout int
	size   int
	// gen is the copy-on-write generation: nodes stamped with an older
	// generation are shared with a snapshot and must be copied before
	// they are mutated.
	gen uint64
}

type node interface {
	minKey() types.CompoundKey
	digest() types.Hash
}

type leafNode struct {
	entries []types.Entry
	hash    types.Hash
	dirty   bool
	gen     uint64
}

type internalNode struct {
	mins     []types.CompoundKey
	children []node
	hash     types.Hash
	dirty    bool
	gen      uint64
}

// New creates an empty tree with the given fanout (≥ 3; DefaultFanout if 0).
func New(fanout int) (*Tree, error) {
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 3 {
		return nil, fmt.Errorf("mbtree: fanout %d < 3", fanout)
	}
	return &Tree{fanout: fanout}, nil
}

// Size returns the number of entries.
func (t *Tree) Size() int { return t.size }

// Snapshot returns a frozen copy-on-write view of the tree in O(1): the
// snapshot shares the current nodes, and the live tree path-copies any
// shared node before mutating it, so the snapshot's structure, contents,
// and root hash never change. Warm the hash cache (RootHash) before
// snapshotting if the snapshot will be read concurrently: a snapshot with
// clean digests is safe for any number of parallel readers while the live
// tree keeps absorbing Inserts.
func (t *Tree) Snapshot() *Tree {
	snap := &Tree{root: t.root, fanout: t.fanout, size: t.size, gen: t.gen}
	t.gen++ // every current node is now shared; copy before mutating
	return snap
}

// ownedLeaf returns n if it is exclusively owned by the live tree, or a
// copy stamped with the current generation otherwise.
func (t *Tree) ownedLeaf(n *leafNode) *leafNode {
	if n.gen == t.gen {
		return n
	}
	return &leafNode{
		entries: append([]types.Entry(nil), n.entries...),
		hash:    n.hash,
		dirty:   n.dirty,
		gen:     t.gen,
	}
}

// ownedInternal is ownedLeaf for internal nodes; children pointers are
// shared (they are copied on their own first mutation).
func (t *Tree) ownedInternal(n *internalNode) *internalNode {
	if n.gen == t.gen {
		return n
	}
	return &internalNode{
		mins:     append([]types.CompoundKey(nil), n.mins...),
		children: append([]node(nil), n.children...),
		hash:     n.hash,
		dirty:    n.dirty,
		gen:      t.gen,
	}
}

// Insert adds an entry, overwriting the value if the compound key exists
// (the last write of an address within a block wins).
func (t *Tree) Insert(key types.CompoundKey, value types.Value) {
	e := types.Entry{Key: key, Value: value}
	if t.root == nil {
		t.root = &leafNode{entries: []types.Entry{e}, dirty: true, gen: t.gen}
		t.size = 1
		return
	}
	self, replaced, right := t.insert(t.root, e)
	t.root = self
	if !replaced {
		t.size++
	}
	if right != nil {
		t.root = &internalNode{
			mins:     []types.CompoundKey{self.minKey(), right.minKey()},
			children: []node{self, right},
			dirty:    true,
			gen:      t.gen,
		}
	}
}

// insert descends copy-on-write: it returns the node that now holds the
// subtree (n itself, or a generation-stamped copy if n was shared with a
// snapshot), whether an existing key was replaced, and a new right
// sibling if the subtree split.
func (t *Tree) insert(n node, e types.Entry) (self node, replaced bool, right node) {
	switch v := n.(type) {
	case *leafNode:
		nd := t.ownedLeaf(v)
		nd.dirty = true
		idx, found := searchEntries(nd.entries, e.Key)
		if found {
			nd.entries[idx] = e
			return nd, true, nil
		}
		nd.entries = append(nd.entries, types.Entry{})
		copy(nd.entries[idx+1:], nd.entries[idx:])
		nd.entries[idx] = e
		if len(nd.entries) <= t.fanout {
			return nd, false, nil
		}
		mid := len(nd.entries) / 2
		sib := &leafNode{entries: append([]types.Entry(nil), nd.entries[mid:]...), dirty: true, gen: t.gen}
		nd.entries = nd.entries[:mid]
		return nd, false, sib
	case *internalNode:
		nd := t.ownedInternal(v)
		nd.dirty = true
		ci := childIndex(nd.mins, e.Key)
		child, replaced, newChild := t.insert(nd.children[ci], e)
		nd.children[ci] = child
		nd.mins[ci] = child.minKey()
		if newChild != nil {
			nd.mins = append(nd.mins, types.CompoundKey{})
			nd.children = append(nd.children, nil)
			copy(nd.mins[ci+2:], nd.mins[ci+1:])
			copy(nd.children[ci+2:], nd.children[ci+1:])
			nd.mins[ci+1] = newChild.minKey()
			nd.children[ci+1] = newChild
		}
		if len(nd.children) <= t.fanout {
			return nd, replaced, nil
		}
		mid := len(nd.children) / 2
		sib := &internalNode{
			mins:     append([]types.CompoundKey(nil), nd.mins[mid:]...),
			children: append([]node(nil), nd.children[mid:]...),
			dirty:    true,
			gen:      t.gen,
		}
		nd.mins = nd.mins[:mid]
		nd.children = nd.children[:mid]
		return nd, replaced, sib
	}
	panic("mbtree: unknown node type")
}

// InsertSorted bulk-loads entries whose keys are in ascending order.
// It produces EXACTLY the tree a sequential Insert loop over the same
// slice would — identical structure and root hash — but amortizes the
// descent: after placing one key it keeps the (copy-on-write owned)
// target leaf, and every following key that still belongs in that leaf
// is appended or overwritten in place without touching the path again.
// The fast path applies only when sequential Insert would also have
// appended without splitting (key below the leaf's subtree upper bound,
// leaf below fanout, key above the leaf's current tail); everything
// else falls back to Insert and re-descends, so the equivalence holds
// by construction rather than by re-implementation.
func (t *Tree) InsertSorted(entries []types.Entry) {
	var leaf *leafNode
	var upper types.CompoundKey
	hasUpper := false
	for _, e := range entries {
		if leaf != nil && (!hasUpper || e.Key.Less(upper)) {
			idx, found := searchEntries(leaf.entries, e.Key)
			if found {
				leaf.entries[idx] = e
				continue
			}
			if idx == len(leaf.entries) && len(leaf.entries) < t.fanout {
				leaf.entries = append(leaf.entries, e)
				t.size++
				continue
			}
		}
		t.Insert(e.Key, e.Value)
		leaf, upper, hasUpper = t.descendOwned(e.Key)
	}
}

// descendOwned walks from the root to the leaf covering key, converting
// every node on the path to an owned, dirty copy (the same path-copying
// Insert performs), and returns that leaf together with the exclusive
// upper bound of its subtree (the min key of the next sibling at the
// lowest branch where one exists; hasUpper is false on the rightmost
// path). Ancestors are dirtied here once, so in-place appends to the
// returned leaf need no further path maintenance: appending at a leaf's
// tail never changes any minKey, and digests are recomputed from
// content, making a spuriously dirty node a pure cache miss.
func (t *Tree) descendOwned(key types.CompoundKey) (*leafNode, types.CompoundKey, bool) {
	var upper types.CompoundKey
	hasUpper := false
	switch v := t.root.(type) {
	case *leafNode:
		nd := t.ownedLeaf(v)
		nd.dirty = true
		t.root = nd
		return nd, upper, hasUpper
	case *internalNode:
		nd := t.ownedInternal(v)
		nd.dirty = true
		t.root = nd
		cur := nd
		for {
			ci := childIndex(cur.mins, key)
			if ci+1 < len(cur.mins) {
				upper = cur.mins[ci+1]
				hasUpper = true
			}
			switch cv := cur.children[ci].(type) {
			case *leafNode:
				l := t.ownedLeaf(cv)
				l.dirty = true
				cur.children[ci] = l
				return l, upper, hasUpper
			case *internalNode:
				ic := t.ownedInternal(cv)
				ic.dirty = true
				cur.children[ci] = ic
				cur = ic
			}
		}
	}
	panic("mbtree: descendOwned on empty tree")
}

// searchEntries returns the insertion index for key and whether it exists.
func searchEntries(entries []types.Entry, key types.CompoundKey) (int, bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].Key.Less(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(entries) && entries[lo].Key == key {
		return lo, true
	}
	return lo, false
}

// childIndex picks the child whose interval contains key: the rightmost
// child with min ≤ key (child 0 if key precedes every min).
func childIndex(mins []types.CompoundKey, key types.CompoundKey) int {
	lo, hi := 0, len(mins)-1
	idx := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if mins[mid].Cmp(key) <= 0 {
			idx = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return idx
}

// Get returns the value stored at exactly key.
func (t *Tree) Get(key types.CompoundKey) (types.Value, bool) {
	n := t.root
	for n != nil {
		switch nd := n.(type) {
		case *leafNode:
			idx, found := searchEntries(nd.entries, key)
			if !found {
				return types.Value{}, false
			}
			return nd.entries[idx].Value, true
		case *internalNode:
			n = nd.children[childIndex(nd.mins, key)]
		}
	}
	return types.Value{}, false
}

// Predecessor returns the entry with the largest key ≤ key (the L0 search
// of Algorithm 6: Kq = ⟨addr, max_int⟩ finds the freshest version).
func (t *Tree) Predecessor(key types.CompoundKey) (types.Entry, bool) {
	var best types.Entry
	found := false
	n := t.root
	for n != nil {
		switch nd := n.(type) {
		case *leafNode:
			idx, exact := searchEntries(nd.entries, key)
			if exact {
				return nd.entries[idx], true
			}
			if idx > 0 {
				return nd.entries[idx-1], true
			}
			return best, found
		case *internalNode:
			ci := childIndex(nd.mins, key)
			// Entries smaller than this child's subtree live to the left;
			// remember the rightmost one seen so far in case the chosen
			// subtree has no key ≤ key (possible only for ci = 0).
			if ci > 0 {
				if e, ok := maxEntry(nd.children[ci-1]); ok {
					best, found = e, true
				}
			}
			n = nd.children[ci]
		}
	}
	return best, found
}

func maxEntry(n node) (types.Entry, bool) {
	for {
		switch nd := n.(type) {
		case *leafNode:
			if len(nd.entries) == 0 {
				return types.Entry{}, false
			}
			return nd.entries[len(nd.entries)-1], true
		case *internalNode:
			n = nd.children[len(nd.children)-1]
		}
	}
}

// Range returns all entries with lo ≤ key ≤ hi, in order.
func (t *Tree) Range(lo, hi types.CompoundKey) []types.Entry {
	var out []types.Entry
	t.ForEach(func(e types.Entry) error {
		if e.Key.Cmp(lo) >= 0 && e.Key.Cmp(hi) <= 0 {
			out = append(out, e)
		}
		return nil
	})
	return out
}

// ForEach visits every entry in key order (used to flush L0 as a sorted
// run); stopping early is signalled by returning a non-nil error.
func (t *Tree) ForEach(fn func(types.Entry) error) error {
	return forEach(t.root, fn)
}

func forEach(n node, fn func(types.Entry) error) error {
	switch nd := n.(type) {
	case nil:
		return nil
	case *leafNode:
		for _, e := range nd.entries {
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	case *internalNode:
		for _, c := range nd.children {
			if err := forEach(c, fn); err != nil {
				return err
			}
		}
		return nil
	}
	panic("mbtree: unknown node type")
}

// RootHash returns the Merkle digest of the tree (ZeroHash when empty),
// recomputing only dirty nodes.
func (t *Tree) RootHash() types.Hash {
	if t.root == nil {
		return types.ZeroHash
	}
	return t.root.digest()
}

func (n *leafNode) minKey() types.CompoundKey {
	if len(n.entries) == 0 {
		return types.CompoundKey{}
	}
	return n.entries[0].Key
}

func (n *leafNode) digest() types.Hash {
	if !n.dirty {
		return n.hash
	}
	buf := make([]byte, 1+len(n.entries)*types.EntrySize)
	buf[0] = leafHashTag
	for i, e := range n.entries {
		types.EncodeEntry(buf[1+i*types.EntrySize:], e)
	}
	n.hash = types.HashData(buf)
	n.dirty = false
	return n.hash
}

func (n *internalNode) minKey() types.CompoundKey { return n.mins[0] }

func (n *internalNode) digest() types.Hash {
	if !n.dirty {
		return n.hash
	}
	buf := make([]byte, 1+len(n.children)*(types.CompoundKeySize+types.HashSize))
	buf[0] = internalHashTag
	off := 1
	for i, c := range n.children {
		n.mins[i].PutBytes(buf[off:])
		off += types.CompoundKeySize
		h := c.digest()
		copy(buf[off:], h[:])
		off += types.HashSize
	}
	n.hash = types.HashData(buf)
	n.dirty = false
	return n.hash
}

// LeafHash recomputes the digest of a revealed leaf entry list (used by
// proof verification).
func LeafHash(entries []types.Entry) types.Hash {
	buf := make([]byte, 1+len(entries)*types.EntrySize)
	buf[0] = leafHashTag
	for i, e := range entries {
		types.EncodeEntry(buf[1+i*types.EntrySize:], e)
	}
	return types.HashData(buf)
}

// InternalHash recomputes the digest of an internal node from its
// children's (minKey, hash) pairs (used by proof verification).
func InternalHash(mins []types.CompoundKey, hashes []types.Hash) types.Hash {
	buf := make([]byte, 1+len(hashes)*(types.CompoundKeySize+types.HashSize))
	buf[0] = internalHashTag
	off := 1
	for i := range hashes {
		mins[i].PutBytes(buf[off:])
		off += types.CompoundKeySize
		copy(buf[off:], hashes[i][:])
		off += types.HashSize
	}
	return types.HashData(buf)
}
