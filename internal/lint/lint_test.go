// Package lint holds repo-wide static checks that gate CI. They live in
// a test so `go test ./...` enforces them with no extra tooling.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	iofs "io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoDroppedCloseOrSyncErrors walks every non-test source file and
// flags a bare `x.Close()` or `x.Sync()` statement: both return the
// write-back errors a durable store must not drop. A deliberate discard
// on an error path is spelled `_ = x.Close()` (and a deferred cleanup
// `defer x.Close()` stays idiomatic) — the point is that dropping the
// error is visible in the code, never an accident.
func TestNoDroppedCloseOrSyncErrors(t *testing.T) {
	root := filepath.Join("..", "..")
	fset := token.NewFileSet()
	var bad []string
	err := filepath.WalkDir(root, func(path string, d iofs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".github", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name := sel.Sel.Name; name == "Close" || name == "Sync" {
				pos := fset.Position(es.Pos())
				rel, _ := filepath.Rel(root, pos.Filename)
				bad = append(bad, fmt.Sprintf("%s:%d: %s() error dropped silently (use `_ = ...` to discard deliberately)", rel, pos.Line, name))
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range bad {
		t.Error(b)
	}
}
