// Package mpt implements a Merkle Patricia Trie, the Ethereum index that
// COLE's evaluation uses as its primary baseline (paper §1, §2, §8).
//
// The trie maps fixed-width addresses (40 nibbles) to fixed-width values.
// Nodes are content-addressed: a node's storage key is the hash of its
// encoding, and parents reference children by hash, so the root hash
// commits the entire state (Figure 1).
//
// Two modes match the paper's two uses:
//
//   - Persistent (the MPT baseline): updates write new nodes along the
//     path and never delete old ones, so every historical root remains
//     traversable — that is how MPT supports provenance queries, and why
//     its storage balloons (§1: the index dominates storage).
//   - Non-persistent (CMI's upper index): obsolete nodes are reference-
//     counted and deleted, keeping only the latest version.
//
// Nodes live in a kvstore.DB (the RocksDB substitute), mirroring
// Ethereum-on-RocksDB.
package mpt

import (
	"bytes"
	"fmt"

	"cole/internal/kvstore"
	"cole/internal/types"
)

const (
	nodeLeaf      = 0x01
	nodeExtension = 0x02
	nodeBranch    = 0x03
)

// Trie is a Merkle Patricia Trie over a node store.
type Trie struct {
	db         *kvstore.DB
	persistent bool
	root       types.Hash
	refs       map[types.Hash]int // non-persistent mode reference counts
	cache      map[types.Hash][]byte
	cacheCap   int
	stats      Stats
}

// Stats counts trie-level operations.
type Stats struct {
	Puts       int64
	Gets       int64
	NodesRead  int64
	NodesWrite int64
	CacheHits  int64
}

// New creates a trie over db. persistent selects node retention.
func New(db *kvstore.DB, persistent bool) *Trie {
	return &Trie{
		db:         db,
		persistent: persistent,
		refs:       map[types.Hash]int{},
		cache:      map[types.Hash][]byte{},
		cacheCap:   4096,
	}
}

// Root returns the current root hash (types.ZeroHash when empty).
func (t *Trie) Root() types.Hash { return t.root }

// SetRoot points the trie at a historical root (persistent mode): reads
// then observe that block's state.
func (t *Trie) SetRoot(h types.Hash) { t.root = h }

// nibbles expands an address into 40 half-bytes.
func nibbles(addr types.Address) []byte {
	out := make([]byte, types.AddressSize*2)
	for i, b := range addr {
		out[2*i] = b >> 4
		out[2*i+1] = b & 0x0F
	}
	return out
}

// ---- node model ----

type leaf struct {
	path  []byte // remaining nibbles
	value types.Value
}

type extension struct {
	path  []byte // shared nibbles
	child types.Hash
}

type branch struct {
	children [16]types.Hash // ZeroHash = absent
}

func encodeNode(n interface{}) []byte {
	switch nd := n.(type) {
	case *leaf:
		out := make([]byte, 0, 2+len(nd.path)+types.ValueSize)
		out = append(out, nodeLeaf, byte(len(nd.path)))
		out = append(out, nd.path...)
		out = append(out, nd.value[:]...)
		return out
	case *extension:
		out := make([]byte, 0, 2+len(nd.path)+types.HashSize)
		out = append(out, nodeExtension, byte(len(nd.path)))
		out = append(out, nd.path...)
		out = append(out, nd.child[:]...)
		return out
	case *branch:
		var bitmap uint16
		for i, c := range nd.children {
			if c != types.ZeroHash {
				bitmap |= 1 << uint(i)
			}
		}
		out := make([]byte, 0, 3+16*types.HashSize)
		out = append(out, nodeBranch, byte(bitmap>>8), byte(bitmap))
		for _, c := range nd.children {
			if c != types.ZeroHash {
				out = append(out, c[:]...)
			}
		}
		return out
	}
	panic("mpt: unknown node type")
}

func decodeNode(raw []byte) (interface{}, error) {
	if len(raw) < 1 {
		return nil, fmt.Errorf("mpt: empty node encoding")
	}
	switch raw[0] {
	case nodeLeaf:
		if len(raw) < 2 {
			return nil, fmt.Errorf("mpt: truncated leaf")
		}
		pl := int(raw[1])
		if len(raw) != 2+pl+types.ValueSize {
			return nil, fmt.Errorf("mpt: leaf length %d invalid", len(raw))
		}
		n := &leaf{path: append([]byte(nil), raw[2:2+pl]...)}
		copy(n.value[:], raw[2+pl:])
		return n, nil
	case nodeExtension:
		if len(raw) < 2 {
			return nil, fmt.Errorf("mpt: truncated extension")
		}
		pl := int(raw[1])
		if len(raw) != 2+pl+types.HashSize {
			return nil, fmt.Errorf("mpt: extension length %d invalid", len(raw))
		}
		n := &extension{path: append([]byte(nil), raw[2:2+pl]...)}
		copy(n.child[:], raw[2+pl:])
		return n, nil
	case nodeBranch:
		if len(raw) < 3 {
			return nil, fmt.Errorf("mpt: truncated branch")
		}
		bitmap := uint16(raw[1])<<8 | uint16(raw[2])
		n := &branch{}
		off := 3
		for i := 0; i < 16; i++ {
			if bitmap&(1<<uint(i)) == 0 {
				continue
			}
			if off+types.HashSize > len(raw) {
				return nil, fmt.Errorf("mpt: branch children truncated")
			}
			copy(n.children[i][:], raw[off:])
			off += types.HashSize
		}
		if off != len(raw) {
			return nil, fmt.Errorf("mpt: branch has %d trailing bytes", len(raw)-off)
		}
		return n, nil
	}
	return nil, fmt.Errorf("mpt: unknown node tag 0x%02x", raw[0])
}

// ---- node store ----

func nodeKey(h types.Hash) []byte { return append([]byte("n/"), h[:]...) }

// storeNode persists a node and returns its hash.
func (t *Trie) storeNode(n interface{}) (types.Hash, error) {
	raw := encodeNode(n)
	h := types.HashData(raw)
	// Content addressing dedups identical nodes; re-puts are idempotent.
	if err := t.db.Put(nodeKey(h), raw); err != nil {
		return types.Hash{}, err
	}
	t.stats.NodesWrite++
	t.cachePut(h, raw)
	return h, nil
}

func (t *Trie) loadNode(h types.Hash) (interface{}, error) {
	if raw, ok := t.cache[h]; ok {
		t.stats.CacheHits++
		return decodeNode(raw)
	}
	raw, ok, err := t.db.Get(nodeKey(h))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("mpt: missing node %v", h)
	}
	t.stats.NodesRead++
	if types.HashData(raw) != h {
		return nil, fmt.Errorf("mpt: node %v content mismatch", h)
	}
	t.cachePut(h, raw)
	return decodeNode(raw)
}

func (t *Trie) cachePut(h types.Hash, raw []byte) {
	if len(t.cache) >= t.cacheCap {
		// Random eviction: maps iterate in random order.
		for k := range t.cache {
			delete(t.cache, k)
			break
		}
	}
	t.cache[h] = raw
}

// ---- reference counting (non-persistent mode) ----

func (t *Trie) ref(h types.Hash) {
	if t.persistent || h == types.ZeroHash {
		return
	}
	t.refs[h]++
}

// deref releases one reference; nodes reaching zero are deleted and their
// children dereferenced recursively.
func (t *Trie) deref(h types.Hash) error {
	if t.persistent || h == types.ZeroHash {
		return nil
	}
	t.refs[h]--
	if t.refs[h] > 0 {
		return nil
	}
	delete(t.refs, h)
	n, err := t.loadNode(h)
	if err != nil {
		return err
	}
	if err := t.db.Delete(nodeKey(h)); err != nil {
		return err
	}
	delete(t.cache, h)
	switch nd := n.(type) {
	case *extension:
		return t.deref(nd.child)
	case *branch:
		for _, c := range nd.children {
			if c != types.ZeroHash {
				if err := t.deref(c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Put inserts or updates an address. New nodes along the path are written;
// in persistent mode the old path remains intact (Figure 1's duplicated
// n1, n2, n4), in non-persistent mode it is dereferenced.
func (t *Trie) Put(addr types.Address, value types.Value) error {
	t.stats.Puts++
	oldRoot := t.root
	newRoot, err := t.insert(t.root, nibbles(addr), value)
	if err != nil {
		return err
	}
	t.root = newRoot
	t.ref(newRoot)
	return t.deref(oldRoot)
}

// insert returns the hash of the rewritten subtree.
//
// Reference discipline (non-persistent mode): every *created* node refs
// each of its children once; the only explicit release is Put's deref of
// the old root, whose death cascades down the superseded path, releasing
// exactly the references the old nodes held. insert itself never derefs.
// (Content-addressed dedup of identical subtrees can over-count and
// retain a shared node; that errs towards keeping data, never towards
// deleting a live node.)
func (t *Trie) insert(h types.Hash, path []byte, value types.Value) (types.Hash, error) {
	if h == types.ZeroHash {
		return t.storeNode(&leaf{path: path, value: value})
	}
	n, err := t.loadNode(h)
	if err != nil {
		return types.Hash{}, err
	}
	switch nd := n.(type) {
	case *leaf:
		if bytes.Equal(nd.path, path) {
			return t.storeNode(&leaf{path: path, value: value})
		}
		common := commonPrefix(nd.path, path)
		br := &branch{}
		oldHash, err := t.storeNode(&leaf{path: nd.path[common+1:], value: nd.value})
		if err != nil {
			return types.Hash{}, err
		}
		newHash, err := t.storeNode(&leaf{path: path[common+1:], value: value})
		if err != nil {
			return types.Hash{}, err
		}
		br.children[nd.path[common]] = oldHash
		br.children[path[common]] = newHash
		t.ref(oldHash)
		t.ref(newHash)
		brHash, err := t.storeNode(br)
		if err != nil {
			return types.Hash{}, err
		}
		if common == 0 {
			return brHash, nil
		}
		t.ref(brHash)
		return t.storeNode(&extension{path: path[:common], child: brHash})
	case *extension:
		common := commonPrefix(nd.path, path)
		if common == len(nd.path) {
			childHash, err := t.insert(nd.child, path[common:], value)
			if err != nil {
				return types.Hash{}, err
			}
			t.ref(childHash)
			return t.storeNode(&extension{path: nd.path, child: childHash})
		}
		// Split the extension at the divergence point.
		br := &branch{}
		extRemainder := nd.path[common+1:]
		oldSide := nd.child
		if len(extRemainder) > 0 {
			oldSide, err = t.storeNode(&extension{path: extRemainder, child: nd.child})
			if err != nil {
				return types.Hash{}, err
			}
			// The intermediate extension is a new logical parent of the
			// old child.
			t.ref(nd.child)
		}
		newSide, err := t.storeNode(&leaf{path: path[common+1:], value: value})
		if err != nil {
			return types.Hash{}, err
		}
		br.children[nd.path[common]] = oldSide
		br.children[path[common]] = newSide
		t.ref(oldSide)
		t.ref(newSide)
		brHash, err := t.storeNode(br)
		if err != nil {
			return types.Hash{}, err
		}
		if common == 0 {
			return brHash, nil
		}
		t.ref(brHash)
		return t.storeNode(&extension{path: path[:common], child: brHash})
	case *branch:
		idx := path[0]
		childHash, err := t.insert(nd.children[idx], path[1:], value)
		if err != nil {
			return types.Hash{}, err
		}
		nb := &branch{children: nd.children}
		nb.children[idx] = childHash
		t.ref(childHash)
		// Surviving siblings gain a reference from the new branch; the
		// old branch's references die with it.
		for i, c := range nd.children {
			if byte(i) != idx && c != types.ZeroHash {
				t.ref(c)
			}
		}
		return t.storeNode(nb)
	}
	return types.Hash{}, fmt.Errorf("mpt: unknown node type")
}

func commonPrefix(a, b []byte) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// Get returns the value of addr at the current root.
func (t *Trie) Get(addr types.Address) (types.Value, bool, error) {
	return t.GetAtRoot(t.root, addr)
}

// GetAtRoot reads addr in the state committed by root (any historical
// root in persistent mode).
func (t *Trie) GetAtRoot(root types.Hash, addr types.Address) (types.Value, bool, error) {
	t.stats.Gets++
	h := root
	path := nibbles(addr)
	for {
		if h == types.ZeroHash {
			return types.Value{}, false, nil
		}
		n, err := t.loadNode(h)
		if err != nil {
			return types.Value{}, false, err
		}
		switch nd := n.(type) {
		case *leaf:
			if bytes.Equal(nd.path, path) {
				return nd.value, true, nil
			}
			return types.Value{}, false, nil
		case *extension:
			if len(path) < len(nd.path) || !bytes.Equal(path[:len(nd.path)], nd.path) {
				return types.Value{}, false, nil
			}
			path = path[len(nd.path):]
			h = nd.child
		case *branch:
			if len(path) == 0 {
				return types.Value{}, false, nil
			}
			h = nd.children[path[0]]
			path = path[1:]
		}
	}
}

// Stats returns trie counters.
func (t *Trie) Stats() Stats { return t.stats }
