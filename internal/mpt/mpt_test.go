package mpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cole/internal/kvstore"
	"cole/internal/types"
)

func newTrie(t *testing.T, persistent bool) *Trie {
	t.Helper()
	db, err := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db, persistent)
}

func addr(i uint64) types.Address { return types.AddressFromUint64(i) }
func val(i uint64) types.Value    { return types.ValueFromUint64(i) }

func TestEmptyTrie(t *testing.T) {
	tr := newTrie(t, true)
	if tr.Root() != types.ZeroHash {
		t.Fatal("empty trie root must be ZeroHash")
	}
	if _, ok, err := tr.Get(addr(1)); ok || err != nil {
		t.Fatalf("empty trie get: %v %v", ok, err)
	}
}

func TestPutGetAgainstMap(t *testing.T) {
	for _, persistent := range []bool{true, false} {
		tr := newTrie(t, persistent)
		ref := map[types.Address]types.Value{}
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 2000; i++ {
			a := addr(r.Uint64() % 500)
			v := val(r.Uint64())
			if err := tr.Put(a, v); err != nil {
				t.Fatal(err)
			}
			ref[a] = v
		}
		for a, want := range ref {
			got, ok, err := tr.Get(a)
			if err != nil || !ok || got != want {
				t.Fatalf("persistent=%v get(%v): %v ok=%v err=%v", persistent, a, got, ok, err)
			}
		}
		if _, ok, _ := tr.Get(addr(10_000)); ok {
			t.Fatal("absent address must miss")
		}
	}
}

func TestRootChangesDeterministically(t *testing.T) {
	build := func() types.Hash {
		tr := newTrie(t, true)
		for i := uint64(0); i < 100; i++ {
			if err := tr.Put(addr(i), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Root()
	}
	if build() != build() {
		t.Fatal("identical updates must give identical roots")
	}
}

func TestRootIndependentOfInsertionOrderForFinalState(t *testing.T) {
	// MPT roots are a function of the key-value set only (unlike B-trees):
	// permuting insert order of distinct keys yields the same root.
	mk := func(order []uint64) types.Hash {
		tr := newTrie(t, true)
		for _, i := range order {
			if err := tr.Put(addr(i), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tr.Root()
	}
	h1 := mk([]uint64{1, 2, 3, 4, 5, 6, 7, 8})
	h2 := mk([]uint64{8, 3, 1, 7, 5, 2, 6, 4})
	if h1 != h2 {
		t.Fatal("MPT root must be insertion-order independent")
	}
}

func TestHistoricalRootsRemainReadable(t *testing.T) {
	tr := newTrie(t, true)
	a := addr(7)
	var roots []types.Hash
	for blk := uint64(1); blk <= 50; blk++ {
		if err := tr.Put(a, val(blk)); err != nil {
			t.Fatal(err)
		}
		roots = append(roots, tr.Root())
	}
	// Every historical version is still reachable from its root.
	for i, root := range roots {
		v, ok, err := tr.GetAtRoot(root, a)
		if err != nil || !ok {
			t.Fatalf("block %d: %v %v", i+1, ok, err)
		}
		if v.Uint64() != uint64(i+1) {
			t.Fatalf("block %d: got %d", i+1, v.Uint64())
		}
	}
}

func TestNonPersistentDeletesOldNodes(t *testing.T) {
	// Writing the same address repeatedly must not grow storage in
	// non-persistent mode (modulo LSM garbage before compaction), while
	// persistent mode grows linearly.
	count := func(persistent bool) int64 {
		db, err := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		tr := New(db, persistent)
		for i := uint64(0); i < 50; i++ {
			_ = tr.Put(addr(i%5), val(i))
		}
		return int64(tr.Stats().NodesWrite) - int64(tr.Stats().Puts) // rough: writes beyond one per put
	}
	_ = count // node-write counts are equal; the real check is deletions:
	dbNP, _ := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 20})
	defer dbNP.Close()
	trNP := New(dbNP, false)
	for i := uint64(0); i < 200; i++ {
		if err := trNP.Put(addr(i%5), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if dbNP.Stats().Deletes == 0 {
		t.Fatal("non-persistent mode must delete superseded nodes")
	}
	// All current values still present.
	for i := uint64(0); i < 5; i++ {
		if _, ok, err := trNP.Get(addr(i)); !ok || err != nil {
			t.Fatalf("addr %d lost after deletions: %v", i, err)
		}
	}
}

func TestNonPersistentOldRootsUnreadable(t *testing.T) {
	tr := newTrie(t, false)
	a := addr(1)
	_ = tr.Put(a, val(1))
	oldRoot := tr.Root()
	for i := uint64(2); i < 30; i++ {
		_ = tr.Put(a, val(i))
	}
	if _, _, err := tr.GetAtRoot(oldRoot, a); err == nil {
		t.Fatal("old roots must become unreadable in non-persistent mode")
	}
}

func TestProveAndVerifyPresence(t *testing.T) {
	tr := newTrie(t, true)
	ref := map[types.Address]types.Value{}
	for i := uint64(0); i < 300; i++ {
		a, v := addr(i), val(i*3)
		_ = tr.Put(a, v)
		ref[a] = v
	}
	root := tr.Root()
	for a, want := range ref {
		v, found, p, err := tr.Prove(root, a)
		if err != nil || !found || v != want {
			t.Fatalf("prove(%v): %v %v %v", a, v, found, err)
		}
		got, ok, err := VerifyProof(root, a, p)
		if err != nil || !ok || got != want {
			t.Fatalf("verify(%v): %v %v %v", a, got, ok, err)
		}
	}
}

func TestProveAndVerifyAbsence(t *testing.T) {
	tr := newTrie(t, true)
	for i := uint64(0); i < 100; i++ {
		_ = tr.Put(addr(i), val(i))
	}
	root := tr.Root()
	for i := uint64(1000); i < 1050; i++ {
		a := addr(i)
		_, found, p, err := tr.Prove(root, a)
		if err != nil || found {
			t.Fatalf("prove absent(%v): %v %v", a, found, err)
		}
		_, ok, err := VerifyProof(root, a, p)
		if err != nil {
			t.Fatalf("verify absence failed: %v", err)
		}
		if ok {
			t.Fatal("absence proof returned presence")
		}
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	tr := newTrie(t, true)
	for i := uint64(0); i < 100; i++ {
		_ = tr.Put(addr(i), val(i))
	}
	root := tr.Root()
	a := addr(42)
	_, _, p, _ := tr.Prove(root, a)

	// Tampered node bytes.
	p.Nodes[len(p.Nodes)-1][len(p.Nodes[len(p.Nodes)-1])-1] ^= 1
	if _, _, err := VerifyProof(root, a, p); err == nil {
		t.Fatal("tampered node must fail")
	}
	// Truncated proof.
	_, _, p2, _ := tr.Prove(root, a)
	p2.Nodes = p2.Nodes[:len(p2.Nodes)-1]
	if _, _, err := VerifyProof(root, a, p2); err == nil {
		t.Fatal("truncated proof must fail")
	}
	// Wrong root.
	_, _, p3, _ := tr.Prove(root, a)
	bad := root
	bad[0] ^= 1
	if _, _, err := VerifyProof(bad, a, p3); err == nil {
		t.Fatal("wrong root must fail")
	}
	// Proof for a different address.
	_, _, p4, _ := tr.Prove(root, addr(43))
	if v, ok, err := VerifyProof(root, a, p4); err == nil && ok && v == val(43) {
		t.Fatal("cross-address proof must not yield a value for the wrong address")
	}
}

func TestHistoryProvQuery(t *testing.T) {
	tr := newTrie(t, true)
	h := NewHistory(tr)
	a := addr(5)
	for blk := uint64(1); blk <= 20; blk++ {
		if blk%3 == 0 {
			_ = tr.Put(a, val(blk))
		}
		_ = tr.Put(addr(blk+100), val(blk)) // noise
		if err := h.CommitBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	values, proofs, err := h.ProvQuery(a, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 6 || len(proofs) != 6 {
		t.Fatalf("expected 6 per-block answers, got %d/%d", len(values), len(proofs))
	}
	// Value active at block 5 is the write at 3; at block 6..8 the write
	// at 6; etc.
	wantAt := []uint64{3, 6, 6, 6, 9, 9}
	for i, want := range wantAt {
		blk := uint64(5 + i)
		root, ok, _ := h.RootAt(blk)
		if !ok {
			t.Fatalf("missing root for %d", blk)
		}
		got, ok, err := VerifyProof(root, a, proofs[i])
		if err != nil || !ok {
			t.Fatalf("block %d: verify failed %v", blk, err)
		}
		if got != val(want) || values[i] != val(want) {
			t.Fatalf("block %d: got %d want %d", blk, got.Uint64(), want)
		}
	}
	// Proof cost is linear in the range: 12 blocks ≈ 2× the proof bytes
	// of 6 blocks (the paper's Figure 14 shape for MPT).
	_, proofsWide, _ := h.ProvQuery(a, 5, 16)
	sz := func(ps []*Proof) int {
		s := 0
		for _, p := range ps {
			s += p.Size()
		}
		return s
	}
	if sz(proofsWide) < sz(proofs)*3/2 {
		t.Fatal("proof size must grow with the range")
	}
	if _, _, err := h.ProvQuery(a, 100, 101); err == nil {
		t.Fatal("unrecorded blocks must error")
	}
}

func TestTrieQuickProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := newTrie(t, true)
		ref := map[types.Address]types.Value{}
		for i := 0; i < int(n)+1; i++ {
			a := addr(r.Uint64() % 64)
			v := val(r.Uint64())
			if err := tr.Put(a, v); err != nil {
				return false
			}
			ref[a] = v
		}
		root := tr.Root()
		for a, want := range ref {
			got, ok, err := tr.Get(a)
			if err != nil || !ok || got != want {
				return false
			}
			pv, found, p, err := tr.Prove(root, a)
			if err != nil || !found || pv != want {
				return false
			}
			vv, ok2, err := VerifyProof(root, a, p)
			if err != nil || !ok2 || vv != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistentStorageGrowsNonPersistentDoesNot(t *testing.T) {
	measure := func(persistent bool) int64 {
		db, err := kvstore.Open(kvstore.Options{Dir: t.TempDir(), MemBytes: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		tr := New(db, persistent)
		for i := uint64(0); i < 3000; i++ {
			if err := tr.Put(addr(i%20), val(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		return db.SizeOnDisk()
	}
	p := measure(true)
	np := measure(false)
	if p < np*3 {
		t.Fatalf("persistent storage (%d) must far exceed non-persistent (%d)", p, np)
	}
}
