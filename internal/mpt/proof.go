package mpt

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"cole/internal/types"
)

// Proof is a Merkle path: the node encodings from the root to the point
// where the lookup terminates (a matching leaf, a divergence, or a missing
// branch child). Verification recomputes each node's hash, so tampering
// anywhere breaks the chain (§2's MPT proof).
type Proof struct {
	Nodes [][]byte
}

// Size returns the proof's wire size in bytes.
func (p *Proof) Size() int {
	s := 2
	for _, n := range p.Nodes {
		s += 4 + len(n)
	}
	return s
}

// Prove returns addr's value (or absence) at root plus the Merkle path.
func (t *Trie) Prove(root types.Hash, addr types.Address) (types.Value, bool, *Proof, error) {
	p := &Proof{}
	h := root
	path := nibbles(addr)
	for {
		if h == types.ZeroHash {
			return types.Value{}, false, p, nil
		}
		n, err := t.loadNode(h)
		if err != nil {
			return types.Value{}, false, nil, err
		}
		p.Nodes = append(p.Nodes, encodeNode(n))
		switch nd := n.(type) {
		case *leaf:
			if bytes.Equal(nd.path, path) {
				return nd.value, true, p, nil
			}
			return types.Value{}, false, p, nil
		case *extension:
			if len(path) < len(nd.path) || !bytes.Equal(path[:len(nd.path)], nd.path) {
				return types.Value{}, false, p, nil
			}
			path = path[len(nd.path):]
			h = nd.child
		case *branch:
			if len(path) == 0 {
				return types.Value{}, false, p, nil
			}
			h = nd.children[path[0]]
			path = path[1:]
		}
	}
}

// VerifyProof checks a Merkle path against a trusted root and returns the
// proven value or verified absence.
func VerifyProof(root types.Hash, addr types.Address, p *Proof) (types.Value, bool, error) {
	if p == nil {
		return types.Value{}, false, fmt.Errorf("mpt: nil proof")
	}
	expected := root
	path := nibbles(addr)
	for i, raw := range p.Nodes {
		if expected == types.ZeroHash {
			return types.Value{}, false, fmt.Errorf("mpt: proof continues past an empty subtree")
		}
		if types.HashData(raw) != expected {
			return types.Value{}, false, fmt.Errorf("mpt: node %d hash mismatch", i)
		}
		n, err := decodeNode(raw)
		if err != nil {
			return types.Value{}, false, err
		}
		last := i == len(p.Nodes)-1
		switch nd := n.(type) {
		case *leaf:
			if !last {
				return types.Value{}, false, fmt.Errorf("mpt: leaf before end of proof")
			}
			if bytes.Equal(nd.path, path) {
				return nd.value, true, nil
			}
			return types.Value{}, false, nil // proven absence (diverging leaf)
		case *extension:
			if len(path) < len(nd.path) || !bytes.Equal(path[:len(nd.path)], nd.path) {
				if !last {
					return types.Value{}, false, fmt.Errorf("mpt: proof continues past divergence")
				}
				return types.Value{}, false, nil // proven absence
			}
			path = path[len(nd.path):]
			expected = nd.child
		case *branch:
			if len(path) == 0 {
				return types.Value{}, false, fmt.Errorf("mpt: address exhausted at branch")
			}
			next := nd.children[path[0]]
			path = path[1:]
			if next == types.ZeroHash {
				if !last {
					return types.Value{}, false, fmt.Errorf("mpt: proof continues past missing child")
				}
				return types.Value{}, false, nil // proven absence
			}
			expected = next
		}
	}
	if root == types.ZeroHash && len(p.Nodes) == 0 {
		return types.Value{}, false, nil // empty trie: everything absent
	}
	return types.Value{}, false, fmt.Errorf("mpt: proof ends before lookup terminates")
}

// History records the root of every committed block, giving the
// persistent MPT its provenance capability: ProvQuery traverses the trie
// of each block in the queried range (which is why the paper measures
// MPT's provenance cost as linear in the range, §8.2.5).
type History struct {
	trie *Trie
}

// NewHistory wraps a persistent trie.
func NewHistory(trie *Trie) *History { return &History{trie: trie} }

func rootAtKey(blk uint64) []byte {
	k := make([]byte, 2+8)
	copy(k, "r/")
	binary.BigEndian.PutUint64(k[2:], blk)
	return k
}

// CommitBlock records the current root as block blk's state root.
func (h *History) CommitBlock(blk uint64) error {
	root := h.trie.Root()
	return h.trie.db.Put(rootAtKey(blk), root[:])
}

// RootAt returns the state root of block blk.
func (h *History) RootAt(blk uint64) (types.Hash, bool, error) {
	raw, ok, err := h.trie.db.Get(rootAtKey(blk))
	if err != nil || !ok {
		return types.Hash{}, ok, err
	}
	var out types.Hash
	copy(out[:], raw)
	return out, true, nil
}

// ProvQuery answers a provenance query the MPT way: one proven point
// lookup per block in [blkLo, blkHi].
func (h *History) ProvQuery(addr types.Address, blkLo, blkHi uint64) ([]types.Value, []*Proof, error) {
	var (
		values []types.Value
		proofs []*Proof
	)
	for b := blkLo; b <= blkHi; b++ {
		root, ok, err := h.RootAt(b)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return nil, nil, fmt.Errorf("mpt: no root recorded for block %d", b)
		}
		v, found, p, err := h.trie.Prove(root, addr)
		if err != nil {
			return nil, nil, err
		}
		if found {
			values = append(values, v)
		} else {
			values = append(values, types.Value{})
		}
		proofs = append(proofs, p)
	}
	return values, proofs, nil
}
