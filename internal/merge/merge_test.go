package merge

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedConcurrency floods a 2-worker pool with slow jobs and checks
// that no more than 2 ever run at once while all of them finish.
func TestBoundedConcurrency(t *testing.T) {
	const workers, jobs = 2, 20
	s := New(workers)
	if s.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), workers)
	}
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
		}, PriorityFlush, nil)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("%d jobs ran concurrently on a %d-worker pool", p, workers)
	}
	st := s.Stats()
	if st.Submitted != jobs {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, jobs)
	}
	// 20 slow jobs on 2 workers must have queued at least once.
	if st.Waited == 0 {
		t.Fatal("no job ever waited on a saturated 2-worker pool")
	}
}

// TestOnWaitReporting holds the pool's only slot and checks the queued
// job reports its wait exactly once.
func TestOnWaitReporting(t *testing.T) {
	s := New(1)
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() { defer wg.Done(); close(started); <-block }, PriorityDeep, nil)
	<-started // the only slot is now held
	var waits atomic.Int64
	s.Submit(func() { defer wg.Done() }, PriorityFlush, func() { waits.Add(1) })
	// The queued job reports its wait before blocking on the slot.
	for waits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if w := waits.Load(); w != 1 {
		t.Fatalf("onWait fired %d times, want 1", w)
	}
}

// TestRunBlocksUntilDone checks the synchronous path completes the job
// before returning, under contention.
func TestRunBlocksUntilDone(t *testing.T) {
	s := New(1)
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	s.Submit(func() { defer wg.Done(); time.Sleep(5 * time.Millisecond) }, PriorityDeep, nil)
	s.Run(func() { done.Store(true) }, PriorityFlush, nil)
	if !done.Load() {
		t.Fatal("Run returned before the job executed")
	}
	wg.Wait()
}

// TestPriorityHandoff queues a deep waiter and then a flush waiter behind
// a held 1-worker pool and checks the released slot goes to the flush
// lane first even though the deep job queued earlier: commits never wait
// for CPU behind maintenance.
func TestPriorityHandoff(t *testing.T) {
	s := New(1)
	started := make(chan struct{})
	gate := make(chan struct{})
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(3)
	s.Submit(func() { defer wg.Done(); close(started); <-gate }, PriorityDeep, nil)
	<-started // the only slot is now held
	deepQueued := make(chan struct{})
	s.Submit(func() { defer wg.Done(); order <- "deep" }, PriorityDeep, func() { close(deepQueued) })
	<-deepQueued
	flushQueued := make(chan struct{})
	s.Submit(func() { defer wg.Done(); order <- "flush" }, PriorityFlush, func() { close(flushQueued) })
	<-flushQueued
	close(gate)
	wg.Wait()
	if first := <-order; first != "flush" {
		t.Fatalf("slot went to %q first; the flush lane must outrank an earlier deep waiter", first)
	}
}

// TestPreemptHandsSlotToFlush is the preemption-lane regression test on
// a ONE-worker pool: a chunked deep merge holds the only slot and calls
// Preempt between chunks; a flush submitted mid-merge must run to
// completion BEFORE the deep job's remaining chunks — i.e. a commit is
// never blocked behind the tail of a monolithic merge.
func TestPreemptHandsSlotToFlush(t *testing.T) {
	s := New(1)
	const chunks = 64
	var order []string
	var mu sync.Mutex
	record := func(what string) {
		mu.Lock()
		order = append(order, what)
		mu.Unlock()
	}
	firstChunk := make(chan struct{})
	flushQueued := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() {
		defer wg.Done()
		for i := 0; i < chunks; i++ {
			if i == 1 {
				close(firstChunk) // the merge is provably mid-flight
				<-flushQueued     // and the flush is provably queued
			}
			s.Preempt(PriorityDeep, nil)
		}
		record("deep-done")
	}, PriorityDeep, nil)
	<-firstChunk
	s.Submit(func() {
		defer wg.Done()
		record("flush-done")
	}, PriorityFlush, func() { close(flushQueued) })
	wg.Wait()
	if len(order) != 2 || order[0] != "flush-done" {
		t.Fatalf("completion order %v; the queued flush must preempt the chunked deep merge", order)
	}
	if st := s.Stats(); st.Preempted == 0 {
		t.Fatal("no preemption recorded although a flush was queued mid-merge")
	}
}

// TestPreemptNoopWhenIdle checks Preempt keeps the slot (and stays cheap)
// when nothing more urgent is queued, and that a flush never preempts
// for its own lane.
func TestPreemptNoopWhenIdle(t *testing.T) {
	s := New(1)
	var wg sync.WaitGroup
	wg.Add(1)
	s.Run(func() {
		if s.Preempt(PriorityDeep, nil) {
			t.Error("Preempt yielded with an empty pool")
		}
		if s.Preempt(PriorityFlush, nil) {
			t.Error("Preempt yielded at the most urgent lane")
		}
		wg.Done()
	}, PriorityDeep, nil)
	wg.Wait()
	if st := s.Stats(); st.Preempted != 0 {
		t.Fatalf("Preempted = %d, want 0", st.Preempted)
	}
}

// TestPartitionFanOutOnNarrowPool is the deadlock regression test for
// partitioned merges: a parent job on a ONE-worker pool fans four spans
// out via SubmitPartition and joins them inside Yield. Without Yield
// releasing the parent's slot, nothing could ever run. It also checks
// the split accounting: the siblings' queue waits land in
// PartitionWaited, leaving Waited at zero.
func TestPartitionFanOutOnNarrowPool(t *testing.T) {
	s := New(1)
	const spans = 4
	var ran atomic.Int64
	done := make(chan struct{})
	s.Submit(func() {
		var wg sync.WaitGroup
		for i := 0; i < spans; i++ {
			wg.Add(1)
			s.SubmitPartition(func() {
				defer wg.Done()
				time.Sleep(time.Millisecond)
				ran.Add(1)
			}, PriorityDeep, nil)
		}
		s.Yield(PriorityDeep, wg.Wait, nil)
		close(done)
	}, PriorityDeep, nil)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("partitioned fan-out deadlocked on a 1-worker pool")
	}
	if got := ran.Load(); got != spans {
		t.Fatalf("%d of %d spans ran", got, spans)
	}
	st := s.Stats()
	if st.Submitted != 1+spans {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, 1+spans)
	}
	if st.Waited != 0 {
		t.Fatalf("Waited = %d; sibling-partition waits leaked into the cross-shard counter", st.Waited)
	}
	// Four spans plus the parent's re-entry contended for one slot; at
	// least the later spans must have queued.
	if st.PartitionWaited == 0 {
		t.Fatal("no partition wait recorded on a saturated 1-worker pool")
	}
}

// TestYieldRestoresSlot checks a job still holds a slot after Yield
// returns (the pool stays bounded afterwards).
func TestYieldRestoresSlot(t *testing.T) {
	s := New(1)
	var inside atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() {
		defer wg.Done()
		s.Yield(PriorityDeep, func() {}, nil)
		// Back under the budget: nothing else may run concurrently.
		if n := inside.Add(1); n != 1 {
			t.Errorf("%d jobs inside a 1-worker pool after Yield", n)
		}
		time.Sleep(2 * time.Millisecond)
		inside.Add(-1)
	}, PriorityDeep, nil)
	s.Submit(func() {
		defer wg.Done()
		if n := inside.Add(1); n != 1 {
			t.Errorf("%d jobs inside a 1-worker pool", n)
		}
		time.Sleep(2 * time.Millisecond)
		inside.Add(-1)
	}, PriorityDeep, nil)
	wg.Wait()
}

// TestDefaultWorkers checks workers <= 0 selects GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
}
