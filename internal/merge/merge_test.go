package merge

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedConcurrency floods a 2-worker pool with slow jobs and checks
// that no more than 2 ever run at once while all of them finish.
func TestBoundedConcurrency(t *testing.T) {
	const workers, jobs = 2, 20
	s := New(workers)
	if s.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), workers)
	}
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
		}, nil)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("%d jobs ran concurrently on a %d-worker pool", p, workers)
	}
	st := s.Stats()
	if st.Submitted != jobs {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, jobs)
	}
	// 20 slow jobs on 2 workers must have queued at least once.
	if st.Waited == 0 {
		t.Fatal("no job ever waited on a saturated 2-worker pool")
	}
}

// TestOnWaitReporting holds the pool's only slot and checks the queued
// job reports its wait exactly once.
func TestOnWaitReporting(t *testing.T) {
	s := New(1)
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() { defer wg.Done(); close(started); <-block }, nil)
	<-started // the only slot is now held
	var waits atomic.Int64
	s.Submit(func() { defer wg.Done() }, func() { waits.Add(1) })
	// The queued job reports its wait before blocking on the slot.
	for waits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if w := waits.Load(); w != 1 {
		t.Fatalf("onWait fired %d times, want 1", w)
	}
}

// TestRunBlocksUntilDone checks the synchronous path completes the job
// before returning, under contention.
func TestRunBlocksUntilDone(t *testing.T) {
	s := New(1)
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	s.Submit(func() { defer wg.Done(); time.Sleep(5 * time.Millisecond) }, nil)
	s.Run(func() { done.Store(true) }, nil)
	if !done.Load() {
		t.Fatal("Run returned before the job executed")
	}
	wg.Wait()
}

// TestDefaultWorkers checks workers <= 0 selects GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
}
