package merge

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBoundedConcurrency floods a 2-worker pool with slow jobs and checks
// that no more than 2 ever run at once while all of them finish.
func TestBoundedConcurrency(t *testing.T) {
	const workers, jobs = 2, 20
	s := New(workers)
	if s.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", s.Workers(), workers)
	}
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		s.Submit(func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
		}, nil)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("%d jobs ran concurrently on a %d-worker pool", p, workers)
	}
	st := s.Stats()
	if st.Submitted != jobs {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, jobs)
	}
	// 20 slow jobs on 2 workers must have queued at least once.
	if st.Waited == 0 {
		t.Fatal("no job ever waited on a saturated 2-worker pool")
	}
}

// TestOnWaitReporting holds the pool's only slot and checks the queued
// job reports its wait exactly once.
func TestOnWaitReporting(t *testing.T) {
	s := New(1)
	started := make(chan struct{})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() { defer wg.Done(); close(started); <-block }, nil)
	<-started // the only slot is now held
	var waits atomic.Int64
	s.Submit(func() { defer wg.Done() }, func() { waits.Add(1) })
	// The queued job reports its wait before blocking on the slot.
	for waits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	if w := waits.Load(); w != 1 {
		t.Fatalf("onWait fired %d times, want 1", w)
	}
}

// TestRunBlocksUntilDone checks the synchronous path completes the job
// before returning, under contention.
func TestRunBlocksUntilDone(t *testing.T) {
	s := New(1)
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	s.Submit(func() { defer wg.Done(); time.Sleep(5 * time.Millisecond) }, nil)
	s.Run(func() { done.Store(true) }, nil)
	if !done.Load() {
		t.Fatal("Run returned before the job executed")
	}
	wg.Wait()
}

// TestPartitionFanOutOnNarrowPool is the deadlock regression test for
// partitioned merges: a parent job on a ONE-worker pool fans four spans
// out via SubmitPartition and joins them inside Yield. Without Yield
// releasing the parent's slot, nothing could ever run. It also checks
// the split accounting: the siblings' queue waits land in
// PartitionWaited, leaving Waited at zero.
func TestPartitionFanOutOnNarrowPool(t *testing.T) {
	s := New(1)
	const spans = 4
	var ran atomic.Int64
	done := make(chan struct{})
	s.Submit(func() {
		var wg sync.WaitGroup
		for i := 0; i < spans; i++ {
			wg.Add(1)
			s.SubmitPartition(func() {
				defer wg.Done()
				time.Sleep(time.Millisecond)
				ran.Add(1)
			}, nil)
		}
		s.Yield(wg.Wait, nil)
		close(done)
	}, nil)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("partitioned fan-out deadlocked on a 1-worker pool")
	}
	if got := ran.Load(); got != spans {
		t.Fatalf("%d of %d spans ran", got, spans)
	}
	st := s.Stats()
	if st.Submitted != 1+spans {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, 1+spans)
	}
	if st.Waited != 0 {
		t.Fatalf("Waited = %d; sibling-partition waits leaked into the cross-shard counter", st.Waited)
	}
	// Four spans plus the parent's re-entry contended for one slot; at
	// least the later spans must have queued.
	if st.PartitionWaited == 0 {
		t.Fatal("no partition wait recorded on a saturated 1-worker pool")
	}
}

// TestYieldRestoresSlot checks a job still holds a slot after Yield
// returns (the pool stays bounded afterwards).
func TestYieldRestoresSlot(t *testing.T) {
	s := New(1)
	var inside atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	s.Submit(func() {
		defer wg.Done()
		s.Yield(func() {}, nil)
		// Back under the budget: nothing else may run concurrently.
		if n := inside.Add(1); n != 1 {
			t.Errorf("%d jobs inside a 1-worker pool after Yield", n)
		}
		time.Sleep(2 * time.Millisecond)
		inside.Add(-1)
	}, nil)
	s.Submit(func() {
		defer wg.Done()
		if n := inside.Add(1); n != 1 {
			t.Errorf("%d jobs inside a 1-worker pool", n)
		}
		time.Sleep(2 * time.Millisecond)
		inside.Add(-1)
	}, nil)
	wg.Wait()
}

// TestDefaultWorkers checks workers <= 0 selects GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(-3).Workers(); got < 1 {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
}
